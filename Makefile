GO ?= go

.PHONY: all build test race vet bench-smoke bench-phases

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent collector and allocator packages.
race:
	$(GO) test -race ./internal/gc/... ./internal/heap/...

vet:
	$(GO) vet ./...

# One iteration of each phase benchmark — a fast compile-and-run sanity
# check that the mark/sweep/alloc scaling benches still work.
bench-smoke:
	$(GO) test -run='^$$' -bench='Benchmark(Mark|Sweep|Alloc)Parallel' -benchtime=1x .

# Refresh the per-phase baseline JSON.
bench-phases:
	$(GO) run ./cmd/phasebench -o BENCH_gc_phases.json
