GO ?= go

.PHONY: all build test race vet bench-smoke bench-phases chaos chaos-smoke

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent collector, allocator, runtime
# facade, and fault-injection packages.
race:
	$(GO) test -race ./internal/gc/... ./internal/heap/... ./internal/vm/... \
		./internal/edgetable/... ./internal/offload/... ./internal/faultinject/...

vet:
	$(GO) vet ./...

# One iteration of each phase benchmark — a fast compile-and-run sanity
# check that the mark/sweep/alloc scaling benches still work.
bench-smoke:
	$(GO) test -run='^$$' -bench='Benchmark(Mark|Sweep|Alloc)Parallel' -benchtime=1x .

# Refresh the per-phase baseline JSON.
bench-phases:
	$(GO) run ./cmd/phasebench -o BENCH_gc_phases.json

# Full fault-injection campaign: 20 seeds x fault matrix x micro-leak
# workloads, invariant audit after every collection.
chaos:
	$(GO) run ./cmd/chaos -seeds 20 -o results/CHAOS_report.json

# Quick CI-sized slice of the campaign.
chaos-smoke:
	$(GO) run ./cmd/chaos -seeds 3 -iters 800 -o results/CHAOS_report.json
