GO ?= go

.PHONY: all build test race vet cover fuzz-smoke trace-smoke bench-smoke bench-phases bench-mutator bench-pause bench-jit bench-leakd chaos chaos-smoke leakd-smoke leakd-demo leakd-soak loadgen-smoke

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent collector, allocator, runtime
# facade, fault-injection, observability, JIT-simulation, daemon, trace,
# and replay-harness packages.
race:
	$(GO) test -race ./internal/gc/... ./internal/heap/... ./internal/vm/... \
		./internal/edgetable/... ./internal/offload/... ./internal/faultinject/... \
		./internal/obs/... ./internal/jitsim/... ./internal/server/... \
		./internal/trace/... ./internal/harness/...

vet:
	$(GO) vet ./...

# Per-package statement coverage.
cover:
	$(GO) test -cover ./...

# Short native-fuzzing pass over the fuzz targets: the edge table's
# shadow-model fuzz, the tagged-reference round trip, the SATB
# deletion-barrier buffer against its shadow model, the tier-1 barrier
# elision against the always-barrier oracle, and the allocation-trace
# codec round trip (hostile-parse + script round trip). The checked-in
# corpora under testdata/fuzz run in every plain `go test`; this adds ten
# seconds of fresh input generation per target.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzEdgeTable$$' -fuzztime=10s ./internal/edgetable
	$(GO) test -run='^$$' -fuzz='^FuzzPoisonRoundTrip$$' -fuzztime=10s ./internal/vm
	$(GO) test -run='^$$' -fuzz='^FuzzSATBBuffer$$' -fuzztime=10s ./internal/vm
	$(GO) test -run='^$$' -fuzz='^FuzzElision$$' -fuzztime=10s ./internal/jitsim
	$(GO) test -run='^$$' -fuzz='^FuzzTraceRoundTrip$$' -fuzztime=10s ./internal/trace

# Trace record/replay smoke gate: record a listleak run, structurally
# verify and summarize the trace, replay it ×1 asserting cycle-exact
# equivalence with the recording, then replay it ×4 (thread multiplication)
# and under a different policy — all audit-clean, exit 1 on any failure.
trace-smoke:
	mkdir -p results
	$(GO) run ./cmd/tracetool record -program listleak -policy default -iters 900 -o results/listleak.trace
	$(GO) run ./cmd/tracetool verify -i results/listleak.trace
	$(GO) run ./cmd/tracetool stat -i results/listleak.trace
	$(GO) run ./cmd/tracetool replay -i results/listleak.trace -verify
	$(GO) run ./cmd/tracetool replay -i results/listleak.trace -x 4
	$(GO) run ./cmd/tracetool replay -i results/listleak.trace -policy most-stale

# One iteration of each phase and mutator benchmark — a fast
# compile-and-run sanity check that the mark/sweep/alloc scaling benches,
# the mutator-ops matrix, and the GC-pause bench still work.
bench-smoke:
	$(GO) test -run='^$$' -bench='Benchmark(Mark|Sweep|Alloc)Parallel' -benchtime=1x .
	$(GO) test -run='^$$' -bench='BenchmarkMutatorOps' -benchtime=1x ./internal/vm
	$(GO) run ./cmd/pausebench -o /dev/null -iters 3000 -repeat 1 -assert-speedup 5
	$(GO) run ./cmd/overheadbench -elision -methods 4 -ops 120 -reps 2 -o /dev/null
	$(GO) run ./cmd/loadgen -warmup 1s -duration 4s -assert-speedup 3 -o /dev/null

# Refresh the per-phase baseline JSON.
bench-phases:
	$(GO) run ./cmd/phasebench -o BENCH_gc_phases.json

# Refresh the mutator fast-path baseline JSON (Load/Store/New across
# barrier settings, thread counts, and world-lock protocols).
bench-mutator:
	$(GO) run ./cmd/mutbench -o BENCH_mutator_ops.json

# Refresh the GC-pause baseline JSON: per-cycle-mode (normal/SELECT/PRUNE)
# pause statistics on the list-leak workload, STW vs mostly-concurrent
# marking, with the pre-concurrent STW baseline embedded for the speedup
# comparison.
bench-pause:
	$(GO) run ./cmd/pausebench -o BENCH_pause.json

# Refresh the tier-1 barrier-elision JSON (static elision ratios, tier-1
# compile surcharge, dynamic test reduction, modelled mutator recovery).
bench-jit:
	$(GO) run ./cmd/overheadbench -elision -o BENCH_jit_elision.json

# Full fault-injection campaign: 20 seeds x fault matrix x micro-leak
# workloads, invariant audit after every collection.
chaos:
	$(GO) run ./cmd/chaos -seeds 20 -o results/CHAOS_report.json

# Quick CI-sized slice of the campaign, with trace/metrics artifacts for the
# seed-1 control and everything runs.
chaos-smoke:
	$(GO) run ./cmd/chaos -seeds 3 -iters 800 -o results/CHAOS_report.json -obs-dir results

# Daemon smoke gate: boot leakd with the 4-tenant demo mix (one leaky
# tenant with pruning off), drive it until the budget ladder evicts the
# leak, self-scrape /metrics and /healthz over HTTP, assert the eviction
# counter, and exit 0 on a clean drain.
leakd-smoke:
	$(GO) run ./cmd/leakd -smoke -addr 127.0.0.1:0

# Interactive demo: 4 tenants self-driven for 20s while the HTTP API is
# live — `curl localhost:8080/metrics` or /tenants from another shell.
leakd-demo:
	$(GO) run ./cmd/leakd -demo -addr 127.0.0.1:8080 -duration 20s -v

# Budget-holding soak: >= 60s of 4-tenant traffic with one leaky tenant
# cycling through eviction and re-admission; fails if resident bytes ever
# exceed the budget, the ladder never reaches eviction, or the /pressure
# per-ladder-level latency SLOs are missing a baseline p99 or any
# degraded-level attribution.
leakd-soak:
	$(GO) run ./cmd/leakd -soak -addr 127.0.0.1:0 -duration 60s

# Load-generator smoke gate: a short closed-loop run (in-process daemon,
# serial + pipelined phases) that must find lp_request_latency_ns on
# /metrics, record both request profiles in both phases, and keep the
# pipelined small-request p99 under a sane bound. No speedup assertion —
# that is bench-smoke's job; this proves the harness itself works.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -warmup 500ms -duration 2s -max-p99 2s -o /dev/null

# Refresh the checked-in latency baseline (serial + pipelined phases with
# the serial numbers embedded as the comparison base).
bench-leakd:
	$(GO) run ./cmd/loadgen -warmup 2s -duration 8s -assert-speedup 3 -o results/BENCH_leakd_latency.json
