// Package leakpruning's root benchmark file maps every table and figure of
// the paper's evaluation to a testing.B benchmark, plus ablation benches
// for the design decisions DESIGN.md calls out. Run them all with
//
//	go test -bench=. -benchmem
//
// End-to-end leak benchmarks report their scientific outputs as custom
// metrics: "iterations" (how long the program survived, the unit of
// Tables 1–2) and "prunes". Wall-clock ns/op is secondary for those.
package leakpruning

import (
	"testing"
	"time"

	"leakpruning/internal/core"
	"leakpruning/internal/edgetable"
	"leakpruning/internal/gc"
	"leakpruning/internal/harness"
	"leakpruning/internal/heap"
	"leakpruning/internal/jitsim"
	"leakpruning/internal/vm"
	"leakpruning/internal/workload"
)

// benchCap bounds healthy leak runs inside benchmarks.
const benchCap = 2000

// runLeak executes one leak/policy configuration per b.N and reports the
// survived-iterations metric, averaged across the b.N runs (each run is an
// independent program execution, so the mean — not the last run — is the
// Table 1/2 statistic).
func runLeak(b *testing.B, program, policy string, fullHeapOnly bool) {
	b.Helper()
	var iterations, prunes float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(harness.Config{
			Program:      program,
			Policy:       policy,
			MaxIters:     benchCap,
			MaxDuration:  20 * time.Second,
			FullHeapOnly: fullHeapOnly,
		})
		if err != nil {
			b.Fatal(err)
		}
		iterations += float64(res.Iterations)
		prunes += float64(len(res.Prunes))
	}
	b.ReportMetric(iterations/float64(b.N), "iterations")
	b.ReportMetric(prunes/float64(b.N), "prunes")
}

// ---------------------------------------------------------------------------
// Table 1: ten leaks, base vs. leak pruning.

func BenchmarkTable1(b *testing.B) {
	for _, leak := range workload.LeakNames() {
		for _, policy := range []string{"off", "default"} {
			b.Run(leak+"/"+policy, func(b *testing.B) { runLeak(b, leak, policy, false) })
		}
	}
}

// ---------------------------------------------------------------------------
// Table 2: the prediction-algorithm comparison (§6.1).

func BenchmarkTable2(b *testing.B) {
	for _, leak := range workload.LeakNames() {
		for _, policy := range []string{"most-stale", "indiv-refs"} {
			b.Run(leak+"/"+policy, func(b *testing.B) { runLeak(b, leak, policy, false) })
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 6: read-barrier run-time overhead. The microbenchmark here isolates
// the barrier itself (ns per reference load) for both code shapes; the
// whole-program version is cmd/overheadbench -fig 6.

func benchLoads(b *testing.B, opts vm.Options) {
	opts.HeapLimit = 32 << 20
	opts.GCWorkers = 1
	machine := vm.New(opts)
	node := machine.DefineClass("Node", 1, 32)
	g := machine.AddGlobal()
	err := machine.RunThread("bench", func(t *vm.Thread) {
		chain := t.New(node)
		t.StoreGlobal(g, chain)
		for i := 0; i < 63; i++ {
			n := t.New(node)
			t.Store(n, 0, t.LoadGlobal(g))
			t.StoreGlobal(g, n)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i += 64 {
			t.Scope(func() {
				cur := t.LoadGlobal(g)
				for !cur.IsNull() {
					cur = t.Load(cur, 0)
				}
			})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFigure6ReadBarrier(b *testing.B) {
	b.Run("barriers-off", func(b *testing.B) {
		benchLoads(b, vm.Options{EnableBarriers: false})
	})
	b.Run("conditional", func(b *testing.B) {
		benchLoads(b, vm.Options{EnableBarriers: true, Barrier: vm.BarrierConditional})
	})
	b.Run("unconditional", func(b *testing.B) {
		benchLoads(b, vm.Options{EnableBarriers: true, Barrier: vm.BarrierUnconditional})
	})
}

// ---------------------------------------------------------------------------
// Figure 7: GC time in the Base / Observe / Select configurations.

func benchGC(b *testing.B, force string) {
	prog, err := workload.New("eclipse") // the largest microbenchmark
	if err != nil {
		b.Fatal(err)
	}
	var total time.Duration
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(harness.Config{
			Program:    "eclipse",
			Policy:     "off",
			HeapLimit:  prog.DefaultHeap(),
			MaxIters:   120,
			ForceState: force,
		})
		if err != nil {
			b.Fatal(err)
		}
		total += res.VMStats.GCTime
	}
	b.ReportMetric(float64(total.Microseconds())/float64(b.N), "gc-us")
}

func BenchmarkFigure7GCTime(b *testing.B) {
	b.Run("base", func(b *testing.B) { benchGC(b, "") })
	b.Run("observe", func(b *testing.B) { benchGC(b, "observe") })
	b.Run("select", func(b *testing.B) { benchGC(b, "select") })
}

// ---------------------------------------------------------------------------
// §5 compilation overhead (jitsim).

func BenchmarkCompile(b *testing.B) {
	corpus := jitsim.Corpus("bench", 50, 400)
	b.Run("plain", func(b *testing.B) {
		c := &jitsim.Compiler{}
		for i := 0; i < b.N; i++ {
			jitsim.CompileCorpus("bench", c, corpus)
		}
	})
	b.Run("read-barriers", func(b *testing.B) {
		c := &jitsim.Compiler{InsertReadBarriers: true}
		for i := 0; i < b.N; i++ {
			jitsim.CompileCorpus("bench", c, corpus)
		}
	})
}

// ---------------------------------------------------------------------------
// Figure 11 / §6.3 ablation: the 90% nearly-full threshold (option 2)
// versus waiting for 100% fullness (option 1). The interesting output is
// the worst iteration time: option 1's first prune comes after the VM has
// ground through exhaustion-time collections.

func BenchmarkFullHeapThreshold(b *testing.B) {
	run := func(b *testing.B, fullOnly bool) {
		var worst time.Duration
		var iterations float64
		for i := 0; i < b.N; i++ {
			res, err := harness.Run(harness.Config{
				Program: "eclipsediff", Policy: "default",
				MaxIters: 600, FullHeapOnly: fullOnly, RecordIterTimes: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			iterations += float64(res.Iterations)
			for _, d := range res.IterTimes {
				if d > worst {
					worst = d
				}
			}
		}
		b.ReportMetric(float64(worst.Microseconds()), "worst-iter-us")
		b.ReportMetric(iterations/float64(b.N), "iterations")
	}
	b.Run("option2-90pct", func(b *testing.B) { run(b, false) })
	b.Run("option1-100pct", func(b *testing.B) { run(b, true) })
}

// ---------------------------------------------------------------------------
// Ablation: the conservative two-greater staleness guard (§4.2) versus a
// one-greater guard. The looser guard prunes sooner but mispredicts
// rarely-used live structures, ending EclipseDiff early.

// guard1Policy is DefaultPolicy with the staleness margin lowered to one.
type guard1Policy struct{}

func (guard1Policy) Name() string { return "default-guard1" }
func (guard1Policy) Begin(env core.Env) core.Cycle {
	return &guard1Cycle{env: env}
}

type guard1Cycle struct{ env core.Env }

func (c *guard1Cycle) Candidate(src, tgt heap.ClassID, stale uint8) bool {
	return stale >= c.env.Edges.MaxStaleUseFor(src, tgt)+1 && stale >= 2
}
func (c *guard1Cycle) StaleEdge(src, tgt heap.ClassID, stale uint8, tgtBytes uint64) {}
func (c *guard1Cycle) AccountStaleBytes(src, tgt heap.ClassID, bytes uint64) {
	c.env.Edges.AddBytesUsed(src, tgt, bytes)
}
func (c *guard1Cycle) Finish(res gc.Result) (core.Selection, bool) {
	entry, ok := c.env.Edges.MaxBytesUsed()
	if !ok || entry.BytesUsed() == 0 {
		c.env.Edges.ResetBytesUsed()
		return nil, false
	}
	sel := &guard1Selection{env: c.env, src: entry.Key().Src, tgt: entry.Key().Tgt}
	c.env.Edges.ResetBytesUsed()
	return sel, true
}

type guard1Selection struct {
	env      core.Env
	src, tgt heap.ClassID
}

func (s *guard1Selection) ShouldPrune(src, tgt heap.ClassID, stale uint8) bool {
	return src == s.src && tgt == s.tgt &&
		stale >= s.env.Edges.MaxStaleUseFor(src, tgt)+1 && stale >= 2
}
func (s *guard1Selection) String() string { return "guard1 selection" }

func runPolicyDirect(b *testing.B, program string, policy core.Policy, cap int) int {
	b.Helper()
	prog, err := workload.New(program)
	if err != nil {
		b.Fatal(err)
	}
	machine := vm.New(vm.Options{
		HeapLimit:      prog.DefaultHeap(),
		EnableBarriers: true,
		Policy:         policy,
		GCWorkers:      2,
	})
	iters := 0
	_ = machine.RunThread("bench", func(t *vm.Thread) {
		t.Scope(func() { prog.Setup(t) })
		for i := 0; i < cap; i++ {
			iters = i + 1
			t.Scope(func() { prog.Iterate(t, i) })
		}
	})
	return iters
}

func BenchmarkAblationStaleGuard(b *testing.B) {
	b.Run("guard2-paper", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			iters = runPolicyDirect(b, "eclipsediff", core.DefaultPolicy{}, benchCap)
		}
		b.ReportMetric(float64(iters), "iterations")
	})
	b.Run("guard1-loose", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			iters = runPolicyDirect(b, "eclipsediff", guard1Policy{}, benchCap)
		}
		b.ReportMetric(float64(iters), "iterations")
	})
}

// ---------------------------------------------------------------------------
// Ablation: parallel tracing (§4.5). Builds a large object graph and
// measures one full collection at different tracer widths.

type benchRoots struct{ refs []heap.Ref }

func (r *benchRoots) VisitRoots(fn func(heap.Ref)) {
	for _, ref := range r.refs {
		fn(ref)
	}
}

func buildTraceHeap(b *testing.B) (*heap.Heap, *benchRoots) {
	b.Helper()
	reg := heap.NewRegistry()
	node := reg.Define("Node", 2, 64)
	h := heap.New(reg, 1<<30)
	roots := &benchRoots{}
	var build func(depth int) heap.Ref
	build = func(depth int) heap.Ref {
		r, err := h.Allocate(node)
		if err != nil {
			b.Fatal(err)
		}
		if depth > 0 {
			h.Get(r).SetRef(0, build(depth-1))
			h.Get(r).SetRef(1, build(depth-1))
		}
		return r
	}
	for i := 0; i < 4; i++ {
		roots.refs = append(roots.refs, build(15)) // 4 * 64K objects
	}
	return h, roots
}

func BenchmarkParallelTrace(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "workers-1", 2: "workers-2", 4: "workers-4", 8: "workers-8"}[workers],
			func(b *testing.B) {
				h, roots := buildTraceHeap(b)
				col := gc.NewCollector(h, roots, workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					col.Collect(gc.Plan{Mode: gc.ModeNormal})
				}
			})
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the core mechanisms.

func BenchmarkEdgeTable(b *testing.B) {
	b.Run("record-use", func(b *testing.B) {
		tbl := edgetable.New(0)
		for i := 0; i < b.N; i++ {
			tbl.RecordUse(heap.ClassID(i%64+1), heap.ClassID(i%32+1), uint8(2+i%5))
		}
	})
	b.Run("record-use-parallel", func(b *testing.B) {
		tbl := edgetable.New(0)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				tbl.RecordUse(heap.ClassID(i%64+1), heap.ClassID(i%32+1), uint8(2+i%5))
				i++
			}
		})
	})
	b.Run("max-bytes-used", func(b *testing.B) {
		tbl := edgetable.New(0)
		for i := 0; i < 1000; i++ {
			tbl.AddBytesUsed(heap.ClassID(i%100+1), heap.ClassID(i%50+1), uint64(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tbl.MaxBytesUsed()
		}
	})
}

func BenchmarkAllocation(b *testing.B) {
	machine := vm.New(vm.Options{HeapLimit: 64 << 20, EnableBarriers: true, GCWorkers: 2})
	cls := machine.DefineClass("Temp", 1, 64)
	err := machine.RunThread("bench", func(t *vm.Thread) {
		b.ResetTimer()
		for i := 0; i < b.N; i += 64 {
			t.Scope(func() {
				for j := 0; j < 64; j++ {
					t.New(cls)
				}
			})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrierColdPath lives in internal/vm (it needs to re-arm slots
// the way a collection would, which requires heap access).

// ---------------------------------------------------------------------------
// Extension: maxStaleUse decay (§6's suggested policy change for phased
// programs like JbbMod). Compares the default algorithm against the decay
// variant on the program whose phased access pattern motivates it.

func BenchmarkExtensionDecay(b *testing.B) {
	b.Run("jbbmod/default", func(b *testing.B) { runLeak(b, "jbbmod", "default", false) })
	b.Run("jbbmod/decay", func(b *testing.B) { runLeak(b, "jbbmod", "decay", false) })
}

// ---------------------------------------------------------------------------
// Substrate ablation: generational (nursery) collection vs. full-heap-only.
// Minor collections reclaim transient garbage without tracing the whole
// heap, so total collector time drops on churn-heavy programs.

func BenchmarkGenerational(b *testing.B) {
	run := func(b *testing.B, generational bool) {
		var full, minor uint64
		var gcTime time.Duration
		for i := 0; i < b.N; i++ {
			res, err := harness.Run(harness.Config{
				Program:      "eclipse",
				Policy:       "off",
				MaxIters:     150,
				Generational: generational,
			})
			if err != nil {
				b.Fatal(err)
			}
			full = res.VMStats.Collections
			minor = res.VMStats.MinorGCs
			gcTime = res.VMStats.GCTime + res.VMStats.MinorGCTime
		}
		b.ReportMetric(float64(full), "full-gcs")
		b.ReportMetric(float64(minor), "minor-gcs")
		b.ReportMetric(float64(gcTime.Microseconds()), "gc-us")
	}
	b.Run("full-heap-only", func(b *testing.B) { run(b, false) })
	b.Run("generational", func(b *testing.B) { run(b, true) })
}

// BenchmarkOffloadVsPruning contrasts the two leak-tolerance mechanisms on
// the all-dead ListLeak: offloading is bounded by the disk budget, pruning
// is not.
func BenchmarkOffloadVsPruning(b *testing.B) {
	b.Run("listleak/melt", func(b *testing.B) { runLeak(b, "listleak", "melt", false) })
	b.Run("listleak/default", func(b *testing.B) { runLeak(b, "listleak", "default", false) })
}
