module leakpruning

go 1.22
