package server

// The concurrent request pipeline: a per-tenant pool of K worker
// goroutines, each driving its own independent session of the tenant's
// workload inside the one tenant VM, fed by a bounded queue with
// backpressure. The safepoint protocol (PR 3) and the fully-concurrent
// mark/SELECT/PRUNE cycles (PR 5/8) are what make K mutator threads in
// one VM sound; this file is the daemon finally using them.
//
// The contract with the rest of the package:
//
//   - requests enter through Server.runPipelined, which enqueues under
//     Tenant.pipeMu's read side (so close/reshape, which holds the write
//     side, can never race an enqueue onto a dead pipeline) and bumps
//     pending BEFORE the enqueue;
//   - a worker dequeues, executes, records the outcome (finishRequest),
//     responds, and only THEN decrements pending — so pending == 0 means
//     "no request is queued, executing, or mid-bookkeeping", which is the
//     quiescence predicate Tenant.exclusive spins on for eviction drains,
//     rolling session swaps, and the shutdown audit;
//   - the response channel is buffered, so a caller abandoned by the
//     watchdog never wedges a worker: the late result is still executed,
//     still recorded, and the buffered send completes immediately.
//
// Head-of-line blocking is the enemy: with the serial pipeline a small
// request queues behind every large request ahead of it, so small-request
// tail latency is a multiple of the LARGE service time. With K workers
// the Go scheduler time-slices the sessions (the win needs no extra
// cores), and a small request's latency decouples from its neighbors'.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"leakpruning/internal/workload"
)

// pipelineReq is one queued request.
type pipelineReq struct {
	iters    int
	enqueued time.Time
	// cancel asks this request (alone) to stop at its next iteration
	// boundary; timedOut marks that the caller already took a watchdog
	// timeout, so the late outcome must not reset the fault streak.
	cancel   atomic.Bool
	timedOut atomic.Bool
	// resp is buffered (1): the worker's send never blocks, even when the
	// caller is long gone.
	resp chan pipelineResp
}

type pipelineResp struct {
	done int
	err  error
}

// pipeline is one tenant's concurrent request engine.
type pipeline struct {
	workers int
	depth   int
	queue   chan *pipelineReq
	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
	// pending counts requests from enqueue until the worker has recorded
	// the outcome and responded — the exclusive() quiescence predicate.
	pending atomic.Int64
	// seq names request threads uniquely across concurrent workers.
	seq atomic.Uint64
}

func newPipeline(t *Tenant, workers, depth int) *pipeline {
	p := &pipeline{
		workers: workers,
		depth:   depth,
		queue:   make(chan *pipelineReq, depth),
		stop:    make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go t.workerLoop(p, i)
	}
	return p
}

// close signals the workers to exit after their current request. It does
// not wait: a wedged request must not block eviction any harder than it
// already blocked the drain (callers that need quiescence use
// Tenant.exclusive BEFORE closing).
func (p *pipeline) close() {
	p.stopped.Do(func() { close(p.stop) })
}

// workerSession is one worker's private session: a program instance and
// iteration cursor bound to a session epoch, rebuilt lazily whenever the
// tenant's epoch moves (OOM restart, rolling swap).
type workerSession struct {
	epoch int64
	st    execState
}

// workerLoop is one of the K pool goroutines. It lives until the
// pipeline is closed (tenant eviction, daemon shutdown, or a reshape to a
// different pool geometry), then fails any still-queued requests so no
// caller waits on a dead pipeline.
func (t *Tenant) workerLoop(p *pipeline, id int) {
	defer p.wg.Done()
	var sess workerSession
	for {
		select {
		case <-p.stop:
			for {
				select {
				case req := <-p.queue:
					t.failQueued(p, req)
				default:
					return
				}
			}
		case req := <-p.queue:
			t.serveQueued(p, &sess, id, req)
		}
	}
}

// failQueued answers a request that outlived its pipeline.
func (t *Tenant) failQueued(p *pipeline, req *pipelineReq) {
	t.cancelled.Add(1)
	err := &RequestCancelledError{Tenant: t.Config().Name}
	t.srv.finishRequest(t, err, t.sessionEpoch.Load(), req.timedOut.Load())
	req.resp <- pipelineResp{err: err}
	p.pending.Add(-1)
}

// serveQueued executes one dequeued request on the worker's private
// session, records the outcome, and responds.
func (t *Tenant) serveQueued(p *pipeline, sess *workerSession, id int, req *pipelineReq) {
	s := t.srv
	t.queueDepth.Set(int64(len(p.queue)))
	t.queueWait.Observe(uint64(time.Since(req.enqueued)))

	// Rebind the private session if the tenant's session moved since this
	// worker's last request. Ordering note: the epoch is read BEFORE the
	// VM pointer, so at worst the worker runs a fresh program on a fresh
	// VM while remembering a stale epoch — and rebinds again next time.
	epoch := t.sessionEpoch.Load()
	if sess.st.prog == nil || sess.epoch != epoch {
		cfg := t.Config()
		prog, err := workload.New(cfg.Workload)
		if err != nil {
			// The workload vanished from the registry mid-flight; treat it
			// like any other tenant fault.
			s.finishRequest(t, err, epoch, req.timedOut.Load())
			req.resp <- pipelineResp{err: err}
			p.pending.Add(-1)
			return
		}
		sess.epoch = epoch
		sess.st = execState{machine: t.currentVM(), prog: prog}
	}

	reqName := fmt.Sprintf("%s/w%d-req-%d", t.Config().Name, id, p.seq.Add(1))
	st, done, err := t.executeRequest(sess.st, reqName, req.iters, true, func() bool {
		return req.cancel.Load() || t.cancel.Load() || t.srv.cancelAll.Load()
	})
	sess.st = st
	s.finishRequest(t, err, sess.epoch, req.timedOut.Load())
	req.resp <- pipelineResp{done: done, err: err}
	p.pending.Add(-1)
}

// pipelineHandle returns the tenant's live pipeline (nil = serial).
func (t *Tenant) pipelineHandle() *pipeline {
	t.pipeMu.RLock()
	defer t.pipeMu.RUnlock()
	return t.pipe
}

// enqueue places req on the pipeline's bounded queue, shedding with a
// typed *QueueFullError when the queue is at depth. It holds pipeMu's
// read side across the (non-blocking) enqueue so a concurrent
// close/reshape — which holds the write side — can never strand the
// request on a pipeline whose workers already exited.
func (t *Tenant) enqueue(req *pipelineReq) (*pipeline, error) {
	t.pipeMu.RLock()
	defer t.pipeMu.RUnlock()
	p := t.pipe
	if p == nil {
		// Reshaped to serial between dispatch and enqueue; the caller falls
		// back to the serial path.
		return nil, nil
	}
	p.pending.Add(1)
	select {
	case p.queue <- req:
		t.queueDepth.Set(int64(len(p.queue)))
		return p, nil
	default:
		p.pending.Add(-1)
		return nil, &QueueFullError{Tenant: t.Config().Name, Depth: p.depth}
	}
}

// reshapePipeline swaps the tenant's request engine to match tc. Caller
// must hold the tenant exclusively (session swap path). Same-geometry
// concurrent→concurrent updates keep the pool: the workers rebind their
// sessions on the epoch bump alone.
func (t *Tenant) reshapePipeline(tc TenantConfig) {
	conc, workers, depth := tc.pipelineSettings()
	t.pipeMu.Lock()
	defer t.pipeMu.Unlock()
	if t.pipe != nil && conc && t.pipe.workers == workers && t.pipe.depth == depth {
		return
	}
	if t.pipe != nil {
		t.pipe.close()
		t.pipe = nil
	}
	if conc {
		t.pipe = newPipeline(t, workers, depth)
	}
}

// closePipeline tears the engine down on tenant drop.
func (t *Tenant) closePipeline() {
	t.pipeMu.Lock()
	defer t.pipeMu.Unlock()
	if t.pipe != nil {
		t.pipe.close()
		t.pipe = nil
	}
}
