package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"leakpruning/internal/core"
	"leakpruning/internal/faultinject"
	"leakpruning/internal/obs"
	"leakpruning/internal/vm"
	"leakpruning/internal/workload"
)

// TenantState is one tenant's lifecycle position: admit → serve →
// (pressure) → evict/quarantine → drain. See DESIGN.md's state diagram.
type TenantState int32

const (
	// TenantServing accepts requests.
	TenantServing TenantState = iota
	// TenantQuarantined stopped accepting after K consecutive faults; the
	// VM is kept (for diagnosis and a possible operator-driven restart via
	// the config endpoint) but no request reaches it.
	TenantQuarantined
	// TenantEvicting is mid-eviction: new requests are rejected while
	// in-flight ones drain against the deadline.
	TenantEvicting
	// TenantEvicted is terminal; the slot is released from the budget.
	TenantEvicted
)

func (s TenantState) String() string {
	switch s {
	case TenantServing:
		return "serving"
	case TenantQuarantined:
		return "quarantined"
	case TenantEvicting:
		return "evicting"
	case TenantEvicted:
		return "evicted"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// TenantConfig describes one tenant VM: its workload, pruning policy, and
// heap limit. It is the admission request body and the unit of rolling
// config updates.
type TenantConfig struct {
	// Name identifies the tenant in every route, metric label, and log.
	Name string `json:"name"`
	// Workload names the session program driven by this tenant's requests
	// (see workload.Names).
	Workload string `json:"workload"`
	// Policy is the pruning policy: "off" (no pruning — the tenant dies at
	// its heap limit and is session-restarted), "default", "most-stale",
	// "indiv-refs", "decay", or "melt" (the disk-offload baseline).
	Policy string `json:"policy"`
	// HeapLimit is the tenant VM's simulated heap in bytes. Admission
	// enforces HeapLimit <= budget and the overcommit bound on the sum.
	HeapLimit uint64 `json:"heap_limit"`
	// MarkMode is "" or "stw" (default), or "concurrent".
	MarkMode string `json:"mark_mode,omitempty"`
	// GCWorkers sets tracer parallelism (0 = 1: tenants are many, cores are
	// few, and single-worker tracing keeps per-tenant behavior
	// deterministic for the isolation proofs).
	GCWorkers int `json:"gc_workers,omitempty"`
	// NearlyFullFraction seeds the tenant's OBSERVE → SELECT threshold
	// (0 = the paper's 0.9). The budget ladder may tighten it at runtime.
	NearlyFullFraction float64 `json:"nearly_full_fraction,omitempty"`
	// DiskLimit sizes the melt policy's simulated disk (0 = 2x heap).
	DiskLimit uint64 `json:"disk_limit,omitempty"`
	// AuditEveryGC arms the heap invariant audit inside every collection.
	AuditEveryGC bool `json:"audit_every_gc,omitempty"`
	// Pipeline selects the request execution model: "" or "serial" (the
	// default — one request at a time behind the exclusive tenant lock,
	// which keeps per-tenant behavior deterministic and serves as the
	// equivalence oracle), or "concurrent" (a pool of Workers session
	// threads fed by a bounded queue, so small requests stop waiting
	// head-of-line behind large ones).
	Pipeline string `json:"pipeline,omitempty"`
	// Workers is the concurrent pipeline's pool size K (0 = 4). Each
	// worker drives its own independent session of the workload inside the
	// tenant VM — the multi-thread mutator shape the safepoint protocol
	// makes sound. Rejected unless Pipeline is "concurrent".
	Workers int `json:"workers,omitempty"`
	// QueueDepth bounds the concurrent pipeline's request queue
	// (0 = 4*Workers). A full queue sheds the request with a typed
	// *QueueFullError (HTTP 429). Rejected unless Pipeline is "concurrent".
	QueueDepth int `json:"queue_depth,omitempty"`

	// VMInjector arms fault injection inside this tenant's VM (nil = off).
	VMInjector *faultinject.Injector `json:"-"`
	// DaemonInjector arms the daemon-level points (TenantRequestPanic,
	// EvictDrainTimeout) for this tenant only (nil = off). Chaos scenarios
	// use it to storm one tenant while its siblings run clean.
	DaemonInjector *faultinject.Injector `json:"-"`
}

// vmOptions translates the tenant config into vm.Options. The result is
// validated with vm.ValidateOptions before any VM is constructed, so a bad
// rolling update is rejected with a typed error instead of panicking the
// daemon mid-swap.
func (tc TenantConfig) vmOptions(o *obs.Obs) (vm.Options, error) {
	opts := vm.Options{
		HeapLimit:          tc.HeapLimit,
		EnableBarriers:     true,
		GCWorkers:          tc.GCWorkers,
		NearlyFullFraction: tc.NearlyFullFraction,
		FaultInjector:      tc.VMInjector,
		AuditEveryGC:       tc.AuditEveryGC,
		HashLiveSet:        true,
		Obs:                o,
	}
	if opts.GCWorkers == 0 {
		opts.GCWorkers = 1
	}
	switch tc.Policy {
	case "melt":
		opts.OffloadDisk = tc.DiskLimit
		if opts.OffloadDisk == 0 {
			opts.OffloadDisk = 2 * tc.HeapLimit
		}
	case "", "off", "base", "none":
		// No pruning: barriers stay on so staleness metrics exist, but the
		// tenant relies on plain collection (and session restarts at OOM).
	default:
		p, err := core.PolicyByName(tc.Policy)
		if err != nil {
			return vm.Options{}, err
		}
		opts.Policy = p
	}
	switch tc.MarkMode {
	case "", "stw":
	case "concurrent":
		opts.MarkMode = vm.MarkConcurrent
	default:
		return vm.Options{}, fmt.Errorf("server: unknown mark mode %q", tc.MarkMode)
	}
	switch tc.Pipeline {
	case "", PipelineSerial:
		if tc.Workers != 0 || tc.QueueDepth != 0 {
			return vm.Options{}, fmt.Errorf("server: Workers/QueueDepth require pipeline %q", PipelineConcurrent)
		}
	case PipelineConcurrent:
		if tc.Workers < 0 || tc.QueueDepth < 0 {
			return vm.Options{}, fmt.Errorf("server: Workers and QueueDepth must be non-negative")
		}
	default:
		return vm.Options{}, fmt.Errorf("server: unknown pipeline %q", tc.Pipeline)
	}
	if err := vm.ValidateOptions(opts); err != nil {
		return vm.Options{}, err
	}
	return opts, nil
}

// Pipeline modes for TenantConfig.Pipeline.
const (
	PipelineSerial     = "serial"
	PipelineConcurrent = "concurrent"
)

// pipelineSettings resolves the Pipeline/Workers/QueueDepth triple with
// its defaults applied.
func (tc TenantConfig) pipelineSettings() (concurrent bool, workers, depth int) {
	if tc.Pipeline != PipelineConcurrent {
		return false, 0, 0
	}
	workers = tc.Workers
	if workers == 0 {
		workers = 4
	}
	depth = tc.QueueDepth
	if depth == 0 {
		depth = 4 * workers
	}
	return true, workers, depth
}

// Tenant is one hosted session: a VM, its workload program, and the
// fault-isolation bookkeeping around them. Requests are serialized per
// tenant through lockCh (a channel so eviction and shutdown can attempt
// timed acquisition); distinct tenants serve fully in parallel.
type Tenant struct {
	srv *Server

	// cfgMu guards cfg (rolling updates rewrite it).
	cfgMu sync.Mutex
	cfg   TenantConfig

	// lockCh is the request lock: one token means "free". Serial-pipeline
	// requests hold it for their whole execution; concurrent-pipeline
	// requests never take it (the worker pool owns execution), so
	// maintenance paths that need full quiescence go through exclusive(),
	// which takes lockCh AND drains the pipeline's pending counter.
	lockCh chan struct{}

	// vmMu guards the vm/program pointers only (held for pointer swaps and
	// reads, never across a request), so the budget prober can reach the
	// current VM while a request holds lockCh.
	vmMu  sync.Mutex
	vm    *vm.VM
	prog  workload.Program
	ready bool // Setup has run on the current session

	// sessionEpoch increments on every startSession. Pipeline workers
	// compare it against their private session's epoch to rebind lazily
	// after an OOM restart or rolling swap, and restartSession uses it to
	// dedupe concurrent restart attempts from sibling workers.
	sessionEpoch atomic.Int64
	// restartMu serializes restartSession: with K workers, two requests
	// can OOM on the same session back to back.
	restartMu sync.Mutex

	// pipeMu guards the pipe pointer and orders enqueues against pipeline
	// close/reshape: enqueue happens under the read side, so once a writer
	// holds pipeMu no request can land on a pipeline it is about to close.
	pipeMu sync.RWMutex
	pipe   *pipeline // nil = serial

	state atomic.Int32 // TenantState

	// cancel asks the in-flight request to stop at its next iteration
	// boundary (evict drain, daemon shutdown).
	cancel atomic.Bool

	// iter is the workload's absolute iteration cursor for this session.
	iter int

	// Fault bookkeeping (mu-free: written only under lockCh plus the
	// watchdog path, so atomics keep the -race suite honest).
	consecFaults atomic.Int64
	requests     atomic.Uint64
	faults       atomic.Uint64
	restarts     atomic.Uint64
	cancelled    atomic.Uint64

	lastErrMu sync.Mutex
	lastErr   string

	// hashMu guards the per-cycle live-set hash log (appended from OnGC
	// inside the tenant VM's stop-the-world pauses; read by chaos).
	hashMu sync.Mutex
	hashes []uint64

	// residentGauge is this tenant's lp_tenant_resident_bytes series.
	residentGauge *obs.Gauge
	// latency holds the tenant's lp_request_latency_ns series, one per
	// budget-ladder level; queueWait and queueDepth instrument the
	// concurrent pipeline (registered even for serial tenants so a rolling
	// swap to concurrent needs no re-registration).
	latency    [ladderLevels]*obs.Histogram
	queueWait  *obs.Histogram
	queueDepth *obs.Gauge
}

// newTenant builds the tenant shell and its first session VM.
func newTenant(s *Server, cfg TenantConfig) (*Tenant, error) {
	t := &Tenant{srv: s, cfg: cfg, lockCh: make(chan struct{}, 1)}
	t.lockCh <- struct{}{} // free
	t.residentGauge = s.reg().NewGauge("lp_tenant_resident_bytes",
		"per-tenant resident heap bytes", obs.L("tenant", cfg.Name))
	t.queueWait = s.reg().NewHistogram("lp_request_queue_wait_ns",
		"time requests spent queued in the tenant pipeline", obs.LatencyBucketsNs,
		obs.L("tenant", cfg.Name))
	t.queueDepth = s.reg().NewGauge("lp_request_queue_depth",
		"requests waiting in the tenant pipeline queue", obs.L("tenant", cfg.Name))
	s.registerLatencySeries(t, cfg.Name)
	if err := t.startSession(cfg); err != nil {
		return nil, err
	}
	if conc, workers, depth := cfg.pipelineSettings(); conc {
		t.pipe = newPipeline(t, workers, depth)
	}
	return t, nil
}

// startSession replaces the tenant's VM and program with a fresh session
// built from cfg. Callers must ensure no request is running (hold the
// request lock or be the constructor).
func (t *Tenant) startSession(cfg TenantConfig) error {
	opts, err := cfg.vmOptions(t.srv.obs)
	if err != nil {
		return err
	}
	prog, err := workload.New(cfg.Workload)
	if err != nil {
		return err
	}
	opts.OnGC = func(ev vm.Event) {
		t.hashMu.Lock()
		t.hashes = append(t.hashes, ev.LiveHash)
		t.hashMu.Unlock()
	}
	machine := vm.New(opts)
	t.vmMu.Lock()
	t.vm = machine
	t.prog = prog
	t.ready = false
	t.vmMu.Unlock()
	t.iter = 0
	// Pipeline workers rebind their private sessions on the next request.
	t.sessionEpoch.Add(1)
	return nil
}

// currentVM returns the live session VM (prober, metrics, audits).
func (t *Tenant) currentVM() *vm.VM {
	t.vmMu.Lock()
	defer t.vmMu.Unlock()
	return t.vm
}

// State returns the tenant's lifecycle state.
func (t *Tenant) State() TenantState { return TenantState(t.state.Load()) }

// Config returns a copy of the tenant's current configuration.
func (t *Tenant) Config() TenantConfig {
	t.cfgMu.Lock()
	defer t.cfgMu.Unlock()
	return t.cfg
}

// CycleHashes returns the per-cycle live-set hash log across the tenant's
// current session — the byte-identical-sibling oracle the chaos isolation
// scenarios compare against a fault-free control.
func (t *Tenant) CycleHashes() []uint64 {
	t.hashMu.Lock()
	defer t.hashMu.Unlock()
	return append([]uint64(nil), t.hashes...)
}

// acquire takes the request lock, or gives up after d (d <= 0: wait
// forever).
func (t *Tenant) acquire(d time.Duration) bool {
	if d <= 0 {
		<-t.lockCh
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-t.lockCh:
		return true
	case <-timer.C:
		return false
	}
}

func (t *Tenant) release() { t.lockCh <- struct{}{} }

// exclusive acquires the tenant for maintenance (session swap, eviction
// drain, shutdown audit): the request lock, plus — when a concurrent
// pipeline is attached — full quiescence of the worker pool. Serial
// requests hold lockCh for their whole execution, so the lock alone
// excludes them; pipelined requests never touch it, so quiescence there
// is "no request enqueued or in flight", i.e. the pipeline's pending
// counter at zero. Callers must t.release() on success.
func (t *Tenant) exclusive(d time.Duration) bool {
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	if !t.acquire(d) {
		return false
	}
	t.pipeMu.RLock()
	p := t.pipe
	t.pipeMu.RUnlock()
	if p == nil {
		return true
	}
	for p.pending.Load() != 0 {
		if d > 0 && time.Now().After(deadline) {
			t.release()
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
	return true
}

// setLastErr records the most recent fault for /tenants.
func (t *Tenant) setLastErr(err error) {
	t.lastErrMu.Lock()
	if err == nil {
		t.lastErr = ""
	} else {
		t.lastErr = err.Error()
	}
	t.lastErrMu.Unlock()
}

// LastError returns the most recent fault message ("" when the last
// request succeeded).
func (t *Tenant) LastError() string {
	t.lastErrMu.Lock()
	defer t.lastErrMu.Unlock()
	return t.lastErr
}

// execState is one request-execution context: a VM, a program instance,
// and the session's iteration cursor. The serial path materializes it
// from the tenant fields each request; every pipeline worker owns a
// private one, so K workers drive K independent sessions of the workload
// inside the one tenant VM.
type execState struct {
	machine *vm.VM
	prog    workload.Program
	ready   bool // Setup has run for this session
	iter    int  // the session's absolute iteration cursor
}

// serve executes one request (iters workload iterations) on the tenant's
// serial session. Caller holds the request lock.
func (t *Tenant) serve(iters int) (done int, err error) {
	t.vmMu.Lock()
	st := execState{machine: t.vm, prog: t.prog, ready: t.ready, iter: t.iter}
	t.vmMu.Unlock()
	reqName := fmt.Sprintf("%s/req-%d", t.Config().Name, t.requests.Load())
	st, done, err = t.executeRequest(st, reqName, iters, false, func() bool {
		return t.cancel.Load() || t.srv.cancelAll.Load()
	})
	t.vmMu.Lock()
	if t.vm == st.machine { // session not swapped out from under the request
		t.ready = st.ready
	}
	t.vmMu.Unlock()
	t.iter = st.iter
	return done, err
}

// executeRequest runs one request against st and returns the advanced
// state. It is the shared core of the serial path and the pipeline
// workers — panic recovery and error typing are identical on both, which
// is what keeps the serial pipeline a meaningful equivalence oracle. The
// three failure classes are kept apart deliberately:
//
//   - VM traps (OutOfMemoryError, InternalError, OffloadError) arrive as
//     typed errors from RunThread — the leak-pruning outcome the daemon
//     exists to host;
//   - raw panics (the TenantRequestPanic injection stands in for handler
//     bugs) are recovered HERE, at the tenant boundary, and converted to
//     *RequestPanicError — the crash-isolation guarantee;
//   - cancellation (drain, eviction, watchdog abandonment) surfaces as
//     *RequestCancelledError at an iteration boundary.
//
// yield inserts a cooperative scheduling point after every iteration.
// Pipeline workers set it: on an oversubscribed host the Go scheduler's
// preemption slice (~10ms) is three orders of magnitude coarser than one
// workload iteration, so without an explicit yield a long request holds
// the processor for whole slices and small requests on sibling workers
// wait out full scheduler rounds — head-of-line blocking reintroduced by
// the runtime after the pipeline removed it from the lock. Yielding at
// iteration granularity lets the run queue rotate per ~25µs of work. The
// serial path never yields: it is the preserved baseline the pipeline is
// measured against, and with one session thread there is nobody to yield
// to.
func (t *Tenant) executeRequest(st execState, reqName string, iters int, yield bool, cancelled func() bool) (out execState, done int, err error) {
	cfg := t.Config()
	defer func() {
		// A panic escapes with the closure's st mutations intact, so the
		// session cursor keeps the progress made before the blowup.
		out = st
		if r := recover(); r != nil {
			err = &RequestPanicError{Tenant: cfg.Name, Panic: fmt.Sprint(r)}
		}
	}()
	runErr := st.machine.RunThread(reqName, func(th *vm.Thread) {
		if cfg.DaemonInjector.Should(faultinject.TenantRequestPanic) {
			panic(fmt.Sprintf("faultinject: tenant %s request handler panic", cfg.Name))
		}
		if !st.ready {
			th.Scope(func() { st.prog.Setup(th) })
			st.ready = true
		}
		for i := 0; i < iters; i++ {
			if cancelled() {
				return
			}
			th.Scope(func() { st.prog.Iterate(th, st.iter) })
			st.iter++
			done = i + 1
			if yield {
				runtime.Gosched()
			}
		}
	})
	if runErr != nil {
		return st, done, runErr
	}
	if done < iters {
		t.cancelled.Add(1)
		return st, done, &RequestCancelledError{Tenant: cfg.Name, IterationsDone: done}
	}
	return st, done, nil
}

// recordOutcome updates fault bookkeeping after a request and flips the
// tenant into quarantine at the K-th consecutive fault. Session restarts
// (OOM) are handled by the caller.
func (t *Tenant) recordOutcome(err error) {
	if err == nil {
		t.consecFaults.Store(0)
		t.setLastErr(nil)
		return
	}
	t.setLastErr(err)
	t.faults.Add(1)
	k := t.consecFaults.Add(1)
	if limit := int64(t.srv.cfg.QuarantineThreshold); limit > 0 && k >= limit {
		if t.state.CompareAndSwap(int32(TenantServing), int32(TenantQuarantined)) {
			t.srv.mQuarantines.Inc()
			t.srv.logf("tenant %s quarantined after %d consecutive faults (last: %v)", t.Config().Name, k, err)
		}
	}
}

// TenantStatus is the /tenants JSON row.
type TenantStatus struct {
	Name       string  `json:"name"`
	Workload   string  `json:"workload"`
	Policy     string  `json:"policy"`
	State      string  `json:"state"`
	Pipeline   string  `json:"pipeline"`
	Workers    int     `json:"workers,omitempty"`
	HeapLimit  uint64  `json:"heap_limit"`
	Resident   uint64  `json:"resident_bytes"`
	NearlyFull float64 `json:"nearly_full_fraction"`
	PruneState string  `json:"prune_state"`

	Requests     uint64 `json:"requests"`
	Faults       uint64 `json:"faults"`
	ConsecFaults int64  `json:"consecutive_faults"`
	Restarts     uint64 `json:"session_restarts"`
	Cancelled    uint64 `json:"cancelled_requests"`

	Collections     uint64 `json:"collections"`
	PrunedRefs      uint64 `json:"pruned_refs"`
	PoisonTraps     uint64 `json:"poison_traps"`
	AuditsRun       uint64 `json:"audits_run,omitempty"`
	AuditViolations uint64 `json:"audit_violations,omitempty"`
	Cycles          int    `json:"live_hash_cycles"`
	LastError       string `json:"last_error,omitempty"`
}

// Status snapshots the tenant: the /tenants JSON row, also what the chaos
// and load-generation harnesses read their oracles from.
func (t *Tenant) Status() TenantStatus { return t.status() }

// status snapshots the tenant for /tenants and logs.
func (t *Tenant) status() TenantStatus {
	cfg := t.Config()
	machine := t.currentVM()
	st := TenantStatus{
		Name:         cfg.Name,
		Workload:     cfg.Workload,
		Policy:       policyLabel(cfg.Policy),
		State:        t.State().String(),
		Pipeline:     PipelineSerial,
		HeapLimit:    cfg.HeapLimit,
		Requests:     t.requests.Load(),
		Faults:       t.faults.Load(),
		ConsecFaults: t.consecFaults.Load(),
		Restarts:     t.restarts.Load(),
		Cancelled:    t.cancelled.Load(),
		LastError:    t.LastError(),
	}
	if conc, workers, _ := cfg.pipelineSettings(); conc {
		st.Pipeline = PipelineConcurrent
		st.Workers = workers
	}
	if machine != nil {
		st.Resident = machine.HeapStats().BytesUsed
		st.NearlyFull = machine.NearlyFullFraction()
		st.PruneState = machine.State().String()
		vs := machine.Stats()
		st.Collections = vs.Collections
		st.PrunedRefs = vs.PrunedRefs
		st.PoisonTraps = vs.PoisonTraps
		st.AuditsRun = vs.AuditsRun
		st.AuditViolations = vs.AuditViolations
	}
	t.hashMu.Lock()
	st.Cycles = len(t.hashes)
	t.hashMu.Unlock()
	return st
}

func policyLabel(name string) string {
	switch name {
	case "", "off", "base", "none":
		return "off"
	}
	return name
}
