package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"leakpruning/internal/core"
	"leakpruning/internal/faultinject"
	"leakpruning/internal/obs"
	"leakpruning/internal/vm"
	"leakpruning/internal/workload"
)

// TenantState is one tenant's lifecycle position: admit → serve →
// (pressure) → evict/quarantine → drain. See DESIGN.md's state diagram.
type TenantState int32

const (
	// TenantServing accepts requests.
	TenantServing TenantState = iota
	// TenantQuarantined stopped accepting after K consecutive faults; the
	// VM is kept (for diagnosis and a possible operator-driven restart via
	// the config endpoint) but no request reaches it.
	TenantQuarantined
	// TenantEvicting is mid-eviction: new requests are rejected while
	// in-flight ones drain against the deadline.
	TenantEvicting
	// TenantEvicted is terminal; the slot is released from the budget.
	TenantEvicted
)

func (s TenantState) String() string {
	switch s {
	case TenantServing:
		return "serving"
	case TenantQuarantined:
		return "quarantined"
	case TenantEvicting:
		return "evicting"
	case TenantEvicted:
		return "evicted"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// TenantConfig describes one tenant VM: its workload, pruning policy, and
// heap limit. It is the admission request body and the unit of rolling
// config updates.
type TenantConfig struct {
	// Name identifies the tenant in every route, metric label, and log.
	Name string `json:"name"`
	// Workload names the session program driven by this tenant's requests
	// (see workload.Names).
	Workload string `json:"workload"`
	// Policy is the pruning policy: "off" (no pruning — the tenant dies at
	// its heap limit and is session-restarted), "default", "most-stale",
	// "indiv-refs", "decay", or "melt" (the disk-offload baseline).
	Policy string `json:"policy"`
	// HeapLimit is the tenant VM's simulated heap in bytes. Admission
	// enforces HeapLimit <= budget and the overcommit bound on the sum.
	HeapLimit uint64 `json:"heap_limit"`
	// MarkMode is "" or "stw" (default), or "concurrent".
	MarkMode string `json:"mark_mode,omitempty"`
	// GCWorkers sets tracer parallelism (0 = 1: tenants are many, cores are
	// few, and single-worker tracing keeps per-tenant behavior
	// deterministic for the isolation proofs).
	GCWorkers int `json:"gc_workers,omitempty"`
	// NearlyFullFraction seeds the tenant's OBSERVE → SELECT threshold
	// (0 = the paper's 0.9). The budget ladder may tighten it at runtime.
	NearlyFullFraction float64 `json:"nearly_full_fraction,omitempty"`
	// DiskLimit sizes the melt policy's simulated disk (0 = 2x heap).
	DiskLimit uint64 `json:"disk_limit,omitempty"`
	// AuditEveryGC arms the heap invariant audit inside every collection.
	AuditEveryGC bool `json:"audit_every_gc,omitempty"`

	// VMInjector arms fault injection inside this tenant's VM (nil = off).
	VMInjector *faultinject.Injector `json:"-"`
	// DaemonInjector arms the daemon-level points (TenantRequestPanic,
	// EvictDrainTimeout) for this tenant only (nil = off). Chaos scenarios
	// use it to storm one tenant while its siblings run clean.
	DaemonInjector *faultinject.Injector `json:"-"`
}

// vmOptions translates the tenant config into vm.Options. The result is
// validated with vm.ValidateOptions before any VM is constructed, so a bad
// rolling update is rejected with a typed error instead of panicking the
// daemon mid-swap.
func (tc TenantConfig) vmOptions(o *obs.Obs) (vm.Options, error) {
	opts := vm.Options{
		HeapLimit:          tc.HeapLimit,
		EnableBarriers:     true,
		GCWorkers:          tc.GCWorkers,
		NearlyFullFraction: tc.NearlyFullFraction,
		FaultInjector:      tc.VMInjector,
		AuditEveryGC:       tc.AuditEveryGC,
		HashLiveSet:        true,
		Obs:                o,
	}
	if opts.GCWorkers == 0 {
		opts.GCWorkers = 1
	}
	switch tc.Policy {
	case "melt":
		opts.OffloadDisk = tc.DiskLimit
		if opts.OffloadDisk == 0 {
			opts.OffloadDisk = 2 * tc.HeapLimit
		}
	case "", "off", "base", "none":
		// No pruning: barriers stay on so staleness metrics exist, but the
		// tenant relies on plain collection (and session restarts at OOM).
	default:
		p, err := core.PolicyByName(tc.Policy)
		if err != nil {
			return vm.Options{}, err
		}
		opts.Policy = p
	}
	switch tc.MarkMode {
	case "", "stw":
	case "concurrent":
		opts.MarkMode = vm.MarkConcurrent
	default:
		return vm.Options{}, fmt.Errorf("server: unknown mark mode %q", tc.MarkMode)
	}
	if err := vm.ValidateOptions(opts); err != nil {
		return vm.Options{}, err
	}
	return opts, nil
}

// Tenant is one hosted session: a VM, its workload program, and the
// fault-isolation bookkeeping around them. Requests are serialized per
// tenant through lockCh (a channel so eviction and shutdown can attempt
// timed acquisition); distinct tenants serve fully in parallel.
type Tenant struct {
	srv *Server

	// cfgMu guards cfg (rolling updates rewrite it).
	cfgMu sync.Mutex
	cfg   TenantConfig

	// lockCh is the request lock: one token means "free".
	lockCh chan struct{}

	// vmMu guards the vm/program pointers only (held for pointer swaps and
	// reads, never across a request), so the budget prober can reach the
	// current VM while a request holds lockCh.
	vmMu  sync.Mutex
	vm    *vm.VM
	prog  workload.Program
	ready bool // Setup has run on the current session

	state atomic.Int32 // TenantState

	// cancel asks the in-flight request to stop at its next iteration
	// boundary (evict drain, daemon shutdown).
	cancel atomic.Bool

	// iter is the workload's absolute iteration cursor for this session.
	iter int

	// Fault bookkeeping (mu-free: written only under lockCh plus the
	// watchdog path, so atomics keep the -race suite honest).
	consecFaults atomic.Int64
	requests     atomic.Uint64
	faults       atomic.Uint64
	restarts     atomic.Uint64
	cancelled    atomic.Uint64

	lastErrMu sync.Mutex
	lastErr   string

	// hashMu guards the per-cycle live-set hash log (appended from OnGC
	// inside the tenant VM's stop-the-world pauses; read by chaos).
	hashMu sync.Mutex
	hashes []uint64

	// residentGauge is this tenant's lp_tenant_resident_bytes series.
	residentGauge *obs.Gauge
}

// newTenant builds the tenant shell and its first session VM.
func newTenant(s *Server, cfg TenantConfig) (*Tenant, error) {
	t := &Tenant{srv: s, cfg: cfg, lockCh: make(chan struct{}, 1)}
	t.lockCh <- struct{}{} // free
	t.residentGauge = s.reg().NewGauge("lp_tenant_resident_bytes",
		"per-tenant resident heap bytes", obs.L("tenant", cfg.Name))
	if err := t.startSession(cfg); err != nil {
		return nil, err
	}
	return t, nil
}

// startSession replaces the tenant's VM and program with a fresh session
// built from cfg. Callers must ensure no request is running (hold the
// request lock or be the constructor).
func (t *Tenant) startSession(cfg TenantConfig) error {
	opts, err := cfg.vmOptions(t.srv.obs)
	if err != nil {
		return err
	}
	prog, err := workload.New(cfg.Workload)
	if err != nil {
		return err
	}
	opts.OnGC = func(ev vm.Event) {
		t.hashMu.Lock()
		t.hashes = append(t.hashes, ev.LiveHash)
		t.hashMu.Unlock()
	}
	machine := vm.New(opts)
	t.vmMu.Lock()
	t.vm = machine
	t.prog = prog
	t.ready = false
	t.vmMu.Unlock()
	t.iter = 0
	return nil
}

// currentVM returns the live session VM (prober, metrics, audits).
func (t *Tenant) currentVM() *vm.VM {
	t.vmMu.Lock()
	defer t.vmMu.Unlock()
	return t.vm
}

// State returns the tenant's lifecycle state.
func (t *Tenant) State() TenantState { return TenantState(t.state.Load()) }

// Config returns a copy of the tenant's current configuration.
func (t *Tenant) Config() TenantConfig {
	t.cfgMu.Lock()
	defer t.cfgMu.Unlock()
	return t.cfg
}

// CycleHashes returns the per-cycle live-set hash log across the tenant's
// current session — the byte-identical-sibling oracle the chaos isolation
// scenarios compare against a fault-free control.
func (t *Tenant) CycleHashes() []uint64 {
	t.hashMu.Lock()
	defer t.hashMu.Unlock()
	return append([]uint64(nil), t.hashes...)
}

// acquire takes the request lock, or gives up after d (d <= 0: wait
// forever).
func (t *Tenant) acquire(d time.Duration) bool {
	if d <= 0 {
		<-t.lockCh
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-t.lockCh:
		return true
	case <-timer.C:
		return false
	}
}

func (t *Tenant) release() { t.lockCh <- struct{}{} }

// setLastErr records the most recent fault for /tenants.
func (t *Tenant) setLastErr(err error) {
	t.lastErrMu.Lock()
	if err == nil {
		t.lastErr = ""
	} else {
		t.lastErr = err.Error()
	}
	t.lastErrMu.Unlock()
}

// LastError returns the most recent fault message ("" when the last
// request succeeded).
func (t *Tenant) LastError() string {
	t.lastErrMu.Lock()
	defer t.lastErrMu.Unlock()
	return t.lastErr
}

// serve executes one request (iters workload iterations) on the session.
// Caller holds the request lock. The three failure classes are kept apart
// deliberately:
//
//   - VM traps (OutOfMemoryError, InternalError, OffloadError) arrive as
//     typed errors from RunThread — the leak-pruning outcome the daemon
//     exists to host;
//   - raw panics (the TenantRequestPanic injection stands in for handler
//     bugs) are recovered HERE, at the tenant boundary, and converted to
//     *RequestPanicError — the crash-isolation guarantee;
//   - drain cancellation surfaces as *RequestCancelledError at an
//     iteration boundary.
func (t *Tenant) serve(iters int) (done int, err error) {
	cfg := t.Config()
	defer func() {
		if r := recover(); r != nil {
			err = &RequestPanicError{Tenant: cfg.Name, Panic: fmt.Sprint(r)}
		}
	}()
	t.vmMu.Lock()
	machine, prog, ready := t.vm, t.prog, t.ready
	t.vmMu.Unlock()
	reqName := fmt.Sprintf("%s/req-%d", cfg.Name, t.requests.Load())
	runErr := machine.RunThread(reqName, func(th *vm.Thread) {
		if cfg.DaemonInjector.Should(faultinject.TenantRequestPanic) {
			panic(fmt.Sprintf("faultinject: tenant %s request handler panic", cfg.Name))
		}
		if !ready {
			th.Scope(func() { prog.Setup(th) })
			t.vmMu.Lock()
			t.ready = true
			t.vmMu.Unlock()
		}
		for i := 0; i < iters; i++ {
			if t.cancel.Load() || t.srv.cancelAll.Load() {
				return
			}
			th.Scope(func() { prog.Iterate(th, t.iter) })
			t.iter++
			done = i + 1
		}
	})
	if runErr != nil {
		return done, runErr
	}
	if done < iters {
		t.cancelled.Add(1)
		return done, &RequestCancelledError{Tenant: cfg.Name, IterationsDone: done}
	}
	return done, nil
}

// recordOutcome updates fault bookkeeping after a request and flips the
// tenant into quarantine at the K-th consecutive fault. Session restarts
// (OOM) are handled by the caller.
func (t *Tenant) recordOutcome(err error) {
	if err == nil {
		t.consecFaults.Store(0)
		t.setLastErr(nil)
		return
	}
	t.setLastErr(err)
	t.faults.Add(1)
	k := t.consecFaults.Add(1)
	if limit := int64(t.srv.cfg.QuarantineThreshold); limit > 0 && k >= limit {
		if t.state.CompareAndSwap(int32(TenantServing), int32(TenantQuarantined)) {
			t.srv.mQuarantines.Inc()
			t.srv.logf("tenant %s quarantined after %d consecutive faults (last: %v)", t.Config().Name, k, err)
		}
	}
}

// TenantStatus is the /tenants JSON row.
type TenantStatus struct {
	Name       string  `json:"name"`
	Workload   string  `json:"workload"`
	Policy     string  `json:"policy"`
	State      string  `json:"state"`
	HeapLimit  uint64  `json:"heap_limit"`
	Resident   uint64  `json:"resident_bytes"`
	NearlyFull float64 `json:"nearly_full_fraction"`
	PruneState string  `json:"prune_state"`

	Requests     uint64 `json:"requests"`
	Faults       uint64 `json:"faults"`
	ConsecFaults int64  `json:"consecutive_faults"`
	Restarts     uint64 `json:"session_restarts"`
	Cancelled    uint64 `json:"cancelled_requests"`

	Collections uint64 `json:"collections"`
	PrunedRefs  uint64 `json:"pruned_refs"`
	PoisonTraps uint64 `json:"poison_traps"`
	Cycles      int    `json:"live_hash_cycles"`
	LastError   string `json:"last_error,omitempty"`
}

// status snapshots the tenant for /tenants and logs.
func (t *Tenant) status() TenantStatus {
	cfg := t.Config()
	machine := t.currentVM()
	st := TenantStatus{
		Name:         cfg.Name,
		Workload:     cfg.Workload,
		Policy:       policyLabel(cfg.Policy),
		State:        t.State().String(),
		HeapLimit:    cfg.HeapLimit,
		Requests:     t.requests.Load(),
		Faults:       t.faults.Load(),
		ConsecFaults: t.consecFaults.Load(),
		Restarts:     t.restarts.Load(),
		Cancelled:    t.cancelled.Load(),
		LastError:    t.LastError(),
	}
	if machine != nil {
		st.Resident = machine.HeapStats().BytesUsed
		st.NearlyFull = machine.NearlyFullFraction()
		st.PruneState = machine.State().String()
		vs := machine.Stats()
		st.Collections = vs.Collections
		st.PrunedRefs = vs.PrunedRefs
		st.PoisonTraps = vs.PoisonTraps
	}
	t.hashMu.Lock()
	st.Cycles = len(t.hashes)
	t.hashMu.Unlock()
	return st
}

func policyLabel(name string) string {
	switch name {
	case "", "off", "base", "none":
		return "off"
	}
	return name
}
