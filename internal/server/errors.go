// Package server is the multi-tenant leak-pruning daemon behind cmd/leakd:
// it hosts N isolated tenant VMs (one vm.VM + pruning policy + heap limit
// each) behind a request loop, governed by a global memory budget.
//
// The robustness machinery is the point of the package:
//
//   - admission control rejects new tenants and requests with typed errors
//     when the budget, the overcommit bound, or a tenant's state forbids
//     them — no request ever reaches a VM it should not;
//   - a budget-pressure controller walks a degradation ladder (tighten the
//     pruning threshold → force SELECT/PRUNE cycles → evict the worst
//     offender) long before the paper's §5 OOM cliff, publishing every
//     transition through internal/obs;
//   - tenants are crash-isolated: request handlers recover raw panics and
//     convert VM traps into typed per-tenant error responses, quarantine a
//     tenant after K consecutive faults, and restart a tenant session whose
//     VM exhausted memory — all without any sibling tenant observing a
//     difference (proven byte-for-byte by the cmd/chaos live-set-hash
//     scenarios);
//   - graceful shutdown drains in-flight requests against a deadline,
//     cancels stragglers at iteration boundaries, and runs a final
//     invariant audit per tenant.
package server

import (
	"errors"
	"fmt"
	"time"
)

// AdmissionError reports a tenant or request rejected at admission: the
// global budget or overcommit bound would be exceeded, the name collides,
// or the daemon is shedding load under pressure. Typed so clients can
// distinguish "try later" from "never".
type AdmissionError struct {
	// Tenant is the tenant the decision concerned ("" for daemon-wide).
	Tenant string
	// Reason is the machine-readable cause: "budget-exceeded",
	// "overcommit-exceeded", "duplicate-name", "draining",
	// "budget-pressure", or "invalid-config".
	Reason string
	// Detail elaborates for humans.
	Detail string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("server: admission rejected for %q: %s (%s)", e.Tenant, e.Reason, e.Detail)
}

// TenantUnavailableError reports a request aimed at a tenant that exists
// but cannot serve: quarantined after repeated faults, mid-eviction, or
// already evicted.
type TenantUnavailableError struct {
	Tenant string
	State  TenantState
}

func (e *TenantUnavailableError) Error() string {
	return fmt.Sprintf("server: tenant %q unavailable (%s)", e.Tenant, e.State)
}

// UnknownTenantError reports a request aimed at a tenant the daemon has
// never admitted (or has fully evicted and forgotten).
type UnknownTenantError struct{ Tenant string }

func (e *UnknownTenantError) Error() string {
	return fmt.Sprintf("server: unknown tenant %q", e.Tenant)
}

// RequestPanicError is the crash-isolation boundary's product: a raw
// (non-VM) panic escaped a tenant request handler and was recovered at the
// request boundary instead of taking the daemon down.
type RequestPanicError struct {
	Tenant string
	Panic  string
}

func (e *RequestPanicError) Error() string {
	return fmt.Sprintf("server: tenant %q request panicked: %s", e.Tenant, e.Panic)
}

// WatchdogTimeoutError reports a request that exceeded the per-tenant
// watchdog deadline. The request keeps running to completion on its
// goroutine (a VM thread cannot be killed mid-operation), but the caller
// gets this error and the fault counts toward quarantine.
type WatchdogTimeoutError struct {
	Tenant  string
	Timeout time.Duration
}

func (e *WatchdogTimeoutError) Error() string {
	return fmt.Sprintf("server: tenant %q request exceeded the %v watchdog", e.Tenant, e.Timeout)
}

// RequestCancelledError reports a request cut short at an iteration
// boundary by the drain deadline (shutdown) or an eviction in progress.
// IterationsDone says how much work completed before the cut.
type RequestCancelledError struct {
	Tenant         string
	IterationsDone int
}

func (e *RequestCancelledError) Error() string {
	return fmt.Sprintf("server: tenant %q request cancelled after %d iterations (drain)", e.Tenant, e.IterationsDone)
}

// MaxRequestIters bounds a single request's iteration count at the
// request boundary. A request above it is a malformed client, not a big
// job: one million workload iterations is hours of single-tenant work,
// far past any watchdog deadline.
const MaxRequestIters = 1 << 20

// RequestValidationError reports a request rejected before it reached a
// tenant because its parameters are malformed (non-positive or absurdly
// large iters). Maps to HTTP 400; it never counts against the tenant.
type RequestValidationError struct {
	Tenant string
	// Iters is the rejected iteration count (0 when the value never
	// parsed as an integer — see Detail).
	Iters int
	// Detail elaborates for humans.
	Detail string
}

func (e *RequestValidationError) Error() string {
	return fmt.Sprintf("server: invalid request for tenant %q: %s", e.Tenant, e.Detail)
}

// QueueFullError reports a request shed at a concurrent pipeline's bounded
// queue: all K workers are busy and QueueDepth requests are already
// waiting. Maps to HTTP 429 — the client should back off and retry; the
// tenant is healthy, just saturated.
type QueueFullError struct {
	Tenant string
	// Depth is the configured queue bound that was full.
	Depth int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("server: tenant %q request queue full (depth %d)", e.Tenant, e.Depth)
}

// ErrNotAccepting is wrapped by the AdmissionError returned while the
// daemon is draining; errors.Is(err, ErrNotAccepting) spares clients the
// reason-string comparison.
var ErrNotAccepting = errors.New("server: draining, not accepting requests")

// IsAdmission reports whether err is an admission rejection.
func IsAdmission(err error) bool {
	var ae *AdmissionError
	return errors.As(err, &ae)
}
