package server

import (
	"errors"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Budget:         1 << 20,
		RequestTimeout: 10 * time.Second,
		DrainTimeout:   2 * time.Second,
	}
}

func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Shutdown() })
	return s
}

func wantAdmissionReason(t *testing.T, err error, reason string) {
	t.Helper()
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("got %v (%T), want *AdmissionError reason %q", err, err, reason)
	}
	if ae.Reason != reason {
		t.Fatalf("admission reason %q, want %q (err: %v)", ae.Reason, reason, err)
	}
}

// TestAdmissionControl exercises every typed rejection path: a tenant must
// never reach a VM the budget, the overcommit bound, or its own config
// forbids.
func TestAdmissionControl(t *testing.T) {
	s := mustServer(t, testConfig()) // budget 1 MiB, overcommit 2x

	// Happy path first.
	if _, err := s.Admit(TenantConfig{Name: "a", Workload: "listleak", Policy: "default", HeapLimit: 512 << 10}); err != nil {
		t.Fatalf("admit a: %v", err)
	}

	// A single heap limit larger than the whole budget.
	_, err := s.Admit(TenantConfig{Name: "big", Workload: "listleak", Policy: "default", HeapLimit: 2 << 20})
	wantAdmissionReason(t, err, "budget-exceeded")
	if !IsAdmission(err) {
		t.Fatalf("IsAdmission(%v) = false", err)
	}

	// Name collision.
	_, err = s.Admit(TenantConfig{Name: "a", Workload: "listleak", Policy: "default", HeapLimit: 256 << 10})
	wantAdmissionReason(t, err, "duplicate-name")

	// Unknown policy and unknown workload are config errors, not panics.
	_, err = s.Admit(TenantConfig{Name: "badpol", Workload: "listleak", Policy: "nope", HeapLimit: 256 << 10})
	wantAdmissionReason(t, err, "invalid-config")
	_, err = s.Admit(TenantConfig{Name: "badwl", Workload: "nope", Policy: "default", HeapLimit: 256 << 10})
	wantAdmissionReason(t, err, "invalid-config")
	_, err = s.Admit(TenantConfig{Name: "", Workload: "listleak", Policy: "default", HeapLimit: 256 << 10})
	wantAdmissionReason(t, err, "invalid-config")

	// Overcommit: 2x * 1 MiB = 2 MiB bound; 512 KiB committed, so a
	// second 1 MiB fits but a further 1 MiB does not.
	if _, err := s.Admit(TenantConfig{Name: "b", Workload: "listleak", Policy: "default", HeapLimit: 1 << 20}); err != nil {
		t.Fatalf("admit b: %v", err)
	}
	_, err = s.Admit(TenantConfig{Name: "c", Workload: "listleak", Policy: "default", HeapLimit: 1 << 20})
	wantAdmissionReason(t, err, "overcommit-exceeded")

	// Requests to tenants that were never admitted are typed too.
	if _, err := s.RunRequest("ghost", 1); err == nil || !errors.As(err, new(*UnknownTenantError)) {
		t.Fatalf("RunRequest(ghost) = %v, want *UnknownTenantError", err)
	}

	// Draining rejects both admissions and requests.
	if _, err := s.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	_, err = s.Admit(TenantConfig{Name: "late", Workload: "listleak", Policy: "default", HeapLimit: 256 << 10})
	wantAdmissionReason(t, err, "draining")
	_, err = s.RunRequest("a", 1)
	wantAdmissionReason(t, err, "draining")
}

// TestRollingConfigUpdate covers the no-restart reload path: threshold
// changes land on the live VM, invalid updates are rejected atomically,
// and structural changes swap in a fresh validated session.
func TestRollingConfigUpdate(t *testing.T) {
	s := mustServer(t, testConfig())
	tn, err := s.Admit(TenantConfig{Name: "a", Workload: "listleak", Policy: "default", HeapLimit: 512 << 10})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if got := tn.currentVM().NearlyFullFraction(); got != 0.9 {
		t.Fatalf("initial nearly-full %g, want the paper's 0.9", got)
	}

	// In-place: only the threshold changes; the session survives.
	if err := s.UpdateTenant("a", TenantConfig{NearlyFullFraction: 0.8}); err != nil {
		t.Fatalf("in-place update: %v", err)
	}
	if got := tn.currentVM().NearlyFullFraction(); got != 0.8 {
		t.Fatalf("nearly-full after update %g, want 0.8", got)
	}

	// Invalid update: rejected with a typed error, nothing changes.
	err = s.UpdateTenant("a", TenantConfig{Policy: "nope"})
	wantAdmissionReason(t, err, "invalid-config")
	if got := tn.Config().Policy; got != "default" {
		t.Fatalf("policy after rejected update %q, want default", got)
	}
	err = s.UpdateTenant("a", TenantConfig{HeapLimit: 4 << 20})
	wantAdmissionReason(t, err, "budget-exceeded")

	// Structural change (heap limit) swaps the session.
	before := tn.currentVM()
	if err := s.UpdateTenant("a", TenantConfig{HeapLimit: 768 << 10, Policy: "most-stale"}); err != nil {
		t.Fatalf("session-swap update: %v", err)
	}
	if tn.currentVM() == before {
		t.Fatal("session-swap update kept the old VM")
	}
	if got := tn.Config(); got.HeapLimit != 768<<10 || got.Policy != "most-stale" {
		t.Fatalf("config after swap = %+v", got)
	}
	// The swapped session still serves.
	if _, err := s.RunRequest("a", 3); err != nil {
		t.Fatalf("request after swap: %v", err)
	}

	if err := s.UpdateTenant("ghost", TenantConfig{}); !errors.As(err, new(*UnknownTenantError)) {
		t.Fatalf("UpdateTenant(ghost) = %v, want *UnknownTenantError", err)
	}
}

// TestSessionRestartOnOOM: a tenant whose policy cannot avert exhaustion
// dies at its heap limit — scoped to its own session, which the daemon
// restarts so the slot keeps serving.
func TestSessionRestartOnOOM(t *testing.T) {
	s := mustServer(t, testConfig())
	tn, err := s.Admit(TenantConfig{Name: "leaky", Workload: "listleak", Policy: "off", HeapLimit: 128 << 10})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	// listleak leaks ~23 KiB per iteration; 200 iterations vastly exceeds
	// the 128 KiB session heap.
	var sawOOM bool
	for i := 0; i < 5 && !sawOOM; i++ {
		_, err = s.RunRequest("leaky", 200)
		if err != nil {
			sawOOM = true
		}
	}
	if !sawOOM {
		t.Fatal("no OOM after 1000 leaking iterations in a 128 KiB heap")
	}
	if got := tn.restarts.Load(); got == 0 {
		t.Fatalf("session restarts = %d, want >= 1", got)
	}
	if st := tn.State(); st != TenantServing {
		t.Fatalf("tenant state after restart = %v, want serving", st)
	}
	// The fresh session serves normally.
	if _, err := s.RunRequest("leaky", 1); err != nil {
		t.Fatalf("request after restart: %v", err)
	}
}
