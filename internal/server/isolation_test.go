package server

import (
	"errors"
	"testing"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/obs"
)

// driveSibling runs the fixed request sequence the isolation tests use for
// the well-behaved tenant: enough leaking iterations in a small pruned
// heap to force several full SELECT/PRUNE collections.
func driveSibling(t *testing.T, s *Server, name string) {
	t.Helper()
	for i := 0; i < 12; i++ {
		if _, err := s.RunRequest(name, 25); err != nil {
			t.Fatalf("sibling %s request %d: %v", name, i, err)
		}
	}
}

// TestCrashIsolation is the tentpole guarantee in miniature: a tenant
// whose request handler panics on every request (1) returns typed
// per-tenant errors instead of crashing the daemon, (2) is quarantined
// after K consecutive faults, and (3) leaves a sibling tenant's per-cycle
// live-set hashes BYTE-IDENTICAL to a control daemon that never saw a
// fault.
func TestCrashIsolation(t *testing.T) {
	sibling := TenantConfig{Name: "good", Workload: "listleak", Policy: "default", HeapLimit: 256 << 10}

	// Control: the sibling alone, no faults anywhere.
	control := mustServer(t, testConfig())
	if _, err := control.Admit(sibling); err != nil {
		t.Fatalf("control admit: %v", err)
	}
	driveSibling(t, control, "good")
	controlHashes := control.tenant("good").CycleHashes()
	if len(controlHashes) == 0 {
		t.Fatal("control sibling ran no collections; the oracle is vacuous")
	}

	// Faulty daemon: same sibling plus a tenant that panics on every
	// request.
	cfg := testConfig()
	cfg.QuarantineThreshold = 3
	cfg.Obs = obs.New()
	s := mustServer(t, cfg)
	if _, err := s.Admit(sibling); err != nil {
		t.Fatalf("admit sibling: %v", err)
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.TenantRequestPanic, 1.0)
	bad, err := s.Admit(TenantConfig{Name: "bad", Workload: "listleak", Policy: "default",
		HeapLimit: 256 << 10, DaemonInjector: inj})
	if err != nil {
		t.Fatalf("admit bad: %v", err)
	}

	// Interleave: sibling requests between panic storms.
	for i := 0; i < 3; i++ {
		_, err := s.RunRequest("bad", 5)
		var pe *RequestPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("storm request %d: got %v (%T), want *RequestPanicError", i, err, err)
		}
		if pe.Tenant != "bad" {
			t.Fatalf("panic error names tenant %q, want bad", pe.Tenant)
		}
	}
	driveSibling(t, s, "good")

	// K = 3 consecutive faults => quarantined; further requests are
	// rejected with the tenant's state, not served.
	if st := bad.State(); st != TenantQuarantined {
		t.Fatalf("bad tenant state = %v, want quarantined", st)
	}
	_, err = s.RunRequest("bad", 1)
	var tu *TenantUnavailableError
	if !errors.As(err, &tu) || tu.State != TenantQuarantined {
		t.Fatalf("request to quarantined tenant = %v, want *TenantUnavailableError{quarantined}", err)
	}
	if got := s.mQuarantines.Load(); got != 1 {
		t.Fatalf("lp_tenant_quarantines_total = %d, want 1", got)
	}

	// The isolation proof: the sibling's per-cycle live-set hashes are
	// byte-identical to the fault-free control's.
	gotHashes := s.tenant("good").CycleHashes()
	if len(gotHashes) != len(controlHashes) {
		t.Fatalf("sibling ran %d collections, control ran %d", len(gotHashes), len(controlHashes))
	}
	for i := range gotHashes {
		if gotHashes[i] != controlHashes[i] {
			t.Fatalf("cycle %d live-set hash diverged: %#x vs control %#x", i, gotHashes[i], controlHashes[i])
		}
	}

	// A success resets the consecutive-fault counter (no spurious
	// quarantine from interleaved faults).
	if got := s.tenant("good").consecFaults.Load(); got != 0 {
		t.Fatalf("sibling consecutive faults = %d, want 0", got)
	}
}

// TestQuarantineRequiresConsecutive: faults separated by successes never
// quarantine — only K in a row do.
func TestQuarantineRequiresConsecutive(t *testing.T) {
	cfg := testConfig()
	cfg.QuarantineThreshold = 3
	s := mustServer(t, cfg)
	inj := faultinject.New(7)
	tn, err := s.Admit(TenantConfig{Name: "flaky", Workload: "listleak", Policy: "default",
		HeapLimit: 256 << 10, DaemonInjector: inj})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	for round := 0; round < 4; round++ {
		// Two faults...
		inj.Arm(faultinject.TenantRequestPanic, 1.0)
		for i := 0; i < 2; i++ {
			if _, err := s.RunRequest("flaky", 1); err == nil {
				t.Fatal("armed request did not fault")
			}
		}
		// ...then a success resets the streak.
		inj.Arm(faultinject.TenantRequestPanic, 0)
		if _, err := s.RunRequest("flaky", 1); err != nil {
			t.Fatalf("disarmed request faulted: %v", err)
		}
		if st := tn.State(); st != TenantServing {
			t.Fatalf("round %d: state = %v, want serving", round, st)
		}
	}
	if got := tn.faults.Load(); got != 8 {
		t.Fatalf("faults = %d, want 8", got)
	}
}
