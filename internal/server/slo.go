package server

// Latency SLO plumbing: every request's end-to-end latency (queue/lock
// wait plus execution) lands in an lp_request_latency_ns histogram
// labeled by tenant and by the budget ladder's level at completion, so
// budget pressure is measured in user-visible tail latency, not just
// resident bytes. /pressure serves the cross-tenant aggregation
// (p50/p95/p99/max per ladder level) from LatencySLOs.

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"leakpruning/internal/obs"
)

// ladderLevels is the number of budget-ladder positions (0 nominal …
// 3 evicting); each gets its own latency series per tenant.
const ladderLevels = 4

// LatencySLO is one ladder level's aggregated request-latency summary on
// /pressure.
type LatencySLO struct {
	Count uint64 `json:"count"`
	P50Ns int64  `json:"p50_ns"`
	P95Ns int64  `json:"p95_ns"`
	P99Ns int64  `json:"p99_ns"`
	MaxNs int64  `json:"max_ns"`
}

// sloState is the server-side half of the latency bookkeeping: the
// per-level series list survives tenant eviction (the histograms live in
// the obs registry anyway), so /pressure keeps the full story.
type sloState struct {
	mu     sync.Mutex
	series [ladderLevels][]*obs.Histogram
	names  map[string]struct{} // tenant names already registered (registry series are idempotent; aggregation must not double-count)
	max    [ladderLevels]atomic.Int64
}

// registerLatencySeries creates (or re-binds) the tenant's per-level
// latency histograms and adds them to the aggregation set exactly once
// per tenant name.
func (s *Server) registerLatencySeries(t *Tenant, name string) {
	for lvl := 0; lvl < ladderLevels; lvl++ {
		t.latency[lvl] = s.reg().NewHistogram("lp_request_latency_ns",
			"request latency by tenant and budget-ladder level", obs.LatencyBucketsNs,
			obs.L("tenant", name), obs.L("level", strconv.Itoa(lvl)))
	}
	s.slo.mu.Lock()
	defer s.slo.mu.Unlock()
	if _, dup := s.slo.names[name]; dup {
		return // re-admission reuses the registry series already aggregated
	}
	s.slo.names[name] = struct{}{}
	for lvl := 0; lvl < ladderLevels; lvl++ {
		s.slo.series[lvl] = append(s.slo.series[lvl], t.latency[lvl])
	}
}

// observeLatency records one finished (or timed-out) request under the
// ladder level current at completion.
func (s *Server) observeLatency(t *Tenant, start time.Time) {
	ns := time.Since(start).Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	lvl := int(s.level.Load())
	if lvl < 0 {
		lvl = 0
	} else if lvl >= ladderLevels {
		lvl = ladderLevels - 1
	}
	t.latency[lvl].Observe(uint64(ns))
	for {
		cur := s.slo.max[lvl].Load()
		if ns <= cur || s.slo.max[lvl].CompareAndSwap(cur, ns) {
			return
		}
	}
}

// LatencySLOs aggregates lp_request_latency_ns across every tenant (past
// and present) into per-ladder-level quantiles. Levels with no samples
// are omitted.
func (s *Server) LatencySLOs() map[string]LatencySLO {
	s.slo.mu.Lock()
	var series [ladderLevels][]*obs.Histogram
	for lvl := 0; lvl < ladderLevels; lvl++ {
		series[lvl] = append([]*obs.Histogram(nil), s.slo.series[lvl]...)
	}
	s.slo.mu.Unlock()

	out := make(map[string]LatencySLO)
	bounds := obs.LatencyBucketsNs
	for lvl := 0; lvl < ladderLevels; lvl++ {
		var counts []uint64
		for _, h := range series[lvl] {
			bc := h.BucketCounts()
			if bc == nil {
				continue
			}
			if counts == nil {
				counts = make([]uint64, len(bc))
			}
			for i, c := range bc {
				counts[i] += c
			}
		}
		var total uint64
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			continue
		}
		max := s.slo.max[lvl].Load()
		out[strconv.Itoa(lvl)] = LatencySLO{
			Count: total,
			P50Ns: bucketQuantile(counts, bounds, total, 0.50, max),
			P95Ns: bucketQuantile(counts, bounds, total, 0.95, max),
			P99Ns: bucketQuantile(counts, bounds, total, 0.99, max),
			MaxNs: max,
		}
	}
	return out
}

// bucketQuantile estimates the q-th quantile from fixed-bucket counts by
// linear interpolation inside the bucket where the cumulative count
// crosses the rank; the overflow bucket interpolates toward the observed
// maximum.
func bucketQuantile(counts, bounds []uint64, total uint64, q float64, max int64) int64 {
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = int64(bounds[i-1])
		}
		hi := max
		if i < len(bounds) {
			hi = int64(bounds[i])
		}
		if hi < lo {
			hi = lo
		}
		if cum+float64(c) >= rank {
			frac := (rank - cum) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += float64(c)
	}
	return max
}
