package server

import (
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"leakpruning/internal/obs"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRequestValidation: non-positive and absurd iteration counts are
// rejected at the boundary with a typed *RequestValidationError instead of
// being silently clamped, and every request-path error type maps onto the
// HTTP status the API contract promises.
func TestRequestValidation(t *testing.T) {
	s := mustServer(t, testConfig())
	if _, err := s.Admit(TenantConfig{Name: "a", Workload: "listleak", Policy: "default", HeapLimit: 256 << 10}); err != nil {
		t.Fatalf("admit: %v", err)
	}
	for _, iters := range []int{0, -1, -50, MaxRequestIters + 1, 1 << 30} {
		done, err := s.RunRequest("a", iters)
		var ve *RequestValidationError
		if !errors.As(err, &ve) {
			t.Fatalf("RunRequest(iters=%d) = %v (%T), want *RequestValidationError", iters, err, err)
		}
		if done != 0 || ve.Iters != iters || ve.Tenant != "a" {
			t.Fatalf("RunRequest(iters=%d) = (%d, %+v)", iters, done, ve)
		}
	}
	// The boundary value itself is accepted (the tenant may still fail it
	// for its own reasons; validation must not).
	if _, err := s.RunRequest("a", 1); err != nil {
		t.Fatalf("RunRequest(1): %v", err)
	}

	// The error→status table: one row per typed error the request path can
	// return.
	for _, row := range []struct {
		err  error
		want int
	}{
		{&RequestValidationError{Tenant: "a", Iters: 0, Detail: "x"}, http.StatusBadRequest},
		{&QueueFullError{Tenant: "a", Depth: 4}, http.StatusTooManyRequests},
		{&UnknownTenantError{Tenant: "a"}, http.StatusNotFound},
		{&TenantUnavailableError{Tenant: "a", State: TenantQuarantined}, http.StatusConflict},
		{&WatchdogTimeoutError{Tenant: "a", Timeout: time.Second}, http.StatusGatewayTimeout},
		{&AdmissionError{Tenant: "a", Reason: "draining"}, http.StatusServiceUnavailable},
		{errors.New("untyped"), http.StatusInternalServerError},
	} {
		if got := statusFor(row.err); got != row.want {
			t.Errorf("statusFor(%T %v) = %d, want %d", row.err, row.err, got, row.want)
		}
	}
}

// TestWatchdogLateOutcome audits the watchdog-abandonment path: when the
// caller takes its timeout and walks away, the abandoned serve goroutine's
// late result must still reach finishRequest (the cancel is counted, the
// lock is released exactly once) and a late SUCCESS must not reset the
// consecutive-fault streak the timeout just started.
func TestWatchdogLateOutcome(t *testing.T) {
	cfg := testConfig()
	cfg.Budget = 64 << 20
	cfg.RequestTimeout = 30 * time.Millisecond
	cfg.Obs = obs.New()
	s := mustServer(t, cfg)
	// A non-leaking steady-state workload: the request outlives the
	// watchdog without ever nearing its heap limit.
	tn, err := s.Admit(TenantConfig{Name: "slow", Workload: "antlr", Policy: "off", HeapLimit: 8 << 20})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}

	cancelsBefore := s.mReqCancel.Load()
	done, err := s.RunRequest("slow", MaxRequestIters)
	var wt *WatchdogTimeoutError
	if !errors.As(err, &wt) {
		t.Fatalf("RunRequest = (%d, %v), want *WatchdogTimeoutError", done, err)
	}
	if got := s.mReqTimeout.Load(); got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
	// The watchdog fault is on the streak immediately.
	if got := tn.consecFaults.Load(); got != 1 {
		t.Fatalf("consecFaults after timeout = %d, want 1", got)
	}

	// The reaper must deliver the abandoned request's outcome: the serve
	// goroutine stops at the next iteration boundary, its cancellation is
	// recorded, and the tenant lock comes back — exactly once.
	waitFor(t, 5*time.Second, "late outcome to reach finishRequest", func() bool {
		return s.mReqCancel.Load() == cancelsBefore+1 && len(tn.lockCh) == 1
	})
	if got := tn.cancelled.Load(); got != 1 {
		t.Fatalf("cancelled = %d, want 1", got)
	}
	// The late cancellation is the daemon's doing: it must not have grown
	// the fault streak past the watchdog's own entry.
	if got := tn.consecFaults.Load(); got != 1 {
		t.Fatalf("consecFaults after reaper = %d, want 1", got)
	}

	// The lock works: a quick follow-up request is served normally.
	if _, err := s.RunRequest("slow", 1); err != nil {
		t.Fatalf("request after reaper: %v", err)
	}
	if len(tn.lockCh) != 1 {
		t.Fatalf("lock tokens after follow-up = %d, want 1 (double release?)", len(tn.lockCh))
	}

	// Late-success rule, tested directly: a request that finishes OK after
	// its caller already took the timeout must not reset the streak.
	tn.consecFaults.Store(3)
	s.finishRequest(tn, nil, tn.sessionEpoch.Load(), true)
	if got := tn.consecFaults.Load(); got != 3 {
		t.Fatalf("late success reset consecFaults to %d, want 3 untouched", got)
	}
	tn.consecFaults.Store(0)
}

// TestPipelineBackpressure: a concurrent tenant with a full queue sheds
// the overflow request with a typed *QueueFullError (HTTP 429) instead of
// blocking, and the queue-wait histogram sees the requests that did queue.
func TestPipelineBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.Budget = 64 << 20
	cfg.Obs = obs.New()
	s := mustServer(t, cfg)
	tn, err := s.Admit(TenantConfig{Name: "pipe", Workload: "antlr", Policy: "off", HeapLimit: 8 << 20,
		Pipeline: PipelineConcurrent, Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if st := tn.status(); st.Pipeline != PipelineConcurrent || st.Workers != 1 {
		t.Fatalf("status = pipeline %q workers %d, want concurrent/1", st.Pipeline, st.Workers)
	}
	p := tn.pipelineHandle()
	if p == nil {
		t.Fatal("no pipeline attached")
	}

	// Occupy the single worker with a long request, then fill the
	// depth-1 queue with a second; the third must be shed.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.RunRequest("pipe", MaxRequestIters)
		}()
		want := int64(i + 1)
		waitFor(t, 5*time.Second, "request to occupy the pipeline", func() bool {
			return p.pending.Load() == want
		})
	}
	// Worker busy + queue full:
	waitFor(t, 5*time.Second, "worker pickup", func() bool { return len(p.queue) == 1 })
	_, err = s.RunRequest("pipe", 1)
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("overflow request = %v (%T), want *QueueFullError", err, err)
	}
	if qf.Tenant != "pipe" || qf.Depth != 1 {
		t.Fatalf("QueueFullError = %+v, want tenant pipe depth 1", qf)
	}

	// Unwedge: cancel at iteration boundaries and wait the callers out.
	tn.cancel.Store(true)
	wg.Wait()
	tn.cancel.Store(false)
	if got := tn.queueWait.Count(); got < 2 {
		t.Fatalf("queue-wait observations = %d, want >= 2", got)
	}
	// Both dispatched requests finished through observeLatency, so the
	// /pressure SLO block has samples.
	slos := s.LatencySLOs()
	if slos["0"].Count < 2 {
		t.Fatalf("level-0 latency SLO count = %d, want >= 2 (%+v)", slos["0"].Count, slos)
	}
}

// TestPipelineIsolationStress is the in-tenant concurrency proof: K
// goroutines fire mixed small/large requests at one pipelined tenant with
// the per-GC invariant audit armed, while a serial sibling runs its fixed
// deterministic sequence. The pipelined tenant must finish with ZERO audit
// violations, and the sibling's per-cycle live-set hashes must be
// byte-identical to a control daemon whose victim tenant is serial — the
// pipeline must not leak scheduling nondeterminism across tenants. Run it
// under -race for the full claim.
func TestPipelineIsolationStress(t *testing.T) {
	const (
		stormWorkers  = 8
		stormRequests = 20
		largeIters    = 16
	)
	sibling := TenantConfig{Name: "sib", Workload: "listleak", Policy: "default", HeapLimit: 256 << 10}
	victim := TenantConfig{Name: "victim", Workload: "queueleak", Policy: "default", HeapLimit: 8 << 20,
		AuditEveryGC: true}

	base := testConfig()
	base.Budget = 64 << 20
	base.RequestTimeout = 30 * time.Second
	base.QuarantineThreshold = -1 // storms may OOM in bursts; keep serving

	// Control: serial victim, identical drive on the sibling.
	base.Obs = obs.New()
	control := mustServer(t, base)
	if _, err := control.Admit(sibling); err != nil {
		t.Fatalf("control admit sibling: %v", err)
	}
	if _, err := control.Admit(victim); err != nil {
		t.Fatalf("control admit victim: %v", err)
	}
	driveSibling(t, control, "sib")
	controlHashes := control.tenant("sib").CycleHashes()
	if len(controlHashes) == 0 {
		t.Fatal("control sibling ran no collections; the oracle is vacuous")
	}

	// Stressed daemon: the same victim, now pipelined, under a K-goroutine
	// mixed-size storm concurrent with the sibling's deterministic drive.
	base.Obs = obs.New()
	s := mustServer(t, base)
	if _, err := s.Admit(sibling); err != nil {
		t.Fatalf("admit sibling: %v", err)
	}
	victim.Pipeline = PipelineConcurrent
	victim.Workers = 4
	victim.QueueDepth = 32
	vt, err := s.Admit(victim)
	if err != nil {
		t.Fatalf("admit victim: %v", err)
	}

	var wg sync.WaitGroup
	var okCount, errCount int64
	var cntMu sync.Mutex
	for w := 0; w < stormWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < stormRequests; i++ {
				iters := 1 // small
				if (w+i)%2 == 1 {
					iters = largeIters
				}
				_, err := s.RunRequest("victim", iters)
				cntMu.Lock()
				if err == nil {
					okCount++
				} else {
					errCount++
				}
				cntMu.Unlock()
			}
		}(w)
	}
	driveSibling(t, s, "sib")
	wg.Wait()

	if okCount == 0 {
		t.Fatalf("storm produced no successful requests (%d errors)", errCount)
	}
	// The audit verdict: every GC in the pipelined tenant re-proved the
	// heap invariants with K mutators in flight.
	st := vt.status()
	if st.AuditsRun == 0 {
		t.Fatal("victim ran no audits; AuditEveryGC did not arm")
	}
	if st.AuditViolations != 0 {
		t.Fatalf("victim audit violations = %d, want 0 (audits run: %d)", st.AuditViolations, st.AuditsRun)
	}
	if vt.queueWait.Count() == 0 {
		t.Fatal("no queue-wait observations; the storm never exercised the pipeline")
	}

	// The cross-tenant determinism verdict: byte-identical sibling hashes.
	gotHashes := s.tenant("sib").CycleHashes()
	if len(gotHashes) != len(controlHashes) {
		t.Fatalf("sibling ran %d collections, control ran %d", len(gotHashes), len(controlHashes))
	}
	for i := range gotHashes {
		if gotHashes[i] != controlHashes[i] {
			t.Fatalf("cycle %d live-set hash diverged: %#x vs control %#x", i, gotHashes[i], controlHashes[i])
		}
	}
}
