package server

import (
	"strings"
	"testing"

	"leakpruning/internal/obs"
)

// TestBudgetLadder drives the pressure controller deterministically
// (manual probes, sequential requests) through every rung: tighten at
// 0.70, force cycles at 0.85, evict the worst offender at 0.95 — and back
// down with hysteresis once the eviction frees the budget.
func TestBudgetLadder(t *testing.T) {
	o := obs.New()
	cfg := testConfig()
	cfg.Budget = 1 << 20 // 1 MiB global budget
	cfg.Obs = o
	s := mustServer(t, cfg)

	// The leaky tenant prunes nothing ("off"): its list grows ~23 KiB per
	// iteration and only an eviction can give the bytes back. The sibling
	// is small and steady.
	if _, err := s.Admit(TenantConfig{Name: "leaky", Workload: "listleak", Policy: "off", HeapLimit: 1 << 20}); err != nil {
		t.Fatalf("admit leaky: %v", err)
	}
	if _, err := s.Admit(TenantConfig{Name: "small", Workload: "listleak", Policy: "default", HeapLimit: 256 << 10}); err != nil {
		t.Fatalf("admit small: %v", err)
	}
	if _, err := s.RunRequest("small", 10); err != nil {
		t.Fatalf("small warmup: %v", err)
	}

	if res := s.ProbeBudget(); res.Level != 0 {
		t.Fatalf("initial probe level = %d, want 0", res.Level)
	}

	// Grow the leak one request at a time, probing after each, and record
	// the ladder's trajectory.
	var sawTighten, sawForce bool
	var evicted string
	for i := 0; i < 60 && evicted == ""; i++ {
		if _, err := s.RunRequest("leaky", 1); err != nil {
			t.Fatalf("leaky request %d: %v (the ladder should evict before the tenant's own OOM)", i, err)
		}
		res := s.ProbeBudget()
		switch res.Level {
		case 1:
			sawTighten = true
			// Level 1 tightened the live threshold on serving tenants.
			if got := s.tenant("leaky").currentVM().NearlyFullFraction(); got != cfg.TightenTo && got != 0.75 {
				t.Fatalf("nearly-full under pressure = %g, want tightened to 0.75", got)
			}
		case 2:
			sawForce = true
			if res.Forced != "leaky" {
				t.Fatalf("level 2 forced %q, want the worst offender leaky", res.Forced)
			}
		case 3:
			if res.Evicted != "leaky" {
				t.Fatalf("level 3 evicted %q, want leaky", res.Evicted)
			}
			evicted = res.Evicted
		}
	}
	if !sawTighten || !sawForce || evicted == "" {
		t.Fatalf("ladder incomplete: tighten=%v force=%v evicted=%q", sawTighten, sawForce, evicted)
	}

	// The slot is gone and its bytes came back.
	if s.tenant("leaky") != nil {
		t.Fatal("evicted tenant still in the table")
	}
	if got := s.mEvictions.Load(); got != 1 {
		t.Fatalf("lp_tenant_evictions_total = %d, want 1", got)
	}

	// Pressure clears (with hysteresis the level can only fall now), and
	// clearing restores the sibling's configured threshold.
	res := s.ProbeBudget()
	if res.Level != 0 {
		t.Fatalf("post-eviction level = %d (fraction %.2f), want 0", res.Level, res.Fraction)
	}
	if got := s.tenant("small").currentVM().NearlyFullFraction(); got != 0.9 {
		t.Fatalf("sibling nearly-full after pressure cleared = %g, want 0.9 restored", got)
	}
	if s.tightened.Load() {
		t.Fatal("tightened flag still set after pressure cleared")
	}

	// The whole episode is visible on /metrics: the ladder gauge and the
	// eviction counter the smoke target scrapes.
	var sb strings.Builder
	o.Registry().WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"lp_budget_pressure_level 0",
		"lp_tenant_evictions_total 1",
		"lp_forced_cycles_total",
		"lp_budget_bytes 1048576",
		`lp_tenant_resident_bytes{tenant="small"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	// The sibling survived the whole episode.
	if _, err := s.RunRequest("small", 5); err != nil {
		t.Fatalf("sibling after eviction: %v", err)
	}
}

// TestLadderHysteresis: a fraction hovering just under a trip point must
// not flap the level once it has stepped up.
func TestLadderHysteresis(t *testing.T) {
	s := mustServer(t, testConfig())
	s.level.Store(2)
	// Just below the force threshold but within the hysteresis band: hold.
	if got := s.nextLevel(s.cfg.ForceThreshold - hysteresis/2); got != 2 {
		t.Fatalf("level within hysteresis band = %d, want held at 2", got)
	}
	// Clear of the band: step down one rung at a time.
	if got := s.nextLevel(s.cfg.TightenThreshold + 0.01); got != 1 {
		t.Fatalf("level below force band = %d, want 1", got)
	}
	if got := s.nextLevel(0.1); got != 0 {
		t.Fatalf("level at low fraction = %d, want 0", got)
	}
	// Upward moves are immediate.
	s.level.Store(0)
	if got := s.nextLevel(s.cfg.EvictThreshold + 0.01); got != 3 {
		t.Fatalf("level above evict threshold = %d, want 3", got)
	}
}
