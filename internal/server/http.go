package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"leakpruning/internal/obs"
)

// Handler returns the daemon's HTTP surface:
//
//	GET    /healthz                  liveness (200 while the process serves)
//	GET    /readyz                   readiness (503 once draining)
//	GET    /metrics                  obs.Handler (Prometheus text or JSON)
//	GET    /tenants                  tenant status table
//	POST   /tenants                  admit a tenant (TenantConfig body)
//	GET    /tenants/{name}           one tenant's status
//	DELETE /tenants/{name}           evict a tenant
//	POST   /tenants/{name}/run       run a request (?iters=N)
//	POST   /tenants/{name}/config    rolling config update (TenantConfig body)
//	GET    /pressure                 last probe level + budget numbers
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", obs.Handler(s.obs))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	})
	mux.HandleFunc("GET /pressure", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"level":          s.PressureLevel(),
			"budget_bytes":   s.Budget(),
			"resident_bytes": uint64(s.gResident.Load()),
			// Worst-case pause per cycle mode across all tenants: the
			// operator's check that concurrent SELECT/PRUNE pauses stay in
			// the microsecond range.
			"max_pause_ns_by_mode": s.MaxPausesByMode(),
			// Request-latency SLOs keyed by ladder level: the same budget
			// pressure, measured in user-visible tail latency.
			"request_latency_by_level": s.LatencySLOs(),
		})
	})
	mux.HandleFunc("GET /tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Tenants())
	})
	mux.HandleFunc("POST /tenants", func(w http.ResponseWriter, r *http.Request) {
		var tc TenantConfig
		if err := json.NewDecoder(r.Body).Decode(&tc); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		t, err := s.Admit(tc)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, t.status())
	})
	mux.HandleFunc("GET /tenants/{name}", func(w http.ResponseWriter, r *http.Request) {
		t := s.tenant(r.PathValue("name"))
		if t == nil {
			writeError(w, http.StatusNotFound, &UnknownTenantError{Tenant: r.PathValue("name")})
			return
		}
		writeJSON(w, http.StatusOK, t.status())
	})
	mux.HandleFunc("DELETE /tenants/{name}", func(w http.ResponseWriter, r *http.Request) {
		findings, err := s.EvictTenant(r.PathValue("name"), "operator request")
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"evicted": r.PathValue("name"), "audit_findings": len(findings)})
	})
	mux.HandleFunc("POST /tenants/{name}/run", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		iters := 1
		if q := r.URL.Query().Get("iters"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil {
				verr := &RequestValidationError{Tenant: name, Detail: "iters must be an integer, got " + strconv.Quote(q)}
				writeError(w, statusFor(verr), verr)
				return
			}
			// Range validation happens in RunRequest so every entry point
			// (HTTP, loadgen-in-process, tests) shares one contract.
			iters = n
		}
		done, err := s.RunRequest(name, iters)
		if err != nil {
			// Tenant-isolated failures are 200s with an error body: the
			// DAEMON handled the request fine; the TENANT faulted. Routing
			// failures (unknown, draining, unavailable) are real HTTP errors.
			switch err.(type) {
			case *RequestPanicError, *WatchdogTimeoutError, *RequestCancelledError:
				writeJSON(w, http.StatusOK, map[string]any{
					"tenant": name, "iterations": done, "error": err.Error(),
				})
			default:
				writeError(w, statusFor(err), err)
			}
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"tenant": name, "iterations": done})
	})
	mux.HandleFunc("POST /tenants/{name}/config", func(w http.ResponseWriter, r *http.Request) {
		var tc TenantConfig
		if err := json.NewDecoder(r.Body).Decode(&tc); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		name := r.PathValue("name")
		if err := s.UpdateTenant(name, tc); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		t := s.tenant(name)
		writeJSON(w, http.StatusOK, t.status())
	})
	return mux
}

// statusFor maps the package's typed errors onto HTTP statuses.
func statusFor(err error) int {
	var ae *AdmissionError
	if errors.As(err, &ae) {
		switch ae.Reason {
		case "invalid-config":
			return http.StatusBadRequest
		case "duplicate-name":
			return http.StatusConflict
		case "draining", "budget-pressure":
			return http.StatusServiceUnavailable
		default: // budget-exceeded, overcommit-exceeded
			return http.StatusInsufficientStorage
		}
	}
	var ve *RequestValidationError
	if errors.As(err, &ve) {
		return http.StatusBadRequest
	}
	var qf *QueueFullError
	if errors.As(err, &qf) {
		return http.StatusTooManyRequests
	}
	var ue *UnknownTenantError
	if errors.As(err, &ue) {
		return http.StatusNotFound
	}
	var tu *TenantUnavailableError
	if errors.As(err, &tu) {
		return http.StatusConflict
	}
	var wt *WatchdogTimeoutError
	if errors.As(err, &wt) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
