package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func isDraining(err error) bool {
	var ae *AdmissionError
	return errors.As(err, &ae) && ae.Reason == "draining"
}

// TestGracefulShutdownOrdering races Shutdown against a storm of request
// workers under -race and checks the drain contract: once readiness flips
// false no request executes (RunRequest re-checks acceptance after joining
// the in-flight group), every in-flight request completes or is cancelled
// by the drain deadline, and the final per-tenant audit passes.
func TestGracefulShutdownOrdering(t *testing.T) {
	cfg := testConfig()
	cfg.DrainTimeout = 500 * time.Millisecond
	s := mustServer(t, cfg)
	names := []string{"t0", "t1", "t2"}
	for _, n := range names {
		if _, err := s.Admit(TenantConfig{Name: n, Workload: "listleak", Policy: "default", HeapLimit: 256 << 10}); err != nil {
			t.Fatalf("admit %s: %v", n, err)
		}
	}

	var (
		wg         sync.WaitGroup
		stop       = make(chan struct{})
		violations atomic.Int64
		executed   atomic.Int64
		rejected   atomic.Int64
		cancelled  atomic.Int64
	)
	for w := 0; w < 6; w++ {
		name := names[w%len(names)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				wasReady := s.Ready()
				_, err := s.RunRequest(name, 20)
				switch {
				case isDraining(err):
					rejected.Add(1)
				case errors.As(err, new(*RequestCancelledError)):
					cancelled.Add(1)
					executed.Add(1)
				case err == nil:
					executed.Add(1)
					// The request executed; if readiness was already false
					// BEFORE we called, the drain ordering is broken — a
					// request slipped in after /readyz flipped.
					if !wasReady {
						violations.Add(1)
					}
				default:
					t.Errorf("unexpected request outcome: %v", err)
					return
				}
			}
		}()
	}

	// Let the storm establish itself, then drain under it.
	time.Sleep(50 * time.Millisecond)
	rep, err := s.Shutdown()
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// After Shutdown returns nothing is in flight: the next request is a
	// typed draining rejection, deterministically.
	if _, rerr := s.RunRequest(names[0], 1); !isDraining(rerr) {
		t.Fatalf("request after shutdown = %v, want draining rejection", rerr)
	}
	close(stop)
	wg.Wait()

	if got := violations.Load(); got != 0 {
		t.Fatalf("%d requests executed after readiness flipped false", got)
	}
	if executed.Load() == 0 {
		t.Fatal("no request executed before the drain; the race is vacuous")
	}
	if rejected.Load() == 0 {
		t.Fatal("no request saw the draining rejection; the race is vacuous")
	}
	if rep.Tenants != len(names) {
		t.Fatalf("report covers %d tenants, want %d", rep.Tenants, len(names))
	}
	if len(rep.AuditViolations) != 0 {
		t.Fatalf("final audits found violations: %v", rep.AuditViolations)
	}
	// Idempotent: a second Shutdown returns the same report.
	rep2, err2 := s.Shutdown()
	if rep2 != rep || err2 != nil {
		t.Fatalf("second Shutdown = (%p, %v), want the first report (%p, nil)", rep2, err2, rep)
	}
	_ = cancelled.Load() // cancellation is exercised deterministically below
}

// TestShutdownCancelsOverstayingRequest pins the drain-deadline path: a
// request spinning a long non-leaking workload is cut at an iteration
// boundary when the deadline expires, surfaces *RequestCancelledError with
// partial progress, and the final audit still passes.
func TestShutdownCancelsOverstayingRequest(t *testing.T) {
	cfg := testConfig()
	cfg.DrainTimeout = 50 * time.Millisecond
	s := mustServer(t, cfg)
	tn, err := s.Admit(TenantConfig{Name: "spin", Workload: "antlr", HeapLimit: 512 << 10})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}

	type outcome struct {
		done int
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		done, rerr := s.RunRequest("spin", 1_000_000) // hours of work, uninterrupted
		ch <- outcome{done, rerr}
	}()
	// Wait until the request is genuinely executing.
	for tn.requests.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)

	rep, err := s.Shutdown()
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	out := <-ch
	var ce *RequestCancelledError
	if !errors.As(out.err, &ce) {
		t.Fatalf("overstaying request returned %v (%T), want *RequestCancelledError", out.err, out.err)
	}
	if ce.IterationsDone != out.done || out.done <= 0 || out.done >= 1_000_000 {
		t.Fatalf("cancelled after %d iterations (error says %d): want partial progress", out.done, ce.IterationsDone)
	}
	if rep.DrainedCleanly {
		t.Fatal("report claims a clean drain despite the forced cancellation")
	}
	if rep.CancelledInDrain == 0 {
		t.Fatal("report shows no cancelled requests")
	}
	if len(rep.AuditViolations) != 0 {
		t.Fatalf("final audit found violations after cancellation: %v", rep.AuditViolations)
	}
	// Cancellation is the daemon's fault, never the tenant's: no
	// quarantine pressure accrues.
	if got := tn.consecFaults.Load(); got != 0 {
		t.Fatalf("cancelled request counted toward quarantine: consecutive faults = %d", got)
	}
}
