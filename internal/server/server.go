package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/obs"
	"leakpruning/internal/vmerrors"
)

// Config sizes and arms the daemon.
type Config struct {
	// Budget is the global resident-byte budget across all tenant heaps.
	// The pressure ladder keeps sum(BytesUsed) under it; required.
	Budget uint64
	// OvercommitFactor bounds sum(HeapLimit) <= OvercommitFactor * Budget at
	// admission (0 = 2). Heap limits may collectively exceed the budget —
	// that is the bet leak pruning underwrites — but not without bound.
	OvercommitFactor float64
	// QuarantineThreshold is K: consecutive faults before a tenant is
	// quarantined (0 = 5, negative = never).
	QuarantineThreshold int
	// RequestTimeout is the per-request watchdog deadline (0 = 5s).
	RequestTimeout time.Duration
	// DrainTimeout bounds eviction and shutdown drains (0 = 5s).
	DrainTimeout time.Duration
	// ProbeInterval is the budget prober's period (0 = manual ProbeBudget
	// calls only — what tests and chaos use for determinism).
	ProbeInterval time.Duration
	// TightenThreshold, ForceThreshold, EvictThreshold are the ladder's
	// resident/budget trip points (0 = 0.70 / 0.85 / 0.95). Each level
	// includes the actions of those below it.
	TightenThreshold float64
	ForceThreshold   float64
	EvictThreshold   float64
	// TightenTo is the NearlyFullFraction pushed onto tenants at ladder
	// level >= 1 (0 = 0.75); their configured value is restored when
	// pressure clears.
	TightenTo float64
	// MaxForceRetries bounds the forced-cycle retry-with-backoff loop when a
	// collection reports Degraded (0 = 3).
	MaxForceRetries int
	// Obs receives every daemon metric; nil disables observability.
	Obs *obs.Obs
	// Injector arms the daemon-level points (BudgetProbeStall here;
	// per-tenant points live on TenantConfig). Nil disables.
	Injector *faultinject.Injector
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.OvercommitFactor == 0 {
		c.OvercommitFactor = 2
	}
	if c.QuarantineThreshold == 0 {
		c.QuarantineThreshold = 5
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.TightenThreshold == 0 {
		c.TightenThreshold = 0.70
	}
	if c.ForceThreshold == 0 {
		c.ForceThreshold = 0.85
	}
	if c.EvictThreshold == 0 {
		c.EvictThreshold = 0.95
	}
	if c.TightenTo == 0 {
		c.TightenTo = 0.75
	}
	if c.MaxForceRetries == 0 {
		c.MaxForceRetries = 3
	}
	return c
}

// Server is the daemon: a tenant table behind admission control, a request
// router with a per-tenant watchdog, the budget-pressure controller, and
// drain/shutdown orchestration.
type Server struct {
	cfg Config
	obs *obs.Obs

	mu      sync.Mutex
	tenants map[string]*Tenant

	// accepting gates new requests; ready mirrors it for /readyz. Flipped
	// false first thing in Shutdown, before the drain wait, so the
	// "no request executes after readyz flips" ordering holds: RunRequest
	// re-checks accepting AFTER joining the inflight group.
	accepting atomic.Bool
	// cancelAll asks every in-flight request to stop at its next iteration
	// boundary (set when the drain deadline expires).
	cancelAll atomic.Bool
	// drainMu orders inflight joins against the accepting flip: requests
	// check-and-Add under the read lock, Shutdown flips accepting under the
	// write lock, so by the time Shutdown calls inflight.Wait no Add can
	// race it and no request can join after readiness turned false.
	drainMu  sync.RWMutex
	inflight sync.WaitGroup

	// level is the ladder position last computed by ProbeBudget (0-3).
	level atomic.Int64
	// tightened remembers that level >= 1 pushed TightenTo onto tenants.
	tightened atomic.Bool

	stopProbe chan struct{}
	probeOnce sync.Once
	probeWG   sync.WaitGroup

	shutdownOnce sync.Once
	shutdownRep  *ShutdownReport
	shutdownErr  error

	// Daemon metrics (all nil-safe when cfg.Obs is nil).
	mAdmitted     *obs.Counter
	mRejected     *obs.Counter
	mEvictions    *obs.Counter
	mQuarantines  *obs.Counter
	mRestarts     *obs.Counter
	mProbes       *obs.Counter
	mForcedCycles *obs.Counter
	mReqOK        *obs.Counter
	mReqTrap      *obs.Counter
	mReqPanic     *obs.Counter
	mReqCancel    *obs.Counter
	mReqTimeout   *obs.Counter
	mReqRejected  *obs.Counter
	gPressure     *obs.Gauge
	gBudget       *obs.Gauge
	gResident     *obs.Gauge
	gTenants      *obs.Gauge

	// slo aggregates per-request latency into the per-ladder-level
	// summaries /pressure serves (slo.go).
	slo sloState
}

// New builds a daemon from cfg and starts the budget prober when
// ProbeInterval > 0. Callers own Shutdown.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Budget == 0 {
		return nil, fmt.Errorf("server: Config.Budget is required")
	}
	if !(cfg.TightenThreshold < cfg.ForceThreshold && cfg.ForceThreshold < cfg.EvictThreshold) {
		return nil, fmt.Errorf("server: pressure thresholds must be strictly increasing, got %g/%g/%g",
			cfg.TightenThreshold, cfg.ForceThreshold, cfg.EvictThreshold)
	}
	if cfg.TightenTo <= 0 || cfg.TightenTo >= 1 {
		return nil, fmt.Errorf("server: TightenTo must be in (0, 1), got %g", cfg.TightenTo)
	}
	s := &Server{
		cfg:       cfg,
		obs:       cfg.Obs,
		tenants:   make(map[string]*Tenant),
		stopProbe: make(chan struct{}),
	}
	s.slo.names = make(map[string]struct{})
	reg := s.reg()
	s.mAdmitted = reg.NewCounter("lp_tenants_admitted_total", "tenants admitted")
	s.mRejected = reg.NewCounter("lp_admission_rejects_total", "tenant admissions rejected")
	s.mEvictions = reg.NewCounter("lp_tenant_evictions_total", "tenants evicted under budget pressure or by request")
	s.mQuarantines = reg.NewCounter("lp_tenant_quarantines_total", "tenants quarantined after consecutive faults")
	s.mRestarts = reg.NewCounter("lp_tenant_session_restarts_total", "tenant sessions restarted after heap exhaustion")
	s.mProbes = reg.NewCounter("lp_budget_probes_total", "budget-pressure probes")
	s.mForcedCycles = reg.NewCounter("lp_forced_cycles_total", "collections forced by the pressure ladder")
	s.mReqOK = reg.NewCounter("lp_requests_total", "requests by outcome", obs.L("outcome", "ok"))
	s.mReqTrap = reg.NewCounter("lp_requests_total", "requests by outcome", obs.L("outcome", "trap"))
	s.mReqPanic = reg.NewCounter("lp_requests_total", "requests by outcome", obs.L("outcome", "panic"))
	s.mReqCancel = reg.NewCounter("lp_requests_total", "requests by outcome", obs.L("outcome", "cancelled"))
	s.mReqTimeout = reg.NewCounter("lp_requests_total", "requests by outcome", obs.L("outcome", "timeout"))
	s.mReqRejected = reg.NewCounter("lp_requests_total", "requests by outcome", obs.L("outcome", "rejected"))
	s.gPressure = reg.NewGauge("lp_budget_pressure_level", "degradation ladder level (0=nominal, 3=evicting)")
	s.gBudget = reg.NewGauge("lp_budget_bytes", "global resident-byte budget")
	s.gResident = reg.NewGauge("lp_resident_bytes", "resident bytes summed across tenants")
	s.gTenants = reg.NewGauge("lp_tenants", "tenants currently hosted (serving or quarantined)")
	s.gBudget.Set(int64(cfg.Budget))
	s.accepting.Store(true)
	if cfg.ProbeInterval > 0 {
		s.probeWG.Add(1)
		go s.probeLoop()
	}
	return s, nil
}

func (s *Server) reg() *obs.Registry { return s.obs.Registry() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Ready reports whether the daemon accepts requests (/readyz).
func (s *Server) Ready() bool { return s.accepting.Load() }

// PressureLevel returns the ladder level last computed by ProbeBudget.
func (s *Server) PressureLevel() int { return int(s.level.Load()) }

// Budget returns the configured global budget in bytes.
func (s *Server) Budget() uint64 { return s.cfg.Budget }

// Admit validates tc against the budget and admits a new tenant. Typed
// *AdmissionError on every rejection path.
func (s *Server) Admit(tc TenantConfig) (*Tenant, error) {
	reject := func(reason, detail string) (*Tenant, error) {
		s.mRejected.Inc()
		s.mReqRejected.Inc()
		return nil, &AdmissionError{Tenant: tc.Name, Reason: reason, Detail: detail}
	}
	if !s.accepting.Load() {
		return reject("draining", ErrNotAccepting.Error())
	}
	if tc.Name == "" {
		return reject("invalid-config", "tenant name is required")
	}
	if tc.HeapLimit == 0 {
		return reject("invalid-config", "heap limit is required")
	}
	if tc.HeapLimit > s.cfg.Budget {
		return reject("budget-exceeded", fmt.Sprintf(
			"heap limit %d exceeds the global budget %d", tc.HeapLimit, s.cfg.Budget))
	}
	if s.PressureLevel() >= 3 {
		return reject("budget-pressure", "daemon is evicting; not admitting new tenants")
	}
	// Validate the VM options before taking the slot so a bad config is an
	// admission error, not a daemon panic.
	if _, err := tc.vmOptions(nil); err != nil {
		return reject("invalid-config", err.Error())
	}

	s.mu.Lock()
	if _, dup := s.tenants[tc.Name]; dup {
		s.mu.Unlock()
		return reject("duplicate-name", "a tenant with this name is already admitted")
	}
	var committed uint64
	for _, t := range s.tenants {
		if t.State() != TenantEvicted {
			committed += t.Config().HeapLimit
		}
	}
	if limit := uint64(s.cfg.OvercommitFactor * float64(s.cfg.Budget)); committed+tc.HeapLimit > limit {
		s.mu.Unlock()
		return reject("overcommit-exceeded", fmt.Sprintf(
			"committed heap %d + %d would exceed the overcommit bound %d", committed, tc.HeapLimit, limit))
	}
	// Reserve the name while building the VM outside the lock.
	s.tenants[tc.Name] = nil
	s.mu.Unlock()

	t, err := newTenant(s, tc)
	s.mu.Lock()
	if err != nil {
		delete(s.tenants, tc.Name)
		s.mu.Unlock()
		return reject("invalid-config", err.Error())
	}
	s.tenants[tc.Name] = t
	s.mu.Unlock()
	s.mAdmitted.Inc()
	s.gTenants.Add(1)
	s.logf("tenant %s admitted (workload=%s policy=%s limit=%d)", tc.Name, tc.Workload, policyLabel(tc.Policy), tc.HeapLimit)
	return t, nil
}

// tenant looks up a live tenant entry (nil if unknown or mid-admission).
func (s *Server) tenant(name string) *Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants[name]
}

// Tenant returns the named tenant's handle, or nil if it was never
// admitted (or has been evicted). The chaos harness uses it to read
// per-cycle live-set hashes for the isolation oracle.
func (s *Server) Tenant(name string) *Tenant { return s.tenant(name) }

// RunRequest executes one request of iters workload iterations on the
// named tenant, guarded by the watchdog. It returns the iterations
// completed plus the tenant-isolated error, if any: VM traps, recovered
// panics, watchdog timeouts, and drain cancellations all come back as
// typed errors — never as daemon state.
func (s *Server) RunRequest(name string, iters int) (int, error) {
	// Join the inflight group under drainMu's read side: either this
	// request joins before Shutdown flips accepting (and the drain waits
	// for it), or it observes the flip and is rejected — never both, never
	// neither.
	s.drainMu.RLock()
	if !s.accepting.Load() {
		s.drainMu.RUnlock()
		s.mReqRejected.Inc()
		return 0, &AdmissionError{Tenant: name, Reason: "draining", Detail: ErrNotAccepting.Error()}
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()
	defer s.inflight.Done()
	if iters <= 0 || iters > MaxRequestIters {
		s.mReqRejected.Inc()
		return 0, &RequestValidationError{Tenant: name, Iters: iters,
			Detail: fmt.Sprintf("iters must be in [1, %d], got %d", MaxRequestIters, iters)}
	}
	t := s.tenant(name)
	if t == nil {
		s.mReqRejected.Inc()
		return 0, &UnknownTenantError{Tenant: name}
	}
	if st := t.State(); st != TenantServing {
		s.mReqRejected.Inc()
		return 0, &TenantUnavailableError{Tenant: name, State: st}
	}
	if t.pipelineHandle() != nil {
		return s.runPipelined(t, iters)
	}
	return s.runSerial(t, iters)
}

// runSerial is the original exclusive-lock request path — one request at
// a time per tenant — kept byte-for-byte in behavior as the equivalence
// oracle for the concurrent pipeline.
func (s *Server) runSerial(t *Tenant, iters int) (int, error) {
	name := t.Config().Name
	// The watchdog window covers lock wait plus execution: a tenant wedged
	// by a sibling request's slowness is still a watchdog trip.
	start := time.Now()
	if !t.acquire(s.cfg.RequestTimeout) {
		s.mReqTimeout.Inc()
		s.observeLatency(t, start)
		werr := &WatchdogTimeoutError{Tenant: name, Timeout: s.cfg.RequestTimeout}
		t.recordOutcome(werr)
		return 0, werr
	}
	if st := t.State(); st != TenantServing {
		t.release()
		s.mReqRejected.Inc()
		return 0, &TenantUnavailableError{Tenant: name, State: st}
	}
	t.requests.Add(1)

	type result struct {
		done int
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		done, err := t.serve(iters)
		ch <- result{done, err}
	}()

	remaining := s.cfg.RequestTimeout - time.Since(start)
	if remaining <= 0 {
		remaining = time.Nanosecond
	}
	timer := time.NewTimer(remaining)
	defer timer.Stop()
	select {
	case r := <-ch:
		s.finishRequest(t, r.err, t.sessionEpoch.Load(), false)
		t.release()
		s.observeLatency(t, start)
		return r.done, r.err
	case <-timer.C:
		// The VM thread cannot be killed; ask for an iteration-boundary
		// stop and hand the cleanup to a reaper so the caller gets its
		// timeout now. The lock is NOT released until the request actually
		// ends, so the tenant stays serialized. The reaper guarantees the
		// late result always reaches finishRequest/recordOutcome — and
		// marks it late, so a late SUCCESS cannot erase the watchdog fault
		// recorded below from the consecutive-fault streak.
		t.cancel.Store(true)
		go func() {
			r := <-ch
			t.cancel.Store(false)
			s.finishRequest(t, r.err, t.sessionEpoch.Load(), true)
			t.release()
		}()
		s.mReqTimeout.Inc()
		s.observeLatency(t, start)
		werr := &WatchdogTimeoutError{Tenant: name, Timeout: s.cfg.RequestTimeout}
		t.recordOutcome(werr)
		return 0, werr
	}
}

// runPipelined dispatches the request onto the tenant's worker pool. The
// watchdog window covers queue wait plus execution, mirroring the serial
// path's lock-wait-plus-execution window.
func (s *Server) runPipelined(t *Tenant, iters int) (int, error) {
	name := t.Config().Name
	req := &pipelineReq{iters: iters, enqueued: time.Now(), resp: make(chan pipelineResp, 1)}
	p, err := t.enqueue(req)
	if err != nil {
		s.mReqRejected.Inc()
		return 0, err
	}
	if p == nil {
		// A rolling update reshaped the tenant to serial mid-dispatch.
		return s.runSerial(t, iters)
	}
	t.requests.Add(1)
	timer := time.NewTimer(s.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case r := <-req.resp:
		s.observeLatency(t, req.enqueued)
		return r.done, r.err
	case <-timer.C:
		// Abandon the request, never the bookkeeping: the worker cancels it
		// at the next iteration boundary, records the late outcome, and its
		// buffered response send completes without a reader.
		req.timedOut.Store(true)
		req.cancel.Store(true)
		s.mReqTimeout.Inc()
		s.observeLatency(t, req.enqueued)
		werr := &WatchdogTimeoutError{Tenant: name, Timeout: s.cfg.RequestTimeout}
		t.recordOutcome(werr)
		return 0, werr
	}
}

// finishRequest classifies a request outcome into metrics and fault
// bookkeeping, restarting the tenant session after heap exhaustion.
// epoch is the session epoch the request executed against (concurrent
// workers hitting the same dead session must trigger ONE restart); late
// marks an outcome whose caller already took a watchdog timeout, so a
// late success must not reset the consecutive-fault streak that timeout
// just started.
func (s *Server) finishRequest(t *Tenant, err error, epoch int64, late bool) {
	switch {
	case err == nil:
		s.mReqOK.Inc()
	case isPanicErr(err):
		s.mReqPanic.Inc()
	case isCancelErr(err):
		s.mReqCancel.Inc()
	default:
		s.mReqTrap.Inc()
	}
	if vmerrors.IsOOM(err) {
		// The session's heap is exhausted beyond what pruning could avert —
		// the paper's program-termination outcome, scoped to one tenant.
		// Restart the session so the slot keeps serving.
		s.restartSession(t, err, epoch)
	}
	if isCancelErr(err) {
		// Drain cancellation is the daemon's doing, not the tenant's fault:
		// it must not count toward quarantine.
		t.setLastErr(err)
		return
	}
	if late && err == nil {
		return
	}
	t.recordOutcome(err)
}

// restartSession rebuilds t's VM after exhaustion, with bounded backoff so
// a tenant that instantly re-exhausts cannot spin the daemon. epoch is
// the session the failure came from: when K pipeline workers OOM on the
// same session back to back, the first restart bumps the epoch and the
// siblings' attempts turn into no-ops instead of discarding the fresh VM.
func (s *Server) restartSession(t *Tenant, cause error, epoch int64) {
	t.restartMu.Lock()
	defer t.restartMu.Unlock()
	if t.sessionEpoch.Load() != epoch {
		return // a sibling worker already replaced this session
	}
	if st := t.State(); st == TenantEvicting || st == TenantEvicted {
		return // don't resurrect a VM on its way out the door
	}
	cfg := t.Config()
	backoff := time.Millisecond
	for attempt := 0; attempt < 3; attempt++ {
		if err := t.startSession(cfg); err == nil {
			t.restarts.Add(1)
			s.mRestarts.Inc()
			s.logf("tenant %s session restarted after %v", cfg.Name, cause)
			return
		} else {
			s.logf("tenant %s session restart attempt %d failed: %v", cfg.Name, attempt+1, err)
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	// Could not rebuild; quarantine rather than serve a dead VM.
	if t.state.CompareAndSwap(int32(TenantServing), int32(TenantQuarantined)) {
		s.mQuarantines.Inc()
	}
}

// UpdateTenant applies a rolling config update to a live tenant without a
// restart where possible: NearlyFullFraction changes land on the running
// VM; workload, policy, heap-limit, or mark-mode changes swap in a fresh
// session (validated first — an invalid update leaves the old session
// untouched).
func (s *Server) UpdateTenant(name string, tc TenantConfig) error {
	t := s.tenant(name)
	if t == nil {
		return &UnknownTenantError{Tenant: name}
	}
	if st := t.State(); st == TenantEvicting || st == TenantEvicted {
		return &TenantUnavailableError{Tenant: name, State: st}
	}
	tc.Name = name
	old := t.Config()
	if tc.Workload == "" {
		tc.Workload = old.Workload
	}
	if tc.HeapLimit == 0 {
		tc.HeapLimit = old.HeapLimit
	}
	if tc.Policy == "" {
		tc.Policy = old.Policy
	}
	// Validate BEFORE touching the tenant: reload must be all-or-nothing.
	if _, err := tc.vmOptions(nil); err != nil {
		return &AdmissionError{Tenant: name, Reason: "invalid-config", Detail: err.Error()}
	}
	if tc.HeapLimit > s.cfg.Budget {
		return &AdmissionError{Tenant: name, Reason: "budget-exceeded", Detail: fmt.Sprintf(
			"heap limit %d exceeds the global budget %d", tc.HeapLimit, s.cfg.Budget)}
	}

	sameSession := tc.Workload == old.Workload && tc.Policy == old.Policy &&
		tc.HeapLimit == old.HeapLimit && tc.MarkMode == old.MarkMode &&
		tc.GCWorkers == old.GCWorkers && tc.DiskLimit == old.DiskLimit &&
		tc.AuditEveryGC == old.AuditEveryGC &&
		tc.Pipeline == old.Pipeline && tc.Workers == old.Workers &&
		tc.QueueDepth == old.QueueDepth
	if sameSession {
		t.cfgMu.Lock()
		t.cfg = tc
		t.cfgMu.Unlock()
		if tc.NearlyFullFraction != 0 && !s.tightened.Load() {
			if err := t.currentVM().SetNearlyFullFraction(tc.NearlyFullFraction); err != nil {
				return &AdmissionError{Tenant: name, Reason: "invalid-config", Detail: err.Error()}
			}
		}
		s.logf("tenant %s config updated in place", name)
		return nil
	}
	// Session swap: serialize against requests via the tenant lock, and —
	// for a concurrent pipeline — wait out the worker pool too.
	if !t.exclusive(s.cfg.DrainTimeout) {
		return &WatchdogTimeoutError{Tenant: name, Timeout: s.cfg.DrainTimeout}
	}
	defer t.release()
	if err := t.startSession(tc); err != nil {
		return &AdmissionError{Tenant: name, Reason: "invalid-config", Detail: err.Error()}
	}
	t.cfgMu.Lock()
	t.cfg = tc
	t.cfgMu.Unlock()
	t.reshapePipeline(tc)
	// Un-quarantine on an explicit operator-driven session swap: a fresh VM
	// deserves a fresh fault budget.
	t.consecFaults.Store(0)
	t.state.CompareAndSwap(int32(TenantQuarantined), int32(TenantServing))
	s.logf("tenant %s session swapped (workload=%s policy=%s limit=%d)", name, tc.Workload, policyLabel(tc.Policy), tc.HeapLimit)
	return nil
}

// EvictTenant removes a tenant: reject new requests, drain the in-flight
// one against DrainTimeout (cancelling at an iteration boundary if it
// overstays), run a final forced collection and invariant audit, release
// the slot. The audit findings are returned so callers (and the chaos
// harness) can assert a clean teardown.
func (s *Server) EvictTenant(name, reason string) ([]string, error) {
	t := s.tenant(name)
	if t == nil {
		return nil, &UnknownTenantError{Tenant: name}
	}
	// Only one evictor proceeds.
	if !t.state.CompareAndSwap(int32(TenantServing), int32(TenantEvicting)) &&
		!t.state.CompareAndSwap(int32(TenantQuarantined), int32(TenantEvicting)) {
		return nil, &TenantUnavailableError{Tenant: name, State: t.State()}
	}
	s.logf("tenant %s evicting (%s)", name, reason)

	drain := s.cfg.DrainTimeout
	if t.Config().DaemonInjector.Should(faultinject.EvictDrainTimeout) {
		// Injected pathology: the in-flight request refuses to yield, so the
		// drain must take the cancellation path.
		drain = time.Nanosecond
	}
	if !t.exclusive(drain) {
		// Overstaying request(s): cancel at the next iteration boundary and
		// wait out the remainder of the drain for them to let go.
		t.cancel.Store(true)
		if !t.exclusive(s.cfg.DrainTimeout) {
			// Still wedged. Mark evicted anyway — the slot must come back —
			// but report it loudly.
			t.state.Store(int32(TenantEvicted))
			s.dropTenant(name, t)
			return nil, fmt.Errorf("server: tenant %q eviction drain timed out with a wedged request", name)
		}
		t.cancel.Store(false)
	}
	defer t.release()

	// Final forced collection and invariant audit on the way out.
	var findings []string
	if machine := t.currentVM(); machine != nil {
		machine.Collect()
		findings = machine.Verify()
	}
	t.state.Store(int32(TenantEvicted))
	s.dropTenant(name, t)
	s.mEvictions.Inc()
	if len(findings) > 0 {
		return findings, fmt.Errorf("server: tenant %q final audit found %d violations", name, len(findings))
	}
	return nil, nil
}

// dropTenant removes the table entry, stops the worker pool, and zeroes
// the tenant's gauges.
func (s *Server) dropTenant(name string, t *Tenant) {
	s.mu.Lock()
	delete(s.tenants, name)
	s.mu.Unlock()
	t.closePipeline()
	s.gTenants.Add(-1)
	t.residentGauge.Set(0)
	t.queueDepth.Set(0)
}

// Tenants snapshots every tenant's status, sorted by name.
// MaxPausesByMode aggregates, across every live tenant VM, the longest
// stop-the-world pause observed per GC cycle mode ("normal", "select",
// "prune"), in nanoseconds. Under concurrent marking the SELECT/PRUNE
// entries stay microsecond-scale; /pressure exposes this so operators can
// verify the frozen-snapshot machinery is actually keeping those pauses
// short under multi-tenant load.
func (s *Server) MaxPausesByMode() map[string]int64 {
	s.mu.Lock()
	list := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		if t != nil {
			list = append(list, t)
		}
	}
	s.mu.Unlock()
	out := map[string]int64{}
	for _, t := range list {
		machine := t.currentVM()
		if machine == nil {
			continue
		}
		for mode, ns := range machine.MaxPausesByMode() {
			if ns > out[mode] {
				out[mode] = ns
			}
		}
	}
	return out
}

func (s *Server) Tenants() []TenantStatus {
	s.mu.Lock()
	list := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		if t != nil {
			list = append(list, t)
		}
	}
	s.mu.Unlock()
	out := make([]TenantStatus, 0, len(list))
	for _, t := range list {
		out = append(out, t.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ShutdownReport summarizes a graceful shutdown for the operator.
type ShutdownReport struct {
	Tenants          int            `json:"tenants"`
	DrainedCleanly   bool           `json:"drained_cleanly"`
	CancelledInDrain uint64         `json:"cancelled_in_drain"`
	AuditViolations  map[string]int `json:"audit_violations,omitempty"`
}

// Shutdown drains the daemon: flip readiness off, wait out in-flight
// requests against DrainTimeout, cancel stragglers at iteration
// boundaries, then run a final forced collection and invariant audit per
// tenant. Idempotent; later calls return the first report.
func (s *Server) Shutdown() (*ShutdownReport, error) {
	s.shutdownOnce.Do(func() {
		s.shutdownRep, s.shutdownErr = s.shutdown()
	})
	return s.shutdownRep, s.shutdownErr
}

func (s *Server) shutdown() (*ShutdownReport, error) {
	// Order matters: accepting flips under drainMu's write lock BEFORE the
	// drain wait, and RunRequest joins the inflight group under the read
	// lock, so no new request can slip past the wait below. This is the
	// property shutdown_test.go races.
	s.drainMu.Lock()
	s.accepting.Store(false)
	s.drainMu.Unlock()
	s.probeOnce.Do(func() { close(s.stopProbe) })
	s.probeWG.Wait()

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	rep := &ShutdownReport{DrainedCleanly: true}
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-drained:
	case <-timer.C:
		// Deadline: cancel everything at iteration boundaries and wait for
		// the boundary to be reached. VM iterations are short; this
		// converges as fast as the slowest single iteration.
		rep.DrainedCleanly = false
		s.cancelAll.Store(true)
		<-drained
	}

	// Final audit per tenant. All requests are done, so the tenant locks
	// are free (a wedged watchdog reaper would have surfaced above).
	s.mu.Lock()
	tenants := make(map[string]*Tenant, len(s.tenants))
	for name, t := range s.tenants {
		if t != nil {
			tenants[name] = t
		}
	}
	s.mu.Unlock()
	var firstErr error
	for name, t := range tenants {
		rep.Tenants++
		rep.CancelledInDrain += t.cancelled.Load()
		if !t.exclusive(s.cfg.DrainTimeout) {
			if firstErr == nil {
				firstErr = fmt.Errorf("server: tenant %q still busy at shutdown audit", name)
			}
			continue
		}
		if machine := t.currentVM(); machine != nil {
			machine.Collect()
			if findings := machine.Verify(); len(findings) > 0 {
				if rep.AuditViolations == nil {
					rep.AuditViolations = make(map[string]int)
				}
				rep.AuditViolations[name] = len(findings)
				if firstErr == nil {
					firstErr = fmt.Errorf("server: tenant %q final audit found %d violations: %s",
						name, len(findings), findings[0])
				}
			}
		}
		t.release()
		t.closePipeline()
	}
	s.logf("shutdown complete: %d tenants, drained cleanly=%v, cancelled=%d",
		rep.Tenants, rep.DrainedCleanly, rep.CancelledInDrain)
	return rep, firstErr
}

func isPanicErr(err error) bool {
	_, ok := err.(*RequestPanicError)
	return ok
}

func isCancelErr(err error) bool {
	_, ok := err.(*RequestCancelledError)
	return ok
}
