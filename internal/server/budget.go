package server

import (
	"time"

	"leakpruning/internal/faultinject"
)

// hysteresis is how far below a trip point the resident fraction must fall
// before the ladder steps back down, so a tenant oscillating around a
// threshold cannot flap the level (and with it the tighten/restore churn).
const hysteresis = 0.05

// ProbeResult reports one budget-pressure probe: what the controller saw
// and which rung of the ladder it acted on.
type ProbeResult struct {
	// Resident is the summed BytesUsed across live tenants.
	Resident uint64 `json:"resident_bytes"`
	// Fraction is Resident / Budget.
	Fraction float64 `json:"fraction"`
	// Level is the ladder level after this probe (0 nominal, 1 tightened,
	// 2 forcing cycles, 3 evicting).
	Level int `json:"level"`
	// Forced names the tenant whose collection was forced at level >= 2.
	Forced string `json:"forced,omitempty"`
	// ForcedDegraded counts forced cycles that came back Degraded and were
	// retried with backoff.
	ForcedDegraded int `json:"forced_degraded,omitempty"`
	// Evicted names the tenant evicted at level 3.
	Evicted string `json:"evicted,omitempty"`
	// Stalled records a BudgetProbeStall injection firing on this probe.
	Stalled bool `json:"stalled,omitempty"`
}

// ProbeBudget runs one step of the budget-pressure controller: sum
// resident bytes across tenants, publish the gauges, then walk the
// degradation ladder off the published values. Each level includes the
// levels below it:
//
//	level 1: tighten every serving tenant's OBSERVE → SELECT threshold to
//	         TightenTo, engaging pruning earlier than the paper's 0.9;
//	level 2: additionally force a full SELECT/PRUNE collection on the
//	         worst offender, retrying with backoff when the cycle reports
//	         Degraded (serial-fallback) instead of trusting a bad cycle;
//	level 3: additionally evict the worst offender — drain, final forced
//	         collection, invariant audit, slot released.
//
// Tests and the chaos harness call it directly (ProbeInterval 0) so every
// ladder transition is deterministic; cmd/leakd runs it on a ticker.
func (s *Server) ProbeBudget() ProbeResult {
	s.mProbes.Inc()
	var res ProbeResult
	if s.cfg.Injector.Should(faultinject.BudgetProbeStall) {
		// A stalled probe must delay the controller, never wedge it: the
		// stall is bounded and the probe then proceeds with fresh numbers.
		res.Stalled = true
		time.Sleep(500 * time.Microsecond)
	}

	// Publish, then read back: the ladder is driven by the same obs gauges
	// an operator watches, so /metrics can never disagree with the
	// controller's inputs.
	s.mu.Lock()
	tenants := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		if t != nil && t.State() != TenantEvicted {
			tenants = append(tenants, t)
		}
	}
	s.mu.Unlock()
	var resident uint64
	for _, t := range tenants {
		var bytes uint64
		if machine := t.currentVM(); machine != nil {
			bytes = machine.HeapStats().BytesUsed
		}
		t.residentGauge.Set(int64(bytes))
		if t.residentGauge != nil {
			// Observability on: read back through the gauge so the ladder's
			// input IS the exported number, never a private shadow of it.
			bytes = uint64(t.residentGauge.Load())
		}
		resident += bytes
	}
	s.gResident.Set(int64(resident))
	if s.gResident != nil {
		resident = uint64(s.gResident.Load())
	}
	res.Resident = resident
	res.Fraction = float64(res.Resident) / float64(s.cfg.Budget)

	res.Level = s.nextLevel(res.Fraction)
	s.level.Store(int64(res.Level))
	s.gPressure.Set(int64(res.Level))

	switch {
	case res.Level >= 1:
		s.tightenAll(tenants)
	case s.tightened.Load():
		s.restoreAll(tenants)
	}
	if res.Level >= 2 {
		if worst := worstOffender(tenants); worst != nil {
			res.Forced = worst.Config().Name
			res.ForcedDegraded = s.forceCycle(worst)
		}
	}
	if res.Level >= 3 {
		if worst := worstOffender(tenants); worst != nil {
			name := worst.Config().Name
			if _, err := s.EvictTenant(name, "budget pressure"); err != nil {
				s.logf("pressure eviction of %s failed: %v", name, err)
			} else {
				res.Evicted = name
			}
		}
	}
	return res
}

// nextLevel applies the trip points with downward hysteresis to the
// current level.
func (s *Server) nextLevel(fraction float64) int {
	cur := int(s.level.Load())
	up := 0
	switch {
	case fraction >= s.cfg.EvictThreshold:
		up = 3
	case fraction >= s.cfg.ForceThreshold:
		up = 2
	case fraction >= s.cfg.TightenThreshold:
		up = 1
	}
	if up >= cur {
		return up
	}
	// Stepping down: require the fraction to clear the old level's trip
	// point by the hysteresis margin, one rung at a time.
	down := cur
	for down > up {
		var trip float64
		switch down {
		case 3:
			trip = s.cfg.EvictThreshold
		case 2:
			trip = s.cfg.ForceThreshold
		default:
			trip = s.cfg.TightenThreshold
		}
		if fraction >= trip-hysteresis {
			break
		}
		down--
	}
	return down
}

// tightenAll pushes the pressure threshold onto every serving tenant.
// SetNearlyFullFraction is lock-free on the VM side, so this never waits
// on a tenant's request lock.
func (s *Server) tightenAll(tenants []*Tenant) {
	if s.tightened.Swap(true) {
		return
	}
	for _, t := range tenants {
		if t.State() != TenantServing {
			continue
		}
		if machine := t.currentVM(); machine != nil {
			if machine.NearlyFullFraction() > s.cfg.TightenTo {
				if err := machine.SetNearlyFullFraction(s.cfg.TightenTo); err != nil {
					s.logf("tighten %s: %v", t.Config().Name, err)
				}
			}
		}
	}
	s.logf("budget pressure: tightened nearly-full fraction to %g", s.cfg.TightenTo)
}

// restoreAll undoes tightenAll once pressure clears, returning each tenant
// to its configured threshold.
func (s *Server) restoreAll(tenants []*Tenant) {
	if !s.tightened.Swap(false) {
		return
	}
	for _, t := range tenants {
		want := t.Config().NearlyFullFraction
		if want == 0 {
			want = 0.9 // the paper's default, restored verbatim
		}
		if machine := t.currentVM(); machine != nil {
			if err := machine.SetNearlyFullFraction(want); err != nil {
				s.logf("restore %s: %v", t.Config().Name, err)
			}
		}
	}
	s.logf("budget pressure cleared: restored nearly-full fractions")
}

// worstOffender picks the live tenant with the most resident bytes — the
// one whose eviction (or forced cycle) buys the most budget back.
func worstOffender(tenants []*Tenant) *Tenant {
	var worst *Tenant
	var worstBytes uint64
	for _, t := range tenants {
		st := t.State()
		if st == TenantEvicting || st == TenantEvicted {
			continue
		}
		b := uint64(t.residentGauge.Load())
		if t.residentGauge == nil {
			if machine := t.currentVM(); machine != nil {
				b = machine.HeapStats().BytesUsed
			}
		}
		if worst == nil || b > worstBytes {
			worst, worstBytes = t, b
		}
	}
	return worst
}

// forceCycle runs a forced full collection on t, retrying with backoff
// when the cycle reports Degraded (the parallel tracer fell back to serial
// after a worker fault): a degraded cycle still freed memory, but pressure
// decisions deserve a clean signal, so the controller retries up to
// MaxForceRetries before accepting the degraded result. Returns how many
// degraded cycles were observed.
func (s *Server) forceCycle(t *Tenant) int {
	machine := t.currentVM()
	if machine == nil {
		return 0
	}
	degraded := 0
	backoff := time.Millisecond
	for attempt := 0; ; attempt++ {
		s.mForcedCycles.Inc()
		res := machine.Collect()
		if !res.Degraded {
			return degraded
		}
		degraded++
		if attempt+1 >= s.cfg.MaxForceRetries {
			s.logf("forced cycle on %s still degraded after %d attempts", t.Config().Name, attempt+1)
			return degraded
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// probeLoop is the background prober driving ProbeBudget on a ticker until
// Shutdown closes stopProbe.
func (s *Server) probeLoop() {
	defer s.probeWG.Done()
	ticker := time.NewTicker(s.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopProbe:
			return
		case <-ticker.C:
			s.ProbeBudget()
		}
	}
}
