// Package obs is the runtime's observability layer: a metrics registry
// (atomic counters, gauges, and fixed-bucket histograms with a Prometheus
// text exporter and a JSON snapshot) and a per-thread ring-buffered event
// tracer that emits Chrome trace-event JSON loadable in Perfetto.
//
// The package is a leaf: it imports nothing from the rest of the runtime,
// so every layer (heap, gc, vm, offload, faultinject) can depend on it
// without cycles — the same discipline package faultinject follows.
//
// Everything is built around nil-safety so that disabled observability
// costs exactly one branch per instrumentation site and never allocates or
// reads the clock:
//
//   - a nil *Obs hands out a nil *Registry and a nil *Tracer;
//   - a nil *Registry hands out nil *Counter/*Gauge/*Histogram;
//   - nil metric methods (Inc, Add, Observe) and nil *Ring/*Tracer methods
//     are no-ops.
//
// Components therefore store typed metric pointers unconditionally at
// construction time and call them unconditionally at the instrumentation
// site; when observability is off every such call is a single nil test.
// Timestamped sites (trace spans and instants) must additionally guard
// their time.Now with the same nil test, which the Ring and Tracer helpers
// do internally.
package obs

// Obs bundles one metrics registry and one tracer. A nil *Obs is valid and
// means "observability disabled".
type Obs struct {
	reg *Registry
	tr  *Tracer
}

// New creates an enabled observability handle with a fresh registry and
// tracer.
func New() *Obs {
	return &Obs{reg: NewRegistry(), tr: NewTracer()}
}

// Registry returns the metrics registry (nil when o is nil).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the event tracer (nil when o is nil).
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}
