package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerContentNegotiation exercises the /metrics exporter's format
// selection: Prometheus text by default, JSON on Accept or ?format=json,
// and the explicit format override beating the Accept header.
func TestHandlerContentNegotiation(t *testing.T) {
	o := New()
	o.Registry().NewCounter("lp_test_requests_total", "requests served").Add(7)
	o.Registry().NewGauge("lp_test_pressure_level", "ladder level").Set(2)
	h := Handler(o)

	cases := []struct {
		name    string
		target  string
		accept  string
		wantCT  string
		wantSub string
	}{
		{"default is prometheus", "/metrics", "", "text/plain", "lp_test_requests_total 7"},
		{"curl-style accept-anything stays prometheus", "/metrics", "*/*", "text/plain", "lp_test_requests_total 7"},
		{"accept json", "/metrics", "application/json", "application/json", `"lp_test_requests_total"`},
		{"text preferred over json when listed first", "/metrics", "text/plain, application/json", "text/plain", "lp_test_pressure_level 2"},
		{"format override beats accept", "/metrics?format=json", "text/plain", "application/json", `"lp_test_pressure_level"`},
		{"format=prometheus beats json accept", "/metrics?format=prometheus", "application/json", "text/plain", "lp_test_requests_total 7"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, tc.target, nil)
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("status %d, want 200", rec.Code)
			}
			if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, tc.wantCT) {
				t.Fatalf("content type %q, want prefix %q", ct, tc.wantCT)
			}
			if body := rec.Body.String(); !strings.Contains(body, tc.wantSub) {
				t.Fatalf("body missing %q:\n%s", tc.wantSub, body)
			}
			if strings.HasPrefix(tc.wantCT, "application/json") {
				var snap any
				if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
					t.Fatalf("JSON body does not parse: %v", err)
				}
			}
		})
	}
}

// TestHandlerNilObs: the handler must be mountable with observability
// disabled and answer 503 rather than panic.
func TestHandlerNilObs(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("nil obs: status %d, want 503", rec.Code)
	}
}
