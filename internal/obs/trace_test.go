package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func parseTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, data)
	}
	return events
}

// TestTraceJSONShape checks the exported stream is a valid trace-event
// array: every event has name/ph/pid/tid, spans carry ts+dur, instants
// carry ts, and args survive with both string and integer values.
func TestTraceJSONShape(t *testing.T) {
	tr := NewTracer()
	tr.Emit(Span("gc.mark", "gc", 1500, 2500, 0, A("gc", 3), AS("mode", "prune")))
	tr.Emit(Instant("fault.fire", "fault", 4200, 0, AS("point", "alloc-limit-race")))
	r := tr.NewRing("mutator")
	r.Instant("poison.trap", "vm", A("src_class", 7))
	tr.DrainAll()

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf, false); err != nil {
		t.Fatal(err)
	}
	events := parseTrace(t, buf.Bytes())
	var sawSpan, sawInstant, sawTrap, sawThreadName bool
	for _, ev := range events {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event missing %q: %v", field, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("span missing ts: %v", ev)
			}
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("span missing dur: %v", ev)
			}
			if ev["name"] == "gc.mark" {
				sawSpan = true
				args := ev["args"].(map[string]any)
				if args["gc"].(float64) != 3 || args["mode"] != "prune" {
					t.Fatalf("span args mangled: %v", args)
				}
				if ev["ts"].(float64) != 1.5 || ev["dur"].(float64) != 2.5 {
					t.Fatalf("ns->us conversion wrong: %v", ev)
				}
			}
		case "i":
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("instant missing ts: %v", ev)
			}
			if ev["name"] == "fault.fire" {
				sawInstant = true
			}
			if ev["name"] == "poison.trap" && ev["tid"].(float64) == 1 {
				sawTrap = true
			}
		case "M":
			if ev["name"] == "thread_name" {
				sawThreadName = true
			}
		}
	}
	if !sawSpan || !sawInstant || !sawTrap || !sawThreadName {
		t.Fatalf("missing expected events (span=%v instant=%v trap=%v meta=%v)",
			sawSpan, sawInstant, sawTrap, sawThreadName)
	}
}

// TestRingOverflow fills a ring past capacity and checks the oldest events
// are overwritten and counted as dropped.
func TestRingOverflow(t *testing.T) {
	tr := NewTracer()
	r := tr.NewRing("hot")
	total := DefaultRingEvents + 100
	for i := 0; i < total; i++ {
		r.Instant("e", "t", A("i", int64(i)))
	}
	tr.DrainAll()
	if got := tr.Dropped(); got != 100 {
		t.Fatalf("dropped = %d, want 100", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf, false); err != nil {
		t.Fatal(err)
	}
	events := parseTrace(t, buf.Bytes())
	// The survivors must be the LAST DefaultRingEvents instants, in order.
	var seen []int64
	for _, ev := range events {
		if ev["name"] == "e" {
			seen = append(seen, int64(ev["args"].(map[string]any)["i"].(float64)))
		}
	}
	if len(seen) != DefaultRingEvents {
		t.Fatalf("survivors = %d, want %d", len(seen), DefaultRingEvents)
	}
	for k, v := range seen {
		if want := int64(100 + k); v != want {
			t.Fatalf("survivor[%d] = %d, want %d", k, v, want)
		}
	}
}

// TestNormalizedDeterminism runs the same logical event sequence through
// two tracers (whose wall-clock timestamps necessarily differ) and checks
// the normalized exports are byte-identical while the raw ones are not
// required to be.
func TestNormalizedDeterminism(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer()
		r := tr.NewRing("worker")
		tr.Emit(Span("gc.mark", "gc", tr.Now(), 10, 0, A("gc", 1)))
		r.Instant("poison.trap", "vm", A("slot", 2))
		tr.Emit(Instant("stw.stop", "safepoint", tr.Now(), 0))
		tr.CloseRing(r)
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteTrace(&a, true); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteTrace(&b, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("normalized traces differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), `"dur":0`) || strings.Contains(a.String(), `"ts":0.`) {
		t.Fatalf("normalized trace should use sequence timestamps and zero durations: %s", a.String())
	}
	events := parseTrace(t, a.Bytes())
	if len(events) == 0 {
		t.Fatal("empty normalized trace")
	}
}

// TestCloseRingUnregisters checks a closed ring is drained once and no
// longer touched by DrainAll.
func TestCloseRingUnregisters(t *testing.T) {
	tr := NewTracer()
	r := tr.NewRing("t")
	r.Instant("e", "c")
	tr.CloseRing(r)
	n := tr.Len()
	tr.DrainAll()
	if tr.Len() != n {
		t.Fatal("DrainAll touched a closed ring")
	}
}
