package obs

import (
	"os"
	"path/filepath"
)

// WriteArtifacts drains the tracer and writes trace_<tag>.json (Chrome
// trace-event array) and metrics_<tag>.json (registry snapshot) under dir,
// creating it if needed. Returns the two paths. A nil *Obs writes nothing.
func WriteArtifacts(o *Obs, dir, tag string) (tracePath, metricsPath string, err error) {
	if o == nil {
		return "", "", nil
	}
	if err = os.MkdirAll(dir, 0o755); err != nil {
		return "", "", err
	}
	o.Tracer().DrainAll()

	tracePath = filepath.Join(dir, "trace_"+tag+".json")
	f, err := os.Create(tracePath)
	if err != nil {
		return "", "", err
	}
	if err = o.Tracer().WriteTrace(f, false); err != nil {
		f.Close()
		return "", "", err
	}
	if err = f.Close(); err != nil {
		return "", "", err
	}

	metricsPath = filepath.Join(dir, "metrics_"+tag+".json")
	f, err = os.Create(metricsPath)
	if err != nil {
		return "", "", err
	}
	if err = o.Registry().WriteJSON(f); err != nil {
		f.Close()
		return "", "", err
	}
	return tracePath, metricsPath, f.Close()
}
