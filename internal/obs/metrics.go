package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value metric dimension.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. All methods are safe on a
// nil receiver (no-ops / zero), which is the disabled-observability path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a signed instantaneous value. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets delimited by a sorted
// slice of upper bounds. Buckets are half-open on the upper side:
//
//	bucket 0 counts              v < bounds[0]
//	bucket i counts bounds[i-1] <= v < bounds[i]
//	bucket len(bounds) counts    v >= bounds[len(bounds)-1]   (overflow)
//
// so an observation exactly equal to a bound lands in the bucket ABOVE it.
// Nil-safe like Counter.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Uint64
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v >= h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketCounts returns a snapshot of the per-bucket counts
// (len(bounds)+1 entries, last is the overflow bucket). Nil on nil.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Bounds returns the configured upper bounds (nil on nil receiver).
func (h *Histogram) Bounds() []uint64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Shared bucket layouts used by the runtime's instrumentation points.
var (
	// DurationBucketsNs covers 1µs .. 1s in decades, for GC phase times
	// and safepoint stop latencies.
	DurationBucketsNs = []uint64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
	// ByteBuckets covers 64B .. 1MiB in powers of four, for pruned-object
	// sizes.
	ByteBuckets = []uint64{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	// StaleAgeBuckets gives one bucket per staleness level 0..7 (the
	// per-object stale counter saturates at 8), so each level is counted
	// exactly.
	StaleAgeBuckets = []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	// LatencyBucketsNs covers 4µs .. ~17s in powers of two — fine enough
	// (~1.5× between adjacent quantile estimates) for the p50/p95/p99
	// request-latency aggregation on /pressure, and wide enough to hold a
	// request that rode out a watchdog deadline.
	LatencyBucketsNs = latencyBuckets()
)

func latencyBuckets() []uint64 {
	out := make([]uint64, 0, 23)
	for b := uint64(1) << 12; b <= 1<<34; b <<= 1 {
		out = append(out, b)
	}
	return out
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

type metricEntry struct {
	name   string
	help   string
	kind   metricKind
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds registered metrics in registration order. Registration
// takes a mutex; reads and updates of the metrics themselves are lock-free
// atomics. A nil *Registry hands out nil metrics, making every downstream
// site a single nil check.
type Registry struct {
	mu      sync.Mutex
	entries []*metricEntry
	index   map[string]*metricEntry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metricEntry)}
}

func metricKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
	}
	return b.String()
}

// register returns the existing entry for (name, labels) or installs a new
// one built by mk. Re-registering the same series with a different kind
// panics: that is a programming error, not a runtime condition.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, mk func(e *metricEntry)) *metricEntry {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, e.kind))
		}
		return e
	}
	e := &metricEntry{name: name, help: help, kind: kind, labels: append([]Label(nil), labels...)}
	mk(e)
	r.index[key] = e
	r.entries = append(r.entries, e)
	return e
}

// NewCounter registers (or finds) a counter series. Returns nil on a nil
// registry.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	e := r.register(name, help, kindCounter, labels, func(e *metricEntry) {
		e.counter = &Counter{}
	})
	return e.counter
}

// NewGauge registers (or finds) a gauge series. Returns nil on a nil
// registry.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	e := r.register(name, help, kindGauge, labels, func(e *metricEntry) {
		e.gauge = &Gauge{}
	})
	return e.gauge
}

// NewHistogram registers (or finds) a histogram series with the given
// sorted upper bounds. Returns nil on a nil registry.
func (r *Registry) NewHistogram(name, help string, bounds []uint64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	e := r.register(name, help, kindHistogram, labels, func(e *metricEntry) {
		h := &Histogram{bounds: append([]uint64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		e.hist = h
	})
	return e.hist
}

// escapeLabelValue applies Prometheus text-format escaping to a label
// value: backslash, double-quote, and newline.
func escapeLabelValue(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// unescapeLabelValue inverts escapeLabelValue. Unknown escapes are kept
// verbatim (backslash included), matching Prometheus parser behaviour.
func unescapeLabelValue(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case '"':
				b.WriteByte('"')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label(nil), labels...), extra...)
	}
	if len(all) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format. Safe on a nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := append([]*metricEntry(nil), r.entries...)
	r.mu.Unlock()

	var b strings.Builder
	seen := make(map[string]bool)
	for _, e := range entries {
		if !seen[e.name] {
			seen[e.name] = true
			fmt.Fprintf(&b, "# HELP %s %s\n", e.name, e.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, e.kind)
		}
		switch e.kind {
		case kindCounter:
			b.WriteString(e.name)
			writeLabels(&b, e.labels)
			fmt.Fprintf(&b, " %d\n", e.counter.Load())
		case kindGauge:
			b.WriteString(e.name)
			writeLabels(&b, e.labels)
			fmt.Fprintf(&b, " %d\n", e.gauge.Load())
		case kindHistogram:
			counts := e.hist.BucketCounts()
			var cum uint64
			for i, bound := range e.hist.Bounds() {
				cum += counts[i]
				b.WriteString(e.name)
				b.WriteString("_bucket")
				writeLabels(&b, e.labels, L("le", fmt.Sprintf("%d", bound)))
				fmt.Fprintf(&b, " %d\n", cum)
			}
			cum += counts[len(counts)-1]
			b.WriteString(e.name)
			b.WriteString("_bucket")
			writeLabels(&b, e.labels, L("le", "+Inf"))
			fmt.Fprintf(&b, " %d\n", cum)
			fmt.Fprintf(&b, "%s_sum", e.name)
			writeLabels(&b, e.labels)
			fmt.Fprintf(&b, " %d\n", e.hist.Sum())
			fmt.Fprintf(&b, "%s_count", e.name)
			writeLabels(&b, e.labels)
			fmt.Fprintf(&b, " %d\n", e.hist.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// HistogramSnapshot is the JSON form of a histogram's state.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"` // len(bounds)+1, last is overflow
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
}

// MetricSnapshot is the JSON form of one metric series.
type MetricSnapshot struct {
	Name      string             `json:"name"`
	Type      string             `json:"type"`
	Help      string             `json:"help,omitempty"`
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     uint64             `json:"value,omitempty"`
	Gauge     int64              `json:"gauge,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot returns a point-in-time copy of every registered series, sorted
// by (name, label set) for stable output. Nil registry returns nil.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := append([]*metricEntry(nil), r.entries...)
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(entries))
	for _, e := range entries {
		m := MetricSnapshot{Name: e.name, Type: e.kind.String(), Help: e.help}
		if len(e.labels) > 0 {
			m.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				m.Labels[l.Key] = l.Value
			}
		}
		switch e.kind {
		case kindCounter:
			m.Value = e.counter.Load()
		case kindGauge:
			m.Gauge = e.gauge.Load()
		case kindHistogram:
			m.Histogram = &HistogramSnapshot{
				Bounds: e.hist.Bounds(),
				Counts: e.hist.BucketCounts(),
				Sum:    e.hist.Sum(),
				Count:  e.hist.Count(),
			}
		}
		out = append(out, m)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return fmt.Sprint(out[i].Labels) < fmt.Sprint(out[j].Labels)
	})
	return out
}

// WriteJSON writes the snapshot as an indented JSON document
// {"metrics": [...]}. Safe on a nil registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}{Metrics: r.Snapshot()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
