package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Arg is one key/value attached to an event. It is a fixed-size tagged
// union (string or int64) so Event stays allocation-free.
type Arg struct {
	Key   string
	Str   string
	Val   int64
	isStr bool
}

// A builds an integer Arg.
func A(key string, val int64) Arg { return Arg{Key: key, Val: val} }

// AS builds a string Arg.
func AS(key, val string) Arg { return Arg{Key: key, Str: val, isStr: true} }

// maxArgs bounds per-event payload so Event is a flat value type.
const maxArgs = 3

// Event is one Chrome trace-event record. TS and Dur are nanoseconds since
// the tracer's start (the exporter converts to microseconds, which is what
// the trace-event schema uses).
type Event struct {
	Name  string
	Cat   string
	Ph    byte // 'X' complete, 'i' instant, 'M' metadata
	TS    int64
	Dur   int64
	Tid   int64
	NArgs int
	Args  [maxArgs]Arg
}

func fillArgs(ev *Event, args []Arg) {
	n := len(args)
	if n > maxArgs {
		n = maxArgs
	}
	ev.NArgs = n
	copy(ev.Args[:], args[:n])
}

// Span builds a complete ('X') event covering [ts, ts+dur) nanoseconds.
func Span(name, cat string, ts, dur, tid int64, args ...Arg) Event {
	ev := Event{Name: name, Cat: cat, Ph: 'X', TS: ts, Dur: dur, Tid: tid}
	fillArgs(&ev, args)
	return ev
}

// Instant builds an instant ('i') event at ts nanoseconds.
func Instant(name, cat string, ts, tid int64, args ...Arg) Event {
	ev := Event{Name: name, Cat: cat, Ph: 'i', TS: ts, Tid: tid}
	fillArgs(&ev, args)
	return ev
}

// DefaultRingEvents is the per-thread ring capacity. At 4096 events a ring
// holds far more than one GC interval's worth of traps/fault-ins; overflow
// overwrites the oldest event and is counted.
const DefaultRingEvents = 4096

// Ring is a per-thread event buffer. The owning thread writes to it only
// from inside its critical regions (between beginOp and endOp), with no
// locking; it is read only by the collector during stop-the-world
// (Tracer.DrainAll) or by the owner itself at thread exit
// (Tracer.CloseRing), both of which exclude concurrent writes by
// construction. A nil *Ring is the disabled path: every method is a no-op
// behind a single nil check.
type Ring struct {
	tr      *Tracer
	tid     int64
	buf     []Event
	start   int // index of oldest event
	n       int // number of valid events
	dropped uint64
}

// Instant records an instant event on the ring's thread. Must only be
// called by the owning thread inside a critical region.
func (r *Ring) Instant(name, cat string, args ...Arg) {
	if r == nil {
		return
	}
	ev := Event{Name: name, Cat: cat, Ph: 'i', TS: r.tr.Now(), Tid: r.tid}
	fillArgs(&ev, args)
	r.push(ev)
}

func (r *Ring) push(ev Event) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = ev
		r.n++
		return
	}
	// Full: overwrite the oldest event.
	r.buf[r.start] = ev
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

// Tid returns the ring's trace thread id (0 on nil).
func (r *Ring) Tid() int64 {
	if r == nil {
		return 0
	}
	return r.tid
}

// Tracer collects events into a central sink. Rare, non-mutator-path
// events (GC phase spans, stop-the-world latencies, fault firings, offload
// write retries) are Emit()ed directly under a short mutex; mutator-path
// events go through per-thread Rings and reach the sink only at STW or
// thread exit. Holders of the sink mutex never block on anything else, so
// the tracer cannot deadlock against the safepoint barrier. A nil *Tracer
// is the disabled path.
type Tracer struct {
	startWall time.Time

	mu      sync.Mutex
	events  []Event
	rings   []*Ring
	nextTid int64
	dropped uint64
}

// NewTracer creates a tracer whose clock starts now. Tid 0 is reserved for
// VM-global events (GC phases, STW).
func NewTracer() *Tracer {
	t := &Tracer{startWall: time.Now(), nextTid: 1}
	t.events = append(t.events,
		Event{Name: "process_name", Cat: "__metadata", Ph: 'M', Tid: 0, NArgs: 1,
			Args: [maxArgs]Arg{AS("name", "leakpruning-vm")}},
		Event{Name: "thread_name", Cat: "__metadata", Ph: 'M', Tid: 0, NArgs: 1,
			Args: [maxArgs]Arg{AS("name", "gc/stw")}},
	)
	return t
}

// Now returns nanoseconds since the tracer started (0 on nil). Callers on
// the mutator fast path must not reach this when tracing is disabled; the
// nil-safe Ring/Tracer wrappers guarantee that.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.startWall).Nanoseconds()
}

// Emit appends an event to the sink. Safe for concurrent use; no-op on nil.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// NewRing registers a per-thread ring named name and returns it (nil on a
// nil tracer). Tids are assigned sequentially in registration order, which
// keeps traces deterministic for deterministic workloads.
func (t *Tracer) NewRing(name string) *Ring {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tid := t.nextTid
	t.nextTid++
	r := &Ring{tr: t, tid: tid, buf: make([]Event, DefaultRingEvents)}
	t.rings = append(t.rings, r)
	t.events = append(t.events,
		Event{Name: "thread_name", Cat: "__metadata", Ph: 'M', Tid: tid, NArgs: 1,
			Args: [maxArgs]Arg{AS("name", name)}})
	t.mu.Unlock()
	return r
}

func (t *Tracer) drainLocked(r *Ring) {
	for i := 0; i < r.n; i++ {
		t.events = append(t.events, r.buf[(r.start+i)%len(r.buf)])
	}
	t.dropped += r.dropped
	r.start, r.n, r.dropped = 0, 0, 0
}

// DrainAll moves every ring's buffered events into the sink, in ring
// registration (tid) order. Must only be called while all ring owners are
// stopped (STW) — the collector calls it at the start of each collection.
func (t *Tracer) DrainAll() {
	if t == nil {
		return
	}
	t.mu.Lock()
	for _, r := range t.rings {
		t.drainLocked(r)
	}
	t.mu.Unlock()
}

// CloseRing drains r and unregisters it. Called by the owning thread at
// exit, from inside its final critical region.
func (t *Tracer) CloseRing(r *Ring) {
	if t == nil || r == nil {
		return
	}
	t.mu.Lock()
	t.drainLocked(r)
	for i, x := range t.rings {
		if x == r {
			t.rings = append(t.rings[:i], t.rings[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
}

// Len returns the number of events currently in the sink (drained rings
// excluded until DrainAll/CloseRing).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many ring events were overwritten before draining.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `""`
	}
	return string(b)
}

func writeEvent(b *strings.Builder, ev *Event, seq int, normalize bool) {
	b.WriteString(`{"name":`)
	b.WriteString(jsonString(ev.Name))
	b.WriteString(`,"cat":`)
	b.WriteString(jsonString(ev.Cat))
	fmt.Fprintf(b, `,"ph":"%c","pid":1,"tid":%d`, ev.Ph, ev.Tid)
	if ev.Ph != 'M' {
		if normalize {
			// Timestamp normalization for the golden determinism test:
			// ts becomes the event's sequence index, durations collapse
			// to zero, so only event identity/order/payload remain.
			fmt.Fprintf(b, `,"ts":%d`, seq)
			if ev.Ph == 'X' {
				b.WriteString(`,"dur":0`)
			}
		} else {
			// trace-event timestamps are microseconds; keep ns precision
			// in the fraction.
			fmt.Fprintf(b, `,"ts":%d.%03d`, ev.TS/1000, ev.TS%1000)
			if ev.Ph == 'X' {
				fmt.Fprintf(b, `,"dur":%d.%03d`, ev.Dur/1000, ev.Dur%1000)
			}
		}
		if ev.Ph == 'i' {
			b.WriteString(`,"s":"t"`)
		}
	}
	if ev.NArgs > 0 {
		b.WriteString(`,"args":{`)
		for i := 0; i < ev.NArgs; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			a := &ev.Args[i]
			b.WriteString(jsonString(a.Key))
			b.WriteByte(':')
			if a.isStr {
				b.WriteString(jsonString(a.Str))
			} else {
				fmt.Fprintf(b, "%d", a.Val)
			}
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
}

// WriteTrace writes the sink as a Chrome trace-event JSON array (the
// format Perfetto and chrome://tracing load directly). It does NOT drain
// rings first — call DrainAll (or let thread exit / STW do it) before
// exporting. With normalize set, timestamps are replaced by sequence
// indices and durations by zero; two deterministic runs then produce
// byte-identical output. Safe on a nil tracer (writes an empty array).
func (t *Tracer) WriteTrace(w io.Writer, normalize bool) error {
	var events []Event
	if t != nil {
		t.mu.Lock()
		events = append([]Event(nil), t.events...)
		t.mu.Unlock()
	}
	var b strings.Builder
	b.WriteString("[")
	for i := range events {
		if i > 0 {
			b.WriteString(",\n")
		} else {
			b.WriteString("\n")
		}
		writeEvent(&b, &events[i], i, normalize)
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}
