package obs

import (
	"net/http"
	"strings"
)

// Handler returns an http.Handler serving the registry over HTTP with
// content-type negotiation: Prometheus text exposition by default, the
// sorted JSON snapshot when the client asks for JSON (Accept header
// preferring application/json, or ?format=json). It is the exporter
// cmd/leakd mounts at /metrics, so daemons never reimplement export.
//
// A nil *Obs (observability disabled) yields a handler answering 503, so a
// daemon can mount the route unconditionally.
func Handler(o *Obs) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if o == nil {
			http.Error(w, "observability disabled", http.StatusServiceUnavailable)
			return
		}
		if wantsJSON(r) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if err := o.Registry().WriteJSON(w); err != nil {
				// Headers are gone; all we can do is abort the body.
				return
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry().WritePrometheus(w)
	})
}

// wantsJSON reports whether the request prefers the JSON snapshot over
// Prometheus text: an explicit ?format=json wins, otherwise the Accept
// header must name application/json (or application/*) without also
// accepting text/plain earlier in the list.
func wantsJSON(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "json":
		return true
	case "prometheus", "text":
		return false
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case "application/json", "application/*":
			return true
		case "text/plain", "text/*", "*/*":
			return false
		}
	}
	return false
}
