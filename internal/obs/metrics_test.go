package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrentSum checks that concurrent increments from 8
// goroutines sum exactly (run under -race by make race).
func TestCounterConcurrentSum(t *testing.T) {
	cases := []struct {
		name    string
		perG    int
		addSize uint64
	}{
		{"inc-1000", 1000, 0},
		{"inc-4096", 4096, 0},
		{"add-3", 500, 3},
		{"add-17", 200, 17},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			c := reg.NewCounter("lp_test_total", "test counter")
			g := reg.NewGauge("lp_test_gauge", "test gauge")
			const goroutines = 8
			var wg sync.WaitGroup
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < tc.perG; j++ {
						if tc.addSize == 0 {
							c.Inc()
						} else {
							c.Add(tc.addSize)
						}
						g.Add(1)
						g.Add(-1)
					}
				}()
			}
			wg.Wait()
			want := uint64(goroutines * tc.perG)
			if tc.addSize != 0 {
				want *= tc.addSize
			}
			if got := c.Load(); got != want {
				t.Fatalf("counter = %d, want %d", got, want)
			}
			if got := g.Load(); got != 0 {
				t.Fatalf("gauge = %d, want 0", got)
			}
		})
	}
}

// TestHistogramHalfOpenBuckets pins the documented bucket rule: bucket i
// counts bounds[i-1] <= v < bounds[i]; a value equal to a bound lands in
// the bucket above it; values >= the last bound land in the overflow
// bucket.
func TestHistogramHalfOpenBuckets(t *testing.T) {
	cases := []struct {
		name   string
		bounds []uint64
		obs    []uint64
		want   []uint64 // len(bounds)+1
	}{
		{"below-first", []uint64{10, 20}, []uint64{0, 9}, []uint64{2, 0, 0}},
		{"equal-bound-goes-up", []uint64{10, 20}, []uint64{10}, []uint64{0, 1, 0}},
		{"mid-bucket", []uint64{10, 20}, []uint64{11, 19}, []uint64{0, 2, 0}},
		{"last-bound-overflows", []uint64{10, 20}, []uint64{20, 21, 1 << 40}, []uint64{0, 0, 3}},
		{"single-bound", []uint64{8}, []uint64{7, 8, 9}, []uint64{1, 2}},
		{"stale-age-exact", StaleAgeBuckets, []uint64{0, 1, 1, 7, 8, 12}, []uint64{1, 2, 0, 0, 0, 0, 0, 1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			h := reg.NewHistogram("lp_test_hist", "test", tc.bounds)
			var sum uint64
			for _, v := range tc.obs {
				h.Observe(v)
				sum += v
			}
			got := h.BucketCounts()
			if len(got) != len(tc.want) {
				t.Fatalf("bucket count len = %d, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("bucket[%d] = %d, want %d (all %v)", i, got[i], tc.want[i], got)
				}
			}
			if h.Count() != uint64(len(tc.obs)) || h.Sum() != sum {
				t.Fatalf("count/sum = %d/%d, want %d/%d", h.Count(), h.Sum(), len(tc.obs), sum)
			}
		})
	}
}

// TestHistogramConcurrent hammers one histogram from 8 goroutines under
// -race and checks the total count is exact.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("lp_test_hist", "test", DurationBucketsNs)
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			v := seed
			for j := 0; j < perG; j++ {
				v = v*6364136223846793005 + 1442695040888963407
				h.Observe(v % 2e9)
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	if h.Count() != goroutines*perG {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*perG)
	}
	var total uint64
	for _, c := range h.BucketCounts() {
		total += c
	}
	if total != goroutines*perG {
		t.Fatalf("bucket total = %d, want %d", total, goroutines*perG)
	}
}

// TestPrometheusLabelEscaping checks that label values survive an
// escape/unescape round-trip and appear escaped in the exporter output.
func TestPrometheusLabelEscaping(t *testing.T) {
	cases := []struct {
		name, value, escaped string
	}{
		{"plain", "eclipsediff", "eclipsediff"},
		{"quote", `say "hi"`, `say \"hi\"`},
		{"backslash", `a\b`, `a\\b`},
		{"newline", "line1\nline2", `line1\nline2`},
		{"mixed", "q\"\\\n!", `q\"\\\n!`},
		{"unicode", "héllo→", "héllo→"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			esc := escapeLabelValue(tc.value)
			if esc != tc.escaped {
				t.Fatalf("escape(%q) = %q, want %q", tc.value, esc, tc.escaped)
			}
			if got := unescapeLabelValue(esc); got != tc.value {
				t.Fatalf("round-trip(%q) = %q", tc.value, got)
			}
			reg := NewRegistry()
			reg.NewCounter("lp_escape_total", "help", L("program", tc.value)).Inc()
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Fatal(err)
			}
			want := `lp_escape_total{program="` + tc.escaped + `"} 1`
			if !strings.Contains(b.String(), want) {
				t.Fatalf("exporter output %q missing %q", b.String(), want)
			}
		})
	}
}

// TestNilSafety pins the disabled path: every method on nil handles must
// be a no-op rather than a panic.
func TestNilSafety(t *testing.T) {
	var o *Obs
	reg := o.Registry()
	tr := o.Tracer()
	if reg != nil || tr != nil {
		t.Fatal("nil Obs must hand out nil components")
	}
	c := reg.NewCounter("x", "")
	g := reg.NewGauge("x", "")
	h := reg.NewHistogram("x", "", DurationBucketsNs)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(-1)
	h.Observe(42)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 || h.BucketCounts() != nil {
		t.Fatal("nil metrics must read as zero")
	}
	r := tr.NewRing("t")
	if r != nil {
		t.Fatal("nil tracer must hand out nil rings")
	}
	r.Instant("e", "c", A("k", 1))
	tr.Emit(Instant("e", "c", 0, 0))
	tr.DrainAll()
	tr.CloseRing(r)
	if tr.Now() != 0 || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must read as zero")
	}
	var b strings.Builder
	if err := tr.WriteTrace(&b, false); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryDedup checks that re-registering the same (name, labels)
// returns the same underlying metric.
func TestRegistryDedup(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewCounter("lp_x_total", "", L("mode", "prune"))
	b := reg.NewCounter("lp_x_total", "", L("mode", "prune"))
	other := reg.NewCounter("lp_x_total", "", L("mode", "select"))
	if a != b {
		t.Fatal("same series must dedup to one counter")
	}
	if a == other {
		t.Fatal("different label values must be distinct series")
	}
	a.Inc()
	if b.Load() != 1 || other.Load() != 0 {
		t.Fatal("dedup identity broken")
	}
}
