package offload

import (
	"testing"

	"leakpruning/internal/heap"
)

func buildHeap(t *testing.T, limit, disk uint64) (*heap.Heap, heap.ClassID) {
	t.Helper()
	reg := heap.NewRegistry()
	blob := reg.Define("Blob", 0, 1000)
	h := heap.New(reg, limit)
	h.SetDiskLimit(disk)
	return h, blob
}

func TestAfterGCNoopBelowThreshold(t *testing.T) {
	h, blob := buildHeap(t, 100000, 100000)
	r, _ := h.Allocate(blob)
	h.Get(r).SetStale(7)
	c := New(Config{DiskLimit: 100000})
	if moved := c.AfterGC(h); moved != 0 {
		t.Fatalf("moved %d bytes below the threshold", moved)
	}
}

func TestAfterGCMovesStalestFirst(t *testing.T) {
	h, blob := buildHeap(t, 11000, 100000)
	// Ten blobs fill the heap past 90%; staleness 7,6,...
	var refs []heap.Ref
	for i := 0; i < 10; i++ {
		r, err := h.Allocate(blob)
		if err != nil {
			t.Fatal(err)
		}
		h.Get(r).SetStale(uint8(7 - i%6)) // 7,6,5,4,3,2,7,6,5,4
		refs = append(refs, r)
	}
	c := New(Config{DiskLimit: 100000, TargetFraction: 0.5})
	moved := c.AfterGC(h)
	if moved == 0 {
		t.Fatal("nothing moved")
	}
	if f := h.Stats().Fullness(); f > 0.5+0.1 {
		t.Fatalf("fullness after offload %v", f)
	}
	// The stalest objects must be the offloaded ones: every offloaded
	// object's staleness is >= every resident object's staleness.
	minOff, maxRes := uint8(255), uint8(0)
	for _, r := range refs {
		obj := h.Get(r)
		if obj.IsOffloaded() {
			if s := obj.Stale(); s < minOff {
				minOff = s
			}
		} else if s := obj.Stale(); s > maxRes {
			maxRes = s
		}
	}
	if minOff < maxRes {
		t.Fatalf("offloaded staleness %d below resident staleness %d", minOff, maxRes)
	}
	if c.Stats().Rounds != 1 || c.Stats().ObjectsMoved == 0 {
		t.Fatalf("stats %+v", c.Stats())
	}
}

func TestAfterGCRespectsMinStale(t *testing.T) {
	h, blob := buildHeap(t, 11000, 100000)
	for i := 0; i < 10; i++ {
		r, err := h.Allocate(blob)
		if err != nil {
			t.Fatal(err)
		}
		h.Get(r).SetStale(1) // below the bar
	}
	c := New(Config{DiskLimit: 100000})
	if moved := c.AfterGC(h); moved != 0 {
		t.Fatalf("moved %d bytes of insufficiently stale objects", moved)
	}
}

func TestAfterGCStopsAtDiskFull(t *testing.T) {
	h, blob := buildHeap(t, 11000, 1500) // disk holds one blob
	for i := 0; i < 10; i++ {
		r, err := h.Allocate(blob)
		if err != nil {
			t.Fatal(err)
		}
		h.Get(r).SetStale(7)
	}
	c := New(Config{DiskLimit: 1500})
	moved := c.AfterGC(h)
	if moved == 0 {
		t.Fatal("expected one object to move before the disk filled")
	}
	if c.Stats().DiskFullHits == 0 {
		t.Fatal("disk-full rejection not recorded")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := New(Config{DiskLimit: 1})
	cfg := c.Config()
	if cfg.NearlyFullFraction != 0.9 || cfg.TargetFraction != 0.7 || cfg.MinStale != 2 {
		t.Fatalf("defaults %+v", cfg)
	}
}

func TestRecordFault(t *testing.T) {
	c := New(Config{DiskLimit: 1})
	c.RecordFault(123)
	c.RecordFault(7)
	st := c.Stats()
	if st.ObjectsFaults != 2 || st.BytesFaultIn != 130 {
		t.Fatalf("fault stats %+v", st)
	}
}
