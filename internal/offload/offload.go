// Package offload implements the Melt/LeakSurvivor-style leak-tolerance
// baseline the paper compares against (§6, §7): instead of *reclaiming*
// predicted-dead objects, move highly stale objects to disk. The prediction
// does not have to be perfect — a mispredicted object is simply faulted
// back in when the program touches it — but the approach consumes disk
// without bound, and "all will eventually exhaust disk space and crash".
//
// The controller runs after full-heap collections: once the heap is nearly
// full it moves the stalest objects out (staleness level by level, the
// "most stale" prediction that Table 2 attributes to these systems) until
// the heap drops below a comfort threshold or the disk budget is gone.
package offload

import (
	"errors"
	"sync/atomic"
	"time"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/heap"
	"leakpruning/internal/obs"
)

// DefaultDiskFactor sizes the disk budget relative to the heap when no
// explicit limit is configured.
const DefaultDiskFactor = 4

// Config parameterizes the offloader.
type Config struct {
	// DiskLimit is the simulated disk budget in bytes.
	DiskLimit uint64
	// NearlyFullFraction triggers offloading after a collection (default
	// 0.9, matching leak pruning's SELECT threshold for comparability).
	NearlyFullFraction float64
	// TargetFraction is the post-offload heap fullness goal (default 0.7).
	TargetFraction float64
	// MinStale is the minimum staleness an object needs to be moved
	// (default 2, the same bar the pruning candidates use).
	MinStale uint8
}

func (c Config) withDefaults() Config {
	if c.NearlyFullFraction == 0 {
		c.NearlyFullFraction = 0.9
	}
	if c.TargetFraction == 0 {
		c.TargetFraction = 0.7
	}
	if c.MinStale == 0 {
		c.MinStale = 2
	}
	return c
}

// Stats summarizes the offloader's activity.
type Stats struct {
	Rounds        uint64 // post-GC offload passes that moved something
	BytesOffload  uint64 // cumulative bytes moved out
	ObjectsMoved  uint64
	DiskFullHits  uint64 // offload attempts rejected by the disk budget
	BytesFaultIn  uint64 // cumulative bytes moved back by accesses
	ObjectsFaults uint64

	// Degradation counters for simulated disk I/O failures.
	WriteFaults  uint64 // individual failed write attempts
	WriteRetries uint64 // failed writes retried with backoff
	KeptInHeap   uint64 // objects left resident after write retries ran out
	ReadFaults   uint64 // individual failed read attempts
	ReadRetries  uint64 // failed reads retried with backoff
	ReadAborts   uint64 // fault-ins abandoned after read retries ran out
}

// Disk I/O retry policy: a failed read or write is retried with capped
// exponential backoff. The backoff is real (time.Sleep) but microsecond-
// scale, so injected fault storms stay cheap in tests while still modeling
// the retry latency a real runtime would pay.
const (
	maxIOAttempts  = 4
	backoffInitial = time.Microsecond
	backoffCap     = 64 * time.Microsecond
)

// errWriteFailed is the internal sentinel for a write whose retries ran
// out; AfterGC converts it into the keep-in-heap fallback.
var errWriteFailed = errors.New("offload: simulated disk write failed")

// Controller owns the offload policy for one heap. Offload passes run
// inside stop-the-world sections (plain counters); fault-ins run on the
// mutator path where threads interleave, so the read-side counters are
// atomics folded into the Stats snapshot.
type Controller struct {
	cfg   Config
	stats Stats
	inj   *faultinject.Injector

	objectsFaults atomic.Uint64
	bytesFaultIn  atomic.Uint64
	readFaults    atomic.Uint64
	readRetries   atomic.Uint64
	readAborts    atomic.Uint64

	// Observability (nil when disabled; all methods nil-safe).
	obsTrace        *obs.Tracer
	obsWriteRetries *obs.Counter
	obsReadRetries  *obs.Counter
	obsReadAborts   *obs.Counter
	obsKept         *obs.Counter
}

// New creates an offload controller.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// SetFaultInjector arms the OffloadWriteFault / OffloadReadFault injection
// points on this controller's simulated disk.
func (c *Controller) SetFaultInjector(inj *faultinject.Injector) { c.inj = inj }

// SetObs attaches retry/abort counters and trace instants for the
// simulated disk. Write-side events fire inside stop-the-world sections
// and read-side events on the mutator slow path; both use the tracer's
// locked Emit, whose holder never blocks, so neither can deadlock the
// safepoint barrier.
func (c *Controller) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	reg := o.Registry()
	c.obsWriteRetries = reg.NewCounter("lp_offload_write_retries_total", "failed disk writes retried with backoff")
	c.obsReadRetries = reg.NewCounter("lp_offload_read_retries_total", "failed disk reads retried with backoff")
	c.obsReadAborts = reg.NewCounter("lp_offload_read_aborts_total", "fault-ins abandoned after read retries ran out")
	c.obsKept = reg.NewCounter("lp_offload_kept_in_heap_total", "objects left resident after write retries ran out")
	c.obsTrace = o.Tracer()
}

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns activity counters.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.ObjectsFaults = c.objectsFaults.Load()
	s.BytesFaultIn = c.bytesFaultIn.Load()
	s.ReadFaults = c.readFaults.Load()
	s.ReadRetries = c.readRetries.Load()
	s.ReadAborts = c.readAborts.Load()
	return s
}

// AfterGC runs one offload pass if the heap is still nearly full after a
// collection. It moves live objects out stalest-first (level 7 down to
// MinStale) until the heap reaches the target fraction or nothing movable
// remains. It returns the bytes moved. Must run stop-the-world.
func (c *Controller) AfterGC(h *heap.Heap) uint64 {
	st := h.Stats()
	if st.Fullness() <= c.cfg.NearlyFullFraction {
		return 0
	}
	target := uint64(c.cfg.TargetFraction * float64(st.Limit))
	var moved uint64
	diskFull := false
	for level := uint8(heap.MaxStale); level >= c.cfg.MinStale && !diskFull; level-- {
		h.ForEach(func(id heap.ObjectID, obj *heap.Object) {
			if diskFull || obj.IsOffloaded() || obj.Stale() != level {
				return
			}
			if h.Stats().BytesUsed <= target {
				return
			}
			switch err := c.writeOut(h, id); err {
			case nil:
				moved += obj.Size()
				c.stats.ObjectsMoved++
			case heap.ErrDiskFull:
				c.stats.DiskFullHits++
				diskFull = true
			case errWriteFailed:
				// Keep-in-heap fallback: the object stays resident and the
				// pass moves on. Nothing is lost — the next nearly-full
				// collection will try it again.
				c.stats.KeptInHeap++
				c.obsKept.Inc()
			}
		})
		if h.Stats().BytesUsed <= target {
			break
		}
		if level == 0 {
			break
		}
	}
	if moved > 0 {
		c.stats.Rounds++
		c.stats.BytesOffload += moved
	}
	return moved
}

// writeOut performs one object's disk write, retrying injected write
// faults with capped exponential backoff before giving up with
// errWriteFailed. The real Offload call runs only once the simulated
// device stops faulting, so heap and disk accounting never see a partial
// write.
func (c *Controller) writeOut(h *heap.Heap, id heap.ObjectID) error {
	backoff := backoffInitial
	for attempt := 1; ; attempt++ {
		if !c.inj.Should(faultinject.OffloadWriteFault) {
			return h.Offload(id)
		}
		c.stats.WriteFaults++
		if attempt == maxIOAttempts {
			return errWriteFailed
		}
		c.stats.WriteRetries++
		c.obsWriteRetries.Inc()
		if tr := c.obsTrace; tr != nil {
			tr.Emit(obs.Instant("offload.write-retry", "offload", tr.Now(), 0, obs.A("attempt", int64(attempt))))
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > backoffCap {
			backoff = backoffCap
		}
	}
}

// PrepareFaultIn simulates the disk read that precedes a fault-in,
// retrying injected read faults with the same capped backoff as writes.
// It returns the number of attempts consumed and whether the read
// ultimately succeeded; on failure the caller must surface a typed error —
// unlike writes, a failed read has no fallback, because the object's bytes
// exist only on disk.
func (c *Controller) PrepareFaultIn() (attempts int, ok bool) {
	backoff := backoffInitial
	for attempt := 1; ; attempt++ {
		if !c.inj.Should(faultinject.OffloadReadFault) {
			return attempt, true
		}
		c.readFaults.Add(1)
		if attempt == maxIOAttempts {
			c.readAborts.Add(1)
			c.obsReadAborts.Inc()
			return attempt, false
		}
		c.readRetries.Add(1)
		c.obsReadRetries.Inc()
		if tr := c.obsTrace; tr != nil {
			tr.Emit(obs.Instant("offload.read-retry", "offload", tr.Now(), 0, obs.A("attempt", int64(attempt))))
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > backoffCap {
			backoff = backoffCap
		}
	}
}

// RecordFault accounts one fault-in of size bytes.
func (c *Controller) RecordFault(size uint64) {
	c.objectsFaults.Add(1)
	c.bytesFaultIn.Add(size)
}
