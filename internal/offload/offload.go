// Package offload implements the Melt/LeakSurvivor-style leak-tolerance
// baseline the paper compares against (§6, §7): instead of *reclaiming*
// predicted-dead objects, move highly stale objects to disk. The prediction
// does not have to be perfect — a mispredicted object is simply faulted
// back in when the program touches it — but the approach consumes disk
// without bound, and "all will eventually exhaust disk space and crash".
//
// The controller runs after full-heap collections: once the heap is nearly
// full it moves the stalest objects out (staleness level by level, the
// "most stale" prediction that Table 2 attributes to these systems) until
// the heap drops below a comfort threshold or the disk budget is gone.
package offload

import (
	"leakpruning/internal/heap"
)

// DefaultDiskFactor sizes the disk budget relative to the heap when no
// explicit limit is configured.
const DefaultDiskFactor = 4

// Config parameterizes the offloader.
type Config struct {
	// DiskLimit is the simulated disk budget in bytes.
	DiskLimit uint64
	// NearlyFullFraction triggers offloading after a collection (default
	// 0.9, matching leak pruning's SELECT threshold for comparability).
	NearlyFullFraction float64
	// TargetFraction is the post-offload heap fullness goal (default 0.7).
	TargetFraction float64
	// MinStale is the minimum staleness an object needs to be moved
	// (default 2, the same bar the pruning candidates use).
	MinStale uint8
}

func (c Config) withDefaults() Config {
	if c.NearlyFullFraction == 0 {
		c.NearlyFullFraction = 0.9
	}
	if c.TargetFraction == 0 {
		c.TargetFraction = 0.7
	}
	if c.MinStale == 0 {
		c.MinStale = 2
	}
	return c
}

// Stats summarizes the offloader's activity.
type Stats struct {
	Rounds        uint64 // post-GC offload passes that moved something
	BytesOffload  uint64 // cumulative bytes moved out
	ObjectsMoved  uint64
	DiskFullHits  uint64 // offload attempts rejected by the disk budget
	BytesFaultIn  uint64 // cumulative bytes moved back by accesses
	ObjectsFaults uint64
}

// Controller owns the offload policy for one heap. It is driven by the VM
// inside stop-the-world sections; fault-ins are counted through RecordFault.
type Controller struct {
	cfg   Config
	stats Stats
}

// New creates an offload controller.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// AfterGC runs one offload pass if the heap is still nearly full after a
// collection. It moves live objects out stalest-first (level 7 down to
// MinStale) until the heap reaches the target fraction or nothing movable
// remains. It returns the bytes moved. Must run stop-the-world.
func (c *Controller) AfterGC(h *heap.Heap) uint64 {
	st := h.Stats()
	if st.Fullness() <= c.cfg.NearlyFullFraction {
		return 0
	}
	target := uint64(c.cfg.TargetFraction * float64(st.Limit))
	var moved uint64
	diskFull := false
	for level := uint8(heap.MaxStale); level >= c.cfg.MinStale && !diskFull; level-- {
		h.ForEach(func(id heap.ObjectID, obj *heap.Object) {
			if diskFull || obj.IsOffloaded() || obj.Stale() != level {
				return
			}
			if h.Stats().BytesUsed <= target {
				return
			}
			switch err := h.Offload(id); err {
			case nil:
				moved += obj.Size()
				c.stats.ObjectsMoved++
			case heap.ErrDiskFull:
				c.stats.DiskFullHits++
				diskFull = true
			}
		})
		if h.Stats().BytesUsed <= target {
			break
		}
		if level == 0 {
			break
		}
	}
	if moved > 0 {
		c.stats.Rounds++
		c.stats.BytesOffload += moved
	}
	return moved
}

// RecordFault accounts one fault-in of size bytes.
func (c *Controller) RecordFault(size uint64) {
	c.stats.ObjectsFaults++
	c.stats.BytesFaultIn += size
}
