package trace

import (
	"bytes"
	"errors"
	"testing"
)

// sampleTraceBytes records a representative sequence touching every event
// kind and returns the serialized trace.
func sampleTraceBytes(t testing.TB) []byte {
	t.Helper()
	rec := NewRecorder()
	rec.SetMeta(Meta{
		Program: "sample", Policy: "default", WorldLock: "safepoint",
		MarkMode: "stw", BarrierVariant: "conditional",
		HeapLimit: 1 << 20, Flags: FlagHashLiveSet,
	})
	rec.SetFingerprint(0xdeadbeef)
	rec.DefineClass(1, "Node", 2, 16)
	rec.DefineClass(2, "Blob", 0, 256)
	rec.DefineClass(7, "out-of-order", 0, 0) // not ID 3: ignored
	rec.AddGlobal(0)
	rec.AddGlobal(2)
	s1 := rec.NewStream("main")
	s2 := rec.NewStream("worker")

	s1.Push(4)
	s1.Alloc(1, 5)
	s1.AllocShaped(2, 6, 0, 512)
	s1.Store(5, 0, 6)
	s1.Load(5, 0)
	s1.StoreGlobal(0, 5)
	s1.LoadGlobal(2)
	s1.FrameSet(0, 3, 6)
	s1.Iter(1)
	s2.Alloc(1, 9)
	s2.AllocFail(2)
	s2.AllocFailShaped(1, 8, 0)
	rec.DrainAll()
	rec.Free(6)
	rec.Free(5)
	rec.GCCycle(GCInfo{Index: 1, Mode: 2, State: 3, BytesLive: 4096,
		Candidates: 7, Pruned: 3, Degraded: true, LiveHash: 0xabcdef})
	s1.Pop()
	s1.Close()
	s2.Close()

	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// decodeAll decodes every event, failing the test on a decode error.
func decodeAll(t *testing.T, tr *Trace) []Event {
	t.Helper()
	it := tr.Iter()
	var out []Event
	var ev Event
	for {
		ok, err := it.Next(&ev)
		if err != nil {
			t.Fatalf("decode after %d events: %v", len(out), err)
		}
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	tr, err := ReadTrace(sampleTraceBytes(t))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	want := Meta{
		Program: "sample", Policy: "default", WorldLock: "safepoint",
		MarkMode: "stw", BarrierVariant: "conditional",
		HeapLimit: 1 << 20, Flags: FlagHashLiveSet, Fingerprint: 0xdeadbeef,
	}
	if tr.Meta != want {
		t.Errorf("meta = %+v, want %+v", tr.Meta, want)
	}
	wantClasses := []ClassDef{{"Node", 2, 16}, {"Blob", 0, 256}}
	if len(tr.Classes) != len(wantClasses) {
		t.Fatalf("classes = %v, want %v", tr.Classes, wantClasses)
	}
	for i, c := range wantClasses {
		if tr.Classes[i] != c {
			t.Errorf("class %d = %+v, want %+v", i+1, tr.Classes[i], c)
		}
	}
	if tr.Globals != 3 {
		t.Errorf("globals = %d, want 3", tr.Globals)
	}
	if len(tr.Threads) != 2 || tr.Threads[0] != "main" || tr.Threads[1] != "worker" {
		t.Errorf("threads = %v, want [main worker]", tr.Threads)
	}
}

func TestEventRoundTrip(t *testing.T) {
	tr, err := ReadTrace(sampleTraceBytes(t))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	evs := decodeAll(t, tr)

	// File order: DrainAll flushes stream 1, then 2 (gc buffer empty);
	// GCCycle flushes stream 0; each Close flushes its own stream.
	type w struct {
		kind          Kind
		stream        int
		class         uint32
		obj, val      uint64
		slot, arg     int
		refS, scalarB int
	}
	d := -1 // "class default" shape
	want := []w{
		{EvPush, 1, 0, 0, 0, 0, 4, d, d},
		{EvAlloc, 1, 1, 5, 0, 0, 0, d, d},
		{EvAllocShaped, 1, 2, 6, 0, 0, 0, 0, 512},
		{EvStore, 1, 0, 5, 6, 0, 0, d, d},
		{EvLoad, 1, 0, 5, 0, 0, 0, d, d},
		{EvStoreGlobal, 1, 0, 0, 5, 0, 0, d, d},
		{EvLoadGlobal, 1, 0, 0, 0, 0, 2, d, d},
		{EvFrameSet, 1, 0, 0, 6, 3, 0, d, d},
		{EvIter, 1, 0, 0, 0, 0, 1, d, d},
		{EvAlloc, 2, 1, 9, 0, 0, 0, d, d},
		{EvAllocFail, 2, 2, 0, 0, 0, 0, d, d},
		{EvAllocFailShaped, 2, 1, 0, 0, 0, 0, 8, 0},
		{EvFree, 0, 0, 6, 0, 0, 0, d, d},
		{EvFree, 0, 0, 5, 0, 0, 0, d, d},
		{EvGCCycle, 0, 0, 0, 0, 0, 0, d, d},
		{EvPop, 1, 0, 0, 0, 0, 0, d, d},
		{EvThreadEnd, 1, 0, 0, 0, 0, 0, d, d},
		{EvThreadEnd, 2, 0, 0, 0, 0, 0, d, d},
	}
	if len(evs) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(evs), len(want))
	}
	for i, ww := range want {
		ev := evs[i]
		got := w{ev.Kind, ev.Stream, ev.Class, ev.Obj, ev.Val, ev.Slot, ev.Arg, ev.RefSlots, ev.ScalarBytes}
		if got != ww {
			t.Errorf("event %d (%s): %+v, want %+v", i, ev.Kind, got, ww)
		}
	}
	gc := evs[14].GC
	wantGC := GCInfo{Index: 1, Mode: 2, State: 3, BytesLive: 4096,
		Candidates: 7, Pruned: 3, Degraded: true, LiveHash: 0xabcdef}
	if gc != wantGC {
		t.Errorf("gc cycle = %+v, want %+v", gc, wantGC)
	}
}

func TestStats(t *testing.T) {
	tr, err := ReadTrace(sampleTraceBytes(t))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Events != 18 {
		t.Errorf("events = %d, want 18", st.Events)
	}
	if len(st.Cycles) != 1 || st.Cycles[0].LiveHash != 0xabcdef {
		t.Errorf("cycles = %+v, want one with LiveHash abcdef", st.Cycles)
	}
	if st.MaxIter != 1 {
		t.Errorf("max iter = %d, want 1", st.MaxIter)
	}
	if st.ByKind[EvAlloc] != 2 || st.ByKind[EvFree] != 2 || st.ByKind[EvThreadEnd] != 2 {
		t.Errorf("kind counts off: %v", st.ByKind)
	}
}

// TestEncodeDeterminism: the same event sequence encodes to identical bytes
// on every run (no map-order or clock dependence outside EvIter/EvGCCycle
// timing deltas, which this sequence avoids).
func TestEncodeDeterminism(t *testing.T) {
	build := func() []byte {
		rec := NewRecorder()
		rec.SetMeta(Meta{Program: "det", HeapLimit: 4096})
		rec.DefineClass(1, "A", 1, 8)
		s := rec.NewStream("main")
		s.Alloc(1, 100)
		s.Store(100, 0, 0)
		s.Load(100, 0)
		rec.DrainAll()
		rec.Free(100)
		s.Close()
		var buf bytes.Buffer
		rec.WriteTo(&buf)
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical sequences encoded differently:\n%x\n%x", a, b)
	}
}

// assertTyped fails unless err is one of the package's typed decode errors.
func assertTyped(t *testing.T, err error) {
	t.Helper()
	var ce *CorruptError
	var te *TruncatedError
	if errors.Is(err, ErrBadMagic) || errors.Is(err, ErrBadVersion) ||
		errors.As(err, &ce) || errors.As(err, &te) {
		return
	}
	t.Fatalf("untyped decode error: %v", err)
}

// emptyHeader serializes a trace with one thread and no events, as a base
// for appending crafted bodies.
func emptyHeader(t *testing.T) []byte {
	t.Helper()
	rec := NewRecorder()
	rec.SetMeta(Meta{Program: "crafted"})
	rec.DefineClass(1, "A", 1, 8)
	rec.NewStream("main")
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// block appends a crafted [stream][len][payload] block.
func block(h []byte, stream uint64, payload ...byte) []byte {
	out := append([]byte(nil), h...)
	out = appendUvarint(out, stream)
	out = appendUvarint(out, uint64(len(payload)))
	return append(out, payload...)
}

func TestCorruptInputsTyped(t *testing.T) {
	h := emptyHeader(t)
	longVarint := bytes.Repeat([]byte{0xff}, 10)
	cases := []struct {
		name string
		data []byte
		want any // pointer to target error type, or sentinel error
	}{
		{"empty", nil, ErrBadMagic},
		{"not-a-trace", []byte("NOTATRACEFILE"), ErrBadMagic},
		{"bad-version", append(append([]byte(nil), magic[:]...), 99), ErrBadVersion},
		{"header-cut", h[:len(magic)+3], &TruncatedError{}},
		{"huge-string", appendUvarint(append(append([]byte(nil), magic[:]...), 1), 1<<20), &CorruptError{}},
		{"varint-overflow", append(append(append([]byte(nil), magic[:]...), 1), longVarint...), &CorruptError{}},
		{"block-stream-range", block(h, 5, byte(EvPop)), &CorruptError{}},
		{"block-len-overrun", append(append(append([]byte(nil), h...), 1, 10), byte(EvPop)), &TruncatedError{}},
		{"empty-block", append(append([]byte(nil), h...), 1, 0), &CorruptError{}},
		{"zero-kind", block(h, 1, 0), &CorruptError{}},
		{"unknown-kind", block(h, 1, byte(kindMax)), &CorruptError{}},
		{"free-on-mutator", block(h, 1, byte(EvFree), 0), &CorruptError{}},
		{"gc-on-mutator", block(h, 1, byte(EvGCCycle), 0), &CorruptError{}},
		{"event-past-block", block(h, 1, byte(EvAlloc)), &CorruptError{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := ReadTrace(tc.data)
			if err == nil {
				_, err = tr.Validate()
			}
			if err == nil {
				t.Fatal("corrupt input decoded cleanly")
			}
			assertTyped(t, err)
			switch want := tc.want.(type) {
			case *TruncatedError:
				var te *TruncatedError
				if !errors.As(err, &te) {
					t.Errorf("err = %v (%T), want TruncatedError", err, err)
				}
			case *CorruptError:
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Errorf("err = %v (%T), want CorruptError", err, err)
				}
			case error:
				if !errors.Is(err, want) {
					t.Errorf("err = %v, want %v", err, want)
				}
			}
		})
	}
}

// TestTruncationSweep: every prefix of a valid trace either decodes cleanly
// (a cut at a block boundary just loses the tail) or returns a typed
// error — never a panic.
func TestTruncationSweep(t *testing.T) {
	data := sampleTraceBytes(t)
	for i := 0; i < len(data); i++ {
		tr, err := ReadTrace(data[:i])
		if err == nil {
			_, err = tr.Validate()
		}
		if err != nil {
			assertTyped(t, err)
		}
	}
}

// TestNilSafety: a nil recorder/stream is a no-op on every method — the
// contract that keeps the VM's record sites unconditional.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.SetMeta(Meta{})
	r.SetFingerprint(1)
	r.DefineClass(1, "A", 0, 0)
	r.AddGlobal(0)
	r.DrainAll()
	r.Free(1)
	r.GCCycle(GCInfo{})
	if n, err := r.WriteTo(&bytes.Buffer{}); n != 0 || err != nil {
		t.Errorf("nil WriteTo = (%d, %v)", n, err)
	}
	s := r.NewStream("x")
	if s != nil {
		t.Fatalf("nil recorder returned non-nil stream")
	}
	s.Alloc(1, 1)
	s.AllocShaped(1, 1, 0, 0)
	s.AllocFail(1)
	s.AllocFailShaped(1, 0, 0)
	s.Load(1, 0)
	s.Store(1, 0, 0)
	s.LoadGlobal(0)
	s.StoreGlobal(0, 0)
	s.Push(1)
	s.Pop()
	s.FrameSet(0, 0, 0)
	s.Iter(0)
	s.Close()
}
