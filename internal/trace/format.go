// Package trace implements a compact binary allocation-trace format for
// the simulated runtime: every mutator operation (alloc, load, store,
// global and frame traffic), every collector free, and every GC cycle's
// outcome, recorded per thread and replayable deterministically (see
// internal/harness's Replayer).
//
// The format is modelled on event-sourced GC trace schemas (goat-style
// alloc/free/GC-end event streams) but carries enough to *re-execute* the
// mutator, not just account for it: a self-describing header (program
// metadata, options fingerprint, class table, global count, thread table)
// followed by length-prefixed per-stream blocks, flushed at every
// stop-the-world drain, in which events are varint-encoded with per-stream
// delta compression (allocation IDs and load/store sources are zigzag
// deltas against the previous value on the same stream, since the heap
// recycles object IDs LIFO and IDs are therefore not monotonic).
//
// Stream 0 is the collector's stream (frees and GC-cycle records); streams
// 1..N are mutator threads in creation order.
package trace

import (
	"errors"
	"fmt"
)

// magic identifies a leak-pruning trace file, version-tagged separately.
var magic = [8]byte{'L', 'P', 'T', 'R', 'A', 'C', 'E', '1'}

// Version is the current format version.
const Version = 1

// Kind identifies an event type on the wire (one byte).
type Kind uint8

const (
	// kindInvalid guards against zero-filled corruption: 0 is not a kind.
	kindInvalid Kind = iota
	// EvAlloc: a successful allocation with the class's default shape.
	// Payload: class uvarint, zigzag delta of the object ID vs the stream's
	// previous allocation.
	EvAlloc
	// EvAllocShaped: EvAlloc plus explicit refSlots and scalarBytes
	// (allocations using WithRefSlots/WithScalarBytes).
	EvAllocShaped
	// EvAllocFail: an allocation that exhausted memory (the op that threw
	// OutOfMemoryError). Payload: class uvarint.
	EvAllocFail
	// EvAllocFailShaped: EvAllocFail with explicit shape.
	EvAllocFailShaped
	// EvLoad: a reference load. Payload: zigzag delta of the source object
	// ID vs the stream's previous load/store source, slot uvarint.
	EvLoad
	// EvStore: a reference store. Payload: source delta (as EvLoad), slot
	// uvarint, value object ID uvarint (0 = null).
	EvStore
	// EvLoadGlobal: a global read. Payload: global index uvarint.
	EvLoadGlobal
	// EvStoreGlobal: a global write. Payload: global index uvarint, value
	// object ID uvarint (0 = null).
	EvStoreGlobal
	// EvPush: a frame push. Payload: slot count uvarint.
	EvPush
	// EvPop: a frame pop. No payload.
	EvPop
	// EvFrameSet: a frame-slot write. Payload: depth-from-top uvarint, slot
	// uvarint, value object ID uvarint (0 = null).
	EvFrameSet
	// EvIter: an iteration boundary mark. Payload: iteration number
	// uvarint, nanoseconds since the stream's previous mark uvarint (the
	// replayer's pacing clock).
	EvIter
	// EvThreadEnd: the thread exited. No payload.
	EvThreadEnd
	// EvFree: the collector freed an object (stream 0 only). Payload:
	// zigzag delta of the object ID vs the stream's previous free.
	EvFree
	// EvGCCycle: a full-heap collection completed (stream 0 only).
	// Payload: index, mode, state, bytesLive, candidates, pruned, flags
	// (bit 0 = degraded), liveHash, nanoseconds since the previous cycle —
	// all uvarint. The replay verifier compares these against the replayed
	// run's cycles.
	EvGCCycle

	kindMax
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case EvAlloc:
		return "alloc"
	case EvAllocShaped:
		return "alloc-shaped"
	case EvAllocFail:
		return "alloc-fail"
	case EvAllocFailShaped:
		return "alloc-fail-shaped"
	case EvLoad:
		return "load"
	case EvStore:
		return "store"
	case EvLoadGlobal:
		return "load-global"
	case EvStoreGlobal:
		return "store-global"
	case EvPush:
		return "push"
	case EvPop:
		return "pop"
	case EvFrameSet:
		return "frame-set"
	case EvIter:
		return "iter"
	case EvThreadEnd:
		return "thread-end"
	case EvFree:
		return "free"
	case EvGCCycle:
		return "gc-cycle"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Meta is the run configuration stamped into the header: enough to replay
// the trace under the recorded options and to warn when it is replayed
// under different ones.
type Meta struct {
	Program        string
	Policy         string
	WorldLock      string
	MarkMode       string
	BarrierVariant string
	ForceState     string
	HeapLimit      uint64
	Flags          uint64
	// Fingerprint hashes the full effective vm.Options the recording ran
	// under; a replay under different options still works (that is the
	// point of cross-policy replay) but can no longer promise byte-equal
	// GC cycles.
	Fingerprint uint64
}

// Meta.Flags bits.
const (
	FlagHashLiveSet uint64 = 1 << iota
	FlagGenerational
	FlagFullHeapOnly
	FlagBarriersOff
	FlagLazyBarriers
)

// ClassDef is one class-table row; row i describes class ID i+1 (the
// registry reserves ID 0).
type ClassDef struct {
	Name        string
	RefSlots    int
	ScalarBytes int
}

// GCInfo is the payload of an EvGCCycle event.
type GCInfo struct {
	Index      uint64
	Mode       uint8
	State      uint8
	BytesLive  uint64
	Candidates int
	Pruned     int
	Degraded   bool
	LiveHash   uint64
}

// Event is one decoded trace event. The iterator reuses a single Event
// value across Next calls; copy it if it must outlive the call.
type Event struct {
	Kind   Kind
	Stream int // 0 = collector stream; 1..N = mutator threads

	Class uint32 // alloc / alloc-fail
	Obj   uint64 // alloc id, load/store source id, free id
	Val   uint64 // store / store-global / frame-set value id (0 = null)
	Slot  int    // load / store / frame-set slot
	Arg   int    // push slot count, frame-set depth, global index, iteration
	DT    uint64 // iter / gc-cycle: nanoseconds since the previous mark

	// RefSlots and ScalarBytes carry a shaped allocation's override
	// (-1 on other events, meaning "class default").
	RefSlots    int
	ScalarBytes int

	GC GCInfo // gc-cycle only
}

// Typed decode errors. Decoding never panics on hostile input: every
// malformed byte sequence maps to one of these.
var (
	// ErrBadMagic: the input does not start with a trace header.
	ErrBadMagic = errors.New("trace: bad magic (not a trace file)")
	// ErrBadVersion: the trace was written by an unknown format version.
	ErrBadVersion = errors.New("trace: unsupported format version")
)

// CorruptError reports structurally invalid trace bytes.
type CorruptError struct {
	Offset int
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("trace: corrupt at offset %d: %s", e.Offset, e.Reason)
}

// TruncatedError reports a trace that ends mid-structure.
type TruncatedError struct {
	Offset int
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("trace: truncated at offset %d", e.Offset)
}

// Decode bounds, chosen far above anything the recorder emits so hostile
// lengths fail fast without allocating.
const (
	maxStringLen = 1 << 16
	maxTableLen  = 1 << 20
	maxIntValue  = 1 << 31
)

// appendUvarint appends v in LEB128.
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// appendZigzag appends v zigzag-mapped to a uvarint.
func appendZigzag(b []byte, v int64) []byte {
	return appendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// readUvarint decodes a LEB128 uvarint from b at off, returning the value
// and the offset past it.
func readUvarint(b []byte, off int) (uint64, int, error) {
	var v uint64
	for i := 0; i < 10; i++ {
		if off+i >= len(b) {
			return 0, 0, &TruncatedError{Offset: len(b)}
		}
		c := b[off+i]
		if c < 0x80 {
			if i == 9 && c > 1 {
				return 0, 0, &CorruptError{Offset: off, Reason: "uvarint overflows 64 bits"}
			}
			return v | uint64(c)<<(7*i), off + i + 1, nil
		}
		v |= uint64(c&0x7f) << (7 * i)
	}
	return 0, 0, &CorruptError{Offset: off, Reason: "uvarint longer than 10 bytes"}
}

// readZigzag decodes a zigzag-mapped varint.
func readZigzag(b []byte, off int) (int64, int, error) {
	u, off, err := readUvarint(b, off)
	if err != nil {
		return 0, 0, err
	}
	return int64(u>>1) ^ -int64(u&1), off, nil
}

// readString decodes a length-prefixed string with a sanity bound.
func readString(b []byte, off int) (string, int, error) {
	n, off, err := readUvarint(b, off)
	if err != nil {
		return "", 0, err
	}
	if n > maxStringLen {
		return "", 0, &CorruptError{Offset: off, Reason: fmt.Sprintf("string length %d exceeds bound", n)}
	}
	if off+int(n) > len(b) {
		return "", 0, &TruncatedError{Offset: len(b)}
	}
	return string(b[off : off+int(n)]), off + int(n), nil
}

// readInt decodes a uvarint that must fit a non-negative int.
func readInt(b []byte, off int) (int, int, error) {
	u, off, err := readUvarint(b, off)
	if err != nil {
		return 0, 0, err
	}
	if u > maxIntValue {
		return 0, 0, &CorruptError{Offset: off, Reason: fmt.Sprintf("value %d exceeds int bound", u)}
	}
	return int(u), off, nil
}
