package trace

import (
	"fmt"
)

// Trace is a parsed trace: the decoded header plus the raw event body.
// Events are decoded on demand through Iter, so multiple replay clones can
// walk the same Trace concurrently, each with its own iterator.
type Trace struct {
	Meta    Meta
	Classes []ClassDef // row i describes class ID i+1
	Globals int
	Threads []string // stream IDs 1..len(Threads), in creation order

	body    []byte
	bodyOff int // offset of body[0] in the original input, for error offsets
}

// ReadTrace parses the header of a serialized trace and validates its
// structure. The event body is decoded lazily by Iter; use Validate to
// decode it all eagerly.
func ReadTrace(data []byte) (*Trace, error) {
	if len(data) < len(magic) {
		return nil, ErrBadMagic
	}
	for i, c := range magic {
		if data[i] != c {
			return nil, ErrBadMagic
		}
	}
	off := len(magic)
	version, off, err := readUvarint(data, off)
	if err != nil {
		return nil, err
	}
	if version != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	tr := &Trace{}
	strs := []*string{
		&tr.Meta.Program, &tr.Meta.Policy, &tr.Meta.WorldLock,
		&tr.Meta.MarkMode, &tr.Meta.BarrierVariant, &tr.Meta.ForceState,
	}
	for _, p := range strs {
		if *p, off, err = readString(data, off); err != nil {
			return nil, err
		}
	}
	if tr.Meta.HeapLimit, off, err = readUvarint(data, off); err != nil {
		return nil, err
	}
	if tr.Meta.Flags, off, err = readUvarint(data, off); err != nil {
		return nil, err
	}
	if tr.Meta.Fingerprint, off, err = readUvarint(data, off); err != nil {
		return nil, err
	}

	nClasses, off, err := readUvarint(data, off)
	if err != nil {
		return nil, err
	}
	if nClasses > maxTableLen {
		return nil, &CorruptError{Offset: off, Reason: fmt.Sprintf("class table length %d exceeds bound", nClasses)}
	}
	tr.Classes = make([]ClassDef, nClasses)
	for i := range tr.Classes {
		c := &tr.Classes[i]
		if c.Name, off, err = readString(data, off); err != nil {
			return nil, err
		}
		if c.RefSlots, off, err = readInt(data, off); err != nil {
			return nil, err
		}
		if c.ScalarBytes, off, err = readInt(data, off); err != nil {
			return nil, err
		}
	}
	if tr.Globals, off, err = readInt(data, off); err != nil {
		return nil, err
	}
	nThreads, off, err := readUvarint(data, off)
	if err != nil {
		return nil, err
	}
	if nThreads > maxTableLen {
		return nil, &CorruptError{Offset: off, Reason: fmt.Sprintf("thread table length %d exceeds bound", nThreads)}
	}
	tr.Threads = make([]string, nThreads)
	for i := range tr.Threads {
		if tr.Threads[i], off, err = readString(data, off); err != nil {
			return nil, err
		}
	}
	tr.body = data[off:]
	tr.bodyOff = off
	return tr, nil
}

// Validate decodes every event in the body, returning the event count or
// the first decode error. It is the structural check tracetool's verify
// and the fuzz target run.
func (tr *Trace) Validate() (int, error) {
	it := tr.Iter()
	var ev Event
	n := 0
	for {
		ok, err := it.Next(&ev)
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// streamState carries a stream's delta-decode state across blocks.
type streamState struct {
	prevAlloc uint64
	lastRef   uint64
	lastFree  uint64
}

// Iter walks a trace's events in file order (the order blocks were
// drained, which interleaves streams the way the recorded run did). Each
// iterator is independent; a Trace may be iterated concurrently.
type Iter struct {
	tr  *Trace
	off int // position in tr.body

	cur    []byte // current block payload
	curOff int    // position within cur
	curAbs int    // absolute offset of cur[0] for error reporting
	stream int    // current block's stream ID

	states []streamState // index = stream ID (0..len(Threads))
}

// Iter returns a fresh iterator over the trace body.
func (tr *Trace) Iter() *Iter {
	return &Iter{tr: tr, states: make([]streamState, len(tr.Threads)+1)}
}

// Next decodes the next event into ev, returning false at a clean end of
// trace. ev is fully overwritten on success.
func (it *Iter) Next(ev *Event) (bool, error) {
	for it.curOff >= len(it.cur) {
		if it.off >= len(it.tr.body) {
			return false, nil
		}
		if err := it.nextBlock(); err != nil {
			return false, err
		}
	}
	return true, it.decodeEvent(ev)
}

// nextBlock advances to the next non-empty block.
func (it *Iter) nextBlock() error {
	b, off := it.tr.body, it.off
	id, off, err := readUvarint(b, off)
	if err != nil {
		return it.rebase(err)
	}
	if id > uint64(len(it.tr.Threads)) {
		return &CorruptError{Offset: it.tr.bodyOff + it.off, Reason: fmt.Sprintf("block stream %d out of range (%d threads)", id, len(it.tr.Threads))}
	}
	n, off, err := readUvarint(b, off)
	if err != nil {
		return it.rebase(err)
	}
	if n == 0 {
		return &CorruptError{Offset: it.tr.bodyOff + it.off, Reason: "empty block"}
	}
	if uint64(len(b)-off) < n {
		return &TruncatedError{Offset: it.tr.bodyOff + len(b)}
	}
	it.stream = int(id)
	it.cur = b[off : off+int(n)]
	it.curOff = 0
	it.curAbs = it.tr.bodyOff + off
	it.off = off + int(n)
	return nil
}

// rebase shifts a body-relative decode error to an absolute input offset.
func (it *Iter) rebase(err error) error {
	switch e := err.(type) {
	case *CorruptError:
		e.Offset += it.tr.bodyOff
	case *TruncatedError:
		e.Offset += it.tr.bodyOff
	}
	return err
}

// rebaseBlock shifts a block-relative decode error to an absolute offset.
func (it *Iter) rebaseBlock(err error) error {
	switch e := err.(type) {
	case *CorruptError:
		e.Offset += it.curAbs
	case *TruncatedError:
		// A uvarint running off the end of a block payload means the block
		// length lied — corrupt, not truncated input.
		return &CorruptError{Offset: it.curAbs + e.Offset, Reason: "event runs past block end"}
	}
	return err
}

// decodeEvent decodes one event from the current block.
func (it *Iter) decodeEvent(ev *Event) error {
	b, off := it.cur, it.curOff
	st := &it.states[it.stream]
	k := Kind(b[off])
	off++
	*ev = Event{Kind: k, Stream: it.stream, RefSlots: -1, ScalarBytes: -1}
	var err error
	var u uint64
	var d int64
	switch k {
	case EvAlloc, EvAllocShaped:
		if u, off, err = readUvarint(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		ev.Class = uint32(u)
		if d, off, err = readZigzag(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		ev.Obj = uint64(int64(st.prevAlloc) + d)
		st.prevAlloc = ev.Obj
		st.lastRef = ev.Obj
		if k == EvAllocShaped {
			if ev.RefSlots, off, err = readInt(b, off); err != nil {
				return it.rebaseBlock(err)
			}
			if ev.ScalarBytes, off, err = readInt(b, off); err != nil {
				return it.rebaseBlock(err)
			}
		}
	case EvAllocFail, EvAllocFailShaped:
		if u, off, err = readUvarint(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		ev.Class = uint32(u)
		if k == EvAllocFailShaped {
			if ev.RefSlots, off, err = readInt(b, off); err != nil {
				return it.rebaseBlock(err)
			}
			if ev.ScalarBytes, off, err = readInt(b, off); err != nil {
				return it.rebaseBlock(err)
			}
		}
	case EvLoad, EvStore:
		if d, off, err = readZigzag(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		ev.Obj = uint64(int64(st.lastRef) + d)
		st.lastRef = ev.Obj
		if ev.Slot, off, err = readInt(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		if k == EvStore {
			if ev.Val, off, err = readUvarint(b, off); err != nil {
				return it.rebaseBlock(err)
			}
		}
	case EvLoadGlobal, EvStoreGlobal:
		if ev.Arg, off, err = readInt(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		if k == EvStoreGlobal {
			if ev.Val, off, err = readUvarint(b, off); err != nil {
				return it.rebaseBlock(err)
			}
		}
	case EvPush:
		if ev.Arg, off, err = readInt(b, off); err != nil {
			return it.rebaseBlock(err)
		}
	case EvPop, EvThreadEnd:
		// no payload
	case EvFrameSet:
		if ev.Arg, off, err = readInt(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		if ev.Slot, off, err = readInt(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		if ev.Val, off, err = readUvarint(b, off); err != nil {
			return it.rebaseBlock(err)
		}
	case EvIter:
		if ev.Arg, off, err = readInt(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		if ev.DT, off, err = readUvarint(b, off); err != nil {
			return it.rebaseBlock(err)
		}
	case EvFree:
		if it.stream != 0 {
			return &CorruptError{Offset: it.curAbs + it.curOff, Reason: "free event on a mutator stream"}
		}
		if d, off, err = readZigzag(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		ev.Obj = uint64(int64(st.lastFree) + d)
		st.lastFree = ev.Obj
	case EvGCCycle:
		if it.stream != 0 {
			return &CorruptError{Offset: it.curAbs + it.curOff, Reason: "gc-cycle event on a mutator stream"}
		}
		if ev.GC.Index, off, err = readUvarint(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		if u, off, err = readUvarint(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		ev.GC.Mode = uint8(u)
		if u, off, err = readUvarint(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		ev.GC.State = uint8(u)
		if ev.GC.BytesLive, off, err = readUvarint(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		if ev.GC.Candidates, off, err = readInt(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		if ev.GC.Pruned, off, err = readInt(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		if u, off, err = readUvarint(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		ev.GC.Degraded = u&1 != 0
		if ev.GC.LiveHash, off, err = readUvarint(b, off); err != nil {
			return it.rebaseBlock(err)
		}
		if ev.DT, off, err = readUvarint(b, off); err != nil {
			return it.rebaseBlock(err)
		}
	default:
		return &CorruptError{Offset: it.curAbs + it.curOff, Reason: fmt.Sprintf("unknown event kind %d", uint8(k))}
	}
	it.curOff = off
	return nil
}

// Stat summarizes a trace for tracetool's stat subcommand.
type Stat struct {
	Events   int
	ByKind   [kindMax]int
	Cycles   []GCInfo
	MaxIter  int
	Bytes    int
	PerEvent float64
}

// Stats decodes the whole trace and returns summary counts; decode errors
// surface as from Validate.
func (tr *Trace) Stats() (Stat, error) {
	st := Stat{Bytes: tr.bodyOff + len(tr.body)}
	it := tr.Iter()
	var ev Event
	for {
		ok, err := it.Next(&ev)
		if err != nil {
			return st, err
		}
		if !ok {
			break
		}
		st.Events++
		st.ByKind[ev.Kind]++
		switch ev.Kind {
		case EvGCCycle:
			st.Cycles = append(st.Cycles, ev.GC)
		case EvIter:
			if ev.Arg > st.MaxIter {
				st.MaxIter = ev.Arg
			}
		}
	}
	if st.Events > 0 {
		st.PerEvent = float64(st.Bytes) / float64(st.Events)
	}
	return st, nil
}
