package trace

import (
	"io"
	"sync"
	"time"
)

// Recorder accumulates a trace in memory. All methods are nil-safe: a nil
// *Recorder (recording disabled) makes every call a no-op, so the VM's
// record sites stay unconditional and cost one branch when off — the same
// contract as the obs tracer.
//
// Mutator events go through per-thread Streams, whose buffers are written
// only by the owning thread inside its critical regions and flushed into
// the shared sink at stop-the-world drains (DrainAll) — mutually exclusive
// by the world protocol, so Stream appends need no lock. Collector events
// (Free, GCCycle) can arrive from a concurrent sweep while mutators run,
// so stream 0 lives behind the Recorder mutex.
type Recorder struct {
	start time.Time

	mu      sync.Mutex
	meta    Meta
	classes []ClassDef
	globals int
	streams []*Stream
	names   []string
	sink    []byte

	// Collector stream (stream 0) state.
	gcBuf      []byte
	gcLastFree uint64
	gcLastNs   uint64
}

// Stream is one mutator thread's event buffer. A nil *Stream is a no-op on
// every method, so threads of a non-recording VM carry a nil pointer and
// pay one branch per operation.
//
// Append methods must be called only by the owning thread inside a mutator
// critical region: the world protocol is what keeps them exclusive with
// DrainAll and WriteTo.
type Stream struct {
	rec *Recorder
	id  int

	buf       []byte
	prevAlloc uint64
	lastRef   uint64
	lastNs    uint64
	closed    bool
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// SetMeta stamps the run configuration (everything except the options
// fingerprint, which the VM supplies via SetFingerprint).
func (r *Recorder) SetMeta(m Meta) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fp := r.meta.Fingerprint
	r.meta = m
	if m.Fingerprint == 0 {
		r.meta.Fingerprint = fp
	}
	r.mu.Unlock()
}

// SetFingerprint stamps the effective vm.Options hash.
func (r *Recorder) SetFingerprint(fp uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.meta.Fingerprint = fp
	r.mu.Unlock()
}

// DefineClass records a class-table row. IDs must arrive in registry order
// (1, 2, 3, ...); re-definitions of an already-recorded ID are ignored,
// matching the registry's idempotent Define.
func (r *Recorder) DefineClass(id uint32, name string, refSlots, scalarBytes int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if int(id) == len(r.classes)+1 {
		r.classes = append(r.classes, ClassDef{Name: name, RefSlots: refSlots, ScalarBytes: scalarBytes})
	}
	r.mu.Unlock()
}

// AddGlobal records that global slot idx now exists.
func (r *Recorder) AddGlobal(idx int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if idx+1 > r.globals {
		r.globals = idx + 1
	}
	r.mu.Unlock()
}

// NewStream registers a mutator thread and returns its stream (nil when
// the recorder is nil). Threads appear in the header's thread table in
// creation order.
func (r *Recorder) NewStream(name string) *Stream {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	s := &Stream{rec: r, id: len(r.streams) + 1}
	r.streams = append(r.streams, s)
	r.names = append(r.names, name)
	r.mu.Unlock()
	return s
}

// DrainAll flushes every stream's buffer into the sink. Must be called
// with the world stopped (no mutator inside a critical region), the same
// contract as the obs tracer's DrainAll.
func (r *Recorder) DrainAll() {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, s := range r.streams {
		r.flushLocked(s.id, &s.buf)
	}
	r.flushLocked(0, &r.gcBuf)
	r.mu.Unlock()
}

// flushLocked appends one stream's pending bytes as a block.
func (r *Recorder) flushLocked(id int, buf *[]byte) {
	if len(*buf) == 0 {
		return
	}
	r.sink = appendUvarint(r.sink, uint64(id))
	r.sink = appendUvarint(r.sink, uint64(len(*buf)))
	r.sink = append(r.sink, *buf...)
	*buf = (*buf)[:0]
}

// Free records a collector free of object id on stream 0. Safe to call
// concurrently with mutators (concurrent sweep delivers frees while the
// world runs).
func (r *Recorder) Free(id uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gcBuf = append(r.gcBuf, byte(EvFree))
	r.gcBuf = appendZigzag(r.gcBuf, int64(id)-int64(r.gcLastFree))
	r.gcLastFree = id
	r.mu.Unlock()
}

// GCCycle records a completed full-heap collection on stream 0 and flushes
// the collector stream, so cycle records land in the sink adjacent to the
// mutator blocks drained in the same pause.
func (r *Recorder) GCCycle(info GCInfo) {
	if r == nil {
		return
	}
	now := uint64(time.Since(r.start))
	r.mu.Lock()
	b := append(r.gcBuf, byte(EvGCCycle))
	b = appendUvarint(b, info.Index)
	b = appendUvarint(b, uint64(info.Mode))
	b = appendUvarint(b, uint64(info.State))
	b = appendUvarint(b, info.BytesLive)
	b = appendUvarint(b, uint64(info.Candidates))
	b = appendUvarint(b, uint64(info.Pruned))
	flags := uint64(0)
	if info.Degraded {
		flags |= 1
	}
	b = appendUvarint(b, flags)
	b = appendUvarint(b, info.LiveHash)
	dt := now - r.gcLastNs
	r.gcLastNs = now
	b = appendUvarint(b, dt)
	r.gcBuf = b
	r.flushLocked(0, &r.gcBuf)
	r.mu.Unlock()
}

// WriteTo performs a final drain and writes the complete trace: header
// (meta, class table, global count, thread table) followed by the block
// sink. Must be called after the recorded run has finished (no mutator in
// a critical region and no collection in flight).
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	for _, s := range r.streams {
		r.flushLocked(s.id, &s.buf)
	}
	r.flushLocked(0, &r.gcBuf)

	var h []byte
	h = append(h, magic[:]...)
	h = appendUvarint(h, Version)
	h = appendString(h, r.meta.Program)
	h = appendString(h, r.meta.Policy)
	h = appendString(h, r.meta.WorldLock)
	h = appendString(h, r.meta.MarkMode)
	h = appendString(h, r.meta.BarrierVariant)
	h = appendString(h, r.meta.ForceState)
	h = appendUvarint(h, r.meta.HeapLimit)
	h = appendUvarint(h, r.meta.Flags)
	h = appendUvarint(h, r.meta.Fingerprint)
	h = appendUvarint(h, uint64(len(r.classes)))
	for _, c := range r.classes {
		h = appendString(h, c.Name)
		h = appendUvarint(h, uint64(c.RefSlots))
		h = appendUvarint(h, uint64(c.ScalarBytes))
	}
	h = appendUvarint(h, uint64(r.globals))
	h = appendUvarint(h, uint64(len(r.names)))
	for _, name := range r.names {
		h = appendString(h, name)
	}
	sink := r.sink
	r.mu.Unlock()

	n, err := w.Write(h)
	total := int64(n)
	if err != nil {
		return total, err
	}
	n, err = w.Write(sink)
	return total + int64(n), err
}

// --- Stream append methods (owner thread, inside a critical region) ---

// Alloc records a successful default-shape allocation.
func (s *Stream) Alloc(class uint32, id uint64) {
	if s == nil {
		return
	}
	s.buf = append(s.buf, byte(EvAlloc))
	s.buf = appendUvarint(s.buf, uint64(class))
	s.buf = appendZigzag(s.buf, int64(id)-int64(s.prevAlloc))
	s.prevAlloc = id
	s.lastRef = id
}

// AllocShaped records a successful allocation with an explicit shape.
func (s *Stream) AllocShaped(class uint32, id uint64, refSlots, scalarBytes int) {
	if s == nil {
		return
	}
	s.buf = append(s.buf, byte(EvAllocShaped))
	s.buf = appendUvarint(s.buf, uint64(class))
	s.buf = appendZigzag(s.buf, int64(id)-int64(s.prevAlloc))
	s.buf = appendUvarint(s.buf, uint64(refSlots))
	s.buf = appendUvarint(s.buf, uint64(scalarBytes))
	s.prevAlloc = id
	s.lastRef = id
}

// AllocFail records the allocation that exhausted memory (default shape).
func (s *Stream) AllocFail(class uint32) {
	if s == nil {
		return
	}
	s.buf = append(s.buf, byte(EvAllocFail))
	s.buf = appendUvarint(s.buf, uint64(class))
}

// AllocFailShaped records a shaped allocation that exhausted memory.
func (s *Stream) AllocFailShaped(class uint32, refSlots, scalarBytes int) {
	if s == nil {
		return
	}
	s.buf = append(s.buf, byte(EvAllocFailShaped))
	s.buf = appendUvarint(s.buf, uint64(class))
	s.buf = appendUvarint(s.buf, uint64(refSlots))
	s.buf = appendUvarint(s.buf, uint64(scalarBytes))
}

// Load records a reference load from src's slot.
func (s *Stream) Load(src uint64, slot int) {
	if s == nil {
		return
	}
	s.buf = append(s.buf, byte(EvLoad))
	s.buf = appendZigzag(s.buf, int64(src)-int64(s.lastRef))
	s.buf = appendUvarint(s.buf, uint64(slot))
	s.lastRef = src
}

// Store records a reference store into src's slot (val 0 = null).
func (s *Stream) Store(src uint64, slot int, val uint64) {
	if s == nil {
		return
	}
	s.buf = append(s.buf, byte(EvStore))
	s.buf = appendZigzag(s.buf, int64(src)-int64(s.lastRef))
	s.buf = appendUvarint(s.buf, uint64(slot))
	s.buf = appendUvarint(s.buf, val)
	s.lastRef = src
}

// LoadGlobal records a global read.
func (s *Stream) LoadGlobal(g int) {
	if s == nil {
		return
	}
	s.buf = append(s.buf, byte(EvLoadGlobal))
	s.buf = appendUvarint(s.buf, uint64(g))
}

// StoreGlobal records a global write (val 0 = null).
func (s *Stream) StoreGlobal(g int, val uint64) {
	if s == nil {
		return
	}
	s.buf = append(s.buf, byte(EvStoreGlobal))
	s.buf = appendUvarint(s.buf, uint64(g))
	s.buf = appendUvarint(s.buf, val)
}

// Push records a frame push of n slots.
func (s *Stream) Push(n int) {
	if s == nil {
		return
	}
	s.buf = append(s.buf, byte(EvPush))
	s.buf = appendUvarint(s.buf, uint64(n))
}

// Pop records a frame pop.
func (s *Stream) Pop() {
	if s == nil {
		return
	}
	s.buf = append(s.buf, byte(EvPop))
}

// FrameSet records a frame-slot write, depth frames down from the top of
// the thread's stack (val 0 = null).
func (s *Stream) FrameSet(depth, slot int, val uint64) {
	if s == nil {
		return
	}
	s.buf = append(s.buf, byte(EvFrameSet))
	s.buf = appendUvarint(s.buf, uint64(depth))
	s.buf = appendUvarint(s.buf, uint64(slot))
	s.buf = appendUvarint(s.buf, val)
}

// Iter records an iteration boundary with the wall-clock delta since the
// previous one — the replayer's pacing signal.
func (s *Stream) Iter(iter int) {
	if s == nil {
		return
	}
	now := uint64(time.Since(s.rec.start))
	s.buf = append(s.buf, byte(EvIter))
	s.buf = appendUvarint(s.buf, uint64(iter))
	s.buf = appendUvarint(s.buf, now-s.lastNs)
	s.lastNs = now
}

// Close records the thread's exit and flushes its buffer. Must be called
// by the owning thread inside its final critical region (alongside the obs
// ring close); the stream must not be used afterwards.
func (s *Stream) Close() {
	if s == nil || s.closed {
		return
	}
	s.closed = true
	s.buf = append(s.buf, byte(EvThreadEnd))
	r := s.rec
	r.mu.Lock()
	r.flushLocked(s.id, &s.buf)
	r.mu.Unlock()
}
