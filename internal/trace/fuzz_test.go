package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// runScript interprets fuzz input as a deterministic op script driving a
// Recorder over two mutator streams plus the collector stream, and returns
// the event sequence the trace must decode to along with the serialized
// bytes. EvIter and EvGCCycle are excluded: their payloads carry wall-clock
// deltas, which would break the byte-determinism check (their decode is
// covered by the unit tests and the harness replay tests).
func runScript(data []byte) ([]Event, []byte) {
	rec := NewRecorder()
	rec.SetMeta(Meta{Program: "fuzz", HeapLimit: 1 << 20})
	rec.DefineClass(1, "A", 1, 8)
	rec.DefineClass(2, "B", 2, 16)
	rec.AddGlobal(3)
	streams := []*Stream{rec.NewStream("t1"), rec.NewStream("t2")}

	// pend[i] holds events appended to stream i but not yet flushed into
	// the sink; want accumulates them in flush (= file) order.
	pend := make([][]Event, 3)
	var want []Event
	flushAll := func() {
		for _, id := range []int{1, 2, 0} {
			want = append(want, pend[id]...)
			pend[id] = nil
		}
	}
	base := Event{RefSlots: -1, ScalarBytes: -1}

	cur := 0
	pos := 0
	arg := func(n int) uint64 {
		var v uint64
		for i := 0; i < n; i++ {
			v <<= 8
			if pos < len(data) {
				v |= uint64(data[pos])
				pos++
			}
		}
		return v
	}
	for pos < len(data) {
		op := data[pos]
		pos++
		s, sid := streams[cur], cur+1
		ev := base
		ev.Stream = sid
		switch op % 14 {
		case 0:
			ev.Kind, ev.Obj = EvAlloc, arg(2)
			ev.Class = uint32(1 + ev.Obj%2)
			s.Alloc(ev.Class, ev.Obj)
		case 1:
			ev.Kind, ev.Obj = EvAllocShaped, arg(2)
			ev.Class = uint32(1 + ev.Obj%2)
			ev.RefSlots, ev.ScalarBytes = int(arg(1)%8), int(arg(1)%64)
			s.AllocShaped(ev.Class, ev.Obj, ev.RefSlots, ev.ScalarBytes)
		case 2:
			ev.Kind, ev.Class = EvAllocFail, uint32(1+arg(1)%2)
			s.AllocFail(ev.Class)
		case 3:
			ev.Kind, ev.Class = EvAllocFailShaped, uint32(1+arg(1)%2)
			ev.RefSlots, ev.ScalarBytes = int(arg(1)%8), int(arg(1)%64)
			s.AllocFailShaped(ev.Class, ev.RefSlots, ev.ScalarBytes)
		case 4:
			ev.Kind, ev.Obj, ev.Slot = EvLoad, arg(2), int(arg(1)%16)
			s.Load(ev.Obj, ev.Slot)
		case 5:
			ev.Kind, ev.Obj, ev.Slot, ev.Val = EvStore, arg(2), int(arg(1)%16), arg(2)
			s.Store(ev.Obj, ev.Slot, ev.Val)
		case 6:
			ev.Kind, ev.Arg = EvLoadGlobal, int(arg(1)%4)
			s.LoadGlobal(ev.Arg)
		case 7:
			ev.Kind, ev.Arg, ev.Val = EvStoreGlobal, int(arg(1)%4), arg(2)
			s.StoreGlobal(ev.Arg, ev.Val)
		case 8:
			ev.Kind, ev.Arg = EvPush, int(arg(1)%8)
			s.Push(ev.Arg)
		case 9:
			ev.Kind = EvPop
			s.Pop()
		case 10:
			ev.Kind = EvFrameSet
			ev.Arg, ev.Slot, ev.Val = int(arg(1)%4), int(arg(1)%8), arg(2)
			s.FrameSet(ev.Arg, ev.Slot, ev.Val)
		case 11:
			ev.Kind, ev.Stream, ev.Obj = EvFree, 0, arg(2)
			rec.Free(ev.Obj)
			sid = 0
		case 12:
			rec.DrainAll()
			flushAll()
			continue
		case 13:
			cur = int(arg(1)) % 2
			continue
		}
		pend[sid] = append(pend[sid], ev)
	}
	// Close flushes each mutator stream immediately; the final WriteTo
	// drain picks up any remaining collector events.
	for i, s := range streams {
		s.Close()
		end := base
		end.Kind, end.Stream = EvThreadEnd, i+1
		pend[i+1] = append(pend[i+1], end)
		want = append(want, pend[i+1]...)
		pend[i+1] = nil
	}
	var buf bytes.Buffer
	rec.WriteTo(&buf)
	want = append(want, pend[0]...)
	return want, buf.Bytes()
}

// requireTyped aborts unless err is a typed decode error.
func requireTyped(t *testing.T, err error) {
	t.Helper()
	assertTyped(t, err)
}

// FuzzTraceRoundTrip checks two properties on arbitrary input:
//
//  1. Hostile parse: the input interpreted as a trace file either decodes
//     or returns a typed error (ErrBadMagic, ErrBadVersion, CorruptError,
//     TruncatedError) — never a panic, never an untyped error.
//  2. Round trip: the input interpreted as an op script drives the
//     Recorder; the result must parse, decode to exactly the recorded
//     event sequence, and re-encode byte-identically.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(sampleTraceBytes(f))
	f.Add(sampleTraceBytes(f)[:30])
	f.Add([]byte("LPTRACE1 with a ruined header"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	script := make([]byte, 256)
	for i := range script {
		script[i] = byte(i * 7)
	}
	f.Add(script)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: hostile parse never panics, errors stay typed.
		if tr, err := ReadTrace(data); err == nil {
			if _, verr := tr.Validate(); verr != nil {
				requireTyped(t, verr)
			}
		} else {
			requireTyped(t, err)
		}

		// Property 2: encode → decode round trip.
		want, blob := runScript(data)
		tr, err := ReadTrace(blob)
		if err != nil {
			t.Fatalf("recorded trace failed to parse: %v", err)
		}
		it := tr.Iter()
		var ev Event
		for i := range want {
			ok, err := it.Next(&ev)
			if err != nil {
				t.Fatalf("decode event %d: %v", i, err)
			}
			if !ok {
				t.Fatalf("trace ended after %d events, want %d", i, len(want))
			}
			if ev != want[i] {
				t.Fatalf("event %d: decoded %+v, recorded %+v", i, ev, want[i])
			}
		}
		if ok, err := it.Next(&ev); err != nil || ok {
			t.Fatalf("trailing event %+v (err %v) after %d expected", ev, err, len(want))
		}

		// Re-encoding the same script must be byte-identical.
		_, blob2 := runScript(data)
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("encoding is nondeterministic:\n%x\n%x", blob, blob2)
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus. Gated so a
// plain test run never rewrites testdata; run with
// TRACE_WRITE_CORPUS=1 go test ./internal/trace -run TestWriteFuzzCorpus
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("TRACE_WRITE_CORPUS") == "" {
		t.Skip("set TRACE_WRITE_CORPUS=1 to regenerate the fuzz corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzTraceRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	sample := sampleTraceBytes(t)
	script := make([]byte, 512)
	for i := range script {
		script[i] = byte(i*13 + 5)
	}
	seeds := map[string][]byte{
		"valid-trace":   sample,
		"truncated":     sample[:len(sample)/2],
		"bad-magic":     []byte("NOTATRACEFILE at all"),
		"script-dense":  script,
		"script-drains": {12, 0, 1, 2, 12, 4, 9, 9, 5, 1, 2, 3, 12, 11, 8, 8, 11, 12, 13, 1, 0, 7, 7, 12},
	}
	for name, b := range seeds {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
