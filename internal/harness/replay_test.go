package harness

import (
	"bytes"
	"testing"

	"leakpruning/internal/trace"
	"leakpruning/internal/workload"
)

// recordRun records one workload run and returns the parsed trace plus the
// recording run's result.
func recordRun(t *testing.T, cfg Config) (*trace.Trace, Result) {
	t.Helper()
	rec := trace.NewRecorder()
	cfg.Record = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("record run: %v", err)
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatalf("serialize trace: %v", err)
	}
	tr, err := trace.ReadTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	return tr, res
}

// TestReplayDeterminism: a ×1 replay of a recorded micro-leak run under
// the recorded options reproduces every GC cycle's live-set hash,
// candidate count, and pruned count byte-identically, across both world
// locks and both mark modes.
func TestReplayDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name      string
		worldLock string
		markMode  string
	}{
		{"safepoint-stw", "safepoint", "stw"},
		{"rwmutex-stw", "rwmutex", "stw"},
		{"safepoint-concurrent", "safepoint", "concurrent"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, rres := recordRun(t, Config{
				Program:     "listleak",
				Policy:      "default",
				MaxIters:    900,
				WorldLock:   tc.worldLock,
				MarkMode:    tc.markMode,
				HashLiveSet: true,
			})
			if len(tr.Classes) == 0 || len(tr.Threads) == 0 {
				t.Fatalf("trace missing header tables: %d classes, %d threads", len(tr.Classes), len(tr.Threads))
			}
			rr, err := Replay(ReplayConfig{Trace: tr})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if err := CompareCycles(tr, rr.GCSamples); err != nil {
				t.Fatalf("×1 replay diverged from recording: %v", err)
			}
			// A replay that consumes the whole trace ends "completed"; the
			// recorded run may have ended at its iteration cap — both are
			// healthy. A died run must die the same way in replay.
			if rres.Capped() {
				if !(Result{Reason: rr.Clones[0].Reason}).Capped() {
					t.Errorf("recorded run ended healthy (%v), replay died: %v (%v)",
						rres.Reason, rr.Clones[0].Reason, rr.Clones[0].Err)
				}
			} else if got, want := rr.Clones[0].Reason, rres.Reason; got != want {
				t.Errorf("clone end reason %v, recorded run ended %v", got, want)
			}
			if rr.Clones[0].Skipped != 0 {
				t.Errorf("single-threaded replay skipped %d events", rr.Clones[0].Skipped)
			}
			if len(rr.AuditReport) != 0 {
				t.Errorf("final audit violations: %v", rr.AuditReport)
			}
		})
	}
}

// TestReplayEquivalence: the SAME recording replays byte-identically under
// both world locks and both mark modes — the trace is a policy-validation
// substrate precisely because the synchronization protocol does not change
// the heap's evolution.
func TestReplayEquivalence(t *testing.T) {
	tr, _ := recordRun(t, Config{
		Program:     "listleak",
		Policy:      "default",
		MaxIters:    900,
		HashLiveSet: true,
	})
	for _, tc := range []struct {
		name      string
		worldLock string
		markMode  string
	}{
		{"rwmutex-stw", "rwmutex", "stw"},
		{"safepoint-concurrent", "safepoint", "concurrent"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rr, err := Replay(ReplayConfig{Trace: tr, WorldLock: tc.worldLock, MarkMode: tc.markMode})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if err := CompareCycles(tr, rr.GCSamples); err != nil {
				t.Fatalf("replay under %s diverged: %v", tc.name, err)
			}
		})
	}
}

// TestReplayReproducesDeath: runs that die — by poison trap (most-stale
// pruning a live structure) or by OOM (pruning off) — die the same way at
// ×1 replay, because the trace records the trapping load and the
// exhausting allocation as its final events.
func TestReplayReproducesDeath(t *testing.T) {
	for _, tc := range []struct {
		name    string
		program string
		policy  string
		want    EndReason
	}{
		{"poison-trap", "eclipsecp", "indiv-refs", EndPoisonTrap},
		{"oom", "listleak", "off", EndOOM},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, rres := recordRun(t, Config{
				Program:     tc.program,
				Policy:      tc.policy,
				MaxIters:    400,
				HashLiveSet: true,
			})
			if rres.Reason != tc.want {
				t.Fatalf("recorded run ended %v, want %v", rres.Reason, tc.want)
			}
			rr, err := Replay(ReplayConfig{Trace: tr})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if got := rr.Clones[0].Reason; got != tc.want {
				t.Fatalf("replay ended %v (%v), recorded run ended %v",
					got, rr.Clones[0].Err, tc.want)
			}
			if err := CompareCycles(tr, rr.GCSamples); err != nil {
				t.Fatalf("replay diverged before death: %v", err)
			}
		})
	}
}

// TestReplayCrossPolicy: a recording made under one policy replays cleanly
// under the others; outcomes differ (that is the point) but the heap stays
// audit-clean.
func TestReplayCrossPolicy(t *testing.T) {
	tr, _ := recordRun(t, Config{
		Program:  "listleak",
		Policy:   "off",
		MaxIters: 600,
	})
	for _, policy := range []string{"default", "most-stale", "indiv-refs"} {
		t.Run(policy, func(t *testing.T) {
			rr, err := Replay(ReplayConfig{Trace: tr, Policy: policy})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if len(rr.AuditReport) != 0 {
				t.Errorf("audit violations under %s: %v", policy, rr.AuditReport)
			}
			if rr.Clones[0].Reason == EndReplayDiverged || rr.Clones[0].Reason == EndTraceCorrupt {
				t.Errorf("replay failed structurally: %v (%v)", rr.Clones[0].Reason, rr.Clones[0].Err)
			}
		})
	}
}

// TestReplayMultiply: a ×4 thread-multiplied replay completes with zero
// audit violations and every clone makes progress.
func TestReplayMultiply(t *testing.T) {
	tr, _ := recordRun(t, Config{
		Program:  "listleak",
		Policy:   "default",
		MaxIters: 400,
	})
	rr, err := Replay(ReplayConfig{Trace: tr, Multiply: 4})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(rr.AuditReport) != 0 {
		t.Errorf("audit violations: %v", rr.AuditReport)
	}
	for _, c := range rr.Clones {
		if c.Iterations == 0 {
			t.Errorf("clone %d made no progress: %v (%v)", c.Clone, c.Reason, c.Err)
		}
		if c.Reason == EndReplayDiverged || c.Reason == EndTraceCorrupt {
			t.Errorf("clone %d failed structurally: %v (%v)", c.Clone, c.Reason, c.Err)
		}
	}
}

// TestReplayCorpusMultiply is the corpus acceptance gate: a ×10
// thread-multiplied replay of each taxonomy corpus program completes with
// zero audit violations under all three pruning policies. Recording is done
// under "off" so every policy replays the same heap evolution.
func TestReplayCorpusMultiply(t *testing.T) {
	for _, e := range workload.Corpus() {
		tr, _ := recordRun(t, Config{Program: e.Name, Policy: "off", MaxIters: 400})
		for _, policy := range []string{"default", "most-stale", "indiv-refs"} {
			t.Run(e.Name+"/"+policy, func(t *testing.T) {
				rr, err := Replay(ReplayConfig{Trace: tr, Policy: policy, Multiply: 10})
				if err != nil {
					t.Fatalf("replay: %v", err)
				}
				if len(rr.AuditReport) != 0 {
					t.Errorf("audit violations: %v", rr.AuditReport)
				}
				for _, c := range rr.Clones {
					if c.Reason == EndReplayDiverged || c.Reason == EndTraceCorrupt {
						t.Errorf("clone %d failed structurally: %v (%v)", c.Clone, c.Reason, c.Err)
					}
					if c.Iterations == 0 {
						t.Errorf("clone %d made no progress: %v (%v)", c.Clone, c.Reason, c.Err)
					}
				}
			})
		}
	}
}
