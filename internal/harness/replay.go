package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"leakpruning/internal/core"
	"leakpruning/internal/faultinject"
	"leakpruning/internal/gc"
	"leakpruning/internal/heap"
	"leakpruning/internal/obs"
	"leakpruning/internal/offload"
	"leakpruning/internal/trace"
	"leakpruning/internal/vm"
	"leakpruning/internal/vmerrors"
)

const (
	// EndReplayDiverged: a replay clone hit a non-VM panic — the trace no
	// longer matches the heap it is being replayed against.
	EndReplayDiverged EndReason = "replay-diverged"
	// EndTraceCorrupt: the trace body failed to decode mid-replay.
	EndTraceCorrupt EndReason = "trace-corrupt"
)

// ReplayConfig parameterizes the deterministic re-execution of a recorded
// trace. The zero value replays at full speed, ×1, under the recorded
// options.
type ReplayConfig struct {
	// Trace is the parsed recording to re-execute.
	Trace *trace.Trace
	// Policy overrides the recorded pruning policy ("" = recorded). This
	// is the point of the trace substrate: one recording, validated
	// against every policy.
	Policy string
	// WorldLock and MarkMode override the recorded synchronization modes
	// ("" = recorded).
	WorldLock string
	MarkMode  string
	// HeapLimit overrides the heap (0 = recorded limit × Multiply, so the
	// paper's "heap ≈ 2× need" methodology scales with the cloned load).
	HeapLimit uint64
	// Multiply replays N skewed clones of the recorded interleaving
	// (0 or 1 = one). Each clone gets a disjoint block of globals and its
	// own object-identity map; clones share the one heap and policy, which
	// is how heavy traffic is simulated on one CPU.
	Multiply int
	// Speed paces iteration boundaries against the recorded timestamps:
	// 1 = recorded speed, 2 = twice as fast, 0 = as fast as possible.
	Speed float64
	// Stagger delays clone k's start by k×Stagger, skewing the clones so
	// their allocation phases do not align (0 = no stagger).
	Stagger time.Duration
	// MaxIters caps each clone's replayed iterations (0 = whole trace).
	MaxIters int
	// HashLiveSet, AuditEveryGC, GCWorkers, Injector, and Obs mirror the
	// corresponding Config fields.
	HashLiveSet  bool
	AuditEveryGC bool
	GCWorkers    int
	Injector     *faultinject.Injector
	Obs          *obs.Obs
}

// CloneResult is one replay clone's outcome, in Result's vocabulary.
type CloneResult struct {
	Clone      int
	Iterations int
	Reason     EndReason
	Err        error
	// Skipped counts events dropped because their object could not be
	// resolved — 0 for single-mutator traces; can be nonzero when a
	// multi-thread trace's cross-thread timing is coarsened to the
	// stop-the-world drain windows.
	Skipped int
}

// ReplayResult aggregates a replay run.
type ReplayResult struct {
	Program   string
	Policy    string
	HeapLimit uint64
	Multiply  int

	Clones     []CloneResult
	GCSamples  []GCSample
	Duration   time.Duration
	VMStats    vm.Stats
	Prunes     []core.PruneEvent
	FinalState core.State
	// AuditReport is the final full invariant audit (always run).
	AuditReport []string
}

// Capped reports whether every clone ended healthy (at its iteration cap
// or the end of the trace).
func (r ReplayResult) Capped() bool {
	for _, c := range r.Clones {
		if !(Result{Reason: c.Reason}).Capped() {
			return false
		}
	}
	return true
}

// Replay re-executes a recorded trace. Determinism argument, ×1: the
// recorded op sequence is replayed in file order, which for a
// single-mutator recording is the exact program order; collections are
// triggered by allocated bytes (not wall clock), object IDs recycle LIFO
// per shard, and the controller's decisions are pure functions of heap
// state — so a ×1 replay under the recorded options reproduces every
// cycle's live-set hash, candidate count, and pruned count byte for byte.
// Under a different policy/mark mode the op stream is identical but the
// GC's decisions (legitimately) differ.
func Replay(cfg ReplayConfig) (ReplayResult, error) {
	tr := cfg.Trace
	if tr == nil {
		return ReplayResult{}, fmt.Errorf("harness: replay requires a trace")
	}
	mult := cfg.Multiply
	if mult <= 0 {
		mult = 1
	}
	policyName := cfg.Policy
	if policyName == "" {
		policyName = tr.Meta.Policy
	}
	melt := policyName == "melt"
	var policy core.Policy
	var err error
	if !melt {
		policy, err = PolicyFromName(policyName)
		if err != nil {
			return ReplayResult{}, err
		}
	}
	heapLimit := cfg.HeapLimit
	if heapLimit == 0 {
		heapLimit = tr.Meta.HeapLimit * uint64(mult)
	}
	if heapLimit == 0 {
		return ReplayResult{}, fmt.Errorf("harness: trace carries no heap limit and none was given")
	}

	res := ReplayResult{
		Program:   tr.Meta.Program,
		Policy:    policyLabel(policyName),
		HeapLimit: heapLimit,
		Multiply:  mult,
	}

	opts := vm.Options{
		HeapLimit:      heapLimit,
		Policy:         policy,
		EnableBarriers: true,
		FullHeapOnly:   tr.Meta.Flags&trace.FlagFullHeapOnly != 0,
		Generational:   tr.Meta.Flags&trace.FlagGenerational != 0,
		GCWorkers:      cfg.GCWorkers,
		FaultInjector:  cfg.Injector,
		AuditEveryGC:   cfg.AuditEveryGC,
		Obs:            cfg.Obs,
		HashLiveSet:    cfg.HashLiveSet || tr.Meta.Flags&trace.FlagHashLiveSet != 0,
	}
	if tr.Meta.Flags&trace.FlagLazyBarriers != 0 {
		opts.LazyBarriers = true
	}
	if policy == nil && !melt && tr.Meta.Flags&trace.FlagBarriersOff != 0 {
		opts.EnableBarriers = false
	}
	if melt {
		opts.OffloadDisk = offload.DefaultDiskFactor * heapLimit
	}
	forceState := tr.Meta.ForceState
	if policy != nil || melt {
		// A pinned controller state is mutually exclusive with a policy;
		// replaying a forced-state recording under a real policy is a
		// deliberate upgrade, so the pin is dropped.
		forceState = ""
	}
	worldLock := cfg.WorldLock
	if worldLock == "" {
		worldLock = tr.Meta.WorldLock
	}
	markMode := cfg.MarkMode
	if markMode == "" {
		markMode = tr.Meta.MarkMode
	}
	if err := applyModeOptions(&opts, forceState, tr.Meta.BarrierVariant, worldLock, markMode); err != nil {
		return ReplayResult{}, err
	}

	var iterNow atomic.Int64
	var samplesMu sync.Mutex
	opts.OnGC = func(ev vm.Event) {
		samplesMu.Lock()
		res.GCSamples = append(res.GCSamples, GCSample{
			GCIndex:    ev.Result.Index,
			Iteration:  int(iterNow.Load()),
			BytesLive:  ev.Heap.BytesUsed,
			State:      ev.State,
			Mode:       ev.Result.Mode.String(),
			GCTime:     ev.Result.Duration,
			LiveHash:   ev.LiveHash,
			Candidates: ev.Result.Candidates,
			Pruned:     ev.Result.PrunedRefs,
			Degraded:   ev.Result.Degraded,
		})
		samplesMu.Unlock()
	}

	machine := vm.New(opts)

	// Rebuild the recorded class table; IDs must come out identical or the
	// trace's class references would dangle.
	for i, c := range tr.Classes {
		id := machine.DefineClass(c.Name, c.RefSlots, c.ScalarBytes)
		if int(id) != i+1 {
			return ReplayResult{}, fmt.Errorf("harness: replay class %q got ID %d, want %d", c.Name, id, i+1)
		}
	}
	// Disjoint globals per clone: clone k's recorded global g lives at
	// k×G + g, so the clones' heaps share nothing through roots.
	for i := 0; i < tr.Globals*mult; i++ {
		machine.AddGlobal()
	}

	start := time.Now()
	res.Clones = make([]CloneResult, mult)
	var wg sync.WaitGroup
	for k := 0; k < mult; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if cfg.Stagger > 0 && k > 0 {
				time.Sleep(time.Duration(k) * cfg.Stagger)
			}
			res.Clones[k] = replayClone(machine, tr, k, cfg, &iterNow, start)
		}(k)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	res.VMStats = machine.Stats()
	res.Prunes = machine.PruneEvents()
	res.FinalState = machine.State()
	res.AuditReport = machine.Verify()
	return res, nil
}

// replayClone re-executes the full trace once as clone k.
func replayClone(machine *vm.VM, tr *trace.Trace, k int, cfg ReplayConfig, iterNow *atomic.Int64, start time.Time) (cr CloneResult) {
	cr.Clone = k
	cr.Reason = EndCompleted

	threads := make(map[int]*vm.Thread)
	frames := make(map[int][]*vm.Frame)
	idmap := make(map[uint64]heap.Ref)
	defer func() {
		if r := recover(); r != nil {
			err, ok := func() (e error, ok bool) {
				defer func() { recover() }() // Recover re-panics foreign values
				e, ok = vmerrors.Recover(r)
				return
			}()
			if ok {
				cr.Err = err
				switch {
				case vmerrors.IsInternal(err):
					cr.Reason = EndPoisonTrap
				case vmerrors.IsOOM(err):
					cr.Reason = EndOOM
				case vmerrors.IsOffload(err):
					cr.Reason = EndOffloadFault
				}
			} else {
				cr.Err = fmt.Errorf("harness: replay clone %d diverged: %v", k, r)
				cr.Reason = EndReplayDiverged
			}
		}
		for _, th := range threads {
			th.Exit()
		}
	}()

	lookup := func(id uint64) (heap.Ref, bool) {
		r, ok := idmap[id]
		return r, ok
	}
	valRef := func(id uint64) (heap.Ref, bool) {
		if id == 0 {
			return heap.Null, true
		}
		return lookup(id)
	}
	thread := func(stream int) *vm.Thread {
		th := threads[stream]
		if th == nil {
			th = machine.NewThread(fmt.Sprintf("c%d/%s", k, tr.Threads[stream-1]))
			threads[stream] = th
		}
		return th
	}

	speed := cfg.Speed
	var paced time.Duration

	it := tr.Iter()
	var ev trace.Event
	for {
		ok, err := it.Next(&ev)
		if err != nil {
			cr.Err = err
			cr.Reason = EndTraceCorrupt
			return cr
		}
		if !ok {
			return cr
		}
		if ev.Stream == 0 {
			continue // collector events are the verifier's oracle, not ops
		}
		switch ev.Kind {
		case trace.EvIter:
			cr.Iterations = ev.Arg + 1
			if n := int64(ev.Arg); n > iterNow.Load() {
				iterNow.Store(n)
			}
			if cfg.MaxIters > 0 && ev.Arg >= cfg.MaxIters {
				cr.Reason = EndIterCap
				return cr
			}
			if speed > 0 {
				paced += time.Duration(float64(ev.DT) / speed)
				if lag := paced - time.Since(start); lag > 0 {
					time.Sleep(lag)
				}
			} else {
				// Full speed: still yield at iteration boundaries so the
				// clones interleave at the recorded run's granularity.
				runtime.Gosched()
			}
		case trace.EvAlloc, trace.EvAllocShaped:
			th := thread(ev.Stream)
			ref := th.New(heap.ClassID(ev.Class), shapeOpts(&ev)...)
			idmap[ev.Obj] = ref
		case trace.EvAllocFail, trace.EvAllocFailShaped:
			// The allocation that exhausted the recorded run. Re-attempt it:
			// under the recorded policy it reproduces the OOM (or trap-free
			// prune tail); under a better policy it simply succeeds and the
			// object is dropped at the next scope pop.
			th := thread(ev.Stream)
			th.New(heap.ClassID(ev.Class), shapeOpts(&ev)...)
		case trace.EvLoad:
			ref, ok := lookup(ev.Obj)
			if !ok {
				cr.Skipped++
				continue
			}
			th := thread(ev.Stream)
			th.Load(ref, ev.Slot)
		case trace.EvStore:
			ref, ok := lookup(ev.Obj)
			val, vok := valRef(ev.Val)
			if !ok || !vok {
				cr.Skipped++
				continue
			}
			th := thread(ev.Stream)
			th.Store(ref, ev.Slot, val)
		case trace.EvLoadGlobal:
			th := thread(ev.Stream)
			th.LoadGlobal(k*tr.Globals + ev.Arg)
		case trace.EvStoreGlobal:
			val, vok := valRef(ev.Val)
			if !vok {
				cr.Skipped++
				continue
			}
			th := thread(ev.Stream)
			th.StoreGlobal(k*tr.Globals+ev.Arg, val)
		case trace.EvPush:
			th := thread(ev.Stream)
			frames[ev.Stream] = append(frames[ev.Stream], th.PushFrame(ev.Arg))
		case trace.EvPop:
			fs := frames[ev.Stream]
			if len(fs) == 0 {
				cr.Skipped++
				continue
			}
			thread(ev.Stream).PopFrame()
			frames[ev.Stream] = fs[:len(fs)-1]
		case trace.EvFrameSet:
			fs := frames[ev.Stream]
			if ev.Arg >= len(fs) {
				cr.Skipped++
				continue
			}
			val, vok := valRef(ev.Val)
			if !vok {
				cr.Skipped++
				continue
			}
			fs[len(fs)-1-ev.Arg].Set(ev.Slot, val)
		case trace.EvThreadEnd:
			if th := threads[ev.Stream]; th != nil {
				th.Exit()
				delete(threads, ev.Stream)
				delete(frames, ev.Stream)
			}
		}
	}
}

// shapeOpts converts a shaped alloc event's override into alloc options.
func shapeOpts(ev *trace.Event) []heap.AllocOption {
	if ev.RefSlots < 0 && ev.ScalarBytes < 0 {
		return nil
	}
	return []heap.AllocOption{heap.WithRefSlots(ev.RefSlots), heap.WithScalarBytes(ev.ScalarBytes)}
}

// CycleMismatchError reports the first divergence between a recorded
// trace's GC cycles and a replay's.
type CycleMismatchError struct {
	Cycle int
	Field string
	Want  uint64
	Got   uint64
}

func (e *CycleMismatchError) Error() string {
	return fmt.Sprintf("harness: replay cycle %d: %s = %d, recorded %d", e.Cycle, e.Field, e.Got, e.Want)
}

// CompareCycles checks a ×1 replay's GC samples against the recorded
// cycles: per cycle, the mode, controller state, candidate count, pruned
// count, and live-set hash must match exactly (Degraded and timing are
// excluded — a degraded cycle is byte-identical by construction, and time
// is not part of the heap state). Returns nil when every recorded cycle
// matches.
func CompareCycles(tr *trace.Trace, samples []GCSample) error {
	recorded, err := RecordedCycles(tr)
	if err != nil {
		return err
	}
	if len(samples) != len(recorded) {
		return fmt.Errorf("harness: replay ran %d GC cycles, recorded %d", len(samples), len(recorded))
	}
	for i, rc := range recorded {
		s := samples[i]
		if got, want := s.Mode, gc.Mode(rc.Mode).String(); got != want {
			return fmt.Errorf("harness: replay cycle %d: mode %q, recorded %q", i, got, want)
		}
		if got, want := s.State, core.State(rc.State); got != want {
			return fmt.Errorf("harness: replay cycle %d: state %v, recorded %v", i, got, want)
		}
		if uint64(s.Candidates) != uint64(rc.Candidates) {
			return &CycleMismatchError{Cycle: i, Field: "candidates", Want: uint64(rc.Candidates), Got: uint64(s.Candidates)}
		}
		if uint64(s.Pruned) != uint64(rc.Pruned) {
			return &CycleMismatchError{Cycle: i, Field: "pruned", Want: uint64(rc.Pruned), Got: uint64(s.Pruned)}
		}
		if s.LiveHash != rc.LiveHash {
			return &CycleMismatchError{Cycle: i, Field: "live-hash", Want: rc.LiveHash, Got: s.LiveHash}
		}
	}
	return nil
}

// RecordedCycles extracts the trace's GC-cycle records in order.
func RecordedCycles(tr *trace.Trace) ([]trace.GCInfo, error) {
	st, err := tr.Stats()
	if err != nil {
		return nil, err
	}
	return st.Cycles, nil
}
