package harness

import (
	"testing"
	"time"

	"leakpruning/internal/vmerrors"
)

func TestPolicyFromName(t *testing.T) {
	for _, name := range []string{"", "off", "base", "none"} {
		p, err := PolicyFromName(name)
		if err != nil || p != nil {
			t.Fatalf("PolicyFromName(%q) = %v, %v", name, p, err)
		}
	}
	for _, name := range []string{"default", "most-stale", "indiv-refs"} {
		p, err := PolicyFromName(name)
		if err != nil || p == nil {
			t.Fatalf("PolicyFromName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := PolicyFromName("nope"); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestRunUnknownProgram(t *testing.T) {
	if _, err := Run(Config{Program: "nope"}); err == nil {
		t.Fatal("unknown program must error")
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{Program: "listleak", ForceState: "bogus"}); err == nil {
		t.Fatal("bad forced state must error")
	}
	if _, err := Run(Config{Program: "listleak", BarrierVariant: "bogus"}); err == nil {
		t.Fatal("bad barrier variant must error")
	}
}

func TestRunReasonClassification(t *testing.T) {
	// Base ListLeak: OOM with a recorded error.
	res, err := Run(Config{Program: "listleak", Policy: "off", MaxIters: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != EndOOM || !vmerrors.IsOOM(res.Err) {
		t.Fatalf("reason=%s err=%v", res.Reason, res.Err)
	}
	if res.Capped() {
		t.Fatal("an OOM run is not capped")
	}

	// Delaunay completes.
	res, err = Run(Config{Program: "delaunay", Policy: "off"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != EndCompleted || res.Err != nil {
		t.Fatalf("delaunay: %s / %v", res.Reason, res.Err)
	}

	// Iteration cap.
	res, err = Run(Config{Program: "listleak", Policy: "off", MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != EndIterCap || !res.Capped() {
		t.Fatalf("capped run: %s", res.Reason)
	}

	// Time cap.
	res, err = Run(Config{Program: "listleak", Policy: "off", MaxIters: 1 << 30, MaxDuration: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != EndTimeCap {
		t.Fatalf("time-capped run: %s", res.Reason)
	}
}

func TestRunRecordsSeries(t *testing.T) {
	res, err := Run(Config{Program: "listleak", Policy: "default", MaxIters: 800, RecordIterTimes: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GCSamples) == 0 {
		t.Fatal("no reachable-memory samples recorded")
	}
	for i := 1; i < len(res.GCSamples); i++ {
		if res.GCSamples[i].GCIndex <= res.GCSamples[i-1].GCIndex {
			t.Fatal("GC samples out of order")
		}
		if res.GCSamples[i].BytesLive > res.HeapLimit {
			t.Fatal("reachable memory above the heap limit")
		}
	}
	if len(res.IterTimes) != res.Iterations {
		t.Fatalf("iteration times %d != iterations %d", len(res.IterTimes), res.Iterations)
	}
	if res.VMStats.Collections == 0 || res.VMStats.Allocations == 0 {
		t.Fatal("VM stats empty")
	}
}

func TestRatioAndDescribe(t *testing.T) {
	base := Result{Iterations: 100}
	r := Result{Program: "p", Policy: "default", Iterations: 450, Reason: EndOOM, Duration: time.Second}
	if r.Ratio(base) != 4.5 {
		t.Fatalf("ratio = %v", r.Ratio(base))
	}
	if (Result{}).Ratio(Result{}) != 0 {
		t.Fatal("zero-base ratio must be 0")
	}
	if r.Describe() == "" {
		t.Fatal("empty Describe")
	}
}

func TestVerboseCallback(t *testing.T) {
	var lines int
	_, err := Run(Config{
		Program: "listleak", Policy: "default", MaxIters: 800,
		Verbose: func(string, ...any) { lines++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("verbose run produced no prune/OOM events")
	}
}
