// Package harness drives workload programs on the simulated runtime and
// records everything the paper's evaluation reports: iterations executed
// before failure (Tables 1–2), reachable memory after every full-heap
// collection (Figures 1 and 9), per-iteration times (Figures 8, 10, 11),
// pruned edge types, and GC/barrier overhead counters.
package harness

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"leakpruning/internal/core"
	"leakpruning/internal/faultinject"
	"leakpruning/internal/heap"
	"leakpruning/internal/obs"
	"leakpruning/internal/offload"
	"leakpruning/internal/trace"
	"leakpruning/internal/vm"
	"leakpruning/internal/vmerrors"
	"leakpruning/internal/workload"
)

// EndReason says why a run stopped.
type EndReason string

const (
	// EndOOM: the program exhausted memory (an OutOfMemoryError was thrown).
	EndOOM EndReason = "out-of-memory"
	// EndPoisonTrap: the program accessed a pruned reference (InternalError).
	EndPoisonTrap EndReason = "pruned-access"
	// EndIterCap: the run reached the iteration cap still healthy (the
	// analogue of the paper's ">24 hours" rows).
	EndIterCap EndReason = "iteration-cap"
	// EndTimeCap: the run reached the wall-clock budget still healthy.
	EndTimeCap EndReason = "time-cap"
	// EndCompleted: the program finished naturally (Delaunay).
	EndCompleted EndReason = "completed"
	// EndOffloadFault: a melt run's simulated disk failed a fault-in read
	// past the retry budget (only reachable with fault injection armed).
	EndOffloadFault EndReason = "offload-io-failure"
)

// GCSample is one point of the reachable-memory series: taken at the end of
// a full-heap collection, as in Figure 1.
type GCSample struct {
	GCIndex   uint64
	Iteration int
	BytesLive uint64
	State     core.State
	Mode      string
	GCTime    time.Duration
	// LiveHash is the post-cycle live-set fingerprint (Config.HashLiveSet
	// only; 0 otherwise). Candidates, Pruned, and Degraded carry the
	// cycle's SELECT/PRUNE decisions so equivalence checks can compare a
	// concurrent-mark run against its STW control cycle by cycle.
	LiveHash   uint64
	Candidates int
	Pruned     int
	Degraded   bool
}

// Config parameterizes one run.
type Config struct {
	// Program names the workload (see workload.Names).
	Program string
	// Policy is the pruning policy name: "off", "default", "most-stale",
	// "indiv-refs", "decay", or "melt" (the disk-offloading baseline).
	Policy string
	// DiskLimit sizes the simulated disk for the "melt" policy
	// (0 = offload.DefaultDiskFactor x the heap limit).
	DiskLimit uint64
	// HeapLimit overrides the program's default heap (0 = default).
	HeapLimit uint64
	// MaxIters caps the run (0 = DefaultMaxIters).
	MaxIters int
	// MaxDuration caps the run's wall-clock time (0 = no cap).
	MaxDuration time.Duration
	// FullHeapOnly selects the paper's option (1) prune trigger.
	FullHeapOnly bool
	// BarriersOff disables read barriers entirely — the Figure 6 baseline.
	// Only valid with Policy "off".
	BarriersOff bool
	// ForceState pins the controller state for overhead measurement:
	// "" (off), "observe", or "select" (Figures 6–7).
	ForceState string
	// BarrierVariant selects the barrier code shape: "" or "conditional"
	// (default), or "unconditional".
	BarrierVariant string
	// GCWorkers sets tracer parallelism (0 = default).
	GCWorkers int
	// Generational enables nursery (minor) collections.
	Generational bool
	// RecordIterTimes keeps the per-iteration duration series.
	RecordIterTimes bool
	// Injector arms deterministic fault injection for the run (nil = off).
	Injector *faultinject.Injector
	// AuditEveryGC runs the full heap invariant audit inside every
	// collection's stop-the-world section (the chaos campaign's oracle).
	AuditEveryGC bool
	// STWWatchdog bounds a parallel trace closure before the collection
	// degrades to the serial tracer (0 = no deadline).
	STWWatchdog time.Duration
	// WorldLock selects the mutator/collector synchronization protocol:
	// "" or "safepoint" (default), or "rwmutex" (the legacy shared-lock
	// path, kept for equivalence runs).
	WorldLock string
	// MarkMode selects the closure strategy for every cycle mode: "" or
	// "stw" (default), or "concurrent" (mostly-concurrent marking behind
	// the SATB deletion barrier, including SELECT/PRUNE cycles against a
	// frozen staleness snapshot; requires the safepoint world lock).
	MarkMode string
	// HashLiveSet computes a live-set fingerprint inside every full
	// collection's final pause and records it in GCSample.LiveHash — the
	// cross-run equivalence probe the chaos campaign's concurrent-mark
	// scenarios key on.
	HashLiveSet bool
	// Obs attaches the observability layer (metrics + trace-event tracer)
	// to the run's VM; after Run returns, obs.WriteArtifacts exports the
	// trace and metrics snapshot. Nil disables it.
	Obs *obs.Obs
	// Record attaches an allocation-trace recorder: the run's mutator
	// operations, GC cycles, and iteration boundaries are recorded so the
	// run can be replayed (see Replay). Nil disables recording.
	Record *trace.Recorder
	// Verbose streams prune/OOM events to fn as they happen.
	Verbose func(format string, args ...any)
}

// DefaultMaxIters bounds runs that would otherwise go on forever (the
// paper's 24-hour terminations).
const DefaultMaxIters = 20000

// Result is everything one run measured.
type Result struct {
	Program    string
	Policy     string
	HeapLimit  uint64
	Iterations int
	Reason     EndReason
	Err        error

	Duration   time.Duration
	VMStats    vm.Stats
	Disk       heap.DiskStats
	Offload    offload.Stats
	GCSamples  []GCSample
	IterTimes  []time.Duration
	Prunes     []core.PruneEvent
	EdgeTypes  int
	FinalState core.State
	// AuditReport is the last invariant audit's violation list (nil if no
	// audit ran; empty means the final audit was clean).
	AuditReport []string
}

// Ratio returns this run's iterations relative to base's (Table 1/2's
// "runs N× longer").
func (r Result) Ratio(base Result) float64 {
	if base.Iterations == 0 {
		return 0
	}
	return float64(r.Iterations) / float64(base.Iterations)
}

// Capped reports whether the run ended healthy at a cap rather than dying.
func (r Result) Capped() bool {
	return r.Reason == EndIterCap || r.Reason == EndTimeCap || r.Reason == EndCompleted
}

// PolicyFromName maps harness policy names to core policies; "off" (or "",
// or "base") means pruning disabled.
func PolicyFromName(name string) (core.Policy, error) {
	switch name {
	case "", "off", "base", "none":
		return nil, nil
	}
	return core.PolicyByName(name)
}

// Run executes one configured run to completion.
func Run(cfg Config) (Result, error) {
	prog, err := workload.New(cfg.Program)
	if err != nil {
		return Result{}, err
	}
	melt := cfg.Policy == "melt"
	var policy core.Policy
	if !melt {
		policy, err = PolicyFromName(cfg.Policy)
		if err != nil {
			return Result{}, err
		}
	}
	heapLimit := cfg.HeapLimit
	if heapLimit == 0 {
		heapLimit = prog.DefaultHeap()
	}
	maxIters := cfg.MaxIters
	if maxIters == 0 {
		maxIters = DefaultMaxIters
	}

	res := Result{
		Program:   prog.Name(),
		Policy:    policyLabel(cfg.Policy),
		HeapLimit: heapLimit,
	}

	var iterNow atomic.Int64
	opts := vm.Options{
		HeapLimit:      heapLimit,
		Policy:         policy,
		EnableBarriers: !cfg.BarriersOff,
		FullHeapOnly:   cfg.FullHeapOnly,
		GCWorkers:      cfg.GCWorkers,
		FaultInjector:  cfg.Injector,
		AuditEveryGC:   cfg.AuditEveryGC,
		STWWatchdog:    cfg.STWWatchdog,
		Obs:            cfg.Obs,
		HashLiveSet:    cfg.HashLiveSet,
	}
	opts.Generational = cfg.Generational
	if melt {
		opts.OffloadDisk = cfg.DiskLimit
		if opts.OffloadDisk == 0 {
			opts.OffloadDisk = offload.DefaultDiskFactor * heapLimit
		}
	}
	if err := applyModeOptions(&opts, cfg.ForceState, cfg.BarrierVariant, cfg.WorldLock, cfg.MarkMode); err != nil {
		return Result{}, err
	}
	if cfg.Record != nil {
		flags := uint64(0)
		if cfg.HashLiveSet {
			flags |= trace.FlagHashLiveSet
		}
		if cfg.Generational {
			flags |= trace.FlagGenerational
		}
		if cfg.FullHeapOnly {
			flags |= trace.FlagFullHeapOnly
		}
		if cfg.BarriersOff {
			flags |= trace.FlagBarriersOff
		}
		cfg.Record.SetMeta(trace.Meta{
			Program:        prog.Name(),
			Policy:         policyLabel(cfg.Policy),
			WorldLock:      orDefault(cfg.WorldLock, "safepoint"),
			MarkMode:       orDefault(cfg.MarkMode, "stw"),
			BarrierVariant: orDefault(cfg.BarrierVariant, "conditional"),
			ForceState:     cfg.ForceState,
			HeapLimit:      heapLimit,
			Flags:          flags,
		})
		opts.TraceRecorder = cfg.Record
	}
	opts.OnGC = func(ev vm.Event) {
		res.GCSamples = append(res.GCSamples, GCSample{
			GCIndex:    ev.Result.Index,
			Iteration:  int(iterNow.Load()),
			BytesLive:  ev.Heap.BytesUsed,
			State:      ev.State,
			Mode:       ev.Result.Mode.String(),
			GCTime:     ev.Result.Duration,
			LiveHash:   ev.LiveHash,
			Candidates: ev.Result.Candidates,
			Pruned:     ev.Result.PrunedRefs,
			Degraded:   ev.Result.Degraded,
		})
	}
	if cfg.Verbose != nil {
		opts.OnPrune = func(ev core.PruneEvent) {
			cfg.Verbose("  [gc %d, iter %d] pruned %d refs: %s (freed %d bytes)",
				ev.GCIndex, iterNow.Load(), ev.PrunedRefs, ev.Selection, ev.BytesFreed)
		}
		opts.OnOOM = func(oom *vmerrors.OutOfMemoryError) {
			cfg.Verbose("  [iter %d] out-of-memory warning recorded: %v", iterNow.Load(), oom)
		}
	}
	machine := vm.New(opts)

	start := time.Now()
	deadline := time.Time{}
	if cfg.MaxDuration > 0 {
		deadline = start.Add(cfg.MaxDuration)
	}

	runErr := machine.RunThread("main", func(t *vm.Thread) {
		t.Scope(func() { prog.Setup(t) })
		for iter := 0; iter < maxIters; iter++ {
			iterNow.Store(int64(iter))
			t.MarkIteration(iter)
			t0 := time.Now()
			done := false
			// Each iteration runs in its own scope so the local references
			// it accumulates stop being roots at the iteration boundary.
			t.Scope(func() { done = prog.Iterate(t, iter) })
			if cfg.RecordIterTimes {
				res.IterTimes = append(res.IterTimes, time.Since(t0))
			}
			res.Iterations = iter + 1
			if done {
				res.Reason = EndCompleted
				return
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				res.Reason = EndTimeCap
				return
			}
		}
		res.Reason = EndIterCap
	})

	res.Duration = time.Since(start)
	res.Err = runErr
	if runErr != nil {
		var ie *vmerrors.InternalError
		switch {
		case errors.As(runErr, &ie):
			res.Reason = EndPoisonTrap
		case vmerrors.IsOOM(runErr):
			res.Reason = EndOOM
		case vmerrors.IsOffload(runErr):
			res.Reason = EndOffloadFault
		default:
			return res, fmt.Errorf("harness: unexpected error from %s: %w", prog.Name(), runErr)
		}
	}
	res.VMStats = machine.Stats()
	res.Disk = machine.Disk()
	res.Offload = machine.OffloadStats()
	res.Prunes = machine.PruneEvents()
	res.EdgeTypes = machine.EdgeTable().Len()
	res.FinalState = machine.State()
	res.AuditReport = machine.LastAudit()
	return res, nil
}

func policyLabel(name string) string {
	switch name {
	case "", "off", "base", "none":
		return "base"
	}
	return name
}

// orDefault normalizes an empty mode selector to its default's name.
func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// applyModeOptions maps the harness's string-typed mode selectors
// (forced controller state, barrier variant, world lock, mark mode) onto
// vm.Options — shared by Run and Replay.
func applyModeOptions(opts *vm.Options, forceState, barrierVariant, worldLock, markMode string) error {
	switch forceState {
	case "":
	case "observe":
		opts.Forced, opts.ForceState = true, core.StateObserve
	case "select":
		opts.Forced, opts.ForceState = true, core.StateSelect
	default:
		return fmt.Errorf("harness: unknown forced state %q", forceState)
	}
	switch barrierVariant {
	case "", "conditional":
	case "unconditional":
		opts.Barrier = vm.BarrierUnconditional
	default:
		return fmt.Errorf("harness: unknown barrier variant %q", barrierVariant)
	}
	switch worldLock {
	case "", "safepoint":
	case "rwmutex":
		opts.WorldLock = vm.WorldRWMutex
	default:
		return fmt.Errorf("harness: unknown world-lock mode %q", worldLock)
	}
	switch markMode {
	case "", "stw":
	case "concurrent":
		opts.MarkMode = vm.MarkConcurrent
	default:
		return fmt.Errorf("harness: unknown mark mode %q", markMode)
	}
	return nil
}

// DiskExhausted reports whether a melt run's disk budget was the binding
// constraint when it ended.
func (r Result) DiskExhausted() bool {
	return r.Offload.DiskFullHits > 0
}

// Describe renders a one-line summary of the run.
func (r Result) Describe() string {
	extra := ""
	if r.Err != nil {
		extra = fmt.Sprintf(" (%v)", r.Err)
	}
	return fmt.Sprintf("%s/%s: %d iterations, %s%s, %d prunes over %d edge types, %v",
		r.Program, r.Policy, r.Iterations, r.Reason, extra, len(r.Prunes), r.EdgeTypes, r.Duration.Round(time.Millisecond))
}
