package harness

import (
	"testing"
	"time"
)

// TestSmokeListLeak checks the core paper result end to end: under the base
// configuration ListLeak dies of memory exhaustion quickly, while the
// default leak-pruning policy keeps it running to the iteration cap.
func TestSmokeListLeak(t *testing.T) {
	base, err := Run(Config{Program: "listleak", Policy: "off", MaxIters: 5000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("base: %s", base.Describe())
	if base.Reason != EndOOM {
		t.Fatalf("base run should exhaust memory, got %s", base.Reason)
	}

	pruned, err := Run(Config{Program: "listleak", Policy: "default", MaxIters: 5000, MaxDuration: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("default: %s", pruned.Describe())
	if !pruned.Capped() {
		t.Fatalf("default run should reach the cap, got %s (%v)", pruned.Reason, pruned.Err)
	}
	if ratio := pruned.Ratio(base); ratio < 5 {
		t.Fatalf("default should run much longer than base, ratio %.1f", ratio)
	}
}
