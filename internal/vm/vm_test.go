package vm

import (
	"errors"
	"strings"
	"testing"

	"leakpruning/internal/core"
	"leakpruning/internal/heap"
	"leakpruning/internal/vmerrors"
)

func newVM(t *testing.T, opts Options) *VM {
	t.Helper()
	if opts.HeapLimit == 0 {
		opts.HeapLimit = 1 << 20
	}
	if opts.GCWorkers == 0 {
		opts.GCWorkers = 1
	}
	return New(opts)
}

func TestAllocLoadStoreRoundTrip(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true})
	pair := v.DefineClass("Pair", 2, 0)
	err := v.RunThread("main", func(th *Thread) {
		a := th.New(pair)
		b := th.New(pair)
		th.Store(a, 0, b)
		if got := th.Load(a, 0); got != b {
			t.Errorf("Load = %v, want %v", got, b)
		}
		if got := th.Load(a, 1); !got.IsNull() {
			t.Errorf("empty slot = %v", got)
		}
		if th.ClassOf(a) != "Pair" {
			t.Errorf("ClassOf = %q", th.ClassOf(a))
		}
		if th.NumRefs(a) != 2 {
			t.Errorf("NumRefs = %d", th.NumRefs(a))
		}
		if th.SizeOf(a) != heap.ObjectSize(2, 0) {
			t.Errorf("SizeOf = %d", th.SizeOf(a))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGlobalsAreRoots(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true})
	node := v.DefineClass("Node", 0, 0)
	g := v.AddGlobal()
	err := v.RunThread("main", func(th *Thread) {
		th.StoreGlobal(g, th.New(node))
	})
	if err != nil {
		t.Fatal(err)
	}
	v.Collect()
	if v.HeapStats().ObjectsUsed != 1 {
		t.Fatal("global-referenced object was collected")
	}
	// Clearing the global makes it garbage.
	err = v.RunThread("main", func(th *Thread) { th.StoreGlobal(g, heap.Null) })
	if err != nil {
		t.Fatal(err)
	}
	v.Collect()
	if v.HeapStats().ObjectsUsed != 0 {
		t.Fatal("unreferenced object survived")
	}
}

func TestFrameSlotsAreRoots(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true})
	node := v.DefineClass("Node", 0, 0)
	_ = v.RunThread("main", func(th *Thread) {
		th.InFrame(1, func(f *Frame) {
			f.Set(0, th.New(node))
			v.Collect()
			if v.HeapStats().ObjectsUsed != 1 {
				t.Error("frame-rooted object was collected")
			}
		})
	})
}

func TestLocalRefsAreRoots(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true})
	node := v.DefineClass("Node", 0, 0)
	_ = v.RunThread("main", func(th *Thread) {
		r := th.New(node) // held only in a Go local
		v.Collect()
		if _, ok := v.heap.Lookup(r.ID()); !ok {
			t.Error("local reference was not a root (register-root model violated)")
		}
	})
}

func TestScopeReleasesLocals(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true})
	node := v.DefineClass("Node", 0, 0)
	_ = v.RunThread("main", func(th *Thread) {
		th.Scope(func() {
			th.New(node)
		})
		v.Collect()
		if v.HeapStats().ObjectsUsed != 0 {
			t.Error("scope-local reference survived its scope")
		}
	})
}

func TestBarrierColdPathClearsTagAndStaleness(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true})
	node := v.DefineClass("Node", 1, 0)
	g := v.AddGlobal()
	_ = v.RunThread("main", func(th *Thread) {
		a := th.New(node)
		b := th.New(node)
		th.Store(a, 0, b)
		th.StoreGlobal(g, a)
		// Manually arm the barrier the way an OBSERVE collection would.
		v.heap.Get(a).SetRef(0, b.WithStale())
		v.heap.Get(b).SetStale(4)

		before := v.Stats().BarrierHits
		got := th.Load(a, 0)
		if got != b {
			t.Errorf("Load through armed barrier = %v", got)
		}
		if v.Stats().BarrierHits != before+1 {
			t.Error("cold path did not fire")
		}
		if v.heap.Get(a).Ref(0).IsStaleTagged() {
			t.Error("cold path must clear the tag")
		}
		if v.heap.Get(b).Stale() != 0 {
			t.Error("cold path must reset the target's stale counter")
		}
		// Second load: fast path only.
		before = v.Stats().BarrierHits
		th.Load(a, 0)
		if v.Stats().BarrierHits != before {
			t.Error("barrier fired twice for one tagging")
		}
	})
}

func TestBarrierUpdatesEdgeTableWhenObserving(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true, Policy: core.DefaultPolicy{}, Forced: false})
	node := v.DefineClass("Node", 1, 0)
	g := v.AddGlobal()
	_ = v.RunThread("main", func(th *Thread) {
		a := th.New(node)
		b := th.New(node)
		th.Store(a, 0, b)
		th.StoreGlobal(g, a)
		// Force the controller into OBSERVE by exceeding 50% fullness.
		filler := v.DefineClass("Filler", 0, 1<<19)
		th.New(filler)
		v.Collect()
		if v.State() != core.StateObserve {
			t.Fatalf("state = %v, want OBSERVE", v.State())
		}
		v.heap.Get(a).SetRef(0, b.WithStale())
		v.heap.Get(b).SetStale(5)
		th.Load(a, 0)
		if got := v.EdgeTable().MaxStaleUseFor(node, node); got != 5 {
			t.Errorf("maxStaleUse = %d, want 5", got)
		}
	})
}

func TestPoisonTrapRaisesInternalError(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true})
	node := v.DefineClass("Node", 1, 0)
	err := v.RunThread("main", func(th *Thread) {
		a := th.New(node)
		b := th.New(node)
		th.Store(a, 0, b)
		v.heap.Get(a).SetRef(0, b.WithPoison())
		th.Load(a, 0)
		t.Error("Load of a poisoned reference must not return")
	})
	var ie *vmerrors.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want InternalError", err)
	}
	if ie.SourceClass != "Node" {
		t.Fatalf("source class = %q", ie.SourceClass)
	}
	if v.Stats().PoisonTraps != 1 {
		t.Fatal("poison trap counter not bumped")
	}
}

func TestOOMWithoutPruning(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true, HeapLimit: 4096})
	blob := v.DefineClass("Blob", 0, 1024)
	g := v.AddGlobal()
	gi := 0
	err := v.RunThread("main", func(th *Thread) {
		chain := v.DefineClass("Chain", 2, 0)
		_ = chain
		for i := 0; ; i++ {
			r := th.New(blob)
			// Keep everything alive through globals.
			if gi == 0 {
				th.StoreGlobal(g, r)
				gi++
			} else {
				keep := th.New(v.DefineClass("Holder", 2, 0))
				th.Store(keep, 0, th.LoadGlobal(g))
				th.Store(keep, 1, r)
				th.StoreGlobal(g, keep)
			}
		}
	})
	if !vmerrors.IsOOM(err) {
		t.Fatalf("err = %v, want OutOfMemoryError", err)
	}
	var oom *vmerrors.OutOfMemoryError
	errors.As(err, &oom)
	if oom.HeapLimit != 4096 {
		t.Fatalf("OOM heap limit = %d", oom.HeapLimit)
	}
}

func TestFinalizersRunOnCollection(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true})
	node := v.DefineClass("Node", 0, 32)
	var finalized []string
	_ = v.RunThread("main", func(th *Thread) {
		th.Scope(func() {
			r := th.New(node)
			v.SetFinalizer(r, func(info FinalizerInfo) {
				finalized = append(finalized, info.Class)
			})
		})
	})
	v.Collect()
	if len(finalized) != 1 || finalized[0] != "Node" {
		t.Fatalf("finalized = %v", finalized)
	}
	if v.Stats().FinalizersRun != 1 {
		t.Fatal("finalizer counter wrong")
	}
	// Clearing a finalizer prevents it from running.
	_ = v.RunThread("main", func(th *Thread) {
		th.Scope(func() {
			r := th.New(node)
			v.SetFinalizer(r, func(FinalizerInfo) { t.Error("cleared finalizer ran") })
			v.SetFinalizer(r, nil)
		})
	})
	v.Collect()
}

func TestThreadStacksPersistUntilExit(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true})
	node := v.DefineClass("Node", 0, 0)
	leaked := v.NewThread("leaked")
	_ = v.RunThread("main", func(th *Thread) {
		f := leaked.PushFrame(1)
		f.Set(0, th.New(node))
	})
	v.Collect()
	if v.HeapStats().ObjectsUsed != 1 {
		t.Fatal("leaked thread's stack must pin its objects (the Mckoi leak)")
	}
	leaked.Exit()
	v.Collect()
	if v.HeapStats().ObjectsUsed != 0 {
		t.Fatal("exited thread's stack must stop being a root")
	}
	leaked.Exit() // idempotent
}

func TestRunThreadConvertsTrapsOnly(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true})
	defer func() {
		if recover() == nil {
			t.Fatal("non-VM panic must propagate out of RunThread")
		}
	}()
	_ = v.RunThread("main", func(th *Thread) { panic("app bug") })
}

func TestOptionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pruning without barriers must be rejected")
		}
	}()
	New(Options{HeapLimit: 1 << 20, Policy: core.DefaultPolicy{}, EnableBarriers: false})
}

func TestSoftTriggerCollectsBeforeExhaustion(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true, HeapLimit: 1 << 20})
	blob := v.DefineClass("Blob", 0, 4096)
	_ = v.RunThread("main", func(th *Thread) {
		for i := 0; i < 400; i++ {
			th.Scope(func() { th.New(blob) }) // all garbage
		}
	})
	st := v.Stats()
	if st.Collections == 0 {
		t.Fatal("soft trigger never collected despite heavy churn")
	}
	if v.HeapStats().BytesUsed > v.HeapLimit()/2 {
		t.Fatal("garbage accumulated past the trigger")
	}
}

func TestSoftTriggerFormula(t *testing.T) {
	const limit = 1 << 20
	if got := softTrigger(0, limit); got != limit/4 {
		t.Fatalf("softTrigger(0) = %d, want %d", got, limit/4)
	}
	// Near-full: step floors at limit/32 and caps at the limit.
	if got := softTrigger(limit-100, limit); got != limit {
		t.Fatalf("softTrigger(near-full) = %d, want %d", got, limit)
	}
	mid := uint64(limit / 2)
	if got := softTrigger(mid, limit); got != mid+limit/8 {
		t.Fatalf("softTrigger(half) = %d", got)
	}
}

func TestPruningEndToEndSmall(t *testing.T) {
	// A minimal leak: a global chain of Holder -> Payload where payloads
	// are never read. Pruning must keep the program allocating forever
	// within a heap that the base configuration exhausts.
	run := func(policy core.Policy) error {
		opts := Options{EnableBarriers: true, HeapLimit: 256 << 10, GCWorkers: 1, Policy: policy}
		v := New(opts)
		holder := v.DefineClass("Holder", 2, 0)
		payload := v.DefineClass("Payload", 0, 2048)
		scratch := v.DefineClass("Scratch", 0, 64)
		g := v.AddGlobal()
		return v.RunThread("main", func(th *Thread) {
			for i := 0; i < 2000; i++ {
				th.Scope(func() {
					h := th.New(holder)
					p := th.New(payload)
					th.Store(h, 0, p)
					th.Store(h, 1, th.LoadGlobal(g))
					th.StoreGlobal(g, h)
					for j := 0; j < 4; j++ {
						th.New(scratch)
					}
				})
			}
		})
	}
	if err := run(nil); !vmerrors.IsOOM(err) {
		t.Fatalf("base run: err = %v, want OOM", err)
	}
	if err := run(core.DefaultPolicy{}); err != nil {
		t.Fatalf("pruning run died: %v", err)
	}
}

func TestVMString(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true, Policy: core.DefaultPolicy{}})
	s := v.String()
	for _, want := range []string{"pruning=default", "heap=1MB"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
