package vm

import (
	"fmt"

	"leakpruning/internal/heap"
)

// VM-level invariant auditor. heap.Audit cross-checks the allocator's
// accounting against the object table; verifyLocked layers the VM-visible
// invariants on top:
//
//   - no freed slot is reachable from the roots (thread frames + globals);
//   - every reference held by a live object either targets a live object or
//     is poison-tagged — a dangling reference without poison is exactly the
//     use-after-free leak pruning's poisoning discipline exists to prevent;
//   - immediately after a full collection, every live object's mark word
//     holds the collection's epoch (sweep completeness: an unmarked
//     survivor would be invisible garbage, a stale-marked one a sweep bug).
//
// The mark check is only meaningful in the window after a collection and
// before the next allocation, so only the AuditEveryGC path (which runs
// inside the collection's stop-the-world section) enables it; the public
// Verify, callable at any quiescent point, skips it.

// Verify stops the world, audits the heap's internal accounting
// (heap.Audit) plus the VM-level reachability and poisoning invariants, and
// returns the violations found (empty means sound). It also records the
// report for LastAudit and the Stats counters.
func (v *VM) Verify() []string {
	v.stopTheWorld()
	defer v.startTheWorld()
	return v.verifyLocked(false)
}

// verifyLocked runs the audit. Caller has stopped the world.
// checkMarks additionally asserts post-collection mark-word hygiene and
// must only be set when no allocation has happened since the last full
// collection.
func (v *VM) verifyLocked(checkMarks bool) []string {
	v.flushTLABs()
	violations := v.heap.Audit()

	// Ground truth: the set of live object IDs.
	next := v.heap.MaxID()
	live := make([]bool, next)
	epoch := v.collector.Epoch()
	v.heap.ForEach(func(id heap.ObjectID, obj *heap.Object) {
		live[id] = true
		if checkMarks && !obj.Marked(epoch) {
			violations = append(violations,
				fmt.Sprintf("object %d survived the sweep without epoch-%d mark", id, epoch))
		}
	})

	// Dangling-reference sweep: every outgoing reference of every live
	// object must be null, poisoned, or aimed at a live object.
	v.heap.ForEach(func(id heap.ObjectID, obj *heap.Object) {
		for slot, n := 0, obj.NumRefs(); slot < n; slot++ {
			r := obj.Ref(slot)
			if r.IsNull() || r.IsPoisoned() {
				continue
			}
			if tid := r.ID(); tid >= next || !live[tid] {
				violations = append(violations,
					fmt.Sprintf("object %d slot %d holds un-poisoned dangling reference to freed slot %d",
						id, slot, r.ID()))
			}
		}
	})

	// Root reachability: walk the non-poisoned transitive closure from the
	// roots and assert it never enters a freed slot. (Roots are untagged,
	// but heap references along the way may carry the stale tag.)
	visited := make([]bool, next)
	var stack []heap.ObjectID
	enter := func(r heap.Ref, from string) {
		if r.IsNull() || r.IsPoisoned() {
			return
		}
		id := r.ID()
		if id >= next || !live[id] {
			violations = append(violations,
				fmt.Sprintf("freed slot %d reachable from %s", id, from))
			return
		}
		if !visited[id] {
			visited[id] = true
			stack = append(stack, id)
		}
	}
	(*rootVisitor)(v).VisitRoots(func(r heap.Ref) { enter(r, "roots") })
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		obj, ok := v.heap.Lookup(id)
		if !ok {
			continue // already reported by enter
		}
		for slot, n := 0, obj.NumRefs(); slot < n; slot++ {
			enter(obj.Ref(slot), fmt.Sprintf("object %d slot %d", id, slot))
		}
	}

	v.auditsRun.Add(1)
	v.auditViolations.Add(uint64(len(violations)))
	v.auditMu.Lock()
	// Non-nil even when clean: LastAudit distinguishes "never audited"
	// (nil) from "last audit found nothing" (empty).
	v.lastAudit = append([]string{}, violations...)
	v.auditMu.Unlock()
	return violations
}
