package vm

import (
	"time"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/gc"
)

// collectConcurrent runs one full collection cycle in mostly-concurrent
// mark mode (Options.MarkMode == MarkConcurrent). Caller holds cycleMu.
//
// Every cycle mode is split into three short pauses with the expensive
// phases running while mutators execute:
//
//	pause 1  plan the cycle — for SELECT/PRUNE this freezes the edge
//	         table's staleness snapshot (core.Controller.PlanCycle) —
//	         snapshot roots (gc.StartConcurrent), arm black allocation and
//	         the SATB deletion barriers
//	         ... concurrent mark (gc.RunMark; SELECT also runs the stale
//	         closure here) ...
//	pause 2  drain the SATB buffers, final remark (gc.FinishMark): finish
//	         the closure, verify deferred SELECT/PRUNE decisions against
//	         the frozen snapshot (drifted edges are demoted per-edge) —
//	         or degrade to a fresh fully-STW closure on any fault
//	         ... concurrent sweep (gc.Sweep) ...
//	pause 3  promotion, triggers, controller transition (SELECT scoring,
//	         PRUNE bookkeeping), OnGC
//
// Exhaustion-driven collections (allocSlow) still take the one-pause STW
// path in both mark modes: they run because the heap is full, so there is
// no mutator progress to protect.
func (v *VM) collectConcurrent() gc.Result {
	var (
		cm     *gc.ConcurrentMark
		pause1 time.Duration
	)
	// Pause 1 — snapshot. Each pause body holds the world via its own defer
	// so a panicking callback cannot leave the world stopped.
	func() {
		t0 := time.Now()
		v.stopTheWorld()
		defer v.startTheWorld()
		plan := v.preparePlan()
		cm = v.collector.StartConcurrent(plan)
		// Everything allocated from here to the end of the cycle is born
		// black on the cycle's epoch, so neither the marker nor the sweeper
		// ever needs to see it.
		v.heap.SetAllocMarkEpoch(cm.Epoch())
		v.armSATB()
		v.gcActive.Store(true)
		pause1 = time.Since(t0)
	}()

	// The closure over the snapshot runs with the world started; at
	// GOMAXPROCS=1 its workers interleave with mutators through the Go
	// scheduler. Mutators may allocate (born black) and overwrite references
	// (logged by the SATB barrier) freely.
	cm.RunMark()

	// Pause 2 — final remark: hand the marker everything the deletion
	// barriers logged plus a fresh root snapshot, and drive the closure to
	// termination. Any fault — a detected barrier drop, a worker panic, an
	// abort — makes FinishMark bump the epoch and re-run the whole closure
	// serially under this pause: exactly the STW oracle, just inside a
	// longer pause.
	pause2 := func() time.Duration {
		t0 := time.Now()
		v.stopTheWorld()
		defer v.startTheWorld()
		grays := v.drainSATB()
		cause := ""
		if v.satbDropped.Load() {
			cause = "satb-drop"
		}
		cm.FinishMark(grays, cause)
		// Re-arm black allocation on the cycle's epoch — FinishMark may have
		// bumped it while degrading, which invalidated every earlier mark
		// including the born-black ones. Objects allocated during the
		// concurrent sweep below must be born black on the final epoch so
		// the sweeper cannot free them.
		v.heap.SetAllocMarkEpoch(cm.Epoch())
		if v.inj.Should(faultinject.RemarkStall) {
			// A remark that is slow to finish: stretches this pause without
			// changing any observable result.
			safepointStall()
		}
		if cm.Mode() == gc.ModePrune && v.inj.Should(faultinject.PruneRemarkStall) {
			// A slow deferred-poisoning verification pass: stretches the
			// PRUNE final pause without changing any observable result.
			safepointStall()
		}
		return time.Since(t0)
	}()

	// Concurrent sweep: unmarked objects are unreachable (the SATB
	// argument), so reclaiming them under the shard locks is invisible to
	// mutators. Finalizers run here, outside any pause.
	cm.Sweep()

	// Pause 3 — close out the cycle.
	t0 := time.Now()
	v.stopTheWorld()
	defer v.startTheWorld()
	v.heap.SetAllocMarkEpoch(0)
	v.gcActive.Store(false)
	res := cm.Finish()
	return v.finishCollect(res, []time.Duration{pause1, pause2}, t0)
}
