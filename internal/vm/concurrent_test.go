package vm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"leakpruning/internal/core"
	"leakpruning/internal/faultinject"
	"leakpruning/internal/gc"
	"leakpruning/internal/heap"
	"leakpruning/internal/vmerrors"
)

// markCycle is what one collection looked like to the equivalence check.
// The per-cycle live-set fingerprint comes from liveSetHash (livehash.go),
// called from OnGC, i.e. inside the cycle's final stop-the-world pause.
type markCycle struct {
	mode     string
	live     uint64 // liveSetHash after the cycle
	cands    int
	pruned   int
	pauses   int
	degraded bool
}

// markEquivalenceRun executes the deterministic single-threaded leak
// workload (the TestWorldLockEquivalence program) under the given mark mode
// and returns a fingerprint every mode must agree on: per-cycle live-set
// hashes, SELECT candidate counts, PRUNE decisions, the prune event log,
// and the post-mortem probe walks. Pause structure and degradation are
// reported separately via cycles, since those are exactly what the modes
// are allowed to differ on.
func markEquivalenceRun(t *testing.T, mode MarkMode, inj *faultinject.Injector) (string, []markCycle, Stats) {
	t.Helper()
	var cycles []markCycle
	var v *VM
	v = New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		Policy:         core.DefaultPolicy{},
		MarkMode:       mode,
		FaultInjector:  inj,
		OnGC: func(ev Event) {
			cycles = append(cycles, markCycle{
				mode:     ev.Result.Mode.String(),
				live:     liveSetHash(v.heap),
				cands:    ev.Result.Candidates,
				pruned:   ev.Result.PrunedRefs,
				pauses:   len(ev.Pauses),
				degraded: ev.Result.Degraded,
			})
		},
	})
	holder := v.DefineClass("Holder", 2, 0)
	payload := v.DefineClass("Payload", 0, 2048)
	scratch := v.DefineClass("Scratch", 0, 64)
	g := v.AddGlobal()
	err := v.RunThread("leaker", func(th *Thread) {
		for i := 0; i < 1500; i++ {
			th.Scope(func() {
				h := th.New(holder)
				th.Store(h, 0, th.New(payload))
				th.Store(h, 1, th.LoadGlobal(g))
				th.StoreGlobal(g, h)
				for j := 0; j < 4; j++ {
					th.New(scratch)
				}
			})
		}
	})
	if err != nil {
		t.Fatalf("mark mode %v: leak workload died: %v", mode, err)
	}

	fp := ""
	for i, c := range cycles {
		fp += fmt.Sprintf("[%d %s live=%x cands=%d pruned=%d]", i, c.mode, c.live, c.cands, c.pruned)
	}
	st := v.Stats()
	for _, ev := range v.PruneEvents() {
		fp += fmt.Sprintf("{gc%d %s refs=%d bytes=%d}", ev.GCIndex, ev.Selection, ev.PrunedRefs, ev.BytesFreed)
	}
	for i := 0; i < 3; i++ {
		fp += fmt.Sprintf("%d=%q;", i, equivalenceProbe(v, g))
	}
	if v.Stats().PoisonTraps == 0 {
		t.Fatalf("mark mode %v: probes never hit a pruned edge", mode)
	}
	fp += fmt.Sprintf("collections=%d pruned=%d", st.Collections, st.PrunedRefs)
	if viol := v.Verify(); len(viol) != 0 {
		t.Fatalf("mark mode %v: heap invariants violated: %v", mode, viol)
	}
	return fp, cycles, st
}

// TestMarkModeEquivalence is the concurrent path's correctness oracle: the
// same deterministic leak workload, run fully-STW and mostly-concurrent,
// must produce byte-identical live sets after every collection, identical
// SELECT candidate counts, identical PRUNE poison decisions, and identical
// trap sequences when the pruned structure is probed — the mark mode must
// be invisible to program semantics. A concurrent re-run checks the mode
// against itself for determinism, and the pause structure is asserted on
// the side: every concurrent-mode cycle — normal, SELECT, and PRUNE —
// gets three short pauses (SELECT/PRUNE run their candidate selection and
// deferred poisoning against the frozen staleness snapshot).
func TestMarkModeEquivalence(t *testing.T) {
	stw, stwCycles, _ := markEquivalenceRun(t, MarkSTW, nil)
	con, conCycles, _ := markEquivalenceRun(t, MarkConcurrent, nil)
	if stw != con {
		t.Fatalf("mark modes diverged:\nstw:        %s\nconcurrent: %s", stw, con)
	}
	if again, _, _ := markEquivalenceRun(t, MarkConcurrent, nil); again != con {
		t.Fatalf("concurrent run not deterministic:\nfirst:  %s\nsecond: %s", con, again)
	}
	for i, c := range stwCycles {
		if c.pauses != 1 {
			t.Fatalf("stw cycle %d: %d pauses, want 1", i, c.pauses)
		}
	}
	var normals, selects, prunes int
	for i, c := range conCycles {
		switch c.mode {
		case gc.ModeNormal.String():
			normals++
		case gc.ModeSelect.String():
			selects++
		case gc.ModePrune.String():
			prunes++
		}
		if c.pauses != 3 {
			t.Fatalf("concurrent cycle %d (%s): %d pauses, want 3", i, c.mode, c.pauses)
		}
		if c.degraded {
			t.Fatalf("concurrent cycle %d degraded without any fault armed", i)
		}
	}
	if normals == 0 || selects == 0 || prunes == 0 {
		t.Fatalf("workload drove %d normal / %d select / %d prune concurrent cycles; every mode must be exercised",
			normals, selects, prunes)
	}
}

// TestConcurrentDegradeEquivalence arms the SATB barrier-drop fault on
// every draw, so every concurrent cycle — normal, SELECT, and PRUNE alike —
// detects a lost buffer at the remark pause and degrades to a fresh
// fully-STW closure. The degraded runs must still reproduce the STW
// oracle's fingerprint exactly — the degradation path is a sound fallback,
// not a different collector — and for SELECT/PRUNE that covers discarding
// the deferred candidate/poisoning work and re-deriving it serially under
// the same frozen staleness cut.
func TestConcurrentDegradeEquivalence(t *testing.T) {
	stw, _, _ := markEquivalenceRun(t, MarkSTW, nil)
	inj := faultinject.New(1)
	inj.Arm(faultinject.SATBBarrierDrop, 1.0)
	con, cycles, st := markEquivalenceRun(t, MarkConcurrent, inj)
	if stw != con {
		t.Fatalf("degraded concurrent run diverged from the STW oracle:\nstw:      %s\ndegraded: %s", stw, con)
	}
	var degraded int
	for i, c := range cycles {
		if !c.degraded {
			t.Fatalf("cycle %d (%s) did not degrade with the drop fault armed on every draw", i, c.mode)
		}
		degraded++
	}
	if degraded == 0 || st.DegradedTraces != uint64(degraded) {
		t.Fatalf("DegradedTraces = %d, want %d (one per concurrent cycle)", st.DegradedTraces, degraded)
	}
}

// TestConcurrentSnapshotDriftDegrade arms the injected unresolvable
// snapshot drift on every draw: every concurrent SELECT and PRUNE remark
// must then bump the epoch and re-run the serial STW closure, while
// ModeNormal cycles (which have no snapshot to drift) complete
// concurrently. The fingerprint must still match the STW oracle — degrade
// re-derives selection and poisoning from the same frozen cut.
func TestConcurrentSnapshotDriftDegrade(t *testing.T) {
	stw, _, _ := markEquivalenceRun(t, MarkSTW, nil)
	inj := faultinject.New(7)
	inj.Arm(faultinject.SelectSnapshotDrift, 1.0)
	con, cycles, _ := markEquivalenceRun(t, MarkConcurrent, inj)
	if stw != con {
		t.Fatalf("drift-degraded run diverged from the STW oracle:\nstw:   %s\ndrift: %s", stw, con)
	}
	var degraded int
	for i, c := range cycles {
		isNormal := c.mode == gc.ModeNormal.String()
		if isNormal && c.degraded {
			t.Fatalf("cycle %d (normal) degraded; SelectSnapshotDrift must only hit SELECT/PRUNE remarks", i)
		}
		if !isNormal {
			if !c.degraded {
				t.Fatalf("cycle %d (%s) did not degrade with drift armed on every draw", i, c.mode)
			}
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("no SELECT/PRUNE cycles degraded; the drift path is untested")
	}
}

// TestConcurrentMarkStress is the multithreaded half of the soundness
// argument: 8 mutator goroutines store into a shared structure while
// concurrent cycles mark underneath them, so the SATB deletion barrier and
// black allocation actually carry load (single-threaded runs never store
// during a mark — the mutator is busy driving the cycle). AuditEveryGC
// checks the post-sweep heap inside every cycle's final pause; under -race
// this is the main evidence that SwapRef-based barrier logging and the
// buffer handoff at the remark pause are properly synchronized.
func TestConcurrentMarkStress(t *testing.T) {
	v := New(Options{
		HeapLimit:      2 << 20,
		EnableBarriers: true,
		GCWorkers:      2,
		Policy:         core.DefaultPolicy{},
		MarkMode:       MarkConcurrent,
		AuditEveryGC:   true,
	})
	node := v.DefineClass("Node", 2, 1024)
	scratch := v.DefineClass("Scratch", 0, 64)
	shared := v.AddGlobal()

	const workers = 8
	const iters = 400
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = v.RunThread(fmt.Sprintf("stress-%d", w), func(th *Thread) {
				for i := 0; i < iters; i++ {
					th.Scope(func() {
						n := th.New(node)
						th.Store(n, 0, th.LoadGlobal(shared))
						th.StoreGlobal(shared, n)
						cur := th.LoadGlobal(shared)
						for d := 0; d < 6 && !cur.IsNull(); d++ {
							next := th.Load(cur, 0)
							th.Store(cur, 1, next)
							cur = next
						}
						th.New(scratch)
						if i%100 == w {
							v.Collect()
						}
						if i%64 == 63 {
							th.StoreGlobal(shared, heap.Null)
						}
					})
				}
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err == nil {
			continue
		}
		var ie *vmerrors.InternalError
		if !errors.As(err, &ie) && !vmerrors.IsOOM(err) {
			t.Fatalf("worker %d: unexpected error: %v", w, err)
		}
	}
	st := v.Stats()
	if st.Collections == 0 {
		t.Fatal("expected collections under churn")
	}
	if st.AuditViolations != 0 {
		t.Fatalf("per-cycle audits found %d violations: %v", st.AuditViolations, v.LastAudit())
	}
	if violations := v.Verify(); len(violations) != 0 {
		t.Fatalf("heap invariants violated after stress: %v", violations)
	}
}

// TestMarkModeValidation: concurrent marking's configuration prerequisites
// are enforced at construction.
func TestMarkModeValidation(t *testing.T) {
	cases := []struct {
		name   string
		opts   Options
		option string
	}{
		{"unknown", Options{MarkMode: MarkMode(42)}, "MarkMode"},
		{"rwmutex", Options{MarkMode: MarkConcurrent, WorldLock: WorldRWMutex}, "MarkMode+WorldLock"},
		{"offload", Options{MarkMode: MarkConcurrent, OffloadDisk: 1 << 20, EnableBarriers: true},
			"MarkMode+OffloadDisk"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected New to panic")
				}
				var oe *OptionError
				if err, ok := r.(error); !ok || !errors.As(err, &oe) || oe.Option != tc.option {
					t.Fatalf("unexpected panic: %v (want option %s)", r, tc.option)
				}
			}()
			New(tc.opts)
		})
	}
}
