package vm

import (
	"errors"
	"sync"
	"testing"

	"leakpruning/internal/core"
	"leakpruning/internal/edgetable"
	"leakpruning/internal/heap"
	"leakpruning/internal/vmerrors"
)

// TestConcurrentMutators runs several mutator goroutines, each with its own
// Thread, allocating and sharing objects through globals while collections
// interleave. Run with -race to exercise the synchronization story.
func TestConcurrentMutators(t *testing.T) {
	v := New(Options{HeapLimit: 4 << 20, EnableBarriers: true, GCWorkers: 4})
	node := v.DefineClass("Node", 2, 2048)
	shared := v.AddGlobal()

	const workers = 4
	const itersPerWorker = 300
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = v.RunThread("worker", func(th *Thread) {
				for i := 0; i < itersPerWorker; i++ {
					th.Scope(func() {
						n := th.New(node)
						// Publish through the shared global; other workers
						// may load and chase it concurrently.
						th.Store(n, 0, th.LoadGlobal(shared))
						th.StoreGlobal(shared, n)
						cur := th.LoadGlobal(shared)
						for d := 0; d < 8 && !cur.IsNull(); d++ {
							cur = th.Load(cur, 0)
						}
						// Drop the chain occasionally so the heap stays
						// bounded.
						if i%50 == 49 {
							th.StoreGlobal(shared, heap.Null)
						}
					})
				}
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if v.Stats().Collections == 0 {
		t.Fatal("expected collections under churn")
	}
}

// TestPoisonTrapCarriesAvertedOOM checks the full semantics chain: under
// the most-stale policy (which mispredicts by design), the eventual
// InternalError's cause must be the OutOfMemoryError recorded when the
// program first effectively exhausted memory.
func TestPoisonTrapCarriesAvertedOOM(t *testing.T) {
	v := New(Options{
		HeapLimit:      512 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		Policy:         core.MostStalePolicy{},
	})
	holder := v.DefineClass("Holder", 2, 0)
	payload := v.DefineClass("Payload", 0, 2048)
	session := v.DefineClass("Session", 0, 256)
	scratch := v.DefineClass("Scratch", 0, 64)
	g := v.AddGlobal()
	sg := v.AddGlobal()

	err := v.RunThread("main", func(th *Thread) {
		th.Scope(func() {
			s := th.New(session)
			h := th.New(holder)
			th.Store(h, 0, s)
			th.StoreGlobal(sg, h)
		})
		for i := 0; i < 100000; i++ {
			th.Scope(func() {
				h := th.New(holder)
				th.Store(h, 0, th.New(payload))
				th.Store(h, 1, th.LoadGlobal(g))
				th.StoreGlobal(g, h)
				for j := 0; j < 4; j++ {
					th.New(scratch)
				}
				if i%400 == 399 {
					// The rarely-used live session: most-stale will
					// eventually poison it, and this access traps.
					sh := th.LoadGlobal(sg)
					th.Load(sh, 0)
				}
			})
		}
	})
	if err == nil {
		t.Fatal("expected the most-stale policy to mispredict eventually")
	}
	var ie *vmerrors.InternalError
	if errors.As(err, &ie) {
		if ie.Cause == nil {
			t.Fatal("InternalError must carry the averted OOM as its cause")
		}
		if ie.Cause.HeapLimit == 0 && ie.Cause.BytesUsed == 0 {
			t.Fatal("averted OOM has no detail")
		}
	} else if !vmerrors.IsOOM(err) {
		t.Fatalf("unexpected error type: %v", err)
	}
}

// TestHeapNeverExceedsLimit: the hard bound holds at every collection
// sample, pruning or not — the paper's core claim of bounded resources.
func TestHeapNeverExceedsLimit(t *testing.T) {
	for _, policy := range []core.Policy{nil, core.DefaultPolicy{}} {
		limit := uint64(512 << 10)
		violated := false
		opts := Options{
			HeapLimit:      limit,
			EnableBarriers: true,
			GCWorkers:      1,
			Policy:         policy,
			OnGC: func(ev Event) {
				if ev.Heap.BytesUsed > limit {
					violated = true
				}
			},
		}
		v := New(opts)
		holder := v.DefineClass("Holder", 2, 0)
		payload := v.DefineClass("Payload", 0, 1024)
		g := v.AddGlobal()
		_ = v.RunThread("main", func(th *Thread) {
			for i := 0; i < 3000; i++ {
				th.Scope(func() {
					h := th.New(holder)
					th.Store(h, 0, th.New(payload))
					th.Store(h, 1, th.LoadGlobal(g))
					th.StoreGlobal(g, h)
				})
			}
		})
		if violated {
			t.Fatal("heap accounting exceeded the limit")
		}
		if v.HeapStats().BytesUsed > limit {
			t.Fatal("final heap above the limit")
		}
	}
}

// TestFullHeapOnlyEndToEnd: option (1) also tolerates the leak, just with a
// delayed first prune.
func TestFullHeapOnlyEndToEnd(t *testing.T) {
	v := New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		Policy:         core.DefaultPolicy{},
		FullHeapOnly:   true,
	})
	holder := v.DefineClass("Holder", 2, 0)
	payload := v.DefineClass("Payload", 0, 2048)
	scratch := v.DefineClass("Scratch", 0, 64)
	g := v.AddGlobal()
	err := v.RunThread("main", func(th *Thread) {
		for i := 0; i < 1500; i++ {
			th.Scope(func() {
				h := th.New(holder)
				th.Store(h, 0, th.New(payload))
				th.Store(h, 1, th.LoadGlobal(g))
				th.StoreGlobal(g, h)
				for j := 0; j < 4; j++ {
					th.New(scratch)
				}
			})
		}
	})
	if err != nil {
		t.Fatalf("FullHeapOnly run died: %v", err)
	}
	if v.Stats().PrunedRefs == 0 {
		t.Fatal("option (1) never pruned")
	}
	// The deferred OOM must be recorded with real exhaustion details.
	evs := v.PruneEvents()
	if len(evs) == 0 {
		t.Fatal("no prune events recorded")
	}
}

// TestPruneEventsAndEdgeTableConsistency: the pruned-reference totals agree
// between the controller's event log and the VM counters.
func TestPruneEventsAndEdgeTableConsistency(t *testing.T) {
	v := New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		Policy:         core.DefaultPolicy{},
	})
	holder := v.DefineClass("Holder", 2, 0)
	payload := v.DefineClass("Payload", 0, 2048)
	g := v.AddGlobal()
	_ = v.RunThread("main", func(th *Thread) {
		for i := 0; i < 1000; i++ {
			th.Scope(func() {
				h := th.New(holder)
				th.Store(h, 0, th.New(payload))
				th.Store(h, 1, th.LoadGlobal(g))
				th.StoreGlobal(g, h)
				th.New(v.DefineClass("Scratch", 0, 64))
			})
		}
	})
	var fromEvents uint64
	for _, ev := range v.PruneEvents() {
		fromEvents += uint64(ev.PrunedRefs)
	}
	if fromEvents == 0 {
		t.Fatal("no prunes happened")
	}
	if got := v.Stats().PrunedRefs; got != fromEvents {
		t.Fatalf("Stats.PrunedRefs = %d, events total %d", got, fromEvents)
	}
	var fromTable uint64
	v.EdgeTable().ForEach(func(e *edgetable.Entry) {
		fromTable += e.TimesPruned()
	})
	if fromTable != fromEvents {
		t.Fatalf("edge-table pruned total %d != events total %d", fromTable, fromEvents)
	}
}

// TestOffloadBaselineEndToEnd: the Melt-style baseline extends a dead leak
// by roughly the disk/heap ratio, faults objects back in on access, and
// dies with OOM once the disk budget is exhausted.
func TestOffloadBaselineEndToEnd(t *testing.T) {
	const heapLimit = 256 << 10
	run := func(disk uint64) (int, *VM, error) {
		v := New(Options{
			HeapLimit:      heapLimit,
			EnableBarriers: true,
			GCWorkers:      1,
			OffloadDisk:    disk,
		})
		holder := v.DefineClass("Holder", 2, 0)
		payload := v.DefineClass("Payload", 0, 2048)
		scratch := v.DefineClass("Scratch", 0, 64)
		g := v.AddGlobal()
		iters := 0
		err := v.RunThread("main", func(th *Thread) {
			for i := 0; i < 20000; i++ {
				iters = i + 1
				th.Scope(func() {
					h := th.New(holder)
					th.Store(h, 0, th.New(payload))
					th.Store(h, 1, th.LoadGlobal(g))
					th.StoreGlobal(g, h)
					for j := 0; j < 4; j++ {
						th.New(scratch)
					}
				})
			}
		})
		return iters, v, err
	}

	baseIters, _, baseErr := func() (int, *VM, error) {
		v := New(Options{HeapLimit: heapLimit, EnableBarriers: true, GCWorkers: 1})
		holder := v.DefineClass("Holder", 2, 0)
		payload := v.DefineClass("Payload", 0, 2048)
		g := v.AddGlobal()
		iters := 0
		err := v.RunThread("main", func(th *Thread) {
			for i := 0; i < 20000; i++ {
				iters = i + 1
				th.Scope(func() {
					h := th.New(holder)
					th.Store(h, 0, th.New(payload))
					th.Store(h, 1, th.LoadGlobal(g))
					th.StoreGlobal(g, h)
				})
			}
		})
		return iters, v, err
	}()
	if !vmerrors.IsOOM(baseErr) {
		t.Fatalf("base err = %v", baseErr)
	}

	meltIters, v, meltErr := run(3 * heapLimit)
	if !vmerrors.IsOOM(meltErr) {
		t.Fatalf("melt err = %v", meltErr)
	}
	ratio := float64(meltIters) / float64(baseIters)
	if ratio < 2.5 {
		t.Fatalf("offloading extended the run only %.1fx (base %d, melt %d)", ratio, baseIters, meltIters)
	}
	if v.OffloadStats().ObjectsMoved == 0 {
		t.Fatal("nothing was offloaded")
	}
	if v.OffloadStats().DiskFullHits == 0 {
		t.Fatal("the run should end because the disk filled")
	}
	if v.Disk().BytesUsed == 0 {
		t.Fatal("disk empty at the end")
	}
}

// TestOffloadFaultInOnAccess: touching an offloaded object brings it back
// and the program observes its references intact.
func TestOffloadFaultInOnAccess(t *testing.T) {
	v := New(Options{HeapLimit: 1 << 20, EnableBarriers: true, GCWorkers: 1, OffloadDisk: 1 << 20})
	node := v.DefineClass("Node", 1, 128)
	g := v.AddGlobal()
	err := v.RunThread("main", func(th *Thread) {
		a := th.New(node)
		b := th.New(node)
		th.Store(a, 0, b)
		th.StoreGlobal(g, a)
		// Force both out manually (as an offload round would).
		if err := v.heap.Offload(a.ID()); err != nil {
			t.Fatal(err)
		}
		if err := v.heap.Offload(b.ID()); err != nil {
			t.Fatal(err)
		}
		got := th.Load(a, 0) // faults `a` in; returns the ref to b
		if got != b {
			t.Fatalf("Load after offload = %v, want %v", got, b)
		}
		if v.heap.Get(a).IsOffloaded() {
			t.Fatal("source object still offloaded after access")
		}
		th.Store(got, 0, a) // faults b in for the write
		if v.heap.Get(b).IsOffloaded() {
			t.Fatal("written object still offloaded")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.OffloadStats().ObjectsFaults < 2 {
		t.Fatalf("fault-ins = %d", v.OffloadStats().ObjectsFaults)
	}
}

// TestOffloadOptionValidation: offloading is exclusive with pruning and
// needs barriers.
func TestOffloadOptionValidation(t *testing.T) {
	for _, opts := range []Options{
		{HeapLimit: 1 << 20, OffloadDisk: 1 << 20, EnableBarriers: true, Policy: core.DefaultPolicy{}},
		{HeapLimit: 1 << 20, OffloadDisk: 1 << 20, EnableBarriers: false},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("options %+v must be rejected", opts)
				}
			}()
			New(opts)
		}()
	}
}

// TestGenerationalModeEndToEnd: with the nursery enabled, transient garbage
// dies in minor collections (cheap) while full-heap collections — the
// staleness clock — stay rare; leak pruning still works on top.
func TestGenerationalModeEndToEnd(t *testing.T) {
	v := New(Options{
		HeapLimit:      1 << 20,
		EnableBarriers: true,
		GCWorkers:      1,
		Generational:   true,
	})
	temp := v.DefineClass("Temp", 0, 256)
	node := v.DefineClass("Node", 1, 64)
	g := v.AddGlobal()
	err := v.RunThread("main", func(th *Thread) {
		for i := 0; i < 4000; i++ {
			th.Scope(func() {
				th.New(temp) // nursery garbage
				if i%100 == 0 {
					n := th.New(node)
					th.Store(n, 0, th.LoadGlobal(g))
					th.StoreGlobal(g, n)
				}
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.MinorGCs == 0 {
		t.Fatal("no minor collections ran")
	}
	if st.MinorFrees == 0 {
		t.Fatal("minor collections freed nothing")
	}
	if st.MinorGCs <= st.Collections {
		t.Fatalf("minor collections (%d) should outnumber full ones (%d)", st.MinorGCs, st.Collections)
	}
	// The long-lived chain survives.
	if v.HeapStats().ObjectsUsed < 40 {
		t.Fatalf("live chain lost: %d objects", v.HeapStats().ObjectsUsed)
	}
}

// TestGenerationalWriteBarrierProtectsOldToYoung: storing a young object
// into an old one and dropping every other path to it must keep it alive
// across a minor collection.
func TestGenerationalWriteBarrierProtectsOldToYoung(t *testing.T) {
	v := New(Options{
		HeapLimit:      1 << 20,
		EnableBarriers: true,
		GCWorkers:      1,
		Generational:   true,
		NurserySize:    1, // every allocation fills the nursery
	})
	node := v.DefineClass("Node", 1, 64)
	g := v.AddGlobal()
	err := v.RunThread("main", func(th *Thread) {
		var old heap.Ref
		th.Scope(func() {
			old = th.New(node)
			th.StoreGlobal(g, old)
		})
		// Make it old: a forced full collection promotes it.
		v.Collect()
		if v.heap.Get(old).IsYoung() {
			t.Fatal("setup: object not promoted")
		}
		// Store a young object into the old one inside a scope, then leave
		// the scope so the heap edge is the only path.
		th.Scope(func() {
			young := th.New(node)
			th.Store(old, 0, young)
		})
		// Allocate enough to trigger minor collections.
		th.Scope(func() {
			for i := 0; i < 50; i++ {
				th.New(node)
			}
		})
		got := th.Load(old, 0)
		if got.IsNull() {
			t.Fatal("old->young edge lost")
		}
		// The object behind it must be intact (Load would panic on a freed
		// object; also verify its class).
		if th.ClassOf(got) != "Node" {
			t.Fatalf("class = %q", th.ClassOf(got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Stats().MinorGCs == 0 {
		t.Fatal("no minor collections ran during the test")
	}
}

// TestGenerationalWithPruning: the two features compose — pruning still
// tolerates a leak with the nursery enabled.
func TestGenerationalWithPruning(t *testing.T) {
	v := New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		Generational:   true,
		Policy:         core.DefaultPolicy{},
	})
	holder := v.DefineClass("Holder", 2, 0)
	payload := v.DefineClass("Payload", 0, 2048)
	scratch := v.DefineClass("Scratch", 0, 64)
	g := v.AddGlobal()
	err := v.RunThread("main", func(th *Thread) {
		for i := 0; i < 2000; i++ {
			th.Scope(func() {
				h := th.New(holder)
				th.Store(h, 0, th.New(payload))
				th.Store(h, 1, th.LoadGlobal(g))
				th.StoreGlobal(g, h)
				for j := 0; j < 4; j++ {
					th.New(scratch)
				}
			})
		}
	})
	if err != nil {
		t.Fatalf("generational + pruning run died: %v", err)
	}
	if v.Stats().PrunedRefs == 0 {
		t.Fatal("pruning never fired under generational mode")
	}
	if v.Stats().MinorGCs == 0 {
		t.Fatal("no minor collections under generational mode")
	}
}

// TestLazyBarriersActivateAtObserve: under LazyBarriers, the barrier cold
// path never runs while the controller is INACTIVE and arms itself when
// OBSERVE begins — after which pruning works exactly as with eager
// barriers.
func TestLazyBarriersActivateAtObserve(t *testing.T) {
	v := New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		LazyBarriers:   true,
		GCWorkers:      1,
		Policy:         core.DefaultPolicy{},
	})
	holder := v.DefineClass("Holder", 2, 0)
	payload := v.DefineClass("Payload", 0, 2048)
	scratch := v.DefineClass("Scratch", 0, 64)
	g := v.AddGlobal()
	err := v.RunThread("main", func(th *Thread) {
		// Phase 1: small working set, far below the 50% threshold. Loads
		// must never hit the barrier cold path.
		th.Scope(func() {
			h := th.New(holder)
			th.Store(h, 0, th.New(payload))
			th.StoreGlobal(g, h)
		})
		for i := 0; i < 50; i++ {
			th.Scope(func() {
				th.Load(th.LoadGlobal(g), 0)
				th.New(scratch)
			})
		}
		if hits := v.Stats().BarrierHits; hits != 0 {
			t.Errorf("barrier cold path ran %d times while INACTIVE", hits)
		}
		// Phase 2: leak until pruning engages. Walking a few links of the
		// chain loads references the collector has tagged, so the armed
		// barrier's cold path fires.
		for i := 0; i < 1500; i++ {
			th.Scope(func() {
				h := th.New(holder)
				th.Store(h, 0, th.New(payload))
				th.Store(h, 1, th.LoadGlobal(g))
				th.StoreGlobal(g, h)
				cur := th.LoadGlobal(g)
				for d := 0; d < 4 && !cur.IsNull(); d++ {
					cur = th.Load(cur, 1)
				}
				for j := 0; j < 4; j++ {
					th.New(scratch)
				}
			})
		}
	})
	if err != nil {
		t.Fatalf("lazy-barrier run died: %v", err)
	}
	if v.Stats().PrunedRefs == 0 {
		t.Fatal("pruning never engaged under lazy barriers")
	}
	if v.Stats().BarrierHits == 0 {
		t.Fatal("barriers never armed after OBSERVE")
	}
}
