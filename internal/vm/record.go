package vm

import (
	"sync/atomic"

	"leakpruning/internal/heap"
)

// Allocation-trace record helpers. Every site in the mutator hot paths is
// a single `t.rec != nil` branch (or one nil-safe method call) when
// recording is off, mirroring the obs ring discipline: streams are written
// only by the owning thread inside its critical regions and drained at
// stop-the-world (trace.Recorder.DrainAll in preparePlan).

// recordAlloc records a successful allocation, distinguishing the class's
// default shape (the common case, two varints) from a WithRefSlots /
// WithScalarBytes override.
func (t *Thread) recordAlloc(class heap.ClassID, opts []heap.AllocOption, ref heap.Ref) {
	if t.rec == nil {
		return
	}
	c := t.vm.classes.Get(class)
	if len(opts) == 0 {
		t.rec.Alloc(uint32(class), uint64(ref.ID()))
		return
	}
	refSlots, scalarBytes := t.vm.heap.ResolveShape(class, opts)
	if refSlots == c.RefSlots && scalarBytes == c.ScalarBytes {
		t.rec.Alloc(uint32(class), uint64(ref.ID()))
		return
	}
	t.rec.AllocShaped(uint32(class), uint64(ref.ID()), refSlots, scalarBytes)
}

// recordAllocFail records the allocation that exhausted memory.
func (t *Thread) recordAllocFail(class heap.ClassID, opts []heap.AllocOption) {
	if t.rec == nil {
		return
	}
	c := t.vm.classes.Get(class)
	refSlots, scalarBytes := t.vm.heap.ResolveShape(class, opts)
	if refSlots == c.RefSlots && scalarBytes == c.ScalarBytes {
		t.rec.AllocFail(uint32(class))
		return
	}
	t.rec.AllocFailShaped(uint32(class), refSlots, scalarBytes)
}

// recordFrameSet performs a frame-slot write with recording: unlike the
// plain atomic store, it runs inside a critical region so the stream
// append cannot race a stop-the-world drain. The slot may belong to
// another thread's frame (Mckoi hands a frame to its workers); the event
// is recorded on the owning thread's stream against its current stack, so
// replay finds the frame at the same depth.
func (t *Thread) recordFrameSet(f *Frame, i int, r heap.Ref) {
	t.beginOp()
	atomic.StoreUint64(&f.slots[i], uint64(r.Untagged()))
	for d := len(t.frames) - 1; d >= 0; d-- {
		if t.frames[d] == f {
			t.rec.FrameSet(len(t.frames)-1-d, i, uint64(r.ID()))
			break
		}
	}
	t.endOp()
}

// MarkIteration records an iteration-boundary mark with a wall-clock delta
// — the replayer's pacing and progress signal. A no-op unless the VM is
// recording; the harness calls it once per workload iteration.
func (t *Thread) MarkIteration(iter int) {
	if t.rec == nil {
		return
	}
	t.beginOp()
	t.rec.Iter(iter)
	t.endOp()
}
