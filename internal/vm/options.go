// Package vm is the managed-runtime facade: it ties the simulated heap, the
// parallel collector, and the leak-pruning controller together behind the
// mutator API that programs (workloads, examples) are written against —
// class definition, allocation, threads with stack-frame roots, globals,
// and barrier-checked reference loads.
package vm

import (
	"fmt"
	"io"
	"runtime"

	"leakpruning/internal/core"
	"leakpruning/internal/vmerrors"
)

// BarrierVariant selects the read-barrier code shape. The paper measures
// barrier overhead on two microarchitectures (Pentium 4 and Core 2,
// Figure 6); here the two "platforms" are two implementations of the same
// semantics with different fast-path costs.
type BarrierVariant int

const (
	// BarrierConditional is the paper's barrier: a single conditional test
	// on the loaded word with the body out of line (the default).
	BarrierConditional BarrierVariant = iota
	// BarrierUnconditional always executes the mask-and-check sequence,
	// trading the branch for straight-line work.
	BarrierUnconditional
)

// String names the variant.
func (b BarrierVariant) String() string {
	if b == BarrierUnconditional {
		return "unconditional"
	}
	return "conditional"
}

// Options configures a VM. The zero value is usable after applying
// defaults: a 64 MB simulated heap, barriers enabled, pruning disabled.
type Options struct {
	// HeapLimit is the maximum heap size in simulated bytes (default 64 MB).
	HeapLimit uint64

	// GCWorkers is the tracer parallelism (default: min(4, GOMAXPROCS)).
	GCWorkers int

	// Policy enables leak pruning with the given prediction algorithm.
	// Nil reproduces the unmodified VM ("Base").
	Policy core.Policy

	// OffloadDisk enables the Melt/LeakSurvivor-style baseline instead of
	// pruning: highly stale objects are moved to a simulated disk of this
	// many bytes and faulted back in on access (§6's comparison systems).
	// Mutually exclusive with Policy.
	OffloadDisk uint64

	// EnableBarriers compiles read barriers into the mutator API. Pruning
	// requires barriers; disabling them (for overhead measurement) with a
	// policy set is a configuration error.
	EnableBarriers bool

	// Generational enables nursery (minor) collections between full-heap
	// collections, as in the paper's generational mark-sweep substrate
	// (§5). Minor collections reclaim short-lived objects cheaply; the
	// staleness clock and all leak-pruning activity stay on the full-heap
	// collection cadence.
	Generational bool

	// NurserySize is the allocation volume (bytes) between minor
	// collections (default HeapLimit/8; generational mode only).
	NurserySize uint64

	// Barrier selects the read-barrier implementation.
	Barrier BarrierVariant

	// LazyBarriers models the production refinement §5 suggests: "trigger
	// recompilation of all methods with read barriers only when leak
	// pruning enters the OBSERVE state". Until the controller leaves
	// INACTIVE, reference loads skip the barrier test entirely (safe: the
	// collector only tags references from OBSERVE onward), so non-leaking
	// programs pay nothing.
	LazyBarriers bool

	// ExpectedUseFraction, NearlyFullFraction, and FullHeapOnly pass
	// through to the pruning controller (§3.1); zero values mean the
	// paper's defaults (0.5, 0.9, option (2)).
	ExpectedUseFraction float64
	NearlyFullFraction  float64
	FullHeapOnly        bool

	// EdgeTableSlots sizes the edge table (default 16K).
	EdgeTableSlots int

	// ForceState pins the controller state for overhead experiments
	// (Figure 6/7); Forced enables it.
	ForceState core.State
	Forced     bool

	// GCLog, if set, receives one human-readable line per collection
	// (full and minor), in the style of a JVM's verbose-GC log. Written
	// inside the stop-the-world section.
	GCLog io.Writer

	// OnGC, if set, is called after every full-heap collection with the
	// collection result and post-collection heap statistics. Harnesses use
	// it to record the paper's reachable-memory time series. It runs
	// inside the stop-the-world section and must not touch the VM.
	OnGC func(Event)

	// OnPrune and OnOOM pass through to the controller's reporting hooks.
	OnPrune func(core.PruneEvent)
	// OnOOM receives the out-of-memory warning issued the first time the
	// program exhausts memory (§3.2).
	OnOOM func(*vmerrors.OutOfMemoryError)
}

func (o Options) withDefaults() Options {
	if o.HeapLimit == 0 {
		o.HeapLimit = 64 << 20
	}
	if o.GCWorkers == 0 {
		o.GCWorkers = runtime.GOMAXPROCS(0)
		if o.GCWorkers > 4 {
			o.GCWorkers = 4
		}
	}
	return o
}

func (o Options) validate() error {
	if o.Policy != nil && !o.EnableBarriers {
		return fmt.Errorf("vm: leak pruning (policy %q) requires read barriers", o.Policy.Name())
	}
	if o.Forced && o.Policy != nil {
		return fmt.Errorf("vm: Forced state and a pruning policy are mutually exclusive")
	}
	if o.OffloadDisk > 0 {
		if o.Policy != nil {
			return fmt.Errorf("vm: leak pruning and disk offloading are mutually exclusive")
		}
		if !o.EnableBarriers {
			return fmt.Errorf("vm: disk offloading requires read barriers (staleness tracking and fault-ins)")
		}
		if o.Forced {
			return fmt.Errorf("vm: Forced state and disk offloading are mutually exclusive")
		}
	}
	return nil
}
