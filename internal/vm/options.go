// Package vm is the managed-runtime facade: it ties the simulated heap, the
// parallel collector, and the leak-pruning controller together behind the
// mutator API that programs (workloads, examples) are written against —
// class definition, allocation, threads with stack-frame roots, globals,
// and barrier-checked reference loads.
package vm

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"runtime"
	"time"

	"leakpruning/internal/core"
	"leakpruning/internal/faultinject"
	"leakpruning/internal/obs"
	"leakpruning/internal/trace"
	"leakpruning/internal/vmerrors"
)

// BarrierVariant selects the read-barrier code shape. The paper measures
// barrier overhead on two microarchitectures (Pentium 4 and Core 2,
// Figure 6); here the two "platforms" are two implementations of the same
// semantics with different fast-path costs.
type BarrierVariant int

const (
	// BarrierConditional is the paper's barrier: a single conditional test
	// on the loaded word with the body out of line (the default).
	BarrierConditional BarrierVariant = iota
	// BarrierUnconditional always executes the mask-and-check sequence,
	// trading the branch for straight-line work.
	BarrierUnconditional
)

// String names the variant.
func (b BarrierVariant) String() string {
	if b == BarrierUnconditional {
		return "unconditional"
	}
	return "conditional"
}

// MarkMode selects how ModeNormal collections compute the in-use closure.
type MarkMode int

const (
	// MarkSTW (the default) runs the whole closure inside one
	// stop-the-world pause — the original behavior, kept as the equivalence
	// oracle for the concurrent path.
	MarkSTW MarkMode = iota
	// MarkConcurrent splits every cycle mode into short pauses: a root
	// snapshot, a mutator-concurrent mark (SATB deletion barrier on Store,
	// black allocation), a brief final remark, and a background sweep.
	// SELECT and PRUNE cycles get the one consistent cut the paper's
	// candidate selection and reference poisoning require (§3.2, §4.2)
	// from a staleness snapshot frozen in the first pause: predicates
	// evaluate against it, decisions taken while mutators run are
	// re-verified in the final remark, and any edge a mutator invalidated
	// in the window is demoted rather than mis-selected (see DESIGN.md,
	// "Concurrent SELECT and PRUNE").
	MarkConcurrent
)

// String names the mark mode.
func (m MarkMode) String() string {
	if m == MarkConcurrent {
		return "concurrent"
	}
	return "stw"
}

// Options configures a VM. The zero value is usable after applying
// defaults: a 64 MB simulated heap, barriers enabled, pruning disabled.
type Options struct {
	// HeapLimit is the maximum heap size in simulated bytes (default 64 MB).
	HeapLimit uint64

	// GCWorkers is the tracer parallelism (default: min(4, GOMAXPROCS)).
	GCWorkers int

	// Policy enables leak pruning with the given prediction algorithm.
	// Nil reproduces the unmodified VM ("Base").
	Policy core.Policy

	// OffloadDisk enables the Melt/LeakSurvivor-style baseline instead of
	// pruning: highly stale objects are moved to a simulated disk of this
	// many bytes and faulted back in on access (§6's comparison systems).
	// Mutually exclusive with Policy.
	OffloadDisk uint64

	// EnableBarriers compiles read barriers into the mutator API. Pruning
	// requires barriers; disabling them (for overhead measurement) with a
	// policy set is a configuration error.
	EnableBarriers bool

	// Generational enables nursery (minor) collections between full-heap
	// collections, as in the paper's generational mark-sweep substrate
	// (§5). Minor collections reclaim short-lived objects cheaply; the
	// staleness clock and all leak-pruning activity stay on the full-heap
	// collection cadence.
	Generational bool

	// NurserySize is the allocation volume (bytes) between minor
	// collections (default HeapLimit/8; generational mode only).
	NurserySize uint64

	// Barrier selects the read-barrier implementation.
	Barrier BarrierVariant

	// LazyBarriers models the production refinement §5 suggests: "trigger
	// recompilation of all methods with read barriers only when leak
	// pruning enters the OBSERVE state". Until the controller leaves
	// INACTIVE, reference loads skip the barrier test entirely (safe: the
	// collector only tags references from OBSERVE onward), so non-leaking
	// programs pay nothing.
	LazyBarriers bool

	// ExpectedUseFraction, NearlyFullFraction, and FullHeapOnly pass
	// through to the pruning controller (§3.1); zero values mean the
	// paper's defaults (0.5, 0.9, option (2)).
	ExpectedUseFraction float64
	NearlyFullFraction  float64
	FullHeapOnly        bool

	// EdgeTableSlots sizes the edge table (default 16K).
	EdgeTableSlots int

	// ForceState pins the controller state for overhead experiments
	// (Figure 6/7); Forced enables it.
	ForceState core.State
	Forced     bool

	// GCLog, if set, receives one human-readable line per collection
	// (full and minor), in the style of a JVM's verbose-GC log. Written
	// inside the stop-the-world section.
	GCLog io.Writer

	// OnGC, if set, is called after every full-heap collection with the
	// collection result and post-collection heap statistics. Harnesses use
	// it to record the paper's reachable-memory time series. It runs
	// inside the stop-the-world section and must not touch the VM.
	OnGC func(Event)

	// OnPrune and OnOOM pass through to the controller's reporting hooks.
	OnPrune func(core.PruneEvent)
	// OnOOM receives the out-of-memory warning issued the first time the
	// program exhausts memory (§3.2).
	OnOOM func(*vmerrors.OutOfMemoryError)

	// FaultInjector arms deterministic fault injection across the VM's
	// subsystems (trace workers, allocator, finalizers, edge table, offload
	// disk). Nil disables every injection point at zero cost.
	FaultInjector *faultinject.Injector

	// AuditEveryGC runs the full heap invariant audit (vm.Verify) inside
	// every full-heap collection's stop-the-world section. Violations are
	// counted in Stats and retained for LastAudit. Expensive (a full object
	// table scan per collection); meant for the chaos campaign and tests.
	AuditEveryGC bool

	// STWWatchdog bounds how long a parallel trace closure may run before
	// the collection abandons it and degrades to the serial tracer
	// (0 disables the deadline).
	STWWatchdog time.Duration

	// WorldLock selects how mutator operations synchronize with
	// stop-the-world collections: WorldSafepoint (the default) uses
	// per-thread safepoint state words and a ragged-barrier stop, so
	// mutator fast paths never touch a shared lock; WorldRWMutex is the
	// original shared-RWMutex protocol, kept for equivalence testing.
	WorldLock WorldLockMode

	// MarkMode selects the closure strategy for all cycle modes: MarkSTW
	// (default) traces inside the pause; MarkConcurrent marks concurrently
	// with mutators behind an SATB deletion barrier, shrinking pauses to
	// root snapshot + remark + bookkeeping — including SELECT and PRUNE
	// cycles, whose selection and poisoning verify against a frozen
	// staleness snapshot in the final remark. Requires WorldSafepoint and
	// is mutually exclusive with OffloadDisk.
	MarkMode MarkMode

	// Obs attaches the observability layer (metrics registry + trace-event
	// tracer, see internal/obs): GC phase spans, safepoint stop-latency
	// histograms, trap/barrier/fault counters, and per-thread trace rings.
	// Nil (the default) disables it; every instrumentation site then
	// reduces to a single nil check with no allocation and no clock read.
	Obs *obs.Obs

	// TraceRecorder attaches an allocation-trace recorder (internal/trace):
	// every mutator operation, collector free, and completed GC cycle is
	// recorded into per-thread streams, buffered thread-locally inside
	// critical regions and drained at stop-the-world like the obs rings.
	// Nil (the default) disables recording; every record site then reduces
	// to one nil check.
	TraceRecorder *trace.Recorder

	// HashLiveSet computes a live-set fingerprint (see LiveSetHash) inside
	// every full collection's final stop-the-world pause and delivers it in
	// Event.LiveHash. It is the cross-run equivalence probe multi-tenant
	// isolation proofs key on: two tenants whose per-cycle hash sequences
	// agree have byte-identical live heaps after every collection. Costs a
	// full object-table walk per collection; off by default.
	HashLiveSet bool
}

// ValidateOptions applies defaults and reports whether the options form a
// valid configuration — the same check New performs before construction,
// exposed so long-lived hosts (cmd/leakd's rolling per-tenant config
// updates) can reject a bad config with a typed *OptionError instead of
// recovering New's panic mid-swap.
func ValidateOptions(o Options) error {
	return o.withDefaults().validate()
}

// OptionError reports an invalid Options field combination. It is the typed
// error behind New's configuration panic, so tests (and embedders that call
// validate through New with recover) can assert on the offending field
// rather than matching message text.
type OptionError struct {
	// Option names the offending field (or field combination).
	Option string
	// Reason says what is wrong with it.
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("vm: invalid option %s: %s", e.Option, e.Reason)
}

// badFraction reports why f is unusable as a fraction option, or "" if it
// is fine. Zero is always acceptable (it means "use the paper's default").
func badFraction(f float64) string {
	switch {
	case math.IsNaN(f):
		return "is NaN"
	case f < 0:
		return fmt.Sprintf("is negative (%g)", f)
	}
	return ""
}

func (o Options) withDefaults() Options {
	if o.HeapLimit == 0 {
		o.HeapLimit = 64 << 20
	}
	if o.GCWorkers == 0 {
		o.GCWorkers = runtime.GOMAXPROCS(0)
		if o.GCWorkers > 4 {
			o.GCWorkers = 4
		}
	}
	return o
}

// Fingerprint hashes the execution-relevant effective options: every field
// that changes what a run does to the heap. The trace recorder stamps it
// into the header so a replay can warn when it re-executes a trace under
// options other than the recorded ones (legitimate for cross-policy
// replay, fatal for byte-identity verification). Callback hooks,
// observability attachments, and the fault injector are excluded: they
// observe a run without steering it.
func (o Options) Fingerprint() uint64 {
	o = o.withDefaults()
	policy := "off"
	if o.Policy != nil {
		policy = o.Policy.Name()
	}
	s := fmt.Sprintf("heap=%d policy=%s disk=%d barriers=%v gen=%v nursery=%d bvar=%d lazy=%v euf=%g nff=%g fho=%v ets=%d forced=%v/%d world=%d mark=%d",
		o.HeapLimit, policy, o.OffloadDisk, o.EnableBarriers, o.Generational,
		o.NurserySize, int(o.Barrier), o.LazyBarriers, o.ExpectedUseFraction,
		o.NearlyFullFraction, o.FullHeapOnly, o.EdgeTableSlots, o.Forced,
		int(o.ForceState), int(o.WorldLock), int(o.MarkMode))
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func (o Options) validate() error {
	if o.Policy != nil && !o.EnableBarriers {
		return &OptionError{Option: "Policy+EnableBarriers",
			Reason: fmt.Sprintf("leak pruning (policy %q) requires read barriers", o.Policy.Name())}
	}
	if o.Forced && o.Policy != nil {
		return &OptionError{Option: "Forced+Policy",
			Reason: "forced state and a pruning policy are mutually exclusive"}
	}
	if o.OffloadDisk > 0 {
		if o.Policy != nil {
			return &OptionError{Option: "OffloadDisk+Policy",
				Reason: "leak pruning and disk offloading are mutually exclusive"}
		}
		if !o.EnableBarriers {
			return &OptionError{Option: "OffloadDisk+EnableBarriers",
				Reason: "disk offloading requires read barriers (staleness tracking and fault-ins)"}
		}
		if o.Forced {
			return &OptionError{Option: "OffloadDisk+Forced",
				Reason: "forced state and disk offloading are mutually exclusive"}
		}
	}
	if why := badFraction(o.ExpectedUseFraction); why != "" {
		return &OptionError{Option: "ExpectedUseFraction", Reason: why}
	}
	if o.ExpectedUseFraction > 1 {
		return &OptionError{Option: "ExpectedUseFraction",
			Reason: fmt.Sprintf("must be at most 1.0, got %g", o.ExpectedUseFraction)}
	}
	if why := badFraction(o.NearlyFullFraction); why != "" {
		return &OptionError{Option: "NearlyFullFraction", Reason: why}
	}
	if o.NearlyFullFraction >= 1 {
		// 1.0 would defer SELECT until the heap is already exhausted —
		// pruning could never engage before the OOM it exists to avert.
		return &OptionError{Option: "NearlyFullFraction",
			Reason: fmt.Sprintf("must be below 1.0, got %g", o.NearlyFullFraction)}
	}
	if o.GCWorkers < 0 {
		return &OptionError{Option: "GCWorkers",
			Reason: fmt.Sprintf("must not be negative, got %d", o.GCWorkers)}
	}
	if o.EdgeTableSlots < 0 {
		return &OptionError{Option: "EdgeTableSlots",
			Reason: fmt.Sprintf("must not be negative, got %d", o.EdgeTableSlots)}
	}
	if o.STWWatchdog < 0 {
		return &OptionError{Option: "STWWatchdog",
			Reason: fmt.Sprintf("must not be negative, got %v", o.STWWatchdog)}
	}
	if o.WorldLock != WorldSafepoint && o.WorldLock != WorldRWMutex {
		return &OptionError{Option: "WorldLock",
			Reason: fmt.Sprintf("unknown mode %d", int(o.WorldLock))}
	}
	if o.MarkMode != MarkSTW && o.MarkMode != MarkConcurrent {
		return &OptionError{Option: "MarkMode",
			Reason: fmt.Sprintf("unknown mode %d", int(o.MarkMode))}
	}
	if o.MarkMode == MarkConcurrent {
		if o.WorldLock != WorldSafepoint {
			// The SATB buffers drain through the safepoint protocol's ragged
			// barrier; the legacy RWMutex world lock has no per-thread
			// safepoint state to piggyback on.
			return &OptionError{Option: "MarkMode+WorldLock",
				Reason: "concurrent marking requires the safepoint protocol"}
		}
		if o.OffloadDisk > 0 {
			// The offload baseline's fault-in path runs ad-hoc collections
			// outside the cycle driver's serialization, which a concurrent
			// cycle cannot tolerate mid-mark.
			return &OptionError{Option: "MarkMode+OffloadDisk",
				Reason: "concurrent marking and disk offloading are mutually exclusive"}
		}
	}
	return nil
}
