package vm

import (
	"testing"

	"leakpruning/internal/heap"
)

// FuzzSATBBuffer drives one satbBuffer through an arbitrary interleaving of
// the three operations the runtime performs on it — mutator-side log,
// exit-time flush, and collector-side take — and checks it against a shadow
// model: the concatenation of everything the buffer ever handed out (spill
// batches, takes, plus whatever it still holds) must equal the logged
// sequence exactly, in order, with nothing lost and nothing duplicated.
// "Logged then lost" is precisely the failure mode that would let the
// concurrent sweep free a reachable object, so this is the property the
// whole SATB soundness argument leans on. The capacity invariant rides
// along: a buffer never reaches satbBufCap entries without spilling.
func FuzzSATBBuffer(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, 3})
	f.Add([]byte("log-heavy: \x00\x01\x00\x01\x00\x01\x00\x01\x00\x01\x00\x01"))
	f.Add(make([]byte, 3*satbBufCap)) // zero bytes: logs only, forces auto-spills
	f.Fuzz(func(t *testing.T, ops []byte) {
		var buf satbBuffer
		var logged, collected []heap.Ref
		spill := func(batch []heap.Ref) {
			if len(batch) == 0 {
				t.Fatal("spill called with an empty batch")
			}
			collected = append(collected, batch...)
		}
		for i, b := range ops {
			switch b % 4 {
			case 0, 1:
				// Log a distinct, recognizable reference (IDs must be unique
				// so a duplicated entry cannot masquerade as a legitimate
				// re-log of the same value).
				r := heap.MakeRef(heap.ObjectID(i + 1))
				logged = append(logged, r)
				buf.log(r, spill)
			case 2:
				buf.flush(spill) // Thread.Exit handoff
			case 3:
				collected = append(collected, buf.take()...) // remark drain
			}
			if len(buf.entries) >= satbBufCap {
				t.Fatalf("op %d: buffer holds %d entries, cap %d never auto-spilled", i, len(buf.entries), satbBufCap)
			}
		}
		collected = append(collected, buf.take()...)
		if len(collected) != len(logged) {
			t.Fatalf("logged %d entries, recovered %d", len(logged), len(collected))
		}
		for i := range logged {
			if collected[i] != logged[i] {
				t.Fatalf("entry %d: logged %v, recovered %v", i, logged[i], collected[i])
			}
		}
	})
}
