package vm

import (
	"hash/fnv"

	"leakpruning/internal/heap"
)

// liveSetHash fingerprints the entire live heap: every object's identity,
// class, size, stale counter, and raw reference words (tags included). Two
// runs whose per-cycle hashes agree have byte-identical live sets — the
// strongest form of equivalence the mark-mode and multi-tenant isolation
// proofs assert. Caller must hold the world stopped (or otherwise know no
// mutator is running).
func liveSetHash(h *heap.Heap) uint64 {
	fn := fnv.New64a()
	var buf [8]byte
	word := func(x uint64) {
		for i := range buf {
			buf[i] = byte(x >> (8 * i))
		}
		fn.Write(buf[:])
	}
	h.ForEach(func(id heap.ObjectID, obj *heap.Object) {
		word(uint64(id))
		word(uint64(obj.Class()))
		word(obj.Size())
		word(uint64(obj.Stale()))
		for slot, n := 0, obj.NumRefs(); slot < n; slot++ {
			word(uint64(obj.Ref(slot)))
		}
	})
	return fn.Sum64()
}

// LiveSetHash stops the world and returns the live-set fingerprint — the
// quiescent-point form of the per-cycle hash Options.HashLiveSet delivers
// in Event.LiveHash. Must not be called from inside a mutator critical
// region, a finalizer, or a GC callback.
func (v *VM) LiveSetHash() uint64 {
	v.stopTheWorld()
	defer v.startTheWorld()
	v.flushTLABs()
	return liveSetHash(v.heap)
}
