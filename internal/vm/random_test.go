package vm

import (
	"testing"
	"testing/quick"

	"leakpruning/internal/core"
	"leakpruning/internal/heap"
	"leakpruning/internal/vmerrors"
)

// TestRandomProgramsQuick drives randomly generated mutator programs
// through the full stack — allocation, loads, stores, globals, scopes,
// collections, pruning — and asserts the only ways a program can end are
// cleanly, with an OutOfMemoryError, or with an InternalError on a
// poisoned access. Anything else (a heap-corruption panic, a foreign
// error) fails the property.
func TestRandomProgramsQuick(t *testing.T) {
	type op struct {
		Kind uint8
		A, B uint8
	}
	policies := []core.Policy{nil, core.DefaultPolicy{}, core.MostStalePolicy{}, core.IndivRefsPolicy{}}

	prop := func(ops []op, seed uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("runtime panic: %v", r)
				ok = false
			}
		}()
		v := New(Options{
			HeapLimit:      96 << 10,
			EnableBarriers: true,
			GCWorkers:      1 + int(seed)%3,
			Policy:         policies[int(seed)%len(policies)],
			Generational:   seed%2 == 0,
		})
		classes := []heap.ClassID{
			v.DefineClass("R0", 3, 64),
			v.DefineClass("R1", 1, 256),
			v.DefineClass("R2", 2, 16),
		}
		globals := []int{v.AddGlobal(), v.AddGlobal(), v.AddGlobal()}

		err := v.RunThread("fuzz", func(th *Thread) {
			// locals is a rotating register file of recent references.
			var locals [8]heap.Ref
			step := func(o op) {
				switch o.Kind % 6 {
				case 0: // allocate
					locals[o.A%8] = th.New(classes[int(o.B)%len(classes)])
				case 1: // store local into a local's slot
					src := locals[o.A%8]
					val := locals[o.B%8]
					if !src.IsNull() {
						th.Store(src, int(o.B)%1, val)
					}
				case 2: // load
					src := locals[o.A%8]
					if !src.IsNull() {
						locals[o.B%8] = th.Load(src, 0)
					}
				case 3: // publish to a global
					th.StoreGlobal(globals[int(o.A)%3], locals[o.B%8])
				case 4: // read a global
					locals[o.A%8] = th.LoadGlobal(globals[int(o.B)%3])
				case 5: // drop a local
					locals[o.A%8] = heap.Null
				}
			}
			for round := 0; round < 40; round++ {
				th.Scope(func() {
					// Refresh locals from globals at scope start: previous
					// scope's locals are no longer rooted.
					for i := range locals {
						locals[i] = heap.Null
					}
					for _, o := range ops {
						step(o)
					}
				})
			}
		})
		switch {
		case err == nil:
			return true
		case vmerrors.IsInternal(err), vmerrors.IsOOM(err):
			return true
		default:
			t.Logf("unexpected error: %v", err)
			return false
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomProgramsBoundedMemoryQuick: whatever a random program does, the
// heap accounting never exceeds the configured limit.
func TestRandomProgramsBoundedMemoryQuick(t *testing.T) {
	prop := func(allocs []uint8) bool {
		const limit = 64 << 10
		exceeded := false
		v := New(Options{
			HeapLimit:      limit,
			EnableBarriers: true,
			GCWorkers:      1,
			Policy:         core.DefaultPolicy{},
			OnGC: func(ev Event) {
				if ev.Heap.BytesUsed > limit {
					exceeded = true
				}
			},
		})
		cls := v.DefineClass("Blob", 1, 512)
		g := v.AddGlobal()
		_ = v.RunThread("fuzz", func(th *Thread) {
			for _, a := range allocs {
				th.Scope(func() {
					n := th.New(cls)
					if a%2 == 0 { // leak half of them
						th.Store(n, 0, th.LoadGlobal(g))
						th.StoreGlobal(g, n)
					}
				})
			}
		})
		return !exceeded && v.HeapStats().BytesUsed <= limit
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
