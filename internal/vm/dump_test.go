package vm

import (
	"bytes"
	"strings"
	"testing"

	"leakpruning/internal/heap"
)

func TestDumpDot(t *testing.T) {
	v := New(Options{HeapLimit: 1 << 20, EnableBarriers: true, GCWorkers: 1})
	node := v.DefineClass("Node", 1, 64)
	g := v.AddGlobal()
	err := v.RunThread("main", func(th *Thread) {
		a := th.New(node)
		b := th.New(node)
		c := th.New(node)
		th.Store(a, 0, b)
		th.Store(b, 0, c)
		th.StoreGlobal(g, a)
		// Poison b -> c by hand (as a PRUNE collection would) and collect.
		v.heap.Get(b).SetRef(0, c.WithPoison())
	})
	if err != nil {
		t.Fatal(err)
	}
	v.Collect() // reclaims c

	var buf bytes.Buffer
	if err := v.DumpDot(&buf, 0); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{
		"digraph heap {",
		"Node#",                   // labelled nodes
		"shape=house",             // the root-referenced object
		"style=dashed, color=red", // the poisoned edge tombstone
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
	// The reclaimed target must not appear as a node.
	if strings.Contains(dot, "Node#3") && !strings.Contains(dot, "pruned") {
		t.Fatalf("reclaimed object rendered:\n%s", dot)
	}
}

func TestDumpDotTruncates(t *testing.T) {
	v := New(Options{HeapLimit: 4 << 20, EnableBarriers: true, GCWorkers: 1})
	node := v.DefineClass("Node", 0, 0)
	g := v.AddGlobal()
	chain := v.DefineClass("Chain", 2, 0)
	err := v.RunThread("main", func(th *Thread) {
		for i := 0; i < 100; i++ {
			n := th.New(chain)
			th.Store(n, 0, th.New(node))
			th.Store(n, 1, th.LoadGlobal(g))
			th.StoreGlobal(g, n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.DumpDot(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "truncated at 10 nodes") {
		t.Fatal("truncation marker missing")
	}
}

func TestDumpDotOffloadedShading(t *testing.T) {
	v := New(Options{HeapLimit: 1 << 20, EnableBarriers: true, GCWorkers: 1, OffloadDisk: 1 << 20})
	node := v.DefineClass("Node", 0, 64)
	g := v.AddGlobal()
	var r heap.Ref
	err := v.RunThread("main", func(th *Thread) {
		r = th.New(node)
		th.StoreGlobal(g, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.heap.Offload(r.ID()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.DumpDot(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fillcolor=lightgrey") {
		t.Fatal("offloaded object not shaded")
	}
}
