package vm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"leakpruning/internal/core"
	"leakpruning/internal/heap"
	"leakpruning/internal/vmerrors"
)

// TestSafepointStress hammers the world protocol from 8 mutator goroutines
// mixing Load/Store/New through a shared global while full-heap collections
// — including SELECT and PRUNE cycles driven by the pruning policy, plus
// explicitly forced ones — stop the world underneath them. Run with -race
// this is the main evidence that the safepoint fast path (two thread-local
// atomics, no shared lock) still establishes happens-before between
// mutators and the collector; the RWMutex subtest keeps the legacy protocol
// honest under the same load.
func TestSafepointStress(t *testing.T) {
	for _, mode := range []WorldLockMode{WorldSafepoint, WorldRWMutex} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			v := New(Options{
				HeapLimit:      2 << 20,
				EnableBarriers: true,
				GCWorkers:      2,
				Policy:         core.DefaultPolicy{},
				WorldLock:      mode,
			})
			node := v.DefineClass("Node", 2, 1024)
			scratch := v.DefineClass("Scratch", 0, 64)
			shared := v.AddGlobal()

			const workers = 8
			const iters = 400
			var wg sync.WaitGroup
			errs := make([]error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					errs[w] = v.RunThread(fmt.Sprintf("stress-%d", w), func(th *Thread) {
						for i := 0; i < iters; i++ {
							th.Scope(func() {
								n := th.New(node)
								th.Store(n, 0, th.LoadGlobal(shared))
								th.StoreGlobal(shared, n)
								cur := th.LoadGlobal(shared)
								for d := 0; d < 6 && !cur.IsNull(); d++ {
									next := th.Load(cur, 0)
									th.Store(cur, 1, next)
									cur = next
								}
								th.New(scratch)
								if i%100 == w {
									// Forced full-heap collection from inside a
									// mutator loop: the thread is between ops
									// (at a safepoint), so this must not
									// deadlock against its own critical region.
									v.Collect()
								}
								if i%64 == 63 {
									th.StoreGlobal(shared, heap.Null)
								}
							})
						}
					})
				}(w)
			}
			wg.Wait()
			for w, err := range errs {
				if err == nil {
					continue
				}
				// Poison traps and OOMs are legitimate outcomes of a leak
				// workload under an aggressive policy; protocol bugs surface
				// as deadlocks, race reports, or audit violations instead.
				var ie *vmerrors.InternalError
				if !errors.As(err, &ie) && !vmerrors.IsOOM(err) {
					t.Fatalf("worker %d: unexpected error: %v", w, err)
				}
			}
			if v.Stats().Collections == 0 {
				t.Fatal("expected collections under churn")
			}
			if violations := v.Verify(); len(violations) != 0 {
				t.Fatalf("heap invariants violated after stress: %v", violations)
			}
		})
	}
}

// equivalenceProbe walks the leaked chain from global g on a fresh thread
// — following the slot-1 next pointer and touching each node's slot-0
// payload — until the chain ends or a pruned edge traps. It reports how far
// the walk got and how it ended: "end@N" for a clean walk of N hops, or
// "trap@N:src->tgt" naming the hop and the trap's edge classes.
func equivalenceProbe(v *VM, g int) string {
	hops := 0
	err := v.RunThread("probe", func(th *Thread) {
		cur := th.LoadGlobal(g)
		for !cur.IsNull() {
			th.Scope(func() {
				th.Load(cur, 0)
				cur = th.Load(cur, 1)
			})
			hops++
		}
	})
	if err != nil {
		var ie *vmerrors.InternalError
		if errors.As(err, &ie) {
			return fmt.Sprintf("trap@%d:%s->%s", hops, ie.SourceClass, ie.TargetClass)
		}
		return fmt.Sprintf("err@%d:%v", hops, err)
	}
	return fmt.Sprintf("end@%d", hops)
}

// equivalenceRun executes one deterministic single-threaded leak workload
// under the given world-lock mode and returns every observable the two
// protocols must agree on: collection counts, pruned totals, per-event
// prune log, and the exact sequence of trap outcomes from probing the
// pruned structure afterwards.
func equivalenceRun(t *testing.T, mode WorldLockMode) string {
	t.Helper()
	v := New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		Policy:         core.DefaultPolicy{},
		WorldLock:      mode,
	})
	holder := v.DefineClass("Holder", 2, 0)
	payload := v.DefineClass("Payload", 0, 2048)
	scratch := v.DefineClass("Scratch", 0, 64)
	g := v.AddGlobal()
	err := v.RunThread("leaker", func(th *Thread) {
		for i := 0; i < 1500; i++ {
			th.Scope(func() {
				h := th.New(holder)
				th.Store(h, 0, th.New(payload))
				th.Store(h, 1, th.LoadGlobal(g))
				th.StoreGlobal(g, h)
				for j := 0; j < 4; j++ {
					th.New(scratch)
				}
			})
		}
	})
	if err != nil {
		t.Fatalf("mode %v: leak workload died: %v", mode, err)
	}

	st := v.Stats()
	var events string
	for _, ev := range v.PruneEvents() {
		events += fmt.Sprintf("[gc%d %s refs=%d bytes=%d]",
			ev.GCIndex, ev.Selection, ev.PrunedRefs, ev.BytesFreed)
	}
	var probes string
	for i := 0; i < 3; i++ {
		probes += fmt.Sprintf("%d=%q;", i, equivalenceProbe(v, g))
	}
	// The probes must actually exercise the trap machinery, or the
	// "identical trap sequences" comparison is vacuous.
	traps := v.Stats().PoisonTraps
	if traps == 0 {
		t.Fatalf("mode %v: probes never hit a pruned edge (probes=%s)", mode, probes)
	}
	return fmt.Sprintf("collections=%d pruned=%d traps=%d events=%s probes=%s",
		st.Collections, st.PrunedRefs, traps, events, probes)
}

// TestWorldLockEquivalence runs the same deterministic workload under the
// safepoint protocol and the legacy RWMutex protocol and requires identical
// GC counts, pruned bytes/refs, and trap sequences: the world-lock choice
// must be invisible to program semantics.
func TestWorldLockEquivalence(t *testing.T) {
	safepoint := equivalenceRun(t, WorldSafepoint)
	rwmutex := equivalenceRun(t, WorldRWMutex)
	if safepoint != rwmutex {
		t.Fatalf("protocols diverged:\nsafepoint: %s\nrwmutex:   %s", safepoint, rwmutex)
	}
	if v := equivalenceRun(t, WorldSafepoint); v != safepoint {
		t.Fatalf("safepoint run not deterministic:\nfirst:  %s\nsecond: %s", safepoint, v)
	}
}

// TestWorldLockModeValidation: unknown modes are configuration errors.
func TestWorldLockModeValidation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected New to panic on an invalid WorldLock")
		}
		var oe *OptionError
		if err, ok := r.(error); !ok || !errors.As(err, &oe) || oe.Option != "WorldLock" {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	New(Options{WorldLock: WorldLockMode(42)})
}

// TestExitFoldsCounters: Stats totals must survive thread exit (per-thread
// counter shards are folded into the VM's retired totals by Exit).
func TestExitFoldsCounters(t *testing.T) {
	v := New(Options{HeapLimit: 1 << 20, EnableBarriers: true, GCWorkers: 1})
	cls := v.DefineClass("C", 1, 0)
	for round := 0; round < 3; round++ {
		if err := v.RunThread("counted", func(th *Thread) {
			r := th.New(cls)
			for i := 0; i < 10; i++ {
				th.Load(r, 0)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := v.Stats()
	if st.Loads != 30 {
		t.Fatalf("Loads = %d, want 30", st.Loads)
	}
	if st.Allocations != 3 {
		t.Fatalf("Allocations = %d, want 3", st.Allocations)
	}
}
