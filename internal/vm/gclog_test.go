package vm

import (
	"bytes"
	"strings"
	"testing"

	"leakpruning/internal/core"
)

func TestGCLogFullAndPrune(t *testing.T) {
	var buf bytes.Buffer
	v := New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		Policy:         core.DefaultPolicy{},
		GCLog:          &buf,
	})
	holder := v.DefineClass("Holder", 2, 0)
	payload := v.DefineClass("Payload", 0, 2048)
	scratch := v.DefineClass("Scratch", 0, 64)
	g := v.AddGlobal()
	err := v.RunThread("main", func(th *Thread) {
		for i := 0; i < 800; i++ {
			th.Scope(func() {
				h := th.New(holder)
				th.Store(h, 0, th.New(payload))
				th.Store(h, 1, th.LoadGlobal(g))
				th.StoreGlobal(g, h)
				for j := 0; j < 4; j++ {
					th.New(scratch)
				}
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	log := buf.String()
	for _, want := range []string{"[gc 1 normal]", " select] ", " prune] ", "candidates ", "pruned "} {
		if !strings.Contains(log, want) {
			t.Fatalf("GC log missing %q:\n%s", want, firstLines(log, 20))
		}
	}
}

func TestGCLogMinor(t *testing.T) {
	var buf bytes.Buffer
	v := New(Options{
		HeapLimit:      1 << 20,
		EnableBarriers: true,
		GCWorkers:      1,
		Generational:   true,
		GCLog:          &buf,
	})
	temp := v.DefineClass("Temp", 0, 512)
	err := v.RunThread("main", func(th *Thread) {
		for i := 0; i < 1000; i++ {
			th.Scope(func() { th.New(temp) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[gc minor 1] nursery ") {
		t.Fatalf("minor GC log missing:\n%s", firstLines(buf.String(), 10))
	}
}

func TestFmtBytes(t *testing.T) {
	for in, want := range map[uint64]string{
		512:     "512B",
		2048:    "2.0KB",
		3 << 20: "3.0MB",
		1536:    "1.5KB",
	} {
		if got := fmtBytes(in); got != want {
			t.Fatalf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
