package vm

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"leakpruning/internal/core"
	"leakpruning/internal/obs"
)

// goldenTraceRun executes the safepoint equivalence test's deterministic
// single-threaded leak workload with the observability layer attached, probes
// the pruned structure until it traps, and returns the normalized trace
// stream (timestamps replaced by sink sequence numbers, durations zeroed).
func goldenTraceRun(t *testing.T, mode WorldLockMode, mark MarkMode) string {
	t.Helper()
	o := obs.New()
	v := New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		Policy:         core.DefaultPolicy{},
		WorldLock:      mode,
		MarkMode:       mark,
		Obs:            o,
	})
	holder := v.DefineClass("Holder", 2, 0)
	payload := v.DefineClass("Payload", 0, 2048)
	scratch := v.DefineClass("Scratch", 0, 64)
	g := v.AddGlobal()
	err := v.RunThread("leaker", func(th *Thread) {
		for i := 0; i < 1500; i++ {
			th.Scope(func() {
				h := th.New(holder)
				th.Store(h, 0, th.New(payload))
				th.Store(h, 1, th.LoadGlobal(g))
				th.StoreGlobal(g, h)
				for j := 0; j < 4; j++ {
					th.New(scratch)
				}
			})
		}
	})
	if err != nil {
		t.Fatalf("mode %v: leak workload died: %v", mode, err)
	}
	probe := equivalenceProbe(v, g)
	if !strings.HasPrefix(probe, "trap@") {
		t.Fatalf("mode %v: probe must hit a pruned edge, got %q", mode, probe)
	}
	o.Tracer().DrainAll()
	var buf bytes.Buffer
	if err := o.Tracer().WriteTrace(&buf, true); err != nil {
		t.Fatalf("mode %v: WriteTrace: %v", mode, err)
	}
	return buf.String()
}

// TestGoldenTraceDeterminism is the trace stream's golden test: the same
// seedless deterministic workload, run twice under the safepoint protocol
// and once under the legacy RWMutex world lock, must produce byte-identical
// normalized traces. Wall-clock timing is the only legitimate source of
// nondeterminism in a trace, and normalization removes exactly that — any
// remaining diff is a real ordering bug (a ring drained out of tid order, an
// event emitted outside the stop-the-world section it claims, a protocol
// leaking into the event stream).
func TestGoldenTraceDeterminism(t *testing.T) {
	first := goldenTraceRun(t, WorldSafepoint, MarkSTW)
	second := goldenTraceRun(t, WorldSafepoint, MarkSTW)
	if first != second {
		t.Fatalf("safepoint traces differ between identical runs:\nrun1 %d bytes\nrun2 %d bytes\n%s",
			len(first), len(second), firstDiff(first, second))
	}
	legacy := goldenTraceRun(t, WorldRWMutex, MarkSTW)
	if first != legacy {
		t.Fatalf("trace differs across world-lock modes:\nsafepoint %d bytes\nrwmutex %d bytes\n%s",
			len(first), len(legacy), firstDiff(first, legacy))
	}

	for _, want := range []string{
		`"gc.mark"`, `"gc.stale"`, `"gc.sweep"`, `"gc.prune"`,
		`"stw.stop"`, `"poison.trap"`,
	} {
		if !strings.Contains(first, want) {
			t.Errorf("trace is missing %s events", want)
		}
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(first), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) < 10 {
		t.Fatalf("implausibly small trace: %d events", len(events))
	}
	for i, ev := range events {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d lacks %q: %v", i, key, ev)
			}
		}
	}
}

// TestGoldenTraceDeterminismConcurrent extends the golden test to the
// mostly-concurrent mark mode. The trace legitimately differs from the STW
// stream in span structure (gc.mark.concurrent and gc.remark spans, three
// stw.stop sections per ModeNormal cycle), but the single-threaded workload
// is still fully deterministic, so two identical runs must produce
// byte-identical normalized traces — any diff means the concurrent driver
// leaked real scheduling nondeterminism into what the collector observed.
func TestGoldenTraceDeterminismConcurrent(t *testing.T) {
	first := goldenTraceRun(t, WorldSafepoint, MarkConcurrent)
	second := goldenTraceRun(t, WorldSafepoint, MarkConcurrent)
	if first != second {
		t.Fatalf("concurrent-mark traces differ between identical runs:\nrun1 %d bytes\nrun2 %d bytes\n%s",
			len(first), len(second), firstDiff(first, second))
	}
	for _, want := range []string{
		`"gc.mark.concurrent"`, `"gc.remark"`, `"gc.sweep"`, `"gc.prune"`,
		`"stw.stop"`, `"poison.trap"`,
	} {
		if !strings.Contains(first, want) {
			t.Errorf("concurrent trace is missing %s events", want)
		}
	}
	if strings.Contains(first, `"degraded":"true"`) {
		t.Error("trace reports a degraded remark with no fault armed")
	}
}

// firstDiff renders the first line where a and b diverge.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return "first diff at line " + la[i] + "\nvs " + lb[i]
		}
	}
	return "traces are prefixes of each other"
}

// TestDisabledObsLoadZeroAlloc pins the disabled-path contract from the
// Options.Obs doc: with no observability attached, the mutator Load fast
// path allocates nothing — the instrumentation reduces to nil checks on
// handles that were never created.
func TestDisabledObsLoadZeroAlloc(t *testing.T) {
	v := New(Options{HeapLimit: 1 << 20, GCWorkers: 1})
	node := v.DefineClass("Node", 1, 0)
	err := v.RunThread("main", func(th *Thread) {
		a := th.New(node)
		b := th.New(node)
		th.Store(a, 0, b)
		th.Load(a, 0) // warm
		if allocs := testing.AllocsPerRun(200, func() {
			th.Load(a, 0)
		}); allocs != 0 {
			t.Errorf("obs-disabled Load allocates %.1f objects per op, want 0", allocs)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
