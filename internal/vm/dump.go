package vm

import (
	"fmt"
	"io"
	"sort"

	"leakpruning/internal/heap"
)

// DumpDot writes a Graphviz rendering of the live heap: one node per
// object (labelled with its class and size), solid edges for ordinary
// references, bold dashed red edges for poisoned references (which point at
// a tombstone, since the target is reclaimed), and house-shaped nodes for
// objects directly referenced from roots. maxNodes bounds the output for
// big heaps (0 = 256); the dump stops the world while it scans.
//
// This is the visual counterpart of the paper's worked example: rendering
// the Figure 3 heap through DumpDot produces Figure 4 after a prune.
func (v *VM) DumpDot(w io.Writer, maxNodes int) error {
	if maxNodes <= 0 {
		maxNodes = 256
	}
	v.stopTheWorld()
	defer v.startTheWorld()

	rooted := map[heap.ObjectID]bool{}
	(*rootVisitor)(v).VisitRoots(func(r heap.Ref) {
		if !r.IsNull() {
			rooted[r.ID()] = true
		}
	})

	var ids []heap.ObjectID
	v.heap.ForEach(func(id heap.ObjectID, obj *heap.Object) {
		ids = append(ids, id)
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	truncated := false
	if len(ids) > maxNodes {
		ids = ids[:maxNodes]
		truncated = true
	}
	include := make(map[heap.ObjectID]bool, len(ids))
	for _, id := range ids {
		include[id] = true
	}

	if _, err := fmt.Fprintln(w, "digraph heap {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, `  node [fontsize=9, shape=box];`)
	for _, id := range ids {
		obj, ok := v.heap.Lookup(id)
		if !ok {
			continue
		}
		shape := "box"
		if rooted[id] {
			shape = "house"
		}
		style := ""
		if obj.IsOffloaded() {
			style = `, style=filled, fillcolor=lightgrey`
		}
		fmt.Fprintf(w, "  o%d [label=\"%s#%d\\n%dB\", shape=%s%s];\n",
			id, v.classes.Name(obj.Class()), id, obj.Size(), shape, style)
	}
	poisonTombstones := 0
	for _, id := range ids {
		obj, ok := v.heap.Lookup(id)
		if !ok {
			continue
		}
		for slot := 0; slot < obj.NumRefs(); slot++ {
			r := obj.Ref(slot)
			if r.IsNull() {
				continue
			}
			if r.IsPoisoned() {
				// The paper's Figure 4 asterisk: a poisoned reference whose
				// target was reclaimed.
				poisonTombstones++
				fmt.Fprintf(w, "  p%d [label=\"pruned\", shape=point, color=red];\n", poisonTombstones)
				fmt.Fprintf(w, "  o%d -> p%d [style=dashed, color=red, label=\"slot %d*\"];\n",
					id, poisonTombstones, slot)
				continue
			}
			if include[r.ID()] {
				fmt.Fprintf(w, "  o%d -> o%d;\n", id, r.ID())
			}
		}
	}
	if truncated {
		fmt.Fprintf(w, "  trunc [label=\"(truncated at %d nodes)\", shape=plaintext];\n", maxNodes)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
