package vm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/obs"
)

// WorldLockMode selects how mutator operations synchronize with
// stop-the-world collections.
type WorldLockMode int

const (
	// WorldSafepoint (the default) is the safepoint protocol: each Thread
	// carries an atomic state word, mutator operations enter and leave a
	// critical region with two uncontended stores on that thread-local word,
	// and the collector's stop-the-world performs a ragged barrier — it
	// raises a global stop flag and waits until every registered thread is
	// observed at a safepoint. Threads that notice the flag park on a
	// condition variable until the world restarts.
	WorldSafepoint WorldLockMode = iota
	// WorldRWMutex is the original implementation — every mutator operation
	// takes a shared sync.RWMutex in read mode and the stop-the-world is the
	// write lock. Kept for equivalence testing against WorldSafepoint; its
	// contended read path serializes multi-threaded mutators.
	WorldRWMutex
)

// String names the mode.
func (m WorldLockMode) String() string {
	if m == WorldRWMutex {
		return "rwmutex"
	}
	return "safepoint"
}

// Thread safepoint states (Thread.state).
const (
	threadSafe    uint32 = 0 // at a safepoint: outside any mutator critical region
	threadRunning uint32 = 1 // inside a mutator critical region
)

// world is the VM's mutator/collector synchronization. Exactly one of the
// two mechanisms is active, chosen by mode at construction:
//
//   - WorldRWMutex: rw is the world lock (read side = mutator op, write
//     side = stop-the-world). The safepoint fields are unused.
//   - WorldSafepoint: stwOwner serializes stop-the-world sections (and
//     VM-level operations that must merely exclude collections); stop is
//     the Dekker-style flag mutators test after publishing their state
//     word; parkMu/parkCond park mutators that observed stop until the
//     world restarts (parked mirrors stop under parkMu for the condvar).
type world struct {
	mode WorldLockMode

	rw sync.RWMutex

	stwOwner sync.Mutex
	stop     atomic.Bool
	parkMu   sync.Mutex
	parked   bool
	parkCond *sync.Cond
}

func (w *world) init(mode WorldLockMode) {
	w.mode = mode
	w.parkCond = sync.NewCond(&w.parkMu)
}

// stopTheWorld brings every mutator thread to a safepoint and returns with
// the exclusive right to mutate the heap, the roots, and the controller.
// Pair with startTheWorld (callers on throwing paths defer it).
//
// Safepoint mode is a ragged barrier: after raising the stop flag the
// collector waits for each registered thread individually; threads reach
// their safepoints at different times (or are already there — a thread
// blocked outside the VM parks on first contact instead). Soundness
// argument: the mutator publishes state=running and THEN tests stop, while
// the collector publishes stop and THEN reads state — with Go's
// sequentially consistent atomics, either the mutator sees stop (and backs
// off to its safepoint) or the collector sees running (and waits for the
// region to end), never neither.
func (v *VM) stopTheWorld() {
	w := &v.world
	// Time-to-stop observation is gated on the histogram handle so the
	// disabled path never reads the clock. Both world-lock modes observe
	// from the same call site, which keeps traces comparable across modes.
	timed := v.obsStopNs != nil
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	if w.mode == WorldRWMutex {
		w.rw.Lock()
		if timed {
			v.observeStop(time.Since(t0))
		}
		return
	}
	w.stwOwner.Lock()
	w.parkMu.Lock()
	w.parked = true
	w.parkMu.Unlock()
	w.stop.Store(true)
	if v.inj.Should(faultinject.SafepointStall) {
		safepointStall()
	}
	v.threadMu.Lock()
	threads := make([]*Thread, 0, len(v.threads))
	for t := range v.threads {
		threads = append(threads, t)
	}
	v.threadMu.Unlock()
	for _, t := range threads {
		for spins := 0; t.state.Load() != threadSafe; spins++ {
			if spins < 128 {
				runtime.Gosched()
			} else {
				time.Sleep(10 * time.Microsecond)
			}
		}
	}
	if timed {
		v.observeStop(time.Since(t0))
	}
}

// observeStop records one completed time-to-stop: the latency histogram
// plus a trace span covering the ragged barrier (or the write-lock
// acquisition in RWMutex mode). Runs with the world stopped, so the locked
// Emit is uncontended. Only called when v.obsStopNs is non-nil.
func (v *VM) observeStop(d time.Duration) {
	ns := d.Nanoseconds()
	v.obsStopNs.Observe(uint64(ns))
	if tr := v.obsTracer; tr != nil {
		tr.Emit(obs.Span("stw.stop", "safepoint", tr.Now()-ns, ns, 0))
	}
}

// startTheWorld releases the stop begun by stopTheWorld and wakes every
// parked mutator thread.
func (v *VM) startTheWorld() {
	w := &v.world
	if w.mode == WorldRWMutex {
		w.rw.Unlock()
		return
	}
	w.stop.Store(false)
	w.parkMu.Lock()
	w.parked = false
	w.parkCond.Broadcast()
	w.parkMu.Unlock()
	w.stwOwner.Unlock()
}

// lockOutSTW blocks stop-the-world sections (but not mutator threads) for
// the duration of a VM-level operation that has no Thread of its own —
// AddGlobal, SetFinalizer, Stats reads. In RWMutex mode this is the world
// read lock, exactly as before; in safepoint mode it is the STW owner
// mutex, which collections also acquire.
func (v *VM) lockOutSTW() {
	if v.world.mode == WorldRWMutex {
		v.world.rw.RLock()
		return
	}
	v.world.stwOwner.Lock()
}

// unlockOutSTW releases lockOutSTW.
func (v *VM) unlockOutSTW() {
	if v.world.mode == WorldRWMutex {
		v.world.rw.RUnlock()
		return
	}
	v.world.stwOwner.Unlock()
}

// beginOp enters a mutator critical region: between beginOp and endOp the
// thread may read and write heap objects, its own frames, and the globals,
// and no stop-the-world can be in progress. The fast path is two
// uncontended thread-local atomic operations (one store, one load of the
// global stop flag); only when a stop is pending does the thread take the
// slow parking path.
//
// Critical regions do not nest, and every path out of one — including the
// trap paths that unwind with a panic — must pass through endOp exactly
// once before the region's owner blocks or throws.
func (t *Thread) beginOp() {
	if t.safepoint {
		t.state.Store(threadRunning)
		if t.vm.world.stop.Load() {
			t.beginOpSlow()
		}
		return
	}
	t.vm.world.rw.RLock()
}

// endOp leaves the critical region: one thread-local atomic store.
func (t *Thread) endOp() {
	if t.safepoint {
		t.state.Store(threadSafe)
		return
	}
	t.vm.world.rw.RUnlock()
}

// beginOpSlow is beginOp's parking path: back off to the safepoint, wait
// for the world to restart, and retry the enter protocol (a back-to-back
// collection may have re-raised the flag).
//
//go:noinline
func (t *Thread) beginOpSlow() {
	w := &t.vm.world
	for {
		t.state.Store(threadSafe)
		if t.vm.inj.Should(faultinject.SafepointStall) {
			safepointStall()
		}
		w.parkMu.Lock()
		for w.parked {
			w.parkCond.Wait()
		}
		w.parkMu.Unlock()
		t.state.Store(threadRunning)
		if !w.stop.Load() {
			return
		}
	}
}

// safepointStall is the SafepointStall injection body: a semantics-free
// delay (scheduler yields) inserted either in the collector right after it
// raises the stop flag — a world that is slow to stop — or in a mutator
// right before it parks — a thread that is slow to reach its safepoint.
// Both stretch the ragged barrier's vulnerable window without changing any
// observable result, so chaos scenarios built on it are equivalence-checked
// against fault-free controls.
func safepointStall() {
	for i := 0; i < 64; i++ {
		runtime.Gosched()
	}
}
