package vm

import (
	"errors"
	"testing"

	"leakpruning/internal/heap"
	"leakpruning/internal/vmerrors"
)

// FuzzPoisonRoundTrip checks the tagged-reference word algebra on arbitrary
// 64-bit patterns — untagging is idempotent, tags never disturb the object
// ID, and poisoning always implies the stale bit (the invariant the barrier
// fast path's single `&TagStale` test depends on, §4.3) — and then runs the
// only two tag patterns the collector actually writes through a real VM:
// a stale-tagged slot must survive the barrier cold path untagged, and a
// poisoned slot must trap with the typed InternalError.
func FuzzPoisonRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))        // TagStale alone
	f.Add(uint64(2))        // TagPoison alone (illegal in the heap; fine as a word)
	f.Add(uint64(3))        // both tags on the null ID
	f.Add(uint64(4))        // ref#1 untagged
	f.Add(uint64(7))        // ref#1 with both tags
	f.Add(^uint64(0))       // all bits set
	f.Add(uint64(1) << 63)  // high bit only
	f.Add(uint64(100) << 2) // a plausible mid-range object ID
	f.Fuzz(func(t *testing.T, word uint64) {
		r := heap.Ref(word)
		u := r.Untagged()
		if u.Tags() != 0 {
			t.Fatalf("Untagged(%#x).Tags() = %#x", word, u.Tags())
		}
		if u.Untagged() != u {
			t.Fatalf("Untagged not idempotent on %#x", word)
		}
		if u.ID() != r.ID() {
			t.Fatalf("Untagged changed ID: %d -> %d", r.ID(), u.ID())
		}
		s := u.WithStale()
		if !s.IsStaleTagged() || s.IsPoisoned() {
			t.Fatalf("WithStale(%#x) tags = %#x", uint64(u), uint64(s.Tags()))
		}
		p := u.WithPoison()
		if !p.IsPoisoned() || !p.IsStaleTagged() {
			t.Fatalf("WithPoison(%#x) must set both bits, got tags %#x", uint64(u), uint64(p.Tags()))
		}
		if s.WithPoison() != p {
			t.Fatalf("poisoning a stale ref diverged: %#x != %#x", uint64(s.WithPoison()), uint64(p))
		}
		if s.Untagged() != u || p.Untagged() != u || s.ID() != u.ID() || p.ID() != u.ID() {
			t.Fatalf("tags disturbed the ID bits of %#x", uint64(u))
		}
		// ID() narrows to the 32-bit ObjectID domain while IsNull inspects
		// the whole word, so the null test is equivalence with the untagged
		// null word, not with ID()==0 (a high-bits-only word has ID 0 yet is
		// not null). Canonical references — those MakeRef can produce — do
		// round-trip exactly.
		if r.IsNull() != (u == heap.Null) {
			t.Fatalf("IsNull(%#x) = %t, untagged word %#x", word, r.IsNull(), uint64(u))
		}
		if c := heap.MakeRef(r.ID()); c.ID() != r.ID() || c.IsNull() != (r.ID() == 0) {
			t.Fatalf("MakeRef(%d) round trip broke: ID %d, null %t", r.ID(), c.ID(), c.IsNull())
		}
		_, _, _ = r.String(), s.String(), p.String()

		// Heap round trip. Only legal patterns go into the slot: a poisoned
		// reference always carries the stale bit (WithPoison guarantees it),
		// because poison-without-stale would slip past the fast path's test.
		v := New(Options{HeapLimit: 1 << 20, GCWorkers: 1, EnableBarriers: true})
		node := v.DefineClass("Node", 1, 0)
		poison := word&1 != 0
		stale := uint8(word>>1) & 7
		err := v.RunThread("fuzz", func(th *Thread) {
			a := th.New(node)
			b := th.New(node)
			th.Store(a, 0, b)
			if poison {
				v.heap.Get(a).SetRef(0, b.WithPoison())
			} else {
				v.heap.Get(a).SetRef(0, b.WithStale())
				v.heap.Get(b).SetStale(stale)
			}
			got := th.Load(a, 0)
			if poison {
				t.Fatal("Load of a poisoned reference must not return")
			}
			if got != b {
				t.Fatalf("Load through armed barrier = %v, want %v", got, b)
			}
			if v.heap.Get(a).Ref(0) != b {
				t.Fatalf("cold path left slot %v", v.heap.Get(a).Ref(0))
			}
			if v.heap.Get(b).Stale() != 0 {
				t.Fatalf("cold path left stale counter %d", v.heap.Get(b).Stale())
			}
		})
		if poison {
			var ie *vmerrors.InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("poisoned load: err = %v, want InternalError", err)
			}
			if st := v.Stats(); st.PoisonTraps != 1 {
				t.Fatalf("PoisonTraps = %d after one trap", st.PoisonTraps)
			}
		} else if err != nil {
			t.Fatalf("stale load: unexpected error %v", err)
		}
	})
}
