package vm

import (
	"testing"

	"leakpruning/internal/heap"
)

// BenchmarkBarrierFastPath measures a reference load whose tag is clear —
// the common case whose cost Figure 6 bounds at a few percent.
func BenchmarkBarrierFastPath(b *testing.B) {
	v := New(Options{HeapLimit: 32 << 20, EnableBarriers: true, GCWorkers: 1})
	node := v.DefineClass("Node", 1, 0)
	err := v.RunThread("bench", func(t *Thread) {
		a := t.New(node)
		t.Store(a, 0, t.New(node))
		b.ResetTimer()
		for i := 0; i < b.N; i += 64 {
			t.Scope(func() {
				for j := 0; j < 64; j++ {
					t.Load(a, 0)
				}
			})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrierColdPath measures the out-of-line body (§4.1): tag clear,
// CAS store-back, stale-counter reset. Each round re-arms the slot the way
// a collection would.
func BenchmarkBarrierColdPath(b *testing.B) {
	v := New(Options{HeapLimit: 32 << 20, EnableBarriers: true, GCWorkers: 1})
	node := v.DefineClass("Node", 1, 0)
	err := v.RunThread("bench", func(t *Thread) {
		a := t.New(node)
		tgt := t.New(node)
		t.Store(a, 0, tgt)
		src := v.heap.Get(a)
		b.ResetTimer()
		for i := 0; i < b.N; i += 64 {
			t.Scope(func() {
				for j := 0; j < 64; j++ {
					src.SetRef(0, heap.Ref(tgt).WithStale())
					t.Load(a, 0)
				}
			})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrierVariants compares the two Figure 6 code shapes on the
// fast path.
func BenchmarkBarrierVariants(b *testing.B) {
	for _, variant := range []BarrierVariant{BarrierConditional, BarrierUnconditional} {
		b.Run(variant.String(), func(b *testing.B) {
			v := New(Options{HeapLimit: 32 << 20, EnableBarriers: true, Barrier: variant, GCWorkers: 1})
			node := v.DefineClass("Node", 1, 0)
			err := v.RunThread("bench", func(t *Thread) {
				a := t.New(node)
				t.Store(a, 0, t.New(node))
				b.ResetTimer()
				for i := 0; i < b.N; i += 64 {
					t.Scope(func() {
						for j := 0; j < 64; j++ {
							t.Load(a, 0)
						}
					})
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
