package vm

import (
	"fmt"
	"sync"
	"testing"

	"leakpruning/internal/heap"
	"leakpruning/internal/obs"
)

// BenchmarkBarrierFastPath measures a reference load whose tag is clear —
// the common case whose cost Figure 6 bounds at a few percent.
func BenchmarkBarrierFastPath(b *testing.B) {
	v := New(Options{HeapLimit: 32 << 20, EnableBarriers: true, GCWorkers: 1})
	node := v.DefineClass("Node", 1, 0)
	err := v.RunThread("bench", func(t *Thread) {
		a := t.New(node)
		t.Store(a, 0, t.New(node))
		b.ResetTimer()
		for i := 0; i < b.N; i += 64 {
			t.Scope(func() {
				for j := 0; j < 64; j++ {
					t.Load(a, 0)
				}
			})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrierColdPath measures the out-of-line body (§4.1): tag clear,
// CAS store-back, stale-counter reset. Each round re-arms the slot the way
// a collection would.
func BenchmarkBarrierColdPath(b *testing.B) {
	v := New(Options{HeapLimit: 32 << 20, EnableBarriers: true, GCWorkers: 1})
	node := v.DefineClass("Node", 1, 0)
	err := v.RunThread("bench", func(t *Thread) {
		a := t.New(node)
		tgt := t.New(node)
		t.Store(a, 0, tgt)
		src := v.heap.Get(a)
		b.ResetTimer()
		for i := 0; i < b.N; i += 64 {
			t.Scope(func() {
				for j := 0; j < 64; j++ {
					src.SetRef(0, heap.Ref(tgt).WithStale())
					t.Load(a, 0)
				}
			})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// benchMutatorOp drives one mutator operation from `threads` concurrent
// Threads, splitting b.N across them (so ns/op stays per-operation). Each
// thread works its own object pair, so the measurement isolates the world
// protocol's cost rather than cache-line contention on shared objects.
func benchMutatorOp(b *testing.B, mode WorldLockMode, barriers, obsOn bool, op string, threads int) {
	var o *obs.Obs
	if obsOn {
		o = obs.New()
	}
	v := New(Options{HeapLimit: 32 << 20, EnableBarriers: barriers, GCWorkers: 1, WorldLock: mode, Obs: o})
	node := v.DefineClass("Node", 1, 0)
	scratch := v.DefineClass("Scratch", 0, 64)
	per := b.N / threads
	if per == 0 {
		per = 1
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := v.RunThread("bench", func(t *Thread) {
				a := t.New(node)
				t.Store(a, 0, t.New(node))
				switch op {
				case "load":
					for i := 0; i < per; i += 64 {
						t.Scope(func() {
							for j := 0; j < 64; j++ {
								t.Load(a, 0)
							}
						})
					}
				case "store":
					tgt := t.Load(a, 0)
					for i := 0; i < per; i += 64 {
						t.Scope(func() {
							for j := 0; j < 64; j++ {
								t.Store(a, 0, tgt)
							}
						})
					}
				case "new":
					for i := 0; i < per; i += 64 {
						t.Scope(func() {
							for j := 0; j < 64; j++ {
								t.New(scratch)
							}
						})
					}
				}
			})
			if err != nil {
				b.Error(err)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkMutatorOps is the mutator fast-path matrix behind
// BENCH_mutator_ops.json: Load/Store/New, barriers on and off, 1–8 mutator
// threads, under both world-lock protocols, with the observability layer
// detached and attached. The single-thread safepoint rows measure the
// per-operation protocol cost (two thread-local atomics vs an RWMutex
// acquire/release); the multi-thread rows show the shared RWMutex read path
// serializing where the safepoint protocol does not; the obs=true rows bound
// what attaching metrics and per-thread trace rings costs the fast paths.
func BenchmarkMutatorOps(b *testing.B) {
	for _, op := range []string{"load", "store", "new"} {
		for _, barriers := range []bool{false, true} {
			for _, mode := range []WorldLockMode{WorldSafepoint, WorldRWMutex} {
				for _, obsOn := range []bool{false, true} {
					for _, threads := range []int{1, 2, 4, 8} {
						name := fmt.Sprintf("op=%s/barriers=%v/world=%s/obs=%v/threads=%d",
							op, barriers, mode, obsOn, threads)
						b.Run(name, func(b *testing.B) {
							benchMutatorOp(b, mode, barriers, obsOn, op, threads)
						})
					}
				}
			}
		}
	}
}

// BenchmarkBarrierVariants compares the two Figure 6 code shapes on the
// fast path.
func BenchmarkBarrierVariants(b *testing.B) {
	for _, variant := range []BarrierVariant{BarrierConditional, BarrierUnconditional} {
		b.Run(variant.String(), func(b *testing.B) {
			v := New(Options{HeapLimit: 32 << 20, EnableBarriers: true, Barrier: variant, GCWorkers: 1})
			node := v.DefineClass("Node", 1, 0)
			err := v.RunThread("bench", func(t *Thread) {
				a := t.New(node)
				t.Store(a, 0, t.New(node))
				b.ResetTimer()
				for i := 0; i < b.N; i += 64 {
					t.Scope(func() {
						for j := 0; j < 64; j++ {
							t.Load(a, 0)
						}
					})
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
