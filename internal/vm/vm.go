package vm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"leakpruning/internal/core"
	"leakpruning/internal/edgetable"
	"leakpruning/internal/faultinject"
	"leakpruning/internal/gc"
	"leakpruning/internal/heap"
	"leakpruning/internal/obs"
	"leakpruning/internal/offload"
	"leakpruning/internal/trace"
	"leakpruning/internal/vmerrors"
)

// Event describes one completed full-heap collection.
type Event struct {
	Result gc.Result
	Heap   heap.Stats
	State  core.State
	// Pauses lists the cycle's stop-the-world pauses in order. STW mark mode
	// has one entry (the whole cycle runs inside it); concurrent mark mode
	// has three (root snapshot, final remark, closing bookkeeping). The last
	// pause is still open when OnGC runs, so its entry excludes only the
	// world-restart tail; time-to-stop latency is tracked separately
	// (lp_safepoint_stop_ns).
	Pauses []time.Duration
	// LiveHash is the post-collection live-set fingerprint, computed inside
	// the cycle's final pause when Options.HashLiveSet is set (0 otherwise).
	LiveHash uint64
}

// Stats aggregates VM-level counters.
type Stats struct {
	Collections   uint64
	MinorGCs      uint64
	MinorGCTime   time.Duration
	MinorFrees    uint64
	GCTime        time.Duration
	Loads         uint64 // reference loads through the mutator API
	BarrierHits   uint64 // cold-path executions (tag bit set)
	PoisonTraps   uint64 // InternalErrors raised for poisoned accesses
	Allocations   uint64
	PrunedRefs    uint64
	FinalizersRun uint64

	// Robustness and degradation counters.
	FinalizerPanics      uint64 // finalizer panics recovered without aborting the STW
	PrunedEdgeOverflows  uint64 // poisoned-slot records dropped at the diagnostic cap
	EdgeTableOverflows   uint64 // edge-type insertions dropped by a full (or injected-full) table
	DegradedTraces       uint64 // collections completed via the serial fallback tracer
	RecoveredTracePanics uint64 // trace-worker panics recovered at the goroutine boundary
	WatchdogAborts       uint64 // parallel closures abandoned by the STW watchdog
	FreeListRepairs      uint64 // corrupt free-list entries detected and discarded
	AuditsRun            uint64 // heap invariant audits performed (AuditEveryGC / Verify)
	AuditViolations      uint64 // cumulative violations those audits reported
}

// FinalizerInfo is passed to finalizer functions when their object is
// collected. Finalizers run inside the collection's stop-the-world section
// and must not touch the VM; they model external-resource cleanup (§2).
type FinalizerInfo struct {
	Class string
	Size  uint64
}

type prunedEdgeKey struct {
	src  heap.ObjectID
	slot int
}

// maxPrunedEdgeRecords bounds the poisoned-reference diagnostic map.
const maxPrunedEdgeRecords = 1 << 20

// VM is one simulated managed runtime instance.
type VM struct {
	opts Options

	classes   *heap.Registry
	heap      *heap.Heap
	collector *gc.Collector
	ctrl      *core.Controller
	offloader *offload.Controller // Melt-style baseline; nil unless enabled

	// world synchronizes mutator operations against stop-the-world
	// collections: the safepoint protocol by default, or the legacy shared
	// RWMutex under Options.WorldLock == WorldRWMutex (see world.go).
	world world

	// cycleMu serializes full collection cycles. In STW mark mode the pause
	// itself already excludes overlap, so the lock is uncontended paperwork;
	// in concurrent mark mode a cycle spans three pauses with the world
	// running in between, and cycleMu is what keeps a second trigger (or a
	// minor collection) from starting a cycle inside that window. Always
	// acquired BEFORE stopping the world, never while it is stopped.
	cycleMu sync.Mutex
	// gcActive is true while a concurrent cycle is between its first and
	// last pauses — the allocation-trigger fast-out, so mutators do not
	// queue on cycleMu for a cycle that is already running.
	gcActive atomic.Bool

	// SATB deletion-barrier state (satb.go). satbArmed shares threadMu with
	// thread registration; satbMu guards the overflow list that full
	// per-thread buffers and exiting threads spill into; satbDropped flags a
	// detected (injected) barrier loss, forcing the remark to degrade.
	satbArmed    bool
	satbMu       sync.Mutex
	satbOverflow []heap.Ref
	satbDropped  atomic.Bool

	// threadMu guards the live-thread set and the retired counter totals
	// that Exit folds in when a thread unregisters.
	threadMu sync.Mutex
	threads  map[*Thread]struct{}
	retired  struct {
		loads       uint64
		allocs      uint64
		barrierHits uint64
	}

	// The global root table is chunked so that a published slot's address
	// never changes: AddGlobal (serialized by globalMu) installs fixed-size
	// chunks into a fixed-length spine and only then publishes the new
	// count, while mutator threads Load/StoreGlobal through atomic chunk
	// pointers with no lock at all. A flat append-grown slice would move
	// the backing array under concurrent readers — with K pipeline worker
	// sessions per VM, AddGlobal during one session's Setup races another
	// session's loads.
	globalMu    sync.Mutex
	globalCount atomic.Int64
	globalSpine [globalSpineLen]atomic.Pointer[globalChunk]

	finalMu    sync.Mutex
	finalizers map[heap.ObjectID]func(FinalizerInfo)

	// prunedEdges remembers the target class of poisoned references so the
	// InternalError raised on access can name the edge type. The map is
	// bounded by prunedEdgeCap (maxPrunedEdgeRecords, lowered by tests);
	// records past the cap are counted in prunedOverflows instead of being
	// silently dropped, and the trap falls back to the "<pruned>" label.
	prunedMu        sync.Mutex
	prunedEdges     map[prunedEdgeKey]heap.ClassID
	prunedEdgeCap   int
	prunedOverflows atomic.Uint64

	// inj is the fault injector shared with the heap, collector, edge
	// table, and offloader (nil: injection disabled).
	inj                *faultinject.Injector
	finalizerPanics    atomic.Uint64
	lastFinalizerPanic atomic.Value // string

	// auditMu guards the most recent invariant-audit report.
	auditMu         sync.Mutex
	lastAudit       []string
	auditsRun       atomic.Uint64
	auditViolations atomic.Uint64

	// lastGCAlloc is the cumulative allocation count at the previous
	// collection, used to gate stale-counter aging on mutator progress.
	lastGCAlloc uint64
	// lastOffloaded is how many bytes the offload baseline moved to disk in
	// the most recent collection (progress for the allocation slow path).
	lastOffloaded uint64

	// remMu guards the remembered set: old objects into which a young
	// reference was stored since the last collection (generational mode).
	remMu  sync.Mutex
	remset []heap.ObjectID
	// allocAtLastGC is the cumulative allocation byte count at the last
	// collection of either kind; the nursery trigger compares against it.
	allocAtLastGC atomic.Uint64
	minorTime     atomic.Int64
	minorFrees    atomic.Uint64

	// barriersActive gates the read-barrier fast path under LazyBarriers:
	// it flips to true (permanently — OBSERVE is permanent) when the
	// controller starts observing, standing in for the recompilation of
	// all methods with barriers.
	barriersActive atomic.Bool

	// gcTrigger is the soft collection threshold: once BytesUsed exceeds
	// it, the next allocation runs a full-heap collection even though the
	// hard limit is not reached. It models the adaptive heap sizing real
	// VMs perform: collections happen throughout the fill toward the
	// maximum heap, which is what gives the pruning state machine time to
	// observe staleness before memory is exhausted (§3.1).
	gcTrigger atomic.Uint64

	// poisonTraps stays a VM-global atomic: traps are terminal for their
	// thread, so the counter is never on a fast path. Loads, allocations,
	// and barrier hits are counted per thread (see Thread) and aggregated
	// by Stats.
	poisonTraps atomic.Uint64
	gcTimeNanos atomic.Int64
	finalizersN atomic.Uint64

	// recorder is the allocation-trace recorder (nil when recording is
	// off; all its methods are nil-safe). Mutator events flow through
	// per-thread streams (Thread.rec); the VM itself records class and
	// global definitions, collector frees, and GC-cycle outcomes, and
	// drains the streams at every stop-the-world (preparePlan).
	recorder *trace.Recorder

	// Observability handles (all nil when Options.Obs is nil; every method
	// on them is nil-safe, so instrumentation sites stay unconditional and
	// cost one branch when disabled). Per-thread trace rings live on
	// Thread; these are the VM-global pieces.
	obsTracer      *obs.Tracer
	obsPoisonTraps *obs.Counter
	obsBarrierCold *obs.Counter
	obsStopNs      *obs.Histogram
	// obsPauseNs is indexed by the cycle's gc.Mode: each histogram carries a
	// "mode" label so dashboards can tell a normal cycle's pauses from the
	// SELECT/PRUNE pauses the concurrent snapshot machinery keeps short.
	obsPauseNs [3]*obs.Histogram

	// maxPauseNs tracks, per cycle mode, the longest stop-the-world pause
	// observed so far (always maintained, with or without Options.Obs —
	// the daemon's /pressure endpoint reports it per tenant).
	maxPauseNs [3]atomic.Int64
}

// New constructs a VM. Invalid option combinations panic: configuration is
// program structure, not a runtime condition.
func New(opts Options) *VM {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		panic(err)
	}
	classes := heap.NewRegistry()
	v := &VM{
		opts:          opts,
		classes:       classes,
		heap:          heap.New(classes, opts.HeapLimit),
		threads:       make(map[*Thread]struct{}),
		finalizers:    make(map[heap.ObjectID]func(FinalizerInfo)),
		prunedEdges:   make(map[prunedEdgeKey]heap.ClassID),
		prunedEdgeCap: maxPrunedEdgeRecords,
		inj:           opts.FaultInjector,
	}
	v.world.init(opts.WorldLock)
	v.recorder = opts.TraceRecorder
	v.recorder.SetFingerprint(opts.Fingerprint())
	v.collector = gc.NewCollector(v.heap, (*rootVisitor)(v), opts.GCWorkers)
	v.heap.SetFaultInjector(v.inj)
	v.collector.SetFaultInjector(v.inj)
	v.collector.SetWatchdog(opts.STWWatchdog)
	if opts.Obs != nil {
		v.obsTracer = opts.Obs.Tracer()
		reg := opts.Obs.Registry()
		v.obsPoisonTraps = reg.NewCounter("lp_poison_traps_total", "InternalErrors raised for poisoned accesses")
		v.obsBarrierCold = reg.NewCounter("lp_barrier_cold_hits_total", "read-barrier cold-path executions")
		v.obsStopNs = reg.NewHistogram("lp_safepoint_stop_ns", "stop-the-world time-to-stop latency",
			obs.DurationBucketsNs, obs.L("world", opts.WorldLock.String()))
		for m := gc.ModeNormal; m <= gc.ModePrune; m++ {
			v.obsPauseNs[m] = reg.NewHistogram("lp_gc_pause_ns", "stop-the-world pause duration per GC pause",
				obs.DurationBucketsNs, obs.L("mark", opts.MarkMode.String()), obs.L("mode", m.String()))
		}
		v.collector.SetObs(opts.Obs)
		v.heap.SetObs(opts.Obs)
		v.inj.SetObs(opts.Obs)
	}
	v.gcTrigger.Store(softTrigger(0, opts.HeapLimit))
	if opts.EnableBarriers && !opts.LazyBarriers {
		v.barriersActive.Store(true)
	}
	ctrlOpts := core.Options{
		Policy:              opts.Policy,
		ExpectedUseFraction: opts.ExpectedUseFraction,
		NearlyFullFraction:  opts.NearlyFullFraction,
		FullHeapOnly:        opts.FullHeapOnly,
		EdgeTableSlots:      opts.EdgeTableSlots,
		ForceState:          opts.ForceState,
		Forced:              opts.Forced,
		OnPrune:             opts.OnPrune,
		OnOOM:               opts.OnOOM,
	}
	if opts.OffloadDisk > 0 {
		// The offload baseline needs staleness tracking on every
		// collection; pin the controller in OBSERVE to get the tagging and
		// aging plans without any pruning.
		ctrlOpts.Forced = true
		ctrlOpts.ForceState = core.StateObserve
		v.heap.SetDiskLimit(opts.OffloadDisk)
		v.offloader = offload.New(offload.Config{DiskLimit: opts.OffloadDisk})
	}
	if opts.OffloadDisk > 0 || opts.Forced {
		// Offloading and forced-state overhead runs need barriers from the
		// start regardless of laziness.
		if opts.EnableBarriers {
			v.barriersActive.Store(true)
		}
	}
	if opts.Generational {
		v.heap.EnableGenerations()
		if v.opts.NurserySize == 0 {
			v.opts.NurserySize = opts.HeapLimit / 8
		}
	}
	v.ctrl = core.NewController(classes, ctrlOpts)
	v.ctrl.Edges().SetFaultInjector(v.inj)
	if opts.OffloadDisk > 0 {
		v.offloader.SetFaultInjector(v.inj)
		v.offloader.SetObs(opts.Obs)
	}
	return v
}

// DefineClass registers a class with default shape and returns its ID.
func (v *VM) DefineClass(name string, refSlots, scalarBytes int) heap.ClassID {
	id := v.classes.Define(name, refSlots, scalarBytes)
	v.recorder.DefineClass(uint32(id), name, refSlots, scalarBytes)
	return id
}

// Classes exposes the class registry.
func (v *VM) Classes() *heap.Registry { return v.classes }

// HeapStats returns the heap accounting snapshot.
func (v *VM) HeapStats() heap.Stats { return v.heap.Stats() }

// HeapLimit returns the configured maximum heap size.
func (v *VM) HeapLimit() uint64 { return v.opts.HeapLimit }

// State returns the pruning controller's current state.
func (v *VM) State() core.State { return v.ctrl.State() }

// EdgeTable exposes the pruning controller's edge table for reports.
func (v *VM) EdgeTable() *edgetable.Table { return v.ctrl.Edges() }

// PruneEvents returns the controller's prune log.
func (v *VM) PruneEvents() []core.PruneEvent {
	v.lockOutSTW()
	defer v.unlockOutSTW()
	return append([]core.PruneEvent(nil), v.ctrl.Events()...)
}

// Stats returns VM counters. Loads, allocations, and barrier hits are
// sharded per thread on the mutator fast path; Stats sums the live threads'
// counters plus the totals folded in by exited threads. The sum is a
// consistent snapshot only while no mutator runs (counters may advance
// mid-aggregation otherwise, exactly like any monotonic counter read).
func (v *VM) Stats() Stats {
	v.lockOutSTW()
	pruned := v.ctrl.TotalPrunedRefs()
	idx := v.collector.Index()
	v.unlockOutSTW()
	v.threadMu.Lock()
	loads := v.retired.loads
	allocs := v.retired.allocs
	barrierHits := v.retired.barrierHits
	for t := range v.threads {
		loads += t.loads.Load()
		allocs += t.allocs.Load()
		barrierHits += t.barrierHits.Load()
	}
	v.threadMu.Unlock()
	return Stats{
		Collections:   idx,
		MinorGCs:      v.collector.MinorIndex(),
		MinorGCTime:   time.Duration(v.minorTime.Load()),
		MinorFrees:    v.minorFrees.Load(),
		GCTime:        time.Duration(v.gcTimeNanos.Load()),
		Loads:         loads,
		BarrierHits:   barrierHits,
		PoisonTraps:   v.poisonTraps.Load(),
		Allocations:   allocs,
		PrunedRefs:    pruned,
		FinalizersRun: v.finalizersN.Load(),

		FinalizerPanics:      v.finalizerPanics.Load(),
		PrunedEdgeOverflows:  v.prunedOverflows.Load(),
		EdgeTableOverflows:   v.ctrl.Edges().Overflows(),
		DegradedTraces:       v.collector.DegradedTraces(),
		RecoveredTracePanics: v.collector.RecoveredPanics(),
		WatchdogAborts:       v.collector.WatchdogAborts(),
		FreeListRepairs:      v.heap.FreeListRepairs(),
		AuditsRun:            v.auditsRun.Load(),
		AuditViolations:      v.auditViolations.Load(),
	}
}

// LastAudit returns a copy of the most recent invariant-audit report (nil
// when no audit has run; empty when the last audit was clean).
func (v *VM) LastAudit() []string {
	v.auditMu.Lock()
	defer v.auditMu.Unlock()
	if v.lastAudit == nil {
		return nil
	}
	return append([]string{}, v.lastAudit...)
}

// LastTracePanic returns the most recent recovered trace-worker panic
// message ("" if none).
func (v *VM) LastTracePanic() string { return v.collector.LastTracePanic() }

// LastFinalizerPanic returns the most recent recovered finalizer panic
// message ("" if none).
func (v *VM) LastFinalizerPanic() string {
	if s := v.lastFinalizerPanic.Load(); s != nil {
		return s.(string)
	}
	return ""
}

// Global root table geometry: 64 spine entries of 1024 slots each.
const (
	globalChunkShift = 10
	globalChunkLen   = 1 << globalChunkShift
	globalSpineLen   = 64
)

// globalChunk is one fixed block of global root slots. Slots are only
// accessed with atomic loads/stores, and a chunk, once installed in the
// spine, is never replaced.
type globalChunk [globalChunkLen]uint64

// globalSlot returns the address of global g. Callers must have
// bounds-checked g against globalCount, which is published only after the
// containing chunk is installed.
func (v *VM) globalSlot(g int) *uint64 {
	return &v.globalSpine[g>>globalChunkShift].Load()[g&(globalChunkLen-1)]
}

// AddGlobal adds a global (static) root slot and returns its index.
func (v *VM) AddGlobal() int {
	v.lockOutSTW()
	defer v.unlockOutSTW()
	v.globalMu.Lock()
	defer v.globalMu.Unlock()
	idx := int(v.globalCount.Load())
	ci := idx >> globalChunkShift
	if ci >= globalSpineLen {
		panic(fmt.Sprintf("vm: global table full (%d slots)", globalSpineLen*globalChunkLen))
	}
	if v.globalSpine[ci].Load() == nil {
		v.globalSpine[ci].Store(new(globalChunk))
	}
	v.globalCount.Store(int64(idx + 1)) // publish after the chunk exists
	v.recorder.AddGlobal(idx)
	return idx
}

// SetFinalizer registers fn to run when the object behind r is collected —
// whether by regular collection or because leak pruning reclaimed it. Our
// implementation keeps calling finalizers after pruning starts, the
// paper's default choice (§2). fn runs during the collection and must not
// touch the VM.
func (v *VM) SetFinalizer(r heap.Ref, fn func(FinalizerInfo)) {
	if r.IsNull() {
		panic("vm: SetFinalizer on null reference")
	}
	v.lockOutSTW()
	defer v.unlockOutSTW()
	v.finalMu.Lock()
	defer v.finalMu.Unlock()
	if fn == nil {
		delete(v.finalizers, r.ID())
	} else {
		v.finalizers[r.ID()] = fn
	}
}

// Collect forces one full-heap collection. Must not be called from inside a
// mutator critical region (i.e. not from a finalizer or GC callback);
// calling it between operations on a live Thread is fine. In STW mark mode
// the whole cycle runs inside one stop-the-world pause; under
// Options.MarkMode == MarkConcurrent a ModeNormal cycle marks and sweeps
// concurrently with mutators (concurrent.go), and Collect returns when the
// cycle has fully finished.
func (v *VM) Collect() gc.Result {
	v.cycleMu.Lock()
	defer v.cycleMu.Unlock()
	if v.opts.MarkMode == MarkConcurrent {
		return v.collectConcurrent()
	}
	v.stopTheWorld()
	defer v.startTheWorld()
	return v.collectLocked()
}

// rootVisitor adapts the VM's threads and globals to gc.RootVisitor.
type rootVisitor VM

// VisitRoots walks every thread frame slot and every global.
func (rv *rootVisitor) VisitRoots(fn func(heap.Ref)) {
	v := (*VM)(rv)
	v.threadMu.Lock()
	threads := make([]*Thread, 0, len(v.threads))
	for t := range v.threads {
		threads = append(threads, t)
	}
	v.threadMu.Unlock()
	for _, t := range threads {
		t.visitRoots(fn)
	}
	// Lock-free by construction: the count was published after its chunk,
	// and AddGlobal holds the STW owner lock, so no slot can appear while
	// a collection is scanning roots.
	n := int(v.globalCount.Load())
	for i := 0; i < n; i++ {
		fn(heap.Ref(atomic.LoadUint64(v.globalSlot(i))))
	}
}

// softTrigger computes the next collection threshold from the live bytes
// after a collection: a quarter of the remaining headroom (at least 1/32 of
// the heap), so collections ramp up in frequency as the heap fills — the
// paper's "allocations trigger more and more collections as memory fills
// the heap" (§3.1).
func softTrigger(live, limit uint64) uint64 {
	step := (limit - live) / 4
	if min := limit / 32; step < min {
		step = min
	}
	t := live + step
	if t > limit {
		t = limit
	}
	return t
}

// maybeCollect runs a collection if used bytes crossed the soft trigger.
// When a cycle is already in flight (a concurrent mark on another thread,
// or another thread won the race to start one) the trigger is simply
// dropped: that cycle's sweep is about to recompute the trigger anyway, and
// a thread that genuinely cannot allocate takes the blocking slow path
// (allocSlow) instead.
func (v *VM) maybeCollect() {
	if v.gcActive.Load() || !v.cycleMu.TryLock() {
		return
	}
	defer v.cycleMu.Unlock()
	if v.opts.MarkMode == MarkConcurrent {
		if v.heap.BytesUsed() > v.gcTrigger.Load() {
			v.collectConcurrent()
		}
		return
	}
	v.stopTheWorld()
	defer v.startTheWorld()
	if v.heap.BytesUsed() > v.gcTrigger.Load() {
		v.collectLocked()
	}
}

// rememberStore is the generational write barrier's slow path: record an
// old object that now holds a young reference, once per cycle.
func (v *VM) rememberStore(src *heap.Object, id heap.ObjectID) {
	if src.TryLog() {
		v.remMu.Lock()
		v.remset = append(v.remset, id)
		v.remMu.Unlock()
	}
}

// drainRemset consumes the remembered set (after any collection).
func (v *VM) drainRemset() {
	v.remMu.Lock()
	set := v.remset
	v.remset = nil
	v.remMu.Unlock()
	for _, id := range set {
		if obj, ok := v.heap.Lookup(id); ok {
			obj.Unlog()
		}
	}
}

// nurseryFull reports whether enough allocation has happened since the last
// collection to warrant a minor collection.
func (v *VM) nurseryFull() bool {
	if !v.opts.Generational {
		return false
	}
	// AllocatedBytes is the lock-free cumulative-allocation counter the
	// heap maintains in generational mode; this check runs on the
	// allocation fast path, so it must not sum the shard counters.
	return v.heap.AllocatedBytes()-v.allocAtLastGC.Load() > v.opts.NurserySize
}

// maybeMinorCollect runs a nursery collection if the nursery is full. It
// stands down while a full cycle is in flight: a minor collection frees
// unmarked nursery objects, which is unsound mid-concurrent-mark, and
// pointless right after the full sweep that cycle is about to run.
func (v *VM) maybeMinorCollect() {
	if v.gcActive.Load() || !v.cycleMu.TryLock() {
		return
	}
	defer v.cycleMu.Unlock()
	v.stopTheWorld()
	defer v.startTheWorld()
	if !v.nurseryFull() {
		return
	}
	v.remMu.Lock()
	set := append([]heap.ObjectID(nil), v.remset...)
	v.remMu.Unlock()
	res := v.collector.CollectMinor(set, v.runFinalizer)
	v.logMinorGC(res)
	v.minorTime.Add(int64(res.Duration))
	v.minorFrees.Add(res.ObjectsFreed)
	v.drainRemset()
	v.allocAtLastGC.Store(v.heap.Stats().BytesAlloc)
}

// flushTLABs returns every thread's unused allocation reservation to the
// heap, making BytesUsed exact for the collection about to run. Caller has
// stopped the world, so no context is in use.
func (v *VM) flushTLABs() {
	v.threadMu.Lock()
	for t := range v.threads {
		v.heap.ReleaseContext(&t.alloc)
	}
	v.threadMu.Unlock()
}

// collectLocked runs one fully-STW collection cycle. Caller has stopped the
// world (and, on every path except the offload baseline's fault-in, holds
// cycleMu — fault-in cannot take it because it already holds the pause, and
// the offload baseline excludes concurrent marking by construction).
func (v *VM) collectLocked() gc.Result {
	pauseStart := time.Now()
	plan := v.preparePlan()
	res := v.collector.Collect(plan)
	return v.finishCollect(res, nil, pauseStart)
}

// preparePlan readies the heap and controller for a collection cycle and
// returns the cycle plan. Caller has stopped the world.
func (v *VM) preparePlan() gc.Plan {
	v.flushTLABs()
	// The world is stopped: no thread is inside a critical region, so every
	// per-thread trace ring is safe to drain into the sink (nil-safe no-op
	// when tracing is off). The allocation-trace streams follow the same
	// discipline.
	v.obsTracer.DrainAll()
	v.recorder.DrainAll()
	plan := v.ctrl.PlanCycle()
	// Stale counters measure program time, not collector invocations: a
	// collection that ran with no allocation since the previous one (a
	// back-to-back cycle inside the allocation slow path) conveys no new
	// information about the program, so it does not age the counters.
	// Without this, exhaustion-time collection bursts would age even
	// constantly-used objects into pruning candidacy.
	allocNow := v.heap.Stats().BytesAlloc
	if plan.AgeStaleness && allocNow == v.lastGCAlloc {
		plan.AgeStaleness = false
	}
	v.lastGCAlloc = allocNow
	plan.OnFree = v.runFinalizer
	if plan.Mode == gc.ModePrune {
		// Record each poisoned slot's target class so a later trap can
		// name the pruned edge type precisely.
		prev := plan.OnPrune
		plan.OnPrune = func(srcID heap.ObjectID, slot int, src, tgt heap.ClassID) {
			v.recordPrunedEdge(srcID, slot, tgt)
			if prev != nil {
				prev(srcID, slot, src, tgt)
			}
		}
	}
	return plan
}

// finishCollect runs the post-collection bookkeeping inside the cycle's
// final stop-the-world pause: offload, logging, triggers, the controller
// transition, the optional audit, and the OnGC event. priorPauses carries
// the earlier pauses of a concurrent cycle (nil for STW cycles); the
// current pause, measured from pauseStart, is appended as the last entry.
func (v *VM) finishCollect(res gc.Result, priorPauses []time.Duration, pauseStart time.Time) gc.Result {
	var offloaded uint64
	if v.offloader != nil {
		offloaded = v.offloader.AfterGC(v.heap)
	}
	v.lastOffloaded = offloaded
	v.logFullGC(res, offloaded)
	v.gcTimeNanos.Add(int64(res.Duration))
	v.drainRemset() // a full collection subsumes the remembered set
	hs := v.heap.Stats()
	v.allocAtLastGC.Store(hs.BytesAlloc)
	v.gcTrigger.Store(softTrigger(hs.BytesUsed, hs.Limit))
	v.ctrl.FinishCycle(res, hs)
	if v.opts.AuditEveryGC {
		// Audit inside the stop-the-world section, right after the cycle:
		// TLABs are already flushed and no allocation has intervened, so the
		// mark-word check is exact. (In concurrent mark mode objects
		// allocated mid-cycle were born black on the cycle's epoch, so the
		// check holds there too.)
		v.verifyLocked(true)
	}
	if v.opts.EnableBarriers && !v.barriersActive.Load() && v.ctrl.Observing() {
		// The "recompilation" moment: from now on every load runs the
		// barrier test. OBSERVE is permanent, so this never reverts.
		v.barriersActive.Store(true)
	}
	pauses := append(priorPauses, time.Since(pauseStart))
	mode := res.Mode
	if int(mode) >= len(v.obsPauseNs) {
		mode = gc.ModeNormal
	}
	for _, p := range pauses {
		v.obsPauseNs[mode].Observe(uint64(p.Nanoseconds()))
		if ns := p.Nanoseconds(); ns > v.maxPauseNs[mode].Load() {
			v.maxPauseNs[mode].Store(ns)
		}
	}
	var liveHash uint64
	if v.opts.HashLiveSet {
		liveHash = liveSetHash(v.heap)
	}
	v.recorder.GCCycle(trace.GCInfo{
		Index:      res.Index,
		Mode:       uint8(res.Mode),
		State:      uint8(v.ctrl.State()),
		BytesLive:  hs.BytesUsed,
		Candidates: res.Candidates,
		Pruned:     res.PrunedRefs,
		Degraded:   res.Degraded,
		LiveHash:   liveHash,
	})
	if v.opts.OnGC != nil {
		v.opts.OnGC(Event{Result: res, Heap: hs, State: v.ctrl.State(), Pauses: pauses, LiveHash: liveHash})
	}
	return res
}

// MaxPausesByMode returns the longest stop-the-world pause observed so far
// for each cycle mode ("normal", "select", "prune"), in nanoseconds. Modes
// that have not run yet report 0. The daemon's /pressure endpoint exposes
// this per tenant so operators can verify SELECT/PRUNE pauses stay in the
// microsecond range under concurrent marking.
func (v *VM) MaxPausesByMode() map[string]int64 {
	out := make(map[string]int64, 3)
	for m := gc.ModeNormal; m <= gc.ModePrune; m++ {
		out[m.String()] = v.maxPauseNs[m].Load()
	}
	return out
}

// SetNearlyFullFraction tightens (or relaxes) the pruning controller's
// OBSERVE → SELECT threshold at runtime without restarting the VM — the
// first rung of a multi-tenant host's budget-pressure degradation ladder:
// lowering the threshold makes SELECT/PRUNE cycles engage at lower heap
// fullness, trading prune aggressiveness for budget headroom. Returns a
// typed *OptionError for values outside (0, 1).
func (v *VM) SetNearlyFullFraction(f float64) error {
	if !v.ctrl.SetNearlyFullFraction(f) {
		return &OptionError{Option: "NearlyFullFraction",
			Reason: fmt.Sprintf("must be in (0, 1), got %g", f)}
	}
	return nil
}

// NearlyFullFraction returns the controller's live OBSERVE → SELECT
// threshold (the configured value unless SetNearlyFullFraction changed it).
func (v *VM) NearlyFullFraction() float64 { return v.ctrl.NearlyFullFraction() }

// logFullGC writes one verbose-GC line for a full-heap collection.
func (v *VM) logFullGC(res gc.Result, offloaded uint64) {
	if v.opts.GCLog == nil {
		return
	}
	hs := v.heap.Stats()
	fmt.Fprintf(v.opts.GCLog,
		"[gc %d %s] live %s/%s (%.0f%%) freed %s in %v; state %s",
		res.Index, res.Mode, fmtBytes(hs.BytesUsed), fmtBytes(hs.Limit),
		hs.Fullness()*100, fmtBytes(res.BytesFreed), res.Duration.Round(time.Microsecond),
		v.ctrl.State())
	if res.Mode == gc.ModeSelect {
		fmt.Fprintf(v.opts.GCLog, "; candidates %d (%s stale)", res.Candidates, fmtBytes(res.StaleBytes))
	}
	if res.Mode == gc.ModePrune {
		fmt.Fprintf(v.opts.GCLog, "; pruned %d refs", res.PrunedRefs)
	}
	if offloaded > 0 {
		fmt.Fprintf(v.opts.GCLog, "; offloaded %s (disk %s/%s)",
			fmtBytes(offloaded), fmtBytes(v.heap.Disk().BytesUsed), fmtBytes(v.heap.Disk().Limit))
	}
	fmt.Fprintln(v.opts.GCLog)
}

// logMinorGC writes one verbose-GC line for a nursery collection.
func (v *VM) logMinorGC(res gc.MinorResult) {
	if v.opts.GCLog == nil {
		return
	}
	fmt.Fprintf(v.opts.GCLog,
		"[gc minor %d] nursery %d scanned, %d promoted, freed %s in %v (remset %d)\n",
		res.Index, res.YoungScanned, res.Promoted, fmtBytes(res.BytesFreed),
		res.Duration.Round(time.Microsecond), res.RemsetEntries)
}

// fmtBytes renders byte counts with a binary-unit suffix.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

func (v *VM) runFinalizer(id heap.ObjectID, class heap.ClassID, size uint64) {
	v.recorder.Free(uint64(id))
	v.finalMu.Lock()
	fn, ok := v.finalizers[id]
	if ok {
		delete(v.finalizers, id)
	}
	v.finalMu.Unlock()
	if ok {
		v.finalizersN.Add(1)
		v.safeFinalize(fn, FinalizerInfo{Class: v.classes.Name(class), Size: size})
	}
}

// safeFinalize runs one finalizer with panic isolation: finalizers execute
// inside the collection's stop-the-world section, so a panicking finalizer
// must not abort the collection or prevent the remaining finalizers from
// running. The recovery is per-finalizer and counted; the FinalizerPanic
// injection point stands in for a user finalizer that panics.
func (v *VM) safeFinalize(fn func(FinalizerInfo), info FinalizerInfo) {
	defer func() {
		if r := recover(); r != nil {
			v.finalizerPanics.Add(1)
			v.lastFinalizerPanic.Store(fmt.Sprint(r))
		}
	}()
	if v.inj.Should(faultinject.FinalizerPanic) {
		panic(fmt.Sprintf("faultinject: finalizer panic for class %s", info.Class))
	}
	fn(info)
}

// maxFruitlessCycles is how many consecutive no-progress collections the
// allocation slow path tolerates before treating memory as exhausted. A
// collection makes progress when it frees bytes, poisons references, or
// advances the pruning state machine; a few fruitless SELECT cycles must be
// tolerated because objects need time (collections) to become stale (§2).
const maxFruitlessCycles = 4

// absoluteGCBound is a backstop against a pathological select/prune
// livelock; real programs either make progress or go fruitless quickly.
const absoluteGCBound = 64

// allocSlow is the allocation slow path: collect (possibly several times,
// letting the pruning state machine advance through SELECT and PRUNE) and
// retry; when no further collection can help, record and throw the
// out-of-memory error (§2, §3.1).
func (v *VM) allocSlow(t *Thread, class heap.ClassID, opts []heap.AllocOption, size uint64) heap.Ref {
	// The slow path runs fully STW in both mark modes: exhaustion-time
	// collections must advance the pruning state machine deterministically
	// (§3.1), and a mutator that cannot allocate has nothing to overlap the
	// mark with anyway. Taking cycleMu first means waiting out any in-flight
	// concurrent cycle — whose sweep may well free the needed memory.
	v.cycleMu.Lock()
	defer v.cycleMu.Unlock()
	v.stopTheWorld()
	defer v.startTheWorld()

	fruitless := 0
	prevState := v.ctrl.State()
	for i := 0; i < absoluteGCBound; i++ {
		if ref, err := v.heap.AllocateCtx(&t.alloc, class, opts...); err == nil {
			t.recordAlloc(class, opts, ref)
			return t.root(ref)
		}
		res := v.collectLocked()
		if ref, err := v.heap.AllocateCtx(&t.alloc, class, opts...); err == nil {
			t.recordAlloc(class, opts, ref)
			return t.root(ref)
		}
		progressed := res.BytesFreed > 0 || res.PrunedRefs > 0 || v.lastOffloaded > 0 || v.ctrl.State() != prevState
		prevState = v.ctrl.State()
		if progressed {
			fruitless = 0
		} else {
			fruitless++
		}
		if fruitless >= maxFruitlessCycles {
			// The program has exhausted memory. Record the deferred OOM;
			// the controller returns true when exhaustion itself unlocks a
			// prune (a pending selection under FullHeapOnly, §3.1 option 1).
			if v.ctrl.NotifyExhaustion(v.heap.Stats(), size, v.collector.Index()) {
				fruitless = 0
				continue
			}
			break
		}
		if v.ctrl.WillPruneNext() || v.ctrl.InSelect() {
			continue // the state machine is still advancing toward a prune
		}
		if v.ctrl.NotifyExhaustion(v.heap.Stats(), size, v.collector.Index()) {
			continue
		}
		break
	}
	// Record the exhausting allocation before throwing: the replayer
	// re-attempts it so a replay under the recorded policy reproduces the
	// OOM tail (the fruitless collections above happened as a consequence
	// of this one op), while a policy that prunes more simply satisfies it.
	t.recordAllocFail(class, opts)
	oom := v.ctrl.MakeOOM(v.heap.Stats(), size, v.collector.Index())
	vmerrors.Throw(oom)
	panic("unreachable")
}

// recordPrunedEdge remembers the target class of a poisoned slot. Past the
// diagnostic cap the record is dropped — a later trap on that slot reports
// the generic "<pruned>" target — and the drop is counted, so massive
// prunes degrade observably instead of silently.
func (v *VM) recordPrunedEdge(src heap.ObjectID, slot int, tgt heap.ClassID) {
	v.prunedMu.Lock()
	key := prunedEdgeKey{src, slot}
	if _, exists := v.prunedEdges[key]; exists || len(v.prunedEdges) < v.prunedEdgeCap {
		v.prunedEdges[key] = tgt
		v.prunedMu.Unlock()
		return
	}
	v.prunedMu.Unlock()
	v.prunedOverflows.Add(1)
}

func (v *VM) prunedEdgeClass(src heap.ObjectID, slot int) (heap.ClassID, bool) {
	v.prunedMu.Lock()
	defer v.prunedMu.Unlock()
	c, ok := v.prunedEdges[prunedEdgeKey{src, slot}]
	return c, ok
}

// throwPoisonTrap raises the InternalError for an access to a poisoned
// reference, with the averted OutOfMemoryError as its cause (§4.4).
func (v *VM) throwPoisonTrap(srcClass heap.ClassID, srcID heap.ObjectID, slot int) {
	v.poisonTraps.Add(1)
	v.obsPoisonTraps.Inc()
	tgtName := "<pruned>"
	if tgt, ok := v.prunedEdgeClass(srcID, slot); ok {
		tgtName = v.classes.Name(tgt)
	}
	err := &vmerrors.InternalError{
		Cause:       v.ctrl.AvertedOOM(),
		SourceClass: v.classes.Name(srcClass),
		TargetClass: tgtName,
	}
	vmerrors.Throw(err)
}

// Disk returns the simulated-disk accounting (zero unless the offload
// baseline is enabled).
func (v *VM) Disk() heap.DiskStats { return v.heap.Disk() }

// OffloadStats returns the offload controller's counters (zero value unless
// the baseline is enabled).
func (v *VM) OffloadStats() offload.Stats {
	if v.offloader == nil {
		return offload.Stats{}
	}
	v.lockOutSTW()
	defer v.unlockOutSTW()
	return v.offloader.Stats()
}

// faultIn brings an offloaded object back into the heap, collecting (and
// offloading other stale objects) to make room if needed. The calling
// thread must be OUTSIDE its critical region (faultIn may stop the world).
// Throws OutOfMemoryError when no room can be made, or OffloadError when
// the simulated disk read keeps failing after retries (a read has no
// fallback: the object's bytes exist only on disk).
func (v *VM) faultIn(t *Thread, id heap.ObjectID) {
	attempts, ok := v.offloader.PrepareFaultIn()
	if !ok {
		vmerrors.Throw(&vmerrors.OffloadError{Op: "read", ObjectID: uint64(id), Attempts: attempts})
	}
	if err := v.heap.FaultIn(id); err == nil {
		t.beginOp()
		if obj, ok := v.heap.Lookup(id); ok {
			v.offloader.RecordFault(obj.Size())
		}
		// Inside the critical region, so the ring write is drain-safe.
		t.ring.Instant("offload.faultin", "offload", obs.A("object", int64(id)), obs.A("attempts", int64(attempts)))
		t.endOp()
		return
	}
	v.stopTheWorld()
	defer v.startTheWorld()
	fruitless := 0
	for i := 0; i < absoluteGCBound; i++ {
		if err := v.heap.FaultIn(id); err == nil {
			if obj, ok := v.heap.Lookup(id); ok {
				v.offloader.RecordFault(obj.Size())
			}
			return
		}
		res := v.collectLocked()
		if res.BytesFreed > 0 || v.lastOffloaded > 0 {
			fruitless = 0
		} else {
			fruitless++
		}
		if fruitless >= maxFruitlessCycles {
			break
		}
	}
	obj, _ := v.heap.Lookup(id)
	size := uint64(0)
	if obj != nil {
		size = obj.Size()
	}
	oom := v.ctrl.MakeOOM(v.heap.Stats(), size, v.collector.Index())
	vmerrors.Throw(oom)
}

// String summarizes the VM configuration.
func (v *VM) String() string {
	policy := "off"
	if v.opts.Policy != nil {
		policy = v.opts.Policy.Name()
	}
	if v.offloader != nil {
		policy = fmt.Sprintf("offload(disk=%dMB)", v.opts.OffloadDisk>>20)
	}
	return fmt.Sprintf("vm(heap=%dMB, pruning=%s, barriers=%v/%v, gcWorkers=%d)",
		v.opts.HeapLimit>>20, policy, v.opts.EnableBarriers, v.opts.Barrier, v.collector.Workers())
}

// ClassUsage is one row of a heap composition histogram.
type ClassUsage struct {
	Class   string
	Objects uint64
	Bytes   uint64
}

// HeapHistogram returns the live-heap composition by class, largest first —
// the raw material for the paper's §3.2 diagnostic reports. It stops the
// world for the duration of the scan.
func (v *VM) HeapHistogram() []ClassUsage {
	v.stopTheWorld()
	defer v.startTheWorld()
	type agg struct {
		objects, bytes uint64
	}
	byClass := map[heap.ClassID]*agg{}
	v.heap.ForEach(func(id heap.ObjectID, obj *heap.Object) {
		a := byClass[obj.Class()]
		if a == nil {
			a = &agg{}
			byClass[obj.Class()] = a
		}
		a.objects++
		a.bytes += obj.Size()
	})
	out := make([]ClassUsage, 0, len(byClass))
	for cls, a := range byClass {
		out = append(out, ClassUsage{Class: v.classes.Name(cls), Objects: a.objects, Bytes: a.bytes})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Class < out[j].Class
	})
	return out
}
