package vm_test

import (
	"fmt"

	"leakpruning/internal/core"
	"leakpruning/internal/vm"
	"leakpruning/internal/vmerrors"
)

// Example shows the minimal lifecycle: define classes, run a mutator
// thread, allocate and link objects, and read the error a leaky program
// ends with.
func Example() {
	machine := vm.New(vm.Options{
		HeapLimit:      64 << 10, // 64 KB — tiny on purpose
		EnableBarriers: true,
		GCWorkers:      1,
	})
	node := machine.DefineClass("Node", 1, 1024)
	head := machine.AddGlobal()

	err := machine.RunThread("main", func(t *vm.Thread) {
		for { // leak forever: every node stays reachable from the global
			t.Scope(func() {
				n := t.New(node)
				t.Store(n, 0, t.LoadGlobal(head))
				t.StoreGlobal(head, n)
			})
		}
	})
	fmt.Println("out of memory:", vmerrors.IsOOM(err))
	// Output:
	// out of memory: true
}

// Example_leakPruning enables the paper's default prediction policy: the
// same unbounded leak now runs for as long as we let it, because the
// pruner keeps reclaiming the dead list tail.
func Example_leakPruning() {
	machine := vm.New(vm.Options{
		HeapLimit:      64 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		Policy:         core.DefaultPolicy{},
	})
	node := machine.DefineClass("Node", 1, 1024)
	scratch := machine.DefineClass("Scratch", 0, 64)
	head := machine.AddGlobal()

	err := machine.RunThread("main", func(t *vm.Thread) {
		for i := 0; i < 5000; i++ {
			t.Scope(func() {
				n := t.New(node)
				t.Store(n, 0, t.LoadGlobal(head))
				t.StoreGlobal(head, n)
				t.New(scratch) // transient garbage
			})
		}
	})
	fmt.Println("survived:", err == nil)
	fmt.Println("pruned anything:", machine.Stats().PrunedRefs > 0)
	// Output:
	// survived: true
	// pruned anything: true
}

// Example_poisonedAccess demonstrates the semantics-preservation story: a
// mispredicting policy (most-stale) eventually poisons a live reference,
// and the access raises an InternalError whose cause is the out-of-memory
// error the program had already (effectively) hit.
func Example_poisonedAccess() {
	machine := vm.New(vm.Options{
		HeapLimit:      512 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		Policy:         core.MostStalePolicy{},
	})
	holder := machine.DefineClass("Holder", 2, 0)
	payload := machine.DefineClass("Payload", 0, 2048)
	rare := machine.DefineClass("RarelyUsed", 1, 256)
	scratch := machine.DefineClass("Scratch", 0, 64)
	head := machine.AddGlobal()
	session := machine.AddGlobal()

	err := machine.RunThread("main", func(t *vm.Thread) {
		t.Scope(func() {
			s := t.New(rare)
			t.Store(s, 0, t.New(payload))
			t.StoreGlobal(session, s)
		})
		for i := 0; i < 1000000; i++ {
			t.Scope(func() {
				h := t.New(holder)
				t.Store(h, 0, t.New(payload))
				t.Store(h, 1, t.LoadGlobal(head))
				t.StoreGlobal(head, h)
				for j := 0; j < 4; j++ {
					t.New(scratch)
				}
				if i%400 == 399 {
					// The rarely-used-but-live structure most-stale prunes.
					t.Load(t.LoadGlobal(session), 0)
				}
			})
		}
	})
	fmt.Println("internal error:", vmerrors.IsInternal(err))
	fmt.Println("caused by OOM:", vmerrors.IsOOM(err))
	// Output:
	// internal error: true
	// caused by OOM: true
}
