package vm

import (
	"leakpruning/internal/faultinject"
	"leakpruning/internal/heap"
)

// Snapshot-at-the-beginning (SATB) deletion-barrier buffers. While a
// mostly-concurrent mark is in flight, every Store that overwrites a heap
// reference logs the evicted value into the storing thread's satbBuffer;
// the final-remark pause drains every buffer and re-seeds the closure from
// the logged references. That preserves the tri-color invariant in its
// snapshot form: an object reachable when the cycle's roots were
// snapshotted either keeps a path the marker can still traverse, or the
// edge that was cut shows up in some buffer. Either way the marker finds
// it, so the concurrent sweep can only reclaim objects that were already
// unreachable at the snapshot (plus nothing allocated since — those are
// born black).
//
// The buffers piggyback on the safepoint protocol exactly like the TLAB
// contexts: only the owning thread touches its buffer, and it does so only
// inside critical regions, so the collector may read and reset every buffer
// while the world is stopped without any lock. The one shared structure is
// the VM's overflow list, which takes full buffers (a spill every
// satbBufCap logged deletions) and the final flush of exiting threads; it
// is guarded by a mutex that is only ever held briefly and never across a
// safepoint.

// satbBufCap is the per-thread buffer capacity; a full buffer spills to the
// VM's overflow list.
const satbBufCap = 256

// satbBuffer is one thread's deletion-barrier log. It is deliberately
// self-contained (no VM or Thread state) so the fuzz harness can drive it
// against a shadow model.
type satbBuffer struct {
	entries []heap.Ref
}

// log appends one overwritten reference. When the buffer reaches capacity
// the whole batch is handed to spill and the buffer empties; entries are
// never silently discarded.
func (b *satbBuffer) log(r heap.Ref, spill func([]heap.Ref)) {
	b.entries = append(b.entries, r)
	if len(b.entries) >= satbBufCap {
		b.flush(spill)
	}
}

// flush hands every buffered entry to spill (as a copy, so the buffer's
// backing array can be reused) and empties the buffer. No-op when empty.
func (b *satbBuffer) flush(spill func([]heap.Ref)) {
	if len(b.entries) == 0 {
		return
	}
	out := make([]heap.Ref, len(b.entries))
	copy(out, b.entries)
	b.entries = b.entries[:0]
	spill(out)
}

// take returns the buffered entries and leaves the buffer empty. Collector
// side only: the caller has stopped the world, so no copy is needed — the
// thread cannot be mid-append.
func (b *satbBuffer) take() []heap.Ref {
	out := b.entries
	b.entries = nil
	return out
}

// satbLog is the deletion barrier's out-of-line body: called by Store with
// the reference it evicted from a heap slot. Runs inside the calling
// thread's critical region.
func (t *Thread) satbLog(old heap.Ref) {
	if old.IsNull() || old.IsPoisoned() {
		// Nothing was deleted, or the deleted edge pointed at an object the
		// controller already pruned — nothing for the marker to preserve.
		return
	}
	v := t.vm
	if v.inj.Should(faultinject.SATBBarrierDrop) {
		// The entry is lost but the loss is detected (modelling a barrier
		// whose buffer write failed): flag the cycle so the remark pause
		// degrades to a fresh fully-STW closure instead of trusting an
		// incomplete log.
		v.satbDropped.Store(true)
		return
	}
	t.satb.log(old.Untagged(), v.spillSATB)
}

// spillSATB appends a full buffer's batch to the VM's overflow list. Called
// from inside a mutator critical region (Store's slow-slow path) and from
// Thread.Exit; the mutex is never held across a safepoint, so it cannot
// deadlock against a stop request.
func (v *VM) spillSATB(batch []heap.Ref) {
	v.satbMu.Lock()
	v.satbOverflow = append(v.satbOverflow, batch...)
	v.satbMu.Unlock()
}

// armSATB turns on the deletion barrier for every registered thread. Caller
// has stopped the world (pause 1 of a concurrent cycle), so the per-thread
// flags are plain writes, ordered against the threads' resumption by the
// safepoint protocol — the same contract flushTLABs relies on. Threads
// registered while the cycle runs inherit the barrier from satbArmed, which
// shares threadMu with the registration path.
func (v *VM) armSATB() {
	v.satbDropped.Store(false)
	v.threadMu.Lock()
	v.satbArmed = true
	for t := range v.threads {
		t.satbOn = true
	}
	v.threadMu.Unlock()
}

// drainSATB disarms every thread's deletion barrier and returns all logged
// references: the overflow list plus each thread's private buffer. Caller
// has stopped the world (the final-remark pause).
func (v *VM) drainSATB() []heap.Ref {
	if v.inj.Should(faultinject.SATBBarrierDrop) {
		// Drain-time arm of the barrier-drop fault: a whole buffer is deemed
		// lost as it is collected (the per-Store arm above needs racing
		// mutators to fire; this one exercises the degrade path even in
		// single-threaded runs). The grays are still handed over — degrading
		// on a conservative superset is always sound.
		v.satbDropped.Store(true)
	}
	v.satbMu.Lock()
	grays := v.satbOverflow
	v.satbOverflow = nil
	v.satbMu.Unlock()
	v.threadMu.Lock()
	v.satbArmed = false
	for t := range v.threads {
		t.satbOn = false
		grays = append(grays, t.satb.take()...)
	}
	v.threadMu.Unlock()
	return grays
}
