package vm

import (
	"fmt"
	"sync/atomic"

	"leakpruning/internal/heap"
	"leakpruning/internal/obs"
	"leakpruning/internal/trace"
	"leakpruning/internal/vmerrors"
)

// Thread is one mutator context: a stack of frames whose slots are GC
// roots. A Thread is not a goroutine — it is the root structure a goroutine
// mutates through. Each Thread must be used by at most one goroutine at a
// time; distinct Threads may run concurrently.
//
// Mutator operations run inside a critical region (see beginOp in
// world.go): under the default safepoint protocol that is two uncontended
// atomic operations on the thread's own state word, so distinct threads
// never serialize on a shared lock; collections stop the world by waiting
// for every thread to reach a safepoint.
type Thread struct {
	vm     *VM
	name   string
	frames []*Frame
	exited bool
	// safepoint caches Options.WorldLock == WorldSafepoint so the hot paths
	// branch on a thread-local bool.
	safepoint bool
	// state is the safepoint state word (threadSafe / threadRunning),
	// published with sequentially consistent atomics against the world's
	// stop flag. Unused in RWMutex mode.
	state atomic.Uint32
	// alloc is the thread's TLAB-style allocation context: a reserved byte
	// quota plus a preferred heap shard, so the allocation fast path
	// touches the shared used-byte counter only on refill. The VM returns
	// unused quota at every stop-the-world collection (flushTLABs), and
	// Exit returns it for good.
	alloc heap.AllocContext
	// cache memoizes the last chunk pointer for this thread's object
	// lookups (heap.GetCached).
	cache heap.ChunkCache
	// satbOn arms the SATB deletion barrier in Store while a concurrent mark
	// is in flight. Written by the collector only while the world is stopped
	// (plain bool, like the alloc context — the safepoint protocol orders it
	// against this thread's reads); satb is the thread-private log it feeds.
	satbOn bool
	satb   satbBuffer
	// pool recycles popped Frames and their backing arrays so Scope-heavy
	// iteration loops stop allocating (bounded by maxFramePool).
	pool []*Frame

	// Per-thread operation counters. Only this thread increments them (an
	// uncontended atomic add); Stats aggregates them across live threads
	// under threadMu and Exit folds them into the VM's retired totals.
	loads       atomic.Uint64
	allocs      atomic.Uint64
	barrierHits atomic.Uint64

	// ring is the thread's trace-event buffer (nil when tracing is off).
	// Written only inside this thread's critical regions; drained by the
	// collector at stop-the-world and closed by Exit inside its final
	// critical region, so ring access never needs a lock. Kept after the
	// hot counters so attaching tracing cannot shift their offsets.
	ring *obs.Ring

	// rec is the thread's allocation-trace stream (nil when recording is
	// off), under the same write discipline as ring: owner-only appends
	// inside critical regions, drained at stop-the-world, closed by Exit.
	rec *trace.Stream
}

// maxFramePool bounds a thread's frame pool; deeper recursion than this
// just allocates as before.
const maxFramePool = 64

// Frame is one stack frame: a fixed number of reference slots that are GC
// roots while the frame is pushed, plus an implicit set of local references.
//
// Every reference returned to the mutator by New, Load, or LoadGlobal is
// recorded as a local of the innermost frame and stays a root until that
// frame pops — the analogue of the register and stack roots a real VM
// scans. This matters specifically for leak pruning: pruning reclaims
// *reachable* objects, so without register roots a reference held only in a
// Go variable could be freed out from under the mutator when the structure
// above it is poisoned. With locals rooted, the in-hand object stays live
// and only a later load through the poisoned heap slot traps, exactly as in
// the paper.
//
// Popped frames are recycled through a per-thread pool: a *Frame must not
// be retained or used after its frame has been popped.
type Frame struct {
	slots  []uint64
	locals []uint64
	// owner is the thread whose stack this frame lives on, so Set can
	// route a recorded write to the owning thread's trace stream. A frame
	// may be handed to another goroutine (Mckoi's request frames); the
	// slot store stays a plain atomic either way.
	owner *Thread
}

// NewThread registers a new mutator thread. Threads created this way stay
// registered (their stacks remain roots) until Exit is called — which is
// exactly how the Mckoi workload leaks thread stacks (§6).
func (v *VM) NewThread(name string) *Thread {
	t := &Thread{
		vm:        v,
		name:      name,
		safepoint: v.world.mode == WorldSafepoint,
		alloc:     v.heap.NewAllocContext(),
		ring:      v.obsTracer.NewRing(name),
		rec:       v.recorder.NewStream(name),
	}
	v.threadMu.Lock()
	// A thread born while a concurrent mark is in flight starts with the
	// deletion barrier armed; sharing threadMu with armSATB/drainSATB makes
	// the handoff race-free.
	t.satbOn = v.satbArmed
	v.threads[t] = struct{}{}
	v.threadMu.Unlock()
	return t
}

// RunThread creates a thread, runs body on it in the calling goroutine,
// unregisters the thread, and converts any VM trap (OutOfMemoryError,
// InternalError) into the returned error. Non-VM panics propagate.
//
// The thread starts with a base frame so local references are always
// rooted; long-running loops should still bound root growth with Scope.
func (v *VM) RunThread(name string, body func(*Thread)) (err error) {
	t := v.NewThread(name)
	defer t.Exit()
	defer func() { err = vmerrors.Handle(recover(), err) }()
	t.PushFrame(0)
	defer t.PopFrame()
	body(t)
	return nil
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// VM returns the owning VM.
func (t *Thread) VM() *VM { return t.vm }

// Exit unregisters the thread; its stack stops being a root and its
// operation counters are folded into the VM's retired totals. Exit is
// idempotent.
func (t *Thread) Exit() {
	if t.exited {
		return
	}
	t.exited = true
	// Return the unused TLAB quota inside a critical region so the store
	// cannot race a stop-the-world flush of the same context. The trace
	// ring is drained and unregistered in the same region, alongside the
	// counter fold below: after Exit, nothing references the ring.
	t.beginOp()
	t.vm.heap.ReleaseContext(&t.alloc)
	// Hand any SATB entries this thread still buffers to the VM's overflow
	// list: after Exit the remark drain will not visit this thread, and a
	// logged deletion must never be lost (satb.go).
	t.satb.flush(t.vm.spillSATB)
	if t.ring != nil {
		t.vm.obsTracer.CloseRing(t.ring)
		t.ring = nil
	}
	if t.rec != nil {
		t.rec.Close()
		t.rec = nil
	}
	t.endOp()
	t.vm.threadMu.Lock()
	t.vm.retired.loads += t.loads.Load()
	t.vm.retired.allocs += t.allocs.Load()
	t.vm.retired.barrierHits += t.barrierHits.Load()
	delete(t.vm.threads, t)
	t.vm.threadMu.Unlock()
}

// PushFrame pushes a frame with n reference slots and returns it.
func (t *Thread) PushFrame(n int) *Frame {
	f := t.takeFrame(n)
	t.beginOp()
	t.frames = append(t.frames, f)
	if t.rec != nil {
		t.rec.Push(n)
	}
	t.endOp()
	return f
}

// takeFrame recycles a pooled frame or allocates a fresh one. It runs
// outside the critical region: the frame is invisible to the collector
// until PushFrame links it into t.frames.
func (t *Thread) takeFrame(n int) *Frame {
	if k := len(t.pool); k > 0 {
		f := t.pool[k-1]
		t.pool[k-1] = nil
		t.pool = t.pool[:k-1]
		if cap(f.slots) >= n {
			f.slots = f.slots[:n]
			for i := range f.slots {
				f.slots[i] = 0
			}
		} else {
			f.slots = make([]uint64, n)
		}
		f.locals = f.locals[:0]
		return f
	}
	return &Frame{slots: make([]uint64, n), owner: t}
}

// PopFrame pops the most recent frame and returns it to the pool.
func (t *Thread) PopFrame() {
	t.beginOp()
	n := len(t.frames)
	if n == 0 {
		t.endOp()
		panic("vm: PopFrame on empty stack")
	}
	f := t.frames[n-1]
	t.frames[n-1] = nil
	t.frames = t.frames[:n-1]
	if t.rec != nil {
		t.rec.Pop()
	}
	t.endOp()
	if len(t.pool) < maxFramePool {
		t.pool = append(t.pool, f)
	}
}

// InFrame runs body with a fresh frame of n slots, popping it afterwards
// even if body traps.
func (t *Thread) InFrame(n int, body func(*Frame)) {
	f := t.PushFrame(n)
	defer t.PopFrame()
	body(f)
}

// Scope runs body with a fresh slotless frame, so the local references body
// accumulates (from New/Load) are released when it returns. Iteration
// harnesses wrap each unit of work in a Scope to bound root growth.
func (t *Thread) Scope(body func()) {
	t.PushFrame(0)
	defer t.PopFrame()
	body()
}

// root records a reference as a local of the innermost frame. Must be
// called inside a critical region (so it cannot race with a collection's
// root scan).
func (t *Thread) root(r heap.Ref) heap.Ref {
	if r.IsNull() {
		return r
	}
	if n := len(t.frames); n > 0 {
		f := t.frames[n-1]
		f.locals = append(f.locals, uint64(r.Untagged()))
	}
	return r
}

// Get reads a local slot. Local slots hold untagged references: tags only
// live on heap reference fields.
func (f *Frame) Get(i int) heap.Ref { return heap.Ref(atomic.LoadUint64(&f.slots[i])) }

// Set writes a local slot. When the owning thread's VM is recording, the
// write happens inside a critical region so the recorded event cannot race
// a stop-the-world drain; otherwise it stays a single atomic store.
func (f *Frame) Set(i int, r heap.Ref) {
	if t := f.owner; t != nil && t.rec != nil {
		t.recordFrameSet(f, i, r)
		return
	}
	atomic.StoreUint64(&f.slots[i], uint64(r.Untagged()))
}

// Len returns the frame's slot count.
func (f *Frame) Len() int { return len(f.slots) }

// visitRoots reports every live frame slot to the collector. The world is
// stopped, so the frame list is stable.
func (t *Thread) visitRoots(fn func(heap.Ref)) {
	for _, f := range t.frames {
		for i := range f.slots {
			fn(heap.Ref(atomic.LoadUint64(&f.slots[i])))
		}
		for _, l := range f.locals {
			fn(heap.Ref(l))
		}
	}
}

// deref resolves a mutator-held reference inside the current critical
// region, faulting offloaded objects back in when the Melt baseline is
// active. It leaves the critical region only across the fault-in (which
// may itself stop the world) and always returns inside it.
func (t *Thread) deref(a heap.Ref) *heap.Object {
	v := t.vm
	obj := v.heap.GetCached(a, &t.cache)
	if obj == nil {
		t.trapDeadRef(a)
	}
	if v.offloader != nil {
		// Residency is checked inside the same critical region as the slot
		// access that follows, so the common resident case pays one flag
		// load and no second world transition.
		for obj.IsOffloaded() {
			t.endOp()
			v.faultIn(t, a.ID())
			t.beginOp()
			obj = v.heap.GetCached(a, &t.cache)
			if obj == nil {
				t.trapDeadRef(a)
			}
		}
	}
	return obj
}

// trapDeadRef leaves the critical region and reports a dereference of a
// null, dead, or unallocated reference — a runtime bug, reported with the
// same panics heap.Get raises.
//
//go:noinline
func (t *Thread) trapDeadRef(a heap.Ref) {
	t.endOp()
	if a.IsNull() {
		panic("heap: dereference of null reference")
	}
	panic(fmt.Sprintf("heap: dereference of dead or unallocated %v", a.Untagged()))
}

// trapBadSlot leaves the critical region and reports an out-of-range slot
// index.
//
//go:noinline
func (t *Thread) trapBadSlot(class heap.ClassID, n, slot int) {
	t.endOp()
	panic(fmt.Sprintf("vm: reference slot %d out of range for %s (%d slots)",
		slot, t.vm.classes.Name(class), n))
}

// New allocates an object of the given class, running the collector (and
// the pruning state machine) if the heap is full. It traps with
// OutOfMemoryError when memory is exhausted and pruning cannot help.
func (t *Thread) New(class heap.ClassID, opts ...heap.AllocOption) heap.Ref {
	v := t.vm
	t.allocs.Add(1)
	t.beginOp()
	ref, err := v.heap.AllocateCtx(&t.alloc, class, opts...)
	if err == nil {
		t.root(ref)
		if t.rec != nil {
			t.recordAlloc(class, opts, ref)
		}
		t.endOp()
		if v.opts.Generational && v.nurseryFull() {
			v.maybeMinorCollect()
		}
		if v.heap.BytesUsed() > v.gcTrigger.Load() {
			v.maybeCollect()
		}
		return ref
	}
	t.endOp()
	c := v.classes.Get(class)
	size := heap.ObjectSize(c.RefSlots, c.ScalarBytes) // upper-bound estimate for the OOM report
	return v.allocSlow(t, class, opts, size)
}

// Load reads reference slot `slot` of the object behind a, applying the
// read barrier (§4.1): if the collector tagged the reference since the last
// collection, the cold path clears the tag, resets the target's stale
// counter, and updates the edge table; if the reference is poisoned, the
// thread traps with an InternalError whose cause is the averted
// OutOfMemoryError (§4.4).
func (t *Thread) Load(a heap.Ref, slot int) heap.Ref {
	v := t.vm
	t.loads.Add(1)
	t.beginOp()
	if t.rec != nil {
		// Record before the barrier so a poison-trapping load is the last
		// event on its stream — replay reproduces the trap at the same op.
		t.rec.Load(uint64(a.ID()), slot)
	}
	src := t.deref(a)
	if uint(slot) >= uint(src.NumRefs()) {
		t.trapBadSlot(src.Class(), src.NumRefs(), slot)
	}
	b := src.Ref(slot)
	if !v.barriersActive.Load() {
		// Barriers compiled out (EnableBarriers false) or not yet
		// "recompiled in" (LazyBarriers while the controller is INACTIVE).
		// Locals are still rooted: rooting is part of the memory model,
		// not of the barrier, so overhead comparisons stay like for like.
		r := t.root(b.Untagged())
		t.endOp()
		return r
	}
	if v.opts.Barrier == BarrierUnconditional {
		r := t.root(t.loadUnconditional(src, a.ID(), slot, b))
		t.endOp()
		return r
	}
	// Conditional barrier: the fast path is a single test of the low bit
	// (poisoning sets it too), with the body out of line.
	if b&heap.TagStale != 0 {
		b = t.barrierColdPath(src, a.ID(), slot, b)
	}
	r := t.root(b)
	t.endOp()
	return r
}

// loadUnconditional is the alternative barrier shape: it always performs
// the mask, making the fast path branch-free at the cost of extra
// straight-line work (the "second platform" of Figure 6).
func (t *Thread) loadUnconditional(src *heap.Object, srcID heap.ObjectID, slot int, b heap.Ref) heap.Ref {
	tags := b.Tags()
	cleared := b.Untagged()
	if tags != 0 {
		return t.barrierColdPath(src, srcID, slot, b)
	}
	return cleared
}

// barrierColdPath implements the out-of-line barrier body from §4.1/§4.4.
// It runs inside the caller's critical region; the poison-trap path leaves
// the region before unwinding.
//
//go:noinline
func (t *Thread) barrierColdPath(src *heap.Object, srcID heap.ObjectID, slot int, b heap.Ref) heap.Ref {
	v := t.vm
	if b.IsPoisoned() {
		srcClass := src.Class()
		// Record the trap instant while still inside the critical region,
		// where ring writes are drain-safe (nil-safe when tracing is off).
		t.ring.Instant("poison.trap", "vm",
			obs.A("src_class", int64(srcClass)), obs.A("src", int64(srcID)), obs.A("slot", int64(slot)))
		t.endOp()
		v.throwPoisonTrap(srcClass, srcID, slot)
	}
	t.barrierHits.Add(1)
	v.obsBarrierCold.Inc()
	old := b
	b = b.Untagged()
	// Store back atomically with respect to the read: if another thread
	// already overwrote the slot, its value is a valid serialization and
	// we can safely use the reference we loaded (§4.1).
	src.CompareAndSwapRef(slot, old, b)
	tgt := v.heap.GetCached(b, &t.cache)
	if tgt == nil {
		t.trapDeadRef(b)
	}
	if v.ctrl.Observing() {
		if s := tgt.Stale(); s > 1 {
			v.ctrl.Edges().RecordUse(src.Class(), tgt.Class(), s)
		}
	}
	tgt.ClearStale()
	return b
}

// Store writes val into reference slot `slot` of the object behind a.
// Stored references are untagged (a reference in hand was necessarily
// loaded through the barrier or freshly allocated).
func (t *Thread) Store(a heap.Ref, slot int, val heap.Ref) {
	v := t.vm
	t.beginOp()
	if t.rec != nil {
		t.rec.Store(uint64(a.ID()), slot, uint64(val.ID()))
	}
	src := t.deref(a)
	if uint(slot) >= uint(src.NumRefs()) {
		t.trapBadSlot(src.Class(), src.NumRefs(), slot)
	}
	if t.satbOn {
		// SATB deletion barrier: the concurrent marker must be able to reach
		// everything that was reachable at the snapshot, so the reference
		// this store evicts is logged before the slot forgets it. SwapRef
		// makes the logged value exactly the evicted one — a separate
		// load-then-store pair could lose a racing thread's store unlogged.
		t.satbLog(src.SwapRef(slot, val.Untagged()))
	} else {
		src.SetRef(slot, val.Untagged())
	}
	// Generational write barrier: an old object now holding a young
	// reference must be in the remembered set for the next minor
	// collection.
	if v.opts.Generational && !val.IsNull() && !src.IsYoung() {
		if tgt, ok := v.heap.Lookup(val.ID()); ok && tgt.IsYoung() {
			v.rememberStore(src, a.ID())
		}
	}
	t.endOp()
}

// NumRefs returns the number of reference slots of the object behind a.
func (t *Thread) NumRefs(a heap.Ref) int {
	t.beginOp()
	n := t.deref(a).NumRefs()
	t.endOp()
	return n
}

// ClassOf returns the class name of the object behind a.
func (t *Thread) ClassOf(a heap.Ref) string {
	t.beginOp()
	c := t.deref(a).Class()
	t.endOp()
	return t.vm.classes.Name(c)
}

// SizeOf returns the simulated size of the object behind a.
func (t *Thread) SizeOf(a heap.Ref) uint64 {
	t.beginOp()
	s := t.deref(a).Size()
	t.endOp()
	return s
}

// LoadGlobal reads a global root slot. Globals are roots, so they carry no
// tags and need no barrier (§4.1 instruments heap loads only).
func (t *Thread) LoadGlobal(g int) heap.Ref {
	v := t.vm
	t.beginOp()
	if int64(uint(g)) >= v.globalCount.Load() {
		t.trapBadGlobal(g)
	}
	if t.rec != nil {
		t.rec.LoadGlobal(g)
	}
	r := t.root(heap.Ref(atomic.LoadUint64(v.globalSlot(g))))
	t.endOp()
	return r
}

// StoreGlobal writes a global root slot.
func (t *Thread) StoreGlobal(g int, r heap.Ref) {
	v := t.vm
	t.beginOp()
	if int64(uint(g)) >= v.globalCount.Load() {
		t.trapBadGlobal(g)
	}
	if t.rec != nil {
		t.rec.StoreGlobal(g, uint64(r.ID()))
	}
	atomic.StoreUint64(v.globalSlot(g), uint64(r.Untagged()))
	t.endOp()
}

// trapBadGlobal leaves the critical region and reports an out-of-range
// global index.
//
//go:noinline
func (t *Thread) trapBadGlobal(g int) {
	t.endOp()
	panic(fmt.Sprintf("vm: global %d out of range (%d globals)", g, t.vm.globalCount.Load()))
}
