package vm

import (
	"sync/atomic"

	"leakpruning/internal/heap"
	"leakpruning/internal/vmerrors"
)

// Thread is one mutator context: a stack of frames whose slots are GC
// roots. A Thread is not a goroutine — it is the root structure a goroutine
// mutates through. Each Thread must be used by at most one goroutine at a
// time; distinct Threads may run concurrently.
//
// Mutator operations take the VM's world lock in read mode, so they
// interleave freely with each other and stop at collection boundaries.
type Thread struct {
	vm     *VM
	name   string
	frames []*Frame
	exited bool
	// alloc is the thread's TLAB-style allocation context: a reserved byte
	// quota plus a preferred heap shard, so the allocation fast path
	// touches the shared used-byte counter only on refill. The VM returns
	// unused quota at every stop-the-world collection (flushTLABs), and
	// Exit returns it for good.
	alloc heap.AllocContext
}

// Frame is one stack frame: a fixed number of reference slots that are GC
// roots while the frame is pushed, plus an implicit set of local references.
//
// Every reference returned to the mutator by New, Load, or LoadGlobal is
// recorded as a local of the innermost frame and stays a root until that
// frame pops — the analogue of the register and stack roots a real VM
// scans. This matters specifically for leak pruning: pruning reclaims
// *reachable* objects, so without register roots a reference held only in a
// Go variable could be freed out from under the mutator when the structure
// above it is poisoned. With locals rooted, the in-hand object stays live
// and only a later load through the poisoned heap slot traps, exactly as in
// the paper.
type Frame struct {
	slots  []uint64
	locals []uint64
}

// NewThread registers a new mutator thread. Threads created this way stay
// registered (their stacks remain roots) until Exit is called — which is
// exactly how the Mckoi workload leaks thread stacks (§6).
func (v *VM) NewThread(name string) *Thread {
	t := &Thread{vm: v, name: name, alloc: v.heap.NewAllocContext()}
	v.threadMu.Lock()
	v.threads[t] = struct{}{}
	v.threadMu.Unlock()
	return t
}

// RunThread creates a thread, runs body on it in the calling goroutine,
// unregisters the thread, and converts any VM trap (OutOfMemoryError,
// InternalError) into the returned error. Non-VM panics propagate.
//
// The thread starts with a base frame so local references are always
// rooted; long-running loops should still bound root growth with Scope.
func (v *VM) RunThread(name string, body func(*Thread)) (err error) {
	t := v.NewThread(name)
	defer t.Exit()
	defer func() { err = vmerrors.Handle(recover(), err) }()
	t.PushFrame(0)
	defer t.PopFrame()
	body(t)
	return nil
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// VM returns the owning VM.
func (t *Thread) VM() *VM { return t.vm }

// Exit unregisters the thread; its stack stops being a root. Exit is
// idempotent.
func (t *Thread) Exit() {
	if t.exited {
		return
	}
	t.exited = true
	// Return the unused TLAB quota under the world read lock so the store
	// cannot race a stop-the-world flush of the same context.
	t.vm.world.RLock()
	t.vm.heap.ReleaseContext(&t.alloc)
	t.vm.world.RUnlock()
	t.vm.threadMu.Lock()
	delete(t.vm.threads, t)
	t.vm.threadMu.Unlock()
}

// PushFrame pushes a frame with n reference slots and returns it.
func (t *Thread) PushFrame(n int) *Frame {
	f := &Frame{slots: make([]uint64, n)}
	t.vm.world.RLock()
	t.frames = append(t.frames, f)
	t.vm.world.RUnlock()
	return f
}

// PopFrame pops the most recent frame.
func (t *Thread) PopFrame() {
	t.vm.world.RLock()
	if len(t.frames) == 0 {
		t.vm.world.RUnlock()
		panic("vm: PopFrame on empty stack")
	}
	t.frames = t.frames[:len(t.frames)-1]
	t.vm.world.RUnlock()
}

// InFrame runs body with a fresh frame of n slots, popping it afterwards
// even if body traps.
func (t *Thread) InFrame(n int, body func(*Frame)) {
	f := t.PushFrame(n)
	defer t.PopFrame()
	body(f)
}

// Scope runs body with a fresh slotless frame, so the local references body
// accumulates (from New/Load) are released when it returns. Iteration
// harnesses wrap each unit of work in a Scope to bound root growth.
func (t *Thread) Scope(body func()) {
	t.PushFrame(0)
	defer t.PopFrame()
	body()
}

// root records a reference as a local of the innermost frame. Must be
// called while holding the world read lock (so it cannot race with a
// collection's root scan).
func (t *Thread) root(r heap.Ref) heap.Ref {
	if r.IsNull() {
		return r
	}
	if n := len(t.frames); n > 0 {
		f := t.frames[n-1]
		f.locals = append(f.locals, uint64(r.Untagged()))
	}
	return r
}

// Get reads a local slot. Local slots hold untagged references: tags only
// live on heap reference fields.
func (f *Frame) Get(i int) heap.Ref { return heap.Ref(atomic.LoadUint64(&f.slots[i])) }

// Set writes a local slot.
func (f *Frame) Set(i int, r heap.Ref) { atomic.StoreUint64(&f.slots[i], uint64(r.Untagged())) }

// Len returns the frame's slot count.
func (f *Frame) Len() int { return len(f.slots) }

// visitRoots reports every live frame slot to the collector. The caller
// holds the world lock (stop-the-world), so the frame list is stable.
func (t *Thread) visitRoots(fn func(heap.Ref)) {
	for _, f := range t.frames {
		for i := range f.slots {
			fn(heap.Ref(atomic.LoadUint64(&f.slots[i])))
		}
		for _, l := range f.locals {
			fn(heap.Ref(l))
		}
	}
}

// New allocates an object of the given class, running the collector (and
// the pruning state machine) if the heap is full. It traps with
// OutOfMemoryError when memory is exhausted and pruning cannot help.
func (t *Thread) New(class heap.ClassID, opts ...heap.AllocOption) heap.Ref {
	v := t.vm
	v.allocs.Add(1)
	v.world.RLock()
	ref, err := v.heap.AllocateCtx(&t.alloc, class, opts...)
	if err == nil {
		t.root(ref)
		v.world.RUnlock()
		if v.opts.Generational && v.nurseryFull() {
			v.maybeMinorCollect()
		}
		if v.heap.BytesUsed() > v.gcTrigger.Load() {
			v.maybeCollect()
		}
		return ref
	}
	v.world.RUnlock()
	c := v.classes.Get(class)
	size := heap.ObjectSize(c.RefSlots, c.ScalarBytes) // upper-bound estimate for the OOM report
	return v.allocSlow(t, class, opts, size)
}

// Load reads reference slot `slot` of the object behind a, applying the
// read barrier (§4.1): if the collector tagged the reference since the last
// collection, the cold path clears the tag, resets the target's stale
// counter, and updates the edge table; if the reference is poisoned, the
// thread traps with an InternalError whose cause is the averted
// OutOfMemoryError (§4.4).
func (t *Thread) Load(a heap.Ref, slot int) heap.Ref {
	v := t.vm
	v.loads.Add(1)
	if v.offloader != nil {
		t.ensureResident(a)
	}
	v.world.RLock()
	defer v.world.RUnlock()
	src := v.heap.Get(a)
	b := src.Ref(slot)
	if !v.barriersActive.Load() {
		// Barriers compiled out (EnableBarriers false) or not yet
		// "recompiled in" (LazyBarriers while the controller is INACTIVE).
		// Locals are still rooted: rooting is part of the memory model,
		// not of the barrier, so overhead comparisons stay like for like.
		return t.root(b.Untagged())
	}
	if v.opts.Barrier == BarrierUnconditional {
		return t.root(t.loadUnconditional(src, a.ID(), slot, b))
	}
	// Conditional barrier: the fast path is a single test of the low bit
	// (poisoning sets it too), with the body out of line.
	if b&heap.TagStale != 0 {
		b = v.barrierColdPath(src, a.ID(), slot, b)
	}
	return t.root(b)
}

// loadUnconditional is the alternative barrier shape: it always performs
// the mask, making the fast path branch-free at the cost of extra
// straight-line work (the "second platform" of Figure 6).
func (t *Thread) loadUnconditional(src *heap.Object, srcID heap.ObjectID, slot int, b heap.Ref) heap.Ref {
	tags := b.Tags()
	cleared := b.Untagged()
	if tags != 0 {
		return t.vm.barrierColdPath(src, srcID, slot, b)
	}
	return cleared
}

// barrierColdPath implements the out-of-line barrier body from §4.1/§4.4.
//
//go:noinline
func (v *VM) barrierColdPath(src *heap.Object, srcID heap.ObjectID, slot int, b heap.Ref) heap.Ref {
	if b.IsPoisoned() {
		v.throwPoisonTrap(src.Class(), srcID, slot)
	}
	v.barrierHits.Add(1)
	old := b
	b = b.Untagged()
	// Store back atomically with respect to the read: if another thread
	// already overwrote the slot, its value is a valid serialization and
	// we can safely use the reference we loaded (§4.1).
	src.CompareAndSwapRef(slot, old, b)
	tgt := v.heap.Get(b)
	if v.ctrl.Observing() {
		if s := tgt.Stale(); s > 1 {
			v.ctrl.Edges().RecordUse(src.Class(), tgt.Class(), s)
		}
	}
	tgt.ClearStale()
	return b
}

// Store writes val into reference slot `slot` of the object behind a.
// Stored references are untagged (a reference in hand was necessarily
// loaded through the barrier or freshly allocated).
func (t *Thread) Store(a heap.Ref, slot int, val heap.Ref) {
	v := t.vm
	if v.offloader != nil {
		t.ensureResident(a)
	}
	v.world.RLock()
	defer v.world.RUnlock()
	src := v.heap.Get(a)
	src.SetRef(slot, val.Untagged())
	// Generational write barrier: an old object now holding a young
	// reference must be in the remembered set for the next minor
	// collection.
	if v.opts.Generational && !val.IsNull() && !src.IsYoung() {
		if tgt, ok := v.heap.Lookup(val.ID()); ok && tgt.IsYoung() {
			v.rememberStore(src, a.ID())
		}
	}
}

// ensureResident faults an offloaded object back in before the mutator
// touches it (the Melt baseline's read/write barrier behaviour: disk-based
// approaches "retrieve objects from disk if the program accesses them").
func (t *Thread) ensureResident(a heap.Ref) {
	v := t.vm
	v.world.RLock()
	obj, ok := v.heap.Lookup(a.ID())
	resident := ok && !obj.IsOffloaded()
	v.world.RUnlock()
	if !resident {
		v.faultIn(a.ID())
	}
}

// NumRefs returns the number of reference slots of the object behind a.
func (t *Thread) NumRefs(a heap.Ref) int {
	v := t.vm
	v.world.RLock()
	defer v.world.RUnlock()
	return v.heap.Get(a).NumRefs()
}

// ClassOf returns the class name of the object behind a.
func (t *Thread) ClassOf(a heap.Ref) string {
	v := t.vm
	v.world.RLock()
	defer v.world.RUnlock()
	return v.classes.Name(v.heap.Get(a).Class())
}

// SizeOf returns the simulated size of the object behind a.
func (t *Thread) SizeOf(a heap.Ref) uint64 {
	v := t.vm
	v.world.RLock()
	defer v.world.RUnlock()
	return v.heap.Get(a).Size()
}

// LoadGlobal reads a global root slot. Globals are roots, so they carry no
// tags and need no barrier (§4.1 instruments heap loads only).
func (t *Thread) LoadGlobal(g int) heap.Ref {
	v := t.vm
	v.world.RLock()
	defer v.world.RUnlock()
	return t.root(heap.Ref(atomic.LoadUint64(&v.globals[g])))
}

// StoreGlobal writes a global root slot.
func (t *Thread) StoreGlobal(g int, r heap.Ref) {
	v := t.vm
	v.world.RLock()
	defer v.world.RUnlock()
	atomic.StoreUint64(&v.globals[g], uint64(r.Untagged()))
}
