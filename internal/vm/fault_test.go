package vm

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"leakpruning/internal/core"
	"leakpruning/internal/faultinject"
	"leakpruning/internal/heap"
	"leakpruning/internal/vmerrors"
)

// --- Options validation (every branch, typed errors) ---

func TestOptionsValidateTable(t *testing.T) {
	valid := Options{HeapLimit: 1 << 20, GCWorkers: 1, EnableBarriers: true}
	cases := []struct {
		name   string
		mutate func(*Options)
		option string // expected OptionError.Option; "" means valid
	}{
		{"zero-value defaults", func(o *Options) { o.EnableBarriers = false }, ""},
		{"valid pruning config", func(o *Options) { o.Policy = core.DefaultPolicy{} }, ""},
		{"valid offload config", func(o *Options) { o.OffloadDisk = 1 << 20 }, ""},
		{"fractions in range", func(o *Options) {
			o.Policy = core.DefaultPolicy{}
			o.ExpectedUseFraction = 0.5
			o.NearlyFullFraction = 0.9
		}, ""},
		{"policy without barriers", func(o *Options) {
			o.Policy = core.DefaultPolicy{}
			o.EnableBarriers = false
		}, "Policy+EnableBarriers"},
		{"forced with policy", func(o *Options) {
			o.Policy = core.DefaultPolicy{}
			o.Forced = true
		}, "Forced+Policy"},
		{"offload with policy", func(o *Options) {
			o.OffloadDisk = 1 << 20
			o.Policy = core.DefaultPolicy{}
		}, "OffloadDisk+Policy"},
		{"offload without barriers", func(o *Options) {
			o.OffloadDisk = 1 << 20
			o.EnableBarriers = false
		}, "OffloadDisk+EnableBarriers"},
		{"offload with forced", func(o *Options) {
			o.OffloadDisk = 1 << 20
			o.Forced = true
		}, "OffloadDisk+Forced"},
		{"NaN ExpectedUseFraction", func(o *Options) { o.ExpectedUseFraction = math.NaN() }, "ExpectedUseFraction"},
		{"negative ExpectedUseFraction", func(o *Options) { o.ExpectedUseFraction = -0.25 }, "ExpectedUseFraction"},
		{"ExpectedUseFraction above one", func(o *Options) { o.ExpectedUseFraction = 1.5 }, "ExpectedUseFraction"},
		{"NaN NearlyFullFraction", func(o *Options) { o.NearlyFullFraction = math.NaN() }, "NearlyFullFraction"},
		{"negative NearlyFullFraction", func(o *Options) { o.NearlyFullFraction = -1 }, "NearlyFullFraction"},
		{"NearlyFullFraction exactly one", func(o *Options) { o.NearlyFullFraction = 1.0 }, "NearlyFullFraction"},
		{"NearlyFullFraction above one", func(o *Options) { o.NearlyFullFraction = 2.5 }, "NearlyFullFraction"},
		{"negative GCWorkers", func(o *Options) { o.GCWorkers = -2 }, "GCWorkers"},
		{"negative EdgeTableSlots", func(o *Options) { o.EdgeTableSlots = -16 }, "EdgeTableSlots"},
		{"negative STWWatchdog", func(o *Options) { o.STWWatchdog = -time.Second }, "STWWatchdog"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := valid
			tc.mutate(&o)
			err := o.validate()
			if tc.option == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("validate() = %v (%T), want *OptionError", err, err)
			}
			if oe.Option != tc.option {
				t.Fatalf("OptionError.Option = %q, want %q (err: %v)", oe.Option, tc.option, oe)
			}
		})
	}
}

func TestNewPanicsWithTypedOptionError(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New with invalid options did not panic")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %T is not an error", r)
		}
		var oe *OptionError
		if !errors.As(err, &oe) || oe.Option != "NearlyFullFraction" {
			t.Fatalf("panic error = %v, want OptionError on NearlyFullFraction", err)
		}
	}()
	New(Options{EnableBarriers: true, NearlyFullFraction: 7})
}

// --- Satellite 1: pruned-edge record cap ---

func TestPrunedEdgeRecordOverflow(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true})
	v.prunedEdgeCap = 2

	v.recordPrunedEdge(1, 0, 7)
	v.recordPrunedEdge(2, 0, 7)
	v.recordPrunedEdge(3, 0, 7) // over the cap: dropped, counted
	v.recordPrunedEdge(4, 1, 8) // ditto
	v.recordPrunedEdge(1, 0, 9) // existing key: updated, not an overflow

	if got := v.Stats().PrunedEdgeOverflows; got != 2 {
		t.Fatalf("PrunedEdgeOverflows = %d, want 2", got)
	}
	if cls, ok := v.prunedEdgeClass(1, 0); !ok || cls != 9 {
		t.Fatalf("existing record not updated: (%v, %v)", cls, ok)
	}
	if _, ok := v.prunedEdgeClass(3, 0); ok {
		t.Fatal("over-cap record was stored")
	}
	// The trap on a dropped record still works, with the generic label.
	cls := v.DefineClass("Src", 1, 0)
	err := func() (err error) {
		defer func() { err = vmerrors.Handle(recover(), err) }()
		v.throwPoisonTrap(cls, 3, 0)
		return nil
	}()
	var ie *vmerrors.InternalError
	if !errors.As(err, &ie) || ie.TargetClass != "<pruned>" {
		t.Fatalf("trap on dropped record = %v, want InternalError with <pruned> target", err)
	}
}

// --- Satellite 3: finalizer panics and poison-trap storms ---

func TestFinalizerPanicDoesNotAbortCollection(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true})
	cls := v.DefineClass("Obj", 0, 64)
	ran := 0
	err := v.RunThread("main", func(th *Thread) {
		th.Scope(func() {
			for i := 0; i < 10; i++ {
				r := th.New(cls)
				if i == 3 {
					v.SetFinalizer(r, func(FinalizerInfo) { panic("finalizer 3 exploded") })
				} else {
					v.SetFinalizer(r, func(FinalizerInfo) { ran++ })
				}
			}
		})
		v.Collect()
	})
	if err != nil {
		t.Fatalf("RunThread: %v", err)
	}
	if ran != 9 {
		t.Fatalf("%d well-behaved finalizers ran, want 9", ran)
	}
	st := v.Stats()
	if st.FinalizersRun != 10 || st.FinalizerPanics != 1 {
		t.Fatalf("FinalizersRun=%d FinalizerPanics=%d, want 10/1", st.FinalizersRun, st.FinalizerPanics)
	}
	if !strings.Contains(v.LastFinalizerPanic(), "finalizer 3 exploded") {
		t.Fatalf("LastFinalizerPanic = %q", v.LastFinalizerPanic())
	}
	if viol := v.Verify(); len(viol) != 0 {
		t.Fatalf("heap unsound after finalizer panic: %v", viol)
	}
}

func TestInjectedFinalizerPanicStorm(t *testing.T) {
	inj := faultinject.New(21)
	inj.Arm(faultinject.FinalizerPanic, 1.0)
	v := newVM(t, Options{EnableBarriers: true, FaultInjector: inj})
	cls := v.DefineClass("Obj", 0, 64)
	err := v.RunThread("main", func(th *Thread) {
		th.Scope(func() {
			for i := 0; i < 50; i++ {
				v.SetFinalizer(th.New(cls), func(FinalizerInfo) {})
			}
		})
		v.Collect()
		// The VM survives the storm: allocation and collection still work.
		th.New(cls)
		v.Collect()
	})
	if err != nil {
		t.Fatalf("RunThread: %v", err)
	}
	st := v.Stats()
	if st.FinalizerPanics != 50 {
		t.Fatalf("FinalizerPanics = %d, want 50", st.FinalizerPanics)
	}
	if viol := v.Verify(); len(viol) != 0 {
		t.Fatalf("heap unsound after finalizer panic storm: %v", viol)
	}
}

// leakClasses is the standard Holder/Payload leak shape used across these
// tests: a global chain of holders grows while scratch allocations force
// collections, so chain interiors go stale and the policy prunes them.
type leakClasses struct {
	holder, payload, scratch heap.ClassID
}

func defineLeakClasses(v *VM) leakClasses {
	return leakClasses{
		holder:  v.DefineClass("Holder", 2, 0),
		payload: v.DefineClass("Payload", 1, 2048),
		scratch: v.DefineClass("Scratch", 0, 64),
	}
}

func leakDriver(v *VM, c leakClasses, g int, iters int) error {
	return v.RunThread("leaker", func(th *Thread) {
		for i := 0; i < iters; i++ {
			th.Scope(func() {
				h := th.New(c.holder)
				th.Store(h, 0, th.New(c.payload))
				th.Store(h, 1, th.LoadGlobal(g))
				th.StoreGlobal(g, h)
				for j := 0; j < 4; j++ {
					th.New(c.scratch)
				}
			})
		}
	})
}

func TestPoisonTrapStorm(t *testing.T) {
	v := New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		Policy:         core.DefaultPolicy{},
	})
	lc := defineLeakClasses(v)
	g := v.AddGlobal()
	if err := leakDriver(v, lc, g, 1200); err != nil {
		t.Fatalf("leak driver died: %v", err)
	}
	if v.Stats().PrunedRefs == 0 {
		t.Fatal("leak driver never pruned; storm has nothing to hit")
	}

	// Storm: concurrent walkers chase the global chain into the poisoned
	// region. Every walker must die with a typed InternalError — never a
	// raw panic — and the heap must stay sound throughout.
	const walkers = 4
	errs := make(chan error, walkers)
	for w := 0; w < walkers; w++ {
		go func(w int) {
			errs <- v.RunThread(fmt.Sprintf("storm-%d", w), func(th *Thread) {
				for i := 0; i < 100000; i++ {
					th.Scope(func() {
						h := th.LoadGlobal(g)
						for !h.IsNull() {
							h = th.Load(h, 1)
						}
					})
				}
			})
		}(w)
	}
	for w := 0; w < walkers; w++ {
		err := <-errs
		var ie *vmerrors.InternalError
		if !errors.As(err, &ie) {
			t.Fatalf("walker returned %v, want InternalError", err)
		}
		if ie.Cause == nil {
			t.Fatal("poison trap lost its averted-OOM cause")
		}
	}
	if got := v.Stats().PoisonTraps; got < walkers {
		t.Fatalf("PoisonTraps = %d, want at least %d", got, walkers)
	}
	if viol := v.Verify(); len(viol) != 0 {
		t.Fatalf("heap unsound after poison-trap storm: %v", viol)
	}
}

// --- The invariant auditor itself ---

func TestVerifyCleanAndDetectsPlantedDamage(t *testing.T) {
	v := newVM(t, Options{EnableBarriers: true})
	cls := v.DefineClass("Pair", 2, 0)
	g := v.AddGlobal()
	var victim heap.ObjectID
	err := v.RunThread("main", func(th *Thread) {
		a := th.New(cls)
		b := th.New(cls)
		th.Store(a, 0, b)
		th.StoreGlobal(g, a)
		victim = b.ID()
	})
	if err != nil {
		t.Fatal(err)
	}
	if viol := v.Verify(); len(viol) != 0 {
		t.Fatalf("clean VM failed audit: %v", viol)
	}
	if v.LastAudit() == nil {
		t.Fatal("LastAudit nil after a clean audit")
	}

	// Plant a use-after-free: free the referenced object behind the VM's
	// back. The audit must flag both the dangling slot and the root path.
	v.heap.Free(victim)
	viol := v.Verify()
	joined := strings.Join(viol, "\n")
	if !strings.Contains(joined, "dangling") {
		t.Fatalf("audit missed dangling reference: %v", viol)
	}
	if !strings.Contains(joined, "reachable from") {
		t.Fatalf("audit missed freed-slot reachability: %v", viol)
	}
	st := v.Stats()
	if st.AuditsRun != 2 || st.AuditViolations == 0 {
		t.Fatalf("AuditsRun=%d AuditViolations=%d", st.AuditsRun, st.AuditViolations)
	}
}

func TestAuditEveryGCStaysClean(t *testing.T) {
	v := New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		Policy:         core.DefaultPolicy{},
		AuditEveryGC:   true,
	})
	lc := defineLeakClasses(v)
	g := v.AddGlobal()
	if err := leakDriver(v, lc, g, 1200); err != nil {
		t.Fatalf("leak driver died: %v", err)
	}
	st := v.Stats()
	if st.Collections == 0 || st.AuditsRun < st.Collections {
		t.Fatalf("audits %d < collections %d", st.AuditsRun, st.Collections)
	}
	if st.AuditViolations != 0 {
		t.Fatalf("AuditEveryGC found %d violations: %v", st.AuditViolations, v.LastAudit())
	}
	if st.PrunedRefs == 0 {
		t.Fatal("leak run never pruned (audit would have missed the interesting states)")
	}
}

// --- End-to-end degradation under injected faults ---

func TestEndToEndChaosSmoke(t *testing.T) {
	inj := faultinject.New(123)
	inj.Arm(faultinject.TraceWorkerPanic, 0.02)
	inj.Arm(faultinject.FinalizerPanic, 0.1)
	inj.Arm(faultinject.ShardFreeListCorruption, 0.01)
	v := New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		GCWorkers:      4,
		Policy:         core.DefaultPolicy{},
		FaultInjector:  inj,
		AuditEveryGC:   true,
	})
	lc := defineLeakClasses(v)
	g := v.AddGlobal()
	err := leakDriver(v, lc, g, 1200)
	if err != nil && !vmerrors.IsOOM(err) && !vmerrors.IsInternal(err) {
		t.Fatalf("non-typed failure escaped the VM API: %v", err)
	}
	st := v.Stats()
	if st.AuditViolations != 0 {
		t.Fatalf("%d invariant violations under chaos: %v", st.AuditViolations, v.LastAudit())
	}
	if st.DegradedTraces != st.RecoveredTracePanics {
		t.Fatalf("degraded=%d recovered=%d, want equal (only panics armed)",
			st.DegradedTraces, st.RecoveredTracePanics)
	}
	if fires := inj.Fires(faultinject.TraceWorkerPanic); fires > 0 && st.DegradedTraces == 0 {
		t.Fatalf("%d trace panics fired but no degradation recorded", fires)
	}
	t.Logf("chaos smoke: %d collections, %d degraded, %d finalizer panics, %d free-list repairs",
		st.Collections, st.DegradedTraces, st.FinalizerPanics, st.FreeListRepairs)
}

func TestEdgeTableOverflowDegradesGracefully(t *testing.T) {
	inj := faultinject.New(31)
	inj.Arm(faultinject.EdgeTableOverflow, 1.0)
	v := New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		Policy:         core.DefaultPolicy{},
		FaultInjector:  inj,
		AuditEveryGC:   true,
	})
	lc := defineLeakClasses(v)
	g := v.AddGlobal()
	// With every edge-type insertion dropped, selection has nothing to act
	// on: pruning cannot engage and the leak runs to a *typed* OOM — the
	// graceful outcome. The collection machinery itself must stay sound.
	err := leakDriver(v, lc, g, 1200)
	if err != nil && !vmerrors.IsOOM(err) {
		t.Fatalf("edge-table overflow caused a non-OOM failure: %v", err)
	}
	st := v.Stats()
	if st.EdgeTableOverflows == 0 {
		t.Fatal("no edge-table overflows recorded despite injection")
	}
	if st.AuditViolations != 0 {
		t.Fatalf("%d invariant violations: %v", st.AuditViolations, v.LastAudit())
	}
}

// --- Offload disk I/O faults ---

func TestOffloadWriteFaultFallsBackToHeap(t *testing.T) {
	inj := faultinject.New(9)
	inj.Arm(faultinject.OffloadWriteFault, 1.0)
	v := New(Options{
		HeapLimit:      64 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		OffloadDisk:    4 << 20,
		FaultInjector:  inj,
	})
	lc := defineLeakClasses(v)
	g := v.AddGlobal()
	err := leakDriver(v, lc, g, 300)
	// Every write fails, so the disk never absorbs the leak: the run ends
	// in a typed OOM with all objects kept in heap.
	if err != nil && !vmerrors.IsOOM(err) {
		t.Fatalf("write-fault run died with non-OOM: %v", err)
	}
	st := v.OffloadStats()
	if st.KeptInHeap == 0 {
		t.Fatal("no objects recorded as kept in heap")
	}
	if st.ObjectsMoved != 0 || v.Disk().BytesUsed != 0 {
		t.Fatalf("objects reached disk despite total write failure: moved=%d disk=%d",
			st.ObjectsMoved, v.Disk().BytesUsed)
	}
	if st.WriteFaults == 0 || st.WriteRetries == 0 {
		t.Fatalf("retry accounting empty: %+v", st)
	}
}

func TestOffloadWriteFaultTransientRetriesSucceed(t *testing.T) {
	inj := faultinject.New(13)
	inj.Arm(faultinject.OffloadWriteFault, 1.0)
	inj.Limit(faultinject.OffloadWriteFault, 2) // fewer than the attempt budget
	v := New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		OffloadDisk:    4 << 20,
		FaultInjector:  inj,
	})
	lc := defineLeakClasses(v)
	g := v.AddGlobal()
	if err := leakDriver(v, lc, g, 1200); err != nil {
		t.Fatalf("transient-fault run died: %v", err)
	}
	st := v.OffloadStats()
	if st.KeptInHeap != 0 {
		t.Fatalf("transient faults left %d objects unoffloaded", st.KeptInHeap)
	}
	if st.WriteRetries != 2 || st.ObjectsMoved == 0 {
		t.Fatalf("retries=%d moved=%d, want 2 retries then success", st.WriteRetries, st.ObjectsMoved)
	}
}

func TestOffloadReadFaultThrowsTypedError(t *testing.T) {
	inj := faultinject.New(17)
	v := New(Options{
		HeapLimit:      256 << 10,
		EnableBarriers: true,
		GCWorkers:      1,
		OffloadDisk:    4 << 20,
		FaultInjector:  inj,
	})
	lc := defineLeakClasses(v)
	g := v.AddGlobal()
	if err := leakDriver(v, lc, g, 1200); err != nil {
		t.Fatalf("offload run died: %v", err)
	}
	if v.OffloadStats().ObjectsMoved == 0 {
		t.Fatal("nothing was offloaded; read faults have nothing to hit")
	}

	// Persistent read failure: the walk into the offloaded region must
	// surface a typed OffloadError, not a hang or a raw panic.
	inj.Arm(faultinject.OffloadReadFault, 1.0)
	err := v.RunThread("reader", func(th *Thread) {
		h := th.LoadGlobal(g)
		for !h.IsNull() {
			p := th.Load(h, 0)
			if !p.IsNull() {
				th.Load(p, 0)
			}
			h = th.Load(h, 1)
		}
	})
	var oe *vmerrors.OffloadError
	if !errors.As(err, &oe) {
		t.Fatalf("reader returned %v, want OffloadError", err)
	}
	if oe.Op != "read" || oe.Attempts == 0 {
		t.Fatalf("OffloadError fields: %+v", oe)
	}
	if st := v.OffloadStats(); st.ReadAborts == 0 || st.ReadRetries == 0 {
		t.Fatalf("read retry accounting empty: %+v", st)
	}

	// Transient read failure: retries absorb it and the walk completes.
	inj2 := faultinject.New(19)
	inj2.Arm(faultinject.OffloadReadFault, 1.0)
	inj2.Limit(faultinject.OffloadReadFault, 2)
	v.offloader.SetFaultInjector(inj2)
	err = v.RunThread("reader2", func(th *Thread) {
		h := th.LoadGlobal(g)
		for !h.IsNull() {
			h = th.Load(h, 1)
		}
	})
	if err != nil {
		t.Fatalf("transient read faults were not absorbed: %v", err)
	}
	if st := v.offloader.Stats(); st.ReadRetries == 0 {
		t.Fatalf("transient retries not recorded: %+v", st)
	}
}
