package vmerrors

import (
	"errors"
	"strings"
	"testing"
)

func TestOOMErrorMessage(t *testing.T) {
	oom := &OutOfMemoryError{HeapLimit: 1000, BytesUsed: 990, Request: 64, GCIndex: 7}
	msg := oom.Error()
	for _, want := range []string{"OutOfMemoryError", "990/1000", "64", "GC 7"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
}

func TestInternalErrorUnwrapsToCause(t *testing.T) {
	oom := &OutOfMemoryError{HeapLimit: 1}
	ie := &InternalError{Cause: oom, SourceClass: "A", TargetClass: "B"}
	if !errors.Is(ie, error(oom)) {
		t.Fatal("InternalError must unwrap to its averted OOM (getCause)")
	}
	var got *OutOfMemoryError
	if !errors.As(ie, &got) || got != oom {
		t.Fatal("errors.As must recover the cause")
	}
	if !strings.Contains(ie.Error(), "A -> B") {
		t.Fatalf("message %q missing edge type", ie.Error())
	}
	if (&InternalError{}).Unwrap() != nil {
		t.Fatal("nil cause must unwrap to nil")
	}
}

func TestThrowHandleRoundTrip(t *testing.T) {
	oom := &OutOfMemoryError{}
	err := func() (err error) {
		defer func() { err = Handle(recover(), err) }()
		Throw(oom)
		return nil
	}()
	if err != error(oom) {
		t.Fatalf("Handle returned %v", err)
	}
}

func TestHandlePreservesExistingError(t *testing.T) {
	sentinel := errors.New("existing")
	if got := Handle(nil, sentinel); got != sentinel {
		t.Fatalf("Handle(nil, err) = %v", got)
	}
}

func TestForeignPanicPropagates(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("foreign panic swallowed")
		}
		if v != "boom" {
			t.Fatalf("panic value = %v", v)
		}
	}()
	func() {
		defer func() { _ = Handle(recover(), nil) }()
		panic("boom")
	}()
}

func TestThrowNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Throw(nil) must panic")
		}
	}()
	Throw(nil)
}

func TestClassifiers(t *testing.T) {
	oom := &OutOfMemoryError{}
	ie := &InternalError{Cause: oom}
	if !IsOOM(oom) || !IsInternal(ie) {
		t.Fatal("direct classification failed")
	}
	// An InternalError wraps an OOM, so it is *also* an OOM by unwrapping —
	// which matches the semantics: the access failed because memory was
	// exhausted earlier.
	if !IsOOM(ie) {
		t.Fatal("InternalError must report its OOM cause")
	}
	if IsInternal(oom) {
		t.Fatal("a plain OOM is not an InternalError")
	}
	if IsOOM(errors.New("x")) || IsInternal(nil) {
		t.Fatal("foreign errors misclassified")
	}
}
