// Package vmerrors defines the error types the simulated runtime raises:
// the OutOfMemoryError a program sees when the heap is exhausted, and the
// InternalError raised when a program touches a reference that leak pruning
// poisoned. It also implements the typed-trap mechanism used to propagate
// these asynchronous errors out of mutator code and recover them at the VM
// API boundary.
package vmerrors

import (
	"errors"
	"fmt"
)

// OutOfMemoryError reports heap exhaustion. With leak pruning enabled, the
// first exhaustion is recorded and deferred rather than thrown (§2): the
// recorded instance becomes the Cause of any later InternalError.
type OutOfMemoryError struct {
	// HeapLimit is the maximum heap size in simulated bytes.
	HeapLimit uint64
	// BytesUsed is the reachable-byte count when memory was exhausted.
	BytesUsed uint64
	// Request is the allocation size that could not be satisfied.
	Request uint64
	// GCIndex is the full-heap collection count at exhaustion.
	GCIndex uint64
	// Effective marks an exhaustion recorded when pruning first engaged at
	// the nearly-full threshold (option 2 treats that threshold as the
	// effective maximum heap, §3.1) rather than at a failed allocation.
	Effective bool
}

func (e *OutOfMemoryError) Error() string {
	if e.Effective {
		return fmt.Sprintf("OutOfMemoryError: heap effectively exhausted at GC %d (pruning engaged at the nearly-full threshold; %d/%d bytes live after the first prune)",
			e.GCIndex, e.BytesUsed, e.HeapLimit)
	}
	return fmt.Sprintf("OutOfMemoryError: heap exhausted at GC %d (%d/%d bytes used, %d requested)",
		e.GCIndex, e.BytesUsed, e.HeapLimit, e.Request)
}

// InternalError reports an access to a poisoned (pruned) reference. Its
// cause is the OutOfMemoryError that would have been thrown when the program
// first exhausted memory, matching the paper's use of getCause() (§3.2).
type InternalError struct {
	// Cause is the averted OutOfMemoryError.
	Cause *OutOfMemoryError
	// SourceClass and TargetClass name the pruned reference's edge type.
	SourceClass, TargetClass string
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("InternalError: access to pruned reference %s -> %s (cause: %v)",
		e.SourceClass, e.TargetClass, e.Cause)
}

// Unwrap exposes the averted OutOfMemoryError to errors.Is/As.
func (e *InternalError) Unwrap() error {
	if e.Cause == nil {
		return nil
	}
	return e.Cause
}

// OffloadError reports a simulated-disk I/O failure that persisted through
// the offload subsystem's retries. Writes never surface it — a failed
// offload write falls back to keeping the object in the heap — so it is
// only thrown for reads (fault-ins), where no fallback exists: the object's
// bytes are on disk and the mutator needs them.
type OffloadError struct {
	// Op is the failed operation: "read" or "write".
	Op string
	// ObjectID names the object whose disk image was involved.
	ObjectID uint64
	// Attempts is how many tries (including retries with backoff) failed.
	Attempts int
}

func (e *OffloadError) Error() string {
	return fmt.Sprintf("OffloadError: disk %s failed for object %d after %d attempts",
		e.Op, e.ObjectID, e.Attempts)
}

// IsOffload reports whether err is or wraps an OffloadError.
func IsOffload(err error) bool {
	var oe *OffloadError
	return errors.As(err, &oe)
}

// trap wraps a VM error for propagation by panic. The Java VM specification
// permits InternalError to be thrown asynchronously at any program point
// (§2); mutator code in this runtime is ordinary Go code, so the analogue is
// a typed panic that the VM recovers at its API boundary (vm.VM.RunThread)
// and converts back into an error. Only *trap panics are recovered; all
// other panics propagate, so runtime bugs still crash loudly.
type trap struct{ err error }

// Throw raises err as a VM trap. It never returns.
func Throw(err error) {
	if err == nil {
		panic("vmerrors: Throw(nil)")
	}
	panic(&trap{err: err})
}

// Recover converts a recovered panic value back into the thrown VM error.
// It returns (nil, false) for a nil value and re-panics on foreign panics.
// Use it only inside a deferred function:
//
//	defer func() { err = vmerrors.Handle(recover(), err) }()
func Recover(v any) (error, bool) {
	if v == nil {
		return nil, false
	}
	if t, ok := v.(*trap); ok {
		return t.err, true
	}
	panic(v)
}

// Handle is the deferred-function helper: given recover()'s value and the
// current error result, it returns the VM error if one was trapped,
// otherwise the existing error. Foreign panics propagate.
func Handle(v any, cur error) error {
	if err, ok := Recover(v); ok {
		return err
	}
	return cur
}

// IsOOM reports whether err is or wraps an OutOfMemoryError.
func IsOOM(err error) bool {
	var oom *OutOfMemoryError
	return errors.As(err, &oom)
}

// IsInternal reports whether err is or wraps an InternalError.
func IsInternal(err error) bool {
	var ie *InternalError
	return errors.As(err, &ie)
}
