package workload

import (
	"fmt"

	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
)

// Mckoi reproduces the Mckoi SQL Database thread leak (§6): the server
// leaks a worker thread per connection. Thread stacks are GC roots that
// this runtime — like the paper's implementation — cannot reclaim, so the
// per-thread connection state pinned by each leaked stack is live forever.
// What leak pruning *can* reclaim is the dead working memory each leaked
// thread's state still references, which is why the paper reports a modest
// 1.6× extension ("Some reclaimed").

func init() {
	register("mckoi", true, func() Program { return newMckoi() })
}

type mckoi struct {
	state  heap.ClassID // ConnectionState: workBuffer (pinned by the stack)
	buffer heap.ClassID // WorkBuffer: rows (dead after the query finishes)
	rows   heap.ClassID // BufferRows
	temp   heap.ClassID // QueryTemp (ordinary transient garbage)

	leaked int
}

func newMckoi() *mckoi { return &mckoi{} }

func (p *mckoi) Name() string { return "mckoi" }
func (p *mckoi) Description() string {
	return "Mckoi SQL Database thread leak: leaked thread stacks pin connection state; their work buffers are dead"
}
func (p *mckoi) DefaultHeap() uint64 { return 8 << 20 }

const (
	mckoiStateBytes  = 12288
	mckoiBufferBytes = 4096
	mckoiRowBytes    = 4096
	mckoiTempBytes   = 512
	mckoiTempsPer    = 16
)

func (p *mckoi) Setup(t *vm.Thread) {
	v := t.VM()
	p.state = v.DefineClass("ConnectionState", 1, mckoiStateBytes)
	p.buffer = v.DefineClass("WorkBuffer", 1, mckoiBufferBytes)
	p.rows = v.DefineClass("BufferRows", 0, mckoiRowBytes)
	p.temp = v.DefineClass("QueryTemp", 0, mckoiTempBytes)
}

func (p *mckoi) Iterate(t *vm.Thread, iter int) bool {
	// Serve one connection: ordinary transient query work...
	t.InFrame(1, func(f *vm.Frame) {
		for j := 0; j < mckoiTempsPer; j++ {
			f.Set(0, t.New(p.temp))
		}
	})

	// ...then leak the worker thread. The thread is never exited, so its
	// stack frame (holding the connection state) remains a root forever.
	// The work buffer hanging off the state is dead once the query is done:
	// ConnectionState → WorkBuffer is a prunable heap edge even though the
	// state itself is pinned by the unreclaimable stack.
	t.InFrame(2, func(f *vm.Frame) {
		state := t.New(p.state)
		f.Set(0, state)
		buf := t.New(p.buffer)
		t.Store(state, 0, buf)
		rows := t.New(p.rows)
		t.Store(buf, 0, rows)

		worker := t.VM().NewThread(fmt.Sprintf("mckoi-worker-%d", p.leaked))
		p.leaked++
		wf := worker.PushFrame(1)
		wf.Set(0, state)
		// The worker blocks forever: never exited, never popped.
	})
	return false
}
