package workload

import (
	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
)

// QueueLeak (unbounded-queue): a producer/consumer work queue where the
// consumer keeps up — every batch is drained the same iteration it is
// enqueued, so the queue itself stays bounded and dequeued jobs die
// immediately. The leak is the bookkeeping: every processed job appends a
// completion record to a done log that nobody ever reads back. The log
// head stays reachable from a global, so the whole history is
// stale-but-live growth; a small in-flight ledger the scheduler revisits
// on a long period is the live structure the default policy must protect
// while pruning the log wholesale.
//
// This is also cmd/loadgen's LARGE-request profile: one request = many
// iterations of enqueue/drain/log, which is exactly the kind of
// long-running call that starves small requests of a serial pipeline.

func init() {
	registerCorpus("queueleak", TaxQueue, map[string]Outcome{
		"default":    OutcomeSurvives,
		"most-stale": OutcomeTrap, // prunes the live in-flight ledger before its next audit
		"indiv-refs": OutcomeSurvives,
		"off":        OutcomeOOM,
	}, func() Program { return newQueueLeak() })
}

type queueLeak struct {
	queue   heap.ClassID
	job     heap.ClassID
	payload heap.ClassID
	logEnt  heap.ClassID
	record  heap.ClassID
	ledgerE heap.ClassID
	ledgerB heap.ClassID
	scratch heap.ClassID
	queueG  int
	logG    int
	ledgerG int
}

func newQueueLeak() *queueLeak { return &queueLeak{} }

func (p *queueLeak) Name() string { return "queueleak" }
func (p *queueLeak) Description() string {
	return "corpus/unbounded-queue: drained work queue whose never-read completion log grows forever"
}
func (p *queueLeak) DefaultHeap() uint64 { return 8 << 20 }

const (
	queueJobsPerIter   = 8
	queueJobBytes      = 256
	queueLogBytes      = 1500
	queueLedgerEntries = 6
	ledgerTouchPeriod  = 160
)

func (p *queueLeak) Setup(t *vm.Thread) {
	v := t.VM()
	p.queue = v.DefineClass("WorkQueue", 2, 64) // head (sentinel), tail
	p.job = v.DefineClass("QueuedJob", 2, 48)   // next, payload
	p.payload = v.DefineClass("JobPayload", 0, queueJobBytes)
	p.logEnt = v.DefineClass("DoneLogEntry", 2, 48) // next, record
	p.record = v.DefineClass("DoneRecord", 0, queueLogBytes)
	p.ledgerE = v.DefineClass("InflightLedger", 2, 64) // next, blob
	p.ledgerB = v.DefineClass("LedgerBlob", 0, 256)
	p.scratch = v.DefineClass("QueueScratch", 0, 64)
	p.queueG = v.AddGlobal()
	p.logG = v.AddGlobal()
	p.ledgerG = v.AddGlobal()
	t.InFrame(2, func(f *vm.Frame) {
		// Michael–Scott style: head always points at a sentinel, so the
		// drain loop never has to write a null tail.
		q := t.New(p.queue)
		f.Set(0, q)
		sentinel := t.New(p.job)
		t.Store(q, 0, sentinel)
		t.Store(q, 1, sentinel)
		t.StoreGlobal(p.queueG, q)
		// The in-flight ledger: a short live chain the scheduler audits
		// every ledgerTouchPeriod iterations.
		var prev heap.Ref
		for i := 0; i < queueLedgerEntries; i++ {
			d := t.New(p.ledgerE)
			f.Set(1, d)
			t.Store(d, 1, t.New(p.ledgerB))
			if prev.IsNull() {
				t.StoreGlobal(p.ledgerG, d)
			} else {
				t.Store(prev, 0, d)
			}
			prev = d
		}
	})
}

func (p *queueLeak) Iterate(t *vm.Thread, iter int) bool {
	t.InFrame(3, func(f *vm.Frame) {
		q := t.LoadGlobal(p.queueG)
		f.Set(0, q)
		// Produce: enqueue a batch at the tail.
		for j := 0; j < queueJobsPerIter; j++ {
			job := t.New(p.job)
			f.Set(1, job)
			t.Store(job, 1, t.New(p.payload))
			t.Store(t.Load(q, 1), 0, job)
			t.Store(q, 1, job)
		}
		// Consume: drain everything enqueued. The dequeued node becomes
		// the new sentinel, so the old sentinel (and its payload) is dead
		// the moment the head advances — the queue never accumulates. But
		// processing appends a completion record to the unbounded done
		// log, newest first, and no code path ever reads the log.
		for {
			sentinel := t.Load(q, 0)
			f.Set(1, sentinel)
			next := t.Load(sentinel, 0)
			if next.IsNull() {
				break
			}
			f.Set(1, next)
			t.Load(next, 1) // process the job's payload
			t.Store(q, 0, next)
			e := t.New(p.logEnt)
			f.Set(2, e)
			t.Store(e, 1, t.New(p.record))
			t.Store(e, 0, t.LoadGlobal(p.logG))
			t.StoreGlobal(p.logG, e)
		}
		// Rare maintenance: the scheduler audits the live ledger.
		if iter%ledgerTouchPeriod == ledgerTouchPeriod-1 {
			d := t.LoadGlobal(p.ledgerG)
			for !d.IsNull() {
				f.Set(1, d)
				t.Load(d, 1)
				d = t.Load(d, 0)
			}
		}
	})
	churn(t, p.scratch, 8)
	return false
}
