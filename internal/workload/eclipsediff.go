package workload

import (
	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
)

// EclipseDiff reproduces Eclipse bug #115789 (§6): each structural compare
// creates a NavigationHistory entry pointing to a ResourceCompareInput;
// Eclipse traverses the history and touches the entries and inputs (live),
// but a large subtree of diff results rooted at each input is dead. Leak
// pruning selects and prunes edge types with source ResourceCompareInput,
// turning a fast-growing leak into the slow growth of the tiny live part.
//
// The "fixed" variant models the patch the authors reported: the diff
// results are simply not stored in the input, giving the flat
// reachable-memory line in Figure 1.

func init() {
	register("eclipsediff", true, func() Program { return newEclipseDiff(false) })
	register("eclipsediff-fixed", false, func() Program { return newEclipseDiff(true) })
}

type eclipseDiff struct {
	fixed bool

	entry    heap.ClassID // NavigationHistoryEntry: next, input
	input    heap.ClassID // ResourceCompareInput: diffRoot, metadata
	diffNode heap.ClassID // DiffNode: fanout children + payload
	metadata heap.ClassID // CompareMetadata
	scratch  heap.ClassID // transient compare scratch

	regNode heap.ClassID // plugin registry list node: descriptor, next
	plugin  heap.ClassID // PluginDescriptor: config
	config  heap.ClassID // PluginConfig

	head    int
	regHead int
}

func newEclipseDiff(fixed bool) *eclipseDiff { return &eclipseDiff{fixed: fixed} }

func (p *eclipseDiff) Name() string {
	if p.fixed {
		return "eclipsediff-fixed"
	}
	return "eclipsediff"
}

func (p *eclipseDiff) Description() string {
	if p.fixed {
		return "EclipseDiff with the leak manually fixed (diff results dropped after use)"
	}
	return "Eclipse bug #115789: NavigationHistory entries keep dead diff-result subtrees reachable"
}

func (p *eclipseDiff) DefaultHeap() uint64 { return 4 << 20 }

const (
	diffFanout       = 4
	diffDepth        = 2 // 1 + 4 + 16 = 21 nodes per diff tree
	diffNodePayload  = 2048
	diffMetadataSize = 128

	// The plugin registry is live but visited rarely: the default
	// algorithm protects it (its edge types acquire a saturated
	// maxStaleUse on first reuse), while the most-stale baseline
	// eventually prunes it and traps — Table 2's EclipseDiff contrast.
	diffRegistrySize   = 30
	diffRegistryPeriod = 200
	diffRegConfigBytes = 1024
)

func (p *eclipseDiff) Setup(t *vm.Thread) {
	v := t.VM()
	p.entry = v.DefineClass("NavigationHistoryEntry", 2, 16)
	p.input = v.DefineClass("ResourceCompareInput", 2, 64)
	p.diffNode = v.DefineClass("DiffNode", diffFanout, diffNodePayload)
	p.metadata = v.DefineClass("CompareMetadata", 0, diffMetadataSize)
	p.scratch = v.DefineClass("CompareScratch", 0, 512)
	p.regNode = v.DefineClass("PluginRegistryNode", 2, 0)
	p.plugin = v.DefineClass("PluginDescriptor", 1, 64)
	p.config = v.DefineClass("PluginConfig", 0, diffRegConfigBytes)
	p.head = v.AddGlobal()
	p.regHead = v.AddGlobal()

	t.InFrame(1, func(f *vm.Frame) {
		for i := 0; i < diffRegistrySize; i++ {
			node := t.New(p.regNode)
			f.Set(0, node)
			desc := t.New(p.plugin)
			t.Store(node, 0, desc)
			cfg := t.New(p.config)
			t.Store(desc, 0, cfg)
			t.Store(node, 1, t.LoadGlobal(p.regHead))
			t.StoreGlobal(p.regHead, node)
		}
	})
}

// buildDiffTree allocates the diff-result tree top-down so every node is
// reachable from the frame slot throughout construction (a collection may
// run inside any allocation).
func (p *eclipseDiff) buildDiffTree(t *vm.Thread, f *vm.Frame, slot int) heap.Ref {
	root := t.New(p.diffNode)
	f.Set(slot, root)
	var fill func(parent heap.Ref, depth int)
	fill = func(parent heap.Ref, depth int) {
		if depth == 0 {
			return
		}
		for i := 0; i < diffFanout; i++ {
			child := t.New(p.diffNode)
			t.Store(parent, i, child)
			fill(child, depth-1)
		}
	}
	fill(root, diffDepth)
	return root
}

func (p *eclipseDiff) Iterate(t *vm.Thread, iter int) bool {
	t.InFrame(3, func(f *vm.Frame) {
		// Perform one structural compare: build the diff results.
		tree := p.buildDiffTree(t, f, 0)

		input := t.New(p.input)
		f.Set(1, input)
		if !p.fixed {
			// The leak: the input retains the whole result subtree.
			t.Store(input, 0, tree)
			meta := t.New(p.metadata)
			t.Store(input, 1, meta)
		}
		f.Set(0, heap.Null) // compare finished; results dead unless leaked

		// Record the compare in the NavigationHistory.
		entry := t.New(p.entry)
		f.Set(2, entry)
		t.Store(entry, 0, t.LoadGlobal(p.head))
		t.Store(entry, 1, input)
		t.StoreGlobal(p.head, entry)
	})

	churn(t, p.scratch, 6)

	// Eclipse traverses the NavigationHistory, touching every entry and its
	// ResourceCompareInput — this is why the entries and inputs are live —
	// but never descends into the diff results.
	cur := t.LoadGlobal(p.head)
	for !cur.IsNull() {
		t.Load(cur, 1) // the input
		cur = t.Load(cur, 0)
	}

	// The plugin registry is visited rarely: live, but highly stale in
	// between visits.
	if iter%diffRegistryPeriod == 0 {
		cur = t.LoadGlobal(p.regHead)
		for !cur.IsNull() {
			desc := t.Load(cur, 0)
			t.Load(desc, 0)
			cur = t.Load(cur, 1)
		}
	}
	return false
}
