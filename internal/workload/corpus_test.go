package workload_test

import (
	"errors"
	"testing"

	"leakpruning/internal/harness"
	"leakpruning/internal/workload"
)

// reasonOutcome maps a harness end reason onto a corpus outcome.
func reasonOutcome(r harness.EndReason) workload.Outcome {
	switch r {
	case harness.EndOOM:
		return workload.OutcomeOOM
	case harness.EndPoisonTrap:
		return workload.OutcomeTrap
	default:
		return workload.OutcomeSurvives
	}
}

// TestCorpusRegistry: the taxonomy corpus covers all five leak families and
// every entry declares outcomes for the three policies plus "off".
func TestCorpusRegistry(t *testing.T) {
	corpus := workload.Corpus()
	if len(corpus) != 5 {
		t.Fatalf("corpus has %d entries, want 5: %+v", len(corpus), corpus)
	}
	seen := map[workload.Taxonomy]bool{}
	for _, e := range corpus {
		seen[e.Taxonomy] = true
		for _, pol := range []string{"off", "default", "most-stale", "indiv-refs"} {
			if _, ok := e.Expected[pol]; !ok {
				t.Errorf("%s: no expected outcome for policy %q", e.Name, pol)
			}
		}
		if _, err := workload.New(e.Name); err != nil {
			t.Errorf("corpus entry %s not in the program registry: %v", e.Name, err)
		}
	}
	for _, tax := range []workload.Taxonomy{
		workload.TaxCollection, workload.TaxListener,
		workload.TaxCache, workload.TaxThreadLocal,
		workload.TaxQueue,
	} {
		if !seen[tax] {
			t.Errorf("taxonomy class %s has no corpus program", tax)
		}
	}
}

// TestCorpusOutcomes: each corpus program ends the way its registration
// promises under every policy — the corpus version of Table 2, with the
// registration table as the single source of truth.
func TestCorpusOutcomes(t *testing.T) {
	for _, e := range workload.Corpus() {
		for pol, want := range e.Expected {
			e, pol, want := e, pol, want
			t.Run(e.Name+"/"+pol, func(t *testing.T) {
				t.Parallel()
				res, err := harness.Run(harness.Config{
					Program:  e.Name,
					Policy:   pol,
					MaxIters: 2000,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := reasonOutcome(res.Reason); got != want {
					t.Fatalf("%s under %s: %s (reason %s at iter %d), registered outcome %s",
						e.Name, pol, got, res.Reason, res.Iterations, want)
				}
				// Survival under a pruning policy must be earned: the run
				// has to outlive the no-pruning baseline by an actual PRUNE.
				if want == workload.OutcomeSurvives && pol != "off" && len(res.Prunes) == 0 {
					t.Errorf("%s under %s survived without a single prune — not leaking hard enough", e.Name, pol)
				}
			})
		}
	}
}

// TestRegisterDuplicateTyped: registering a taken name fails with
// *DuplicateProgramError and leaves the registry untouched.
func TestRegisterDuplicateTyped(t *testing.T) {
	err := workload.Register("listleak", false, func() workload.Program { return nil })
	if err == nil {
		t.Fatal("duplicate registration succeeded")
	}
	var dup *workload.DuplicateProgramError
	if !errors.As(err, &dup) {
		t.Fatalf("err = %v (%T), want *DuplicateProgramError", err, err)
	}
	if dup.Name != "listleak" {
		t.Errorf("dup.Name = %q, want listleak", dup.Name)
	}
	if p, err := workload.New("listleak"); err != nil || p == nil || p.Name() != "listleak" {
		t.Errorf("registry entry damaged by rejected registration: %v, %v", p, err)
	}
}
