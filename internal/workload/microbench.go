package workload

import (
	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
)

// This file provides the non-leaking benchmark suite used for the overhead
// experiments (§5, Figures 6 and 7), standing in for DaCapo, pseudojbb, and
// SPECjvm98. Each benchmark maintains a steady-state live working set and
// performs a characteristic mix of reference loads, pointer chases, and
// transient allocation; the mixes vary so the suite exercises the read
// barrier from "almost every operation is a load" down to "mostly
// allocation", producing a spread of overheads like the paper's Figure 6.

// Sizer is implemented by programs that know their minimum heap size, so
// the Figure 7 harness can run them at 1.5×–5× the minimum.
type Sizer interface {
	MinHeap() uint64
}

type microBench struct {
	name      string
	liveSlots int // entries in the live working set
	chase     int // chain length per entry (pointer-chase depth)
	payload   int // payload bytes per chain node
	allocs    int // transient allocations per iteration
	loads     int // chases per iteration
	replace   int // working-set entries replaced per iteration
	hotWindow int // distinct working-set entries chased per iteration

	ring  heap.ClassID
	node  heap.ClassID
	temp  heap.ClassID
	ringG int
	rnd   *rng
}

var microBenchNames []string

func registerMicro(m *microBench) {
	name := m.name
	register(name, false, func() Program {
		c := *m
		c.rnd = newRNG(uint64(len(name))*0x1337 + uint64(name[0]))
		return &c
	})
	microBenchNames = append(microBenchNames, name)
}

// MicroBenchNames lists the non-leaking overhead suite in Figure 6 order.
func MicroBenchNames() []string { return append([]string(nil), microBenchNames...) }

func init() {
	// Named after the paper's Figure 6 benchmarks; parameters chosen to
	// span read-heavy (high barrier overhead) to alloc-heavy (low).
	for _, m := range []*microBench{
		{name: "antlr", liveSlots: 512, chase: 6, payload: 64, allocs: 10, loads: 1400, replace: 2, hotWindow: 12},
		{name: "bloat", liveSlots: 768, chase: 8, payload: 48, allocs: 8, loads: 1800, replace: 2, hotWindow: 10},
		{name: "chart", liveSlots: 256, chase: 4, payload: 256, allocs: 20, loads: 800, replace: 3, hotWindow: 16},
		{name: "eclipse", liveSlots: 1024, chase: 10, payload: 96, allocs: 12, loads: 2400, replace: 3, hotWindow: 12},
		{name: "fop", liveSlots: 384, chase: 5, payload: 128, allocs: 15, loads: 1000, replace: 2, hotWindow: 14},
		{name: "hsqldb", liveSlots: 896, chase: 7, payload: 80, allocs: 9, loads: 1600, replace: 2, hotWindow: 10},
		{name: "jython", liveSlots: 512, chase: 9, payload: 40, allocs: 11, loads: 2000, replace: 2, hotWindow: 8},
		{name: "luindex", liveSlots: 320, chase: 4, payload: 160, allocs: 18, loads: 900, replace: 3, hotWindow: 16},
		{name: "lusearch", liveSlots: 448, chase: 6, payload: 72, allocs: 14, loads: 1400, replace: 2, hotWindow: 12},
		{name: "pmd", liveSlots: 640, chase: 8, payload: 56, allocs: 10, loads: 1700, replace: 2, hotWindow: 10},
		{name: "xalan", liveSlots: 512, chase: 5, payload: 112, allocs: 22, loads: 1100, replace: 4, hotWindow: 14},
		{name: "pseudojbb", liveSlots: 768, chase: 6, payload: 144, allocs: 16, loads: 1300, replace: 3, hotWindow: 12},
	} {
		registerMicro(m)
	}
}

func (m *microBench) Name() string { return m.name }

func (m *microBench) Description() string {
	return "non-leaking overhead benchmark (steady working set; load/alloc mix)"
}

// MinHeap returns the smallest heap the benchmark runs in: its steady live
// set plus headroom for one iteration's transient allocation.
func (m *microBench) MinHeap() uint64 {
	nodeSize := heap.ObjectSize(1, m.payload)
	live := uint64(m.liveSlots)*uint64(m.chase)*nodeSize +
		heap.ObjectSize(m.liveSlots, 0)
	transient := uint64(m.allocs+m.replace*m.chase) * nodeSize
	return live + transient + (64 << 10)
}

func (m *microBench) DefaultHeap() uint64 { return 2 * m.MinHeap() }

func (m *microBench) Setup(t *vm.Thread) {
	v := t.VM()
	m.ring = v.DefineClass(m.name+".WorkingSet", 0, 0)
	m.node = v.DefineClass(m.name+".Node", 1, m.payload)
	m.temp = v.DefineClass(m.name+".Temp", 0, m.payload)
	m.ringG = v.AddGlobal()

	t.InFrame(1, func(f *vm.Frame) {
		ring := t.New(m.ring, heap.WithRefSlots(m.liveSlots))
		f.Set(0, ring)
		t.StoreGlobal(m.ringG, ring)
		for i := 0; i < m.liveSlots; i++ {
			m.buildChain(t, ring, i)
		}
	})
}

// buildChain replaces slot i of the working set with a fresh chain.
func (m *microBench) buildChain(t *vm.Thread, ring heap.Ref, i int) {
	head := t.New(m.node)
	t.Store(ring, i, head)
	cur := head
	for d := 1; d < m.chase; d++ {
		n := t.New(m.node)
		t.Store(cur, 0, n)
		cur = n
	}
}

func (m *microBench) Iterate(t *vm.Thread, iter int) bool {
	ring := t.LoadGlobal(m.ringG)

	// Pointer-chase loads over the working set: the barrier-dominated
	// part. Each iteration revisits a small hot window of entries many
	// times, giving the temporal reuse real programs have — most loads hit
	// the barrier's untagged fast path, and only the first touch of a
	// reference after a collection runs the cold path.
	hot := m.rnd.intn(m.liveSlots)
	for j := 0; j < m.loads; j++ {
		cur := t.Load(ring, (hot+j%m.hotWindow)%m.liveSlots)
		for !cur.IsNull() {
			cur = t.Load(cur, 0)
		}
	}

	// Transient allocation (collected by the next GC).
	t.InFrame(1, func(f *vm.Frame) {
		for j := 0; j < m.allocs; j++ {
			f.Set(0, t.New(m.temp))
		}
	})

	// Churn part of the working set so the heap composition turns over.
	for j := 0; j < m.replace; j++ {
		m.buildChain(t, ring, m.rnd.intn(m.liveSlots))
	}
	return false
}
