package workload

import (
	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
)

// Delaunay reproduces the colleagues' mesh-refinement application (§6): it
// is short-running and its reachable memory is bounded — it grows to a
// large working set, holds some of it longer than necessary, then finishes.
// Leak pruning gets no opportunity to help: by the time the heap is nearly
// full, everything was allocated (and touched) recently, so nothing is
// stale enough to select, and the program completes under every policy.

func init() {
	register("delaunay", true, func() Program { return newDelaunay() })
}

type delaunay struct {
	tri  heap.ClassID // Triangle: 3 neighbours
	node heap.ClassID // MeshNode: triangle, next
	temp heap.ClassID // RefineTemp

	meshG int
	rnd   *rng
}

func newDelaunay() *delaunay { return &delaunay{rnd: newRNG(0xde1)} }

func (p *delaunay) Name() string { return "delaunay" }
func (p *delaunay) Description() string {
	return "short-running mesh refinement: large but bounded reachable memory; completes before pruning can act"
}
func (p *delaunay) DefaultHeap() uint64 { return 8 << 20 }

const (
	delaunayIters       = 160
	delaunayGrowIters   = 120
	delaunayTrisPerIter = 180
	delaunayTriBytes    = 200
	delaunayTempBytes   = 2048
	delaunayTempsPer    = 24
	delaunayTouchWindow = 300
)

func (p *delaunay) Setup(t *vm.Thread) {
	v := t.VM()
	p.tri = v.DefineClass("Triangle", 3, delaunayTriBytes)
	p.node = v.DefineClass("MeshNode", 2, 0)
	p.temp = v.DefineClass("RefineTemp", 0, delaunayTempBytes)
	p.meshG = v.AddGlobal()
}

func (p *delaunay) Iterate(t *vm.Thread, iter int) bool {
	t.InFrame(2, func(f *vm.Frame) {
		// Transient refinement scratch (collected normally).
		for j := 0; j < delaunayTempsPer; j++ {
			f.Set(0, t.New(p.temp))
		}
		if iter < delaunayGrowIters {
			// Grow the mesh: triangles chained into the mesh list.
			for j := 0; j < delaunayTrisPerIter; j++ {
				tri := t.New(p.tri)
				f.Set(0, tri)
				node := t.New(p.node)
				f.Set(1, node)
				t.Store(node, 0, tri)
				t.Store(node, 1, t.LoadGlobal(p.meshG))
				t.StoreGlobal(p.meshG, node)
			}
		} else if iter == delaunayGrowIters {
			// Refinement done: the mesh is dropped (the program held it
			// "longer than it should", but it is bounded).
			t.StoreGlobal(p.meshG, heap.Null)
		}
	})

	// Touch the most recently created part of the mesh.
	cur := t.LoadGlobal(p.meshG)
	for i := 0; i < delaunayTouchWindow && !cur.IsNull(); i++ {
		t.Load(cur, 0)
		cur = t.Load(cur, 1)
	}
	return iter >= delaunayIters-1
}
