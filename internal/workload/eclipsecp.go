package workload

import (
	"fmt"

	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
)

// EclipseCP reproduces Eclipse bug #155889 (§6): repeatedly cutting and
// pasting a large text leaks the cut text. Each iteration creates a
// DefaultUndoManager$TextCommand and a DocumentEvent, both retaining a
// String whose character array holds the cut text; the undo history is
// traversed (commands and events live) but the strings are dead. On top of
// the fast leak, Eclipse-style object caches grow slowly and are touched on
// a rotation, and a plugin registry is live but visited rarely.
//
// The structure reproduces every Table 2 outcome:
//
//   - Default prunes TextCommand → String and DocumentEvent → String (the
//     biggest stale data structures) and runs an order of magnitude longer,
//     ultimately reclaiming many cache edge types as space tightens until a
//     pruned cache entry is touched.
//   - IndivRefs selects String → CharArray (the largest individual
//     targets), which also poisons the live cache strings' arrays — the
//     program traps soon after.
//   - MostStale prunes whatever is stalest, which includes the live plugin
//     registry, and traps at the next registry visit.

func init() {
	register("eclipsecp", true, func() Program { return newEclipseCP() })
}

type eclipseCP struct {
	command  heap.ClassID // DefaultUndoManager$TextCommand: fText
	event    heap.ClassID // DocumentEvent: fText
	str      heap.ClassID // String: value
	chars    heap.ClassID // CharArray
	undoNode heap.ClassID // undo history list node: command, event, next

	cacheNode    heap.ClassID // cache list node: entry, next
	cacheClasses []heap.ClassID

	scratch heap.ClassID // transient editor scratch
	regNode heap.ClassID // registry list node: descriptor, next
	plugin  heap.ClassID // PluginDescriptor: config
	config  heap.ClassID // PluginConfig

	undoHead  int
	cacheHead int
	regHead   int
}

func newEclipseCP() *eclipseCP { return &eclipseCP{} }

func (p *eclipseCP) Name() string { return "eclipsecp" }
func (p *eclipseCP) Description() string {
	return "Eclipse bug #155889: cut-save-paste-save leaks the cut text via undo commands and document events"
}
func (p *eclipseCP) DefaultHeap() uint64 { return 8 << 20 }

const (
	cutTextBytes      = 256 << 10 // the ~3 MB cut text, scaled to the simulated heap
	cpCacheClasses    = 128
	cpCachePerIter    = 4
	cpCacheBlobBytes  = 1024
	cpCacheRotation   = 16 // a cache entry is touched every 16 iterations
	cpRegistrySize    = 40
	cpRegistryPeriod  = 25 // the registry is visited every 25 iterations
	cpRegConfigBytes  = 2048
	cpUndoWindowBytes = 32
)

func (p *eclipseCP) Setup(t *vm.Thread) {
	v := t.VM()
	p.command = v.DefineClass("DefaultUndoManager$TextCommand", 1, cpUndoWindowBytes)
	p.event = v.DefineClass("DocumentEvent", 1, 48)
	p.str = v.DefineClass("String", 1, 24)
	p.chars = v.DefineClass("CharArray", 0, 0) // sized per allocation
	p.undoNode = v.DefineClass("UndoHistoryNode", 3, 0)

	p.cacheNode = v.DefineClass("CacheNode", 2, 0)
	p.cacheClasses = make([]heap.ClassID, cpCacheClasses)
	for i := range p.cacheClasses {
		p.cacheClasses[i] = v.DefineClass(fmt.Sprintf("CacheEntry%03d", i), 1, 32)
	}

	p.scratch = v.DefineClass("EditScratch", 0, 1024)
	p.regNode = v.DefineClass("RegistryNode", 2, 0)
	p.plugin = v.DefineClass("PluginDescriptor", 1, 64)
	p.config = v.DefineClass("PluginConfig", 0, cpRegConfigBytes)

	p.undoHead = v.AddGlobal()
	p.cacheHead = v.AddGlobal()
	p.regHead = v.AddGlobal()

	// Build the plugin registry: live for the whole run, visited rarely.
	t.InFrame(2, func(f *vm.Frame) {
		for i := 0; i < cpRegistrySize; i++ {
			node := t.New(p.regNode)
			f.Set(0, node)
			desc := t.New(p.plugin)
			t.Store(node, 0, desc)
			cfg := t.New(p.config)
			t.Store(desc, 0, cfg)
			t.Store(node, 1, t.LoadGlobal(p.regHead))
			t.StoreGlobal(p.regHead, node)
		}
	})
}

// newString allocates a String wrapping a fresh character array of the
// given size; the string is left in frame slot `slot`.
func (p *eclipseCP) newString(t *vm.Thread, f *vm.Frame, slot int, bytes int) heap.Ref {
	s := t.New(p.str)
	f.Set(slot, s)
	arr := t.New(p.chars, heap.WithScalarBytes(bytes))
	t.Store(s, 0, arr)
	return s
}

func (p *eclipseCP) Iterate(t *vm.Thread, iter int) bool {
	t.InFrame(3, func(f *vm.Frame) {
		// One cut-save-paste-save: the undo manager records a TextCommand
		// and the editor fires a DocumentEvent, each holding the cut text.
		cmd := t.New(p.command)
		f.Set(0, cmd)
		cutText := p.newString(t, f, 1, cutTextBytes)
		t.Store(cmd, 0, cutText)

		ev := t.New(p.event)
		f.Set(1, ev)
		evText := p.newString(t, f, 2, cutTextBytes)
		t.Store(ev, 0, evText)

		node := t.New(p.undoNode)
		f.Set(2, node)
		t.Store(node, 0, cmd)
		t.Store(node, 1, ev)
		t.Store(node, 2, t.LoadGlobal(p.undoHead))
		t.StoreGlobal(p.undoHead, node)

		// The editor's object caches grow slowly: entries of many distinct
		// classes, each holding a String over a small character array. The
		// strings share the String → CharArray shape with the leaked cut
		// text, which is precisely what makes the individual-references
		// baseline select — and wrongly poison — the live cache arrays
		// (§6.1, Table 2).
		for j := 0; j < cpCachePerIter; j++ {
			class := p.cacheClasses[(iter*cpCachePerIter+j)%cpCacheClasses]
			entry := t.New(class)
			f.Set(0, entry)
			blobStr := t.New(p.str)
			t.Store(entry, 0, blobStr)
			blob := t.New(p.chars, heap.WithScalarBytes(cpCacheBlobBytes))
			t.Store(blobStr, 0, blob)
			cn := t.New(p.cacheNode)
			f.Set(1, cn)
			t.Store(cn, 0, entry)
			t.Store(cn, 1, t.LoadGlobal(p.cacheHead))
			t.StoreGlobal(p.cacheHead, cn)
		}
	})

	churn(t, p.scratch, 6)

	// Walk the undo history: commands and events stay live; their strings
	// are never touched again (the leak).
	cur := t.LoadGlobal(p.undoHead)
	for !cur.IsNull() {
		t.Load(cur, 0)
		t.Load(cur, 1)
		cur = t.Load(cur, 2)
	}

	// Rotate over the caches: every entry is touched (string and array
	// loaded) once every cpCacheRotation iterations.
	idx := 0
	cur = t.LoadGlobal(p.cacheHead)
	for !cur.IsNull() {
		if idx%cpCacheRotation == iter%cpCacheRotation {
			entry := t.Load(cur, 0)
			s := t.Load(entry, 0)
			t.Load(s, 0)
		}
		cur = t.Load(cur, 1)
		idx++
	}

	// Visit the plugin registry rarely: live, but highly stale in between.
	if iter%cpRegistryPeriod == 0 {
		cur = t.LoadGlobal(p.regHead)
		for !cur.IsNull() {
			desc := t.Load(cur, 0)
			t.Load(desc, 0)
			cur = t.Load(cur, 1)
		}
	}
	return false
}
