package workload

// rng is a tiny deterministic xorshift64* generator so workloads behave
// identically run to run without importing math/rand (whose global seeding
// would couple programs to each other).
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("rng: intn with n <= 0")
	}
	return int(r.next() % uint64(n))
}
