package workload_test

import (
	"strings"
	"testing"

	"leakpruning/internal/harness"
)

// These tests pin down the *mechanisms* §6 of the paper describes for each
// leak — not just how long the programs survive, but which edge types leak
// pruning selects and which live structures the maxStaleUse machinery
// protects. They are integration tests over the whole stack.

func runFor(t *testing.T, program, policy string, maxIters int) harness.Result {
	t.Helper()
	res, err := harness.Run(harness.Config{Program: program, Policy: policy, MaxIters: maxIters})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// prunedSelections gathers the distinct selection descriptions of a run.
func prunedSelections(res harness.Result) map[string]int {
	out := map[string]int{}
	for _, ev := range res.Prunes {
		// Selections render as "Src -> Tgt (N bytes)"; strip the size.
		desc := ev.Selection
		if i := strings.Index(desc, " ("); i > 0 {
			desc = desc[:i]
		}
		out[desc] += ev.PrunedRefs
	}
	return out
}

func TestEclipseDiffPrunesDiffResults(t *testing.T) {
	res := runFor(t, "eclipsediff", "default", 2000)
	if !res.Capped() {
		t.Fatalf("eclipsediff died: %s (%v)", res.Reason, res.Err)
	}
	sels := prunedSelections(res)
	// §6: "Leak pruning correctly selects and prunes several edge types
	// with source type ResourceCompareInput."
	fromInput := 0
	for desc, refs := range sels {
		if strings.HasPrefix(desc, "ResourceCompareInput ->") {
			fromInput += refs
		}
		// The live NavigationHistory must never be pruned.
		if strings.HasPrefix(desc, "NavigationHistoryEntry -> NavigationHistoryEntry") && refs > 0 {
			t.Fatalf("pruned the live navigation history: %v", sels)
		}
	}
	if fromInput == 0 {
		t.Fatalf("no ResourceCompareInput edges pruned; selections: %v", sels)
	}
}

func TestEclipseCPPrunesUndoText(t *testing.T) {
	res := runFor(t, "eclipsecp", "default", 400)
	sels := prunedSelections(res)
	// §6: "leak pruning repeatedly prunes the reference types
	// DefaultUndoManager$TextCommand -> String and DocumentEvent -> String".
	if sels["DefaultUndoManager$TextCommand -> String"] == 0 {
		t.Fatalf("TextCommand -> String never pruned; selections: %v", sels)
	}
	if sels["DocumentEvent -> String"] == 0 {
		t.Fatalf("DocumentEvent -> String never pruned; selections: %v", sels)
	}
}

func TestEclipseCPIndivRefsMispredictsLiveReferences(t *testing.T) {
	// §6.1: without the stale closure, the individual-references baseline
	// "selects and prunes highly stale, but live" references and the
	// program terminates quickly (paper: 41 vs. 971 iterations). In our
	// analogue the first live victim is the rarely-visited plugin registry
	// (the shared String class acquires maxStaleUse protection before the
	// big char arrays ripen), but the failure mode is the same: an early
	// pruned-access death that the default algorithm avoids.
	res := runFor(t, "eclipsecp", "indiv-refs", 400)
	if res.Reason != harness.EndPoisonTrap {
		t.Fatalf("indiv-refs should die of a pruned access, got %s (%v)", res.Reason, res.Err)
	}
	def := runFor(t, "eclipsecp", "default", 400)
	if def.Iterations <= res.Iterations*4 {
		t.Fatalf("default (%d) should far outlive indiv-refs (%d)", def.Iterations, res.Iterations)
	}
}

func TestMySQLPrunesStatementData(t *testing.T) {
	res := runFor(t, "mysql", "default", 1200)
	sels := prunedSelections(res)
	// §6: "It correctly selects and prunes several types of references
	// pointing from statement objects."
	fromStatement := 0
	for desc, refs := range sels {
		if strings.HasPrefix(desc, "Statement ->") {
			fromStatement += refs
		}
		if strings.HasPrefix(desc, "TableEntry -> Statement") && refs > 0 {
			t.Fatalf("pruned the live statements themselves: %v", sels)
		}
	}
	if fromStatement == 0 {
		t.Fatalf("no Statement-> edges pruned; selections: %v", sels)
	}
}

func TestJbbModMaxStaleUseProtectsPhasedSpine(t *testing.T) {
	res := runFor(t, "jbbmod", "default", 4000)
	sels := prunedSelections(res)
	// §6: "Leak pruning does not prune references from Object[] to Order
	// because this reference type's maxstaleuse value is high."
	if sels["ObjectArray -> JbbOrder"] > 0 {
		t.Fatalf("phased Object[] -> Order references were pruned: %v", sels)
	}
	// The bulk under the orders is pruned.
	if sels["JbbOrder -> JbbOrderLine"] == 0 {
		t.Fatalf("order-line subtrees never pruned; selections: %v", sels)
	}
}

func TestMckoiReclaimsThreadReferencedDeadMemory(t *testing.T) {
	res := runFor(t, "mckoi", "default", 4000)
	if res.Reason != harness.EndOOM {
		t.Fatalf("mckoi should eventually exhaust memory, got %s", res.Reason)
	}
	sels := prunedSelections(res)
	// §6: "Leak pruning runs Mckoi longer by selecting and pruning dead
	// memory referenced by the leaked threads' stacks" — the stack-pinned
	// ConnectionState is unreclaimable, its WorkBuffer is not.
	if sels["ConnectionState -> WorkBuffer"] == 0 {
		t.Fatalf("thread-referenced dead buffers never pruned; selections: %v", sels)
	}
}

func TestSpecJBBPrunesManySmallTypes(t *testing.T) {
	res := runFor(t, "specjbb", "default", 3000)
	sels := prunedSelections(res)
	// §6: "Leak pruning prunes 82 distinct edge types... sometimes netting
	// fewer than 100 bytes." The dominant reclaim is the dead order detail;
	// a tail of small, distinct edge types follows near the end of the run.
	if len(sels) < 4 {
		t.Fatalf("expected a tail of distinct pruned edge types, got %d: %v", len(sels), sels)
	}
	total, details := 0, 0
	for desc, refs := range sels {
		total += refs
		if desc == "Order -> OrderDetail" {
			details = refs
		}
	}
	if details*100 < total*90 {
		t.Fatalf("Order -> OrderDetail should dominate (got %d of %d)", details, total)
	}
}

func TestDualLeakNothingReclaimed(t *testing.T) {
	res := runFor(t, "dualleak", "default", 3000)
	// §6 Table 1: "No help — None reclaimed."
	var pruned int
	for _, ev := range res.Prunes {
		pruned += ev.PrunedRefs
	}
	if pruned > 0 {
		t.Fatalf("dualleak is live growth; %d refs were pruned", pruned)
	}
	if res.Reason != harness.EndOOM {
		t.Fatalf("dualleak should die of OOM, got %s (%v)", res.Reason, res.Err)
	}
}

func TestDelaunayNeverObservesLongEnough(t *testing.T) {
	res := runFor(t, "delaunay", "default", 3000)
	if res.Reason != harness.EndCompleted {
		t.Fatalf("delaunay should complete, got %s", res.Reason)
	}
	if len(res.Prunes) != 0 {
		t.Fatalf("delaunay was pruned %d times; the paper: no time to observe", len(res.Prunes))
	}
}

func TestSwapLeakMostStaleDiesDefaultSurvives(t *testing.T) {
	// §6.1/Table 2: the most-stale baseline cannot tolerate SwapLeak
	// indefinitely (the paper measured 1,026 iterations against the
	// default's 5.9M). Ours dies finitely — either by out-of-memory (it
	// only prunes the very stalest level, leaving mid-staleness dead
	// growth to accumulate) or by trapping on the rarely-used session.
	res := runFor(t, "swapleak", "most-stale", 20000)
	if res.Capped() {
		t.Fatalf("most-stale on swapleak should die, got %s at %d iterations", res.Reason, res.Iterations)
	}
	// The default policy runs to the cap.
	def := runFor(t, "swapleak", "default", 3000)
	if !def.Capped() {
		t.Fatalf("default on swapleak died: %s", def.Reason)
	}
}

func TestListLeakPrunesOnlyNodeChain(t *testing.T) {
	res := runFor(t, "listleak", "default", 3000)
	if !res.Capped() {
		t.Fatalf("listleak died under default: %s", res.Reason)
	}
	sels := prunedSelections(res)
	for desc := range sels {
		if !strings.HasPrefix(desc, "ListNode ->") {
			t.Fatalf("unexpected pruned edge type %q; selections: %v", desc, sels)
		}
	}
}

// TestGenerationalMatrix: the Table 1 outcomes are insensitive to turning
// on the generational substrate — pruning still saves the dead leaks and
// still cannot save the live one.
func TestGenerationalMatrix(t *testing.T) {
	for _, tc := range []struct {
		program string
		capped  bool
	}{
		{"listleak", true},
		{"eclipsediff", true},
		{"dualleak", false},
	} {
		res, err := harness.Run(harness.Config{
			Program: tc.program, Policy: "default", MaxIters: 1500, Generational: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.VMStats.MinorGCs == 0 {
			t.Errorf("%s: no minor collections under generational mode", tc.program)
		}
		if res.Capped() != tc.capped {
			t.Errorf("%s under generational pruning: got %s at %d iterations, capped=%v want %v",
				tc.program, res.Reason, res.Iterations, res.Capped(), tc.capped)
		}
	}
}

// TestMeltMatrix: the offload baseline extends dead leaks by about the
// disk/heap ratio and ends with the disk exhausted.
func TestMeltMatrix(t *testing.T) {
	base, err := harness.Run(harness.Config{Program: "listleak", Policy: "off", MaxIters: 20000})
	if err != nil {
		t.Fatal(err)
	}
	melt, err := harness.Run(harness.Config{Program: "listleak", Policy: "melt", MaxIters: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if melt.Reason != harness.EndOOM {
		t.Fatalf("melt run ended %s, want out-of-memory", melt.Reason)
	}
	if !melt.DiskExhausted() {
		t.Fatal("melt run should end with the disk budget exhausted")
	}
	ratio := melt.Ratio(base)
	// Disk = 4x heap, so the extension factor is ~5x (the paper: disk
	// approaches scale with disk size, then crash).
	if ratio < 3.5 || ratio > 6.5 {
		t.Fatalf("melt extension ratio %.1f outside the expected ~5x band", ratio)
	}
	if melt.Offload.ObjectsMoved == 0 || melt.Disk.BytesUsed == 0 {
		t.Fatalf("offload stats empty: %+v / %+v", melt.Offload, melt.Disk)
	}
}
