package workload

import (
	"fmt"

	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
)

// SPECjbb2000 reproduces the benchmark's known slow leak (§6): an order
// processing list from which some orders are never removed. The program
// processes every order in the list each iteration — including the leaked
// ones — so the orders themselves are live and leak pruning cannot reclaim
// them. What it can reclaim is each order's detail record (untouched by
// processing) and a long tail of small dead types: never-used character-set
// objects in the class libraries and per-transaction scratch of many
// classes. The paper observes leak pruning reclaiming 82 distinct edge
// types, "sometimes netting fewer than 100 bytes", extending the run 4.7×
// until the program ultimately accesses a pruned reference.

func init() {
	register("specjbb", true, func() Program { return newSpecJBB() })
}

type specJBB struct {
	listNode heap.ClassID // OrderListNode: order, next
	order    heap.ClassID // Order
	detail   heap.ClassID // OrderDetail (dead after creation)

	charsets     []heap.ClassID // Charset###: table
	charsetTable heap.ClassID
	scratch      []heap.ClassID // TxnScratch##
	scratchChain heap.ClassID
	temp         heap.ClassID // transient transaction scratch

	ordersG   int
	charsetsG int
	scratchG  int
}

func newSpecJBB() *specJBB { return &specJBB{} }

func (p *specJBB) Name() string { return "specjbb" }
func (p *specJBB) Description() string {
	return "SPECjbb2000's slow leak: live order list growth plus dead order details and unused library objects"
}
func (p *specJBB) DefaultHeap() uint64 { return 4 << 20 }

const (
	jbbOrdersPerIter  = 15
	jbbDetailBytes    = 420
	jbbOrderBytes     = 112
	jbbCharsetClasses = 30
	jbbCharsetBytes   = 2048
	jbbCharsetPeriod  = 120 // used charsets are touched this often
	jbbScratchClasses = 40
	jbbScratchBytes   = 90
	jbbScratchPerIter = 6
)

func (p *specJBB) Setup(t *vm.Thread) {
	v := t.VM()
	p.listNode = v.DefineClass("OrderListNode", 2, 0)
	p.order = v.DefineClass("Order", 1, jbbOrderBytes)
	p.detail = v.DefineClass("OrderDetail", 0, jbbDetailBytes)
	p.charsetTable = v.DefineClass("CharsetTable", 0, jbbCharsetBytes)
	p.charsets = make([]heap.ClassID, jbbCharsetClasses)
	for i := range p.charsets {
		p.charsets[i] = v.DefineClass(fmt.Sprintf("Charset%03d", i), 1, 48)
	}
	p.scratchChain = v.DefineClass("ScratchChainNode", 2, 0)
	p.scratch = make([]heap.ClassID, jbbScratchClasses)
	for i := range p.scratch {
		p.scratch[i] = v.DefineClass(fmt.Sprintf("TxnScratch%02d", i), 0, jbbScratchBytes)
	}
	p.temp = v.DefineClass("TxnTemp", 0, 128)
	p.ordersG = v.AddGlobal()
	p.charsetsG = v.AddGlobal()
	p.scratchG = v.AddGlobal()

	// The "class libraries": one object per charset, chained. Half of them
	// are used by the application on a long period; the other half are
	// never used after startup (those are the harmless prunes).
	t.InFrame(2, func(f *vm.Frame) {
		for i := 0; i < jbbCharsetClasses; i++ {
			cs := t.New(p.charsets[i])
			f.Set(0, cs)
			table := t.New(p.charsetTable)
			t.Store(cs, 0, table)
			node := t.New(p.listNode) // reuse the list node shape for the chain
			f.Set(1, node)
			t.Store(node, 0, cs)
			t.Store(node, 1, t.LoadGlobal(p.charsetsG))
			t.StoreGlobal(p.charsetsG, node)
		}
	})
}

func (p *specJBB) Iterate(t *vm.Thread, iter int) bool {
	t.InFrame(2, func(f *vm.Frame) {
		// New-order transactions: each order lands in the processing list
		// (the leak: some are never removed — here, none are) with a detail
		// record that processing never revisits.
		for j := 0; j < jbbOrdersPerIter; j++ {
			order := t.New(p.order)
			f.Set(0, order)
			detail := t.New(p.detail)
			t.Store(order, 0, detail)
			node := t.New(p.listNode)
			f.Set(1, node)
			t.Store(node, 0, order)
			t.Store(node, 1, t.LoadGlobal(p.ordersG))
			t.StoreGlobal(p.ordersG, node)
		}
		// Per-transaction scratch of many distinct classes, retired into a
		// bounded-use (but reachable) chain that is never read: a long tail
		// of small dead edge types.
		for j := 0; j < jbbScratchPerIter; j++ {
			class := p.scratch[(iter*jbbScratchPerIter+j)%jbbScratchClasses]
			s := t.New(class)
			f.Set(0, s)
			node := t.New(p.scratchChain)
			f.Set(1, node)
			t.Store(node, 0, s)
			t.Store(node, 1, t.LoadGlobal(p.scratchG))
			t.StoreGlobal(p.scratchG, node)
		}
	})

	churn(t, p.temp, 10)

	// Order processing walks the whole list, touching every order —
	// including the leaked ones, which is why this leak is live (§6).
	cur := t.LoadGlobal(p.ordersG)
	for !cur.IsNull() {
		t.Load(cur, 0)
		cur = t.Load(cur, 1)
	}

	// The used half of the charsets is touched on a long period.
	if iter%jbbCharsetPeriod == 0 {
		idx := 0
		cur = t.LoadGlobal(p.charsetsG)
		for !cur.IsNull() {
			if idx%2 == 0 {
				cs := t.Load(cur, 0)
				t.Load(cs, 0)
			}
			cur = t.Load(cur, 1)
			idx++
		}
	}
	return false
}
