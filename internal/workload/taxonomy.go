package workload

import (
	"fmt"

	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
)

// This file holds the taxonomy-driven trace corpus: four programs, one per
// structural leak family, written to stress a *mechanism* rather than to
// mimic a particular application. They complement the Table 1 analogues:
// each is registered with the per-policy outcomes the corpus tests pin
// down, and each is a record/replay fixture for cmd/tracetool.

func init() {
	registerCorpus("collectionleak", TaxCollection, map[string]Outcome{
		"default":    OutcomeSurvives,
		"most-stale": OutcomeOOM, // prunes only the stalest sliver per cycle: too slow
		"indiv-refs": OutcomeSurvives,
		"off":        OutcomeOOM,
	}, func() Program { return newCollectionLeak() })
	registerCorpus("listenerleak", TaxListener, map[string]Outcome{
		"default":    OutcomeSurvives,
		"most-stale": OutcomeOOM,
		"indiv-refs": OutcomeSurvives,
		"off":        OutcomeOOM,
	}, func() Program { return newListenerLeak() })
	registerCorpus("cacheleak", TaxCache, map[string]Outcome{
		"default":    OutcomeSurvives,
		"most-stale": OutcomeOOM,
		"indiv-refs": OutcomeTrap, // prunes the stale-but-live seasonal set
		"off":        OutcomeOOM,
	}, func() Program { return newCacheLeak() })
	registerCorpus("threadlocalleak", TaxThreadLocal, map[string]Outcome{
		"default":    OutcomeSurvives,
		"most-stale": OutcomeSurvives,
		"indiv-refs": OutcomeSurvives,
		"off":        OutcomeOOM,
	}, func() Program { return newThreadLocalLeak() })
}

// ---------------------------------------------------------------------------
// CollectionLeak (collection-mishandling): a chunked vector the program
// keeps appending to. The application reads back only the chunk it just
// filled — it "clears" the collection by resetting its logical length and
// forgets that the chunks stay linked. All of the old growth is dead, so
// every pruning policy tolerates the leak: there are no stale-but-live
// structures to mispredict.

type collectionLeak struct {
	vector  heap.ClassID
	chunk   heap.ClassID
	elem    heap.ClassID
	payload heap.ClassID
	scratch heap.ClassID
	vecG    int
}

func newCollectionLeak() *collectionLeak { return &collectionLeak{} }

func (p *collectionLeak) Name() string { return "collectionleak" }
func (p *collectionLeak) Description() string {
	return "corpus/collection-mishandling: cleared-but-still-linked vector chunks (all growth dead)"
}
func (p *collectionLeak) DefaultHeap() uint64 { return 8 << 20 }

const (
	collChunkElems   = 16
	collPayloadBytes = 800
)

func (p *collectionLeak) Setup(t *vm.Thread) {
	v := t.VM()
	p.vector = v.DefineClass("ChunkedVector", 1, 64) // head chunk
	p.chunk = v.DefineClass("VectorChunk", 1+collChunkElems, 0)
	p.elem = v.DefineClass("VectorElem", 1, 32)
	p.payload = v.DefineClass("ElemPayload", 0, collPayloadBytes)
	p.scratch = v.DefineClass("CollScratch", 0, 64)
	p.vecG = v.AddGlobal()
	t.InFrame(1, func(f *vm.Frame) {
		vec := t.New(p.vector)
		f.Set(0, vec)
		t.StoreGlobal(p.vecG, vec)
	})
}

func (p *collectionLeak) Iterate(t *vm.Thread, iter int) bool {
	t.InFrame(2, func(f *vm.Frame) {
		vec := t.LoadGlobal(p.vecG)
		f.Set(0, vec)
		chunk := t.New(p.chunk)
		f.Set(1, chunk)
		for j := 0; j < collChunkElems; j++ {
			elem := t.New(p.elem)
			t.Store(chunk, 1+j, elem)
			t.Store(elem, 0, t.New(p.payload))
		}
		// Prepend: the forgotten tail sinks, never to be loaded again.
		t.Store(chunk, 0, t.Load(vec, 0))
		t.Store(vec, 0, chunk)
		// The program consumes what it just appended (the live window is
		// exactly the newest chunk), then "clears" by dropping its index.
		for j := 0; j < collChunkElems; j++ {
			e := t.Load(chunk, 1+j)
			t.Load(e, 0)
		}
	})
	churn(t, p.scratch, 8)
	return false
}

// ---------------------------------------------------------------------------
// ListenerLeak (listener/observer): subscribers register with an event
// source and are never deregistered. Events are delivered only to the most
// recent listeners (the dispatcher walks the head of the list and stops),
// so the old tail is dead growth. The source also keeps a small directory
// of *live* subscriptions it revisits only rarely; the default algorithm's
// maxStaleUse machinery protects it while pruning the dead tail wholesale.
// The most-stale baseline reclaims only the stalest sliver per PRUNE and
// loses the race with the leak (OOM despite dozens of prunes).

type listenerLeak struct {
	source   heap.ClassID
	listener heap.ClassID
	closure  heap.ClassID
	dirEnt   heap.ClassID
	dirBlob  heap.ClassID
	scratch  heap.ClassID
	sourceG  int
	dirG     int
}

func newListenerLeak() *listenerLeak { return &listenerLeak{} }

func (p *listenerLeak) Name() string { return "listenerleak" }
func (p *listenerLeak) Description() string {
	return "corpus/listener-observer: never-deregistered listeners plus a rarely-revisited live directory"
}
func (p *listenerLeak) DefaultHeap() uint64 { return 8 << 20 }

const (
	listenersPerIter   = 8
	listenerStateBytes = 1600
	liveListeners      = 4 // events reach only this many recent listeners
	dirEntries         = 6
	dirTouchPeriod     = 160
)

func (p *listenerLeak) Setup(t *vm.Thread) {
	v := t.VM()
	p.source = v.DefineClass("EventSource", 1, 128) // listener list head
	p.listener = v.DefineClass("Listener", 2, 64)   // next, closure
	p.closure = v.DefineClass("ListenerClosure", 0, listenerStateBytes)
	p.dirEnt = v.DefineClass("SubscriptionDir", 2, 64) // next, blob
	p.dirBlob = v.DefineClass("DirBlob", 0, 256)
	p.scratch = v.DefineClass("ListenerScratch", 0, 64)
	p.sourceG = v.AddGlobal()
	p.dirG = v.AddGlobal()
	t.InFrame(2, func(f *vm.Frame) {
		src := t.New(p.source)
		f.Set(0, src)
		t.StoreGlobal(p.sourceG, src)
		// The subscription directory: a short live chain the maintenance
		// task walks every dirTouchPeriod iterations.
		var prev heap.Ref
		for i := 0; i < dirEntries; i++ {
			d := t.New(p.dirEnt)
			f.Set(1, d)
			t.Store(d, 1, t.New(p.dirBlob))
			if prev.IsNull() {
				t.StoreGlobal(p.dirG, d)
			} else {
				t.Store(prev, 0, d)
			}
			prev = d
		}
	})
}

func (p *listenerLeak) Iterate(t *vm.Thread, iter int) bool {
	t.InFrame(2, func(f *vm.Frame) {
		src := t.LoadGlobal(p.sourceG)
		f.Set(0, src)
		// Register new listeners at the head; nobody ever deregisters.
		for j := 0; j < listenersPerIter; j++ {
			l := t.New(p.listener)
			f.Set(1, l)
			t.Store(l, 1, t.New(p.closure))
			t.Store(l, 0, t.Load(src, 0))
			t.Store(src, 0, l)
		}
		// Fire an event: the dispatcher visits only the newest listeners,
		// so the tail of the list goes permanently cold.
		cur := t.Load(src, 0)
		for j := 0; j < liveListeners && !cur.IsNull(); j++ {
			f.Set(1, cur)
			t.Load(cur, 1) // invoke the closure
			cur = t.Load(cur, 0)
		}
		// Rare maintenance: walk the live subscription directory.
		if iter%dirTouchPeriod == dirTouchPeriod-1 {
			d := t.LoadGlobal(p.dirG)
			for !d.IsNull() {
				f.Set(1, d)
				t.Load(d, 1)
				d = t.Load(d, 0)
			}
		}
	})
	churn(t, p.scratch, 8)
	return false
}

// ---------------------------------------------------------------------------
// CacheLeak (cache-without-eviction): a bucketed memoization cache that
// only ever inserts. Insertion links the new entry above the old bucket
// head without walking the chain, so buried entries go cold while staying
// reachable. A small hot set is re-read every iteration through a separate
// hot-list edge; a second "seasonal" set is re-read on a long period —
// live, but stale enough between touches for the baselines to prune.

type cacheLeak struct {
	cache   heap.ClassID
	entry   heap.ClassID
	value   heap.ClassID
	hotList heap.ClassID
	scratch heap.ClassID
	cacheG  int
	hotG    int
	seasonG int
}

func newCacheLeak() *cacheLeak { return &cacheLeak{} }

func (p *cacheLeak) Name() string { return "cacheleak" }
func (p *cacheLeak) Description() string {
	return "corpus/cache-without-eviction: insert-only bucket chains with hot and seasonal live sets"
}
func (p *cacheLeak) DefaultHeap() uint64 { return 8 << 20 }

const (
	cacheBuckets     = 8
	cacheInserts     = 10
	cacheValueBytes  = 1200
	cacheHotSlots    = 4
	cacheSeasonSlots = 4
	seasonPeriod     = 170
)

func (p *cacheLeak) Setup(t *vm.Thread) {
	v := t.VM()
	p.cache = v.DefineClass("Cache", cacheBuckets, 0)
	p.entry = v.DefineClass("CacheEntry", 2, 48) // next, value
	p.value = v.DefineClass("CacheValue", 0, cacheValueBytes)
	p.hotList = v.DefineClass("HotList", cacheHotSlots, 0)
	p.scratch = v.DefineClass("CacheScratch", 0, 64)
	p.cacheG = v.AddGlobal()
	p.hotG = v.AddGlobal()
	p.seasonG = v.AddGlobal()
	t.InFrame(2, func(f *vm.Frame) {
		c := t.New(p.cache)
		f.Set(0, c)
		t.StoreGlobal(p.cacheG, c)
		hot := t.New(p.hotList)
		f.Set(1, hot)
		t.StoreGlobal(p.hotG, hot)
		season := t.New(p.hotList)
		f.Set(1, season)
		t.StoreGlobal(p.seasonG, season)
		// Seed both live sets with entries that also sit in bucket chains.
		for i := 0; i < cacheHotSlots; i++ {
			t.Store(hot, i, p.insert(t, c, i))
		}
		for i := 0; i < cacheSeasonSlots; i++ {
			t.Store(season, i, p.insert(t, c, cacheHotSlots+i))
		}
	})
}

// insert links a fresh entry at the head of bucket b and returns it. The
// caller must hold the cache rooted.
func (p *cacheLeak) insert(t *vm.Thread, cache heap.Ref, b int) heap.Ref {
	b = b % cacheBuckets
	e := t.New(p.entry)
	t.InFrame(1, func(f *vm.Frame) {
		f.Set(0, e)
		t.Store(e, 1, t.New(p.value))
		t.Store(e, 0, t.Load(cache, b))
		t.Store(cache, b, e)
	})
	return e
}

func (p *cacheLeak) Iterate(t *vm.Thread, iter int) bool {
	t.InFrame(2, func(f *vm.Frame) {
		c := t.LoadGlobal(p.cacheG)
		f.Set(0, c)
		// Misses: memoize new results that will never be asked for again.
		for j := 0; j < cacheInserts; j++ {
			p.insert(t, c, iter*cacheInserts+j)
		}
		// Hits: the hot set is consulted every iteration.
		hot := t.LoadGlobal(p.hotG)
		f.Set(1, hot)
		for i := 0; i < cacheHotSlots; i++ {
			e := t.Load(hot, i)
			t.Load(e, 1)
		}
		// The seasonal set is consulted only on a long period — live, but
		// deeply stale in between.
		if iter%seasonPeriod == seasonPeriod-1 {
			season := t.LoadGlobal(p.seasonG)
			f.Set(1, season)
			for i := 0; i < cacheSeasonSlots; i++ {
				e := t.Load(season, i)
				t.Load(e, 1)
			}
		}
	})
	churn(t, p.scratch, 8)
	return false
}

// ---------------------------------------------------------------------------
// ThreadLocalLeak (thread-local): a pool of worker threads, each holding a
// ThreadLocal map rooted by its stack. Every task appends task state to the
// serving worker's map chain and never removes it — the classic ThreadLocal
// leak, where per-thread values outlive the work they served. The map
// headers stay live (each worker touches its own header per task), the
// buried chain is dead growth. Pool threads never exit, so replay's ×N
// multiplication scales the thread count as well as the heap.

type threadLocalLeak struct {
	tlMap   heap.ClassID
	tlEntry heap.ClassID
	tlValue heap.ClassID
	scratch heap.ClassID

	workers []*vm.Thread
	maps    []heap.Ref
	mapG    []int
}

func newThreadLocalLeak() *threadLocalLeak { return &threadLocalLeak{} }

func (p *threadLocalLeak) Name() string { return "threadlocalleak" }
func (p *threadLocalLeak) Description() string {
	return "corpus/thread-local: pool workers whose ThreadLocal maps accumulate per-task state forever"
}
func (p *threadLocalLeak) DefaultHeap() uint64 { return 8 << 20 }

const (
	tlWorkers       = 4
	tlTasksPerIter  = 4
	tlValueBytes    = 560
	tlEntriesPerTsk = 3
)

func (p *threadLocalLeak) Setup(t *vm.Thread) {
	v := t.VM()
	p.tlMap = v.DefineClass("ThreadLocalMap", 1, 96) // entry chain head
	p.tlEntry = v.DefineClass("TLMapEntry", 2, 32)   // next, value
	p.tlValue = v.DefineClass("TaskState", 0, tlValueBytes)
	p.scratch = v.DefineClass("TLScratch", 0, 64)
	for i := 0; i < tlWorkers; i++ {
		w := v.NewThread(fmt.Sprintf("tl-worker-%d", i))
		m := w.New(p.tlMap)
		wf := w.PushFrame(1)
		wf.Set(0, m) // the worker's stack roots its map, ThreadLocal-style
		g := v.AddGlobal()
		w.StoreGlobal(g, m) // the pool's registry also sees every map
		p.workers = append(p.workers, w)
		p.maps = append(p.maps, m)
		p.mapG = append(p.mapG, g)
	}
}

func (p *threadLocalLeak) Iterate(t *vm.Thread, iter int) bool {
	// Dispatch tasks round-robin over the pool. Each worker performs its
	// own heap traffic on its own vm thread (and, when recording, its own
	// trace stream).
	for task := 0; task < tlTasksPerIter; task++ {
		w := p.workers[(iter*tlTasksPerIter+task)%tlWorkers]
		g := p.mapG[(iter*tlTasksPerIter+task)%tlWorkers]
		w.InFrame(2, func(f *vm.Frame) {
			m := w.LoadGlobal(g)
			f.Set(0, m)
			for j := 0; j < tlEntriesPerTsk; j++ {
				e := w.New(p.tlEntry)
				f.Set(1, e)
				w.Store(e, 1, w.New(p.tlValue))
				w.Store(e, 0, w.Load(m, 0))
				w.Store(m, 0, e)
			}
			// The task reads back only what it just wrote; older entries
			// from previous tasks are never consulted again.
			e := w.Load(m, 0)
			for j := 0; j < tlEntriesPerTsk && !e.IsNull(); j++ {
				f.Set(1, e)
				w.Load(e, 1)
				e = w.Load(e, 0)
			}
		})
	}
	churn(t, p.scratch, 8)
	return false
}
