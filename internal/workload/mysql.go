package workload

import (
	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
)

// MySQL reproduces the JDBC statement leak (§6): the connection keeps every
// executed SQL statement in a hash table unless statements are explicitly
// closed. The table and the statements are live — growing the table rehashes
// every element, touching them — but each statement retains a relatively
// large dead result structure. Leak pruning selects and prunes references
// from statements to their dead data, extending the program's lifetime by
// the dead/live byte ratio (the paper's 35×).

func init() {
	register("mysql", true, func() Program { return newMySQL() })
}

type mySQL struct {
	table   heap.ClassID // StatementTable: buckets
	buckets heap.ClassID // BucketArray: variable ref slots
	entry   heap.ClassID // TableEntry: statement, next
	stmt    heap.ClassID // Statement: result, meta
	result  heap.ClassID // ResultBuffer: rows
	rows    heap.ClassID // RowData
	meta    heap.ClassID // QueryMetadata
	parse   heap.ClassID // transient parse scratch

	tableG  int
	count   int // statements inserted (program-side bookkeeping)
	nbucket int
	rnd     *rng
}

func newMySQL() *mySQL { return &mySQL{rnd: newRNG(0xdb)} }

func (p *mySQL) Name() string { return "mysql" }
func (p *mySQL) Description() string {
	return "JDBC statement leak: live hash table of statements, each retaining a dead result structure"
}
func (p *mySQL) DefaultHeap() uint64 { return 8 << 20 }

const (
	mysqlStmtsPerIter  = 20
	mysqlInitialBucket = 64
	mysqlLoadFactor    = 4 // rehash when count > 4 * buckets
	mysqlRowBytes      = 3072
	mysqlResultBytes   = 512
	mysqlMetaBytes     = 96
)

func (p *mySQL) Setup(t *vm.Thread) {
	v := t.VM()
	p.table = v.DefineClass("StatementTable", 1, 32)
	p.buckets = v.DefineClass("BucketArray", 0, 0) // slots set per allocation
	p.entry = v.DefineClass("TableEntry", 2, 16)
	p.stmt = v.DefineClass("Statement", 2, 64)
	p.result = v.DefineClass("ResultBuffer", 1, mysqlResultBytes)
	p.rows = v.DefineClass("RowData", 0, mysqlRowBytes)
	p.meta = v.DefineClass("QueryMetadata", 0, mysqlMetaBytes)
	p.parse = v.DefineClass("ParseTemp", 0, 128)
	p.tableG = v.AddGlobal()
	p.nbucket = mysqlInitialBucket

	t.InFrame(1, func(f *vm.Frame) {
		table := t.New(p.table)
		f.Set(0, table)
		arr := t.New(p.buckets, heap.WithRefSlots(p.nbucket))
		t.Store(table, 0, arr)
		t.StoreGlobal(p.tableG, table)
	})
}

func (p *mySQL) Iterate(t *vm.Thread, iter int) bool {
	t.InFrame(3, func(f *vm.Frame) {
		for j := 0; j < mysqlStmtsPerIter; j++ {
			// Execute a statement: the JDBC driver allocates the statement
			// and its result set...
			stmt := t.New(p.stmt)
			f.Set(0, stmt)
			res := t.New(p.result)
			t.Store(stmt, 0, res)
			rows := t.New(p.rows)
			t.Store(res, 0, rows)
			m := t.New(p.meta)
			t.Store(stmt, 1, m)

			// ...and, because the statement is never closed, records it in
			// the connection's statement table forever.
			p.insert(t, f, stmt)
			p.count++
		}
		if p.count > mysqlLoadFactor*p.nbucket {
			p.rehash(t, f)
		}
	})
	churn(t, p.parse, mysqlStmtsPerIter)
	return false
}

// insert pushes the statement onto its bucket chain. Frame slot 0 holds the
// statement; slots 1–2 are scratch.
func (p *mySQL) insert(t *vm.Thread, f *vm.Frame, stmt heap.Ref) {
	table := t.LoadGlobal(p.tableG)
	arr := t.Load(table, 0)
	b := p.rnd.intn(p.nbucket)
	entry := t.New(p.entry)
	f.Set(1, entry)
	t.Store(entry, 0, stmt)
	t.Store(entry, 1, t.Load(arr, b))
	t.Store(arr, b, entry)
}

// rehash doubles the bucket array and reinserts every entry. This is the
// access pattern that keeps the statements live: rehashing loads every
// entry and every statement (§6: "when MySQL causes the size of one of its
// hash tables to grow, it accesses all the elements to rehash them").
func (p *mySQL) rehash(t *vm.Thread, f *vm.Frame) {
	table := t.LoadGlobal(p.tableG)
	old := t.Load(table, 0)
	oldN := p.nbucket
	p.nbucket *= 2
	arr := t.New(p.buckets, heap.WithRefSlots(p.nbucket))
	f.Set(2, arr)
	for b := 0; b < oldN; b++ {
		cur := t.Load(old, b)
		for !cur.IsNull() {
			next := t.Load(cur, 1)
			t.Load(cur, 0) // touch the statement to recompute its hash
			nb := p.rnd.intn(p.nbucket)
			t.Store(cur, 1, t.Load(arr, nb))
			t.Store(arr, nb, cur)
			cur = next
		}
	}
	t.Store(table, 0, arr)
}
