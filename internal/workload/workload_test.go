package workload

import (
	"testing"

	"leakpruning/internal/vm"
)

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 20 {
		t.Fatalf("expected the ten leaks plus the overhead suite, got %d programs", len(names))
	}
	leaks := LeakNames()
	if len(leaks) != 10 {
		t.Fatalf("Table 1 has ten leaks, got %d: %v", len(leaks), leaks)
	}
	for _, n := range names {
		p, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != n {
			t.Fatalf("program %q reports name %q", n, p.Name())
		}
		if p.Description() == "" {
			t.Fatalf("program %q has no description", n)
		}
		if p.DefaultHeap() == 0 {
			t.Fatalf("program %q has no default heap", n)
		}
	}
	if _, err := New("no-such-program"); err == nil {
		t.Fatal("unknown program must error")
	}
}

func TestMicroBenchNamesMatchFigure6Suite(t *testing.T) {
	names := MicroBenchNames()
	if len(names) != 12 {
		t.Fatalf("suite size = %d", len(names))
	}
	for _, n := range names {
		p, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		s, ok := p.(Sizer)
		if !ok {
			t.Fatalf("%s does not expose MinHeap", n)
		}
		if s.MinHeap() == 0 || p.DefaultHeap() < s.MinHeap() {
			t.Fatalf("%s heap sizing inconsistent (min %d, default %d)", n, s.MinHeap(), p.DefaultHeap())
		}
	}
}

// TestEveryProgramRunsInAmpleHeap runs each program for a handful of
// iterations in a heap far larger than it needs: no program may fail or
// trigger pruning machinery when memory is plentiful.
func TestEveryProgramRunsInAmpleHeap(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			prog, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			v := vm.New(vm.Options{
				HeapLimit:      prog.DefaultHeap() * 8,
				EnableBarriers: true,
				GCWorkers:      2,
			})
			err = v.RunThread("main", func(th *vm.Thread) {
				th.Scope(func() { prog.Setup(th) })
				for i := 0; i < 5; i++ {
					th.Scope(func() { prog.Iterate(th, i) })
				}
			})
			if err != nil {
				t.Fatalf("%s failed in an ample heap: %v", name, err)
			}
			if v.HeapStats().ObjectsUsed == 0 {
				t.Fatalf("%s allocated nothing", name)
			}
		})
	}
}

func TestDelaunayCompletes(t *testing.T) {
	prog, err := New("delaunay")
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(vm.Options{HeapLimit: prog.DefaultHeap(), EnableBarriers: true, GCWorkers: 1})
	completed := false
	err = v.RunThread("main", func(th *vm.Thread) {
		th.Scope(func() { prog.Setup(th) })
		for i := 0; i < 100000 && !completed; i++ {
			th.Scope(func() { completed = prog.Iterate(th, i) })
		}
	})
	if err != nil {
		t.Fatalf("delaunay died: %v", err)
	}
	if !completed {
		t.Fatal("delaunay must finish naturally (short-running, §6)")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(7), newRNG(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	if newRNG(0).next() == 0 {
		t.Fatal("zero seed must still produce output")
	}
	r := newRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.intn(10); v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("intn(0) must panic")
		}
	}()
	newRNG(1).intn(0)
}
