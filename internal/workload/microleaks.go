package workload

import (
	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
)

// This file holds the three third-party microbenchmark leaks of Table 1:
// ListLeak and SwapLeak (tolerated indefinitely by leak pruning) and
// DualLeak (live heap growth, not tolerable by any semantics-preserving
// approach).

func init() {
	register("listleak", true, func() Program { return newListLeak() })
	register("swapleak", true, func() Program { return newSwapLeak() })
	register("dualleak", true, func() Program { return newDualLeak() })
}

// ---------------------------------------------------------------------------
// ListLeak: the simplest leak — a growing linked list the program never
// reads again. Every byte of growth is dead, so leak pruning repeatedly
// selects and prunes the ListNode → ListNode edge and runs indefinitely.

type listLeak struct {
	node    heap.ClassID
	payload heap.ClassID
	scratch heap.ClassID
	head    int
}

func newListLeak() *listLeak { return &listLeak{} }

func (p *listLeak) Name() string { return "listleak" }
func (p *listLeak) Description() string {
	return "microbenchmark: unbounded list push with no later access (all growth dead)"
}
func (p *listLeak) DefaultHeap() uint64 { return 8 << 20 }

const (
	listLeakNodesPerIter = 50
	listLeakPayloadBytes = 400
)

func (p *listLeak) Setup(t *vm.Thread) {
	v := t.VM()
	p.node = v.DefineClass("ListNode", 2, 0) // next, payload
	p.payload = v.DefineClass("ListPayload", 0, listLeakPayloadBytes)
	p.scratch = v.DefineClass("ListScratch", 0, 64)
	p.head = v.AddGlobal()
}

func (p *listLeak) Iterate(t *vm.Thread, iter int) bool {
	t.InFrame(1, func(f *vm.Frame) {
		for j := 0; j < listLeakNodesPerIter; j++ {
			node := t.New(p.node)
			f.Set(0, node)
			data := t.New(p.payload)
			t.Store(node, 1, data)
			t.Store(node, 0, t.LoadGlobal(p.head))
			t.StoreGlobal(p.head, node)
		}
	})
	churn(t, p.scratch, 8)
	return false
}

// ---------------------------------------------------------------------------
// SwapLeak: buffers are retired into a chain that is never read (dead
// growth), while a small session structure is live but touched only every
// sessionTouchPeriod iterations. The default algorithm protects the session
// (its edge types acquire a high maxStaleUse on first reuse) and prunes the
// retired chain indefinitely; the most-stale baseline eventually prunes the
// very stale — but live — session parts and the program traps on its next
// session use (Table 2's SwapLeak row).

type swapLeak struct {
	buffer  heap.ClassID
	chunk   heap.ClassID
	retired heap.ClassID
	session heap.ClassID
	part    heap.ClassID

	scratch heap.ClassID

	retiredG int
	sessionG int
}

func newSwapLeak() *swapLeak { return &swapLeak{} }

func (p *swapLeak) Name() string { return "swapleak" }
func (p *swapLeak) Description() string {
	return "microbenchmark: swapped buffers retired into an unread chain, plus a rarely-used live session"
}
func (p *swapLeak) DefaultHeap() uint64 { return 8 << 20 }

const (
	swapBuffersPerIter = 8
	swapChunkBytes     = 2000
	sessionParts       = 4
	sessionTouchPeriod = 150
)

func (p *swapLeak) Setup(t *vm.Thread) {
	v := t.VM()
	p.buffer = v.DefineClass("Buffer", 1, 64)
	p.chunk = v.DefineClass("DataChunk", 0, swapChunkBytes)
	p.retired = v.DefineClass("RetiredEntry", 2, 0) // buffer, next
	p.session = v.DefineClass("Session", sessionParts, 256)
	p.part = v.DefineClass("SessionPart", 0, 512)
	p.scratch = v.DefineClass("SwapScratch", 0, 64)
	p.retiredG = v.AddGlobal()
	p.sessionG = v.AddGlobal()

	t.InFrame(1, func(f *vm.Frame) {
		s := t.New(p.session)
		f.Set(0, s)
		for i := 0; i < sessionParts; i++ {
			part := t.New(p.part)
			t.Store(s, i, part)
		}
		t.StoreGlobal(p.sessionG, s)
	})
}

func (p *swapLeak) Iterate(t *vm.Thread, iter int) bool {
	t.InFrame(2, func(f *vm.Frame) {
		for j := 0; j < swapBuffersPerIter; j++ {
			buf := t.New(p.buffer)
			f.Set(0, buf)
			chunk := t.New(p.chunk)
			t.Store(buf, 0, chunk)
			entry := t.New(p.retired)
			f.Set(1, entry)
			t.Store(entry, 0, buf)
			t.Store(entry, 1, t.LoadGlobal(p.retiredG))
			t.StoreGlobal(p.retiredG, entry)
		}
	})
	churn(t, p.scratch, 8)
	if iter%sessionTouchPeriod == 0 {
		s := t.LoadGlobal(p.sessionG)
		for i := 0; i < sessionParts; i++ {
			t.Load(s, i) // touch every live session part
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// DualLeak: the growth is live — the program walks the whole list every
// iteration, so nothing is ever stale, no reference is a candidate, and
// leak pruning (like every semantics-preserving approach) cannot help.

type dualLeak struct {
	node    heap.ClassID
	payload heap.ClassID
	scratch heap.ClassID
	head    int
}

func newDualLeak() *dualLeak { return &dualLeak{} }

func (p *dualLeak) Name() string { return "dualleak" }
func (p *dualLeak) Description() string {
	return "microbenchmark: unbounded list the program fully traverses each iteration (live growth)"
}
func (p *dualLeak) DefaultHeap() uint64 { return 8 << 20 }

const (
	dualNodesPerIter = 30
	dualPayloadBytes = 300
)

func (p *dualLeak) Setup(t *vm.Thread) {
	v := t.VM()
	p.node = v.DefineClass("DualNode", 2, 0)
	p.payload = v.DefineClass("DualPayload", 0, dualPayloadBytes)
	p.scratch = v.DefineClass("DualScratch", 0, 64)
	p.head = v.AddGlobal()
}

func (p *dualLeak) Iterate(t *vm.Thread, iter int) bool {
	t.InFrame(1, func(f *vm.Frame) {
		for j := 0; j < dualNodesPerIter; j++ {
			node := t.New(p.node)
			f.Set(0, node)
			data := t.New(p.payload)
			t.Store(node, 1, data)
			t.Store(node, 0, t.LoadGlobal(p.head))
			t.StoreGlobal(p.head, node)
		}
	})
	churn(t, p.scratch, 10)
	// Walk the whole list, touching every node and payload: this is what
	// keeps the leak live (the paper's SPECjbb2000 has the same property).
	cur := t.LoadGlobal(p.head)
	for !cur.IsNull() {
		t.Load(cur, 1)
		cur = t.Load(cur, 0)
	}
	return false
}
