// Package workload contains Go analogues of every program in the paper's
// evaluation (§5–6): the ten leaking programs of Table 1, the manually
// fixed EclipseDiff variant from Figure 1, and a suite of non-leaking
// microbenchmarks standing in for DaCapo/SPECjvm98/pseudojbb in the
// overhead experiments (Figures 6–7).
//
// Each program allocates the same heap *shapes* and performs the same
// access *patterns* as its original: which data structures grow, which
// parts of them the program keeps touching (live) versus abandons (dead),
// and on what schedule rarely-used-but-live structures are revisited. Those
// three properties fully determine leak pruning's behaviour, so the
// analogues reproduce the paper's per-program outcomes without the original
// Java code.
package workload

import (
	"fmt"
	"sort"

	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
)

// Program is one benchmark program run by the harness.
type Program interface {
	// Name is the identifier used by cmd/leakbench (e.g. "eclipsediff").
	Name() string
	// Description summarizes the program and its leak in one line.
	Description() string
	// DefaultHeap is the simulated heap limit the paper's methodology
	// prescribes: about twice the memory the program needs when it does
	// not leak (§6).
	DefaultHeap() uint64
	// Setup defines classes and builds initial structures.
	Setup(t *vm.Thread)
	// Iterate performs one iteration of program work (the paper's unit of
	// progress) and reports whether the program finished naturally — only
	// short-running programs like Delaunay ever return true.
	Iterate(t *vm.Thread, iter int) bool
}

// Factory creates a fresh Program instance (programs are stateful and
// single-use).
type Factory func() Program

var registry = map[string]Factory{}
var leakNames []string

// DuplicateProgramError reports an attempt to register a program under a
// name that is already taken.
type DuplicateProgramError struct {
	Name string
}

func (e *DuplicateProgramError) Error() string {
	return fmt.Sprintf("workload: duplicate program %q", e.Name)
}

// Register adds a program factory under its name, rejecting duplicates with
// a *DuplicateProgramError. leak marks it as one of the Table 1 leaks (in
// paper order).
func Register(name string, leak bool, f Factory) error {
	if _, dup := registry[name]; dup {
		return &DuplicateProgramError{Name: name}
	}
	registry[name] = f
	if leak {
		leakNames = append(leakNames, name)
	}
	return nil
}

// register is the init-time registration path: a duplicate name here is a
// programmer error, so it panics with the typed error.
func register(name string, leak bool, f Factory) {
	if err := Register(name, leak, f); err != nil {
		panic(err)
	}
}

// New creates the named program.
func New(name string) (Program, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown program %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists every registered program.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LeakNames lists the Table 1 leak programs in the paper's order.
func LeakNames() []string { return append([]string(nil), leakNames...) }

// Taxonomy names one of the structural leak families of the trace corpus
// (the classic leak taxonomy: how the program loses track of the memory,
// rather than which application exhibited it).
type Taxonomy string

const (
	// TaxCollection: elements logically removed from a growing collection
	// but physically retained.
	TaxCollection Taxonomy = "collection-mishandling"
	// TaxListener: observers registered and never deregistered.
	TaxListener Taxonomy = "listener-observer"
	// TaxCache: a memoizing cache with no eviction policy.
	TaxCache Taxonomy = "cache-without-eviction"
	// TaxThreadLocal: per-thread state that outlives the work it served.
	TaxThreadLocal Taxonomy = "thread-local"
	// TaxQueue: a bounded work queue whose completion log grows without
	// bound — the queue drains, the bookkeeping never does.
	TaxQueue Taxonomy = "unbounded-queue"
)

// Outcome is the expected end state of a corpus program under a policy.
type Outcome string

const (
	// OutcomeSurvives: the program runs to its iteration cap.
	OutcomeSurvives Outcome = "survives"
	// OutcomeOOM: the program exhausts memory.
	OutcomeOOM Outcome = "oom"
	// OutcomeTrap: a pruned reference is accessed (pruned-access death).
	OutcomeTrap Outcome = "trap"
)

// CorpusEntry describes one taxonomy corpus program and its expected
// per-policy outcomes (policy name → outcome), calibrated by the corpus
// outcome tests.
type CorpusEntry struct {
	Name     string
	Taxonomy Taxonomy
	Expected map[string]Outcome
}

var corpus []CorpusEntry

// Corpus lists the taxonomy corpus entries in registration order.
func Corpus() []CorpusEntry { return append([]CorpusEntry(nil), corpus...) }

// registerCorpus registers a corpus program (outside the Table 1 leak set)
// together with its taxonomy class and expected outcomes.
func registerCorpus(name string, tax Taxonomy, expected map[string]Outcome, f Factory) {
	register(name, false, f)
	corpus = append(corpus, CorpusEntry{Name: name, Taxonomy: tax, Expected: expected})
}

// churn allocates n short-lived objects of the given class and drops them,
// modelling the transient allocation every managed program performs
// (iterators, boxing, scratch buffers). The temporaries are what ordinary
// collections reclaim while a leak ratchets the heap toward exhaustion —
// they are the reason full-heap collections happen repeatedly (and the
// pruning state machine gets to advance) before memory is truly gone.
func churn(t *vm.Thread, class heap.ClassID, n int) {
	t.InFrame(1, func(f *vm.Frame) {
		for i := 0; i < n; i++ {
			f.Set(0, t.New(class))
		}
	})
}
