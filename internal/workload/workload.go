// Package workload contains Go analogues of every program in the paper's
// evaluation (§5–6): the ten leaking programs of Table 1, the manually
// fixed EclipseDiff variant from Figure 1, and a suite of non-leaking
// microbenchmarks standing in for DaCapo/SPECjvm98/pseudojbb in the
// overhead experiments (Figures 6–7).
//
// Each program allocates the same heap *shapes* and performs the same
// access *patterns* as its original: which data structures grow, which
// parts of them the program keeps touching (live) versus abandons (dead),
// and on what schedule rarely-used-but-live structures are revisited. Those
// three properties fully determine leak pruning's behaviour, so the
// analogues reproduce the paper's per-program outcomes without the original
// Java code.
package workload

import (
	"fmt"
	"sort"

	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
)

// Program is one benchmark program run by the harness.
type Program interface {
	// Name is the identifier used by cmd/leakbench (e.g. "eclipsediff").
	Name() string
	// Description summarizes the program and its leak in one line.
	Description() string
	// DefaultHeap is the simulated heap limit the paper's methodology
	// prescribes: about twice the memory the program needs when it does
	// not leak (§6).
	DefaultHeap() uint64
	// Setup defines classes and builds initial structures.
	Setup(t *vm.Thread)
	// Iterate performs one iteration of program work (the paper's unit of
	// progress) and reports whether the program finished naturally — only
	// short-running programs like Delaunay ever return true.
	Iterate(t *vm.Thread, iter int) bool
}

// Factory creates a fresh Program instance (programs are stateful and
// single-use).
type Factory func() Program

var registry = map[string]Factory{}
var leakNames []string

// register adds a program factory under its name; leak marks it as one of
// the Table 1 leaks (in paper order).
func register(name string, leak bool, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: duplicate program %q", name))
	}
	registry[name] = f
	if leak {
		leakNames = append(leakNames, name)
	}
}

// New creates the named program.
func New(name string) (Program, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown program %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists every registered program.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LeakNames lists the Table 1 leak programs in the paper's order.
func LeakNames() []string { return append([]string(nil), leakNames...) }

// churn allocates n short-lived objects of the given class and drops them,
// modelling the transient allocation every managed program performs
// (iterators, boxing, scratch buffers). The temporaries are what ordinary
// collections reclaim while a leak ratchets the heap toward exhaustion —
// they are the reason full-heap collections happen repeatedly (and the
// pruning state machine gets to advance) before memory is truly gone.
func churn(t *vm.Thread, class heap.ClassID, n int) {
	t.InFrame(1, func(f *vm.Frame) {
		for i := 0; i < n; i++ {
			f.Set(0, t.New(class))
		}
	})
}
