package workload

import (
	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
)

// JbbMod reproduces Tang et al.'s modified SPECjbb2000 (§6), where much of
// the heap growth is stale rather than live. Orders accumulate in object
// arrays; a *phased* walk touches the array→order references every
// jbbModPhasePeriod iterations, so the Object[] → Order edge type's
// maxStaleUse climbs to ~5 and protects those references from pruning —
// exactly the behaviour that limits leak pruning on this program. The bulk
// under each order (order lines → strings → char arrays) is never touched
// and gets pruned, so leak pruning extends the run ~20× before the
// unprunable spine (blocks, orders, dates) exhausts memory. Disk-offloading
// systems (Melt, LeakSurvivor) tolerate this leak until the disk fills
// because they can move the stale-but-protected spine out of memory.

func init() {
	register("jbbmod", true, func() Program { return newJbbMod() })
}

type jbbMod struct {
	block heap.ClassID // OrderBlock: jbbModBlockSlots orders + next
	order heap.ClassID // JbbOrder: lines, date
	date  heap.ClassID // JbbDate
	line  heap.ClassID // JbbOrderLine: desc
	str   heap.ClassID // JbbString: value
	chars heap.ClassID // JbbCharArray
	temp  heap.ClassID // transient transaction scratch

	blocksG  int
	fillSlot int // next free slot in the head block
}

func newJbbMod() *jbbMod { return &jbbMod{fillSlot: jbbModBlockSlots} }

func (p *jbbMod) Name() string { return "jbbmod" }
func (p *jbbMod) Description() string {
	return "Tang et al.'s modified SPECjbb2000: mostly stale growth, with a phased Object[]->Order access pattern"
}
func (p *jbbMod) DefaultHeap() uint64 { return 8 << 20 }

const (
	jbbModBlockSlots  = 64
	jbbModOrdersPer   = 8
	jbbModPhasePeriod = 24 // the phased walk that raises maxStaleUse
	jbbModOrderBytes  = 40
	jbbModDateBytes   = 24
	jbbModLineBytes   = 60
	jbbModCharBytes   = 800
)

func (p *jbbMod) Setup(t *vm.Thread) {
	v := t.VM()
	p.block = v.DefineClass("ObjectArray", jbbModBlockSlots+1, 0) // slots + next
	p.order = v.DefineClass("JbbOrder", 2, jbbModOrderBytes)
	p.date = v.DefineClass("JbbDate", 0, jbbModDateBytes)
	p.line = v.DefineClass("JbbOrderLine", 1, jbbModLineBytes)
	p.str = v.DefineClass("JbbString", 1, 24)
	p.chars = v.DefineClass("JbbCharArray", 0, jbbModCharBytes)
	p.temp = v.DefineClass("JbbTxnTemp", 0, 128)
	p.blocksG = v.AddGlobal()
}

func (p *jbbMod) Iterate(t *vm.Thread, iter int) bool {
	t.InFrame(2, func(f *vm.Frame) {
		for j := 0; j < jbbModOrdersPer; j++ {
			if p.fillSlot >= jbbModBlockSlots {
				// Start a new order block at the head of the chain.
				blk := t.New(p.block)
				f.Set(1, blk)
				t.Store(blk, jbbModBlockSlots, t.LoadGlobal(p.blocksG))
				t.StoreGlobal(p.blocksG, blk)
				p.fillSlot = 0
			}
			order := t.New(p.order)
			f.Set(0, order)
			date := t.New(p.date)
			t.Store(order, 1, date)
			line := t.New(p.line)
			t.Store(order, 0, line)
			s := t.New(p.str)
			t.Store(line, 0, s)
			arr := t.New(p.chars)
			t.Store(s, 0, arr)

			head := t.LoadGlobal(p.blocksG)
			t.Store(head, p.fillSlot, order)
			p.fillSlot++
		}
	})

	churn(t, p.temp, 6)

	// The phased behaviour: every jbbModPhasePeriod iterations the program
	// walks every block and touches each Object[] → Order reference (but
	// nothing below the orders). The read barrier observes these uses at
	// staleness ~5 and raises the edge type's maxStaleUse accordingly.
	if iter%jbbModPhasePeriod == jbbModPhasePeriod-1 {
		blk := t.LoadGlobal(p.blocksG)
		for !blk.IsNull() {
			for s := 0; s < jbbModBlockSlots; s++ {
				r := t.Load(blk, s)
				_ = r
			}
			blk = t.Load(blk, jbbModBlockSlots)
		}
	}
	return false
}
