// Package edgetable implements the paper's edge table (§4.1–4.2): a
// fixed-size, closed-hashing table keyed by (source class, target class)
// that summarizes an equivalence relation over heap references. Each entry
// records
//
//   - maxStaleUse: the all-time maximum stale-counter value observed when
//     the program used (read) a reference of this edge type — edge types
//     that are stale for a long time but then used again get a high value
//     and are protected from pruning; and
//   - bytesUsed: the bytes reachable from stale roots of this edge type,
//     computed by the SELECT state's stale transitive closure and reset
//     after each selection.
//
// Entries are never deleted (§4.5). Following the paper's prototype, entry
// field updates use atomics rather than per-entry locks: selection is not
// sensitive to exact values, but we still avoid torn or lost updates.
package edgetable

import (
	"sort"
	"sync"
	"sync/atomic"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/heap"
)

// DefaultSlots is the paper's table size: 16K slots of four words (§6.2).
const DefaultSlots = 16 * 1024

// Key identifies an edge type: the classes of a reference's source and
// target objects.
type Key struct {
	Src, Tgt heap.ClassID
}

// Entry is one edge-type record. Fields are updated atomically; read them
// through the accessor methods.
type Entry struct {
	key          Key
	used         uint32 // 1 once the slot is occupied (set under t.mu)
	maxStaleUse  uint32
	bytesUsed    uint64
	timesPruned  uint64 // diagnostic: how many refs of this type were poisoned
	timesUpdated uint64 // diagnostic: barrier maxStaleUse updates
}

// Key returns the entry's edge type.
func (e *Entry) Key() Key { return e.key }

// MaxStaleUse returns the recorded maximum staleness-at-use.
func (e *Entry) MaxStaleUse() uint8 { return uint8(atomic.LoadUint32(&e.maxStaleUse)) }

// BytesUsed returns the bytes attributed by the most recent stale closure.
func (e *Entry) BytesUsed() uint64 { return atomic.LoadUint64(&e.bytesUsed) }

// TimesPruned returns how many references of this type have been poisoned.
func (e *Entry) TimesPruned() uint64 { return atomic.LoadUint64(&e.timesPruned) }

// Table is the fixed-size closed-hashing edge table.
type Table struct {
	mu    sync.Mutex // serializes inserts only (rare; §4.5)
	slots []Entry
	count atomic.Uint64

	// overflows counts insertions dropped because the table was full (or an
	// injected overflow); the affected updates degrade to no-ops instead of
	// crashing the collection that observed the new edge type.
	overflows atomic.Uint64
	// scratch absorbs updates aimed at entries that could not be inserted.
	// It is never reachable through lookup, so its contents are inert.
	scratch Entry

	inj *faultinject.Injector
}

// New creates a table with the given number of slots (rounded up to a power
// of two; DefaultSlots if n <= 0).
func New(n int) *Table {
	if n <= 0 {
		n = DefaultSlots
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Table{slots: make([]Entry, size)}
}

// Len returns the number of occupied entries — the paper's "edge types"
// column in Table 2 (the table never shrinks).
func (t *Table) Len() int { return int(t.count.Load()) }

// Overflows returns how many edge-type insertions were dropped because the
// table was full.
func (t *Table) Overflows() uint64 { return t.overflows.Load() }

// SetFaultInjector arms the EdgeTableOverflow injection point: an injected
// fire makes the next insertion behave as if the table were full, driving
// the dropped-update degradation path without filling 16K slots.
func (t *Table) SetFaultInjector(inj *faultinject.Injector) { t.inj = inj }

// Cap returns the slot count.
func (t *Table) Cap() int { return len(t.slots) }

func (t *Table) hash(k Key) int {
	// Fibonacci hashing over the packed pair; the table size is a power of
	// two so we mask.
	h := (uint64(k.Src)<<32 | uint64(k.Tgt)) * 0x9e3779b97f4a7c15
	return int(h>>33) & (len(t.slots) - 1)
}

// lookup finds the entry for k, or nil without inserting.
func (t *Table) lookup(k Key) *Entry {
	mask := len(t.slots) - 1
	for i, probes := t.hash(k), 0; probes < len(t.slots); i, probes = (i+1)&mask, probes+1 {
		e := &t.slots[i]
		if atomic.LoadUint32(&e.used) == 0 {
			return nil
		}
		if e.key == k {
			return e
		}
	}
	return nil
}

// Get returns the entry for k if present.
func (t *Table) Get(src, tgt heap.ClassID) (*Entry, bool) {
	e := t.lookup(Key{src, tgt})
	return e, e != nil
}

// GetOrInsert returns the entry for k, creating it if needed. Insertion
// takes the global table lock; lookups of existing entries are lock-free,
// matching the paper's observation that new edge types are rare. When the
// table is full (the paper treats 16K slots as ample, but a pathological
// class population — or an injected fault — can exhaust it), the insertion
// is dropped: the overflow counter advances and the caller's update lands
// on an inert scratch entry. Losing an edge-type record only makes pruning
// more conservative, so degrading beats aborting the collection.
func (t *Table) GetOrInsert(src, tgt heap.ClassID) *Entry {
	k := Key{src, tgt}
	if e := t.lookup(k); e != nil {
		return e
	}
	if t.inj.Should(faultinject.EdgeTableOverflow) {
		t.overflows.Add(1)
		return &t.scratch
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	mask := len(t.slots) - 1
	for i, probes := t.hash(k), 0; probes < len(t.slots); i, probes = (i+1)&mask, probes+1 {
		e := &t.slots[i]
		if atomic.LoadUint32(&e.used) == 0 {
			e.key = k
			atomic.StoreUint32(&e.used, 1) // publish after key write
			t.count.Add(1)
			return e
		}
		if e.key == k {
			return e
		}
	}
	t.overflows.Add(1)
	return &t.scratch
}

// MaxStaleUseFor returns the recorded maxStaleUse for the edge type, or 0
// when the edge type has never been observed — the conservative default
// that makes never-reused reference types prunable at staleness ≥ 2.
func (t *Table) MaxStaleUseFor(src, tgt heap.ClassID) uint8 {
	if e := t.lookup(Key{src, tgt}); e != nil {
		return e.MaxStaleUse()
	}
	return 0
}

// RecordUse is the read barrier's cold-path edge update (§4.1): when the
// program uses a reference whose target has stale counter ≥ 2, raise the
// edge type's maxStaleUse to that value.
func (t *Table) RecordUse(src, tgt heap.ClassID, stale uint8) {
	if stale < 2 {
		return
	}
	e := t.GetOrInsert(src, tgt)
	atomic.AddUint64(&e.timesUpdated, 1)
	for {
		cur := atomic.LoadUint32(&e.maxStaleUse)
		if uint32(stale) <= cur {
			return
		}
		if atomic.CompareAndSwapUint32(&e.maxStaleUse, cur, uint32(stale)) {
			return
		}
	}
}

// AddBytesUsed attributes bytes reachable from a stale root of this edge
// type (the SELECT state's stale closure, §4.2).
func (t *Table) AddBytesUsed(src, tgt heap.ClassID, bytes uint64) {
	e := t.GetOrInsert(src, tgt)
	atomic.AddUint64(&e.bytesUsed, bytes)
}

// RecordPrune counts a poisoned reference of this edge type (diagnostics
// for the paper's optional pruning report, §3.2).
func (t *Table) RecordPrune(src, tgt heap.ClassID) {
	if e := t.lookup(Key{src, tgt}); e != nil {
		atomic.AddUint64(&e.timesPruned, 1)
	}
}

// MaxBytesUsed returns the occupied entry with the greatest bytesUsed, if
// any entry has nonzero bytesUsed — the SELECT state's choice (§4.2). Ties
// break toward the lower slot index for determinism.
func (t *Table) MaxBytesUsed() (*Entry, bool) {
	var best *Entry
	var bestBytes uint64
	for i := range t.slots {
		e := &t.slots[i]
		if atomic.LoadUint32(&e.used) == 0 {
			continue
		}
		if b := e.BytesUsed(); b > bestBytes {
			best, bestBytes = e, b
		}
	}
	return best, best != nil
}

// DecayMaxStaleUse lowers every entry's maxStaleUse by one (floored at
// zero). The paper suggests periodic decay as a policy extension for
// phased programs like JbbMod, whose reference types are used rarely enough
// to accrue a high maxStaleUse that then protects dead data forever (§6).
func (t *Table) DecayMaxStaleUse() {
	for i := range t.slots {
		e := &t.slots[i]
		if atomic.LoadUint32(&e.used) == 0 {
			continue
		}
		for {
			cur := atomic.LoadUint32(&e.maxStaleUse)
			if cur == 0 {
				break
			}
			if atomic.CompareAndSwapUint32(&e.maxStaleUse, cur, cur-1) {
				break
			}
		}
	}
}

// ResetBytesUsed zeroes every entry's bytesUsed, as the SELECT state does
// after choosing an edge type (§4.2).
func (t *Table) ResetBytesUsed() {
	for i := range t.slots {
		e := &t.slots[i]
		if atomic.LoadUint32(&e.used) != 0 {
			atomic.StoreUint64(&e.bytesUsed, 0)
		}
	}
}

// ForEach calls fn on every occupied entry.
func (t *Table) ForEach(fn func(*Entry)) {
	for i := range t.slots {
		e := &t.slots[i]
		if atomic.LoadUint32(&e.used) != 0 {
			fn(e)
		}
	}
}

// Frozen is an immutable staleness snapshot of the table: every occupied
// entry's maxStaleUse as of the freeze point. A concurrent SELECT/PRUNE
// cycle freezes the table inside its first pause so the candidate
// predicate and the prune predicate both evaluate one consistent cut of
// the edge table, even while mutator read barriers keep raising live
// maxStaleUse values underneath the concurrent closure. Edge types
// absent at the freeze (including updates that overflowed to the inert
// scratch entry, which lookup never surfaces) report 0, exactly as the
// live table's MaxStaleUseFor would have at that instant.
type Frozen struct {
	msu map[Key]uint8
}

// Freeze captures the current maxStaleUse of every occupied entry.
// Callers provide the "one consistent cut" guarantee by freezing inside
// a stop-the-world pause; Freeze itself only promises a coherent
// per-entry read (entries are atomics) and an immutable result.
func (t *Table) Freeze() *Frozen {
	f := &Frozen{msu: make(map[Key]uint8, t.Len())}
	t.ForEach(func(e *Entry) {
		f.msu[e.key] = e.MaxStaleUse()
	})
	return f
}

// MaxStaleUseFor returns the frozen maxStaleUse for the edge type, or 0
// when the edge type was not in the table at the freeze point — the same
// conservative default as the live table's MaxStaleUseFor.
func (f *Frozen) MaxStaleUseFor(src, tgt heap.ClassID) uint8 {
	return f.msu[Key{src, tgt}]
}

// Len returns the number of edge types captured by the freeze.
func (f *Frozen) Len() int { return len(f.msu) }

// Snapshot describes one entry for reporting, with class names resolved.
type Snapshot struct {
	Src, Tgt    string
	MaxStaleUse uint8
	BytesUsed   uint64
	TimesPruned uint64
}

// Snapshots returns all occupied entries resolved against reg, sorted by
// descending bytesUsed then by name for stable output.
func (t *Table) Snapshots(reg *heap.Registry) []Snapshot {
	var out []Snapshot
	t.ForEach(func(e *Entry) {
		out = append(out, Snapshot{
			Src:         reg.Name(e.key.Src),
			Tgt:         reg.Name(e.key.Tgt),
			MaxStaleUse: e.MaxStaleUse(),
			BytesUsed:   e.BytesUsed(),
			TimesPruned: e.TimesPruned(),
		})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].BytesUsed != out[j].BytesUsed {
			return out[i].BytesUsed > out[j].BytesUsed
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Tgt < out[j].Tgt
	})
	return out
}
