package edgetable

import (
	"testing"

	"leakpruning/internal/heap"
)

// FuzzEdgeTable drives a deliberately tiny table (8 slots, 16 possible edge
// types) with an arbitrary operation sequence and checks every step against
// a shadow map. The properties under test are the table's degradation
// contract: no operation may panic, Len always equals the number of distinct
// inserted keys, a full table routes new keys to the inert scratch entry and
// advances Overflows instead of evicting or corrupting an occupied slot,
// per-entry maxStaleUse/bytesUsed arithmetic (including decay and reset)
// matches a straightforward model, and a Freeze taken at any point stays
// pinned at its freeze-point values no matter what decay/reset/use traffic
// crosses the freeze boundary afterwards.
func FuzzEdgeTable(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 0})
	// Insert more than Cap distinct keys to reach the overflow path.
	f.Add([]byte{
		0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0,
		0, 1, 0, 0, 0, 1, 1, 0, 0, 1, 2, 0, 0, 1, 3, 0,
		0, 2, 0, 0, 0, 2, 1, 0, 0, 2, 2, 0, 0, 2, 3, 0,
	})
	// Exercise every op kind at least once.
	f.Add([]byte{
		0, 1, 1, 0, // GetOrInsert
		2, 1, 1, 0, // Get (hit)
		2, 3, 3, 0, // Get (miss)
		3, 1, 1, 5, // RecordUse stale=5
		3, 1, 1, 1, // RecordUse stale=1 (below threshold: no-op)
		4, 2, 2, 9, // AddBytesUsed
		5, 1, 1, 0, // RecordPrune
		6, 0, 0, 0, // DecayMaxStaleUse
		7, 0, 0, 0, // ResetBytesUsed
	})
	// Decay and reset crossing a freeze boundary: the frozen cut must keep
	// the pre-decay values while the live table moves on.
	f.Add([]byte{
		3, 0, 1, 5, // RecordUse(1,2) stale=5
		3, 1, 2, 4, // RecordUse(2,3) stale=4
		8, 0, 0, 0, // Freeze
		6, 0, 0, 0, // DecayMaxStaleUse (live 5→4, frozen stays 5)
		7, 0, 0, 0, // ResetBytesUsed
		3, 0, 1, 7, // RecordUse(1,2) stale=7 (live raised, frozen stays 5)
		8, 0, 0, 0, // Freeze again (captures the post-decay cut)
		6, 0, 0, 0, // DecayMaxStaleUse
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := New(8)
		type model struct {
			msu   uint8
			bytes uint64
		}
		shadow := map[Key]*model{}
		wantOverflows := uint64(0)
		var frozen *Frozen
		var shadowFrozen map[Key]uint8
		// insert applies GetOrInsert's model semantics: existing keys hit,
		// new keys occupy a slot while there is room, and a full table drops
		// the insertion (nil = the update landed on scratch).
		insert := func(k Key) *model {
			if m, ok := shadow[k]; ok {
				return m
			}
			if len(shadow) >= tab.Cap() {
				wantOverflows++
				return nil
			}
			m := &model{}
			shadow[k] = m
			return m
		}
		for i := 0; i+3 < len(data); i += 4 {
			op := data[i] % 9
			// Class IDs 1..4: 16 key combinations against 8 slots, and no
			// collision with the scratch entry's zero key.
			src := heap.ClassID(data[i+1]&3) + 1
			tgt := heap.ClassID(data[i+2]&3) + 1
			aux := data[i+3]
			k := Key{Src: src, Tgt: tgt}
			switch op {
			case 0, 1:
				e := tab.GetOrInsert(src, tgt)
				if m := insert(k); m != nil {
					if e.Key() != k {
						t.Fatalf("op %d: GetOrInsert(%v).Key() = %v", i, k, e.Key())
					}
				} else if e.Key() == k {
					t.Fatalf("op %d: full table returned a live entry for new key %v", i, k)
				}
			case 2:
				e, ok := tab.Get(src, tgt)
				_, want := shadow[k]
				if ok != want {
					t.Fatalf("op %d: Get(%v) = %t, shadow says %t", i, k, ok, want)
				}
				if ok && e.Key() != k {
					t.Fatalf("op %d: Get(%v).Key() = %v", i, k, e.Key())
				}
			case 3:
				tab.RecordUse(src, tgt, aux)
				if aux >= 2 {
					if m := insert(k); m != nil && aux > m.msu {
						m.msu = aux
					}
				}
			case 4:
				tab.AddBytesUsed(src, tgt, uint64(aux))
				if m := insert(k); m != nil {
					m.bytes += uint64(aux)
				}
			case 5:
				tab.RecordPrune(src, tgt) // lookup-only: never inserts
			case 6:
				tab.DecayMaxStaleUse()
				for _, m := range shadow {
					if m.msu > 0 {
						m.msu--
					}
				}
			case 7:
				tab.ResetBytesUsed()
				for _, m := range shadow {
					m.bytes = 0
				}
			case 8:
				frozen = tab.Freeze()
				shadowFrozen = make(map[Key]uint8, len(shadow))
				for fk, m := range shadow {
					shadowFrozen[fk] = m.msu
				}
				if frozen.Len() != len(shadowFrozen) {
					t.Fatalf("op %d: Frozen.Len = %d, shadow has %d keys", i, frozen.Len(), len(shadowFrozen))
				}
			}
			if tab.Len() != len(shadow) {
				t.Fatalf("op %d: Len = %d, shadow has %d keys", i, tab.Len(), len(shadow))
			}
			if tab.Overflows() != wantOverflows {
				t.Fatalf("op %d: Overflows = %d, want %d", i, tab.Overflows(), wantOverflows)
			}
			// A frozen cut never moves, whatever ops cross the freeze boundary.
			if frozen != nil {
				if got, want := frozen.MaxStaleUseFor(src, tgt), shadowFrozen[k]; got != want {
					t.Fatalf("op %d: frozen maxStaleUse(%v) = %d, freeze-point model %d", i, k, got, want)
				}
			}
		}
		for k, m := range shadow {
			e, ok := tab.Get(k.Src, k.Tgt)
			if !ok {
				t.Fatalf("inserted key %v not found at end", k)
			}
			if e.MaxStaleUse() != m.msu {
				t.Fatalf("key %v: maxStaleUse = %d, model %d", k, e.MaxStaleUse(), m.msu)
			}
			if e.BytesUsed() != m.bytes {
				t.Fatalf("key %v: bytesUsed = %d, model %d", k, e.BytesUsed(), m.bytes)
			}
		}
		if frozen != nil {
			for s := heap.ClassID(1); s <= 4; s++ {
				for g := heap.ClassID(1); g <= 4; g++ {
					if got, want := frozen.MaxStaleUseFor(s, g), shadowFrozen[Key{s, g}]; got != want {
						t.Fatalf("frozen maxStaleUse(%d,%d) = %d at end, freeze-point model %d", s, g, got, want)
					}
				}
			}
		}
		var wantMax uint64
		for _, m := range shadow {
			if m.bytes > wantMax {
				wantMax = m.bytes
			}
		}
		e, ok := tab.MaxBytesUsed()
		if ok != (wantMax > 0) {
			t.Fatalf("MaxBytesUsed ok = %t, model max %d", ok, wantMax)
		}
		if ok && e.BytesUsed() != wantMax {
			t.Fatalf("MaxBytesUsed = %d, model %d", e.BytesUsed(), wantMax)
		}
	})
}
