package edgetable

import (
	"sync"
	"testing"
	"testing/quick"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/heap"
)

func TestNewSizeRounding(t *testing.T) {
	if got := New(0).Cap(); got != DefaultSlots {
		t.Fatalf("default cap = %d", got)
	}
	if got := New(100).Cap(); got != 128 {
		t.Fatalf("cap rounded to %d, want 128", got)
	}
}

func TestGetOrInsert(t *testing.T) {
	tbl := New(64)
	e1 := tbl.GetOrInsert(1, 2)
	e2 := tbl.GetOrInsert(1, 2)
	if e1 != e2 {
		t.Fatal("GetOrInsert must return the same entry for the same key")
	}
	e3 := tbl.GetOrInsert(2, 1)
	if e3 == e1 {
		t.Fatal("(1,2) and (2,1) are distinct edge types")
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if _, ok := tbl.Get(1, 2); !ok {
		t.Fatal("Get missed an inserted entry")
	}
	if _, ok := tbl.Get(9, 9); ok {
		t.Fatal("Get found a missing entry")
	}
}

func TestRecordUseMaxSemantics(t *testing.T) {
	tbl := New(64)
	// Uses below staleness 2 are not recorded (§4.1: "a value of 1 is not
	// very stale").
	tbl.RecordUse(1, 2, 1)
	if tbl.Len() != 0 {
		t.Fatal("stale-1 use must not create an entry")
	}
	tbl.RecordUse(1, 2, 3)
	if got := tbl.MaxStaleUseFor(1, 2); got != 3 {
		t.Fatalf("maxStaleUse = %d", got)
	}
	tbl.RecordUse(1, 2, 2) // lower: no change
	if got := tbl.MaxStaleUseFor(1, 2); got != 3 {
		t.Fatalf("maxStaleUse regressed to %d", got)
	}
	tbl.RecordUse(1, 2, 5)
	if got := tbl.MaxStaleUseFor(1, 2); got != 5 {
		t.Fatalf("maxStaleUse = %d, want 5", got)
	}
	// Unknown edge types default to 0 — the conservative value that makes
	// never-reused types prunable at staleness >= 2.
	if got := tbl.MaxStaleUseFor(7, 7); got != 0 {
		t.Fatalf("unknown edge maxStaleUse = %d", got)
	}
}

func TestBytesUsedSelectReset(t *testing.T) {
	tbl := New(64)
	tbl.AddBytesUsed(1, 2, 100)
	tbl.AddBytesUsed(1, 2, 20)
	tbl.AddBytesUsed(3, 4, 90)
	best, ok := tbl.MaxBytesUsed()
	if !ok {
		t.Fatal("MaxBytesUsed found nothing")
	}
	if best.Key() != (Key{1, 2}) || best.BytesUsed() != 120 {
		t.Fatalf("best = %v/%d", best.Key(), best.BytesUsed())
	}
	tbl.ResetBytesUsed()
	tbl.ForEach(func(e *Entry) {
		if e.BytesUsed() != 0 {
			t.Fatalf("entry %v not reset", e.Key())
		}
	})
	// maxStaleUse survives the reset: it is an all-time maximum (§4.1).
	tbl.RecordUse(1, 2, 4)
	tbl.ResetBytesUsed()
	if tbl.MaxStaleUseFor(1, 2) != 4 {
		t.Fatal("ResetBytesUsed must not clear maxStaleUse")
	}
}

func TestRecordPrune(t *testing.T) {
	tbl := New(64)
	tbl.RecordPrune(1, 2) // no entry: silently ignored
	e := tbl.GetOrInsert(1, 2)
	tbl.RecordPrune(1, 2)
	tbl.RecordPrune(1, 2)
	if e.TimesPruned() != 2 {
		t.Fatalf("TimesPruned = %d", e.TimesPruned())
	}
}

func TestSnapshotsSorted(t *testing.T) {
	reg := heap.NewRegistry()
	a := reg.Define("A", 0, 0)
	b := reg.Define("B", 0, 0)
	c := reg.Define("C", 0, 0)
	tbl := New(64)
	tbl.AddBytesUsed(a, b, 10)
	tbl.AddBytesUsed(b, c, 200)
	tbl.AddBytesUsed(a, c, 10)
	snaps := tbl.Snapshots(reg)
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	if snaps[0].Src != "B" || snaps[0].Tgt != "C" {
		t.Fatalf("largest entry first, got %+v", snaps[0])
	}
	// Ties break by name for stable output.
	if snaps[1].Src != "A" || snaps[1].Tgt != "B" {
		t.Fatalf("tie order wrong: %+v", snaps[1])
	}
}

func TestTableFullDropsInsertions(t *testing.T) {
	tbl := New(4) // rounds to 4 slots
	for i := 0; i < 10; i++ {
		if e := tbl.GetOrInsert(heap.ClassID(i+1), heap.ClassID(i+1)); e == nil {
			t.Fatal("GetOrInsert returned nil")
		}
	}
	if got := tbl.Overflows(); got != 6 {
		t.Fatalf("Overflows = %d, want 6", got)
	}
	if tbl.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (full)", tbl.Len())
	}
	// Updates aimed at dropped entries are absorbed, not recorded: the
	// overflowed edge type still reads as never-observed.
	tbl.RecordUse(heap.ClassID(9), heap.ClassID(9), 5)
	if got := tbl.MaxStaleUseFor(heap.ClassID(9), heap.ClassID(9)); got != 0 {
		t.Fatalf("dropped edge type has MaxStaleUse %d, want 0", got)
	}
	// Existing entries keep working at capacity.
	tbl.RecordUse(heap.ClassID(1), heap.ClassID(1), 4)
	if got := tbl.MaxStaleUseFor(heap.ClassID(1), heap.ClassID(1)); got != 4 {
		t.Fatalf("resident edge type has MaxStaleUse %d, want 4", got)
	}
}

func TestInjectedEdgeTableOverflow(t *testing.T) {
	inj := faultinject.New(5)
	inj.Arm(faultinject.EdgeTableOverflow, 1.0)
	inj.Limit(faultinject.EdgeTableOverflow, 1)
	tbl := New(64)
	tbl.SetFaultInjector(inj)
	tbl.RecordUse(1, 2, 3) // insertion injected away
	if tbl.Overflows() != 1 || tbl.Len() != 0 {
		t.Fatalf("overflows=%d len=%d, want 1/0", tbl.Overflows(), tbl.Len())
	}
	tbl.RecordUse(1, 2, 3) // injector exhausted: insertion proceeds
	if tbl.Len() != 1 || tbl.MaxStaleUseFor(1, 2) != 3 {
		t.Fatalf("post-fault insert failed: len=%d stale=%d", tbl.Len(), tbl.MaxStaleUseFor(1, 2))
	}
}

func TestConcurrentRecordUse(t *testing.T) {
	tbl := New(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tbl.RecordUse(heap.ClassID(i%17+1), heap.ClassID(i%13+1), uint8(2+(i+w)%5))
				tbl.AddBytesUsed(heap.ClassID(i%17+1), heap.ClassID(i%13+1), 8)
			}
		}(w)
	}
	wg.Wait()
	if tbl.Len() == 0 || tbl.Len() > 17*13 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	// Every recorded maxStaleUse must be in the range that was written.
	tbl.ForEach(func(e *Entry) {
		if m := e.MaxStaleUse(); m < 2 || m > 6 {
			t.Fatalf("maxStaleUse out of range: %d", m)
		}
	})
}

// TestMaxStaleUseQuick: maxStaleUse equals the maximum of all recorded uses
// at staleness >= 2, for arbitrary use sequences.
func TestMaxStaleUseQuick(t *testing.T) {
	prop := func(uses []uint8) bool {
		tbl := New(16)
		want := uint8(0)
		for _, u := range uses {
			u %= 8
			tbl.RecordUse(1, 2, u)
			if u >= 2 && u > want {
				want = u
			}
		}
		return tbl.MaxStaleUseFor(1, 2) == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBytesUsedSumQuick: bytesUsed accumulates exactly.
func TestBytesUsedSumQuick(t *testing.T) {
	prop := func(adds []uint16) bool {
		tbl := New(16)
		var want uint64
		for _, a := range adds {
			tbl.AddBytesUsed(3, 4, uint64(a))
			want += uint64(a)
		}
		e, ok := tbl.Get(3, 4)
		if len(adds) == 0 {
			return !ok
		}
		return ok && e.BytesUsed() == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFreezeMatchesSTWCut is the snapshot-equivalence property the
// concurrent SELECT/PRUNE path depends on: for an arbitrary use history,
// the frozen snapshot answers MaxStaleUseFor exactly as an STW cycle
// reading the live table at the freeze point would, over the whole key
// universe (including keys never observed, which both report 0).
func TestFreezeMatchesSTWCut(t *testing.T) {
	prop := func(uses []uint32) bool {
		tbl := New(16)
		for _, u := range uses {
			src := heap.ClassID(u&3) + 1
			tgt := heap.ClassID((u>>2)&3) + 1
			tbl.RecordUse(src, tgt, uint8((u>>4)%8))
		}
		f := tbl.Freeze()
		if f.Len() != tbl.Len() {
			return false
		}
		for s := heap.ClassID(1); s <= 4; s++ {
			for g := heap.ClassID(1); g <= 4; g++ {
				if f.MaxStaleUseFor(s, g) != tbl.MaxStaleUseFor(s, g) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFreezeImmutableUnderTraffic: the frozen cut keeps its freeze-point
// values while use/decay/reset traffic moves the live table — the
// property that lets a concurrent cycle's candidate and prune predicates
// see one consistent staleness cut while mutator read barriers keep
// raising live maxStaleUse.
func TestFreezeImmutableUnderTraffic(t *testing.T) {
	tbl := New(64)
	tbl.RecordUse(1, 2, 5)
	tbl.RecordUse(3, 4, 2)
	f := tbl.Freeze()
	tbl.RecordUse(1, 2, 7) // live raised past the cut
	tbl.DecayMaxStaleUse() // live lowered below the cut
	tbl.ResetBytesUsed()   // unrelated state clears must not leak in
	tbl.RecordUse(2, 2, 6) // new edge type after the cut
	if got := f.MaxStaleUseFor(1, 2); got != 5 {
		t.Fatalf("frozen (1,2) = %d after live traffic, want 5", got)
	}
	if got := f.MaxStaleUseFor(3, 4); got != 2 {
		t.Fatalf("frozen (3,4) = %d after live decay, want 2", got)
	}
	if got := f.MaxStaleUseFor(2, 2); got != 0 {
		t.Fatalf("frozen sees post-freeze edge type: %d, want 0", got)
	}
	if f.Len() != 2 {
		t.Fatalf("Frozen.Len = %d, want 2", f.Len())
	}
	if got := tbl.MaxStaleUseFor(1, 2); got != 6 {
		t.Fatalf("live (1,2) = %d, want 6 (raised to 7 then decayed)", got)
	}
}

// TestFreezeOverflowToScratch: updates that overflowed to the inert
// scratch entry are invisible to lookup, so the frozen cut must report 0
// for them — identical to what an STW cycle reading the live table sees.
func TestFreezeOverflowToScratch(t *testing.T) {
	tbl := New(4)
	for i := 0; i < 4; i++ {
		tbl.RecordUse(heap.ClassID(i+1), heap.ClassID(i+1), uint8(2+i))
	}
	// Table full: this use lands on scratch.
	tbl.RecordUse(9, 9, 7)
	if tbl.Overflows() == 0 {
		t.Fatal("overflow path not reached")
	}
	f := tbl.Freeze()
	if f.Len() != tbl.Len() {
		t.Fatalf("Frozen.Len = %d, live Len = %d", f.Len(), tbl.Len())
	}
	if got, live := f.MaxStaleUseFor(9, 9), tbl.MaxStaleUseFor(9, 9); got != 0 || live != 0 {
		t.Fatalf("overflowed edge type: frozen=%d live=%d, want 0/0", got, live)
	}
	for i := 0; i < 4; i++ {
		c := heap.ClassID(i + 1)
		if f.MaxStaleUseFor(c, c) != tbl.MaxStaleUseFor(c, c) {
			t.Fatalf("resident edge (%d,%d): frozen %d != live %d",
				c, c, f.MaxStaleUseFor(c, c), tbl.MaxStaleUseFor(c, c))
		}
	}
}

func TestDecayMaxStaleUse(t *testing.T) {
	tbl := New(64)
	tbl.RecordUse(1, 2, 5)
	tbl.RecordUse(3, 4, 2)
	tbl.DecayMaxStaleUse()
	if got := tbl.MaxStaleUseFor(1, 2); got != 4 {
		t.Fatalf("decayed maxStaleUse = %d, want 4", got)
	}
	if got := tbl.MaxStaleUseFor(3, 4); got != 1 {
		t.Fatalf("decayed maxStaleUse = %d, want 1", got)
	}
	// Decay floors at zero.
	for i := 0; i < 10; i++ {
		tbl.DecayMaxStaleUse()
	}
	if got := tbl.MaxStaleUseFor(3, 4); got != 0 {
		t.Fatalf("maxStaleUse after repeated decay = %d", got)
	}
}
