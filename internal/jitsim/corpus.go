package jitsim

// Corpus generates a deterministic set of synthetic methods with the op mix
// of ordinary managed code. Reference values live in registers r0–r3
// (defined by allocation), scalars in r4–r15; reference loads arrive in
// short same-base bursts (a.f; a.g; a.h — the field-access locality real
// code has, and exactly what the tier-1 dataflow exploits), calibrated so
// tier-0 barrier expansion bloats code size by about 10%, matching the
// paper's measurement.
func Corpus(benchmark string, methods, opsPerMethod int) []*Method {
	seed := uint64(1)
	for _, c := range benchmark {
		seed = seed*131 + uint64(c)
	}
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	out := make([]*Method, 0, methods)
	for i := 0; i < methods; i++ {
		m := &Method{Name: benchmarkMethodName(benchmark, i)}
		for len(m.Ops) < opsPerMethod {
			s := next()
			r := s % 100
			ref := int32(s>>8) & 3        // base-reference register r0–r3
			scalar := 4 + int32(s>>16)%12 // scalar register r4–r15
			b := int32(s>>32) & 1023
			switch {
			case r < 4:
				// Field-access burst: 1–4 loads off the same base. The
				// first is the burst's barrier site; the rest are what a
				// real JIT proves redundant.
				burst := 1 + int(s>>24)%4
				for k := 0; k < burst && len(m.Ops) < opsPerMethod; k++ {
					dst := 4 + (scalar-4+int32(k))%12
					m.Ops = append(m.Ops, Op{Kind: OpLoadField, A: dst, B: b + int32(k), C: ref})
				}
			case r < 10:
				m.Ops = append(m.Ops, Op{Kind: OpStoreField, A: ref, B: b, C: scalar})
			case r < 14:
				m.Ops = append(m.Ops, Op{Kind: OpAlloc, A: ref, B: b&7 + 1})
			case r < 18:
				m.Ops = append(m.Ops, Op{Kind: OpCall, A: scalar, B: b})
			case r < 22:
				// Conditional branch on a reference register: backward
				// (loop backedge, a safepoint) or forward (diamond edge).
				d := 1 + int32(s>>24)%8
				if s>>40&1 == 0 {
					d = -d
				}
				m.Ops = append(m.Ops, Op{Kind: OpBranch, A: ref, B: d})
			case r < 58:
				m.Ops = append(m.Ops, Op{Kind: OpConst, A: scalar, B: b})
			default:
				m.Ops = append(m.Ops, Op{Kind: OpArith, A: scalar, B: b})
			}
		}
		out = append(out, m)
	}
	return out
}

func benchmarkMethodName(bench string, i int) string {
	const hex = "0123456789abcdef"
	return bench + ".m" + string([]byte{hex[(i>>8)&15], hex[(i>>4)&15], hex[i&15]})
}

// ShapeCorpus returns hand-written methods that each pin one dataflow case
// of the tier-1 analysis; analysis_test.go asserts the exact outcome per
// shape.
func ShapeCorpus() []*Method {
	return []*Method{
		// shape.diamond: r0 is barrier-checked on BOTH arms of a forward
		// diamond, so the must-meet at the join keeps the fact and the
		// join's load elides. (Dataflow case: intersection over forward
		// edges preserves facts proven on every path.)
		{Name: "shape.diamond", Ops: []Op{
			{Kind: OpConst, A: 7, B: 1},           // r7 = 1: always-taken cond
			{Kind: OpAlloc, A: 0, B: 4},           // r0 = ref
			{Kind: OpCall, A: 4, B: 9},            // safepoint: r0's fact dies
			{Kind: OpBranch, A: 5, B: -3},         // if r5: goto 6 (arm B)
			{Kind: OpLoadField, A: 6, B: 0, C: 0}, // arm A: checks r0
			{Kind: OpBranch, A: 7, B: -3},         // always: goto 8 (join)
			{Kind: OpLoadField, A: 6, B: 1, C: 0}, // arm B: checks r0
			{Kind: OpArith, A: 6, B: 5},           //
			{Kind: OpLoadField, A: 8, B: 2, C: 0}, // join: checked on all paths -> elide
		}},
		// shape.onearmed: r0 is checked on only one arm, so the join's
		// must-meet drops the fact and the join load keeps its barrier.
		// (Dataflow case: a single unchecked path defeats elision.)
		{Name: "shape.onearmed", Ops: []Op{
			{Kind: OpAlloc, A: 0, B: 4},           // r0 = ref
			{Kind: OpCall, A: 4, B: 9},            // safepoint: fact dies
			{Kind: OpBranch, A: 5, B: -2},         // if r5: goto 4, skipping the check
			{Kind: OpLoadField, A: 6, B: 0, C: 0}, // one arm checks r0
			{Kind: OpLoadField, A: 8, B: 1, C: 0}, // join: NOT checked on all paths -> keep
		}},
		// shape.loopinv: a safepoint-free loop body loads the invariant r0
		// twice per trip; tier 1 hoists a single check pair into the loop
		// header (re-established after each backedge safepoint), elides
		// both body sites, and the fact flows out of the loop to the
		// post-loop load. (Dataflow case: loop-invariant hoisting.)
		{Name: "shape.loopinv", Ops: []Op{
			{Kind: OpAlloc, A: 0, B: 4},           // r0 = invariant ref
			{Kind: OpCall, A: 4, B: 9},            // safepoint: enter loop with no facts
			{Kind: OpConst, A: 5, B: 3},           // r5 = loop condition (runs to fuel)
			{Kind: OpLoadField, A: 6, B: 0, C: 0}, // header: invariant load
			{Kind: OpLoadField, A: 7, B: 1, C: 0}, // second body load
			{Kind: OpBranch, A: 5, B: 2},          // backedge to op 3 (safepoint edge)
			{Kind: OpLoadField, A: 8, B: 2, C: 0}, // post-loop: fact flowed out -> elide
		}},
		// shape.callheavy: every OpCall is a safepoint, so the fact from
		// the black allocation covers only the first load; each
		// post-call load pays its barrier again. (Dataflow case:
		// safepoints kill facts.)
		{Name: "shape.callheavy", Ops: []Op{
			{Kind: OpAlloc, A: 0, B: 4},           // r0 = ref, black-allocated
			{Kind: OpLoadField, A: 5, B: 0, C: 0}, // elided: checked by construction
			{Kind: OpCall, A: 4, B: 1},            // safepoint
			{Kind: OpLoadField, A: 6, B: 1, C: 0}, // must re-check
			{Kind: OpCall, A: 4, B: 2},            // safepoint
			{Kind: OpLoadField, A: 7, B: 2, C: 0}, // must re-check
		}},
	}
}

// SuiteStats aggregates compilation over a corpus.
type SuiteStats struct {
	Benchmark       string
	Methods         int
	CompileTime     int64 // nanoseconds, summed
	IRSizeIn        int
	IRSizeOut       int
	CodeBytes       int
	BarrierSites    int
	BarriersElided  int
	BarriersHoisted int
	ScheduleCost    int
}

// CompileCorpus compiles every method of a corpus with the given compiler
// and sums the costs.
func CompileCorpus(benchmark string, c *Compiler, corpus []*Method) SuiteStats {
	s := SuiteStats{Benchmark: benchmark, Methods: len(corpus)}
	for _, m := range corpus {
		_, st := c.Compile(m)
		s.CompileTime += int64(st.Duration)
		s.IRSizeIn += st.IRSizeIn
		s.IRSizeOut += st.IRSizeOut
		s.CodeBytes += st.CodeBytes
		s.BarrierSites += st.BarrierSites
		s.BarriersElided += st.BarriersElided
		s.BarriersHoisted += st.BarriersHoisted
		s.ScheduleCost += st.ScheduleCost
	}
	return s
}
