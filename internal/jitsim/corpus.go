package jitsim

// Corpus generates a deterministic set of synthetic methods with the op mix
// of ordinary managed code: roughly one reference load per 12 operations,
// calibrated so barrier expansion bloats code size by about 10%, matching
// the paper's measurement.
func Corpus(benchmark string, methods, opsPerMethod int) []*Method {
	seed := uint64(1)
	for _, c := range benchmark {
		seed = seed*131 + uint64(c)
	}
	out := make([]*Method, 0, methods)
	for i := 0; i < methods; i++ {
		m := &Method{Name: benchmarkMethodName(benchmark, i)}
		for j := 0; j < opsPerMethod; j++ {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			r := seed % 100
			a := int32(seed>>8) & 15
			b := int32(seed>>16) & 1023
			var k OpKind
			switch {
			case r < 8:
				k = OpLoadField
			case r < 14:
				k = OpStoreField
			case r < 20:
				k = OpAlloc
				b = b&7 + 1
			case r < 26:
				k = OpCall
			case r < 60:
				k = OpConst
			default:
				k = OpArith
			}
			m.Ops = append(m.Ops, Op{Kind: k, A: a, B: b})
		}
		out = append(out, m)
	}
	return out
}

func benchmarkMethodName(bench string, i int) string {
	const hex = "0123456789abcdef"
	return bench + ".m" + string([]byte{hex[(i>>8)&15], hex[(i>>4)&15], hex[i&15]})
}

// SuiteStats aggregates compilation over a corpus.
type SuiteStats struct {
	Benchmark    string
	Methods      int
	CompileTime  int64 // nanoseconds, summed
	IRSizeIn     int
	IRSizeOut    int
	CodeBytes    int
	BarrierSites int
}

// CompileCorpus compiles every method of a corpus with the given compiler
// and sums the costs.
func CompileCorpus(benchmark string, c *Compiler, corpus []*Method) SuiteStats {
	s := SuiteStats{Benchmark: benchmark, Methods: len(corpus)}
	for _, m := range corpus {
		_, st := c.Compile(m)
		s.CompileTime += int64(st.Duration)
		s.IRSizeIn += st.IRSizeIn
		s.IRSizeOut += st.IRSizeOut
		s.CodeBytes += st.CodeBytes
		s.BarrierSites += st.BarrierSites
	}
	return s
}
