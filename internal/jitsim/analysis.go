package jitsim

// Barrier elision analysis (tier 1). A forward must-dataflow computes, at
// every program point, the set of registers whose current value is
// barrier-checked: it was either tested by a barrier on every path since
// the last safepoint, or produced by OpAlloc (black allocation) after the
// last safepoint, and the register has not been redefined since. A load
// whose base register is checked on all incoming paths needs no barrier —
// its test/call pair is elided. Loop-invariant checks are additionally
// hoisted: when every trip through a loop body dereferences base register
// r and the body itself contains no safepoint, the per-site checks are
// replaced by a single check pair in the loop header — executed on loop
// entry and re-established right after each backedge safepoint, so it
// covers every iteration including sites on different branch arms.
//
// Soundness obligation (the static twin of vm.barrierColdPath's dynamic
// one): no load of a possibly-stale reference escapes unchecked. A
// reference can go stale only across a safepoint (OpCall, OpAlloc, taken
// backward OpBranch edges), so "tested since the last safepoint, not
// redefined" implies the tested value is the dereferenced value and it
// cannot have gone stale in between.

// regMask is a must-checked register set (16 registers).
type regMask uint16

const allRegs regMask = 0xffff

func bit(r int32) regMask { return 1 << (uint(r) & 15) }

// transfer applies one op to the checked set.
func transfer(s regMask, op Op) regMask {
	switch op.Kind {
	case OpConst, OpArith:
		s &^= bit(op.A)
	case OpCall:
		s = 0
	case OpAlloc:
		// Safepoint kills everything; the fresh reference is
		// black-allocated, hence checked by construction.
		s = bit(op.A)
	case OpLoadField:
		// The (emitted or elided) check covers C at this point either way;
		// the load then overwrites A with an unchecked loaded reference.
		s |= bit(op.C)
		s &^= bit(op.A)
	case opBarrierTest:
		s |= bit(op.C)
	}
	return s
}

// checkedFixpoint runs the must-analysis to a fixpoint and returns each
// block's entry state. hoisted maps header block index -> registers whose
// hoisted check pair executes at the top of that block; the fixpoint
// models them as facts ORed into the block's entry state (the pairs are
// materialized only at rewrite time, so op indices stay stable).
func (g *cfg) checkedFixpoint(hoisted map[int]regMask) []regMask {
	nb := len(g.blocks)
	in := make([]regMask, nb)
	out := make([]regMask, nb)
	for i := range in {
		in[i] = allRegs // optimistic top for the must-meet
		out[i] = allRegs
	}

	type predEdge struct {
		from int
		kind edgeKind
	}
	preds := make([][]predEdge, nb)
	for i, b := range g.blocks {
		for _, e := range b.succs {
			if e.to < nb {
				preds[e.to] = append(preds[e.to], predEdge{from: i, kind: e.kind})
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for i, b := range g.blocks {
			meet := allRegs
			if i == 0 {
				meet = 0 // method entry: nothing checked
			}
			for _, p := range preds[i] {
				if p.kind == edgeBackedge {
					meet = 0 // the backedge is a safepoint: facts die on it
				} else {
					meet &= out[p.from]
				}
			}
			s := meet | hoisted[i]
			if s != in[i] {
				in[i] = s
				changed = true
			}
			o := s
			for _, op := range b.ops {
				o = transfer(o, op)
			}
			if o != out[i] {
				out[i] = o
				changed = true
			}
		}
	}
	return in
}

// siteKey identifies a load site by (block index, op index within block).
type siteKey struct{ block, op int }

// elidableSites returns the load sites the dataflow proves checked on all
// paths, given per-block entry states.
func (g *cfg) elidableSites(in []regMask) map[siteKey]bool {
	m := make(map[siteKey]bool)
	for bi, b := range g.blocks {
		s := in[bi]
		for oi, op := range b.ops {
			if op.Kind == OpLoadField && s&bit(op.C) != 0 {
				m[siteKey{bi, oi}] = true
			}
			s = transfer(s, op)
		}
	}
	return m
}

// loopInfo is one hoisting-eligible natural loop: a backedge from block
// `latch` to block `header`, body = blocks[header..latch].
type loopInfo struct {
	header, latch int
	candidates    regMask // registers whose checks may be hoisted
}

// findHoistableLoops locates backedges whose body admits hoisting:
//   - no OpCall/OpAlloc in the body (safepoints that would kill the
//     hoisted fact mid-iteration);
//   - no other backedge inside the body (a nested loop's safepoint edge);
//   - no branch from outside the body targets a body block other than the
//     header (every body execution must have passed the header check since
//     the last safepoint);
//
// and per register r: no body op defines r, and every path from the header
// to any edge leaving the body (backedge or loop exit) performs at least
// one load with base r — that keeps the hoisted check's dynamic count at
// or below the per-site oracle's.
func (g *cfg) findHoistableLoops() []loopInfo {
	nb := len(g.blocks)
	var loops []loopInfo
	for latch, b := range g.blocks {
		if b.branchTarget < 0 || !b.branchBack {
			continue
		}
		h := b.branchTarget
		if h > latch || h >= nb {
			continue
		}
		legal := true
		var defs regMask
		loadBlocks := make([]regMask, latch-h+1) // load bases per body block
		for bi := h; bi <= latch && legal; bi++ {
			bb := g.blocks[bi]
			for _, op := range bb.ops {
				if isSafepointOp(op.Kind) {
					legal = false
					break
				}
				if op.Kind == OpLoadField {
					loadBlocks[bi-h] |= bit(op.C)
				}
				if d := defReg(op); d >= 0 {
					defs |= bit(int32(d))
				}
			}
			if bi != latch && bb.branchTarget >= 0 && bb.branchBack {
				legal = false // nested backedge inside the body
			}
		}
		for oi, ob := range g.blocks {
			if oi >= h && oi <= latch {
				continue
			}
			if ob.branchTarget > h && ob.branchTarget <= latch {
				legal = false // side entry into the body skips the header
			}
		}
		if !legal {
			continue
		}
		cands := g.allPathsLoaded(h, latch, loadBlocks) &^ defs
		if cands != 0 {
			loops = append(loops, loopInfo{header: h, latch: latch, candidates: cands})
		}
	}
	return loops
}

// allPathsLoaded computes, by a forward must-analysis restricted to the
// loop body, the registers used as a load base on every path from the
// header to every edge that leaves the body (backedge included).
func (g *cfg) allPathsLoaded(h, latch int, loadBlocks []regMask) regMask {
	n := latch - h + 1
	in := make([]regMask, n)
	out := make([]regMask, n)
	for i := range in {
		in[i] = allRegs
		out[i] = allRegs
	}
	in[0] = 0 // header entry: nothing loaded yet this trip
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			s := in[i]
			if i > 0 {
				meet := allRegs
				any := false
				for pi := h; pi <= latch; pi++ {
					for _, e := range g.blocks[pi].succs {
						if e.to == h+i && e.kind != edgeBackedge {
							meet &= out[pi-h]
							any = true
						}
					}
				}
				if any {
					s = meet
				}
			}
			if s != in[i] {
				in[i] = s
				changed = true
			}
			o := s | loadBlocks[i]
			if o != out[i] {
				out[i] = o
				changed = true
			}
		}
	}
	res := allRegs
	for bi := h; bi <= latch; bi++ {
		for _, e := range g.blocks[bi].succs {
			if e.to < h || e.to > latch || e.kind == edgeBackedge {
				res &= out[bi-h]
			}
		}
	}
	return res
}

// elisionResult summarizes what the tier-1 pass did to a method.
type elisionResult struct {
	Sites   int // loads in the source method (the oracle's barrier sites)
	Emitted int // test/call pairs actually emitted (incl. hoisted headers)
	Elided  int // load sites whose pair was dropped by the plain dataflow
	Hoisted int // load sites covered by a hoisted header check instead
}

// expandBarriersAnalyzed is the tier-1 expansion: it decides per load site
// whether the barrier pair is needed, materializes hoisted header checks,
// and rewrites each block's ops.
func (g *cfg) expandBarriersAnalyzed() elisionResult {
	var res elisionResult

	// Pass 1: plain dataflow, to find which sites hoisting would newly cover.
	plain := g.elidableSites(g.checkedFixpoint(nil))

	// Choose hoists: one check pair per (loop header, register) that covers
	// at least one site the dataflow alone cannot elide.
	hoisted := make(map[int]regMask)
	for _, l := range g.findHoistableLoops() {
		for r := int32(0); r < 16; r++ {
			if l.candidates&bit(r) == 0 || hoisted[l.header]&bit(r) != 0 {
				continue
			}
			covers := 0
			for bi := l.header; bi <= l.latch; bi++ {
				for oi, op := range g.blocks[bi].ops {
					if op.Kind == OpLoadField && bit(op.C) == bit(r) && !plain[siteKey{bi, oi}] {
						covers++
					}
				}
			}
			if covers == 0 {
				continue
			}
			hoisted[l.header] |= bit(r)
		}
	}

	// Pass 2: final facts with the hoisted checks modelled, then rewrite.
	in := g.checkedFixpoint(hoisted)
	for bi, b := range g.blocks {
		s := in[bi]
		out := make([]Op, 0, len(b.ops)+len(b.ops)/4)
		for r := int32(0); r < 16; r++ {
			if hoisted[bi]&bit(r) != 0 {
				out = append(out,
					Op{Kind: opBarrierTest, C: r},
					Op{Kind: opBarrierCall, C: r})
				res.Emitted++
			}
		}
		for oi, op := range b.ops {
			if op.Kind == OpLoadField {
				res.Sites++
				if s&bit(op.C) != 0 {
					if plain[siteKey{bi, oi}] {
						res.Elided++
					} else {
						// Only reachable because a hoisted header check (or
						// a fact it lets flow past a loop) covers the site.
						res.Hoisted++
					}
				} else {
					out = append(out,
						Op{Kind: opBarrierTest, A: op.A, B: op.B, C: op.C},
						Op{Kind: opBarrierCall, A: op.A, B: op.B, C: op.C})
					res.Emitted++
				}
			}
			s = transfer(s, op)
			out = append(out, op)
		}
		b.ops = out
	}
	return res
}
