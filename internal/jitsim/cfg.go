package jitsim

// Control-flow graph construction. Branch offsets in the source IR are in
// source-op units; every later phase (barrier expansion, elision, local
// optimization, emission) changes op counts, so the compiler works on basic
// blocks with branch targets held as block indices and re-resolves concrete
// instruction offsets only at layout time.

// edgeKind distinguishes the safepoint-carrying backedge from ordinary
// edges: a taken backward branch is the VM's loop GC poll, so barrier facts
// die along it.
type edgeKind uint8

const (
	edgeFallthrough edgeKind = iota
	edgeForward              // taken forward branch: no safepoint
	edgeBackedge             // taken backward branch: safepoint, kills facts
)

type edge struct {
	to   int // successor block index; len(blocks) means method exit
	kind edgeKind
}

// block is one basic block: straight-line ops, terminated either by the
// method end, by the op before a leader, or by an OpBranch (which is the
// block's last op).
type block struct {
	ops   []Op
	succs []edge
	// branchTarget is the block index a terminating OpBranch jumps to
	// (len(blocks) = exit); -1 when the block does not end in a branch.
	branchTarget int
	// branchBack records whether that branch is backward (a safepoint edge).
	branchBack bool
}

// cfg is the block-structured method body.
type cfg struct {
	blocks []*block
}

// branchTargetIndex resolves the op-level target of a branch at index i:
// target = i - B, clamped into [0, len]; len means "branch off the end"
// (treated as method exit).
func branchTargetIndex(i int, op Op, n int) int {
	t := i - int(op.B)
	if t < 0 {
		t = 0
	}
	if t > n {
		t = n
	}
	return t
}

// buildCFG splits a method's linear ops into basic blocks.
func buildCFG(ops []Op) *cfg {
	n := len(ops)
	leader := make([]bool, n+1)
	leader[0] = true
	for i, op := range ops {
		if op.Kind == OpBranch {
			leader[branchTargetIndex(i, op, n)] = true
			if i+1 <= n {
				leader[i+1] = true
			}
		}
	}
	// Map op index -> block index.
	blockOf := make([]int, n+1)
	nb := 0
	for i := 0; i <= n; i++ {
		if i < n && leader[i] {
			nb++
		}
		blockOf[i] = nb - 1
	}
	blockOf[n] = nb // exit sentinel

	g := &cfg{blocks: make([]*block, nb)}
	for i := range g.blocks {
		g.blocks[i] = &block{branchTarget: -1}
	}
	bi := -1
	for i, op := range ops {
		if leader[i] {
			bi++
		}
		g.blocks[bi].ops = append(g.blocks[bi].ops, op)
		if op.Kind == OpBranch {
			b := g.blocks[bi]
			ti := branchTargetIndex(i, op, n)
			b.branchTarget = blockOf[ti]
			if ti == n {
				b.branchTarget = nb
			}
			b.branchBack = ti <= i
			kind := edgeForward
			if b.branchBack {
				kind = edgeBackedge
			}
			b.succs = append(b.succs, edge{to: b.branchTarget, kind: kind})
			// Fall-through on the not-taken path.
			b.succs = append(b.succs, edge{to: blockIndexAfter(blockOf, i, n, nb), kind: edgeFallthrough})
		}
	}
	// Non-branch block terminators fall through to the next block.
	for i, b := range g.blocks {
		if len(b.succs) == 0 {
			b.succs = append(b.succs, edge{to: i + 1, kind: edgeFallthrough})
		}
	}
	return g
}

// blockIndexAfter resolves the block that op index i+1 starts (exit when i
// is the last op).
func blockIndexAfter(blockOf []int, i, n, nb int) int {
	if i+1 >= n {
		return nb
	}
	return blockOf[i+1]
}

// flatten lays the blocks back out as linear IR, recomputing each
// terminating branch's op-level offset from the post-transformation block
// lengths. The returned branch ops carry their resolved absolute target in
// B as a *negative-relative* encoding identical to the source form:
// target = i - B.
func (g *cfg) flatten() []Op {
	starts := make([]int, len(g.blocks)+1)
	total := 0
	for i, b := range g.blocks {
		starts[i] = total
		total += len(b.ops)
	}
	starts[len(g.blocks)] = total

	out := make([]Op, 0, total)
	for bi, b := range g.blocks {
		base := starts[bi]
		for oi, op := range b.ops {
			if op.Kind == OpBranch && oi == len(b.ops)-1 && b.branchTarget >= 0 {
				i := base + oi
				op.B = int32(i - starts[b.branchTarget])
			}
			out = append(out, op)
		}
	}
	return out
}
