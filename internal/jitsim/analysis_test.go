package jitsim

import (
	"testing"

	"leakpruning/internal/obs"
)

// compileBoth compiles one method at tier 0 (the always-barrier oracle) and
// tier 1 (elision) with barriers on.
func compileBoth(t *testing.T, m *Method) (cm0, cm1 *CompiledMethod, st0, st1 CompileStats) {
	t.Helper()
	c := &Compiler{InsertReadBarriers: true}
	cm0, st0 = c.CompileTier(m, Tier0)
	cm1, st1 = c.CompileTier(m, Tier1)
	return
}

// assertTierEquivalence runs both tiers traced and enforces the full
// soundness contract: byte-identical machine results, every dereference
// covered by an in-interval check, identical per-safepoint dereference
// snapshots, and tier-1 dynamic barrier work at or below the oracle's.
func assertTierEquivalence(t *testing.T, name string, cm0, cm1 *CompiledMethod, reps int) (Result, Result) {
	t.Helper()
	r0, tr0 := cm0.RunTraced(reps)
	r1, tr1 := cm1.RunTraced(reps)
	if r0.Regs != r1.Regs {
		t.Fatalf("%s: tier-1 changed machine results:\n tier0 %v\n tier1 %v", name, r0.Regs, r1.Regs)
	}
	if tr0.Uncovered != 0 {
		t.Fatalf("%s: oracle left %d dereferences unchecked", name, tr0.Uncovered)
	}
	if tr1.Uncovered != 0 {
		t.Fatalf("%s: tier 1 let %d loads of possibly-stale references escape unchecked", name, tr1.Uncovered)
	}
	if len(tr0.Snapshots) != len(tr1.Snapshots) {
		t.Fatalf("%s: safepoint interval counts differ: %d vs %d", name, len(tr0.Snapshots), len(tr1.Snapshots))
	}
	for i := range tr0.Snapshots {
		if tr0.Snapshots[i] != tr1.Snapshots[i] {
			t.Fatalf("%s: checked-reference set diverged at safepoint %d:\n tier0 %q\n tier1 %q",
				name, i, tr0.Snapshots[i], tr1.Snapshots[i])
		}
	}
	if r1.BarrierHits > r0.BarrierHits {
		t.Fatalf("%s: tier-1 barrier hits %d exceed oracle's %d", name, r1.BarrierHits, r0.BarrierHits)
	}
	if r1.BarrierTests > r0.BarrierTests {
		t.Fatalf("%s: tier-1 executed %d barrier tests, oracle only %d", name, r1.BarrierTests, r0.BarrierTests)
	}
	return r0, r1
}

func shapeByName(t *testing.T, name string) *Method {
	t.Helper()
	for _, m := range ShapeCorpus() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("no shape %q", name)
	return nil
}

func TestShapeDiamond(t *testing.T) {
	m := shapeByName(t, "shape.diamond")
	cm0, cm1, st0, st1 := compileBoth(t, m)
	if st0.BarrierSites != 3 {
		t.Fatalf("oracle sites = %d, want 3", st0.BarrierSites)
	}
	// Both arms check r0, so the join's load needs no barrier.
	if st1.BarriersElided != 1 || st1.BarriersHoisted != 0 {
		t.Fatalf("diamond: elided=%d hoisted=%d, want 1/0", st1.BarriersElided, st1.BarriersHoisted)
	}
	if st1.BarrierSites != 2 {
		t.Fatalf("diamond: emitted pairs = %d, want 2 (one per arm)", st1.BarrierSites)
	}
	assertTierEquivalence(t, m.Name, cm0, cm1, 3)
}

func TestShapeOneArmed(t *testing.T) {
	m := shapeByName(t, "shape.onearmed")
	cm0, cm1, st0, st1 := compileBoth(t, m)
	if st0.BarrierSites != 2 {
		t.Fatalf("oracle sites = %d, want 2", st0.BarrierSites)
	}
	// Only one arm checks r0: the join's must-meet drops the fact.
	if st1.BarriersElided != 0 || st1.BarriersHoisted != 0 {
		t.Fatalf("one-armed: elided=%d hoisted=%d, want 0/0", st1.BarriersElided, st1.BarriersHoisted)
	}
	if st1.BarrierSites != 2 {
		t.Fatalf("one-armed: emitted pairs = %d, want 2", st1.BarrierSites)
	}
	assertTierEquivalence(t, m.Name, cm0, cm1, 3)
}

func TestShapeLoopInvariant(t *testing.T) {
	m := shapeByName(t, "shape.loopinv")
	cm0, cm1, st0, st1 := compileBoth(t, m)
	if st0.BarrierSites != 3 {
		t.Fatalf("oracle sites = %d, want 3", st0.BarrierSites)
	}
	// One hoisted header pair covers the whole loop; the second body site
	// and the post-loop site fall to the plain dataflow.
	if st1.BarriersHoisted != 1 || st1.BarriersElided != 2 {
		t.Fatalf("loopinv: elided=%d hoisted=%d, want 2/1", st1.BarriersElided, st1.BarriersHoisted)
	}
	if st1.BarrierSites != 1 {
		t.Fatalf("loopinv: emitted pairs = %d, want just the hoisted header pair", st1.BarrierSites)
	}
	r0, r1 := assertTierEquivalence(t, m.Name, cm0, cm1, 1)
	// The loop runs many iterations: the oracle tests twice per trip, the
	// hoisted check once — the dynamic saving must be visible.
	if r1.BarrierTests >= r0.BarrierTests {
		t.Fatalf("loopinv: hoisting saved no dynamic tests (%d vs %d)", r1.BarrierTests, r0.BarrierTests)
	}
	if r0.BarrierTests < 100 {
		t.Fatalf("loopinv: loop did not actually iterate (only %d oracle tests)", r0.BarrierTests)
	}
}

func TestShapeCallHeavy(t *testing.T) {
	m := shapeByName(t, "shape.callheavy")
	cm0, cm1, st0, st1 := compileBoth(t, m)
	if st0.BarrierSites != 3 {
		t.Fatalf("oracle sites = %d, want 3", st0.BarrierSites)
	}
	// The black allocation covers the first load; each call safepoint
	// kills the fact, so the remaining loads keep their barriers.
	if st1.BarriersElided != 1 || st1.BarriersHoisted != 0 {
		t.Fatalf("call-heavy: elided=%d hoisted=%d, want 1/0", st1.BarriersElided, st1.BarriersHoisted)
	}
	if st1.BarrierSites != 2 {
		t.Fatalf("call-heavy: emitted pairs = %d, want 2", st1.BarrierSites)
	}
	assertTierEquivalence(t, m.Name, cm0, cm1, 3)
}

// TestScheduleCostRecorded pins the satellite fix: scheduleCost's result
// reaches CompileStats, and barrier expansion (more IR) increases it.
func TestScheduleCostRecorded(t *testing.T) {
	corpus := Corpus("schedcost", 20, 200)
	plain := CompileCorpus("schedcost", &Compiler{}, corpus)
	barrier := CompileCorpus("schedcost", &Compiler{InsertReadBarriers: true}, corpus)
	if plain.ScheduleCost <= 0 {
		t.Fatal("ScheduleCost not recorded")
	}
	if barrier.ScheduleCost <= plain.ScheduleCost {
		t.Fatalf("barrier expansion must increase the modelled scheduling cost: %d vs %d",
			barrier.ScheduleCost, plain.ScheduleCost)
	}
}

// TestTierEquivalenceOnCorpus runs the full soundness contract over every
// generated corpus method and the hand-written shapes.
func TestTierEquivalenceOnCorpus(t *testing.T) {
	corpus := append(Corpus("equiv", 40, 200), ShapeCorpus()...)
	for _, m := range corpus {
		cm0, cm1, st0, st1 := compileBoth(t, m)
		if got := st1.BarriersElided + st1.BarriersHoisted; got > st0.BarrierSites {
			t.Fatalf("%s: elided+hoisted %d exceeds site count %d", m.Name, got, st0.BarrierSites)
		}
		if st1.BarrierSites > st0.BarrierSites {
			t.Fatalf("%s: tier 1 emitted more pairs (%d) than the oracle (%d)",
				m.Name, st1.BarrierSites, st0.BarrierSites)
		}
		assertTierEquivalence(t, m.Name, cm0, cm1, 2)
	}
}

// TestCorpusElisionCriterion pins the PR's acceptance bar: on the
// benchmark corpus, tier 1 elides at least 30% of barrier sites on at
// least half the methods.
func TestCorpusElisionCriterion(t *testing.T) {
	corpus := Corpus("antlr", 100, 300)
	c := &Compiler{InsertReadBarriers: true}
	meets := 0
	for _, m := range corpus {
		_, st := c.CompileTier(m, Tier1)
		sites := m.NumLoads()
		if sites == 0 {
			continue
		}
		if float64(st.BarriersElided+st.BarriersHoisted)/float64(sites) >= 0.30 {
			meets++
		}
	}
	if meets*2 < len(corpus) {
		t.Fatalf("only %d/%d methods reach 30%% elision", meets, len(corpus))
	}
}

// TestTieredReplay exercises the hot-method recompilation controller.
func TestTieredReplay(t *testing.T) {
	o := obs.New()
	c := &Compiler{InsertReadBarriers: true, HotThreshold: 2, Obs: o}
	corpus := Corpus("tiered", 30, 200)
	res := Replay(c, corpus, 3)
	if res.Tier1Methods == 0 {
		t.Fatal("no methods were recompiled at tier 1")
	}
	if res.BarriersElided+res.BarriersHoisted == 0 {
		t.Fatal("tier-1 recompilation elided nothing")
	}
	if res.ElisionRatio <= 0 || res.ElisionRatio > 1 {
		t.Fatalf("elision ratio %f out of range", res.ElisionRatio)
	}
	if res.RecompileTime <= 0 || res.RecompileTime > res.CompileTime {
		t.Fatalf("recompile time %v inconsistent with total %v", res.RecompileTime, res.CompileTime)
	}
	if res.DynTestsTier1 >= res.DynTestsTier0 {
		t.Fatalf("tier-1 code must execute fewer barrier tests: %d vs %d",
			res.DynTestsTier1, res.DynTestsTier0)
	}
	if res.ModelledCyclesSaved <= 0 {
		t.Fatal("no modelled cycles saved")
	}
	// Obs wiring: both counters must have fired.
	reg := o.Registry()
	if n := reg.NewCounter("lp_jit_recompiles_total", "").Load(); int(n) != res.Tier1Methods {
		t.Fatalf("lp_jit_recompiles_total = %d, want %d", n, res.Tier1Methods)
	}
	if n := reg.NewCounter("lp_jit_elided_total", "").Load(); int(n) != res.BarriersElided+res.BarriersHoisted {
		t.Fatalf("lp_jit_elided_total = %d, want %d", n, res.BarriersElided+res.BarriersHoisted)
	}
}

// TestReplayUntieredUnchanged: without a hot threshold the controller
// stays out of the way (the legacy replay methodology).
func TestReplayUntieredUnchanged(t *testing.T) {
	c := &Compiler{InsertReadBarriers: true}
	res := Replay(c, Corpus("untiered", 10, 100), 3)
	if res.Tier1Methods != 0 || res.RecompileTime != 0 || res.ElisionRatio != 0 {
		t.Fatalf("tiering ran without a threshold: %+v", res)
	}
	if res.DynTestsTier1 != res.DynTestsTier0 {
		t.Fatalf("iterations diverged without recompilation: %d vs %d",
			res.DynTestsTier1, res.DynTestsTier0)
	}
}
