package jitsim

import (
	"fmt"
	"testing"
)

// decodeMethod turns fuzz bytes into a bounded method: each 4-byte chunk
// is one op (kind, A, B-as-signed-byte, C), capped at 96 ops. Branch
// offsets are small signed values, so the decoder reaches backward loops,
// forward diamonds, self-branches, and degenerate clamped targets.
func decodeMethod(data []byte) *Method {
	m := &Method{Name: "fuzz"}
	for i := 0; i+4 <= len(data) && len(m.Ops) < 96; i += 4 {
		k := OpKind(data[i] % 7)
		op := Op{
			Kind: k,
			A:    int32(data[i+1] & 15),
			B:    int32(int8(data[i+2])),
			C:    int32(data[i+3] & 15),
		}
		if k == OpAlloc {
			op.B = op.B&7 + 1
		}
		m.Ops = append(m.Ops, op)
	}
	return m
}

// FuzzElision is the adversarial twin of the shape tests: for arbitrary
// methods, tier-1 compilation must preserve execution byte-for-byte
// against the always-barrier oracle, never let a dereference escape its
// safepoint interval unchecked, and never do more barrier work than the
// oracle — statically (emitted pairs) or dynamically (tests and hits).
func FuzzElision(f *testing.F) {
	// Seed with the four analysis shapes plus a burst-heavy generated
	// method, encoded through the same decoder the fuzzer uses.
	encode := func(m *Method) []byte {
		var out []byte
		for _, op := range m.Ops {
			b := op.B
			if b > 127 {
				b = 127
			}
			if b < -128 {
				b = -128
			}
			out = append(out, byte(op.Kind), byte(op.A&15), byte(int8(b)), byte(op.C&15))
		}
		return out
	}
	for _, m := range ShapeCorpus() {
		f.Add(encode(m))
	}
	f.Add(encode(Corpus("fuzzseed", 1, 60)[0]))

	f.Fuzz(func(t *testing.T, data []byte) {
		m := decodeMethod(data)
		if len(m.Ops) == 0 {
			return
		}
		c := &Compiler{InsertReadBarriers: true}
		cm0, st0 := c.CompileTier(m, Tier0)
		cm1, st1 := c.CompileTier(m, Tier1)

		if st0.BarrierSites != m.NumLoads() {
			t.Fatalf("oracle emitted %d pairs for %d loads", st0.BarrierSites, m.NumLoads())
		}
		if got := st1.BarriersElided + st1.BarriersHoisted; got > st0.BarrierSites {
			t.Fatalf("elided+hoisted %d > site count %d", got, st0.BarrierSites)
		}
		if st1.BarrierSites > st0.BarrierSites {
			t.Fatalf("tier 1 emitted %d pairs, oracle %d", st1.BarrierSites, st0.BarrierSites)
		}

		r0, tr0 := cm0.RunTraced(2)
		r1, tr1 := cm1.RunTraced(2)
		if r0.Regs != r1.Regs {
			t.Fatalf("execution diverged:\n ops   %v\n tier0 %v\n tier1 %v", dumpOps(m), r0.Regs, r1.Regs)
		}
		if tr1.Uncovered != 0 {
			t.Fatalf("tier 1 left %d dereferences unchecked:\n %v", tr1.Uncovered, dumpOps(m))
		}
		if tr0.Uncovered != 0 {
			t.Fatalf("oracle left %d dereferences unchecked (harness bug)", tr0.Uncovered)
		}
		if len(tr0.Snapshots) != len(tr1.Snapshots) {
			t.Fatalf("interval counts differ: %d vs %d", len(tr0.Snapshots), len(tr1.Snapshots))
		}
		for i := range tr0.Snapshots {
			if tr0.Snapshots[i] != tr1.Snapshots[i] {
				t.Fatalf("checked set diverged at safepoint %d: %q vs %q:\n %v",
					i, tr0.Snapshots[i], tr1.Snapshots[i], dumpOps(m))
			}
		}
		if r1.BarrierTests > r0.BarrierTests || r1.BarrierHits > r0.BarrierHits {
			t.Fatalf("tier 1 did more barrier work: tests %d/%d hits %d/%d:\n %v",
				r1.BarrierTests, r0.BarrierTests, r1.BarrierHits, r0.BarrierHits, dumpOps(m))
		}
	})
}

func dumpOps(m *Method) string {
	s := ""
	for i, op := range m.Ops {
		s += fmt.Sprintf("%3d: %s A=%d B=%d C=%d\n", i, op.Kind, op.A, op.B, op.C)
	}
	return s
}
