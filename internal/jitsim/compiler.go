package jitsim

import (
	"time"

	"leakpruning/internal/obs"
)

// instr is one lowered instruction: a small closure over the machine state.
type instr func(*machine)

// Tier is a compilation tier. Tier 0 is the cheap always-barrier compile;
// tier 1 pays for the access-graph dataflow and elides or hoists barriers
// that are provably redundant.
type Tier int

const (
	// Tier0 expands every reference load into the full barrier sequence.
	Tier0 Tier = iota
	// Tier1 runs the checked-on-all-paths analysis and emits only the
	// barrier pairs the dataflow cannot prove redundant.
	Tier1
)

func (t Tier) String() string {
	if t == Tier1 {
		return "tier1"
	}
	return "tier0"
}

// CompiledMethod is the compiler's output.
type CompiledMethod struct {
	Name string
	// Tier records which pipeline produced the code.
	Tier Tier
	// IRSize is the post-expansion, post-optimization IR length.
	IRSize int
	// CodeBytes is the modelled machine-code size (instruction count times
	// an average encoding width; barrier tests encode short, calls long).
	CodeBytes int
	code      []instr
}

// CompileStats reports one compilation's cost, the quantities Figure 6's
// accompanying text measures, plus the tier-1 elision outcome.
type CompileStats struct {
	Method    string
	Tier      Tier
	Duration  time.Duration
	IRSizeIn  int // ops before expansion
	IRSizeOut int // ops after barrier expansion + optimization
	CodeBytes int
	// BarrierSites is the number of barrier test/call pairs emitted
	// (at tier 1 this includes hoisted header pairs).
	BarrierSites int
	// BarriersElided counts load sites whose pair the dataflow dropped.
	BarriersElided int
	// BarriersHoisted counts load sites covered by a hoisted header check.
	BarriersHoisted int
	// ScheduleCost is the modelled cost of the downstream scheduling pass —
	// the dependence count its quadratic window scan found. Barrier
	// expansion bloats the IR and therefore this number; elision claws it
	// back.
	ScheduleCost int
}

// Compiler lowers methods. The zero value compiles without barriers.
type Compiler struct {
	// InsertReadBarriers expands reference loads into the conditional
	// barrier sequence: the inline test plus the out-of-line call, as the
	// paper's compilers do ("the compilers insert only the conditional
	// test and a method call for the barrier's body", §5).
	InsertReadBarriers bool
	// ElideBarriers makes Compile use the tier-1 pipeline directly
	// (analysis + elision). Only meaningful with InsertReadBarriers.
	ElideBarriers bool
	// HotThreshold, when positive, enables the tiered controller in
	// Replay: methods whose execution count reaches the threshold are
	// recompiled at tier 1.
	HotThreshold int
	// Obs, when non-nil, feeds lp_jit_elided_total and
	// lp_jit_recompiles_total.
	Obs *obs.Obs
}

// Compile lowers one method at the compiler's default tier: tier 1 when
// ElideBarriers is set, tier 0 otherwise.
func (c *Compiler) Compile(m *Method) (*CompiledMethod, CompileStats) {
	tier := Tier0
	if c.InsertReadBarriers && c.ElideBarriers {
		tier = Tier1
	}
	return c.CompileTier(m, tier)
}

// CompileTier lowers one method at an explicit tier: barrier expansion
// (full at tier 0, analyzed at tier 1), then the optimization passes
// (whose cost scales with IR size — that is where barrier bloat turns into
// compile-time overhead), then code emission.
func (c *Compiler) CompileTier(m *Method, tier Tier) (*CompiledMethod, CompileStats) {
	start := time.Now()
	stats := CompileStats{Method: m.Name, Tier: tier, IRSizeIn: len(m.Ops)}

	g := buildCFG(m.Ops)
	if c.InsertReadBarriers {
		if tier >= Tier1 {
			res := g.expandBarriersAnalyzed()
			stats.BarrierSites = res.Emitted
			stats.BarriersElided = res.Elided
			stats.BarriersHoisted = res.Hoisted
			if reg := c.Obs.Registry(); reg != nil {
				reg.NewCounter("lp_jit_elided_total",
					"barrier sites statically removed by tier-1 elision/hoisting").
					Add(uint64(res.Elided + res.Hoisted))
			}
		} else {
			stats.BarrierSites = g.expandBarriersAll()
		}
	}
	// Local optimizations run per block: they change op counts, and branch
	// offsets are re-resolved from block lengths at flatten time.
	for _, b := range g.blocks {
		b.ops = eliminateDeadConsts(simplify(b.ops))
	}
	flat := g.flatten()
	// Modelled downstream pass over the (possibly bloated) IR.
	stats.ScheduleCost = scheduleCost(flat)

	cm := emit(m.Name, flat)
	cm.Tier = tier
	stats.Duration = time.Since(start)
	stats.IRSizeOut = len(flat)
	stats.CodeBytes = cm.CodeBytes
	return cm, stats
}

// expandBarriersAll is the tier-0 expansion: every reference load gets the
// test + out-of-line call pair. Returns the site count.
func (g *cfg) expandBarriersAll() int {
	sites := 0
	for _, b := range g.blocks {
		out := make([]Op, 0, len(b.ops)+len(b.ops)/4)
		for _, op := range b.ops {
			if op.Kind == OpLoadField {
				out = append(out,
					Op{Kind: opBarrierTest, A: op.A, B: op.B, C: op.C},
					Op{Kind: opBarrierCall, A: op.A, B: op.B, C: op.C})
				sites++
			}
			out = append(out, op)
		}
		b.ops = out
	}
	return sites
}

// simplify folds adjacent constant/arith pairs — a stand-in for the local
// optimizations whose work grows with IR length. Barrier pseudo-ops are
// only ever inserted before loads, so the foldable adjacencies are
// identical at every tier and folding never changes cross-tier
// equivalence.
func simplify(ir []Op) []Op {
	out := ir[:0:len(ir)]
	for i := 0; i < len(ir); i++ {
		if i+1 < len(ir) && ir[i].Kind == OpConst && ir[i+1].Kind == OpArith && ir[i].A == ir[i+1].A {
			// Fold const k; arith b into const k*31+b (the machine's arith
			// semantics), but only when the result fits the immediate.
			v := int64(ir[i].B)*31 + int64(ir[i+1].B)
			if int64(int32(v)) == v {
				out = append(out, Op{Kind: OpConst, A: ir[i].A, B: int32(v)})
				i++
				continue
			}
		}
		out = append(out, ir[i])
	}
	return out
}

// eliminateDeadConsts removes constants immediately overwritten by another
// constant to the same register.
func eliminateDeadConsts(ir []Op) []Op {
	out := ir[:0:len(ir)]
	for i := 0; i < len(ir); i++ {
		if i+1 < len(ir) && ir[i].Kind == OpConst && ir[i+1].Kind == OpConst && ir[i].A == ir[i+1].A {
			continue
		}
		out = append(out, ir[i])
	}
	return out
}

// scheduleCost models an instruction-scheduling pass: a quadratic-in-window
// dependence scan, the kind of downstream optimization whose cost the
// barrier-bloated IR inflates.
func scheduleCost(ir []Op) int {
	const window = 16
	deps := 0
	for i := range ir {
		hi := i + window
		if hi > len(ir) {
			hi = len(ir)
		}
		for j := i + 1; j < hi; j++ {
			if ir[i].A == ir[j].A || ir[i].A == ir[j].B {
				deps++
			}
		}
	}
	return deps
}

// encoding widths (modelled bytes per instruction kind).
func codeWidth(k OpKind) int {
	switch k {
	case opBarrierTest:
		return 2 // short test-and-branch
	case opBarrierCall:
		return 5 // call to the out-of-line body
	case OpCall:
		return 8
	case OpAlloc:
		return 12
	default:
		return 5
	}
}

// emit lowers the flattened IR to executable closures and models code
// size. Branch ops arrive with offsets already re-resolved against the
// final layout.
func emit(name string, flat []Op) *CompiledMethod {
	code := make([]instr, len(flat))
	bytes := 0
	for i, op := range flat {
		bytes += codeWidth(op.Kind)
		code[i] = lower(op, i)
	}
	return &CompiledMethod{Name: name, IRSize: len(flat), CodeBytes: bytes, code: code}
}
