package jitsim

import "time"

// instr is one lowered instruction: a small closure over the machine state.
type instr func(*machine)

// CompiledMethod is the compiler's output.
type CompiledMethod struct {
	Name string
	// IRSize is the post-expansion, post-optimization IR length.
	IRSize int
	// CodeBytes is the modelled machine-code size (instruction count times
	// an average encoding width; barrier tests encode short, calls long).
	CodeBytes int
	code      []instr
}

// CompileStats reports one compilation's cost, the quantities Figure 6's
// accompanying text measures.
type CompileStats struct {
	Method       string
	Duration     time.Duration
	IRSizeIn     int // ops before expansion
	IRSizeOut    int // ops after barrier expansion + optimization
	CodeBytes    int
	BarrierSites int
}

// Compiler lowers methods. The zero value compiles without barriers.
type Compiler struct {
	// InsertReadBarriers expands every OpLoadField into the conditional
	// barrier sequence: the inline test plus the out-of-line call, as the
	// paper's compilers do ("the compilers insert only the conditional
	// test and a method call for the barrier's body", §5).
	InsertReadBarriers bool
}

// Compile lowers one method: barrier expansion, then the optimization
// passes (whose cost scales with IR size — that is where barrier bloat
// turns into compile-time overhead), then code emission.
func (c *Compiler) Compile(m *Method) (*CompiledMethod, CompileStats) {
	start := time.Now()
	ir := append([]Op(nil), m.Ops...)
	barrierSites := 0
	if c.InsertReadBarriers {
		ir, barrierSites = expandBarriers(ir)
	}
	ir = simplify(ir)
	ir = eliminateDeadConsts(ir)
	scheduleCost(ir) // modelled downstream pass over the (possibly bloated) IR

	cm := emit(m.Name, ir)
	stats := CompileStats{
		Method:       m.Name,
		Duration:     time.Since(start),
		IRSizeIn:     len(m.Ops),
		IRSizeOut:    len(ir),
		CodeBytes:    cm.CodeBytes,
		BarrierSites: barrierSites,
	}
	return cm, stats
}

// expandBarriers rewrites each reference load into test + out-of-line call
// + the load itself.
func expandBarriers(ir []Op) ([]Op, int) {
	out := make([]Op, 0, len(ir)+len(ir)/4)
	sites := 0
	for _, op := range ir {
		if op.Kind == OpLoadField {
			out = append(out,
				Op{Kind: opBarrierTest, A: op.A, B: op.B},
				Op{Kind: opBarrierCall, A: op.A, B: op.B},
			)
			sites++
		}
		out = append(out, op)
	}
	return out, sites
}

// simplify folds adjacent constant/arith pairs — a stand-in for the local
// optimizations whose work grows with IR length.
func simplify(ir []Op) []Op {
	out := ir[:0:len(ir)]
	for i := 0; i < len(ir); i++ {
		if i+1 < len(ir) && ir[i].Kind == OpConst && ir[i+1].Kind == OpArith && ir[i].A == ir[i+1].A {
			// Fold const k; arith b into const k*31+b (the machine's arith
			// semantics), but only when the result fits the immediate.
			v := int64(ir[i].B)*31 + int64(ir[i+1].B)
			if int64(int32(v)) == v {
				out = append(out, Op{Kind: OpConst, A: ir[i].A, B: int32(v)})
				i++
				continue
			}
		}
		out = append(out, ir[i])
	}
	return out
}

// eliminateDeadConsts removes constants immediately overwritten by another
// constant to the same register.
func eliminateDeadConsts(ir []Op) []Op {
	out := ir[:0:len(ir)]
	for i := 0; i < len(ir); i++ {
		if i+1 < len(ir) && ir[i].Kind == OpConst && ir[i+1].Kind == OpConst && ir[i].A == ir[i+1].A {
			continue
		}
		out = append(out, ir[i])
	}
	return out
}

// scheduleCost models an instruction-scheduling pass: a quadratic-in-window
// dependence scan, the kind of downstream optimization whose cost the
// barrier-bloated IR inflates.
func scheduleCost(ir []Op) int {
	const window = 16
	deps := 0
	for i := range ir {
		hi := i + window
		if hi > len(ir) {
			hi = len(ir)
		}
		for j := i + 1; j < hi; j++ {
			if ir[i].A == ir[j].A || ir[i].A == ir[j].B {
				deps++
			}
		}
	}
	return deps
}

// encoding widths (modelled bytes per instruction kind).
func codeWidth(k OpKind) int {
	switch k {
	case opBarrierTest:
		return 2 // short test-and-branch
	case opBarrierCall:
		return 5 // call to the out-of-line body
	case OpCall:
		return 8
	case OpAlloc:
		return 12
	default:
		return 5
	}
}

// emit lowers the IR to executable closures and models code size.
func emit(name string, ir []Op) *CompiledMethod {
	code := make([]instr, 0, len(ir))
	bytes := 0
	for _, op := range ir {
		bytes += codeWidth(op.Kind)
		code = append(code, lower(op))
	}
	return &CompiledMethod{Name: name, IRSize: len(ir), CodeBytes: bytes, code: code}
}
