package jitsim

import "time"

// Replay implements the paper's replay-compilation methodology (§5): to
// make timer-based compilation decisions deterministic, the first iteration
// runs with compilation included, and the second iteration — executing only
// already-compiled code — is the one reported as steady-state application
// behaviour. On top of it sits the tiered controller: everything compiles
// at tier 0 (always-barrier, cheap) for the first iteration; methods whose
// execution count reaches the compiler's HotThreshold are recompiled at
// tier 1 (barrier elision) before the second iteration, exactly when a
// real adaptive JIT would spend optimization budget.

// ReplayResult reports the two iterations' costs and the tiering outcome.
type ReplayResult struct {
	// CompileTime is the total compilation cost, tier-0 and tier-1 both.
	CompileTime time.Duration
	// FirstIteration includes tier-0 compilation plus one execution pass.
	FirstIteration time.Duration
	// SecondIteration executes the compiled code only — the steady state
	// the paper's run-time overhead numbers are measured on.
	SecondIteration time.Duration
	// BarrierSites is the number of read-barrier expansions in the tier-0
	// code (= the oracle's site count).
	BarrierSites int

	// Tiering results (populated when the compiler's HotThreshold > 0).

	// Tier1Methods is how many hot methods were recompiled at tier 1.
	Tier1Methods int
	// RecompileTime is the tier-1 share of CompileTime.
	RecompileTime time.Duration
	// BarriersElided / BarriersHoisted are summed over tier-1 compiles.
	BarriersElided  int
	BarriersHoisted int
	// ElisionRatio is (elided+hoisted) / source load sites across the
	// recompiled methods.
	ElisionRatio float64
	// DynTestsTier0 / DynTestsTier1 count dynamic barrier tests executed
	// during the first (all tier-0) and second (hot methods at tier 1)
	// iterations.
	DynTestsTier0 int64
	DynTestsTier1 int64
	// ModelledCyclesSaved is the dynamic-test delta times the modelled
	// inline-test cost.
	ModelledCyclesSaved int64
}

// TestCostCycles is the modelled cost of one inline barrier test
// (test + untaken branch) in cycles; exported so benchmark reports can
// label the cycles-saved numbers with the model they used.
const TestCostCycles = 3

// Replay compiles the corpus at tier 0, executes every method `reps` times
// per iteration, recompiles hot methods at tier 1 when the compiler has a
// HotThreshold, and reports both iterations.
func Replay(c *Compiler, corpus []*Method, reps int) ReplayResult {
	var res ReplayResult
	start := time.Now()
	compiled := make([]*CompiledMethod, 0, len(corpus))
	sites := make([]int, len(corpus))
	for i, m := range corpus {
		cm, st := c.CompileTier(m, Tier0)
		res.CompileTime += st.Duration
		res.BarrierSites += st.BarrierSites
		sites[i] = st.BarrierSites
		compiled = append(compiled, cm)
	}
	for _, cm := range compiled {
		r := cm.Run(reps)
		res.DynTestsTier0 += r.BarrierTests
	}
	res.FirstIteration = time.Since(start)

	// Tiered recompilation: every method just executed `reps` times; the
	// ones at or over the threshold (with any barrier work to remove) get
	// the tier-1 pipeline.
	if c.HotThreshold > 0 && reps >= c.HotThreshold {
		srcSites := 0
		for i, m := range corpus {
			if sites[i] == 0 {
				continue
			}
			cm, st := c.CompileTier(m, Tier1)
			res.CompileTime += st.Duration
			res.RecompileTime += st.Duration
			res.Tier1Methods++
			res.BarriersElided += st.BarriersElided
			res.BarriersHoisted += st.BarriersHoisted
			srcSites += sites[i]
			compiled[i] = cm
			if reg := c.Obs.Registry(); reg != nil {
				reg.NewCounter("lp_jit_recompiles_total",
					"hot methods recompiled at tier 1").Inc()
			}
		}
		if srcSites > 0 {
			res.ElisionRatio = float64(res.BarriersElided+res.BarriersHoisted) / float64(srcSites)
		}
	}

	second := time.Now()
	for _, cm := range compiled {
		r := cm.Run(reps)
		res.DynTestsTier1 += r.BarrierTests
	}
	res.SecondIteration = time.Since(second)
	res.ModelledCyclesSaved = (res.DynTestsTier0 - res.DynTestsTier1) * TestCostCycles
	return res
}
