package jitsim

import "time"

// Replay implements the paper's replay-compilation methodology (§5): to
// make timer-based compilation decisions deterministic, the first iteration
// runs with compilation included, and the second iteration — executing only
// already-compiled code — is the one reported as steady-state application
// behaviour.

// ReplayResult reports the two iterations' costs.
type ReplayResult struct {
	// CompileTime is the total compilation cost (incurred in iteration 1).
	CompileTime time.Duration
	// FirstIteration includes compilation plus one execution pass.
	FirstIteration time.Duration
	// SecondIteration executes the compiled code only — the steady state
	// the paper's run-time overhead numbers are measured on.
	SecondIteration time.Duration
	// BarrierSites is the number of read-barrier expansions compiled in.
	BarrierSites int
}

// Replay compiles the corpus once and executes every method `reps` times in
// each of the two iterations.
func Replay(c *Compiler, corpus []*Method, reps int) ReplayResult {
	var res ReplayResult
	start := time.Now()
	compiled := make([]*CompiledMethod, 0, len(corpus))
	for _, m := range corpus {
		cm, st := c.Compile(m)
		res.CompileTime += st.Duration
		res.BarrierSites += st.BarrierSites
		compiled = append(compiled, cm)
	}
	runAll := func() {
		for _, cm := range compiled {
			cm.Run(reps)
		}
	}
	runAll()
	res.FirstIteration = time.Since(start)

	second := time.Now()
	runAll()
	res.SecondIteration = time.Since(second)
	return res
}
