package jitsim

import (
	"fmt"
	"sort"
	"strings"
)

// machine is the tiny register machine compiled code runs on. Its heap is a
// flat object pool (this package measures compilation, not collection — the
// real heap lives in internal/heap). Execution is pc-driven so branches are
// real control flow; interpreter fuel bounds taken backward branches, and
// because barrier pseudo-ops never touch registers, tier-0 and tier-1 code
// follow identical paths and consume identical fuel.
type machine struct {
	regs     [16]int64
	objects  [][]int64
	pc       int
	fuel     int
	tests    int64 // barrier tests executed
	barrier  int64 // barrier test-hit counter (tested word had the stale bit)
	coldWork int64 // modelled out-of-line barrier work
	trace    *traceState
}

// Result of executing a compiled method.
type Result struct {
	Regs        [16]int64
	BarrierHits int64
	// BarrierTests counts dynamic barrier-test executions; elision's win is
	// the oracle's count minus the tier-1 count.
	BarrierTests int64
}

// Trace is the checked-reference audit trail of an instrumented run: one
// canonical snapshot of the distinct base references dereferenced in each
// safepoint interval, plus the count of dereferences that were not covered
// by a barrier check (or black allocation) earlier in the same interval.
// Soundness demands Uncovered == 0 at every tier; equivalence demands
// tier-0 and tier-1 snapshots be identical.
type Trace struct {
	Snapshots []string
	Uncovered int64
}

// traceState is the per-run working state behind a Trace.
type traceState struct {
	checked map[int64]struct{} // references checked this interval
	derefed map[int64]struct{} // references dereferenced this interval
	out     *Trace
}

func newTraceState() *traceState {
	return &traceState{
		checked: make(map[int64]struct{}),
		derefed: make(map[int64]struct{}),
		out:     &Trace{},
	}
}

// check records a barrier test (or black allocation) of ref.
func (t *traceState) check(ref int64) {
	if t == nil {
		return
	}
	t.checked[ref] = struct{}{}
}

// deref records a load through ref and flags it if unchecked this interval.
func (t *traceState) deref(ref int64) {
	if t == nil {
		return
	}
	if _, ok := t.checked[ref]; !ok {
		t.out.Uncovered++
	}
	t.derefed[ref] = struct{}{}
}

// safepoint closes the current interval: snapshot the dereferenced set and
// clear both sets (references may go stale across this point).
func (t *traceState) safepoint() {
	if t == nil {
		return
	}
	vals := make([]int64, 0, len(t.derefed))
	for v := range t.derefed {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var sb strings.Builder
	for i, v := range vals {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	t.out.Snapshots = append(t.out.Snapshots, sb.String())
	t.checked = make(map[int64]struct{})
	t.derefed = make(map[int64]struct{})
}

// lower turns one IR op at absolute pc i into a closure. Branch targets
// arrive pre-resolved by flatten (target = i - B).
func lower(op Op, i int) instr {
	a, b, c := int(op.A)&15, op.B, int(op.C)&15
	switch op.Kind {
	case OpConst:
		return func(m *machine) { m.regs[a] = int64(b) }
	case OpArith:
		return func(m *machine) { m.regs[a] = m.regs[a]*31 + int64(b) }
	case OpAlloc:
		n := int(b)
		if n < 1 {
			n = 1
		}
		return func(m *machine) {
			m.trace.safepoint() // allocation is a GC point
			m.objects = append(m.objects, make([]int64, n))
			m.regs[a] = int64(len(m.objects) - 1)
			m.trace.check(m.regs[a]) // black-allocated: checked by construction
		}
	case OpLoadField:
		return func(m *machine) {
			m.trace.deref(m.regs[c])
			if o := m.obj(m.regs[c]); o != nil {
				m.regs[a] = o[fieldIndex(b, len(o))]
			}
		}
	case OpStoreField:
		return func(m *machine) {
			if o := m.obj(m.regs[a]); o != nil {
				o[fieldIndex(b, len(o))] = m.regs[c]
			}
		}
	case OpBranch:
		target := i - int(op.B)
		if target < 0 {
			target = 0
		}
		back := target <= i
		return func(m *machine) {
			if m.regs[a] == 0 {
				return
			}
			if back {
				if m.fuel <= 0 {
					return // out of fuel: fall through, loop terminates
				}
				m.fuel--
				m.trace.safepoint() // loop backedge is a GC poll
			}
			m.pc = target
		}
	case OpCall:
		return func(m *machine) {
			m.trace.safepoint() // calls are safepoints
			m.regs[a] ^= int64(b)
		}
	case opBarrierTest:
		return func(m *machine) {
			m.tests++
			if m.regs[c]&1 != 0 {
				m.barrier++
			}
			m.trace.check(m.regs[c])
		}
	case opBarrierCall:
		// The barrier body is semantically transparent to the program: it
		// only maintains runtime metadata. Model its cost without touching
		// program state.
		return func(m *machine) { m.coldWork++ }
	}
	return func(m *machine) {}
}

// fieldIndex wraps a (possibly negative) field immediate into the object.
func fieldIndex(b int32, n int) int {
	i := int(b) % n
	if i < 0 {
		i += n
	}
	return i
}

func (m *machine) obj(r int64) []int64 {
	if r < 0 || int(r) >= len(m.objects) {
		return nil
	}
	return m.objects[int(r)]
}

// defaultFuel bounds taken backward branches per run. It is deliberately
// modest: loop trip counts don't change what the static analysis proves,
// and both tiers consume fuel identically (barrier pseudo-ops never touch
// registers or fuel), so a bounded run is still a faithful equivalence
// witness.
const defaultFuel = 1 << 12

// Run executes the compiled method `reps` times and returns the final
// machine state.
func (cm *CompiledMethod) Run(reps int) Result {
	res, _ := cm.run(reps, defaultFuel, nil)
	return res
}

// RunTraced executes like Run but audits the checked-reference invariant,
// returning the per-safepoint-interval trace alongside the result.
func (cm *CompiledMethod) RunTraced(reps int) (Result, *Trace) {
	ts := newTraceState()
	res, _ := cm.run(reps, defaultFuel, ts)
	return res, ts.out
}

func (cm *CompiledMethod) run(reps, fuel int, ts *traceState) (Result, int) {
	m := &machine{fuel: fuel, trace: ts}
	for r := 0; r < reps && m.fuel > 0; r++ {
		// Each invocation enters through a call safepoint: no barrier fact
		// survives from the previous invocation, matching the analysis's
		// empty entry state.
		m.trace.safepoint()
		m.pc = 0
		for m.pc < len(cm.code) {
			i := m.pc
			m.pc++
			cm.code[i](m)
		}
	}
	m.trace.safepoint() // method exit closes the last interval
	return Result{Regs: m.regs, BarrierHits: m.barrier, BarrierTests: m.tests}, m.fuel
}
