package jitsim

// machine is the tiny register machine compiled code runs on. Its heap is a
// flat object pool (this package measures compilation, not collection — the
// real heap lives in internal/heap).
type machine struct {
	regs     [16]int64
	objects  [][]int64
	fuel     int
	barrier  int64 // barrier test-hit counter
	coldWork int64 // modelled out-of-line barrier work
}

// Result of executing a compiled method.
type Result struct {
	Regs        [16]int64
	BarrierHits int64
}

// lower turns one IR op into a closure.
func lower(op Op) instr {
	a, b := int(op.A)&15, op.B
	switch op.Kind {
	case OpConst:
		return func(m *machine) { m.regs[a] = int64(b) }
	case OpArith:
		return func(m *machine) { m.regs[a] = m.regs[a]*31 + int64(b) }
	case OpAlloc:
		n := int(b)
		if n < 1 {
			n = 1
		}
		return func(m *machine) {
			m.objects = append(m.objects, make([]int64, n))
			m.regs[a] = int64(len(m.objects) - 1)
		}
	case OpLoadField:
		return func(m *machine) {
			if o := m.obj(m.regs[a]); o != nil {
				m.regs[a] = o[int(b)%len(o)]
			}
		}
	case OpStoreField:
		return func(m *machine) {
			if o := m.obj(m.regs[a]); o != nil {
				o[int(b)%len(o)] = m.regs[a]
			}
		}
	case OpBranch:
		return func(m *machine) { m.fuel-- }
	case OpCall:
		return func(m *machine) { m.regs[a] ^= int64(b) }
	case opBarrierTest:
		return func(m *machine) {
			if m.regs[a]&1 != 0 {
				m.barrier++
			}
		}
	case opBarrierCall:
		// The barrier body is semantically transparent to the program: it
		// only maintains runtime metadata. Model its cost without touching
		// program state.
		return func(m *machine) { m.coldWork++ }
	}
	return func(m *machine) {}
}

func (m *machine) obj(r int64) []int64 {
	if r < 0 || int(r) >= len(m.objects) {
		return nil
	}
	return m.objects[int(r)]
}

// Run executes the compiled method `reps` times and returns the final
// machine state.
func (cm *CompiledMethod) Run(reps int) Result {
	m := &machine{fuel: 1 << 20}
	for r := 0; r < reps && m.fuel > 0; r++ {
		for _, in := range cm.code {
			in(m)
		}
	}
	return Result{Regs: m.regs, BarrierHits: m.barrier}
}
