// Package jitsim models the adaptive compiler side of §5: a small method IR,
// a compiler that optionally expands reference loads into read-barrier
// sequences, and an interpreter to execute the compiled code. The paper
// reports that inserting read barriers bloats the intermediate
// representation and thereby adds ~17% to compilation time and ~10% to code
// size; this package reproduces that experiment by running the same
// optimization passes over barrier-free and barrier-expanded IR.
package jitsim

import "fmt"

// OpKind is one IR operation kind.
type OpKind uint8

const (
	// OpConst loads an immediate constant into register A (value B).
	OpConst OpKind = iota
	// OpArith computes A = A op B with a cheap integer operation.
	OpArith
	// OpLoadField loads a reference field: A = heap[A].field[B]. The
	// compiler expands this into the read-barrier sequence when barriers
	// are enabled.
	OpLoadField
	// OpStoreField stores a reference field: heap[A].field[B] = A.
	OpStoreField
	// OpAlloc allocates an object with B fields into register A.
	OpAlloc
	// OpBranch jumps backward B ops if register A is non-zero (bounded by
	// the interpreter's fuel).
	OpBranch
	// OpCall models a call (compile-time inlining candidate; runtime no-op
	// with cost).
	OpCall

	// The pseudo-ops below exist only after barrier expansion.

	// opBarrierTest is the inline conditional test on the loaded word.
	opBarrierTest
	// opBarrierCall is the out-of-line call to the barrier body.
	opBarrierCall
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpConst:
		return "const"
	case OpArith:
		return "arith"
	case OpLoadField:
		return "loadfield"
	case OpStoreField:
		return "storefield"
	case OpAlloc:
		return "alloc"
	case OpBranch:
		return "branch"
	case OpCall:
		return "call"
	case opBarrierTest:
		return "barrier.test"
	case opBarrierCall:
		return "barrier.call"
	}
	return fmt.Sprintf("op(%d)", k)
}

// Op is one IR operation.
type Op struct {
	Kind OpKind
	A, B int32
}

// Method is one compilation unit.
type Method struct {
	Name string
	Ops  []Op
}

// NumLoads counts the reference loads in the method (each becomes a barrier
// site when barriers are enabled).
func (m *Method) NumLoads() int {
	n := 0
	for _, op := range m.Ops {
		if op.Kind == OpLoadField {
			n++
		}
	}
	return n
}
