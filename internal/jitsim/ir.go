// Package jitsim models the adaptive compiler side of §5: a small method IR
// with real control flow, a compiler that optionally expands reference loads
// into read-barrier sequences, a dataflow analysis that statically elides or
// hoists provably-redundant barriers (tier 1), and an interpreter to execute
// the compiled code. The paper reports that inserting read barriers bloats
// the intermediate representation and thereby adds ~17% to compilation time
// and ~10% to code size; this package reproduces that experiment and then
// models what an optimizing JIT claws back: a forward "checked-on-all-paths"
// analysis over the method's access graph elides the barrier test/call pair
// wherever the base reference was provably checked (or freshly allocated)
// on every path since the last safepoint.
package jitsim

import "fmt"

// OpKind is one IR operation kind.
type OpKind uint8

const (
	// OpConst loads an immediate constant into register A (value B).
	OpConst OpKind = iota
	// OpArith computes A = A*31 + B with a cheap integer operation.
	OpArith
	// OpLoadField loads a reference field: A = heap[C].field[B]. C is the
	// base reference the conditional read barrier must test; A is the
	// destination (the loaded reference, unchecked until its own first
	// dereference). The compiler expands this into the read-barrier
	// sequence when barriers are enabled.
	OpLoadField
	// OpStoreField stores a reference field: heap[A].field[B] = C.
	OpStoreField
	// OpAlloc allocates an object with B fields into register A. Allocation
	// is a safepoint, and the new reference is black-allocated: it cannot
	// be stale, so A is barrier-checked by construction afterwards.
	OpAlloc
	// OpBranch jumps to op index i-B (i = the branch's own index) when
	// register A is non-zero. B > 0 is a backward branch: taking it crosses
	// a safepoint (the VM's GC poll on loop backedges) and costs one unit
	// of interpreter fuel. B < 0 is a forward branch (no safepoint).
	OpBranch
	// OpCall models a call: a safepoint that clobbers register A
	// (A ^= B). Every barrier fact dies across it.
	OpCall

	// The pseudo-ops below exist only after barrier expansion.

	// opBarrierTest is the inline conditional test on the base reference in
	// register C (it mirrors OpLoadField's operand layout).
	opBarrierTest
	// opBarrierCall is the out-of-line call to the barrier body.
	opBarrierCall
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpConst:
		return "const"
	case OpArith:
		return "arith"
	case OpLoadField:
		return "loadfield"
	case OpStoreField:
		return "storefield"
	case OpAlloc:
		return "alloc"
	case OpBranch:
		return "branch"
	case OpCall:
		return "call"
	case opBarrierTest:
		return "barrier.test"
	case opBarrierCall:
		return "barrier.call"
	}
	return fmt.Sprintf("op(%d)", k)
}

// Op is one IR operation. A is the defined (or branch-condition) register,
// B an immediate (constant, field index, allocation size, branch offset),
// and C the used base-reference register for loads/stores.
type Op struct {
	Kind OpKind
	A, B int32
	C    int32
}

// Method is one compilation unit.
type Method struct {
	Name string
	Ops  []Op
}

// NumLoads counts the reference loads in the method (each is a barrier
// site when barriers are enabled).
func (m *Method) NumLoads() int {
	n := 0
	for _, op := range m.Ops {
		if op.Kind == OpLoadField {
			n++
		}
	}
	return n
}

// isSafepointOp reports whether the op is a full safepoint in straight-line
// code: every barrier fact dies across it. Backward OpBranch edges are also
// safepoints, but only along the taken (backedge) path — the CFG models
// those as edge-level kills, not op-level ones.
func isSafepointOp(k OpKind) bool {
	return k == OpCall || k == OpAlloc
}

// defReg returns the register the op overwrites, or -1 if none. A register
// definition kills any barrier fact on it: the new value has not been
// checked (except OpAlloc, whose result is black-allocated — the analysis
// special-cases it as def-then-check).
func defReg(op Op) int {
	switch op.Kind {
	case OpConst, OpArith, OpAlloc, OpCall, OpLoadField:
		return int(op.A) & 15
	}
	return -1
}
