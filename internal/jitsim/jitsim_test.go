package jitsim

import (
	"testing"
	"testing/quick"
)

func TestCorpusDeterministic(t *testing.T) {
	a := Corpus("bench", 10, 50)
	b := Corpus("bench", 10, 50)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("corpus sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Ops) != len(b[i].Ops) {
			t.Fatal("corpus not deterministic")
		}
		for j := range a[i].Ops {
			if a[i].Ops[j] != b[i].Ops[j] {
				t.Fatal("ops differ between identical corpora")
			}
		}
	}
	c := Corpus("other", 10, 50)
	same := true
	for j := range a[0].Ops {
		if a[0].Ops[j] != c[0].Ops[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different benchmarks produced identical methods")
	}
}

func TestBarrierExpansionCounts(t *testing.T) {
	m := &Method{Name: "m", Ops: []Op{
		{Kind: OpConst, A: 0, B: 1},
		{Kind: OpLoadField, A: 0, B: 0},
		{Kind: OpArith, A: 1, B: 2},
		{Kind: OpLoadField, A: 1, B: 1},
	}}
	if m.NumLoads() != 2 {
		t.Fatalf("NumLoads = %d", m.NumLoads())
	}
	var c Compiler
	_, plain := c.Compile(m)
	if plain.BarrierSites != 0 {
		t.Fatal("barrier sites without insertion")
	}
	c.InsertReadBarriers = true
	cm, st := c.Compile(m)
	if st.BarrierSites != 2 {
		t.Fatalf("barrier sites = %d", st.BarrierSites)
	}
	// Each load gains a test and a call.
	if st.IRSizeOut != st.IRSizeIn+2*st.BarrierSites {
		t.Fatalf("IR %d -> %d with %d sites", st.IRSizeIn, st.IRSizeOut, st.BarrierSites)
	}
	if cm.CodeBytes <= 0 || cm.IRSize != st.IRSizeOut {
		t.Fatalf("compiled method %+v", cm)
	}
}

func TestSimplifyFoldsConstArith(t *testing.T) {
	ir := []Op{
		{Kind: OpConst, A: 3, B: 10},
		{Kind: OpArith, A: 3, B: 5},
		{Kind: OpConst, A: 1, B: 1},
	}
	out := simplify(append([]Op(nil), ir...))
	if len(out) != 2 {
		t.Fatalf("simplify kept %d ops", len(out))
	}
	if out[0].Kind != OpConst || out[0].B != 10*31+5 {
		t.Fatalf("folded op = %+v", out[0])
	}
}

func TestEliminateDeadConsts(t *testing.T) {
	ir := []Op{
		{Kind: OpConst, A: 2, B: 1},
		{Kind: OpConst, A: 2, B: 9}, // overwrites the first
		{Kind: OpConst, A: 3, B: 4},
	}
	out := eliminateDeadConsts(append([]Op(nil), ir...))
	if len(out) != 2 {
		t.Fatalf("DCE kept %d ops", len(out))
	}
	if out[0].B != 9 {
		t.Fatalf("wrong const survived: %+v", out[0])
	}
}

func TestCodeSizeOverheadNearTenPercent(t *testing.T) {
	corpus := Corpus("size", 100, 300)
	plain := CompileCorpus("size", &Compiler{}, corpus)
	barrier := CompileCorpus("size", &Compiler{InsertReadBarriers: true}, corpus)
	ratio := float64(barrier.CodeBytes) / float64(plain.CodeBytes)
	if ratio < 1.05 || ratio > 1.18 {
		t.Fatalf("code-size ratio %.3f outside the paper's ~10%% band", ratio)
	}
	if barrier.IRSizeOut <= plain.IRSizeOut {
		t.Fatal("barrier insertion must bloat the IR")
	}
}

func TestMachineExecution(t *testing.T) {
	m := &Method{Name: "exec", Ops: []Op{
		{Kind: OpConst, A: 4, B: 9},            // r4 = 9
		{Kind: OpAlloc, A: 1, B: 4},            // r1 = new object (4 fields)
		{Kind: OpStoreField, A: 1, B: 2, C: 4}, // heap[r1].2 = r4
		{Kind: OpLoadField, A: 3, B: 2, C: 1},  // r3 = heap[r1].2
		{Kind: OpConst, A: 2, B: 7},
		{Kind: OpArith, A: 2, B: 3}, // r2 = 7*31+3
	}}
	var c Compiler
	cm, _ := c.Compile(m)
	res := cm.Run(1)
	if res.Regs[2] != 7*31+3 {
		t.Fatalf("r2 = %d", res.Regs[2])
	}
	if res.Regs[3] != 9 {
		t.Fatalf("r3 = %d, want the stored field value 9", res.Regs[3])
	}
	// Barrier-compiled code computes the same results.
	c.InsertReadBarriers = true
	cmB, _ := c.Compile(m)
	resB := cmB.Run(1)
	if resB.Regs[2] != res.Regs[2] {
		t.Fatal("barrier compilation changed program results")
	}
}

// TestCompileEquivalenceQuick: for random methods, barrier-compiled code
// computes the same register state as plain-compiled code (barrier ops are
// semantically transparent).
func TestCompileEquivalenceQuick(t *testing.T) {
	prop := func(seed uint16) bool {
		corpus := Corpus(string(rune('a'+seed%26))+"q", 1, 60)
		m := corpus[0]
		var plain, withB Compiler
		withB.InsertReadBarriers = true
		cm1, _ := plain.Compile(m)
		cm2, _ := withB.Compile(m)
		return cm1.Run(3).Regs == cm2.Run(3).Regs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpConst: "const", OpLoadField: "loadfield", opBarrierCall: "barrier.call",
	} {
		if k.String() != want {
			t.Fatalf("OpKind(%d).String() = %q", k, k.String())
		}
	}
}

func TestReplayMethodology(t *testing.T) {
	corpus := Corpus("replay", 30, 200)
	res := Replay(&Compiler{InsertReadBarriers: true}, corpus, 3)
	if res.CompileTime <= 0 {
		t.Fatal("no compile time recorded")
	}
	if res.FirstIteration < res.CompileTime {
		t.Fatal("the first iteration includes compilation")
	}
	if res.SecondIteration <= 0 {
		t.Fatal("second iteration did not run")
	}
	if res.BarrierSites == 0 {
		t.Fatal("barrier sites not counted")
	}
	// Steady state excludes compilation: it must be cheaper than the first
	// iteration (which is second-iteration work plus all compilation).
	if res.SecondIteration >= res.FirstIteration {
		t.Fatalf("second iteration (%v) not cheaper than first (%v)", res.SecondIteration, res.FirstIteration)
	}
}
