package gc

import (
	"sync"
	"testing"

	"leakpruning/internal/heap"
)

// TestParallelCollectionStress is the -race stress test for the
// work-stealing tracer and the parallel sweep-free: a large heap is built
// by concurrent mutators through TLAB contexts, then collected with 8
// workers in each mode (normal, select, prune) while the fundamental
// byte-accounting invariant — allocated == live + freed — is asserted
// after every cycle.
func TestParallelCollectionStress(t *testing.T) {
	reg := heap.NewRegistry()
	node := reg.Define("Node", 4, 48)
	h := heap.New(reg, 1<<30)
	roots := &rootSet{}

	const goroutines = 8
	const perG = 8000 // 64k objects total

	heads := make([]heap.Ref, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := h.NewAllocContext()
			defer h.ReleaseContext(&ctx)
			var prev heap.Ref
			for i := 0; i < perG; i++ {
				r, err := h.AllocateCtx(&ctx, node)
				if err != nil {
					t.Error(err)
					return
				}
				if !prev.IsNull() {
					// Chain plus a shortcut edge two back, giving the tracer
					// shared structure to claim-race over.
					h.Get(r).SetRef(0, prev)
					if i%3 == 0 {
						h.Get(r).SetRef(1, h.Get(prev).Ref(0))
					}
				}
				prev = r
			}
			heads[g] = prev
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Root only the even goroutines' chains; odd chains are garbage.
	for g := 0; g < goroutines; g += 2 {
		roots.refs = append(roots.refs, heads[g])
	}

	col := NewCollector(h, roots, 8)
	checkInvariant := func(stage string, res Result) {
		t.Helper()
		st := h.Stats()
		if st.BytesAlloc-st.BytesFreed != st.BytesUsed {
			t.Fatalf("%s: byte invariant broken: %+v", stage, st)
		}
		if st.ObjectsAlloc-st.ObjectsFreed != st.ObjectsUsed {
			t.Fatalf("%s: object invariant broken: %+v", stage, st)
		}
		if res.BytesLive != st.BytesUsed {
			t.Fatalf("%s: BytesLive %d != BytesUsed %d", stage, res.BytesLive, st.BytesUsed)
		}
		if res.ObjectsLive != st.ObjectsUsed {
			t.Fatalf("%s: ObjectsLive %d != ObjectsUsed %d", stage, res.ObjectsLive, st.ObjectsUsed)
		}
	}

	res := col.Collect(Plan{Mode: ModeNormal, TagRefs: true, AgeStaleness: true})
	if res.ObjectsFreed != goroutines/2*perG {
		t.Fatalf("normal collection freed %d, want %d", res.ObjectsFreed, goroutines/2*perG)
	}
	checkInvariant("normal", res)

	// Make the surviving chains stale and run SELECT: candidates are
	// deferred, attributed by the stale closure, and still retained.
	h.ForEach(func(id heap.ObjectID, obj *heap.Object) { obj.SetStale(3) })
	var accMu sync.Mutex
	var staleBytes uint64
	res = col.Collect(Plan{
		Mode:      ModeSelect,
		TagRefs:   true,
		Candidate: func(src, tgt heap.ClassID, stale uint8) bool { return stale >= 2 },
		AccountStaleBytes: func(src, tgt heap.ClassID, bytes uint64) {
			accMu.Lock()
			staleBytes += bytes
			accMu.Unlock()
		},
	})
	if res.ObjectsFreed != 0 {
		t.Fatalf("SELECT reclaimed %d objects", res.ObjectsFreed)
	}
	if res.Candidates == 0 || res.StaleBytes == 0 || staleBytes != res.StaleBytes {
		t.Fatalf("SELECT: candidates %d stale %d (accounted %d)", res.Candidates, res.StaleBytes, staleBytes)
	}
	checkInvariant("select", res)

	// PRUNE: poison every stale edge out of the chain heads' class and
	// verify the poisoned subgraphs are reclaimed with accounting intact.
	before := h.Stats()
	res = col.Collect(Plan{
		Mode:        ModePrune,
		TagRefs:     true,
		ShouldPrune: func(src, tgt heap.ClassID, stale uint8) bool { return stale >= 2 },
	})
	if res.PrunedRefs == 0 || res.ObjectsFreed == 0 {
		t.Fatalf("PRUNE made no progress: pruned %d freed %d", res.PrunedRefs, res.ObjectsFreed)
	}
	checkInvariant("prune", res)
	after := h.Stats()
	if after.ObjectsFreed-before.ObjectsFreed != res.ObjectsFreed {
		t.Fatalf("heap freed %d, collector reports %d",
			after.ObjectsFreed-before.ObjectsFreed, res.ObjectsFreed)
	}
}
