package gc

import (
	"sync"
	"testing"

	"leakpruning/internal/heap"
)

func batchOf(id heap.ObjectID) *workBatch {
	return &workBatch{ids: []heap.ObjectID{id}}
}

func TestDequeOwnerLIFO(t *testing.T) {
	var d wsDeque
	d.init()
	for i := 1; i <= 200; i++ { // crosses a grow at 64 and 128
		d.push(batchOf(heap.ObjectID(i)))
	}
	for i := 200; i >= 1; i-- {
		b := d.pop()
		if b == nil || b.ids[0] != heap.ObjectID(i) {
			t.Fatalf("pop %d: got %v", i, b)
		}
	}
	if d.pop() != nil {
		t.Fatal("pop of empty deque returned a batch")
	}
	if !d.empty() {
		t.Fatal("drained deque not empty")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	var d wsDeque
	d.init()
	for i := 1; i <= 10; i++ {
		d.push(batchOf(heap.ObjectID(i)))
	}
	// Thieves take from the opposite end: oldest first.
	if b := d.steal(); b == nil || b.ids[0] != 1 {
		t.Fatalf("first steal got %v", b)
	}
	if b := d.pop(); b == nil || b.ids[0] != 10 {
		t.Fatalf("owner pop got %v", b)
	}
}

// TestDequeConcurrentSteal pushes batches from the owner while thieves
// steal, and checks every batch is consumed exactly once. Run with -race.
func TestDequeConcurrentSteal(t *testing.T) {
	const total = 20000
	const thieves = 4
	var d wsDeque
	d.init()

	counts := make([][]int, thieves+1) // per-consumer tallies, merged later
	for i := range counts {
		counts[i] = make([]int, total+1)
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for {
				if b := d.steal(); b != nil {
					counts[th][b.ids[0]]++
					continue
				}
				select {
				case <-done:
					// Drain whatever is left after the owner stopped.
					if b := d.steal(); b != nil {
						counts[th][b.ids[0]]++
						continue
					}
					return
				default:
				}
			}
		}(th)
	}

	// Owner: push everything, popping a few along the way to exercise the
	// bottom-end race.
	for i := 1; i <= total; i++ {
		d.push(batchOf(heap.ObjectID(i)))
		if i%7 == 0 {
			if b := d.pop(); b != nil {
				counts[thieves][b.ids[0]]++
			}
		}
	}
	for {
		b := d.pop()
		if b == nil && d.empty() {
			break
		}
		if b != nil {
			counts[thieves][b.ids[0]]++
		}
	}
	close(done)
	wg.Wait()

	for id := 1; id <= total; id++ {
		n := 0
		for _, c := range counts {
			n += c[id]
		}
		if n != 1 {
			t.Fatalf("batch %d consumed %d times", id, n)
		}
	}
}
