package gc

import (
	"time"

	"leakpruning/internal/heap"
)

// Minor (nursery) collection: the generational mode the paper's collector
// runs between full-heap collections (§5 uses a generational mark-sweep).
// A minor collection considers only objects allocated since the previous
// collection: the young reachable set is the closure of young objects from
// (a) the roots and (b) the remembered set of old objects that had a young
// reference stored into them since the last collection. Old objects are
// assumed live; unreachable young objects are freed and survivors are
// promoted.
//
// Minor collections do not touch the staleness machinery at all: the stale
// clock is the *full-heap* collection count (§4.1), and leak pruning acts
// only at full-heap collections.

// MinorResult summarizes one nursery collection.
type MinorResult struct {
	// Index is the 1-based count of minor collections.
	Index uint64

	YoungScanned  uint64 // nursery objects considered
	Promoted      uint64 // survivors moved to the old generation
	BytesFreed    uint64
	ObjectsFreed  uint64
	RemsetEntries int

	Duration time.Duration
}

// CollectMinor runs one stop-the-world nursery collection. remset holds the
// old objects into which young references were stored since the last
// collection (each at most once; see Object.TryLog). The caller must have
// stopped all mutator threads (see Collect for what that requires of the
// safepoint and RWMutex world protocols) and must clear its remembered set
// afterwards.
func (c *Collector) CollectMinor(remset []heap.ObjectID, onFree func(heap.ObjectID, heap.ClassID, uint64)) MinorResult {
	start := time.Now()
	c.epoch++
	c.minorIndex++
	res := MinorResult{Index: c.minorIndex, RemsetEntries: len(remset)}

	var stack []heap.ObjectID
	markYoung := func(r heap.Ref) {
		if r.IsNull() || r.IsPoisoned() {
			return
		}
		obj, ok := c.heap.Lookup(r.ID())
		if !ok || !obj.IsYoung() {
			return // old objects are assumed live in a minor collection
		}
		if obj.TryMark(c.epoch) {
			stack = append(stack, r.ID())
		}
	}

	// Roots: thread stacks, locals, globals.
	c.roots.VisitRoots(func(r heap.Ref) { markYoung(r.Untagged()) })
	// Remembered set: scan the logged old objects' slots for young targets.
	for _, id := range remset {
		obj, ok := c.heap.Lookup(id)
		if !ok {
			continue
		}
		for slot, n := 0, obj.NumRefs(); slot < n; slot++ {
			markYoung(obj.Ref(slot))
		}
	}
	// Transitive closure over young objects only.
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		obj, ok := c.heap.Lookup(id)
		if !ok {
			continue
		}
		for slot, n := 0, obj.NumRefs(); slot < n; slot++ {
			markYoung(obj.Ref(slot))
		}
	}

	// Nursery sweep: promote survivors, free the rest.
	for _, id := range c.heap.YoungIDs() {
		obj, ok := c.heap.Lookup(id)
		if !ok || !obj.IsYoung() {
			continue
		}
		res.YoungScanned++
		if obj.Marked(c.epoch) {
			obj.Promote()
			res.Promoted++
			continue
		}
		if onFree != nil {
			onFree(id, obj.Class(), obj.Size())
		}
		res.BytesFreed += obj.Size()
		res.ObjectsFreed++
		c.heap.Free(id)
	}
	c.heap.ResetYoung()

	res.Duration = time.Since(start)
	return res
}

// MinorIndex returns the number of minor collections performed.
func (c *Collector) MinorIndex() uint64 { return c.minorIndex }
