package gc

import (
	"time"

	"leakpruning/internal/heap"
)

// Mostly-concurrent marking (the ModeNormal fast path). The cycle is split
// across three short stop-the-world pauses with the expensive phases in
// between running while mutators execute:
//
//	pause 1 (STW)  StartConcurrent: flip the epoch, snapshot the roots
//	concurrent     RunMark: the work-stealing closure over the snapshot
//	pause 2 (STW)  FinishMark: drain SATB buffers, re-scan roots, finish
//	               the closure (or degrade to a fresh fully-STW closure)
//	concurrent     Sweep: reclaim unmarked objects via shard-safe FreeBatch
//	pause 3 (STW)  Finish: generational promotion, Result assembly
//
// Soundness is the snapshot-at-the-beginning argument (DESIGN.md,
// "Concurrent marking"): every object reachable at pause 1 stays marked
// because (a) the closure covers the snapshot, (b) every heap reference
// overwritten during the concurrent phase is logged by the mutators' SATB
// deletion barrier and re-seeded at pause 2, and (c) objects allocated
// during the cycle are born black (heap.SetAllocMarkEpoch — armed by the
// VM, not here, because allocation is the VM's domain). The closure may
// keep floating garbage alive one extra cycle; it can never free a live
// object. SELECT and PRUNE cycles never come through here: the paper's
// candidate selection and poisoning need one consistent closure (§3.2,
// §4.2), so the VM routes them to the fully-STW Collect.
type ConcurrentMark struct {
	c    *Collector
	plan Plan
	tr   *tracer
	res  Result

	start     time.Time
	traceBase int64
	markStart time.Time
	sw        sweepResult
}

// StartConcurrent begins a mostly-concurrent ModeNormal cycle: it advances
// the epoch and the staleness clock, snapshots the roots, and deals them to
// the tracer's deques. Call inside the initial stop-the-world pause; after
// it returns the caller arms black allocation (with Epoch()), arms the
// mutators' SATB barriers, and restarts the world before RunMark.
func (c *Collector) StartConcurrent(plan Plan) *ConcurrentMark {
	if plan.Mode != ModeNormal {
		panic("gc: concurrent marking supports only ModeNormal cycles")
	}
	cm := &ConcurrentMark{c: c, plan: plan, start: time.Now()}
	if c.obsTrace != nil {
		cm.traceBase = c.obsTrace.Now()
	}
	c.epoch++
	c.index++
	cm.res = Result{Mode: plan.Mode, Epoch: c.epoch, Index: c.index, Concurrent: true}
	cm.tr = newTracer(c.heap, c.epoch, plan, c.workers)
	cm.tr.concurrent = true
	if c.workers > 1 {
		cm.tr.inj = c.inj
	}
	c.roots.VisitRoots(func(r heap.Ref) {
		if r.IsNull() {
			return
		}
		cm.tr.markRoot(r.Untagged())
	})
	cm.tr.dealRoots()
	cm.markStart = time.Now()
	return cm
}

// Epoch returns the cycle's mark epoch — after a degraded FinishMark, the
// bumped re-run epoch. The VM stamps it into heap.SetAllocMarkEpoch so
// objects allocated while the cycle is in flight are born black.
func (cm *ConcurrentMark) Epoch() uint32 { return cm.res.Epoch }

// RunMark drives the snapshot closure to termination (or abort) while
// mutators run. At GOMAXPROCS=1 the workers interleave with mutators
// through the scheduler — the closure cost leaves the pause either way.
// Worker panics are recovered even on the serial tracer: unlike the STW
// path, a concurrent closure has a sound fallback (FinishMark degrades to
// a fresh fully-STW closure).
func (cm *ConcurrentMark) RunMark() {
	cm.tr.process(true)
	cm.res.MarkDuration = time.Since(cm.markStart)
}

// FinishMark is the final-remark pause: with the world stopped again, the
// caller hands over every reference the SATB deletion barriers logged
// (grays) plus an optional degrade cause ("satb-drop" when barrier loss was
// detected). The closure is re-seeded from the current roots and the grays
// and driven to termination; tri-color-wise the grays are exactly the
// snapshot edges the mutators deleted, so after this pass the marked set
// covers everything reachable at the snapshot plus everything born black.
//
// Any degradation — a caller-supplied cause, a recovered worker panic, or
// an abort during the remark itself — falls back to the STW oracle: the
// epoch is bumped (invalidating every concurrent mark, including black
// allocations) and a fresh serial closure runs from the current roots,
// producing the same live set a fully-STW cycle would have.
func (cm *ConcurrentMark) FinishMark(grays []heap.Ref, degradeCause string) {
	c := cm.c
	remarkStart := time.Now()
	defer func() { cm.res.RemarkDuration = time.Since(remarkStart) }()

	if degradeCause == "" {
		degradeCause = cm.abortCause()
	}
	if degradeCause == "" {
		// Re-seed: current roots (cheap, conservative — they are live by
		// definition) plus the SATB grays, then run the closure again on the
		// same epoch. Already-marked entries fall out in markRoot's TryMark.
		c.roots.VisitRoots(func(r heap.Ref) {
			if r.IsNull() {
				return
			}
			cm.tr.markRoot(r.Untagged())
		})
		for _, r := range grays {
			if r.IsNull() || r.IsPoisoned() {
				continue
			}
			cm.tr.markRoot(r.Untagged())
		}
		cm.tr.dealRoots()
		cm.tr.process(true)
		degradeCause = cm.abortCause()
	}
	if degradeCause != "" {
		c.degradedTraces.Add(1)
		cm.res.Degraded = true
		cm.res.DegradeCause = degradeCause
		// Invalidate every mark the concurrent attempt left behind by moving
		// to a fresh epoch, then re-run the whole closure serially under the
		// pause. Poison counts carry over as in the STW degradation path
		// (ModeNormal never poisons, so this is zero here, but the invariant
		// is kept uniform).
		carried := int64(0)
		for _, w := range cm.tr.workers {
			carried += w.pruned
		}
		c.epoch++
		cm.res.Epoch = c.epoch
		tr, _ := c.runClosure(cm.plan, 1)
		tr.prunedRefs += carried
		cm.tr = tr
		return
	}
	cm.tr.merge()
}

// abortCause maps the tracer's abort state to a degrade cause ("" = none).
func (cm *ConcurrentMark) abortCause() string {
	if !cm.tr.aborted.Load() {
		return ""
	}
	c := cm.c
	if cm.tr.abortWhy.Load() == abortPanic {
		c.recoveredPanics.Add(1)
		if msg := cm.tr.lastPanic.Load(); msg != nil {
			c.lastPanicMsg.Store(msg)
		}
		return "worker-panic"
	}
	return "aborted"
}

// Sweep reclaims every object the cycle left unmarked. It may run while
// mutators execute: unmarked objects are unreachable (the SATB argument
// above), the probes and frees go through atomic liveness words and the
// shard locks, and anything allocated meanwhile is born black under the
// still-armed alloc-mark epoch, so the sweeper cannot touch it. OnFree
// callbacks (finalizers) are replayed serially on the calling goroutine,
// outside any pause.
func (cm *ConcurrentMark) Sweep() {
	sweepStart := time.Now()
	cm.sw = cm.c.sweep(cm.plan)
	cm.res.SweepDuration = time.Since(sweepStart)
}

// Finish completes the cycle inside the closing pause: generational
// promotion, result assembly, and observability. After it returns the
// caller disarms black allocation and publishes the Result.
func (cm *ConcurrentMark) Finish() Result {
	c := cm.c
	cm.res.Candidates = len(cm.tr.candidates)
	cm.res.PrunedRefs = int(cm.tr.prunedRefs)
	cm.res.BytesFreed = cm.sw.bytesFreed
	cm.res.ObjectsFreed = cm.sw.objectsFreed
	cm.res.BytesLive = cm.sw.bytesLive
	cm.res.ObjectsLive = cm.sw.objectsLive
	cm.res.MaxStale = cm.sw.maxStale
	c.promoteSurvivors()
	cm.res.Duration = time.Since(cm.start)
	c.observeCycle(cm.traceBase, &cm.res)
	return cm.res
}
