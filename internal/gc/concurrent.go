package gc

import (
	"time"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/heap"
)

// Mostly-concurrent marking, for all three cycle modes. The cycle is split
// across three short stop-the-world pauses with the expensive phases in
// between running while mutators execute:
//
//	pause 1 (STW)  StartConcurrent: flip the epoch, snapshot the roots
//	               (the controller has already frozen the edge-table
//	               staleness snapshot for SELECT/PRUNE in this pause)
//	concurrent     RunMark: the work-stealing closure over the snapshot;
//	               for SELECT, the stale closure over the candidate queue
//	pause 2 (STW)  FinishMark: drain SATB buffers, re-scan roots, finish
//	               the closure, verify SELECT candidates / apply deferred
//	               PRUNE poisonings against the frozen snapshot (demoting
//	               drifted edges), or degrade to a fresh fully-STW closure
//	concurrent     Sweep: reclaim unmarked objects via shard-safe FreeBatch
//	pause 3 (STW)  Finish: generational promotion, Result assembly
//
// Soundness is the snapshot-at-the-beginning argument (DESIGN.md,
// "Concurrent marking"): every object reachable at pause 1 stays marked
// because (a) the closure covers the snapshot, (b) every heap reference
// overwritten during the concurrent phase is logged by the mutators' SATB
// deletion barrier and re-seeded at pause 2, and (c) objects allocated
// during the cycle are born black (heap.SetAllocMarkEpoch — armed by the
// VM, not here, because allocation is the VM's domain). The closure may
// keep floating garbage alive one extra cycle; it can never free a live
// object.
//
// SELECT and PRUNE extend the argument (DESIGN.md, "Concurrent SELECT and
// PRUNE"): the paper's candidate selection and poisoning need one
// consistent staleness cut (§3.2, §4.2), so pause 1 additionally freezes
// the edge table's maxStaleUse values (core.Controller.PlanCycle) and
// every policy predicate evaluates against that frozen cut. Decisions
// taken while mutators ran are provisional: candidate slots stay
// stale-tagged, so any mutator access in the window either goes through
// the read barrier's cold path (untagging the slot) or replaces the slot
// value — both visible to FinishMark's expect-compare, which then demotes
// the edge (SnapshotDrift) instead of selecting/poisoning it. There are
// no unobservable pointer races on deferred edges, so a verified decision
// is identical to the one a fully-STW cycle at the same cut would take.
// Any fault, SATB overflow, or injected unresolvable drift degrades the
// whole cycle to the serial STW closure, reproducing the oracle.
type ConcurrentMark struct {
	c    *Collector
	plan Plan
	tr   *tracer
	res  Result

	start     time.Time
	traceBase int64
	markStart time.Time
	sw        sweepResult
}

// StartConcurrent begins a mostly-concurrent cycle (any mode): it advances
// the epoch and the staleness clock, snapshots the roots, and deals them to
// the tracer's deques. Call inside the initial stop-the-world pause; after
// it returns the caller arms black allocation (with Epoch()), arms the
// mutators' SATB barriers, and restarts the world before RunMark. For
// SELECT and PRUNE the caller must have frozen the staleness snapshot in
// the same pause (the controller's PlanCycle does).
func (c *Collector) StartConcurrent(plan Plan) *ConcurrentMark {
	cm := &ConcurrentMark{c: c, plan: plan, start: time.Now()}
	if c.obsTrace != nil {
		cm.traceBase = c.obsTrace.Now()
	}
	c.epoch++
	c.index++
	cm.res = Result{Mode: plan.Mode, Epoch: c.epoch, Index: c.index, Concurrent: true}
	cm.tr = newTracer(c.heap, c.epoch, plan, c.workers)
	cm.tr.concurrent = true
	cm.tr.deferOps = plan.Mode != ModeNormal
	if c.workers > 1 {
		cm.tr.inj = c.inj
	}
	c.roots.VisitRoots(func(r heap.Ref) {
		if r.IsNull() {
			return
		}
		cm.tr.markRoot(r.Untagged())
	})
	cm.tr.dealRoots()
	cm.markStart = time.Now()
	return cm
}

// Epoch returns the cycle's mark epoch — after a degraded FinishMark, the
// bumped re-run epoch. The VM stamps it into heap.SetAllocMarkEpoch so
// objects allocated while the cycle is in flight are born black.
func (cm *ConcurrentMark) Epoch() uint32 { return cm.res.Epoch }

// Mode returns the cycle's plan mode.
func (cm *ConcurrentMark) Mode() Mode { return cm.plan.Mode }

// RunMark drives the snapshot closure to termination (or abort) while
// mutators run. At GOMAXPROCS=1 the workers interleave with mutators
// through the scheduler — the closure cost leaves the pause either way.
// Worker panics are recovered even on the serial tracer: unlike the STW
// path, a concurrent closure has a sound fallback (FinishMark degrades to
// a fresh fully-STW closure).
//
// For SELECT, the stale closure also runs here, concurrently: it marks
// and sizes each candidate's subgraph, which is the bulk of a SELECT
// cycle's work on a leaking heap and must therefore stay out of the
// pauses. Only the sizes are recorded — attribution into the edge table
// waits until FinishMark has verified which candidates survived the
// window, so neither drift demotion nor a full degrade leaves phantom
// bytes behind.
func (cm *ConcurrentMark) RunMark() {
	cm.tr.process(true)
	cm.res.MarkDuration = time.Since(cm.markStart)
	if cm.plan.Mode == ModeSelect && !cm.tr.aborted.Load() {
		staleStart := time.Now()
		cm.tr.gatherCandidates()
		cm.tr.staleClosure()
		cm.res.StaleDuration = time.Since(staleStart)
	}
}

// FinishMark is the final-remark pause: with the world stopped again, the
// caller hands over every reference the SATB deletion barriers logged
// (grays) plus an optional degrade cause ("satb-drop" when barrier loss was
// detected). The closure is re-seeded from the current roots and the grays
// and driven to termination; tri-color-wise the grays are exactly the
// snapshot edges the mutators deleted, so after this pass the marked set
// covers everything reachable at the snapshot plus everything born black.
//
// For SELECT and PRUNE the remark then verifies every decision the
// concurrent phase deferred against the frozen staleness snapshot
// (verifySnapshot): surviving prune records are poisoned here, with the
// world stopped — exactly the STW path's semantics — and drifted edges are
// demoted rather than aborting the cycle. The pause stays bounded: the
// closure is already complete, so the remark scans only SATB grays, roots,
// and the deferred-decision lists, never the heap.
//
// Any degradation — a caller-supplied cause, a recovered worker panic,
// injected unresolvable snapshot drift, or an abort during the remark
// itself — falls back to the STW oracle: the epoch is bumped (invalidating
// every concurrent mark, including black allocations) and a fresh serial
// closure runs from the current roots under the same plan and the same
// frozen staleness cut, producing the same live set, candidate set, and
// prune decisions a fully-STW cycle would have.
func (cm *ConcurrentMark) FinishMark(grays []heap.Ref, degradeCause string) {
	c := cm.c
	remarkStart := time.Now()
	defer func() { cm.res.RemarkDuration = time.Since(remarkStart) }()

	if degradeCause == "" {
		degradeCause = cm.abortCause()
	}
	if degradeCause == "" && cm.plan.Mode != ModeNormal && c.inj.Should(faultinject.SelectSnapshotDrift) {
		// Injected unresolvable drift: model a window in which the frozen
		// snapshot cannot be reconciled per-edge (e.g. the verification
		// bookkeeping itself was lost). The only sound answer is the full
		// degrade below.
		degradeCause = "snapshot-drift"
	}
	if degradeCause == "" {
		// The world is stopped: from here on the tracer applies SELECT/PRUNE
		// decisions directly, exactly as the fully-STW path does.
		cm.tr.deferOps = false
		// Re-seed: current roots (cheap, conservative — they are live by
		// definition) plus the SATB grays, then run the closure again on the
		// same epoch. Already-marked entries fall out in markRoot's TryMark.
		c.roots.VisitRoots(func(r heap.Ref) {
			if r.IsNull() {
				return
			}
			cm.tr.markRoot(r.Untagged())
		})
		for _, r := range grays {
			if r.IsNull() || r.IsPoisoned() {
				continue
			}
			cm.tr.markRoot(r.Untagged())
		}
		cm.tr.dealRoots()
		cm.tr.process(true)
		degradeCause = cm.abortCause()
	}
	if degradeCause == "" && cm.plan.Mode != ModeNormal {
		cm.verifySnapshot()
		degradeCause = cm.abortCause()
	}
	if degradeCause != "" {
		c.degradedTraces.Add(1)
		cm.res.Degraded = true
		cm.res.DegradeCause = degradeCause
		// Invalidate every mark the concurrent attempt left behind by moving
		// to a fresh epoch, then re-run the whole closure serially under the
		// pause. Poison counts carry over as in the STW degradation path:
		// references verifySnapshot already poisoned stay poisoned (the
		// re-run, evaluating the same frozen cut, would poison them anyway
		// and skips poisoned slots); unverified prune records are simply
		// dropped — nothing was poisoned for them, so the serial re-run
		// re-derives those decisions from scratch.
		carried := cm.tr.prunedRefs
		for _, w := range cm.tr.workers {
			carried += w.pruned
		}
		c.epoch++
		cm.res.Epoch = c.epoch
		tr, _ := c.runClosure(cm.plan, 1)
		tr.prunedRefs += carried
		cm.tr = tr
		if cm.plan.Mode == ModeSelect && len(tr.candidates) > 0 {
			// The serial re-run regenerated the candidate queue; run the
			// stale closure and attribution under the pause, as the STW
			// path does.
			staleStart := time.Now()
			tr.staleClosure()
			cm.res.StaleBytes = tr.accountStale()
			cm.res.StaleDuration = time.Since(staleStart)
		}
		return
	}
	cm.tr.merge()
	if cm.plan.Mode == ModeSelect {
		// Candidates discovered during the remark itself (rare: their source
		// objects became reachable only via SATB grays or new roots) were
		// appended by merge() and have no stale-closure sizing yet. They were
		// found with the world stopped, so trace them here — the count is
		// bounded by the remark's own small scan. Then attribute bytes for
		// every surviving candidate in one serial pass.
		t := cm.tr
		for i := len(t.staleBytesPer); i < len(t.candidates); i++ {
			t.staleBytesPer = append(t.staleBytesPer, t.traceStaleRoot(t.candidates[i].ref))
		}
		cm.res.StaleBytes = t.accountStale()
	}
}

// verifySnapshot re-validates, inside the final pause, every decision the
// concurrent phase took against the frozen staleness snapshot. A decision
// survives if the recorded slot still holds the exact reference value the
// tracer left there AND the policy predicate still holds for the target's
// current stale counter (the maxStaleUse side of the predicate reads the
// frozen cut through the controller's pinned snapshot, so only mutator
// activity can change the outcome). Anything else is drift: the mutator
// used or overwrote the edge in the window, so the edge is demoted —
// dropped from candidacy (SELECT) or left unpoisoned (PRUNE) — and
// SnapshotDrift counts it. Demotion is sound: a used/overwritten slot's
// old target was either re-marked via the SATB grays, the stale closure,
// or the demote re-trace below, so the live set stays a superset of the
// truly reachable set.
func (cm *ConcurrentMark) verifySnapshot() {
	t := cm.tr
	switch cm.plan.Mode {
	case ModeSelect:
		kept := t.candidates[:0]
		keptBytes := t.staleBytesPer[:0]
		for i, cand := range t.candidates {
			if cm.stillValid(cand.srcID, cand.slot, cand.expect) &&
				t.plan.Candidate != nil && t.plan.Candidate(cand.src, cand.tgt, t.heap.Get(cand.ref).Stale()) {
				kept = append(kept, cand)
				keptBytes = append(keptBytes, t.staleBytesPer[i])
				continue
			}
			// Demoted. The subgraph was already marked by the concurrent
			// stale closure, so liveness needs nothing; the edge just stops
			// contributing to the cost function.
			cm.res.SnapshotDrift++
		}
		t.candidates, t.staleBytesPer = kept, keptBytes
	case ModePrune:
		for _, w := range t.workers {
			for _, rec := range w.pruneRecs {
				src, ok := t.heap.Lookup(rec.srcID)
				if ok && src.Ref(rec.slot) == rec.expect &&
					t.plan.ShouldPrune != nil &&
					t.plan.ShouldPrune(rec.src, rec.tgt, t.heap.Get(rec.expect).Stale()) {
					// Verified: no mutator touched the edge in the window.
					// Poison with the world stopped — byte-identical to the
					// STW path's in-closure poisoning.
					src.SetRef(rec.slot, rec.expect.Untagged().WithPoison())
					t.prunedRefs++
					if t.plan.OnPrune != nil {
						t.plan.OnPrune(rec.srcID, rec.slot, rec.src, rec.tgt)
					}
					continue
				}
				// Demoted: the program used or overwrote the reference, so
				// pruning it now would poison a live edge. The current slot
				// value's target must be in the live set — its subgraph was
				// deliberately left untraced when the decision was deferred.
				cm.res.SnapshotDrift++
				if ok {
					if cur := src.Ref(rec.slot); !cur.IsNull() && !cur.IsPoisoned() {
						t.markRoot(cur.Untagged())
					}
				}
			}
			w.pruneRecs = nil
		}
		if len(t.roots) > 0 {
			// Trace the demoted targets' subgraphs to completion inside the
			// pause; demotions are rare (one per mutator-touched edge), so
			// this stays bounded.
			t.dealRoots()
			t.process(true)
		}
	}
}

// stillValid reports whether the source object's slot still holds exactly
// the reference value the concurrent scan recorded. Any mutator access in
// the window changes it: a load through the read barrier's cold path
// untags it, a store replaces it.
func (cm *ConcurrentMark) stillValid(id heap.ObjectID, slot int, expect heap.Ref) bool {
	obj, ok := cm.tr.heap.Lookup(id)
	return ok && obj.Ref(slot) == expect
}

// abortCause maps the tracer's abort state to a degrade cause ("" = none).
func (cm *ConcurrentMark) abortCause() string {
	if !cm.tr.aborted.Load() {
		return ""
	}
	c := cm.c
	if cm.tr.abortWhy.Load() == abortPanic {
		c.recoveredPanics.Add(1)
		if msg := cm.tr.lastPanic.Load(); msg != nil {
			c.lastPanicMsg.Store(msg)
		}
		return "worker-panic"
	}
	return "aborted"
}

// Sweep reclaims every object the cycle left unmarked. It may run while
// mutators execute: unmarked objects are unreachable (the SATB argument
// above), the probes and frees go through atomic liveness words and the
// shard locks, and anything allocated meanwhile is born black under the
// still-armed alloc-mark epoch, so the sweeper cannot touch it. OnFree
// callbacks (finalizers) are replayed serially on the calling goroutine,
// outside any pause.
func (cm *ConcurrentMark) Sweep() {
	sweepStart := time.Now()
	cm.sw = cm.c.sweep(cm.plan)
	cm.res.SweepDuration = time.Since(sweepStart)
}

// Finish completes the cycle inside the closing pause: generational
// promotion, result assembly, and observability. After it returns the
// caller disarms black allocation and publishes the Result.
func (cm *ConcurrentMark) Finish() Result {
	c := cm.c
	cm.res.Candidates = len(cm.tr.candidates)
	cm.res.PrunedRefs = int(cm.tr.prunedRefs)
	cm.res.BytesFreed = cm.sw.bytesFreed
	cm.res.ObjectsFreed = cm.sw.objectsFreed
	cm.res.BytesLive = cm.sw.bytesLive
	cm.res.ObjectsLive = cm.sw.objectsLive
	cm.res.MaxStale = cm.sw.maxStale
	c.promoteSurvivors()
	cm.res.Duration = time.Since(cm.start)
	c.observeCycle(cm.traceBase, &cm.res)
	return cm.res
}
