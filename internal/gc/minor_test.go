package gc

import (
	"testing"

	"leakpruning/internal/heap"
)

func newGenHeap(t *testing.T) *testHeap {
	t.Helper()
	th := newTestHeap(t)
	th.h.EnableGenerations()
	return th
}

func TestMinorFreesUnreachableYoung(t *testing.T) {
	th := newGenHeap(t)
	node := th.class(t, "Node", 1, 0)
	live := th.alloc(t, node)
	dead := th.alloc(t, node)
	th.roots.refs = []heap.Ref{live}

	col := th.collector(1)
	res := col.CollectMinor(nil, nil)
	if res.YoungScanned != 2 || res.Promoted != 1 || res.ObjectsFreed != 1 {
		t.Fatalf("minor result %+v", res)
	}
	if th.alive(dead) {
		t.Fatal("unreachable young object survived the minor collection")
	}
	if !th.alive(live) || th.h.Get(live).IsYoung() {
		t.Fatal("survivor must be alive and promoted")
	}
	if col.MinorIndex() != 1 {
		t.Fatalf("MinorIndex = %d", col.MinorIndex())
	}
	// The staleness clock must NOT advance on minor collections.
	if col.Index() != 0 {
		t.Fatal("minor collection advanced the full-heap index")
	}
}

func TestMinorAssumesOldLive(t *testing.T) {
	th := newGenHeap(t)
	node := th.class(t, "Node", 1, 0)
	old := th.alloc(t, node)
	th.h.Get(old).Promote()
	th.h.ResetYoung()
	// No roots at all: the old object still survives a minor collection.
	col := th.collector(1)
	col.CollectMinor(nil, nil)
	if !th.alive(old) {
		t.Fatal("minor collection freed an old object")
	}
	// A full collection does reclaim it.
	col.Collect(Plan{Mode: ModeNormal})
	if th.alive(old) {
		t.Fatal("full collection missed the unreachable old object")
	}
}

func TestMinorRemsetKeepsOldToYoungAlive(t *testing.T) {
	th := newGenHeap(t)
	node := th.class(t, "Node", 1, 0)
	old := th.alloc(t, node)
	th.h.Get(old).Promote()
	th.h.ResetYoung()

	young := th.alloc(t, node)
	th.link(old, 0, young)
	// Without the remembered set, the young object would look unreachable
	// (no roots reference it, and old objects are not scanned).
	col := th.collector(1)
	res := col.CollectMinor([]heap.ObjectID{old.ID()}, nil)
	if res.ObjectsFreed != 0 || res.Promoted != 1 {
		t.Fatalf("minor result %+v", res)
	}
	if !th.alive(young) {
		t.Fatal("remset-reachable young object was freed")
	}
}

func TestMinorWithoutRemsetDropsOldToYoung(t *testing.T) {
	// The converse of the test above: this documents why the write barrier
	// is required — the collector itself offers no safety net.
	th := newGenHeap(t)
	node := th.class(t, "Node", 1, 0)
	old := th.alloc(t, node)
	th.h.Get(old).Promote()
	th.h.ResetYoung()
	young := th.alloc(t, node)
	th.link(old, 0, young)
	th.collector(1).CollectMinor(nil, nil)
	if th.alive(young) {
		t.Fatal("expected the unremembered young object to be (wrongly) freed")
	}
}

func TestMinorTracesYoungClosure(t *testing.T) {
	th := newGenHeap(t)
	node := th.class(t, "Node", 1, 0)
	a := th.alloc(t, node)
	b := th.alloc(t, node)
	c := th.alloc(t, node)
	th.link(a, 0, b)
	th.link(b, 0, c)
	th.roots.refs = []heap.Ref{a}
	res := th.collector(1).CollectMinor(nil, nil)
	if res.Promoted != 3 || res.ObjectsFreed != 0 {
		t.Fatalf("minor result %+v", res)
	}
}

func TestMinorRunsFinalizers(t *testing.T) {
	th := newGenHeap(t)
	node := th.class(t, "Node", 0, 32)
	th.alloc(t, node) // unreachable
	var freed int
	th.collector(1).CollectMinor(nil, func(heap.ObjectID, heap.ClassID, uint64) { freed++ })
	if freed != 1 {
		t.Fatalf("finalizer hook ran %d times", freed)
	}
}

func TestFullCollectionPromotesSurvivors(t *testing.T) {
	th := newGenHeap(t)
	node := th.class(t, "Node", 1, 0)
	a := th.alloc(t, node)
	th.roots.refs = []heap.Ref{a}
	th.collector(1).Collect(Plan{Mode: ModeNormal})
	if th.h.Get(a).IsYoung() {
		t.Fatal("full collection must promote survivors")
	}
	if len(th.h.YoungIDs()) != 0 {
		t.Fatal("nursery list not reset by the full collection")
	}
}
