package gc

import (
	"testing"

	"leakpruning/internal/heap"
)

// rootSet is a simple RootVisitor over a slice of refs.
type rootSet struct {
	refs []heap.Ref
}

func (r *rootSet) VisitRoots(fn func(heap.Ref)) {
	for _, ref := range r.refs {
		fn(ref)
	}
}

type testHeap struct {
	reg   *heap.Registry
	h     *heap.Heap
	roots *rootSet
}

func newTestHeap(t *testing.T) *testHeap {
	t.Helper()
	reg := heap.NewRegistry()
	return &testHeap{reg: reg, h: heap.New(reg, 16<<20), roots: &rootSet{}}
}

func (th *testHeap) class(t *testing.T, name string, slots, scalar int) heap.ClassID {
	t.Helper()
	return th.reg.Define(name, slots, scalar)
}

func (th *testHeap) alloc(t *testing.T, cls heap.ClassID) heap.Ref {
	t.Helper()
	r, err := th.h.Allocate(cls)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (th *testHeap) link(src heap.Ref, slot int, tgt heap.Ref) {
	th.h.Get(src).SetRef(slot, tgt)
}

func (th *testHeap) collector(workers int) *Collector {
	return NewCollector(th.h, th.roots, workers)
}

func (th *testHeap) alive(r heap.Ref) bool {
	_, ok := th.h.Lookup(r.ID())
	return ok
}

func TestMarkSweepRetainsReachable(t *testing.T) {
	th := newTestHeap(t)
	node := th.class(t, "Node", 1, 0)
	a := th.alloc(t, node)
	b := th.alloc(t, node)
	c := th.alloc(t, node)
	dead := th.alloc(t, node)
	th.link(a, 0, b)
	th.link(b, 0, c)
	th.roots.refs = []heap.Ref{a}

	res := th.collector(1).Collect(Plan{Mode: ModeNormal})
	if res.ObjectsFreed != 1 || res.ObjectsLive != 3 {
		t.Fatalf("freed %d live %d", res.ObjectsFreed, res.ObjectsLive)
	}
	if th.alive(dead) {
		t.Fatal("unreachable object survived")
	}
	for _, r := range []heap.Ref{a, b, c} {
		if !th.alive(r) {
			t.Fatalf("reachable %v was freed", r)
		}
	}
}

func TestMarkSweepFreesUnreachableCycle(t *testing.T) {
	th := newTestHeap(t)
	node := th.class(t, "Node", 1, 0)
	a := th.alloc(t, node)
	b := th.alloc(t, node)
	th.link(a, 0, b)
	th.link(b, 0, a) // cycle, no roots
	res := th.collector(1).Collect(Plan{Mode: ModeNormal})
	if res.ObjectsFreed != 2 {
		t.Fatalf("cycle not collected: freed %d", res.ObjectsFreed)
	}
}

func TestTagRefsArmsBarrier(t *testing.T) {
	th := newTestHeap(t)
	node := th.class(t, "Node", 1, 0)
	a := th.alloc(t, node)
	b := th.alloc(t, node)
	th.link(a, 0, b)
	th.roots.refs = []heap.Ref{a}

	th.collector(1).Collect(Plan{Mode: ModeNormal, TagRefs: true})
	if !th.h.Get(a).Ref(0).IsStaleTagged() {
		t.Fatal("traced reference must carry the stale-check tag")
	}
	// Without TagRefs the tag is left alone (INACTIVE state).
	th2 := newTestHeap(t)
	node2 := th2.class(t, "Node", 1, 0)
	a2 := th2.alloc(t, node2)
	b2 := th2.alloc(t, node2)
	th2.link(a2, 0, b2)
	th2.roots.refs = []heap.Ref{a2}
	th2.collector(1).Collect(Plan{Mode: ModeNormal})
	if th2.h.Get(a2).Ref(0).IsStaleTagged() {
		t.Fatal("INACTIVE collection must not tag references")
	}
}

func TestAgingOnlyWhenRequested(t *testing.T) {
	th := newTestHeap(t)
	node := th.class(t, "Node", 0, 0)
	a := th.alloc(t, node)
	th.roots.refs = []heap.Ref{a}
	col := th.collector(1)

	col.Collect(Plan{Mode: ModeNormal}) // no aging
	if th.h.Get(a).Stale() != 0 {
		t.Fatal("stale counter aged without AgeStaleness")
	}
	col.Collect(Plan{Mode: ModeNormal, AgeStaleness: true}) // index 2: 0->1
	if th.h.Get(a).Stale() != 1 {
		t.Fatalf("stale = %d after first aged GC", th.h.Get(a).Stale())
	}
}

func TestPoisonedRefsNeverTraced(t *testing.T) {
	th := newTestHeap(t)
	node := th.class(t, "Node", 1, 0)
	a := th.alloc(t, node)
	b := th.alloc(t, node)
	th.h.Get(a).SetRef(0, b.WithPoison())
	th.roots.refs = []heap.Ref{a}
	res := th.collector(1).Collect(Plan{Mode: ModeNormal})
	if res.ObjectsFreed != 1 {
		t.Fatal("target of a poisoned reference must be reclaimed")
	}
	if th.alive(b) {
		t.Fatal("poisoned target survived")
	}
	// The poisoned slot itself is untouched.
	if !th.h.Get(a).Ref(0).IsPoisoned() {
		t.Fatal("poison bit lost during collection")
	}
}

func TestOnFreeHook(t *testing.T) {
	th := newTestHeap(t)
	node := th.class(t, "Node", 0, 64)
	dead := th.alloc(t, node)
	var freed []heap.ObjectID
	th.collector(1).Collect(Plan{
		Mode:   ModeNormal,
		OnFree: func(id heap.ObjectID, class heap.ClassID, size uint64) { freed = append(freed, id) },
	})
	if len(freed) != 1 || freed[0] != dead.ID() {
		t.Fatalf("OnFree got %v", freed)
	}
}

func TestParallelTraceEquivalence(t *testing.T) {
	build := func(th *testHeap) {
		node := th.class(t, "Node", 2, 32)
		// A binary tree of depth 10 plus some garbage.
		var grow func(depth int) heap.Ref
		grow = func(depth int) heap.Ref {
			r := th.alloc(t, node)
			if depth > 0 {
				th.link(r, 0, grow(depth-1))
				th.link(r, 1, grow(depth-1))
			}
			return r
		}
		root := grow(10)
		for i := 0; i < 500; i++ {
			th.alloc(t, node) // garbage
		}
		th.roots.refs = []heap.Ref{root}
	}

	th1 := newTestHeap(t)
	build(th1)
	res1 := th1.collector(1).Collect(Plan{Mode: ModeNormal})

	th8 := newTestHeap(t)
	build(th8)
	res8 := th8.collector(8).Collect(Plan{Mode: ModeNormal})

	if res1.ObjectsLive != res8.ObjectsLive || res1.BytesLive != res8.BytesLive {
		t.Fatalf("parallel trace diverges: serial %d/%d, parallel %d/%d",
			res1.ObjectsLive, res1.BytesLive, res8.ObjectsLive, res8.BytesLive)
	}
	if res1.ObjectsFreed != res8.ObjectsFreed {
		t.Fatalf("freed counts diverge: %d vs %d", res1.ObjectsFreed, res8.ObjectsFreed)
	}
}

func TestSelectModeCandidatesAndStaleClosure(t *testing.T) {
	th := newTestHeap(t)
	holder := th.class(t, "Holder", 1, 0)
	leaf := th.class(t, "Leaf", 0, 100)

	h1 := th.alloc(t, holder)
	l1 := th.alloc(t, leaf)
	th.link(h1, 0, l1)
	th.h.Get(l1).SetStale(3) // stale target: candidate
	th.roots.refs = []heap.Ref{h1}

	var got []struct {
		src, tgt heap.ClassID
		bytes    uint64
	}
	res := th.collector(1).Collect(Plan{
		Mode:      ModeSelect,
		Candidate: func(src, tgt heap.ClassID, stale uint8) bool { return stale >= 2 },
		AccountStaleBytes: func(src, tgt heap.ClassID, bytes uint64) {
			got = append(got, struct {
				src, tgt heap.ClassID
				bytes    uint64
			}{src, tgt, bytes})
		},
	})
	if res.Candidates != 1 {
		t.Fatalf("candidates = %d", res.Candidates)
	}
	if len(got) != 1 || got[0].src != holder || got[0].tgt != leaf {
		t.Fatalf("stale closure accounting: %+v", got)
	}
	if got[0].bytes != th.h.Get(l1).Size() {
		t.Fatalf("bytes = %d, want %d", got[0].bytes, th.h.Get(l1).Size())
	}
	// The deferred candidate is still retained (SELECT never reclaims).
	if !th.alive(l1) {
		t.Fatal("SELECT collection reclaimed a candidate target")
	}
}

func TestPruneModePoisonsAndReclaims(t *testing.T) {
	th := newTestHeap(t)
	holder := th.class(t, "Holder", 1, 0)
	leaf := th.class(t, "Leaf", 1, 100)

	h1 := th.alloc(t, holder)
	l1 := th.alloc(t, leaf)
	l2 := th.alloc(t, leaf) // reachable only through l1
	th.link(h1, 0, l1)
	th.link(l1, 0, l2)
	th.h.Get(l1).SetStale(3)
	th.roots.refs = []heap.Ref{h1}

	pruned := 0
	res := th.collector(1).Collect(Plan{
		Mode: ModePrune,
		ShouldPrune: func(src, tgt heap.ClassID, stale uint8) bool {
			return src == holder && tgt == leaf && stale >= 2
		},
		OnPrune: func(srcID heap.ObjectID, slot int, src, tgt heap.ClassID) { pruned++ },
	})
	if res.PrunedRefs != 1 || pruned != 1 {
		t.Fatalf("pruned %d refs (hook %d)", res.PrunedRefs, pruned)
	}
	if th.alive(l1) || th.alive(l2) {
		t.Fatal("pruned subtree must be reclaimed")
	}
	slot := th.h.Get(h1).Ref(0)
	if !slot.IsPoisoned() || !slot.IsStaleTagged() {
		t.Fatalf("pruned slot = %v, want both low bits set (§4.3)", slot)
	}
	if slot.ID() != l1.ID() {
		t.Fatal("poisoning must preserve the reference's object ID")
	}
}
