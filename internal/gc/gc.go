// Package gc implements the stop-the-world parallel tracing collector the
// leak-pruning runtime piggybacks on. It is modelled on MMTk's parallel
// mark-sweep (§5): worker threads exchange batches of work through
// per-worker Chase–Lev work-stealing deques (see deque.go) and keep local
// mark stacks; objects are claimed with a compare-and-swap on their mark
// word so no object is scanned twice. Sweeping is sharded the same way,
// with each worker freeing the garbage it finds through the heap's
// shard-safe FreeBatch.
//
// Leak pruning divides the regular transitive closure into the in-use
// closure and the stale closure (§4.2) and, in the PRUNE state, poisons
// selected references instead of tracing them (§4.3). The collector exposes
// those behaviours through a per-cycle Plan of callbacks so the pruning
// controller (package core) owns all policy and the collector stays
// mechanism-only.
package gc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/heap"
	"leakpruning/internal/obs"
)

// Mode selects the closure structure for one collection cycle.
type Mode int

const (
	// ModeNormal is a regular full-heap collection: one transitive closure.
	ModeNormal Mode = iota
	// ModeSelect runs the SELECT state's two closures: the in-use closure
	// defers candidate references to a queue, then the stale closure traces
	// from each candidate, attributing reachable bytes to its edge type.
	ModeSelect
	// ModePrune runs only the in-use closure and poisons references the
	// plan selects instead of tracing them; sweep then reclaims everything
	// that was reachable only through poisoned references.
	ModePrune
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeSelect:
		return "select"
	case ModePrune:
		return "prune"
	}
	return "unknown"
}

// Plan configures one collection cycle. Candidate, ShouldPrune, OnPrune,
// and AccountStaleBytes may be invoked concurrently from tracer workers
// and must be safe for that; StaleEdge and OnFree are buffered by the
// workers and delivered serially (see their comments).
type Plan struct {
	Mode Mode

	// TagRefs makes the tracer set the stale-check tag (heap.TagStale) on
	// every object-to-object reference it scans, arming the read barrier's
	// cold path (§4.1). Enabled from the OBSERVE state onward.
	TagRefs bool

	// AgeStaleness makes the sweep age every live object's stale counter
	// using the logarithmic rule (§4.1). Enabled from OBSERVE onward.
	AgeStaleness bool

	// Candidate reports whether a src→tgt reference whose target has the
	// given stale counter should be deferred to the stale closure
	// (ModeSelect only; nil means no candidates are taken).
	Candidate func(src, tgt heap.ClassID, stale uint8) bool

	// StaleEdge is called for every reference the in-use closure traced
	// whose target has stale counter >= 2, with the target's own size. The
	// individual-references baseline (§6.1) accounts bytes here instead of
	// running the stale closure. Workers buffer these observations and the
	// tracer replays them serially after the closure completes, so the
	// callback needs no locking.
	StaleEdge func(src, tgt heap.ClassID, stale uint8, tgtBytes uint64)

	// AccountStaleBytes receives, for each candidate root, the bytes the
	// stale closure could attribute to it (objects not already reached by
	// the in-use closure). ModeSelect only.
	AccountStaleBytes func(src, tgt heap.ClassID, bytes uint64)

	// ShouldPrune decides whether to poison a src→tgt reference instead of
	// tracing it (ModePrune only).
	ShouldPrune func(src, tgt heap.ClassID, stale uint8) bool

	// OnPrune is called once per poisoned reference with the source object,
	// its slot, and the edge classes (diagnostics and precise trap
	// messages).
	OnPrune func(srcID heap.ObjectID, slot int, src, tgt heap.ClassID)

	// OnFree is called serially, once per object the sweep reclaims, after
	// all sweep workers have finished freeing (the VM uses this to run
	// finalizers, §2, which must never observe concurrency). The object's
	// identity, class, and size are captured at scan time, before the slot
	// is recycled.
	OnFree func(id heap.ObjectID, class heap.ClassID, size uint64)
}

// Result summarizes one collection cycle.
type Result struct {
	Mode  Mode
	Epoch uint32
	// Index is the 1-based count of full-heap collections performed by this
	// collector; it is the staleness clock.
	Index uint64

	BytesLive    uint64
	ObjectsLive  uint64
	BytesFreed   uint64
	ObjectsFreed uint64

	// Candidates is the number of references deferred to the stale closure.
	Candidates int
	// StaleBytes is the total bytes the stale closure attributed.
	StaleBytes uint64
	// PrunedRefs is the number of references poisoned this cycle.
	PrunedRefs int
	// MaxStale is the highest stale counter among live objects after aging.
	MaxStale uint8

	Duration      time.Duration
	MarkDuration  time.Duration
	StaleDuration time.Duration
	SweepDuration time.Duration
	// RemarkDuration is the final-remark pause's closure time (concurrent
	// cycles only).
	RemarkDuration time.Duration

	// Concurrent reports that the cycle's closure ran mostly-concurrently
	// with mutators (snapshot roots → concurrent mark → final remark)
	// instead of inside one stop-the-world section.
	Concurrent bool

	// SnapshotDrift counts candidate edges (SELECT) or deferred prune
	// records (PRUNE) that a concurrent cycle's final remark demoted
	// because a mutator invalidated the frozen staleness snapshot for that
	// edge in the window: the slot's value changed (use untagged it, or a
	// store replaced it) or the target's stale counter dropped below the
	// frozen threshold. Demotion is per-edge — the cycle completes without
	// degrading. Always 0 for STW cycles and for deterministic
	// single-threaded runs (no mutator runs during the concurrent phase).
	SnapshotDrift int

	// Degraded reports that the parallel closure was abandoned (worker
	// panic or watchdog deadline) and the collection completed via the
	// serial fallback tracer. The live set is identical to a fault-free
	// run; only the trace cost differs.
	Degraded bool
	// DegradeCause names why ("worker-panic", "watchdog", or for concurrent
	// cycles "satb-drop"); empty when not degraded.
	DegradeCause string
}

// RootVisitor is implemented by the VM to expose its roots (thread stacks,
// globals, registers). The collector calls fn with each root reference; tag
// bits on roots are ignored (root slots are never tagged: the barrier only
// instruments heap loads).
type RootVisitor interface {
	VisitRoots(fn func(heap.Ref))
}

// Collector owns the epoch and GC-count state for one heap.
type Collector struct {
	heap    *heap.Heap
	roots   RootVisitor
	workers int

	epoch      uint32
	index      uint64
	minorIndex uint64

	// inj injects tracer faults into parallel closures (nil = disabled).
	inj *faultinject.Injector
	// watchdog is the STW deadline for the parallel closure; when it
	// elapses, the trace is aborted and re-run serially instead of hanging
	// (0 = no deadline).
	watchdog time.Duration

	// Degradation counters (see the accessors for semantics).
	degradedTraces  atomic.Uint64
	watchdogAborts  atomic.Uint64
	recoveredPanics atomic.Uint64
	lastPanicMsg    atomic.Value // string

	// Observability handles (all nil when disabled; every method on them
	// is nil-safe, so call sites stay unconditional). Phase spans reuse the
	// durations Collect already measures — tracing adds no extra time.Now
	// on the disabled path.
	obsTrace  *obs.Tracer
	mMark     *obs.Histogram
	mStale    *obs.Histogram
	mSweep    *obs.Histogram
	cCycles   [3]*obs.Counter
	cDegraded *obs.Counter
}

// NewCollector creates a collector with the given parallelism (values < 1
// mean 1). The zero epoch never marks anything, so freshly allocated
// objects are unmarked until their first collection.
func NewCollector(h *heap.Heap, roots RootVisitor, workers int) *Collector {
	if workers < 1 {
		workers = 1
	}
	return &Collector{heap: h, roots: roots, workers: workers}
}

// Workers returns the configured tracer parallelism.
func (c *Collector) Workers() int { return c.workers }

// Index returns the number of full-heap collections performed so far.
func (c *Collector) Index() uint64 { return c.index }

// Epoch returns the mark epoch of the most recent collection. The invariant
// auditor uses it: immediately after a collection, every live object's mark
// word holds exactly this epoch.
func (c *Collector) Epoch() uint32 { return c.epoch }

// SetFaultInjector arms fault injection inside parallel trace closures
// (worker panics, watchdog trips). The serial fallback is never injected.
func (c *Collector) SetFaultInjector(inj *faultinject.Injector) { c.inj = inj }

// SetWatchdog sets the stop-the-world deadline for parallel closures: if a
// parallel trace has not terminated within d, it is aborted and the
// collection re-runs with the serial tracer instead of hanging the world
// (0 disables the deadline).
func (c *Collector) SetWatchdog(d time.Duration) { c.watchdog = d }

// SetObs attaches the observability layer: per-phase duration histograms,
// per-mode cycle counters, and Chrome trace spans for mark/stale/sweep
// (plus a prune overlay span in ModePrune). A nil o leaves everything
// disabled.
func (c *Collector) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	c.obsTrace = o.Tracer()
	reg := o.Registry()
	c.mMark = reg.NewHistogram("lp_gc_mark_ns", "in-use closure duration per collection", obs.DurationBucketsNs)
	c.mStale = reg.NewHistogram("lp_gc_stale_ns", "stale closure duration per SELECT collection", obs.DurationBucketsNs)
	c.mSweep = reg.NewHistogram("lp_gc_sweep_ns", "sweep phase duration per collection", obs.DurationBucketsNs)
	for m := ModeNormal; m <= ModePrune; m++ {
		c.cCycles[m] = reg.NewCounter("lp_gc_cycles_total", "full-heap collections by mode", obs.L("mode", m.String()))
	}
	c.cDegraded = reg.NewCounter("lp_gc_degraded_total", "collections completed via the serial fallback tracer")
}

// observeCycle records one finished collection into the metrics registry
// and, when tracing, emits the phase spans. base is the tracer clock at
// Collect entry (0 when tracing is off). Every call below is nil-safe, so
// with observability disabled this reduces to a handful of nil checks on
// the STW path.
func (c *Collector) observeCycle(base int64, res *Result) {
	if int(res.Mode) < len(c.cCycles) {
		c.cCycles[res.Mode].Inc()
	}
	if res.Degraded {
		c.cDegraded.Inc()
	}
	c.mMark.Observe(uint64(res.MarkDuration))
	if res.Mode == ModeSelect {
		c.mStale.Observe(uint64(res.StaleDuration))
	}
	c.mSweep.Observe(uint64(res.SweepDuration))

	tr := c.obsTrace
	if tr == nil {
		return
	}
	gcArg := obs.A("gc", int64(res.Index))
	ts := base
	mark := res.MarkDuration.Nanoseconds()
	markName := "gc.mark"
	if res.Concurrent {
		// Concurrent cycles get their own span name: this phase ran outside
		// the pause, so tooling must not read it as stop-the-world time.
		markName = "gc.mark.concurrent"
	}
	tr.Emit(obs.Span(markName, "gc", ts, mark, 0, gcArg, obs.AS("mode", res.Mode.String())))
	if res.Mode == ModePrune {
		// Pruning happens inside the in-use closure, so the prune span
		// overlays the mark span.
		tr.Emit(obs.Span("gc.prune", "gc", ts, mark, 0, gcArg, obs.A("pruned_refs", int64(res.PrunedRefs))))
	}
	ts += mark
	if res.Concurrent {
		remark := res.RemarkDuration.Nanoseconds()
		tr.Emit(obs.Span("gc.remark", "gc", ts, remark, 0, gcArg, obs.AS("degraded", fmt.Sprint(res.Degraded))))
		ts += remark
	}
	if res.Mode == ModeSelect {
		stale := res.StaleDuration.Nanoseconds()
		tr.Emit(obs.Span("gc.stale", "gc", ts, stale, 0, gcArg,
			obs.A("candidates", int64(res.Candidates)), obs.A("stale_bytes", int64(res.StaleBytes))))
		ts += stale
	}
	sweep := res.SweepDuration.Nanoseconds()
	tr.Emit(obs.Span("gc.sweep", "gc", ts, sweep, 0, gcArg, obs.A("freed_bytes", int64(res.BytesFreed))))
	if res.Degraded {
		tr.Emit(obs.Instant("gc.degraded", "gc", base, 0, obs.AS("cause", res.DegradeCause)))
	}
}

// DegradedTraces counts collections that completed via the serial fallback
// tracer after the parallel closure was abandoned (for any cause).
func (c *Collector) DegradedTraces() uint64 { return c.degradedTraces.Load() }

// WatchdogAborts counts parallel closures abandoned because the STW
// watchdog deadline fired (a subset of DegradedTraces).
func (c *Collector) WatchdogAborts() uint64 { return c.watchdogAborts.Load() }

// RecoveredPanics counts trace-worker panics recovered at the worker
// goroutine boundary (a subset of DegradedTraces).
func (c *Collector) RecoveredPanics() uint64 { return c.recoveredPanics.Load() }

// LastTracePanic returns the most recent recovered worker panic message, or
// "" if none has occurred.
func (c *Collector) LastTracePanic() string {
	if v := c.lastPanicMsg.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// runClosure performs one transitive closure attempt with the given
// parallelism: roots are re-scanned (the world is stopped, so the root set
// is stable across attempts), the closure runs to termination or abort, and
// the tracer is returned along with its abort cause (abortNone on success).
func (c *Collector) runClosure(plan Plan, workers int) (*tracer, uint32) {
	tr := newTracer(c.heap, c.epoch, plan, workers)
	if workers > 1 {
		tr.inj = c.inj
	}
	c.roots.VisitRoots(func(r heap.Ref) {
		if r.IsNull() {
			return
		}
		tr.markRoot(r.Untagged())
	})
	var timer *time.Timer
	if workers > 1 && c.watchdog > 0 {
		timer = time.AfterFunc(c.watchdog, func() { tr.abort(abortWatchdog) })
	}
	tr.run()
	if timer != nil {
		timer.Stop()
	}
	return tr, tr.abortWhy.Load()
}

// Collect runs one stop-the-world collection cycle under the given plan.
// The caller must have stopped all mutator threads — under the VM's
// default safepoint protocol, by completing the ragged barrier (every
// registered thread observed at a safepoint with the stop flag raised);
// under the legacy RWMutex protocol, by holding the world write lock.
//
// Collect never lets a parallel-tracer fault escape: a worker panic or a
// watchdog-aborted closure is recovered, the partial marks are invalidated
// by moving to a fresh epoch, and the closure transparently re-runs with
// the serial tracer. The resulting live set is byte-identical to a
// fault-free run; Result.Degraded records that the fallback was taken.
func (c *Collector) Collect(plan Plan) Result {
	start := time.Now()
	var traceBase int64
	if c.obsTrace != nil {
		traceBase = c.obsTrace.Now()
	}
	c.epoch++
	c.index++
	res := Result{Mode: plan.Mode, Epoch: c.epoch, Index: c.index}

	// Phase 1: the (in-use) transitive closure from the roots.
	markStart := time.Now()
	tr, cause := c.runClosure(plan, c.workers)
	if cause != abortNone {
		c.degradedTraces.Add(1)
		switch cause {
		case abortPanic:
			c.recoveredPanics.Add(1)
			if msg := tr.lastPanic.Load(); msg != nil {
				c.lastPanicMsg.Store(msg)
			}
			res.DegradeCause = "worker-panic"
		case abortWatchdog:
			c.watchdogAborts.Add(1)
			res.DegradeCause = "watchdog"
		}
		res.Degraded = true
		// Invalidate the aborted closure's partial marks: epochs only move
		// forward, so bumping the epoch makes them unreachable history.
		// References the aborted closure already poisoned stay poisoned —
		// the policy would have poisoned them anyway and the re-run skips
		// them — so their count is carried over.
		carriedPruned := tr.prunedRefs
		c.epoch++
		res.Epoch = c.epoch
		tr, _ = c.runClosure(plan, 1)
		tr.prunedRefs += carriedPruned
	}
	res.MarkDuration = time.Since(markStart)

	// Phase 2 (SELECT only): the stale closure from the candidate queue.
	if plan.Mode == ModeSelect && len(tr.candidates) > 0 {
		staleStart := time.Now()
		tr.staleClosure()
		res.StaleBytes = tr.accountStale()
		res.StaleDuration = time.Since(staleStart)
	}
	res.Candidates = len(tr.candidates)
	res.PrunedRefs = int(tr.prunedRefs)

	// Phase 3: sweep, staleness aging, and accounting.
	sweepStart := time.Now()
	sw := c.sweep(plan)
	res.SweepDuration = time.Since(sweepStart)
	res.BytesFreed = sw.bytesFreed
	res.ObjectsFreed = sw.objectsFreed
	res.BytesLive = sw.bytesLive
	res.ObjectsLive = sw.objectsLive
	res.MaxStale = sw.maxStale

	c.promoteSurvivors()

	res.Duration = time.Since(start)
	c.observeCycle(traceBase, &res)
	return res
}

// promoteSurvivors is the generational bookkeeping run after a full-heap
// collection: everything that survived is old now. Call stop-the-world.
func (c *Collector) promoteSurvivors() {
	for _, id := range c.heap.YoungIDs() {
		if obj, ok := c.heap.Lookup(id); ok {
			obj.Promote()
		}
	}
	c.heap.ResetYoung()
}

type sweepResult struct {
	bytesLive, objectsLive   uint64
	bytesFreed, objectsFreed uint64
	maxStale                 uint8
}

// freeRec captures a reclaimed object's identity for the serial finalizer
// pass, recorded at scan time before the slot is recycled.
type freeRec struct {
	id    heap.ObjectID
	class heap.ClassID
	size  uint64
}

// sweepFreeBatch bounds how many dead IDs a sweep worker accumulates
// before handing them to the (shard-safe) FreeBatch, keeping memory flat
// and spreading shard-lock acquisitions.
const sweepFreeBatch = 1024

// sweep reclaims every unmarked object and ages live objects' stale
// counters when the plan asks for it. Both the scan and the freeing are
// sharded across the tracer's workers: each worker frees the dead lists it
// finds through the heap's shard-safe FreeBatch. Only the finalizer hook
// runs serially afterwards, on identities captured during the scan, so
// finalizers never observe concurrency.
func (c *Collector) sweep(plan Plan) sweepResult {
	maxID := c.heap.MaxID()
	workers := c.workers
	if span := int(maxID); workers > 1 && span < 4096 {
		workers = 1 // sharding overhead dominates on tiny heaps
	}

	results := make([]sweepResult, workers)
	finals := make([][]freeRec, workers)
	// In a prune cycle every reclaimed object was held only through
	// poisoned or dead references; the heap's prune histograms sample size
	// and staleness age at exactly this point, before FreeBatch recycles
	// the slot.
	pruneMode := plan.Mode == ModePrune
	scan := func(w int) {
		sr := &results[w]
		lo := heap.ObjectID(1 + (uint64(w)*uint64(maxID-1))/uint64(workers))
		hi := heap.ObjectID(1 + (uint64(w+1)*uint64(maxID-1))/uint64(workers))
		dead := make([]heap.ObjectID, 0, sweepFreeBatch)
		for id := lo; id < hi; id++ {
			obj, ok := c.heap.Lookup(id)
			if !ok {
				continue
			}
			if obj.Marked(c.epoch) {
				sr.bytesLive += obj.Size()
				sr.objectsLive++
				s := obj.Stale()
				if plan.AgeStaleness {
					s = obj.AgeStale(c.index)
				}
				if s > sr.maxStale {
					sr.maxStale = s
				}
				continue
			}
			sr.bytesFreed += obj.Size()
			sr.objectsFreed++
			if pruneMode {
				c.heap.RecordPrunedFree(obj.Size(), obj.Stale())
			}
			if plan.OnFree != nil {
				finals[w] = append(finals[w], freeRec{id: id, class: obj.Class(), size: obj.Size()})
			}
			dead = append(dead, id)
			if len(dead) >= sweepFreeBatch {
				c.heap.FreeBatch(dead)
				dead = dead[:0]
			}
		}
		c.heap.FreeBatch(dead)
	}
	if workers == 1 {
		scan(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				scan(w)
			}(w)
		}
		wg.Wait()
	}

	var sr sweepResult
	for w := range results {
		sr.bytesLive += results[w].bytesLive
		sr.objectsLive += results[w].objectsLive
		sr.bytesFreed += results[w].bytesFreed
		sr.objectsFreed += results[w].objectsFreed
		if results[w].maxStale > sr.maxStale {
			sr.maxStale = results[w].maxStale
		}
	}
	if plan.OnFree != nil {
		for _, recs := range finals {
			for _, f := range recs {
				plan.OnFree(f.id, f.class, f.size)
			}
		}
	}
	return sr
}
