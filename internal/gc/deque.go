package gc

import (
	"sync/atomic"

	"leakpruning/internal/heap"
)

// workBatch is the unit of work exchanged between tracer workers: a batch
// of marked object IDs awaiting scanning. Batching keeps the §4.5
// shared-pool semantics (workers donate and acquire whole batches, not
// single objects) while the deque below makes the exchange lock-free.
type workBatch struct {
	ids []heap.ObjectID
}

// wsDeque is a Chase–Lev work-stealing deque of work batches. The owning
// worker pushes and pops at the bottom without locks; other workers steal
// from the top with a single CAS. The ring buffer grows on the owner's
// side only and is published through an atomic pointer, so thieves always
// see a consistent (possibly stale, then CAS-rejected) view.
//
// Go's sync/atomic operations are sequentially consistent, which satisfies
// the fences the original algorithm needs: pop's bottom store is visible
// before its top load, and steal's element read happens before its CAS.
type wsDeque struct {
	bottom atomic.Int64
	top    atomic.Int64
	ring   atomic.Pointer[dequeRing]
}

type dequeRing struct {
	mask  int64
	slots []atomic.Pointer[workBatch]
}

const initialDequeCap = 64 // must be a power of two

func newRing(capacity int64) *dequeRing {
	return &dequeRing{mask: capacity - 1, slots: make([]atomic.Pointer[workBatch], capacity)}
}

func (d *wsDeque) init() {
	d.ring.Store(newRing(initialDequeCap))
}

// push appends a batch at the bottom. Only the owning worker may call it.
func (d *wsDeque) push(b *workBatch) {
	bot := d.bottom.Load()
	top := d.top.Load()
	r := d.ring.Load()
	if bot-top >= int64(len(r.slots)) {
		r = d.grow(r, top, bot)
	}
	r.slots[bot&r.mask].Store(b)
	d.bottom.Store(bot + 1)
}

// grow doubles the ring, copying the live window. Owner only; thieves keep
// reading the old ring until they reload, which is safe because the old
// ring's live slots still hold the same batches.
func (d *wsDeque) grow(old *dequeRing, top, bot int64) *dequeRing {
	r := newRing(int64(len(old.slots)) * 2)
	for i := top; i < bot; i++ {
		r.slots[i&r.mask].Store(old.slots[i&old.mask].Load())
	}
	d.ring.Store(r)
	return r
}

// pop removes the most recently pushed batch (LIFO). Owner only. The
// only synchronization needed is for the final element, which a thief may
// be racing for: both sides resolve it with a CAS on top.
func (d *wsDeque) pop() *workBatch {
	bot := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(bot)
	top := d.top.Load()
	if top > bot {
		// Empty: restore bottom.
		d.bottom.Store(top)
		return nil
	}
	b := r.slots[bot&r.mask].Load()
	if bot > top {
		return b
	}
	// Last element: race thieves for it.
	if !d.top.CompareAndSwap(top, top+1) {
		b = nil // a thief got it
	}
	d.bottom.Store(top + 1)
	return b
}

// steal removes the oldest batch (FIFO end). Any worker may call it. A nil
// return means either the deque looked empty or the CAS lost a race — the
// caller treats both as "try elsewhere".
func (d *wsDeque) steal() *workBatch {
	top := d.top.Load()
	bot := d.bottom.Load()
	if top >= bot {
		return nil
	}
	r := d.ring.Load()
	b := r.slots[top&r.mask].Load()
	if !d.top.CompareAndSwap(top, top+1) {
		return nil
	}
	return b
}

// empty reports whether the deque has no batches. It is exact when the
// owner is quiescent, which is the only case termination detection relies
// on.
func (d *wsDeque) empty() bool {
	return d.top.Load() >= d.bottom.Load()
}
