package gc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/heap"
)

// candidate records one reference deferred by the in-use closure: the edge
// type and the (untagged) target reference that roots a stale data
// structure (§4.2), plus the slot it was found in and the exact reference
// value the slot is expected to hold — a concurrent cycle's final remark
// re-checks the slot against expect to detect mutator writes that
// invalidated the frozen candidate edge (drift demotion).
type candidate struct {
	src, tgt heap.ClassID
	ref      heap.Ref
	srcID    heap.ObjectID
	slot     int
	expect   heap.Ref
}

// pruneRec is one poisoning decision a concurrent ModePrune closure
// deferred to the final remark: poisoning under running mutators would be
// unsound (the decision could race a use that should have raised the
// bar), so the scan records the slot and the observed reference value and
// the remark pause re-verifies before poisoning. The deferred slot is
// left stale-tagged, so any mutator load in the window goes through the
// read barrier's cold path and changes the slot value — which the
// verification detects as drift and demotes instead of poisoning.
type pruneRec struct {
	srcID    heap.ObjectID
	slot     int
	src, tgt heap.ClassID
	expect   heap.Ref
}

// staleEdge is one buffered StaleEdge observation: workers record these
// locally during the in-use closure and the tracer replays them serially
// after run(), so the callback needs no locking.
type staleEdge struct {
	src, tgt heap.ClassID
	stale    uint8
	bytes    uint64
}

const (
	// batchSize is the number of object IDs moved between a worker's local
	// stack and its deque at a time.
	batchSize = 128
	// spillAt is the local stack depth beyond which a worker donates
	// batches to its deque so idle workers can steal them.
	spillAt = 4 * batchSize
)

// tracer runs one transitive closure with work stealing, mirroring MMTk's
// parallel tracing (§4.5) but replacing the mutex/condvar shared pool with
// per-worker Chase–Lev deques: owners push and pop their own deque without
// locks, idle workers steal batches with a CAS, and termination is
// detected with an atomic idle counter.
// Abort causes, recorded when a parallel closure is cut short. The
// collector maps them to its degradation counters and re-runs the closure
// with the serial tracer.
const (
	abortNone uint32 = iota
	// abortPanic: a trace worker panicked (injected or real) and was
	// recovered at its goroutine boundary.
	abortPanic
	// abortWatchdog: the STW watchdog deadline fired (or was injected)
	// before the parallel closure terminated.
	abortWatchdog
)

type tracer struct {
	heap  *heap.Heap
	epoch uint32
	plan  Plan

	// concurrent marks a closure that runs while mutators are live (the
	// mostly-concurrent cycles). It changes one thing: barrier
	// tagging must CAS instead of blind-store, because a plain SetRef could
	// overwrite a reference a mutator stored after the tracer loaded the
	// slot, silently resurrecting the old value.
	concurrent bool

	// deferOps marks the concurrent phase of a SELECT or PRUNE cycle:
	// ModePrune scans record pruneRecs instead of poisoning, because the
	// poison/keep decision must be verified against the frozen staleness
	// snapshot inside the final remark pause. The driver clears it before
	// the remark re-scan, restoring direct (STW-semantics) poisoning for
	// references discovered with the world stopped.
	deferOps bool

	workers []*traceWorker
	// idle counts workers that found no work anywhere. When it reaches
	// len(workers) with every deque empty, the closure is complete.
	idle atomic.Int32

	// aborted flips when the parallel closure must be abandoned (worker
	// panic or watchdog); workers poll it and drain out promptly. The
	// partial marks left behind are invalidated by the collector moving to
	// a fresh epoch before the serial re-run.
	aborted   atomic.Bool
	abortWhy  atomic.Uint32 // first abort cause wins (abortPanic/abortWatchdog)
	lastPanic atomic.Value  // string: the recovered panic, for diagnostics

	// inj injects worker faults; armed only while tracing in parallel (the
	// serial fallback must be reliable, so it is never injected).
	inj *faultinject.Injector

	// roots accumulates root IDs during the serial markRoot phase; run()
	// deals them out to the worker deques.
	roots []heap.ObjectID

	// Merged after run() from the per-worker buffers.
	candidates []candidate
	prunedRefs int64

	// staleBytesPer holds the stale closure's per-candidate subgraph sizes,
	// aligned with candidates. Byte ATTRIBUTION (AccountStaleBytes) is
	// decoupled from the closure itself so a concurrent SELECT cycle can
	// trace stale subgraphs while mutators run, then attribute only the
	// candidates that survive drift verification in the final pause — and
	// so a degrade leaves the edge table unpolluted.
	staleBytesPer []uint64
}

// abort requests that every worker drain out; the first cause is kept.
func (t *tracer) abort(why uint32) {
	t.abortWhy.CompareAndSwap(abortNone, why)
	t.aborted.Store(true)
}

// recordPanic recovers one worker's panic: the closure is aborted and the
// panic value kept for diagnostics. This is the boundary that keeps an
// injected (or real) worker fault from escaping the VM API as a raw panic.
func (t *tracer) recordPanic(v any) {
	t.lastPanic.Store(fmt.Sprint(v))
	t.abort(abortPanic)
}

// traceWorker is one tracer worker's private state: its deque, local mark
// stack, and the buffers that replace the old global candMu/StaleEdge
// locking — merged serially once the closure finishes.
type traceWorker struct {
	t     *tracer
	id    int
	deque wsDeque
	local []heap.ObjectID

	candidates []candidate
	staleEdges []staleEdge
	pruneRecs  []pruneRec
	pruned     int64
}

func newTracer(h *heap.Heap, epoch uint32, plan Plan, workers int) *tracer {
	t := &tracer{heap: h, epoch: epoch, plan: plan}
	t.workers = make([]*traceWorker, workers)
	for i := range t.workers {
		w := &traceWorker{t: t, id: i}
		w.deque.init()
		t.workers[i] = w
	}
	return t
}

// markRoot claims a root-referenced object and queues it for tracing. Roots
// are never pruning candidates: candidates are heap edges keyed by their
// source class, and roots have none (§3.1's example shows candidates only
// on object-to-object references). markRoot runs serially before run().
func (t *tracer) markRoot(r heap.Ref) {
	obj := t.heap.Get(r)
	if !obj.TryMark(t.epoch) {
		return
	}
	t.roots = append(t.roots, r.ID())
}

// run is the one-shot STW closure: deal the claimed roots, process to
// exhaustion, merge the worker buffers. The concurrent driver calls the
// three phases separately so it can re-seed and re-process at the final
// remark before merging once.
func (t *tracer) run() {
	t.dealRoots()
	t.process(len(t.workers) > 1)
	t.merge()
}

// dealRoots distributes the accumulated root IDs across the worker deques
// in batches (round-robin, so large root sets start balanced) and empties
// t.roots, so markRoot can refill it for a later remark pass.
func (t *tracer) dealRoots() {
	n := len(t.workers)
	for i := 0; len(t.roots) > 0; i++ {
		bn := batchSize
		if bn > len(t.roots) {
			bn = len(t.roots)
		}
		ids := make([]heap.ObjectID, bn)
		copy(ids, t.roots[:bn])
		t.roots = t.roots[bn:]
		t.workers[i%n].deque.push(&workBatch{ids: ids})
	}
}

// process drives the dealt work to termination (or abort). It resets the
// idle barrier first so it can be called again after a remark re-seed.
// recoverPanics wraps each worker (including a lone serial worker) with
// panic recovery; the STW serial fallback passes false because it is the
// path of last resort — a panic there is a genuine runtime bug that must
// crash loudly.
func (t *tracer) process(recoverPanics bool) {
	t.idle.Store(0)
	if len(t.workers) == 1 {
		if !recoverPanics {
			t.workers[0].run()
			return
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.recordPanic(r)
				}
			}()
			t.workers[0].run()
		}()
		return
	}
	var wg sync.WaitGroup
	for _, w := range t.workers {
		wg.Add(1)
		go func(w *traceWorker) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					t.recordPanic(r)
				}
			}()
			w.run()
		}(w)
	}
	wg.Wait()
}

// merge folds the workers' private buffers into the tracer: candidates and
// prune counts are concatenated, and buffered StaleEdge observations are
// replayed serially. Call exactly once, after the final process pass.
func (t *tracer) merge() {
	for _, w := range t.workers {
		// Poison side effects are kept even on abort (a poisoned slot stays
		// poisoned; the re-run skips it), so prune counts always merge.
		t.prunedRefs += w.pruned
		if t.aborted.Load() {
			// Candidate and StaleEdge buffers from an aborted closure are
			// discarded: the serial re-run regenerates them from scratch.
			continue
		}
		t.candidates = append(t.candidates, w.candidates...)
		if t.plan.StaleEdge != nil {
			for _, e := range w.staleEdges {
				t.plan.StaleEdge(e.src, e.tgt, e.stale, e.bytes)
			}
		}
	}
}

// abortCheckMask throttles the abort-flag poll in the scan loop to one
// atomic load every 64 objects, keeping the hot path unpolluted while still
// bounding how much work a worker does after an abort.
const abortCheckMask = 63

// run is one worker's loop: drain the local stack, then the own deque,
// then steal — or detect termination (or an abort).
func (w *traceWorker) run() {
	t := w.t
	scanned := 0
	for {
		for len(w.local) > 0 {
			if scanned++; scanned&abortCheckMask == 0 && t.aborted.Load() {
				return
			}
			n := len(w.local) - 1
			id := w.local[n]
			w.local = w.local[:n]
			w.scan(id)
			for len(w.local) >= spillAt {
				w.spill()
			}
		}
		if t.aborted.Load() {
			return
		}
		if b := w.deque.pop(); b != nil {
			w.local = append(w.local, b.ids...)
			continue
		}
		if len(t.workers) == 1 || !w.acquire() {
			return
		}
	}
}

// spill donates the oldest batchSize entries of the local stack to the
// worker's own deque, where idle workers can steal them (§4.5's batch
// donation). Donating the oldest entries hands thieves the shallow,
// high-fanout part of the graph.
func (w *traceWorker) spill() {
	batch := make([]heap.ObjectID, batchSize)
	copy(batch, w.local[:batchSize])
	w.local = append(w.local[:0], w.local[batchSize:]...)
	w.deque.push(&workBatch{ids: batch})
}

// acquire obtains work from another worker's deque, or detects global
// termination. It returns false only when every worker is idle and every
// deque is empty; since only owners push (and an owner drains its own
// deque before idling), that state is stable and means the closure is
// complete.
func (w *traceWorker) acquire() bool {
	t := w.t
	n := len(t.workers)
	for {
		for i := 1; i < n; i++ {
			if b := t.workers[(w.id+i)%n].deque.steal(); b != nil {
				w.local = append(w.local, b.ids...)
				return true
			}
		}
		// Nothing stolen: announce idleness, then either retract (work is
		// still queued somewhere — e.g. a steal lost a CAS race) or
		// terminate once every worker is idle. An abort also terminates:
		// a panicked worker never reaches the idle barrier, so without this
		// check the surviving workers would spin here forever.
		t.idle.Add(1)
		for {
			if t.aborted.Load() {
				return false
			}
			if t.anyQueued() {
				t.idle.Add(-1)
				break // rescan the deques
			}
			if int(t.idle.Load()) == n {
				return false
			}
			runtime.Gosched()
		}
	}
}

// setStaleTag arms the read barrier on a scanned slot currently holding r.
// A concurrent tracer must CAS: a blind store could overwrite a reference a
// mutator installed after the tracer loaded r, resurrecting the old value.
// CAS failure just skips the tag — the mutator's new value stays untagged
// until the next cycle scans it, which only delays staleness detection.
func (t *tracer) setStaleTag(obj *heap.Object, slot int, r heap.Ref) {
	t.applyStaleTag(obj, slot, r)
}

// applyStaleTag is setStaleTag returning the value the slot is now expected
// to hold: the tagged reference when the tag landed, the original r when a
// concurrent CAS lost to a mutator. Candidate deferral records this as the
// drift-verification baseline — a lost CAS means the mutator already
// touched the slot, so verification will (correctly) see a mismatch and
// demote.
func (t *tracer) applyStaleTag(obj *heap.Object, slot int, r heap.Ref) heap.Ref {
	tagged := r.Untagged().WithStale()
	if t.concurrent {
		if obj.CompareAndSwapRef(slot, r, tagged) {
			return tagged
		}
		return r
	}
	obj.SetRef(slot, tagged)
	return tagged
}

// anyQueued reports whether any worker's deque still holds a batch.
func (t *tracer) anyQueued() bool {
	for _, w := range t.workers {
		if !w.deque.empty() {
			return true
		}
	}
	return false
}

// scan processes one marked object's reference slots: tagging, candidate
// deferral, pruning, and marking of children. Newly claimed children are
// pushed on the worker's local stack; policy callbacks that need ordering
// (StaleEdge) or aggregation (candidates, prune counts) go to the worker's
// private buffers instead of shared, locked state.
func (w *traceWorker) scan(id heap.ObjectID) {
	t := w.t
	// Fault injection (parallel closures only — t.inj is nil for the serial
	// fallback): a worker panic to exercise the recovery + serial-re-run
	// path, or a watchdog trip to exercise the downgrade path without
	// depending on wall-clock timing.
	if t.inj != nil {
		if t.inj.Should(faultinject.TraceWorkerPanic) {
			panic(fmt.Sprintf("faultinject: trace worker %d panic at object %d", w.id, id))
		}
		if t.inj.Should(faultinject.TraceWatchdogTrip) {
			t.abort(abortWatchdog)
			return
		}
	}
	obj, ok := t.heap.Lookup(id)
	if !ok {
		return
	}
	src := obj.Class()
	for slot, n := 0, obj.NumRefs(); slot < n; slot++ {
		r := obj.Ref(slot)
		if r.IsNull() {
			continue
		}
		// Poisoned references are never traced again (§4.3): future
		// collections see the poison bit and do not dereference.
		if r.IsPoisoned() {
			continue
		}
		tgt := t.heap.Get(r)
		tgtClass := tgt.Class()
		stale := tgt.Stale()

		if t.plan.StaleEdge != nil && stale >= 2 {
			w.staleEdges = append(w.staleEdges, staleEdge{src: src, tgt: tgtClass, stale: stale, bytes: tgt.Size()})
		}

		switch t.plan.Mode {
		case ModeSelect:
			if t.plan.Candidate != nil && t.plan.Candidate(src, tgtClass, stale) {
				// Defer to the stale closure; tag the slot so the barrier
				// still fires if the program uses the reference later.
				expect := r
				if t.plan.TagRefs && !r.IsStaleTagged() {
					expect = t.applyStaleTag(obj, slot, r)
				}
				w.candidates = append(w.candidates, candidate{
					src: src, tgt: tgtClass, ref: r.Untagged(),
					srcID: id, slot: slot, expect: expect,
				})
				continue
			}
		case ModePrune:
			if t.plan.ShouldPrune != nil && t.plan.ShouldPrune(src, tgtClass, stale) {
				if t.deferOps {
					// Concurrent phase: defer the poisoning decision to the
					// final remark. Ensure the slot is stale-tagged first —
					// the tag is what forces any mutator load through the
					// read barrier's cold path (untag + ClearStale), so an
					// extraction of the target during the window is always
					// visible to the remark's expect-compare. Without it a
					// mutator could copy the doomed reference into a live
					// object unobserved and the poison would dangle.
					expect := r
					if !r.IsStaleTagged() {
						expect = t.applyStaleTag(obj, slot, r)
					}
					w.pruneRecs = append(w.pruneRecs, pruneRec{
						srcID: id, slot: slot, src: src, tgt: tgtClass, expect: expect,
					})
					continue
				}
				// Poison: set the second-lowest bit as well as the lowest
				// bit and do not trace the target (§4.3).
				obj.SetRef(slot, r.Untagged().WithPoison())
				w.pruned++
				if t.plan.OnPrune != nil {
					t.plan.OnPrune(id, slot, src, tgtClass)
				}
				continue
			}
		}

		// Set the barrier tag, skipping the store when the bit is already
		// set (references stay tagged until the program uses them, so this
		// avoids re-dirtying most of the heap every collection).
		if t.plan.TagRefs && !r.IsStaleTagged() {
			t.setStaleTag(obj, slot, r)
		}
		if tgt.TryMark(t.epoch) {
			w.local = append(w.local, r.ID())
		}
	}
}

// gatherCandidates moves the per-worker candidate buffers into
// t.candidates without touching the other merge() work. The concurrent
// SELECT driver calls it between the in-use closure and the concurrent
// stale closure (which indexes t.candidates); the buffers are cleared so
// the eventual merge() appends only remark-discovered candidates.
func (t *tracer) gatherCandidates() {
	for _, w := range t.workers {
		t.candidates = append(t.candidates, w.candidates...)
		w.candidates = nil
	}
}

// staleClosure runs the SELECT state's second phase: from each candidate
// reference, mark the objects reachable only through it and size the
// subgraph (§4.2). Each candidate's closure is processed by a single
// worker; distinct candidates run in parallel (§4.5). Objects shared
// between candidates are attributed to whichever closure claims them
// first, matching the prototype's claim-based accounting. Sizes land in
// t.staleBytesPer; attribution to the edge table is a separate step
// (accountStale) so a concurrent cycle can verify candidates against the
// frozen snapshot — and demote drifted ones — before any bytes count.
func (t *tracer) staleClosure() {
	t.staleBytesPer = make([]uint64, len(t.candidates))
	var next atomic.Int64
	workers := len(t.workers)
	if workers > len(t.candidates) {
		workers = len(t.candidates)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(t.candidates) {
					return
				}
				t.staleBytesPer[i] = t.traceStaleRoot(t.candidates[i].ref)
			}
		}()
	}
	wg.Wait()
}

// accountStale replays the stale closure's per-candidate sizes into the
// policy's AccountStaleBytes hook and returns the total. Serial, so it is
// safe inside a pause; the sums are identical to the old inline
// attribution (AddBytesUsed is commutative).
func (t *tracer) accountStale() uint64 {
	var total uint64
	for i, c := range t.candidates {
		b := t.staleBytesPer[i]
		if t.plan.AccountStaleBytes != nil {
			t.plan.AccountStaleBytes(c.src, c.tgt, b)
		}
		total += b
	}
	return total
}

// traceStaleRoot marks and sizes the subgraph reachable from one candidate
// reference, skipping anything the in-use closure (or an earlier candidate)
// already claimed.
func (t *tracer) traceStaleRoot(root heap.Ref) uint64 {
	obj := t.heap.Get(root)
	if !obj.TryMark(t.epoch) {
		return 0
	}
	var bytes uint64
	stack := []heap.ObjectID{root.ID()}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		o, ok := t.heap.Lookup(id)
		if !ok {
			continue
		}
		bytes += o.Size()
		for slot, n := 0, o.NumRefs(); slot < n; slot++ {
			r := o.Ref(slot)
			if r.IsNull() || r.IsPoisoned() {
				continue
			}
			child := t.heap.Get(r)
			if t.plan.TagRefs && !r.IsStaleTagged() {
				t.setStaleTag(o, slot, r)
			}
			if child.TryMark(t.epoch) {
				stack = append(stack, r.ID())
			}
		}
	}
	return bytes
}
