package gc

import (
	"sync"
	"sync/atomic"

	"leakpruning/internal/heap"
)

// candidate records one reference deferred by the in-use closure: the edge
// type and the (untagged) target reference that roots a stale data
// structure (§4.2).
type candidate struct {
	src, tgt heap.ClassID
	ref      heap.Ref
}

const (
	// batchSize is the number of object IDs moved between a worker's local
	// stack and the shared pool at a time.
	batchSize = 128
	// spillAt is the local stack depth beyond which a worker donates a
	// batch to the shared pool so idle workers can help.
	spillAt = 4 * batchSize
)

// tracer runs one transitive closure with work sharing, mirroring MMTk's
// shared-pool/local-queue design (§4.5).
type tracer struct {
	heap    *heap.Heap
	epoch   uint32
	plan    Plan
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	shared  [][]heap.ObjectID
	waiting int
	done    bool

	candMu     sync.Mutex
	candidates []candidate

	prunedRefs atomic.Int64
}

func newTracer(h *heap.Heap, epoch uint32, plan Plan, workers int) *tracer {
	t := &tracer{heap: h, epoch: epoch, plan: plan, workers: workers}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// markRoot claims a root-referenced object and seeds the shared pool. Roots
// are never pruning candidates: candidates are heap edges keyed by their
// source class, and roots have none (§3.1's example shows candidates only
// on object-to-object references).
func (t *tracer) markRoot(r heap.Ref) {
	obj := t.heap.Get(r)
	if !obj.TryMark(t.epoch) {
		return
	}
	t.mu.Lock()
	t.shared = append(t.shared, []heap.ObjectID{r.ID()})
	t.mu.Unlock()
}

// run processes the shared pool to exhaustion with t.workers goroutines.
func (t *tracer) run() {
	if t.workers == 1 {
		t.worker()
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < t.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.worker()
		}()
	}
	wg.Wait()
}

// take blocks until a batch is available or the closure has terminated
// (every worker idle with an empty pool).
func (t *tracer) take() ([]heap.ObjectID, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if n := len(t.shared); n > 0 {
			b := t.shared[n-1]
			t.shared = t.shared[:n-1]
			return b, true
		}
		if t.done {
			return nil, false
		}
		t.waiting++
		if t.waiting == t.workers {
			t.done = true
			t.cond.Broadcast()
			t.waiting--
			return nil, false
		}
		t.cond.Wait()
		t.waiting--
	}
}

// donate moves a batch from a worker's local stack to the shared pool.
func (t *tracer) donate(batch []heap.ObjectID) {
	t.mu.Lock()
	t.shared = append(t.shared, batch)
	t.cond.Signal()
	t.mu.Unlock()
}

func (t *tracer) worker() {
	var local []heap.ObjectID
	for {
		if len(local) == 0 {
			batch, ok := t.take()
			if !ok {
				return
			}
			local = append(local, batch...)
			continue
		}
		id := local[len(local)-1]
		local = local[:len(local)-1]
		local = t.scan(id, local)
		if len(local) >= spillAt {
			batch := make([]heap.ObjectID, batchSize)
			copy(batch, local[:batchSize])
			local = append(local[:0], local[batchSize:]...)
			t.donate(batch)
		}
	}
}

// scan processes one marked object's reference slots: tagging, candidate
// deferral, pruning, and marking of children. It returns the worker's local
// stack with newly claimed children pushed.
func (t *tracer) scan(id heap.ObjectID, local []heap.ObjectID) []heap.ObjectID {
	obj, ok := t.heap.Lookup(id)
	if !ok {
		return local
	}
	src := obj.Class()
	for slot, n := 0, obj.NumRefs(); slot < n; slot++ {
		r := obj.Ref(slot)
		if r.IsNull() {
			continue
		}
		// Poisoned references are never traced again (§4.3): future
		// collections see the poison bit and do not dereference.
		if r.IsPoisoned() {
			continue
		}
		tgt := t.heap.Get(r)
		tgtClass := tgt.Class()
		stale := tgt.Stale()

		if t.plan.StaleEdge != nil && stale >= 2 {
			t.plan.StaleEdge(src, tgtClass, stale, tgt.Size())
		}

		switch t.plan.Mode {
		case ModeSelect:
			if t.plan.Candidate != nil && t.plan.Candidate(src, tgtClass, stale) {
				// Defer to the stale closure; tag the slot so the barrier
				// still fires if the program uses the reference later.
				if t.plan.TagRefs && !r.IsStaleTagged() {
					obj.SetRef(slot, r.Untagged().WithStale())
				}
				t.candMu.Lock()
				t.candidates = append(t.candidates, candidate{src: src, tgt: tgtClass, ref: r.Untagged()})
				t.candMu.Unlock()
				continue
			}
		case ModePrune:
			if t.plan.ShouldPrune != nil && t.plan.ShouldPrune(src, tgtClass, stale) {
				// Poison: set the second-lowest bit as well as the lowest
				// bit and do not trace the target (§4.3).
				obj.SetRef(slot, r.Untagged().WithPoison())
				t.prunedRefs.Add(1)
				if t.plan.OnPrune != nil {
					t.plan.OnPrune(id, slot, src, tgtClass)
				}
				continue
			}
		}

		// Set the barrier tag, skipping the store when the bit is already
		// set (references stay tagged until the program uses them, so this
		// avoids re-dirtying most of the heap every collection).
		if t.plan.TagRefs && !r.IsStaleTagged() {
			obj.SetRef(slot, r.Untagged().WithStale())
		}
		if tgt.TryMark(t.epoch) {
			local = append(local, r.ID())
		}
	}
	return local
}

// staleClosure runs the SELECT state's second phase: from each candidate
// reference, mark the objects reachable only through it and attribute their
// bytes to the candidate's edge type (§4.2). Each candidate's closure is
// processed by a single worker; distinct candidates run in parallel (§4.5).
// Objects shared between candidates are attributed to whichever closure
// claims them first, matching the prototype's claim-based accounting.
func (t *tracer) staleClosure() uint64 {
	var total atomic.Uint64
	var next atomic.Int64
	workers := t.workers
	if workers > len(t.candidates) {
		workers = len(t.candidates)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(t.candidates) {
					return
				}
				c := t.candidates[i]
				bytes := t.traceStaleRoot(c.ref)
				if t.plan.AccountStaleBytes != nil {
					t.plan.AccountStaleBytes(c.src, c.tgt, bytes)
				}
				total.Add(bytes)
			}
		}()
	}
	wg.Wait()
	return total.Load()
}

// traceStaleRoot marks and sizes the subgraph reachable from one candidate
// reference, skipping anything the in-use closure (or an earlier candidate)
// already claimed.
func (t *tracer) traceStaleRoot(root heap.Ref) uint64 {
	obj := t.heap.Get(root)
	if !obj.TryMark(t.epoch) {
		return 0
	}
	var bytes uint64
	stack := []heap.ObjectID{root.ID()}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		o, ok := t.heap.Lookup(id)
		if !ok {
			continue
		}
		bytes += o.Size()
		for slot, n := 0, o.NumRefs(); slot < n; slot++ {
			r := o.Ref(slot)
			if r.IsNull() || r.IsPoisoned() {
				continue
			}
			child := t.heap.Get(r)
			if t.plan.TagRefs && !r.IsStaleTagged() {
				o.SetRef(slot, r.Untagged().WithStale())
			}
			if child.TryMark(t.epoch) {
				stack = append(stack, r.ID())
			}
		}
	}
	return bytes
}
