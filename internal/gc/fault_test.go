package gc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/heap"
)

// faultHeap builds a deterministic single-threaded heap: identical calls
// produce identical object IDs and reference graphs, so two heaps built by
// it can be compared slot-for-slot after collecting one of them under
// injected faults. Layout: chains of length chainLen with back-edges, the
// even-indexed chains rooted, the odd ones garbage.
func faultHeap(t *testing.T, chains, chainLen int) (*heap.Heap, *rootSet) {
	t.Helper()
	reg := heap.NewRegistry()
	node := reg.Define("Node", 4, 48)
	h := heap.New(reg, 1<<30)
	roots := &rootSet{}
	for c := 0; c < chains; c++ {
		var prev heap.Ref
		for i := 0; i < chainLen; i++ {
			r, err := h.Allocate(node)
			if err != nil {
				t.Fatal(err)
			}
			if !prev.IsNull() {
				h.Get(r).SetRef(0, prev)
				if i%3 == 0 {
					h.Get(r).SetRef(1, h.Get(prev).Ref(0))
				}
			}
			prev = r
		}
		if c%2 == 0 {
			roots.refs = append(roots.refs, prev)
		}
	}
	return h, roots
}

// liveSnapshot captures every live object byte-for-byte as far as the
// collector can influence it: identity, class, size, staleness, and the raw
// reference words (including stale/poison tag bits).
func liveSnapshot(h *heap.Heap) map[heap.ObjectID]string {
	snap := make(map[heap.ObjectID]string)
	h.ForEach(func(id heap.ObjectID, obj *heap.Object) {
		sig := fmt.Sprintf("c%d s%d st%d", obj.Class(), obj.Size(), obj.Stale())
		for slot, n := 0, obj.NumRefs(); slot < n; slot++ {
			sig += fmt.Sprintf(" r%d=%x", slot, obj.Ref(slot))
		}
		snap[id] = sig
	})
	return snap
}

func assertSameLiveSet(t *testing.T, got, want map[heap.ObjectID]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("live set size %d, want %d", len(got), len(want))
	}
	for id, sig := range want {
		if got[id] != sig {
			t.Fatalf("object %d diverged:\n got  %q\n want %q", id, got[id], sig)
		}
	}
}

func assertCleanAudit(t *testing.T, h *heap.Heap, stage string) {
	t.Helper()
	if v := h.Audit(); len(v) != 0 {
		t.Fatalf("%s: audit violations: %v", stage, v)
	}
}

// TestWorkerPanicSerialFallbackEquivalence is the acceptance criterion made
// a test: a collection whose parallel tracer is killed by an injected
// worker panic must recover, re-run serially, and leave a live set
// byte-identical to a fault-free collection of the same heap.
func TestWorkerPanicSerialFallbackEquivalence(t *testing.T) {
	const chains, chainLen = 8, 500
	hA, rootsA := faultHeap(t, chains, chainLen)
	hB, rootsB := faultHeap(t, chains, chainLen)

	inj := faultinject.New(7)
	inj.Arm(faultinject.TraceWorkerPanic, 1.0)
	inj.Limit(faultinject.TraceWorkerPanic, 1)

	colA := NewCollector(hA, rootsA, 8)
	colA.SetFaultInjector(inj)
	colB := NewCollector(hB, rootsB, 1)

	resA := colA.Collect(Plan{Mode: ModeNormal, TagRefs: true, AgeStaleness: true})
	resB := colB.Collect(Plan{Mode: ModeNormal, TagRefs: true, AgeStaleness: true})

	if !resA.Degraded || resA.DegradeCause != "worker-panic" {
		t.Fatalf("collection not degraded by injected panic: %+v", resA)
	}
	if resB.Degraded {
		t.Fatalf("fault-free collection reported degraded: %+v", resB)
	}
	if colA.DegradedTraces() != 1 || colA.RecoveredPanics() != 1 {
		t.Fatalf("degraded=%d recovered=%d, want 1/1",
			colA.DegradedTraces(), colA.RecoveredPanics())
	}
	if colA.LastTracePanic() == "" {
		t.Fatal("recovered panic message was not kept")
	}
	if resA.ObjectsFreed != resB.ObjectsFreed || resA.BytesLive != resB.BytesLive {
		t.Fatalf("degraded run freed %d/%d live, fault-free %d/%d",
			resA.ObjectsFreed, resA.BytesLive, resB.ObjectsFreed, resB.BytesLive)
	}
	assertSameLiveSet(t, liveSnapshot(hA), liveSnapshot(hB))
	assertCleanAudit(t, hA, "degraded")
	assertCleanAudit(t, hB, "fault-free")
}

// TestWorkerPanicDuringPruneEquivalence exercises the carried-pruned-count
// path: references the aborted closure already poisoned stay poisoned, the
// serial re-run skips them, and the merged count plus the final live set
// match a fault-free prune exactly.
func TestWorkerPanicDuringPruneEquivalence(t *testing.T) {
	// Chains of nodes, each node hanging a stale leaf off ref 2: the tracer
	// walks every live node and prunes its leaf edge, so the injected panic
	// (p=1% per scan, ~1600 scans) fires mid-prune with poisons already
	// applied — exercising the carried-pruned-count merge.
	build := func() (*heap.Heap, *rootSet, heap.ClassID) {
		reg := heap.NewRegistry()
		node := reg.Define("Node", 4, 48)
		leaf := reg.Define("Leaf", 0, 16)
		h := heap.New(reg, 1<<30)
		roots := &rootSet{}
		for c := 0; c < 8; c++ {
			var prev heap.Ref
			for i := 0; i < 400; i++ {
				r, err := h.Allocate(node)
				if err != nil {
					t.Fatal(err)
				}
				l, err := h.Allocate(leaf)
				if err != nil {
					t.Fatal(err)
				}
				h.Get(l).SetStale(3)
				h.Get(r).SetRef(2, l)
				if !prev.IsNull() {
					h.Get(r).SetRef(0, prev)
				}
				prev = r
			}
			if c%2 == 0 {
				roots.refs = append(roots.refs, prev)
			}
		}
		return h, roots, leaf
	}
	hA, rootsA, leafA := build()
	hB, rootsB, _ := build()

	inj := faultinject.New(11)
	inj.Arm(faultinject.TraceWorkerPanic, 0.01)
	inj.Limit(faultinject.TraceWorkerPanic, 1)

	colA := NewCollector(hA, rootsA, 8)
	colA.SetFaultInjector(inj)
	colB := NewCollector(hB, rootsB, 1)

	plan := Plan{
		Mode:    ModePrune,
		TagRefs: true,
		ShouldPrune: func(src, tgt heap.ClassID, stale uint8) bool {
			return tgt == leafA && stale >= 2
		},
	}
	resA := colA.Collect(plan)
	resB := colB.Collect(plan)

	if inj.Fires(faultinject.TraceWorkerPanic) != 1 {
		t.Fatalf("panic fired %d times, want 1", inj.Fires(faultinject.TraceWorkerPanic))
	}
	if !resA.Degraded {
		t.Fatal("collection not degraded by injected panic")
	}
	if resA.PrunedRefs != resB.PrunedRefs {
		t.Fatalf("degraded prune poisoned %d refs, fault-free %d",
			resA.PrunedRefs, resB.PrunedRefs)
	}
	if resA.ObjectsFreed != resB.ObjectsFreed {
		t.Fatalf("degraded prune freed %d, fault-free %d",
			resA.ObjectsFreed, resB.ObjectsFreed)
	}
	assertSameLiveSet(t, liveSnapshot(hA), liveSnapshot(hB))
	assertCleanAudit(t, hA, "degraded prune")
}

// TestWatchdogTripFallback drives the watchdog downgrade path with the
// injected (deterministic) trip rather than wall-clock timing.
func TestWatchdogTripFallback(t *testing.T) {
	const chains, chainLen = 8, 300
	hA, rootsA := faultHeap(t, chains, chainLen)
	hB, rootsB := faultHeap(t, chains, chainLen)

	inj := faultinject.New(3)
	inj.Arm(faultinject.TraceWatchdogTrip, 1.0)
	inj.Limit(faultinject.TraceWatchdogTrip, 1)

	colA := NewCollector(hA, rootsA, 8)
	colA.SetFaultInjector(inj)
	colB := NewCollector(hB, rootsB, 1)

	resA := colA.Collect(Plan{Mode: ModeNormal, TagRefs: true})
	resB := colB.Collect(Plan{Mode: ModeNormal, TagRefs: true})

	if !resA.Degraded || resA.DegradeCause != "watchdog" {
		t.Fatalf("collection not degraded by injected watchdog trip: %+v", resA)
	}
	if colA.WatchdogAborts() != 1 || colA.RecoveredPanics() != 0 {
		t.Fatalf("watchdog=%d recovered=%d, want 1/0",
			colA.WatchdogAborts(), colA.RecoveredPanics())
	}
	if resA.ObjectsFreed != resB.ObjectsFreed {
		t.Fatalf("degraded run freed %d, fault-free %d", resA.ObjectsFreed, resB.ObjectsFreed)
	}
	assertSameLiveSet(t, liveSnapshot(hA), liveSnapshot(hB))
	assertCleanAudit(t, hA, "watchdog fallback")
}

// TestRealWatchdogTimer exercises the wall-clock watchdog (time.AfterFunc)
// path. Whether the timer beats the closure is timing-dependent, so the
// test asserts only what must hold either way: the collection completes and
// the live set matches a fault-free serial run.
func TestRealWatchdogTimer(t *testing.T) {
	const chains, chainLen = 8, 300
	hA, rootsA := faultHeap(t, chains, chainLen)
	hB, rootsB := faultHeap(t, chains, chainLen)

	colA := NewCollector(hA, rootsA, 8)
	colA.SetWatchdog(time.Nanosecond)
	colB := NewCollector(hB, rootsB, 1)

	resA := colA.Collect(Plan{Mode: ModeNormal, TagRefs: true})
	resB := colB.Collect(Plan{Mode: ModeNormal, TagRefs: true})
	if resA.Degraded && resA.DegradeCause != "watchdog" {
		t.Fatalf("unexpected degrade cause %q", resA.DegradeCause)
	}
	if resA.ObjectsFreed != resB.ObjectsFreed {
		t.Fatalf("freed %d, want %d", resA.ObjectsFreed, resB.ObjectsFreed)
	}
	assertSameLiveSet(t, liveSnapshot(hA), liveSnapshot(hB))
	assertCleanAudit(t, hA, "real watchdog")
}

// TestParallelCollectionStressWithInjectedPanics is the stress test's
// injected-fault variant (run it under -race): concurrent mutators build a
// 64k-object heap, then repeated 8-worker collections run with random
// worker panics armed. Every collection must complete — normally or via the
// serial fallback — with exact accounting and a clean heap audit, and the
// first collection must free exactly the known garbage count (the live-set
// equivalence, expressed without deterministic IDs).
func TestParallelCollectionStressWithInjectedPanics(t *testing.T) {
	reg := heap.NewRegistry()
	node := reg.Define("Node", 4, 48)
	h := heap.New(reg, 1<<30)
	roots := &rootSet{}

	const goroutines = 8
	const perG = 8000

	heads := make([]heap.Ref, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := h.NewAllocContext()
			defer h.ReleaseContext(&ctx)
			var prev heap.Ref
			for i := 0; i < perG; i++ {
				r, err := h.AllocateCtx(&ctx, node)
				if err != nil {
					t.Error(err)
					return
				}
				if !prev.IsNull() {
					h.Get(r).SetRef(0, prev)
					if i%3 == 0 {
						h.Get(r).SetRef(1, h.Get(prev).Ref(0))
					}
				}
				prev = r
			}
			heads[g] = prev
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for g := 0; g < goroutines; g += 2 {
		roots.refs = append(roots.refs, heads[g])
	}

	inj := faultinject.New(42)
	inj.Arm(faultinject.TraceWorkerPanic, 0.001)
	col := NewCollector(h, roots, 8)
	col.SetFaultInjector(inj)

	check := func(stage string, res Result) {
		t.Helper()
		st := h.Stats()
		if st.BytesAlloc-st.BytesFreed != st.BytesUsed {
			t.Fatalf("%s: byte invariant broken: %+v", stage, st)
		}
		if res.BytesLive != st.BytesUsed {
			t.Fatalf("%s: BytesLive %d != BytesUsed %d", stage, res.BytesLive, st.BytesUsed)
		}
		assertCleanAudit(t, h, stage)
	}

	res := col.Collect(Plan{Mode: ModeNormal, TagRefs: true, AgeStaleness: true})
	if res.ObjectsFreed != goroutines/2*perG {
		t.Fatalf("first collection freed %d, want %d (degraded=%v)",
			res.ObjectsFreed, goroutines/2*perG, res.Degraded)
	}
	check("first", res)

	for i := 0; i < 6; i++ {
		res = col.Collect(Plan{Mode: ModeNormal, TagRefs: true})
		if res.ObjectsFreed != 0 {
			t.Fatalf("round %d: steady-state collection freed %d objects (degraded=%v)",
				i, res.ObjectsFreed, res.Degraded)
		}
		check(fmt.Sprintf("round %d", i), res)
	}
	if inj.Fires(faultinject.TraceWorkerPanic) > 0 && col.DegradedTraces() == 0 {
		t.Fatal("panics fired but no degraded trace was recorded")
	}
	if col.DegradedTraces() != col.RecoveredPanics() {
		t.Fatalf("degraded=%d recovered=%d, want equal (only panics armed)",
			col.DegradedTraces(), col.RecoveredPanics())
	}
	t.Logf("injected %d panics across %d collections (%d degraded)",
		inj.Fires(faultinject.TraceWorkerPanic), col.Index(), col.DegradedTraces())
}
