package gc

import (
	"sync"
	"testing"
	"testing/quick"

	"leakpruning/internal/heap"
)

// TestStaleClosureSharedSubgraphCountedOnce: two candidates whose subgraphs
// overlap must attribute the shared objects to exactly one of them
// (claim-based accounting, §4.5) and the total must equal the stale bytes.
func TestStaleClosureSharedSubgraphCountedOnce(t *testing.T) {
	th := newTestHeap(t)
	holder := th.class(t, "Holder", 1, 0)
	mid := th.class(t, "Mid", 1, 0)
	shared := th.class(t, "Shared", 0, 500)

	h1 := th.alloc(t, holder)
	h2 := th.alloc(t, holder)
	m1 := th.alloc(t, mid)
	m2 := th.alloc(t, mid)
	s := th.alloc(t, shared)
	th.link(h1, 0, m1)
	th.link(h2, 0, m2)
	th.link(m1, 0, s)
	th.link(m2, 0, s)
	th.h.Get(m1).SetStale(3)
	th.h.Get(m2).SetStale(3)
	th.roots.refs = []heap.Ref{h1, h2}

	var mu sync.Mutex
	total := uint64(0)
	res := th.collector(2).Collect(Plan{
		Mode:      ModeSelect,
		Candidate: func(src, tgt heap.ClassID, stale uint8) bool { return stale >= 2 },
		AccountStaleBytes: func(src, tgt heap.ClassID, bytes uint64) {
			mu.Lock()
			total += bytes
			mu.Unlock()
		},
	})
	if res.Candidates != 2 {
		t.Fatalf("candidates = %d", res.Candidates)
	}
	want := th.h.Get(m1).Size() + th.h.Get(m2).Size() + th.h.Get(s).Size()
	if total != want {
		t.Fatalf("attributed %d bytes, want %d (shared object double-counted?)", total, want)
	}
	if res.StaleBytes != want {
		t.Fatalf("StaleBytes = %d, want %d", res.StaleBytes, want)
	}
}

// TestStaleClosureCandidateReachableFromInUse: a candidate whose target was
// already claimed by the in-use closure contributes zero bytes (the c4 case
// of the paper's Figure 5).
func TestStaleClosureCandidateReachableFromInUse(t *testing.T) {
	th := newTestHeap(t)
	holder := th.class(t, "Holder", 1, 0)
	keeper := th.class(t, "Keeper", 1, 0)
	leaf := th.class(t, "Leaf", 0, 100)

	h1 := th.alloc(t, holder)
	k1 := th.alloc(t, keeper)
	l1 := th.alloc(t, leaf)
	th.link(h1, 0, l1)
	th.link(k1, 0, l1)
	th.h.Get(l1).SetStale(5)
	th.roots.refs = []heap.Ref{h1, k1}

	var got []uint64
	th.collector(1).Collect(Plan{
		Mode: ModeSelect,
		// Only Holder -> Leaf is a candidate; Keeper -> Leaf keeps the leaf
		// in use.
		Candidate: func(src, tgt heap.ClassID, stale uint8) bool {
			return src == holder && stale >= 2
		},
		AccountStaleBytes: func(src, tgt heap.ClassID, bytes uint64) {
			got = append(got, bytes)
		},
	})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("in-use-claimed candidate attributed %v bytes, want [0]", got)
	}
}

// TestTraceRetentionQuick: for random object graphs, a collection retains
// exactly the objects reachable from the roots — computed independently
// with a plain BFS over the same graph.
func TestTraceRetentionQuick(t *testing.T) {
	type edge struct{ From, To uint8 }
	prop := func(edges []edge, rootPick []uint8) bool {
		const n = 24
		th := newTestHeap(t)
		cls := th.class(t, "N", 8, 0)
		refs := make([]heap.Ref, n)
		for i := range refs {
			refs[i] = th.alloc(t, cls)
		}
		adj := make([][]int, n)
		slotUsed := make([]int, n)
		for _, e := range edges {
			f, to := int(e.From)%n, int(e.To)%n
			if slotUsed[f] >= 8 {
				continue
			}
			th.link(refs[f], slotUsed[f], refs[to])
			slotUsed[f]++
			adj[f] = append(adj[f], to)
		}
		rootIdx := map[int]bool{}
		for _, r := range rootPick {
			i := int(r) % n
			rootIdx[i] = true
			th.roots.refs = append(th.roots.refs, refs[i])
		}
		// Independent reachability.
		want := map[int]bool{}
		var stack []int
		for i := range rootIdx {
			stack = append(stack, i)
			want[i] = true
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if !want[w] {
					want[w] = true
					stack = append(stack, w)
				}
			}
		}
		th.collector(4).Collect(Plan{Mode: ModeNormal})
		for i := range refs {
			if th.alive(refs[i]) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPruneSoundnessQuick: for random graphs with random staleness and a
// random pruned edge type, after a PRUNE collection every object reachable
// from the roots through non-poisoned references is still alive.
func TestPruneSoundnessQuick(t *testing.T) {
	type edge struct{ From, To uint8 }
	prop := func(edges []edge, rootPick []uint8, stales []uint8, pick uint8) bool {
		const n = 20
		th := newTestHeap(t)
		classes := []heap.ClassID{
			th.class(t, "C1", 8, 0),
			th.class(t, "C2", 8, 0),
			th.class(t, "C3", 8, 0),
		}
		refs := make([]heap.Ref, n)
		for i := range refs {
			refs[i] = th.alloc(t, classes[i%3])
		}
		for i, s := range stales {
			if i >= n {
				break
			}
			th.h.Get(refs[i]).SetStale(s % 8)
		}
		slotUsed := make([]int, n)
		for _, e := range edges {
			f, to := int(e.From)%n, int(e.To)%n
			if slotUsed[f] >= 8 {
				continue
			}
			th.link(refs[f], slotUsed[f], refs[to])
			slotUsed[f]++
		}
		for _, r := range rootPick {
			th.roots.refs = append(th.roots.refs, refs[int(r)%n])
		}
		prunedSrc := classes[int(pick)%3]
		prunedTgt := classes[int(pick/3)%3]
		th.collector(4).Collect(Plan{
			Mode: ModePrune,
			ShouldPrune: func(src, tgt heap.ClassID, stale uint8) bool {
				return src == prunedSrc && tgt == prunedTgt && stale >= 2
			},
		})
		// Recompute reachability over the post-prune graph: follow only
		// non-poisoned references from the roots; everything reached must
		// be alive.
		seen := map[heap.ObjectID]bool{}
		var stack []heap.Ref
		for _, r := range th.roots.refs {
			stack = append(stack, r)
		}
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[r.ID()] {
				continue
			}
			seen[r.ID()] = true
			obj, ok := th.h.Lookup(r.ID())
			if !ok {
				return false // reachable object was freed: unsound
			}
			for s := 0; s < obj.NumRefs(); s++ {
				child := obj.Ref(s)
				if child.IsNull() || child.IsPoisoned() {
					continue
				}
				stack = append(stack, child.Untagged())
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
