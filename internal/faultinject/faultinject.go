// Package faultinject is the runtime's deterministic fault-injection
// subsystem: a seeded source of injection decisions that the heap, the
// collector, the VM, and the offload baseline consult at their failure
// points. It exists to adversarially exercise the graceful-degradation
// machinery — recovered tracer panics, free-list corruption detection,
// offload I/O retry, finalizer isolation — rather than trusting that the
// concurrent pointer manipulation underneath leak pruning is sound.
//
// Decisions are pseudo-random but reproducible: each Should call draws one
// value from a splitmix64 stream keyed by (seed, point, draw index), so a
// campaign run with the same seed and the same serial draw order makes the
// same decisions. Under parallel GC workers the draw order follows the
// goroutine schedule; determinism then holds per (point, draw count), which
// is what the chaos campaign's per-seed reports key on.
//
// The package deliberately imports nothing from the rest of the runtime
// (except the equally leaf-like obs package) so every layer can depend on
// it without cycles. A nil *Injector is valid and injects nothing, so
// production paths pay one nil check when fault injection is disabled.
package faultinject

import (
	"fmt"
	"sort"
	"sync/atomic"

	"leakpruning/internal/obs"
)

// Point names one injection site in the runtime.
type Point uint8

const (
	// TraceWorkerPanic makes a parallel GC trace worker panic mid-closure.
	// The collector must recover it and re-run the collection serially.
	TraceWorkerPanic Point = iota
	// TraceWatchdogTrip fires the STW watchdog as if the parallel trace had
	// exceeded its deadline, forcing the downgrade-to-serial path without
	// depending on wall-clock timing.
	TraceWatchdogTrip
	// ShardFreeListCorruption plants a duplicate entry in an allocator
	// shard's free list; the shard's integrity probe must detect and repair
	// it under the same lock hold.
	ShardFreeListCorruption
	// OffloadWriteFault fails one attempt to move an object to the
	// simulated disk (a transient write error). The offloader retries with
	// capped backoff and then falls back to keeping the object in-heap.
	OffloadWriteFault
	// OffloadReadFault fails one attempt to fault an offloaded object back
	// in. The VM retries with capped backoff and then throws a typed
	// OffloadError instead of a raw panic.
	OffloadReadFault
	// AllocLimitRace makes one allocation-time limit reservation behave as
	// if a racing thread had consumed the remaining headroom, pushing the
	// mutator through the collect-and-retry slow path.
	AllocLimitRace
	// FinalizerPanic makes one finalizer invocation panic. The VM must
	// recover it per-finalizer without aborting the STW section.
	FinalizerPanic
	// EdgeTableOverflow makes one edge-table insertion behave as if the
	// fixed-size table were full; the table must drop the update and count
	// the overflow instead of panicking.
	EdgeTableOverflow
	// SafepointStall stretches the safepoint protocol's ragged barrier: the
	// collector is delayed after raising the stop flag, and a mutator about
	// to park is delayed before reaching its safepoint. The delay is
	// semantics-free, so runs with it armed must match fault-free controls.
	SafepointStall
	// SATBBarrierDrop silently discards one entry logged into a thread's
	// SATB deletion-barrier buffer during concurrent marking, modelling a
	// lost pre-write snapshot (the loss is detected, as if by a buffer
	// checksum, and recorded). The remark pause must notice the drop and
	// degrade to a fresh fully-STW closure so the live set stays exact.
	SATBBarrierDrop
	// RemarkStall stretches the concurrent cycle's final-remark pause with a
	// semantics-free delay, widening the window in which mutators are parked
	// behind the remark's ragged barrier. Runs with it armed must match
	// fault-free controls.
	RemarkStall
	// TenantRequestPanic makes one tenant request handler in the leakd
	// daemon panic mid-request (a raw, non-VM panic — the kind RunThread
	// deliberately propagates). The server must recover it at the request
	// boundary, convert it into a typed per-tenant error response, and leave
	// every sibling tenant untouched.
	TenantRequestPanic
	// BudgetProbeStall stretches one budget-pressure probe with a
	// semantics-free delay, modelling a slow metrics scrape. The ladder's
	// decisions must be unaffected; runs with it armed must match fault-free
	// controls on every per-tenant observable.
	BudgetProbeStall
	// EvictDrainTimeout makes one tenant eviction behave as if its in-flight
	// requests failed to drain before the deadline, forcing the
	// abandon-and-collect path instead of the graceful one.
	EvictDrainTimeout
	// SelectSnapshotDrift makes one concurrent SELECT/PRUNE remark behave as
	// if the frozen edge-table staleness snapshot had drifted beyond what
	// per-edge demotion can absorb (as if a coherence checksum over the
	// frozen cut failed). The cycle must degrade to a fresh fully-STW
	// closure that reproduces the STW oracle byte-for-byte.
	SelectSnapshotDrift
	// PruneRemarkStall stretches the final-remark pause of a concurrent
	// PRUNE cycle — the pause that poisons references over the completed
	// closure — with a semantics-free delay. Runs with it armed must match
	// fault-free controls on every observable.
	PruneRemarkStall

	// NumPoints is the number of injection points (must stay last).
	// New points are appended, never inserted: the decision hash is keyed
	// by point index, so insertion would silently re-seed every later
	// point's draw sequence (guarded by TestSeedStability).
	NumPoints
)

var pointNames = [NumPoints]string{
	TraceWorkerPanic:        "trace-worker-panic",
	TraceWatchdogTrip:       "trace-watchdog-trip",
	ShardFreeListCorruption: "shard-freelist-corruption",
	OffloadWriteFault:       "offload-write-fault",
	OffloadReadFault:        "offload-read-fault",
	AllocLimitRace:          "alloc-limit-race",
	FinalizerPanic:          "finalizer-panic",
	EdgeTableOverflow:       "edgetable-overflow",
	SafepointStall:          "safepoint-stall",
	SATBBarrierDrop:         "satb-barrier-drop",
	RemarkStall:             "remark-stall",
	TenantRequestPanic:      "tenant-request-panic",
	BudgetProbeStall:        "budget-probe-stall",
	EvictDrainTimeout:       "evict-drain-timeout",
	SelectSnapshotDrift:     "select-snapshot-drift",
	PruneRemarkStall:        "prune-remark-stall",
}

// String returns the point's campaign-report name.
func (p Point) String() string {
	if p < NumPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// PointByName resolves a campaign-report name back to its Point.
func PointByName(name string) (Point, bool) {
	for p, n := range pointNames {
		if n == name {
			return Point(p), true
		}
	}
	return NumPoints, false
}

// PointNames lists every injection point name, in Point order.
func PointNames() []string {
	out := make([]string, NumPoints)
	copy(out, pointNames[:])
	return out
}

// noLimit means a point fires as often as its probability allows.
const noLimit = ^uint64(0)

type pointState struct {
	// threshold is the armed probability in 2^-64 fixed point: a draw fires
	// when its hash is below threshold. 0 = disarmed.
	threshold atomic.Uint64
	// limit caps total fires (noLimit = unlimited).
	limit atomic.Uint64
	// draws and fires are the per-point decision counters.
	draws atomic.Uint64
	fires atomic.Uint64
}

// Injector is one seeded fault-injection configuration. All methods are safe
// for concurrent use and safe on a nil receiver (a nil Injector never
// injects), so the runtime's hot paths carry injection points without
// conditional wiring.
type Injector struct {
	seed   uint64
	points [NumPoints]pointState

	// Observability (nil when disabled; all methods nil-safe). Fires are
	// rare by construction, so the locked trace Emit is off the hot path.
	obsTrace *obs.Tracer
	obsFires [NumPoints]*obs.Counter
}

// New creates a disarmed injector for the given seed. Arm points
// individually afterwards.
func New(seed uint64) *Injector {
	inj := &Injector{seed: seed}
	for i := range inj.points {
		inj.points[i].limit.Store(noLimit)
	}
	return inj
}

// Seed returns the injector's seed.
func (inj *Injector) Seed() uint64 {
	if inj == nil {
		return 0
	}
	return inj.seed
}

// Arm sets the point's per-draw fire probability. Probabilities outside
// [0, 1] are clamped; 0 disarms the point.
func (inj *Injector) Arm(p Point, prob float64) {
	if inj == nil || p >= NumPoints {
		return
	}
	var threshold uint64
	switch {
	case prob <= 0 || prob != prob: // disarm on non-positive or NaN
	case prob >= 1:
		threshold = ^uint64(0)
	default:
		threshold = uint64(prob * float64(1<<63) * 2)
	}
	inj.points[p].threshold.Store(threshold)
}

// Limit caps how many times the point may fire over the injector's lifetime
// (n <= 0 removes the cap). Tests use it for "panic exactly once" scenarios.
func (inj *Injector) Limit(p Point, n int) {
	if inj == nil || p >= NumPoints {
		return
	}
	if n <= 0 {
		inj.points[p].limit.Store(noLimit)
		return
	}
	inj.points[p].limit.Store(uint64(n))
}

// SetObs attaches per-point fire counters and "fault.fire" trace instants.
// Safe on a nil receiver and a nil o.
func (inj *Injector) SetObs(o *obs.Obs) {
	if inj == nil || o == nil {
		return
	}
	reg := o.Registry()
	for p := Point(0); p < NumPoints; p++ {
		inj.obsFires[p] = reg.NewCounter("lp_fault_fires_total", "fault-injection firings by point", obs.L("point", p.String()))
	}
	inj.obsTrace = o.Tracer()
}

// Enabled reports whether the point is armed at all — a cheap pre-check for
// injection sites whose setup work (not just the decision) should be skipped
// when disarmed.
func (inj *Injector) Enabled(p Point) bool {
	return inj != nil && p < NumPoints && inj.points[p].threshold.Load() != 0
}

// Should draws one decision for the point: true means inject the fault now.
// Safe on a nil receiver (never fires).
func (inj *Injector) Should(p Point) bool {
	if inj == nil || p >= NumPoints {
		return false
	}
	ps := &inj.points[p]
	threshold := ps.threshold.Load()
	if threshold == 0 {
		return false
	}
	n := ps.draws.Add(1)
	if hash(inj.seed, uint64(p), n) >= threshold {
		return false
	}
	// Respect the fire cap: claim a slot below the limit or decline.
	for {
		fired := ps.fires.Load()
		limit := ps.limit.Load()
		if limit != noLimit && fired >= limit {
			return false
		}
		if ps.fires.CompareAndSwap(fired, fired+1) {
			inj.obsFires[p].Inc()
			if tr := inj.obsTrace; tr != nil {
				tr.Emit(obs.Instant("fault.fire", "fault", tr.Now(), 0, obs.AS("point", p.String())))
			}
			return true
		}
	}
}

// Fires returns how many times the point has fired.
func (inj *Injector) Fires(p Point) uint64 {
	if inj == nil || p >= NumPoints {
		return 0
	}
	return inj.points[p].fires.Load()
}

// Draws returns how many decisions have been drawn for the point.
func (inj *Injector) Draws(p Point) uint64 {
	if inj == nil || p >= NumPoints {
		return 0
	}
	return inj.points[p].draws.Load()
}

// PointStats is one point's campaign-report row.
type PointStats struct {
	Point string `json:"point"`
	Draws uint64 `json:"draws"`
	Fires uint64 `json:"fires"`
}

// Stats returns per-point draw/fire counts for every armed or exercised
// point, in Point order.
func (inj *Injector) Stats() []PointStats {
	if inj == nil {
		return nil
	}
	var out []PointStats
	for p := Point(0); p < NumPoints; p++ {
		draws, fires := inj.Draws(p), inj.Fires(p)
		if draws == 0 && fires == 0 && !inj.Enabled(p) {
			continue
		}
		out = append(out, PointStats{Point: p.String(), Draws: draws, Fires: fires})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// TotalFires sums fire counts across all points.
func (inj *Injector) TotalFires() uint64 {
	if inj == nil {
		return 0
	}
	var total uint64
	for p := Point(0); p < NumPoints; p++ {
		total += inj.Fires(p)
	}
	return total
}

// hash mixes (seed, point, draw index) through splitmix64, giving each draw
// an independent uniform 64-bit value.
func hash(seed, point, n uint64) uint64 {
	x := seed ^ (point+1)*0x9e3779b97f4a7c15 ^ n*0xbf58476d1ce4e5b9
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
