package faultinject

import "testing"

// TestSeedStability pins the injector's deterministic draw sequence for
// every point that predates the concurrent-SELECT/PRUNE additions
// (SelectSnapshotDrift, PruneRemarkStall). The decision hash is keyed by
// the point's index, so APPENDING points is draw-sequence-preserving but
// INSERTING one would silently re-seed every later point — invalidating
// every recorded chaos campaign and golden equivalence run. Each golden
// mask below is bit n-1 = "draw n fires" for seed 0xC0FFEE at probability
// 0.5 over the first 64 draws, recorded before the next batch of points
// landed (the daemon-point masks were pinned when SelectSnapshotDrift and
// PruneRemarkStall were appended).
func TestSeedStability(t *testing.T) {
	golden := []struct {
		point Point
		mask  uint64
	}{
		{TraceWorkerPanic, 0x70dfc363c2103dff},
		{TraceWatchdogTrip, 0x41951869ebaf0686},
		{ShardFreeListCorruption, 0xe28281fb511c4e18},
		{OffloadWriteFault, 0x18c0f2a388d372da},
		{OffloadReadFault, 0xdbd3aa4995df864d},
		{AllocLimitRace, 0x6763544739066513},
		{FinalizerPanic, 0xcd9d9e0a31e70d5e},
		{EdgeTableOverflow, 0x61c1fedbcf62fa85},
		{SafepointStall, 0x729f794b396aaf8e},
		{SATBBarrierDrop, 0x490db11ccc8ab34f},
		{RemarkStall, 0x6adf05f0975a30c4},
		{TenantRequestPanic, 0x7f7caaca8341a0f2},
		{BudgetProbeStall, 0x689963cd9156cdbb},
		{EvictDrainTimeout, 0xb6a60a8a13fa4bab},
	}
	// The pre-existing points must keep their indices (the hash key).
	for i, g := range golden {
		if int(g.point) != i {
			t.Fatalf("point %v moved to index %d (want %d): inserting points re-seeds later draw sequences", g.point, g.point, i)
		}
	}
	if NumPoints != Point(len(golden))+2 {
		t.Fatalf("NumPoints = %d, want %d (2 concurrent-SELECT/PRUNE points appended after the %d golden ones)",
			NumPoints, len(golden)+2, len(golden))
	}
	for _, g := range golden {
		inj := New(0xC0FFEE)
		inj.Arm(g.point, 0.5)
		var mask uint64
		for n := 0; n < 64; n++ {
			if inj.Should(g.point) {
				mask |= 1 << n
			}
		}
		if mask != g.mask {
			t.Errorf("%v: draw sequence changed: got 0x%016x, want 0x%016x", g.point, mask, g.mask)
		}
	}
}

// TestDaemonPointNames covers the appended points' name round trip
// alongside the existing ones.
func TestDaemonPointNames(t *testing.T) {
	for _, p := range []Point{TenantRequestPanic, BudgetProbeStall, EvictDrainTimeout,
		SelectSnapshotDrift, PruneRemarkStall} {
		name := p.String()
		got, ok := PointByName(name)
		if !ok || got != p {
			t.Fatalf("PointByName(%q) = %v, %v; want %v, true", name, got, ok, p)
		}
	}
}
