package faultinject

import (
	"sync"
	"testing"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var inj *Injector
	if inj.Should(TraceWorkerPanic) {
		t.Fatal("nil injector fired")
	}
	if inj.Enabled(FinalizerPanic) || inj.Fires(FinalizerPanic) != 0 || inj.TotalFires() != 0 {
		t.Fatal("nil injector reports activity")
	}
	inj.Arm(FinalizerPanic, 1) // must not panic
	inj.Limit(FinalizerPanic, 1)
	if inj.Stats() != nil {
		t.Fatal("nil injector has stats")
	}
}

func TestDisarmedPointNeverFires(t *testing.T) {
	inj := New(1)
	for i := 0; i < 1000; i++ {
		if inj.Should(AllocLimitRace) {
			t.Fatal("disarmed point fired")
		}
	}
	if inj.Draws(AllocLimitRace) != 0 {
		t.Fatal("disarmed point consumed draws")
	}
}

func TestAlwaysAndNever(t *testing.T) {
	inj := New(7)
	inj.Arm(FinalizerPanic, 1.0)
	for i := 0; i < 100; i++ {
		if !inj.Should(FinalizerPanic) {
			t.Fatal("probability-1 point declined")
		}
	}
	inj.Arm(FinalizerPanic, 0)
	if inj.Should(FinalizerPanic) {
		t.Fatal("disarmed point fired")
	}
	if got := inj.Fires(FinalizerPanic); got != 100 {
		t.Fatalf("fires = %d, want 100", got)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	draw := func(seed uint64) []bool {
		inj := New(seed)
		inj.Arm(TraceWorkerPanic, 0.3)
		out := make([]bool, 200)
		for i := range out {
			out[i] = inj.Should(TraceWorkerPanic)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed decision %d differs", i)
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical decision streams")
	}
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	inj := New(99)
	inj.Arm(OffloadWriteFault, 0.25)
	const n = 20000
	fires := 0
	for i := 0; i < n; i++ {
		if inj.Should(OffloadWriteFault) {
			fires++
		}
	}
	frac := float64(fires) / n
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("p=0.25 fired at rate %.3f", frac)
	}
}

func TestLimitCapsFires(t *testing.T) {
	inj := New(5)
	inj.Arm(TraceWorkerPanic, 1.0)
	inj.Limit(TraceWorkerPanic, 3)
	fires := 0
	for i := 0; i < 50; i++ {
		if inj.Should(TraceWorkerPanic) {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("limit 3 allowed %d fires", fires)
	}
	inj.Limit(TraceWorkerPanic, 0) // remove cap
	if !inj.Should(TraceWorkerPanic) {
		t.Fatal("uncapped point declined")
	}
}

func TestConcurrentDraws(t *testing.T) {
	inj := New(11)
	inj.Arm(ShardFreeListCorruption, 0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				inj.Should(ShardFreeListCorruption)
			}
		}()
	}
	wg.Wait()
	if got := inj.Draws(ShardFreeListCorruption); got != 8000 {
		t.Fatalf("draws = %d, want 8000", got)
	}
	if f := inj.Fires(ShardFreeListCorruption); f == 0 || f >= 8000 {
		t.Fatalf("fires = %d, want 0 < fires < 8000", f)
	}
}

func TestPointNamesRoundTrip(t *testing.T) {
	for p := Point(0); p < NumPoints; p++ {
		got, ok := PointByName(p.String())
		if !ok || got != p {
			t.Fatalf("PointByName(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := PointByName("no-such-point"); ok {
		t.Fatal("unknown name resolved")
	}
	if len(PointNames()) != int(NumPoints) {
		t.Fatal("PointNames length mismatch")
	}
}

func TestStatsListsExercisedPoints(t *testing.T) {
	inj := New(3)
	inj.Arm(FinalizerPanic, 1.0)
	inj.Should(FinalizerPanic)
	st := inj.Stats()
	if len(st) != 1 || st[0].Point != FinalizerPanic.String() || st[0].Fires != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if inj.TotalFires() != 1 {
		t.Fatalf("total fires = %d", inj.TotalFires())
	}
}
