package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"leakpruning/internal/edgetable"
	"leakpruning/internal/gc"
	"leakpruning/internal/heap"
	"leakpruning/internal/vmerrors"
)

// Options configures a Controller. Zero values select the paper's defaults.
type Options struct {
	// Policy chooses references to prune. Nil disables pruning entirely
	// (the unmodified-VM baseline).
	Policy Policy

	// ExpectedUseFraction is the INACTIVE → OBSERVE threshold on heap
	// fullness after a full collection. The paper defaults to 0.5: users
	// typically run programs in heaps at least twice maximum reachable
	// memory (§3.1).
	ExpectedUseFraction float64

	// NearlyFullFraction is the OBSERVE → SELECT threshold. Default 0.9.
	NearlyFullFraction float64

	// FullHeapOnly selects the paper's option (1): wait until the program
	// has actually exhausted memory before the first prune, instead of
	// pruning as soon as a SELECT collection finishes (option (2), the
	// default). After the first exhaustion both options behave the same.
	FullHeapOnly bool

	// EdgeTableSlots sizes the edge table (default 16K, §6.2).
	EdgeTableSlots int

	// ForceState pins the controller to one state for overhead measurement
	// (Figure 6/7's "Observe" and "Select" configurations). Forced
	// controllers never transition and never prune.
	ForceState State
	// Forced enables ForceState.
	Forced bool

	// OnPrune, if set, receives a report after every PRUNE collection —
	// the paper's optional reporting of pruned data structures (§3.2).
	OnPrune func(PruneEvent)

	// OnOOM, if set, receives the out-of-memory warning the first time the
	// program exhausts memory (§3.2).
	OnOOM func(*vmerrors.OutOfMemoryError)
}

func (o Options) withDefaults() Options {
	if o.ExpectedUseFraction == 0 {
		o.ExpectedUseFraction = 0.5
	}
	if o.NearlyFullFraction == 0 {
		o.NearlyFullFraction = 0.9
	}
	if o.EdgeTableSlots == 0 {
		o.EdgeTableSlots = edgetable.DefaultSlots
	}
	return o
}

// PruneEvent describes one PRUNE collection for reports and tests.
type PruneEvent struct {
	GCIndex    uint64
	Selection  string
	PrunedRefs int
	BytesFreed uint64
}

// Controller drives the leak-pruning state machine. It is not safe for
// concurrent use: the VM calls it only inside stop-the-world sections and
// under its allocation lock.
type Controller struct {
	opts    Options
	classes *heap.Registry
	edges   *edgetable.Table

	state      State
	everPruned bool // after the first PRUNE, SELECT always leads to PRUNE (§3.1)

	// selection is what the next PRUNE collection will poison.
	selection    Selection
	haveSel      bool
	lastMaxStale uint8

	cycle Cycle // live only during a SELECT-mode collection

	// snap is the staleness-snapshot cell shared with every Env this
	// controller hands out. PlanCycle freezes the edge table into it inside
	// the first pause of SELECT and PRUNE cycles (and unpins it otherwise),
	// so policy predicates running concurrently with mutators observe one
	// consistent maxStaleUse cut. The degrade path re-runs the same plan,
	// hence the same cut — part of the byte-identical STW oracle contract.
	snap StaleSnapshot

	// nearlyFull is the live OBSERVE → SELECT threshold, stored as
	// math.Float64bits so a daemon's budget-pressure controller can tighten
	// it between collections without racing FinishCycle (which reads it
	// inside the stop-the-world section).
	nearlyFull atomic.Uint64

	exhaustMu  sync.Mutex
	exhausted  bool
	avertedOOM *vmerrors.OutOfMemoryError

	events      []PruneEvent
	totalPruned uint64 // references poisoned over the controller's lifetime
}

// NewController creates a controller over the given class registry.
func NewController(classes *heap.Registry, opts Options) *Controller {
	opts = opts.withDefaults()
	c := &Controller{
		opts:    opts,
		classes: classes,
		edges:   edgetable.New(opts.EdgeTableSlots),
		state:   StateInactive,
	}
	if opts.Forced {
		c.state = opts.ForceState
	}
	c.nearlyFull.Store(math.Float64bits(opts.NearlyFullFraction))
	return c
}

// NearlyFullFraction returns the live OBSERVE → SELECT threshold.
func (c *Controller) NearlyFullFraction() float64 {
	return math.Float64frombits(c.nearlyFull.Load())
}

// SetNearlyFullFraction replaces the OBSERVE → SELECT threshold at runtime.
// Values outside (0, 1) are rejected with false — the same bounds Options
// validation enforces at construction. Multi-tenant hosts tighten this
// under global budget pressure so pruning engages before the budget (not
// just the per-tenant heap limit) is threatened.
func (c *Controller) SetNearlyFullFraction(f float64) bool {
	if math.IsNaN(f) || f <= 0 || f >= 1 {
		return false
	}
	c.nearlyFull.Store(math.Float64bits(f))
	return true
}

// Enabled reports whether pruning is configured (a policy is set).
func (c *Controller) Enabled() bool { return c.opts.Policy != nil }

// State returns the current state.
func (c *Controller) State() State { return c.state }

// Edges exposes the edge table (the read barrier updates maxStaleUse
// through it, and reports read it).
func (c *Controller) Edges() *edgetable.Table { return c.edges }

// Observing reports whether staleness must be tracked: the read barrier's
// cold path consults this before touching the edge table.
func (c *Controller) Observing() bool { return c.state >= StateObserve }

// AvertedOOM returns the recorded out-of-memory error the program would
// have thrown, if it has exhausted memory (or begun pruning) already.
func (c *Controller) AvertedOOM() *vmerrors.OutOfMemoryError {
	c.exhaustMu.Lock()
	defer c.exhaustMu.Unlock()
	return c.avertedOOM
}

// Events returns the prune events recorded so far.
func (c *Controller) Events() []PruneEvent { return c.events }

// TotalPrunedRefs returns the lifetime count of poisoned references.
func (c *Controller) TotalPrunedRefs() uint64 { return c.totalPruned }

// PlanCycle builds the gc.Plan for the next collection according to the
// current state.
func (c *Controller) PlanCycle() gc.Plan {
	// Unpin any previous cycle's staleness cut; SELECT/PRUNE re-pin below.
	c.snap.Pin(nil)
	if !c.Enabled() && !c.opts.Forced {
		return gc.Plan{Mode: gc.ModeNormal}
	}
	switch c.state {
	case StateInactive:
		return gc.Plan{Mode: gc.ModeNormal}
	case StateObserve:
		return gc.Plan{Mode: gc.ModeNormal, TagRefs: true, AgeStaleness: true}
	case StateSelect:
		plan := gc.Plan{Mode: gc.ModeSelect, TagRefs: true, AgeStaleness: true}
		if c.opts.Policy != nil {
			c.cycle = c.opts.Policy.Begin(c.env())
		} else {
			// Forced SELECT without a policy measures the default
			// algorithm's SELECT-state costs without pruning (Figure 7).
			c.cycle = DefaultPolicy{}.Begin(c.env())
		}
		// Freeze after Begin so policies that mutate the table on cycle
		// start (DecayPolicy) have their effect inside the frozen cut.
		c.snap.Pin(c.edges.Freeze())
		plan.Candidate = c.cycle.Candidate
		plan.StaleEdge = c.cycle.StaleEdge
		plan.AccountStaleBytes = c.cycle.AccountStaleBytes
		return plan
	case StatePrune:
		plan := gc.Plan{Mode: gc.ModePrune, TagRefs: true, AgeStaleness: true}
		// Re-freeze at prune time: a use observed between SELECT and PRUNE
		// raises the bar (§4.3) and must be visible to ShouldPrune.
		c.snap.Pin(c.edges.Freeze())
		sel := c.selection
		plan.ShouldPrune = sel.ShouldPrune
		plan.OnPrune = func(_ heap.ObjectID, _ int, src, tgt heap.ClassID) {
			c.edges.RecordPrune(src, tgt)
		}
		return plan
	}
	panic(fmt.Sprintf("core: invalid state %v", c.state))
}

func (c *Controller) env() Env {
	return Env{Edges: c.edges, Classes: c.classes, LastMaxStale: c.lastMaxStale, Snap: &c.snap}
}

// FrozenSnapshot returns the staleness cut pinned for the current cycle,
// or nil outside SELECT/PRUNE cycles (diagnostics and tests).
func (c *Controller) FrozenSnapshot() *edgetable.Frozen { return c.snap.Pinned() }

// FinishCycle consumes the collection result and the post-collection heap
// statistics, performing the state transition of Figure 2.
func (c *Controller) FinishCycle(res gc.Result, hs heap.Stats) {
	c.lastMaxStale = res.MaxStale
	if c.opts.Forced {
		c.cycle = nil
		return
	}
	if !c.Enabled() {
		return
	}
	fullness := hs.Fullness()
	switch c.state {
	case StateInactive:
		if fullness > c.opts.ExpectedUseFraction {
			// Entering OBSERVE is permanent: the application is now
			// considered to be in an unexpected state (§3.1).
			c.state = StateObserve
		}
	case StateObserve:
		if fullness > c.NearlyFullFraction() {
			c.state = StateSelect
		}
	case StateSelect:
		sel, ok := c.cycle.Finish(res)
		c.cycle = nil
		if ok {
			c.selection = sel
			c.haveSel = true
			if !c.opts.FullHeapOnly || c.everPruned || c.hasExhausted() {
				c.state = StatePrune
			}
			// Under FullHeapOnly before the first exhaustion, stay in
			// SELECT; NotifyExhaustion moves to PRUNE when the VM is about
			// to throw an out-of-memory error.
		} else if fullness <= c.NearlyFullFraction() {
			c.state = StateObserve
		}
	case StatePrune:
		c.everPruned = true
		c.recordPruneStart(hs, res.Index)
		c.events = append(c.events, PruneEvent{
			GCIndex:    res.Index,
			Selection:  c.selection.String(),
			PrunedRefs: res.PrunedRefs,
			BytesFreed: res.BytesFreed,
		})
		c.totalPruned += uint64(res.PrunedRefs)
		if c.opts.OnPrune != nil {
			c.opts.OnPrune(c.events[len(c.events)-1])
		}
		c.selection = nil
		c.haveSel = false
		if fullness <= c.NearlyFullFraction() {
			c.state = StateObserve
		} else {
			c.state = StateSelect
		}
	}
}

// WillPruneNext reports whether the next collection will poison references,
// so the VM's allocation slow path knows another collection may help even
// though the last one freed nothing.
func (c *Controller) WillPruneNext() bool { return c.state == StatePrune && c.haveSel }

// InSelect reports whether the next collection runs the SELECT closures.
func (c *Controller) InSelect() bool { return c.state == StateSelect }

func (c *Controller) hasExhausted() bool {
	c.exhaustMu.Lock()
	defer c.exhaustMu.Unlock()
	return c.exhausted
}

// NotifyExhaustion tells the controller the VM is about to throw an
// out-of-memory error (allocation failed even after collecting). It records
// and defers the error (§2) and returns true when another collection could
// still help — i.e. a selection is pending and PRUNE is now authorized
// (the FullHeapOnly path). The VM throws the recorded error only when this
// returns false and no further progress is possible.
func (c *Controller) NotifyExhaustion(hs heap.Stats, request uint64, gcIndex uint64) bool {
	if !c.Enabled() || c.opts.Forced {
		return false
	}
	c.recordOOM(hs, request, gcIndex)
	if c.state == StateSelect && c.haveSel {
		c.state = StatePrune
		return true
	}
	return c.state == StatePrune && c.haveSel
}

// recordPruneStart records the averted OOM the first time pruning runs,
// even when the program never strictly exhausted memory (option (2) treats
// the nearly-full threshold as the effective maximum heap, §3.1). The heap
// state at that moment becomes the error's detail.
func (c *Controller) recordPruneStart(hs heap.Stats, gcIndex uint64) {
	c.exhaustMu.Lock()
	defer c.exhaustMu.Unlock()
	if c.avertedOOM == nil {
		c.avertedOOM = &vmerrors.OutOfMemoryError{
			HeapLimit: hs.Limit,
			BytesUsed: hs.BytesUsed,
			GCIndex:   gcIndex,
			Effective: true,
		}
		if c.opts.OnOOM != nil {
			c.opts.OnOOM(c.avertedOOM)
		}
	}
}

func (c *Controller) recordOOM(hs heap.Stats, request uint64, gcIndex uint64) {
	c.exhaustMu.Lock()
	defer c.exhaustMu.Unlock()
	c.exhausted = true
	if c.avertedOOM == nil || c.avertedOOM.Effective {
		oom := &vmerrors.OutOfMemoryError{
			HeapLimit: hs.Limit,
			BytesUsed: hs.BytesUsed,
			Request:   request,
			GCIndex:   gcIndex,
		}
		first := c.avertedOOM == nil
		if first {
			c.avertedOOM = oom
		} else {
			// Upgrade the effective record in place so InternalErrors
			// created earlier keep pointing at the shared instance.
			*c.avertedOOM = *oom
		}
		if first && c.opts.OnOOM != nil {
			c.opts.OnOOM(c.avertedOOM)
		}
	}
}

// MakeOOM builds the out-of-memory error the VM throws when pruning cannot
// help (or pruning is disabled). When an averted OOM was already recorded,
// that instance is returned so later InternalErrors share the cause.
func (c *Controller) MakeOOM(hs heap.Stats, request uint64, gcIndex uint64) *vmerrors.OutOfMemoryError {
	c.exhaustMu.Lock()
	defer c.exhaustMu.Unlock()
	c.exhausted = true
	if c.avertedOOM != nil {
		if c.avertedOOM.Effective {
			c.avertedOOM.HeapLimit = hs.Limit
			c.avertedOOM.BytesUsed = hs.BytesUsed
			c.avertedOOM.Request = request
			c.avertedOOM.GCIndex = gcIndex
			c.avertedOOM.Effective = false
		}
		return c.avertedOOM
	}
	c.avertedOOM = &vmerrors.OutOfMemoryError{
		HeapLimit: hs.Limit,
		BytesUsed: hs.BytesUsed,
		Request:   request,
		GCIndex:   gcIndex,
	}
	if c.opts.OnOOM != nil {
		c.opts.OnOOM(c.avertedOOM)
	}
	return c.avertedOOM
}
