package core

import (
	"leakpruning/internal/gc"
	"leakpruning/internal/heap"
)

// DefaultDecayPeriod is how many SELECT cycles pass between maxStaleUse
// decays under DecayPolicy.
const DefaultDecayPeriod = 8

// DecayPolicy is the paper's suggested extension for phased programs (§6):
// the default algorithm, plus a periodic decay of every edge type's
// maxStaleUse. JbbMod's Object[] → Order references are used on a long
// phase, which drives their maxStaleUse to ~5 and protects the order spine
// from pruning forever; decaying the value lets staleness re-accumulate
// past the guard between phases, trading some misprediction risk for
// coverage of phased behaviour.
type DecayPolicy struct {
	// Period is the number of SELECT cycles between decays
	// (DefaultDecayPeriod if zero).
	Period int
	// cycles counts SELECT cycles across Begin calls.
	cycles int
}

// Name returns "decay".
func (*DecayPolicy) Name() string { return "decay" }

// Begin starts a SELECT cycle, decaying the edge table first when the
// period has elapsed.
func (p *DecayPolicy) Begin(env Env) Cycle {
	period := p.Period
	if period <= 0 {
		period = DefaultDecayPeriod
	}
	p.cycles++
	if p.cycles%period == 0 {
		env.Edges.DecayMaxStaleUse()
	}
	return &decayCycle{inner: DefaultPolicy{}.Begin(env)}
}

// decayCycle delegates to the default algorithm's cycle.
type decayCycle struct {
	inner Cycle
}

func (c *decayCycle) Candidate(src, tgt heap.ClassID, stale uint8) bool {
	return c.inner.Candidate(src, tgt, stale)
}

func (c *decayCycle) StaleEdge(src, tgt heap.ClassID, stale uint8, tgtBytes uint64) {
	c.inner.StaleEdge(src, tgt, stale, tgtBytes)
}

func (c *decayCycle) AccountStaleBytes(src, tgt heap.ClassID, bytes uint64) {
	c.inner.AccountStaleBytes(src, tgt, bytes)
}

func (c *decayCycle) Finish(res gc.Result) (Selection, bool) {
	return c.inner.Finish(res)
}

var _ Policy = (*DecayPolicy)(nil)
