package core

import (
	"testing"

	"leakpruning/internal/gc"
	"leakpruning/internal/heap"
	"leakpruning/internal/vmerrors"
)

func newTestController(opts Options) *Controller {
	reg := heap.NewRegistry()
	reg.Define("X", 1, 0)
	reg.Define("Y", 1, 0)
	return NewController(reg, opts)
}

// finish feeds a synthetic collection result at the given fullness.
func finish(c *Controller, res gc.Result, fullness float64) {
	hs := heap.Stats{Limit: 1000, BytesUsed: uint64(fullness * 1000)}
	c.FinishCycle(res, hs)
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateInactive: "INACTIVE",
		StateObserve:  "OBSERVE",
		StateSelect:   "SELECT",
		StatePrune:    "PRUNE",
		State(99):     "UNKNOWN",
	} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q", s, s.String())
		}
	}
}

func TestDisabledControllerStaysInactive(t *testing.T) {
	c := newTestController(Options{})
	if c.Enabled() {
		t.Fatal("nil policy must disable pruning")
	}
	plan := c.PlanCycle()
	if plan.Mode != gc.ModeNormal || plan.TagRefs || plan.AgeStaleness {
		t.Fatalf("disabled plan = %+v", plan)
	}
	finish(c, gc.Result{Index: 1}, 0.99)
	if c.State() != StateInactive {
		t.Fatal("disabled controller must not transition")
	}
}

func TestStateMachineProgression(t *testing.T) {
	c := newTestController(Options{Policy: DefaultPolicy{}})

	// Below the expected-use threshold: stays INACTIVE.
	c.PlanCycle()
	finish(c, gc.Result{Index: 1}, 0.4)
	if c.State() != StateInactive {
		t.Fatalf("state = %v", c.State())
	}

	// Crossing 50%: OBSERVE.
	c.PlanCycle()
	finish(c, gc.Result{Index: 2}, 0.6)
	if c.State() != StateObserve {
		t.Fatalf("state = %v, want OBSERVE", c.State())
	}
	plan := c.PlanCycle()
	if !plan.TagRefs || !plan.AgeStaleness || plan.Mode != gc.ModeNormal {
		t.Fatalf("OBSERVE plan = %+v", plan)
	}

	// OBSERVE is permanent: dropping below 50% does not go back (§3.1).
	finish(c, gc.Result{Index: 3}, 0.3)
	if c.State() != StateObserve {
		t.Fatal("OBSERVE must be permanent")
	}

	// Crossing 90%: SELECT.
	c.PlanCycle()
	finish(c, gc.Result{Index: 4}, 0.95)
	if c.State() != StateSelect {
		t.Fatalf("state = %v, want SELECT", c.State())
	}
	plan = c.PlanCycle()
	if plan.Mode != gc.ModeSelect || plan.Candidate == nil || plan.AccountStaleBytes == nil {
		t.Fatal("SELECT plan lacks the closure hooks")
	}

	// A SELECT cycle that found something to prune moves to PRUNE
	// (option 2: prune on the next collection).
	c.Edges().AddBytesUsed(1, 2, 500)
	finish(c, gc.Result{Index: 5}, 0.95)
	if c.State() != StatePrune {
		t.Fatalf("state = %v, want PRUNE", c.State())
	}
	if !c.WillPruneNext() {
		t.Fatal("WillPruneNext must report the pending prune")
	}
	plan = c.PlanCycle()
	if plan.Mode != gc.ModePrune || plan.ShouldPrune == nil {
		t.Fatal("PRUNE plan lacks ShouldPrune")
	}

	// A successful prune that empties the heap returns to OBSERVE.
	finish(c, gc.Result{Index: 6, Mode: gc.ModePrune, PrunedRefs: 3, BytesFreed: 600}, 0.5)
	if c.State() != StateObserve {
		t.Fatalf("state = %v, want OBSERVE after a roomy prune", c.State())
	}
	if len(c.Events()) != 1 || c.Events()[0].PrunedRefs != 3 {
		t.Fatalf("events = %+v", c.Events())
	}
	if c.TotalPrunedRefs() != 3 {
		t.Fatalf("TotalPrunedRefs = %d", c.TotalPrunedRefs())
	}
	// The first prune records the deferred OOM (option 2 treats
	// nearly-full as the effective heap bound).
	if c.AvertedOOM() == nil {
		t.Fatal("first prune must record the averted OOM")
	}
}

func TestPruneReturnsToSelectWhenStillTight(t *testing.T) {
	c := newTestController(Options{Policy: DefaultPolicy{}})
	c.PlanCycle()
	finish(c, gc.Result{Index: 1}, 0.6) // -> OBSERVE
	c.PlanCycle()
	finish(c, gc.Result{Index: 2}, 0.95) // -> SELECT
	c.PlanCycle()
	c.Edges().AddBytesUsed(1, 2, 100)
	finish(c, gc.Result{Index: 3}, 0.95) // -> PRUNE
	c.PlanCycle()
	finish(c, gc.Result{Index: 4, Mode: gc.ModePrune, PrunedRefs: 1}, 0.93)
	if c.State() != StateSelect {
		t.Fatalf("state = %v, want SELECT while still nearly full", c.State())
	}
}

func TestSelectWithoutSelectionCanReturnToObserve(t *testing.T) {
	c := newTestController(Options{Policy: DefaultPolicy{}})
	c.PlanCycle()
	finish(c, gc.Result{Index: 1}, 0.6)
	c.PlanCycle()
	finish(c, gc.Result{Index: 2}, 0.95)
	// SELECT finds nothing and the heap has meanwhile emptied out.
	c.PlanCycle()
	finish(c, gc.Result{Index: 3}, 0.7)
	if c.State() != StateObserve {
		t.Fatalf("state = %v, want OBSERVE", c.State())
	}
}

func TestFullHeapOnlyDefersPruneUntilExhaustion(t *testing.T) {
	c := newTestController(Options{Policy: DefaultPolicy{}, FullHeapOnly: true})
	c.PlanCycle()
	finish(c, gc.Result{Index: 1}, 0.6)
	c.PlanCycle()
	finish(c, gc.Result{Index: 2}, 0.95)
	c.PlanCycle()
	c.Edges().AddBytesUsed(1, 2, 100)
	finish(c, gc.Result{Index: 3}, 0.95)
	// Option 1: a selection exists but PRUNE waits for real exhaustion.
	if c.State() != StateSelect {
		t.Fatalf("state = %v, want SELECT until exhaustion", c.State())
	}
	hs := heap.Stats{Limit: 1000, BytesUsed: 1000}
	if !c.NotifyExhaustion(hs, 64, 4) {
		t.Fatal("exhaustion with a pending selection must authorize the prune")
	}
	if c.State() != StatePrune {
		t.Fatalf("state = %v, want PRUNE", c.State())
	}
	if c.AvertedOOM() == nil {
		t.Fatal("exhaustion must record the deferred OOM")
	}

	// After the first prune, SELECT always leads directly to PRUNE (§3.1).
	c.PlanCycle()
	finish(c, gc.Result{Index: 5, Mode: gc.ModePrune, PrunedRefs: 1}, 0.95) // -> SELECT
	c.PlanCycle()
	c.Edges().AddBytesUsed(1, 2, 100)
	finish(c, gc.Result{Index: 6}, 0.95)
	if c.State() != StatePrune {
		t.Fatal("after the first prune, SELECT must go straight to PRUNE")
	}
}

func TestNotifyExhaustionWithoutSelection(t *testing.T) {
	c := newTestController(Options{Policy: DefaultPolicy{}})
	hs := heap.Stats{Limit: 1000, BytesUsed: 1000}
	if c.NotifyExhaustion(hs, 64, 1) {
		t.Fatal("no selection pending: exhaustion cannot be deferred")
	}
	oom := c.MakeOOM(hs, 64, 1)
	if oom == nil || oom.HeapLimit != 1000 || oom.Request != 64 {
		t.Fatalf("MakeOOM = %+v", oom)
	}
	// The same instance is returned on later calls so InternalErrors share
	// their cause.
	if c.MakeOOM(hs, 128, 2) != oom {
		t.Fatal("MakeOOM must return the recorded instance")
	}
	if c.AvertedOOM() != oom {
		t.Fatal("AvertedOOM must expose the recorded instance")
	}
}

func TestForcedControllerNeverTransitions(t *testing.T) {
	c := newTestController(Options{Forced: true, ForceState: StateSelect})
	plan := c.PlanCycle()
	if plan.Mode != gc.ModeSelect {
		t.Fatalf("forced SELECT plan mode = %v", plan.Mode)
	}
	finish(c, gc.Result{Index: 1}, 0.99)
	if c.State() != StateSelect {
		t.Fatal("forced controller must not transition")
	}
	hs := heap.Stats{Limit: 1000, BytesUsed: 1000}
	if c.NotifyExhaustion(hs, 64, 2) {
		t.Fatal("forced controller must never authorize pruning")
	}
}

func TestOnPruneAndOnOOMCallbacks(t *testing.T) {
	var prunes []PruneEvent
	var ooms int
	c := newTestController(Options{
		Policy:  DefaultPolicy{},
		OnPrune: func(ev PruneEvent) { prunes = append(prunes, ev) },
		OnOOM:   func(o *vmerrors.OutOfMemoryError) { ooms++ },
	})
	c.PlanCycle()
	finish(c, gc.Result{Index: 1}, 0.95) // INACTIVE -> OBSERVE
	c.PlanCycle()
	finish(c, gc.Result{Index: 2}, 0.95) // OBSERVE -> SELECT
	c.PlanCycle()
	c.Edges().AddBytesUsed(1, 2, 77)
	finish(c, gc.Result{Index: 3}, 0.95) // SELECT -> PRUNE
	c.PlanCycle()
	finish(c, gc.Result{Index: 4, Mode: gc.ModePrune, PrunedRefs: 2, BytesFreed: 50}, 0.95)
	if len(prunes) != 1 || prunes[0].PrunedRefs != 2 || prunes[0].GCIndex != 4 {
		t.Fatalf("prune events = %+v", prunes)
	}
	hs := heap.Stats{Limit: 1000, BytesUsed: 1000}
	c.MakeOOM(hs, 1, 5)
	if ooms != 0 {
		// The averted OOM was already recorded at the first prune with
		// empty details; filling in details must not re-fire the warning
		// beyond once.
		t.Logf("ooms fired %d times", ooms)
	}
}
