package core

import (
	"testing"

	"leakpruning/internal/gc"
)

func TestDecayPolicyDelegatesToDefault(t *testing.T) {
	env := testEnv()
	p := &DecayPolicy{Period: 100}
	c := p.Begin(env)
	if !c.Candidate(1, 2, 2) {
		t.Fatal("decay cycle must use the default candidate guard")
	}
	c.AccountStaleBytes(1, 2, 1234)
	sel, ok := c.Finish(gc.Result{})
	if !ok {
		t.Fatal("no selection")
	}
	if !sel.ShouldPrune(1, 2, 2) {
		t.Fatal("selection must prune like the default")
	}
}

func TestDecayPolicyDecaysOnPeriod(t *testing.T) {
	env := testEnv()
	env.Edges.RecordUse(1, 2, 5)
	p := &DecayPolicy{Period: 2}
	p.Begin(env) // cycle 1: no decay
	if got := env.Edges.MaxStaleUseFor(1, 2); got != 5 {
		t.Fatalf("maxStaleUse decayed early: %d", got)
	}
	p.Begin(env) // cycle 2: decay
	if got := env.Edges.MaxStaleUseFor(1, 2); got != 4 {
		t.Fatalf("maxStaleUse after decay = %d, want 4", got)
	}
	p.Begin(env)
	p.Begin(env)
	if got := env.Edges.MaxStaleUseFor(1, 2); got != 3 {
		t.Fatalf("maxStaleUse after second decay = %d, want 3", got)
	}
}

func TestDecayPolicyName(t *testing.T) {
	p, err := PolicyByName("decay")
	if err != nil || p.Name() != "decay" {
		t.Fatalf("PolicyByName(decay) = %v, %v", p, err)
	}
}
