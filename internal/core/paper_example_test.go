package core

import (
	"strings"
	"testing"

	"leakpruning/internal/edgetable"
	"leakpruning/internal/gc"
	"leakpruning/internal/heap"
)

// TestPaperFigureExample reproduces the worked example of Figures 3–5
// exactly: the heap
//
//	roots -> a1, e1
//	a1 -> b1, b2, b3, b4
//	b1 -> c1 -> d1, d2
//	b2 -> c2 -> d3, d4
//	b3 -> c3 -> d5, d6
//	b4 -> c4 -> d7, d8
//	e1 -> c4
//
// with stale counters c1=2, c2=1, c3=3, c4=3 and maxStaleUse(E->C)=2.
//
// SELECT must defer exactly the candidates b1->c1, b3->c3, and b4->c4
// (b2->c2 is not stale enough; e1->c4 needs staleness >= 4 because of the
// edge type's maxStaleUse), attribute to B->C only the bytes of the six
// gray objects (c1,d1,d2,c3,d5,d6 — c4's subtree is claimed by the in-use
// closure via e1), and select B->C. PRUNE must poison all three candidate
// references and reclaim exactly the gray objects, leaving c4, d7, d8 alive
// through e1 (Figure 4).
type exampleRoots struct{ refs []heap.Ref }

func (r *exampleRoots) VisitRoots(fn func(heap.Ref)) {
	for _, ref := range r.refs {
		fn(ref)
	}
}

func TestPaperFigureExample(t *testing.T) {
	reg := heap.NewRegistry()
	clsA := reg.Define("A", 4, 0)
	clsB := reg.Define("B", 1, 0)
	clsC := reg.Define("C", 2, 0)
	clsD := reg.Define("D", 0, 0)
	clsE := reg.Define("E", 1, 0)

	h := heap.New(reg, 1<<20)
	alloc := func(cls heap.ClassID) heap.Ref {
		r, err := h.Allocate(cls)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	link := func(src heap.Ref, slot int, tgt heap.Ref) { h.Get(src).SetRef(slot, tgt) }

	a1 := alloc(clsA)
	e1 := alloc(clsE)
	b := make([]heap.Ref, 5)
	c := make([]heap.Ref, 5)
	d := make([]heap.Ref, 9)
	for i := 1; i <= 4; i++ {
		b[i] = alloc(clsB)
		c[i] = alloc(clsC)
		link(a1, i-1, b[i])
		link(b[i], 0, c[i])
	}
	for i := 1; i <= 8; i++ {
		d[i] = alloc(clsD)
	}
	link(c[1], 0, d[1])
	link(c[1], 1, d[2])
	link(c[2], 0, d[3])
	link(c[2], 1, d[4])
	link(c[3], 0, d[5])
	link(c[3], 1, d[6])
	link(c[4], 0, d[7])
	link(c[4], 1, d[8])
	link(e1, 0, c[4])

	// Stale counters from Figure 5.
	h.Get(c[1]).SetStale(2)
	h.Get(c[2]).SetStale(1)
	h.Get(c[3]).SetStale(3)
	h.Get(c[4]).SetStale(3)

	edges := edgetable.New(64)
	// The program previously used an E -> C reference at staleness 2.
	edges.RecordUse(clsE, clsC, 2)

	roots := &exampleRoots{refs: []heap.Ref{a1, e1}}
	col := gc.NewCollector(h, roots, 1)
	env := Env{Edges: edges, Classes: reg}

	// --- SELECT ---
	cycle := DefaultPolicy{}.Begin(env)
	plan := gc.Plan{
		Mode:              gc.ModeSelect,
		TagRefs:           true,
		Candidate:         cycle.Candidate,
		StaleEdge:         cycle.StaleEdge,
		AccountStaleBytes: cycle.AccountStaleBytes,
	}
	res := col.Collect(plan)

	if res.Candidates != 3 {
		t.Fatalf("SELECT deferred %d candidates, want 3 (b1->c1, b3->c3, b4->c4)", res.Candidates)
	}
	if res.ObjectsFreed != 0 {
		t.Fatal("SELECT must not reclaim anything")
	}

	entry, ok := edges.Get(clsB, clsC)
	if !ok {
		t.Fatal("no B->C edge entry after the stale closure")
	}
	// The gray objects: c1, d1, d2 and c3, d5, d6. The subtree at c4 is
	// processed by the in-use closure (reachable via e1 -> c4), so the
	// b4 -> c4 candidate contributes nothing.
	wantBytes := 2 * (h.Get(c[1]).Size() + h.Get(d[1]).Size() + h.Get(d[2]).Size())
	if entry.BytesUsed() != wantBytes {
		t.Fatalf("bytesUsed(B->C) = %d, want %d", entry.BytesUsed(), wantBytes)
	}

	sel, ok := cycle.Finish(res)
	if !ok {
		t.Fatal("SELECT chose nothing")
	}
	if !strings.HasPrefix(sel.String(), "B -> C") {
		t.Fatalf("selected %q, want the B -> C edge type", sel.String())
	}
	// Finish resets every bytesUsed (§4.2).
	edges.ForEach(func(e *edgetable.Entry) {
		if e.BytesUsed() != 0 {
			t.Fatalf("bytesUsed not reset for %v", e.Key())
		}
	})

	// --- PRUNE ---
	pres := col.Collect(gc.Plan{
		Mode:        gc.ModePrune,
		TagRefs:     true,
		ShouldPrune: sel.ShouldPrune,
	})
	if pres.PrunedRefs != 3 {
		t.Fatalf("PRUNE poisoned %d refs, want 3", pres.PrunedRefs)
	}

	// Figure 4: b1->c1*, b3->c3*, b4->c4* poisoned; the gray objects are
	// reclaimed; c4, d7, d8 survive through e1.
	for _, bi := range []int{1, 3, 4} {
		slot := h.Get(b[bi]).Ref(0)
		if !slot.IsPoisoned() {
			t.Fatalf("b%d -> c%d not poisoned", bi, bi)
		}
	}
	if h.Get(b[2]).Ref(0).IsPoisoned() {
		t.Fatal("b2 -> c2 must not be poisoned")
	}
	if h.Get(e1).Ref(0).IsPoisoned() {
		t.Fatal("e1 -> c4 must not be poisoned")
	}

	dead := []heap.Ref{c[1], d[1], d[2], c[3], d[5], d[6]}
	for _, r := range dead {
		if _, ok := h.Lookup(r.ID()); ok {
			t.Fatalf("%v should have been reclaimed", r)
		}
	}
	live := []heap.Ref{a1, e1, b[1], b[2], b[3], b[4], c[2], d[3], d[4], c[4], d[7], d[8]}
	for _, r := range live {
		if _, ok := h.Lookup(r.ID()); !ok {
			t.Fatalf("%v should have survived", r)
		}
	}
	if got := h.Stats().ObjectsUsed; got != uint64(len(live)) {
		t.Fatalf("live objects = %d, want %d", got, len(live))
	}
}
