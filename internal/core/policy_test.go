package core

import (
	"testing"
	"testing/quick"

	"leakpruning/internal/edgetable"
	"leakpruning/internal/gc"
	"leakpruning/internal/heap"
)

func testEnv() Env {
	reg := heap.NewRegistry()
	reg.Define("S1", 1, 0)
	reg.Define("T1", 1, 0)
	reg.Define("S2", 1, 0)
	reg.Define("T2", 1, 0)
	return Env{Edges: edgetable.New(64), Classes: reg}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"default", "most-stale", "indiv-refs"} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestDefaultCandidateGuard(t *testing.T) {
	env := testEnv()
	c := DefaultPolicy{}.Begin(env)
	// Unknown edge type: maxStaleUse 0, so the guard is staleness >= 2.
	if c.Candidate(1, 2, 1) {
		t.Fatal("staleness 1 must not be a candidate")
	}
	if !c.Candidate(1, 2, 2) {
		t.Fatal("staleness 2 with maxStaleUse 0 must be a candidate")
	}
	// After the program uses this edge type at staleness 3, the bar is 5.
	env.Edges.RecordUse(1, 2, 3)
	if c.Candidate(1, 2, 4) {
		t.Fatal("staleness below maxStaleUse+2 must be protected")
	}
	if !c.Candidate(1, 2, 5) {
		t.Fatal("staleness maxStaleUse+2 must be a candidate")
	}
	// A saturated maxStaleUse protects the edge type permanently: the
	// 3-bit counter cannot reach 7+2 (the paper's JbbMod Object[]->Order
	// behaviour at maxStaleUse 5 is the near-miss version of this).
	env.Edges.RecordUse(1, 2, 7)
	if c.Candidate(1, 2, heap.MaxStale) {
		t.Fatal("saturated maxStaleUse must protect the edge type")
	}
}

func TestDefaultSelectsLargestDataStructure(t *testing.T) {
	env := testEnv()
	c := DefaultPolicy{}.Begin(env)
	c.AccountStaleBytes(1, 2, 1000)
	c.AccountStaleBytes(3, 4, 4000)
	c.AccountStaleBytes(1, 2, 500)
	sel, ok := c.Finish(gc.Result{})
	if !ok {
		t.Fatal("no selection")
	}
	es := sel.(*EdgeSelection)
	if es.Src != 3 || es.Tgt != 4 || es.Bytes != 4000 {
		t.Fatalf("selected %+v", es)
	}
	if !sel.ShouldPrune(3, 4, 2) {
		t.Fatal("selection must prune its own edge type at staleness 2")
	}
	if sel.ShouldPrune(1, 2, 7) {
		t.Fatal("selection must not prune other edge types")
	}
	if sel.ShouldPrune(3, 4, 1) {
		t.Fatal("selection must respect the staleness guard")
	}
}

func TestDefaultSelectionTracksMaxStaleUseAtPruneTime(t *testing.T) {
	env := testEnv()
	c := DefaultPolicy{}.Begin(env)
	c.AccountStaleBytes(1, 2, 100)
	sel, _ := c.Finish(gc.Result{})
	if !sel.ShouldPrune(1, 2, 3) {
		t.Fatal("prunable before the use")
	}
	// A use observed between SELECT and PRUNE raises the bar (§4.3 prunes
	// against the entry's *current* maxStaleUse).
	env.Edges.RecordUse(1, 2, 4)
	if sel.ShouldPrune(1, 2, 3) {
		t.Fatal("prune threshold must follow maxStaleUse")
	}
	if !sel.ShouldPrune(1, 2, 6) {
		t.Fatal("staleness 6 >= 4+2 must still prune")
	}
}

func TestDefaultNoSelectionWhenNothingStale(t *testing.T) {
	env := testEnv()
	c := DefaultPolicy{}.Begin(env)
	if _, ok := c.Finish(gc.Result{}); ok {
		t.Fatal("empty edge table must select nothing")
	}
}

func TestMostStalePolicy(t *testing.T) {
	env := testEnv()
	c := MostStalePolicy{}.Begin(env)
	if c.Candidate(1, 2, 7) {
		t.Fatal("most-stale elides the candidate queue entirely")
	}
	if _, ok := c.Finish(gc.Result{MaxStale: 1}); ok {
		t.Fatal("nothing stale enough: no selection")
	}
	sel, ok := c.Finish(gc.Result{MaxStale: 5})
	if !ok {
		t.Fatal("no selection at max staleness 5")
	}
	if !sel.ShouldPrune(1, 2, 5) || !sel.ShouldPrune(3, 4, 6) {
		t.Fatal("most-stale prunes every edge type at the level")
	}
	if sel.ShouldPrune(1, 2, 4) {
		t.Fatal("below the level must survive")
	}
}

func TestIndivRefsAccountsTargetSizesOnly(t *testing.T) {
	env := testEnv()
	c := IndivRefsPolicy{}.Begin(env)
	if c.Candidate(1, 2, 7) {
		t.Fatal("indiv-refs elides the candidate queue")
	}
	// Two stale references to big individual targets on edge (1,2); one
	// bigger aggregate structure would have been on (3,4), but without the
	// stale closure only per-target sizes count.
	c.StaleEdge(1, 2, 3, 5000)
	c.StaleEdge(1, 2, 3, 5000)
	c.StaleEdge(3, 4, 3, 600)
	// Not stale enough relative to maxStaleUse: ignored.
	env.Edges.RecordUse(3, 4, 4)
	c.StaleEdge(3, 4, 5, 100000)
	sel, ok := c.Finish(gc.Result{})
	if !ok {
		t.Fatal("no selection")
	}
	es := sel.(*EdgeSelection)
	if es.Src != 1 || es.Tgt != 2 || es.Bytes != 10000 {
		t.Fatalf("selected %+v", es)
	}
}

// TestDefaultSelectionQuick: for arbitrary byte attributions, Finish always
// returns the edge with the maximum accumulated bytes, and afterwards the
// table is fully reset.
func TestDefaultSelectionQuick(t *testing.T) {
	prop := func(contribs []uint16) bool {
		env := testEnv()
		c := DefaultPolicy{}.Begin(env)
		totals := map[edgetable.Key]uint64{}
		for i, b := range contribs {
			key := edgetable.Key{Src: heap.ClassID(i%3 + 1), Tgt: heap.ClassID(i%2 + 1)}
			c.AccountStaleBytes(key.Src, key.Tgt, uint64(b))
			totals[key] += uint64(b)
		}
		var best uint64
		for _, v := range totals {
			if v > best {
				best = v
			}
		}
		sel, ok := c.Finish(gc.Result{})
		if best == 0 {
			return !ok
		}
		if !ok {
			return false
		}
		es := sel.(*EdgeSelection)
		reset := true
		env.Edges.ForEach(func(e *edgetable.Entry) {
			if e.BytesUsed() != 0 {
				reset = false
			}
		})
		return es.Bytes == best && reset
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
