package core

import (
	"fmt"

	"leakpruning/internal/edgetable"
	"leakpruning/internal/gc"
	"leakpruning/internal/heap"
)

// Env gives policies access to the runtime structures they select over.
type Env struct {
	Edges   *edgetable.Table
	Classes *heap.Registry
	// LastMaxStale is the highest stale counter among live objects observed
	// by the most recent collection (after aging).
	LastMaxStale uint8
	// Snap, when non-nil, is the controller-owned staleness-snapshot cell.
	// The controller freezes the edge table into it inside the first pause
	// of every SELECT and PRUNE cycle, so policy predicates evaluated while
	// mutators run (the concurrent mark modes) observe one consistent cut
	// of maxStaleUse instead of racing the read barrier's live updates.
	// Policies read through Env.MaxStaleUseFor to get this automatically.
	Snap *StaleSnapshot
}

// MaxStaleUseFor returns the edge type's maxStaleUse as of the current
// cycle's staleness cut: the frozen snapshot when one is pinned, the live
// table otherwise (Envs built without a controller, e.g. in tests).
func (e Env) MaxStaleUseFor(src, tgt heap.ClassID) uint8 {
	if e.Snap != nil {
		if f := e.Snap.frozen; f != nil {
			return f.MaxStaleUseFor(src, tgt)
		}
	}
	return e.Edges.MaxStaleUseFor(src, tgt)
}

// StaleSnapshot is the mutable cell through which a controller pins the
// edge table's staleness cut for the duration of one SELECT or PRUNE
// cycle. It is written only inside stop-the-world pauses (PlanCycle) and
// read by policy predicates during the cycle, so no atomics are needed:
// the world restart orders the write before every concurrent read.
type StaleSnapshot struct {
	frozen *edgetable.Frozen
}

// Pin replaces the snapshot's frozen cut (nil unpins, restoring live
// reads). Call only while the world is stopped.
func (s *StaleSnapshot) Pin(f *edgetable.Frozen) { s.frozen = f }

// Pinned returns the currently pinned cut, or nil.
func (s *StaleSnapshot) Pinned() *edgetable.Frozen { return s.frozen }

// Policy is a prediction algorithm for choosing references to prune. The
// paper's default algorithm and the two simpler baselines of §6.1 implement
// it; user code can supply its own (see examples/custompolicy).
type Policy interface {
	// Name identifies the policy in reports ("default", "most-stale",
	// "indiv-refs").
	Name() string
	// Begin starts one SELECT-state collection cycle. The returned Cycle's
	// hook methods are wired into the collector's Plan and may be called
	// concurrently by tracer workers.
	Begin(env Env) Cycle
}

// Cycle observes one SELECT-state collection and then produces a Selection.
type Cycle interface {
	// Candidate implements gc.Plan.Candidate: defer this reference to the
	// stale closure? Policies that elide the stale closure return false.
	Candidate(src, tgt heap.ClassID, stale uint8) bool
	// StaleEdge implements gc.Plan.StaleEdge: called for every traced
	// reference whose target has stale counter >= 2.
	StaleEdge(src, tgt heap.ClassID, stale uint8, tgtBytes uint64)
	// AccountStaleBytes implements gc.Plan.AccountStaleBytes: called with
	// the stale closure's per-candidate subgraph sizes.
	AccountStaleBytes(src, tgt heap.ClassID, bytes uint64)
	// Finish inspects the collection result and returns what to prune, or
	// false when nothing is worth pruning.
	Finish(res gc.Result) (Selection, bool)
}

// Selection decides, during a PRUNE-state collection, which references are
// poisoned.
type Selection interface {
	// ShouldPrune reports whether to poison a src→tgt reference whose
	// target has the given stale counter.
	ShouldPrune(src, tgt heap.ClassID, stale uint8) bool
	// String describes the selection for pruning reports.
	String() string
}

// staleGuard is the margin the default algorithm requires between a
// target's stale counter and its edge type's maxStaleUse. The paper
// conservatively uses two (not one) because the counters only approximate
// the logarithm of staleness (§4.2).
const staleGuard = 2

// ---------------------------------------------------------------------------
// Default policy (§4.2): edge types + data-structure sizing.

// DefaultPolicy is the paper's algorithm: the in-use closure defers
// references whose targets are at least staleGuard more stale than their
// edge type's maxStaleUse; the stale closure sizes each deferred data
// structure; the edge type with the most bytes is selected.
type DefaultPolicy struct{}

// Name returns "default".
func (DefaultPolicy) Name() string { return "default" }

// Begin starts a SELECT cycle.
func (DefaultPolicy) Begin(env Env) Cycle { return &defaultCycle{env: env} }

type defaultCycle struct {
	env Env
}

func (c *defaultCycle) Candidate(src, tgt heap.ClassID, stale uint8) bool {
	return stale >= c.env.MaxStaleUseFor(src, tgt)+staleGuard
}

func (c *defaultCycle) StaleEdge(src, tgt heap.ClassID, stale uint8, tgtBytes uint64) {}

func (c *defaultCycle) AccountStaleBytes(src, tgt heap.ClassID, bytes uint64) {
	c.env.Edges.AddBytesUsed(src, tgt, bytes)
}

func (c *defaultCycle) Finish(res gc.Result) (Selection, bool) {
	entry, ok := c.env.Edges.MaxBytesUsed()
	if !ok || entry.BytesUsed() == 0 {
		c.env.Edges.ResetBytesUsed()
		return nil, false
	}
	sel := &EdgeSelection{
		Src:   entry.Key().Src,
		Tgt:   entry.Key().Tgt,
		Bytes: entry.BytesUsed(),
		env:   c.env,
	}
	c.env.Edges.ResetBytesUsed()
	return sel, true
}

// EdgeSelection prunes references of one (source class → target class) edge
// type whose targets are sufficiently stale. The staleness threshold reads
// the edge type's maxStaleUse as of the PRUNE cycle's staleness cut (the
// controller re-freezes the table inside that cycle's first pause), as the
// paper's PRUNE state does (§4.3), so a use observed between SELECT and
// PRUNE raises the bar.
type EdgeSelection struct {
	Src, Tgt heap.ClassID
	Bytes    uint64
	env      Env
}

// ShouldPrune matches the selected edge type with the staleness guard.
func (s *EdgeSelection) ShouldPrune(src, tgt heap.ClassID, stale uint8) bool {
	if src != s.Src || tgt != s.Tgt {
		return false
	}
	return stale >= s.env.MaxStaleUseFor(src, tgt)+staleGuard
}

// String renders the edge type like the paper's reports, e.g.
// "B -> C (120 bytes)".
func (s *EdgeSelection) String() string {
	return fmt.Sprintf("%s -> %s (%d bytes)", s.env.Classes.Name(s.Src), s.env.Classes.Name(s.Tgt), s.Bytes)
}

// ---------------------------------------------------------------------------
// Most-stale policy (§6.1): the LeakSurvivor/Melt-like baseline.

// MostStalePolicy identifies the highest staleness level of any live object
// and prunes all references to every object at that level, ignoring edge
// types and data structures. It is effectively the prediction used by
// systems that offload stale objects to disk — too imprecise for pruning,
// as Table 2 shows.
type MostStalePolicy struct{}

// Name returns "most-stale".
func (MostStalePolicy) Name() string { return "most-stale" }

// Begin starts a SELECT cycle.
func (MostStalePolicy) Begin(env Env) Cycle { return &mostStaleCycle{} }

type mostStaleCycle struct{}

func (c *mostStaleCycle) Candidate(src, tgt heap.ClassID, stale uint8) bool     { return false }
func (c *mostStaleCycle) StaleEdge(src, tgt heap.ClassID, s uint8, b uint64)    {}
func (c *mostStaleCycle) AccountStaleBytes(src, tgt heap.ClassID, bytes uint64) {}

func (c *mostStaleCycle) Finish(res gc.Result) (Selection, bool) {
	if res.MaxStale < staleGuard {
		return nil, false
	}
	return &StaleLevelSelection{Level: res.MaxStale}, true
}

// StaleLevelSelection prunes every reference whose target's stale counter
// has reached Level, regardless of edge type.
type StaleLevelSelection struct {
	Level uint8
}

// ShouldPrune matches any reference to an object at the selected level.
func (s *StaleLevelSelection) ShouldPrune(src, tgt heap.ClassID, stale uint8) bool {
	return stale >= s.Level
}

// String describes the staleness level.
func (s *StaleLevelSelection) String() string {
	return fmt.Sprintf("all references to objects with staleness >= %d", s.Level)
}

// ---------------------------------------------------------------------------
// Individual-references policy (§6.1).

// IndivRefsPolicy modifies the default algorithm by eliding the candidate
// queue and the stale transitive closure: every sufficiently stale
// reference contributes only its target object's own size to its edge
// type's bytesUsed, so the selection sees individual references rather than
// data structures. Table 2 shows why this fails on EclipseCP: it selects
// the bulky-but-live String → char[] edge instead of the dead structures
// rooted above the strings.
type IndivRefsPolicy struct{}

// Name returns "indiv-refs".
func (IndivRefsPolicy) Name() string { return "indiv-refs" }

// Begin starts a SELECT cycle.
func (IndivRefsPolicy) Begin(env Env) Cycle { return &indivRefsCycle{env: env} }

type indivRefsCycle struct {
	env Env
}

func (c *indivRefsCycle) Candidate(src, tgt heap.ClassID, stale uint8) bool { return false }

func (c *indivRefsCycle) StaleEdge(src, tgt heap.ClassID, stale uint8, tgtBytes uint64) {
	if stale >= c.env.MaxStaleUseFor(src, tgt)+staleGuard {
		c.env.Edges.AddBytesUsed(src, tgt, tgtBytes)
	}
}

func (c *indivRefsCycle) AccountStaleBytes(src, tgt heap.ClassID, bytes uint64) {}

func (c *indivRefsCycle) Finish(res gc.Result) (Selection, bool) {
	entry, ok := c.env.Edges.MaxBytesUsed()
	if !ok || entry.BytesUsed() == 0 {
		c.env.Edges.ResetBytesUsed()
		return nil, false
	}
	sel := &EdgeSelection{
		Src:   entry.Key().Src,
		Tgt:   entry.Key().Tgt,
		Bytes: entry.BytesUsed(),
		env:   c.env,
	}
	c.env.Edges.ResetBytesUsed()
	return sel, true
}

// PolicyByName returns the built-in policy with the given name: "default",
// "most-stale", "indiv-refs", or "decay" (the default algorithm with
// periodic maxStaleUse decay, the paper's suggested extension for phased
// programs).
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "default":
		return DefaultPolicy{}, nil
	case "most-stale":
		return MostStalePolicy{}, nil
	case "indiv-refs":
		return IndivRefsPolicy{}, nil
	case "decay":
		return &DecayPolicy{}, nil
	}
	return nil, fmt.Errorf("core: unknown policy %q", name)
}
