// Package core implements leak pruning itself: the INACTIVE → OBSERVE →
// SELECT → PRUNE state machine driven by heap fullness after each full-heap
// collection (§3), the prediction policies that choose which references to
// poison (§4, §6.1), and the deferred out-of-memory bookkeeping that
// preserves program semantics (§2).
//
// The controller owns policy; the collector (package gc) supplies
// mechanism. Each collection cycle, the VM asks the controller for a
// gc.Plan, runs the collection, and reports the result back; the controller
// transitions states and, in SELECT cycles, chooses what the next PRUNE
// cycle will poison.
package core

// State is the leak-pruning controller state (§3, Figure 2).
type State int

const (
	// StateInactive performs no analysis: reachable memory is below the
	// expected-use threshold, so the program is behaving normally.
	StateInactive State = iota
	// StateObserve tracks staleness (object counters, reference tags, edge
	// table maxStaleUse) after reachable memory first exceeds the expected
	// threshold. Entering OBSERVE is permanent.
	StateObserve
	// StateSelect runs the two-phase closure when the heap is nearly full,
	// choosing an edge type to prune.
	StateSelect
	// StatePrune poisons the selected references during the next collection
	// and reclaims everything reachable only through them.
	StatePrune
)

// String returns the paper's name for the state.
func (s State) String() string {
	switch s {
	case StateInactive:
		return "INACTIVE"
	case StateObserve:
		return "OBSERVE"
	case StateSelect:
		return "SELECT"
	case StatePrune:
		return "PRUNE"
	}
	return "UNKNOWN"
}
