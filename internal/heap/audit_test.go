package heap

import (
	"strings"
	"testing"

	"leakpruning/internal/faultinject"
)

func auditMustBeClean(t *testing.T, h *Heap, stage string) {
	t.Helper()
	if v := h.Audit(); len(v) != 0 {
		t.Fatalf("%s: audit violations: %v", stage, v)
	}
}

func TestAuditCleanHeap(t *testing.T) {
	reg := NewRegistry()
	node := reg.Define("Node", 2, 32)
	h := New(reg, 1<<20)
	auditMustBeClean(t, h, "empty")

	var ids []ObjectID
	for i := 0; i < 300; i++ {
		r, err := h.Allocate(node)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID())
	}
	auditMustBeClean(t, h, "after alloc")

	for _, id := range ids[:150] {
		h.Free(id)
	}
	auditMustBeClean(t, h, "after free")

	// Recycling freed slots must keep the audit clean too.
	for i := 0; i < 100; i++ {
		if _, err := h.Allocate(node); err != nil {
			t.Fatal(err)
		}
	}
	auditMustBeClean(t, h, "after recycle")
}

func TestAuditWithOffloadedObjects(t *testing.T) {
	reg := NewRegistry()
	node := reg.Define("Node", 0, 64)
	h := New(reg, 1<<20)
	h.SetDiskLimit(1 << 20)
	var ids []ObjectID
	for i := 0; i < 20; i++ {
		r, err := h.Allocate(node)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID())
	}
	for _, id := range ids[:10] {
		if err := h.Offload(id); err != nil {
			t.Fatal(err)
		}
	}
	auditMustBeClean(t, h, "offloaded")
	if err := h.FaultIn(ids[0]); err != nil {
		t.Fatal(err)
	}
	h.Free(ids[1]) // free an offloaded object: disk account must follow
	auditMustBeClean(t, h, "after fault-in and free")
}

func TestAuditDetectsCounterDrift(t *testing.T) {
	reg := NewRegistry()
	node := reg.Define("Node", 0, 16)
	h := New(reg, 1<<20)
	if _, err := h.Allocate(node); err != nil {
		t.Fatal(err)
	}
	h.shards[3].bytesAlloc += 8 // simulated accounting drift
	v := h.Audit()
	if len(v) == 0 {
		t.Fatal("audit missed per-shard byte drift")
	}
	if !strings.Contains(strings.Join(v, "\n"), "shard 3") {
		t.Fatalf("audit did not attribute the drift to shard 3: %v", v)
	}
}

func TestAuditDetectsUsedBytesDrift(t *testing.T) {
	reg := NewRegistry()
	node := reg.Define("Node", 0, 16)
	h := New(reg, 1<<20)
	if _, err := h.Allocate(node); err != nil {
		t.Fatal(err)
	}
	h.used.Add(1)
	v := h.Audit()
	if len(v) == 0 || !strings.Contains(v[0], "global used-bytes") {
		t.Fatalf("audit missed global used-bytes drift: %v", v)
	}
}

func TestAuditDetectsFreeListCorruption(t *testing.T) {
	reg := NewRegistry()
	node := reg.Define("Node", 0, 16)
	h := New(reg, 1<<20)
	r, err := h.Allocate(node)
	if err != nil {
		t.Fatal(err)
	}
	// Plant a free-list entry naming the live object.
	s := &h.shards[h.Get(r).home]
	s.mu.Lock()
	s.free = append(s.free, r.ID())
	s.mu.Unlock()
	v := h.Audit()
	found := false
	for _, msg := range v {
		if strings.Contains(msg, "names a live slot") {
			found = true
		}
	}
	if !found {
		t.Fatalf("audit missed live slot on free list: %v", v)
	}
}

func TestInjectedFreeListCorruptionIsRepaired(t *testing.T) {
	reg := NewRegistry()
	node := reg.Define("Node", 0, 16)
	inj := faultinject.New(1)
	inj.Arm(faultinject.ShardFreeListCorruption, 1.0)
	inj.Limit(faultinject.ShardFreeListCorruption, 1)

	h := New(reg, 1<<20)
	h.SetFaultInjector(inj)
	var ids []ObjectID
	for i := 0; i < 10; i++ {
		r, err := h.Allocate(node)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID())
	}
	for _, id := range ids {
		h.Free(id)
	}
	if inj.Fires(faultinject.ShardFreeListCorruption) != 1 {
		t.Fatalf("corruption fired %d times, want 1", inj.Fires(faultinject.ShardFreeListCorruption))
	}
	if got := h.FreeListRepairs(); got != 1 {
		t.Fatalf("FreeListRepairs = %d, want 1", got)
	}
	if st := h.Stats(); st.FreeListRepairs != 1 {
		t.Fatalf("Stats.FreeListRepairs = %d, want 1", st.FreeListRepairs)
	}
	// The repair happened under the same lock hold, so the audit is clean.
	auditMustBeClean(t, h, "after injected corruption")
}

func TestPopFreeDiscardsCorruptEntry(t *testing.T) {
	reg := NewRegistry()
	node := reg.Define("Node", 0, 16)
	h := New(reg, 1<<20)
	r, err := h.Allocate(node)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a free list directly (no injector): push the live object's ID
	// onto its home shard's free list, then allocate until that shard's list
	// drains. The corrupt entry must be discarded, not handed out.
	home := h.Get(r).home
	s := &h.shards[home]
	s.mu.Lock()
	s.free = append(s.free, r.ID())
	s.mu.Unlock()
	seen := map[ObjectID]bool{r.ID(): true}
	for i := 0; i < 2*freshBlock; i++ {
		rr, err := h.Allocate(node)
		if err != nil {
			t.Fatal(err)
		}
		if seen[rr.ID()] {
			t.Fatalf("slot %d handed out twice", rr.ID())
		}
		seen[rr.ID()] = true
	}
	if h.FreeListRepairs() == 0 {
		t.Fatal("corrupt entry was not counted as repaired")
	}
	auditMustBeClean(t, h, "after corrupt pop")
}

func TestInjectedAllocLimitRace(t *testing.T) {
	reg := NewRegistry()
	node := reg.Define("Node", 0, 16)
	inj := faultinject.New(2)
	inj.Arm(faultinject.AllocLimitRace, 1.0)
	inj.Limit(faultinject.AllocLimitRace, 1)
	h := New(reg, 1<<20)
	h.SetFaultInjector(inj)
	if _, err := h.Allocate(node); err != ErrHeapFull {
		t.Fatalf("injected limit race returned %v, want ErrHeapFull", err)
	}
	// Transient: the retry (fire cap exhausted) succeeds.
	if _, err := h.Allocate(node); err != nil {
		t.Fatalf("retry after injected race failed: %v", err)
	}
	auditMustBeClean(t, h, "after injected race")
}
