package heap

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func newTestHeap(t *testing.T, limit uint64) (*Heap, ClassID, ClassID) {
	t.Helper()
	reg := NewRegistry()
	pair := reg.Define("Pair", 2, 0)
	blob := reg.Define("Blob", 0, 1000)
	return New(reg, limit), pair, blob
}

func TestAllocateAccounting(t *testing.T) {
	h, pair, blob := newTestHeap(t, 1<<20)
	r1, err := h.Allocate(pair)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Allocate(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := ObjectSize(2, 0) + ObjectSize(0, 1000)
	st := h.Stats()
	if st.BytesUsed != want {
		t.Fatalf("BytesUsed = %d, want %d", st.BytesUsed, want)
	}
	if st.ObjectsUsed != 2 || st.ObjectsAlloc != 2 {
		t.Fatalf("object counts: %+v", st)
	}
	if h.BytesUsed() != want {
		t.Fatalf("atomic BytesUsed mirror = %d, want %d", h.BytesUsed(), want)
	}
	if r1.ID() == r2.ID() {
		t.Fatal("distinct objects share an ID")
	}
}

func TestAllocateShapeOverrides(t *testing.T) {
	h, pair, _ := newTestHeap(t, 1<<20)
	r, err := h.Allocate(pair, WithRefSlots(5), WithScalarBytes(100))
	if err != nil {
		t.Fatal(err)
	}
	obj := h.Get(r)
	if obj.NumRefs() != 5 {
		t.Fatalf("NumRefs = %d", obj.NumRefs())
	}
	if obj.Size() != ObjectSize(5, 100) {
		t.Fatalf("Size = %d", obj.Size())
	}
}

func TestAllocateHeapFull(t *testing.T) {
	h, _, blob := newTestHeap(t, 3000)
	if _, err := h.Allocate(blob); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Allocate(blob); err != nil {
		t.Fatal(err)
	}
	_, err := h.Allocate(blob)
	if !errors.Is(err, ErrHeapFull) {
		t.Fatalf("expected ErrHeapFull, got %v", err)
	}
	// The failed allocation must not be charged.
	if got := h.Stats().BytesUsed; got != 2*ObjectSize(0, 1000) {
		t.Fatalf("BytesUsed after failed alloc = %d", got)
	}
}

func TestFreeAndRecycle(t *testing.T) {
	h, pair, _ := newTestHeap(t, 1<<20)
	r, err := h.Allocate(pair)
	if err != nil {
		t.Fatal(err)
	}
	id := r.ID()
	h.Free(id)
	st := h.Stats()
	if st.BytesUsed != 0 || st.ObjectsUsed != 0 || st.ObjectsFreed != 1 {
		t.Fatalf("stats after free: %+v", st)
	}
	// The freed slot is recycled with clean state.
	r2, err := h.Allocate(pair)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ID() != id {
		t.Fatalf("expected slot recycling: got %d, want %d", r2.ID(), id)
	}
	obj := h.Get(r2)
	if obj.Stale() != 0 {
		t.Fatal("recycled object must have a clear stale counter")
	}
	for i := 0; i < obj.NumRefs(); i++ {
		if !obj.Ref(i).IsNull() {
			t.Fatalf("recycled slot %d not cleared", i)
		}
	}
}

// TestGetCached checks the per-thread chunk-cache lookup agrees with Get on
// live objects and degrades to nil (instead of panicking) on null and dead
// references — the VM turns nil into a trap after leaving its critical
// region, so GetCached must never unwind on its own.
func TestGetCached(t *testing.T) {
	h, pair, _ := newTestHeap(t, 1<<20)
	var cc ChunkCache
	if h.GetCached(Ref(0), &cc) != nil {
		t.Fatal("GetCached(null) must be nil")
	}
	r1, _ := h.Allocate(pair)
	r2, _ := h.Allocate(pair)
	if h.GetCached(r1, &cc) != h.Get(r1) {
		t.Fatal("GetCached disagrees with Get")
	}
	// Second lookup in the same chunk hits the cached pointer.
	if h.GetCached(r2, &cc) != h.Get(r2) {
		t.Fatal("cached-chunk lookup disagrees with Get")
	}
	h.Free(r1.ID())
	if h.GetCached(r1, &cc) != nil {
		t.Fatal("GetCached on a freed slot must be nil")
	}
	// A stale cache from one heap must not leak results across chunks it
	// has never seen: an ID far beyond anything allocated maps to an
	// unpopulated chunk and must yield nil, not a panic.
	far := MakeRef(ObjectID(1 << 20))
	if h.GetCached(far, &cc) != nil {
		t.Fatal("GetCached on an unallocated chunk must be nil")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	h, pair, _ := newTestHeap(t, 1<<20)
	r, _ := h.Allocate(pair)
	h.Free(r.ID())
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	h.Free(r.ID())
}

func TestGetDeadPanics(t *testing.T) {
	h, pair, _ := newTestHeap(t, 1<<20)
	r, _ := h.Allocate(pair)
	h.Free(r.ID())
	defer func() {
		if recover() == nil {
			t.Fatal("Get of a freed object must panic")
		}
	}()
	h.Get(r)
}

func TestGetNullPanics(t *testing.T) {
	h, _, _ := newTestHeap(t, 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("Get(Null) must panic")
		}
	}()
	h.Get(Null)
}

func TestForEachAndLookup(t *testing.T) {
	h, pair, _ := newTestHeap(t, 1<<20)
	var refs []Ref
	for i := 0; i < 10; i++ {
		r, err := h.Allocate(pair)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	h.Free(refs[3].ID())
	h.Free(refs[7].ID())

	seen := map[ObjectID]bool{}
	h.ForEach(func(id ObjectID, obj *Object) {
		seen[id] = true
	})
	if len(seen) != 8 {
		t.Fatalf("ForEach visited %d objects, want 8", len(seen))
	}
	if seen[refs[3].ID()] || seen[refs[7].ID()] {
		t.Fatal("ForEach visited freed objects")
	}
	if _, ok := h.Lookup(refs[3].ID()); ok {
		t.Fatal("Lookup found a freed object")
	}
	if _, ok := h.Lookup(refs[0].ID()); !ok {
		t.Fatal("Lookup missed a live object")
	}
}

// TestAllocFreeAccountingQuick drives random allocate/free sequences and
// checks the fundamental accounting invariant: BytesUsed equals the sum of
// live object sizes, and allocation totals never decrease.
func TestAllocFreeAccountingQuick(t *testing.T) {
	prop := func(ops []uint16) bool {
		reg := NewRegistry()
		cls := reg.Define("X", 1, 0)
		h := New(reg, 1<<20)
		var live []Ref
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op/3) % len(live)
				h.Free(live[i].ID())
				live = append(live[:i], live[i+1:]...)
				continue
			}
			r, err := h.Allocate(cls, WithScalarBytes(int(op%512)))
			if err != nil {
				return false
			}
			live = append(live, r)
		}
		var want uint64
		for _, r := range live {
			want += h.Get(r).Size()
		}
		st := h.Stats()
		return st.BytesUsed == want &&
			st.ObjectsUsed == uint64(len(live)) &&
			st.BytesAlloc >= st.BytesUsed &&
			st.BytesAlloc-st.BytesFreed == st.BytesUsed
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFullness(t *testing.T) {
	s := Stats{Limit: 100, BytesUsed: 25}
	if s.Fullness() != 0.25 {
		t.Fatalf("Fullness = %v", s.Fullness())
	}
	if (Stats{}).Fullness() != 0 {
		t.Fatal("zero-limit fullness must be 0")
	}
}

func TestObjectSize(t *testing.T) {
	if got := ObjectSize(0, 0); got != HeaderBytes {
		t.Fatalf("empty object size = %d", got)
	}
	if got := ObjectSize(3, 100); got != HeaderBytes+3*RefSlotBytes+100 {
		t.Fatalf("ObjectSize(3,100) = %d", got)
	}
}

// TestChunkBoundaryGrowth allocates across object-table chunk boundaries
// (16384 objects per chunk) and verifies identity and accounting stay
// intact, including interleaved frees.
func TestChunkBoundaryGrowth(t *testing.T) {
	reg := NewRegistry()
	cls := reg.Define("Tiny", 1, 0)
	h := New(reg, 1<<30)
	const n = 3*chunkSize + 17
	refs := make([]Ref, 0, n)
	for i := 0; i < n; i++ {
		r, err := h.Allocate(cls)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	if got := h.Stats().ObjectsUsed; got != n {
		t.Fatalf("ObjectsUsed = %d, want %d", got, n)
	}
	// Spot-check identity across chunk boundaries: linking and reading back
	// through objects in different chunks.
	a := refs[chunkSize-1]
	b := refs[chunkSize] // first object of the second chunk
	h.Get(a).SetRef(0, b)
	if got := h.Get(a).Ref(0); got != b {
		t.Fatalf("cross-chunk link = %v, want %v", got, b)
	}
	// Free every third object and verify the rest survive.
	freed := 0
	for i := 0; i < n; i += 3 {
		h.Free(refs[i].ID())
		freed++
	}
	if got := h.Stats().ObjectsUsed; got != uint64(n-freed) {
		t.Fatalf("ObjectsUsed after frees = %d, want %d", got, n-freed)
	}
	if _, ok := h.Lookup(refs[1].ID()); !ok {
		t.Fatal("survivor lost")
	}
}

// TestLargeAllocation exercises a single object with many reference slots
// (a big array) and a large scalar payload.
func TestLargeAllocation(t *testing.T) {
	reg := NewRegistry()
	arr := reg.Define("BigArray", 0, 0)
	h := New(reg, 1<<30)
	r, err := h.Allocate(arr, WithRefSlots(100000), WithScalarBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	obj := h.Get(r)
	if obj.NumRefs() != 100000 {
		t.Fatalf("NumRefs = %d", obj.NumRefs())
	}
	if obj.Size() != ObjectSize(100000, 1<<20) {
		t.Fatalf("Size = %d", obj.Size())
	}
	obj.SetRef(99999, MakeRef(1))
	if obj.Ref(99999) != MakeRef(1) {
		t.Fatal("last slot lost")
	}
}

// TestRecycledSlotShrinksAndGrows reuses a freed slot for differently
// shaped objects.
func TestRecycledSlotShrinksAndGrows(t *testing.T) {
	reg := NewRegistry()
	big := reg.Define("Big", 16, 0)
	small := reg.Define("Small", 2, 0)
	h := New(reg, 1<<20)
	r1, _ := h.Allocate(big)
	id := r1.ID()
	h.Free(id)
	r2, _ := h.Allocate(small)
	if r2.ID() != id {
		t.Skip("allocator did not recycle the slot")
	}
	if h.Get(r2).NumRefs() != 2 {
		t.Fatalf("recycled NumRefs = %d", h.Get(r2).NumRefs())
	}
	h.Free(id)
	r3, _ := h.Allocate(big)
	if r3.ID() == id && h.Get(r3).NumRefs() != 16 {
		t.Fatalf("re-grown NumRefs = %d", h.Get(r3).NumRefs())
	}
}

// TestConcurrentAllocAndRead races allocations against reads of already
// published objects (run with -race).
func TestConcurrentAllocAndRead(t *testing.T) {
	reg := NewRegistry()
	cls := reg.Define("N", 1, 32)
	h := New(reg, 1<<28)
	const perWorker = 2000
	refs := make(chan Ref, 8*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r, err := h.Allocate(cls)
				if err != nil {
					t.Error(err)
					return
				}
				refs <- r
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r := <-refs
				obj := h.Get(r)
				obj.SetRef(0, r) // self-link
				if obj.Ref(0) != r {
					t.Error("self-link lost")
					return
				}
			}
		}()
	}
	wg.Wait()
}
