package heap

import (
	"fmt"
	"sort"
	"sync"
)

// Class describes one object type. The simulated heap does not interpret
// scalar payloads; ScalarBytes only contributes to the byte accounting that
// drives heap exhaustion, GC triggering, and leak pruning's bytesUsed
// selection metric.
type Class struct {
	ID   ClassID
	Name string
	// RefSlots is the default number of reference fields for instances of
	// this class. Individual allocations may override it (arrays).
	RefSlots int
	// ScalarBytes is the default non-reference payload size in bytes.
	// Individual allocations may override it.
	ScalarBytes int
}

// Registry assigns ClassIDs and resolves them back to metadata. A Registry
// is safe for concurrent use: workloads define classes up front, but the
// collector and edge table resolve names concurrently while reporting.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]ClassID
	classes []Class // index == ClassID; slot 0 is a placeholder
}

// NewRegistry returns an empty class registry.
func NewRegistry() *Registry {
	return &Registry{
		byName:  make(map[string]ClassID),
		classes: make([]Class, 1), // reserve ClassID 0
	}
}

// Define registers a class and returns its ID. Defining the same name twice
// returns the existing ID if the shape matches and panics otherwise:
// class definitions are program structure, so a mismatch is a programming
// error, not a runtime condition.
func (r *Registry) Define(name string, refSlots, scalarBytes int) ClassID {
	if name == "" {
		panic("heap: class name must be non-empty")
	}
	if refSlots < 0 || scalarBytes < 0 {
		panic(fmt.Sprintf("heap: negative shape for class %s", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byName[name]; ok {
		c := r.classes[id]
		if c.RefSlots != refSlots || c.ScalarBytes != scalarBytes {
			panic(fmt.Sprintf("heap: class %s redefined with different shape", name))
		}
		return id
	}
	id := ClassID(len(r.classes))
	r.classes = append(r.classes, Class{ID: id, Name: name, RefSlots: refSlots, ScalarBytes: scalarBytes})
	r.byName[name] = id
	return id
}

// Lookup returns the ID for name, if defined.
func (r *Registry) Lookup(name string) (ClassID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.byName[name]
	return id, ok
}

// Get returns the class metadata for id. It panics on an unknown ID, which
// indicates heap corruption.
func (r *Registry) Get(id ClassID) Class {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(id) >= len(r.classes) || id == 0 {
		panic(fmt.Sprintf("heap: unknown class id %d", id))
	}
	return r.classes[id]
}

// Name returns the class name for id, or "<class0>" for the reserved ID.
func (r *Registry) Name(id ClassID) string {
	if id == 0 {
		return "<class0>"
	}
	return r.Get(id).Name
}

// Len returns the number of defined classes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.classes) - 1
}

// Names returns all defined class names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}
