// Package heap implements the simulated managed heap that the leak-pruning
// runtime is built on: tagged references, object headers with stale
// counters, a class registry, and byte-accounted allocation against a fixed
// maximum heap size.
//
// The heap stores objects in a chunked table indexed by ObjectID so that
// *Object pointers remain stable while the table grows. All reference slots
// are 64-bit words manipulated with sync/atomic, because the read barrier
// (package vm) clears tag bits concurrently from multiple mutator threads.
package heap

import "fmt"

// ObjectID names an object in the heap's object table. ID 0 is reserved so
// that the null reference is the zero Ref.
type ObjectID uint32

// ClassID names a class in a Registry. ID 0 is reserved (no class).
type ClassID uint32

// Ref is a tagged reference word: the object ID shifted left by two bits,
// with the two low bits available as tags. It mirrors the paper's use of the
// alignment bits of object pointers:
//
//   - bit 0 (TagStale) is set by the collector on every object-to-object
//     reference it traces; the read barrier's cold path fires when it is set
//     and clears it, so the barrier body runs at most once per reference per
//     full-heap collection (§4.1).
//   - bit 1 (TagPoison) marks a pruned ("poisoned") reference; an access
//     traps with an InternalError whose cause is the deferred
//     OutOfMemoryError (§4.3–4.4). Poisoning also sets bit 0 so that the
//     single fast-path test covers both conditions, exactly as in the paper.
//
// The null reference is 0 and carries no tags.
type Ref uint64

const (
	// TagStale is the collector-set bit tested by the read barrier fast path.
	TagStale Ref = 1 << 0
	// TagPoison marks a pruned reference.
	TagPoison Ref = 1 << 1

	tagMask  Ref = TagStale | TagPoison
	refShift     = 2
)

// Null is the null reference.
const Null Ref = 0

// MakeRef builds an untagged reference to the given object.
func MakeRef(id ObjectID) Ref { return Ref(id) << refShift }

// ID extracts the object ID, ignoring tag bits.
func (r Ref) ID() ObjectID { return ObjectID(r >> refShift) }

// IsNull reports whether r is the null reference (tags ignored: a tagged
// null cannot be constructed by the runtime).
func (r Ref) IsNull() bool { return r>>refShift == 0 }

// Tags returns only the tag bits of r.
func (r Ref) Tags() Ref { return r & tagMask }

// Untagged returns r with all tag bits cleared.
func (r Ref) Untagged() Ref { return r &^ tagMask }

// WithStale returns r with the stale-check tag set.
func (r Ref) WithStale() Ref { return r | TagStale }

// WithPoison returns r with both the poison and stale-check tags set, the
// bit pattern the PRUNE state writes (§4.3): the stale bit guarantees the
// barrier's cold path runs and finds the poison bit.
func (r Ref) WithPoison() Ref { return r | TagPoison | TagStale }

// IsStaleTagged reports whether the stale-check tag is set.
func (r Ref) IsStaleTagged() bool { return r&TagStale != 0 }

// IsPoisoned reports whether the poison tag is set.
func (r Ref) IsPoisoned() bool { return r&TagPoison != 0 }

// String renders the reference for diagnostics, e.g. "ref#12", "ref#12*"
// (poisoned, as in the paper's Figure 4), or "null".
func (r Ref) String() string {
	if r.IsNull() {
		return "null"
	}
	suffix := ""
	if r.IsPoisoned() {
		suffix = "*"
	} else if r.IsStaleTagged() {
		suffix = "'"
	}
	return fmt.Sprintf("ref#%d%s", r.ID(), suffix)
}
