package heap

import (
	"sync"
	"testing"
)

// Lazy-sweep interaction audit (concurrent mark mode moves the sweep out of
// the stop-the-world pause, so it now runs against live ChunkCaches and
// TLAB allocation contexts). The design holds up because chunks never move
// once materialized — a cached chunk pointer can never go stale — and
// because an object's size word is its atomically-published liveness bit,
// so a cached-path lookup that races a free resolves to a clean nil, never
// to a half-freed object. These tests pin both properties.

// TestChunkCacheSeesFreeAndRecycle: a warm ChunkCache must observe a slot's
// death immediately (the dead check reads the liveness word, not the
// cache), and must serve the recycled slot's new occupant through the same
// cached chunk pointer.
func TestChunkCacheSeesFreeAndRecycle(t *testing.T) {
	reg := NewRegistry()
	small := reg.Define("Small", 1, 16)
	big := reg.Define("Big", 2, 16)
	h := New(reg, 1<<20)

	ref, err := h.Allocate(small)
	if err != nil {
		t.Fatal(err)
	}
	var cc ChunkCache
	if h.GetCached(ref, &cc) == nil {
		t.Fatal("live object invisible through cache")
	}
	h.Free(ref.ID())
	if obj := h.GetCached(ref, &cc); obj != nil {
		t.Fatalf("freed slot still served through warm cache: %+v", obj)
	}
	// LIFO recycling hands the freed slot straight back; the warm cache must
	// serve the new occupant, not any stale view of the old one.
	ref2, err := h.Allocate(big)
	if err != nil {
		t.Fatal(err)
	}
	if ref2.ID() != ref.ID() {
		t.Fatalf("expected deterministic LIFO recycling: got slot %d, want %d", ref2.ID(), ref.ID())
	}
	obj := h.GetCached(ref2, &cc)
	if obj == nil {
		t.Fatal("recycled slot invisible through warm cache")
	}
	if obj.Class() != big {
		t.Fatalf("warm cache served stale class %d for recycled slot", obj.Class())
	}
	if viol := h.Audit(); len(viol) != 0 {
		t.Fatalf("audit after recycle: %v", viol)
	}
}

// TestCachedLookupDuringBackgroundFree races GetCached probes and TLAB
// allocation against FreeBatch running on another goroutine — the shape of
// a background sweep under mostly-concurrent marking. Every probe must
// resolve to nil or to a fully-initialized object (the liveness word is
// published last), and the allocator must be able to recycle the freed
// slots mid-flight without corrupting the accounting.
func TestCachedLookupDuringBackgroundFree(t *testing.T) {
	reg := NewRegistry()
	cls := reg.Define("Node", 2, 64)
	h := New(reg, 8<<20)

	const n = 4096
	refs := make([]Ref, n)
	for i := range refs {
		r, err := h.Allocate(cls)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Free in sweep-sized batches, as the background sweeper does.
		const batch = 128
		ids := make([]ObjectID, 0, batch)
		for _, r := range refs {
			ids = append(ids, r.ID())
			if len(ids) == batch {
				h.FreeBatch(ids)
				ids = ids[:0]
			}
		}
		h.FreeBatch(ids)
	}()

	// Mutator side: probe through a warm cache and keep allocating from a
	// TLAB context while the frees land. The allocator recycles freed slots
	// LIFO, so any slot our own allocations reclaim is legitimately live
	// again — track them for the final deadness sweep.
	var cc ChunkCache
	ctx := h.NewAllocContext()
	recycled := make(map[ObjectID]bool)
	live := 0
	for round := 0; round < 4; round++ {
		for _, r := range refs {
			obj := h.GetCached(r, &cc)
			if obj == nil {
				continue
			}
			live++
			if obj.Size() == 0 {
				t.Error("GetCached returned an object with a zero liveness word")
			}
			if c := obj.Class(); c != cls && !recycled[r.ID()] {
				t.Errorf("GetCached returned class %d, want %d", c, cls)
			}
		}
		for i := 0; i < 64; i++ {
			r, err := h.AllocateCtx(&ctx, cls)
			if err != nil {
				t.Errorf("AllocateCtx during background free: %v", err)
				continue
			}
			recycled[r.ID()] = true
		}
	}
	wg.Wait()
	_ = live // any mix of hits and misses is legal; soundness is per-probe
	h.ReleaseContext(&ctx)
	if viol := h.Audit(); len(viol) != 0 {
		t.Fatalf("audit after background free: %v", viol)
	}
	for _, r := range refs {
		if recycled[r.ID()] {
			continue
		}
		if h.GetCached(r, &cc) != nil {
			t.Fatalf("slot %d still live after every free completed", r.ID())
		}
	}
}
