package heap

import "leakpruning/internal/obs"

// SetObs registers the heap's prune-time histograms: the size distribution
// of objects reclaimed by prune cycles and the staleness-age distribution
// they died at. A nil o leaves the histograms nil, which makes
// RecordPrunedFree a single branch.
func (h *Heap) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	reg := o.Registry()
	h.pruneFreedBytes = reg.NewHistogram("lp_prune_freed_bytes",
		"sizes of objects reclaimed by PRUNE-mode collections", obs.ByteBuckets)
	h.pruneStaleAge = reg.NewHistogram("lp_prune_staleness_age",
		"stale counter of objects reclaimed by PRUNE-mode collections", obs.StaleAgeBuckets)
}

// RecordPrunedFree samples one object reclaimed during a prune cycle. The
// GC sweep calls it (ModePrune only) before the slot is recycled, while
// the object's size and stale counter are still readable. Disabled
// observability reduces it to one nil check.
func (h *Heap) RecordPrunedFree(size uint64, stale uint8) {
	if h.pruneFreedBytes == nil {
		return
	}
	h.pruneFreedBytes.Observe(size)
	h.pruneStaleAge.Observe(uint64(stale))
}
