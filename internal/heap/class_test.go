package heap

import (
	"sync"
	"testing"
)

func TestRegistryDefineAndLookup(t *testing.T) {
	r := NewRegistry()
	a := r.Define("A", 2, 16)
	b := r.Define("B", 0, 64)
	if a == b {
		t.Fatal("distinct classes got the same ID")
	}
	if a == 0 || b == 0 {
		t.Fatal("ClassID 0 is reserved")
	}
	if got, ok := r.Lookup("A"); !ok || got != a {
		t.Fatalf("Lookup(A) = %v, %v", got, ok)
	}
	if _, ok := r.Lookup("C"); ok {
		t.Fatal("Lookup of undefined class succeeded")
	}
	if c := r.Get(a); c.Name != "A" || c.RefSlots != 2 || c.ScalarBytes != 16 {
		t.Fatalf("Get(A) = %+v", c)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRegistryRedefineSameShape(t *testing.T) {
	r := NewRegistry()
	a := r.Define("A", 1, 8)
	if r.Define("A", 1, 8) != a {
		t.Fatal("same-shape redefine must return the existing ID")
	}
}

func TestRegistryRedefineDifferentShapePanics(t *testing.T) {
	r := NewRegistry()
	r.Define("A", 1, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("shape-mismatch redefine must panic")
		}
	}()
	r.Define("A", 2, 8)
}

func TestRegistryInvalidDefinitions(t *testing.T) {
	r := NewRegistry()
	for _, tc := range []struct {
		name        string
		refs, bytes int
	}{
		{"", 0, 0},
		{"neg-refs", -1, 0},
		{"neg-bytes", 0, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Define(%q,%d,%d) must panic", tc.name, tc.refs, tc.bytes)
				}
			}()
			r.Define(tc.name, tc.refs, tc.bytes)
		}()
	}
}

func TestRegistryUnknownIDPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("Get of unknown ID must panic")
		}
	}()
	r.Get(99)
}

func TestRegistryName(t *testing.T) {
	r := NewRegistry()
	a := r.Define("Widget", 0, 0)
	if r.Name(a) != "Widget" {
		t.Fatalf("Name = %q", r.Name(a))
	}
	if r.Name(0) != "<class0>" {
		t.Fatalf("Name(0) = %q", r.Name(0))
	}
}

func TestRegistryConcurrentDefine(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	ids := make([]ClassID, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = r.Define("Shared", 3, 24)
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id != ids[0] {
			t.Fatal("concurrent Define of the same class returned different IDs")
		}
	}
}
