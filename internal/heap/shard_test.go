package heap

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRecycledSlotStateCleared is the regression test for recycled-slot
// hygiene: Free must clear flags and the stale counter (not just
// size/class/refs), and the kept mark word must never make a recycled slot
// appear already-marked to a later collection.
func TestRecycledSlotStateCleared(t *testing.T) {
	reg := NewRegistry()
	cls := reg.Define("N", 2, 0)
	h := New(reg, 1<<20)

	r, err := h.Allocate(cls)
	if err != nil {
		t.Fatal(err)
	}
	id := r.ID()
	obj := h.Get(r)
	obj.SetStale(5)
	obj.TryMark(9) // a past collection reached it
	if !obj.TryLog() {
		t.Fatal("TryLog on fresh object failed")
	}
	h.Free(id)

	// The dead slot itself is clean (flags and stale are cleared by Free,
	// not by a later Allocate happening to overwrite them).
	slot := h.slot(id)
	if got := atomic.LoadUint32(&slot.flags); got != 0 {
		t.Fatalf("freed slot flags = %#x, want 0", got)
	}
	if slot.Stale() != 0 {
		t.Fatalf("freed slot stale = %d, want 0", slot.Stale())
	}

	r2, err := h.Allocate(cls)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ID() != id {
		t.Fatalf("slot not recycled: got %d, want %d", r2.ID(), id)
	}
	obj2 := h.Get(r2)
	if obj2.Stale() != 0 {
		t.Fatalf("recycled stale = %d", obj2.Stale())
	}
	if obj2.IsYoung() || obj2.IsOffloaded() {
		t.Fatal("recycled object inherited flag bits")
	}
	if !obj2.TryLog() {
		t.Fatal("recycled object still appears logged")
	}
	// Epochs only move forward, so the kept mark word (9) must not alias
	// any future collection's epoch.
	if obj2.Marked(10) {
		t.Fatal("recycled slot appears marked at a later epoch")
	}
}

// TestAllocContextTLAB checks the TLAB quota accounting: reservations are
// visible in BytesUsed, allocation totals stay exact, and releasing the
// context restores exactness.
func TestAllocContextTLAB(t *testing.T) {
	reg := NewRegistry()
	cls := reg.Define("N", 1, 40) // 64 bytes each
	h := New(reg, 1<<20)
	size := ObjectSize(1, 40)

	ctx := h.NewAllocContext()
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := h.AllocateCtx(&ctx, cls); err != nil {
			t.Fatal(err)
		}
	}
	st := h.Stats()
	if st.BytesAlloc != n*size || st.ObjectsAlloc != n {
		t.Fatalf("alloc totals: %+v", st)
	}
	if want := n*size + ctx.Reserved(); st.BytesUsed != want {
		t.Fatalf("BytesUsed = %d, want live %d + reserved %d", st.BytesUsed, n*size, ctx.Reserved())
	}

	h.ReleaseContext(&ctx)
	if ctx.Reserved() != 0 {
		t.Fatalf("Reserved after release = %d", ctx.Reserved())
	}
	if got := h.BytesUsed(); got != n*size {
		t.Fatalf("BytesUsed after release = %d, want %d", got, n*size)
	}
	h.ReleaseContext(&ctx) // idempotent
	if got := h.BytesUsed(); got != n*size {
		t.Fatalf("double release changed BytesUsed to %d", got)
	}
}

// TestAllocContextHeapFull fills the heap through a context and checks that
// a failed allocation charges nothing and that outstanding reservations
// never push BytesUsed past the limit.
func TestAllocContextHeapFull(t *testing.T) {
	reg := NewRegistry()
	cls := reg.Define("B", 0, 1000)
	h := New(reg, 4000)
	ctx := h.NewAllocContext()
	allocs := 0
	for {
		_, err := h.AllocateCtx(&ctx, cls)
		if err != nil {
			if !errors.Is(err, ErrHeapFull) {
				t.Fatal(err)
			}
			break
		}
		allocs++
		if allocs > 10 {
			t.Fatal("heap never filled")
		}
	}
	if h.BytesUsed() > h.Limit() {
		t.Fatalf("BytesUsed %d exceeds limit %d", h.BytesUsed(), h.Limit())
	}
	h.ReleaseContext(&ctx)
	st := h.Stats()
	if st.BytesAlloc-st.BytesFreed != st.BytesUsed {
		t.Fatalf("accounting broken after exhaustion: %+v", st)
	}
	if st.ObjectsAlloc != uint64(allocs) {
		t.Fatalf("ObjectsAlloc = %d, want %d", st.ObjectsAlloc, allocs)
	}
}

// TestShardedAllocFreeParallel races context allocations against parallel
// FreeBatch calls over disjoint dead sets (the sweep-worker pattern) and
// checks the accounting invariant afterwards. Run with -race.
func TestShardedAllocFreeParallel(t *testing.T) {
	reg := NewRegistry()
	cls := reg.Define("N", 2, 16)
	h := New(reg, 1<<28)
	const goroutines = 8
	const perG = 4000

	refs := make([][]Ref, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := h.NewAllocContext()
			defer h.ReleaseContext(&ctx)
			out := make([]Ref, 0, perG)
			for i := 0; i < perG; i++ {
				r, err := h.AllocateCtx(&ctx, cls)
				if err != nil {
					t.Error(err)
					return
				}
				out = append(out, r)
			}
			refs[g] = out
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Free half of each goroutine's set from parallel "sweep workers".
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dead := make([]ObjectID, 0, perG/2)
			for i := 0; i < perG; i += 2 {
				dead = append(dead, refs[g][i].ID())
			}
			h.FreeBatch(dead)
		}(g)
	}
	wg.Wait()

	st := h.Stats()
	const total = goroutines * perG
	if st.ObjectsAlloc != total || st.ObjectsFreed != total/2 || st.ObjectsUsed != total/2 {
		t.Fatalf("object counts: %+v", st)
	}
	if st.BytesAlloc-st.BytesFreed != st.BytesUsed {
		t.Fatalf("byte invariant broken: %+v", st)
	}
	// Survivors are intact and dereferenceable.
	for g := 0; g < goroutines; g++ {
		for i := 1; i < perG; i += 2 {
			if _, ok := h.Lookup(refs[g][i].ID()); !ok {
				t.Fatalf("survivor %d lost", refs[g][i].ID())
			}
		}
	}
}
