package heap

import (
	"testing"
	"testing/quick"
)

func TestRefNull(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must be null")
	}
	if Null.IsPoisoned() || Null.IsStaleTagged() {
		t.Fatal("Null must carry no tags")
	}
	if got := Null.String(); got != "null" {
		t.Fatalf("Null.String() = %q", got)
	}
}

func TestRefTagRoundTrip(t *testing.T) {
	r := MakeRef(42)
	if r.ID() != 42 {
		t.Fatalf("ID = %d, want 42", r.ID())
	}
	if r.Tags() != 0 {
		t.Fatalf("fresh ref has tags %x", r.Tags())
	}

	s := r.WithStale()
	if !s.IsStaleTagged() || s.IsPoisoned() {
		t.Fatalf("WithStale tags wrong: %v", s)
	}
	if s.ID() != 42 {
		t.Fatalf("tagging changed ID: %d", s.ID())
	}
	if s.Untagged() != r {
		t.Fatalf("Untagged(WithStale) != original")
	}

	p := r.WithPoison()
	if !p.IsPoisoned() {
		t.Fatal("WithPoison must set the poison bit")
	}
	// §4.3: poisoning sets the second-lowest bit *as well as* the lowest
	// bit, so the single fast-path test covers both conditions.
	if !p.IsStaleTagged() {
		t.Fatal("WithPoison must also set the stale-check bit")
	}
	if p.Untagged() != r {
		t.Fatal("Untagged(WithPoison) != original")
	}
}

func TestRefString(t *testing.T) {
	r := MakeRef(7)
	if got := r.String(); got != "ref#7" {
		t.Fatalf("String = %q", got)
	}
	if got := r.WithPoison().String(); got != "ref#7*" {
		t.Fatalf("poisoned String = %q (the paper's Figure 4 notation)", got)
	}
	if got := r.WithStale().String(); got != "ref#7'" {
		t.Fatalf("stale-tagged String = %q", got)
	}
}

// TestRefTagPropertyQuick checks, for arbitrary object IDs, that tagging
// never disturbs the ID and untagging always restores the original word.
func TestRefTagPropertyQuick(t *testing.T) {
	prop := func(id uint32) bool {
		if id == 0 {
			id = 1
		}
		r := MakeRef(ObjectID(id))
		return r.ID() == ObjectID(id) &&
			r.WithStale().ID() == ObjectID(id) &&
			r.WithPoison().ID() == ObjectID(id) &&
			r.WithStale().Untagged() == r &&
			r.WithPoison().Untagged() == r &&
			!r.WithStale().IsNull() &&
			r.WithPoison().IsPoisoned() &&
			r.WithPoison().IsStaleTagged()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
