package heap

import "sync/atomic"

// HeaderBytes is the simulated per-object header cost charged by the byte
// accounting, standing in for the two-word Jikes RVM object header that
// holds (among other things) the three-bit stale counter.
const HeaderBytes = 16

// RefSlotBytes is the simulated size of one reference field.
const RefSlotBytes = 8

// MaxStale is the saturation value of the three-bit logarithmic stale
// counter (§4.1): a value k means the object was last used about 2^k
// full-heap collections ago.
const MaxStale = 7

// Object is one heap object. Mutators and the collector share Objects:
// reference slots and the stale counter are accessed atomically; the mark
// word is claimed by CAS during parallel tracing. Everything else is
// immutable after allocation.
type Object struct {
	// class is accessed atomically: a slot being recycled by a background
	// free (FreeBatch) is still reachable through warm chunk caches, and a
	// cached probe that won the liveness check may read the class word
	// while the sweeper clears it.
	class ClassID
	// stale is the 3-bit logarithmic stale counter, widened to a uint32 so
	// it can be manipulated with sync/atomic. Only values 0..MaxStale occur.
	stale uint32
	// mark holds the epoch of the last collection that reached this object.
	mark uint32
	// flags holds miscellaneous state bits (offload residency).
	flags uint32
	// home is the allocator shard that owns this object's slot: Free returns
	// the slot to this shard's free list and charges this shard's accounting,
	// so an object is allocated and freed under the same shard lock.
	home uint8
	// size is the total simulated byte size (header + ref slots + scalar).
	// Accessed atomically: it doubles as the slot's liveness word (0 = free),
	// and with concurrent sweep the background sweeper's liveness probes race
	// allocation. allocate publishes it last, so a nonzero size load acquires
	// the rest of the object's initialization.
	size uint64
	// refs are the object's tagged reference words.
	refs []uint64
}

// Class returns the object's class ID.
func (o *Object) Class() ClassID { return ClassID(atomic.LoadUint32((*uint32)(&o.class))) }

// Size returns the object's total simulated size in bytes.
func (o *Object) Size() uint64 { return atomic.LoadUint64(&o.size) }

// setSize atomically stores the size/liveness word.
func (o *Object) setSize(n uint64) { atomic.StoreUint64(&o.size, n) }

// NumRefs returns the number of reference slots.
func (o *Object) NumRefs() int { return len(o.refs) }

// Stale returns the current stale-counter value.
func (o *Object) Stale() uint8 { return uint8(atomic.LoadUint32(&o.stale)) }

// SetStale stores v into the stale counter, saturating at MaxStale.
func (o *Object) SetStale(v uint8) {
	if v > MaxStale {
		v = MaxStale
	}
	atomic.StoreUint32(&o.stale, uint32(v))
}

// ClearStale resets the stale counter to zero (the barrier's cold path).
func (o *Object) ClearStale() { atomic.StoreUint32(&o.stale, 0) }

// AgeStale implements the logarithmic aging rule from §4.1: full-heap
// collection number gcIndex increments the counter from its current value k
// iff 2^k evenly divides gcIndex. The divisor is always a power of two, so
// the divisibility test is a mask (the sweep runs this on every live
// object, every collection). The counter saturates at MaxStale. It returns
// the post-aging value so the sweep needs only one counter access.
func (o *Object) AgeStale(gcIndex uint64) uint8 {
	k := atomic.LoadUint32(&o.stale)
	if k < MaxStale && gcIndex&((uint64(1)<<k)-1) == 0 {
		k++
		atomic.StoreUint32(&o.stale, k)
	}
	return uint8(k)
}

// IsYoung reports whether the object is in the nursery generation.
func (o *Object) IsYoung() bool { return atomic.LoadUint32(&o.flags)&flagYoung != 0 }

// Promote moves the object to the old generation (clearing its nursery and
// remembered-set flags).
func (o *Object) Promote() {
	for {
		cur := atomic.LoadUint32(&o.flags)
		if cur&(flagYoung|flagLogged) == 0 {
			return
		}
		if atomic.CompareAndSwapUint32(&o.flags, cur, cur&^(flagYoung|flagLogged)) {
			return
		}
	}
}

// Unlog clears the remembered-set flag after a collection consumed the set.
func (o *Object) Unlog() {
	for {
		cur := atomic.LoadUint32(&o.flags)
		if cur&flagLogged == 0 {
			return
		}
		if atomic.CompareAndSwapUint32(&o.flags, cur, cur&^flagLogged) {
			return
		}
	}
}

// TryLog sets the remembered-set flag and reports whether this caller set
// it (so each old object is recorded at most once per collection cycle).
func (o *Object) TryLog() bool {
	for {
		cur := atomic.LoadUint32(&o.flags)
		if cur&flagLogged != 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(&o.flags, cur, cur|flagLogged) {
			return true
		}
	}
}

// Ref atomically loads the tagged reference word in the given slot.
func (o *Object) Ref(slot int) Ref { return Ref(atomic.LoadUint64(&o.refs[slot])) }

// SetRef atomically stores a reference word into the given slot.
func (o *Object) SetRef(slot int, r Ref) { atomic.StoreUint64(&o.refs[slot], uint64(r)) }

// CompareAndSwapRef atomically replaces the slot's value iff it still holds
// old. The read barrier uses this so it never overwrites a concurrent
// mutator store (§4.1: "[iff a.f == t]").
func (o *Object) CompareAndSwapRef(slot int, old, new Ref) bool {
	return atomic.CompareAndSwapUint64(&o.refs[slot], uint64(old), uint64(new))
}

// SwapRef atomically stores r into the slot and returns the previous value.
// The SATB deletion barrier uses this so the overwritten reference it must
// log is exactly the one evicted — a separate load-then-store pair could
// lose a value stored by a racing mutator without ever logging it.
func (o *Object) SwapRef(slot int, r Ref) Ref {
	return Ref(atomic.SwapUint64(&o.refs[slot], uint64(r)))
}

// Marked reports whether the object has been reached in the collection with
// the given epoch.
func (o *Object) Marked(epoch uint32) bool { return atomic.LoadUint32(&o.mark) == epoch }

// TryMark attempts to claim the object for the collection with the given
// epoch. It returns true iff this caller performed the transition, which is
// how parallel tracer workers avoid processing an object twice (§4.5).
func (o *Object) TryMark(epoch uint32) bool {
	for {
		cur := atomic.LoadUint32(&o.mark)
		if cur == epoch {
			return false
		}
		if atomic.CompareAndSwapUint32(&o.mark, cur, epoch) {
			return true
		}
	}
}
