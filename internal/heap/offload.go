package heap

import (
	"errors"
	"sync/atomic"
)

// Disk-offload support: the Melt/LeakSurvivor-style leak-tolerance baseline
// (§6, §7) moves highly stale objects to disk instead of reclaiming them.
// The heap models that with a second byte account: an offloaded object
// keeps its identity and references but its bytes count against the disk
// budget instead of the heap limit. Accesses fault the object back in.
//
// All offload-state transitions (the residency flag plus the disk
// counters) are serialized under diskMu, so a fault-in racing another
// fault-in or an offload settles deterministically. The heap-side byte
// movement goes through the shared atomic used counter.

// ErrDiskFull is returned by Offload when the configured disk budget cannot
// hold the object — the condition under which the paper says disk-based
// approaches ultimately crash.
var ErrDiskFull = errors.New("heap: offload disk is full")

// flagOffloaded marks an object whose bytes live on the simulated disk.
const flagOffloaded uint32 = 1 << 0

// flagYoung marks an object allocated since the last collection (the
// nursery generation when generational collection is enabled).
const flagYoung uint32 = 1 << 1

// flagLogged marks an old object already recorded in the remembered set.
const flagLogged uint32 = 1 << 2

// IsOffloaded reports whether the object currently resides on disk.
func (o *Object) IsOffloaded() bool {
	return atomic.LoadUint32(&o.flags)&flagOffloaded != 0
}

func (o *Object) setOffloaded(v bool) {
	for {
		cur := atomic.LoadUint32(&o.flags)
		next := cur
		if v {
			next |= flagOffloaded
		} else {
			next &^= flagOffloaded
		}
		if atomic.CompareAndSwapUint32(&o.flags, cur, next) {
			return
		}
	}
}

// DiskStats reports the offload accounting.
type DiskStats struct {
	Limit     uint64
	BytesUsed uint64
	Offloads  uint64 // objects ever moved out
	FaultIns  uint64 // objects ever moved back
}

// SetDiskLimit configures the simulated disk budget (0 disables offload).
func (h *Heap) SetDiskLimit(limit uint64) {
	h.diskMu.Lock()
	defer h.diskMu.Unlock()
	h.disk.Limit = limit
}

// Disk returns a snapshot of the offload accounting.
func (h *Heap) Disk() DiskStats {
	h.diskMu.Lock()
	defer h.diskMu.Unlock()
	return h.disk
}

// Offload moves the object's bytes from the heap account to the disk
// account. It fails with ErrDiskFull when the disk budget cannot hold it,
// and is a no-op for already-offloaded objects.
func (h *Heap) Offload(id ObjectID) error {
	obj := h.slot(id)
	if obj == nil || obj.Size() == 0 {
		panic("heap: offload of a dead object")
	}
	h.diskMu.Lock()
	if obj.IsOffloaded() {
		h.diskMu.Unlock()
		return nil
	}
	if h.disk.BytesUsed+obj.Size() > h.disk.Limit {
		h.diskMu.Unlock()
		return ErrDiskFull
	}
	obj.setOffloaded(true)
	h.disk.BytesUsed += obj.Size()
	h.disk.Offloads++
	h.diskMu.Unlock()
	h.creditBytes(obj.Size())
	return nil
}

// FaultIn moves an offloaded object's bytes back into the heap account. It
// fails with ErrHeapFull when the heap cannot hold it (the caller collects
// or offloads more and retries), and is a no-op for resident objects.
func (h *Heap) FaultIn(id ObjectID) error {
	obj := h.slot(id)
	if obj == nil || obj.Size() == 0 {
		panic("heap: fault-in of a dead object")
	}
	if !obj.IsOffloaded() {
		return nil
	}
	// Reserve the heap bytes first (no locks held), then settle the state
	// transition under diskMu; if another fault-in won the race, give the
	// reservation back.
	if !h.reserveExact(obj.Size()) {
		return ErrHeapFull
	}
	h.diskMu.Lock()
	if !obj.IsOffloaded() {
		h.diskMu.Unlock()
		h.creditBytes(obj.Size())
		return nil
	}
	obj.setOffloaded(false)
	h.disk.BytesUsed -= obj.Size()
	h.disk.FaultIns++
	h.diskMu.Unlock()
	return nil
}
