package heap

import (
	"testing"
	"testing/quick"
)

func allocObject(t *testing.T, refs, scalar int) (*Heap, Ref) {
	t.Helper()
	reg := NewRegistry()
	cls := reg.Define("T", refs, scalar)
	h := New(reg, 1<<20)
	r, err := h.Allocate(cls)
	if err != nil {
		t.Fatal(err)
	}
	return h, r
}

func TestStaleCounterBasics(t *testing.T) {
	h, r := allocObject(t, 1, 0)
	obj := h.Get(r)
	if obj.Stale() != 0 {
		t.Fatal("fresh object must have stale 0")
	}
	obj.SetStale(3)
	if obj.Stale() != 3 {
		t.Fatalf("Stale = %d", obj.Stale())
	}
	obj.SetStale(250) // saturates
	if obj.Stale() != MaxStale {
		t.Fatalf("SetStale must saturate at %d, got %d", MaxStale, obj.Stale())
	}
	obj.ClearStale()
	if obj.Stale() != 0 {
		t.Fatal("ClearStale failed")
	}
}

// TestAgeStaleRule checks the paper's logarithmic rule (§4.1): collection i
// increments a counter at value k iff 2^k divides i, so a value k means the
// object was last used about 2^k collections ago.
func TestAgeStaleRule(t *testing.T) {
	h, r := allocObject(t, 0, 0)
	obj := h.Get(r)
	// Simulate collections 1..128 with no intervening use.
	values := map[uint64]uint8{}
	for i := uint64(1); i <= 128; i++ {
		obj.AgeStale(i)
		values[i] = obj.Stale()
	}
	// After collection 1: 0 -> 1 (2^0 divides everything).
	if values[1] != 1 {
		t.Fatalf("after GC 1: stale = %d, want 1", values[1])
	}
	// 1 -> 2 at the first even collection.
	if values[2] != 2 {
		t.Fatalf("after GC 2: stale = %d, want 2", values[2])
	}
	if values[3] != 2 {
		t.Fatalf("after GC 3: stale = %d, want 2", values[3])
	}
	// 2 -> 3 at the first multiple of 4.
	if values[4] != 3 {
		t.Fatalf("after GC 4: stale = %d, want 3", values[4])
	}
	if values[7] != 3 {
		t.Fatalf("after GC 7: stale = %d, want 3", values[7])
	}
	if values[8] != 4 {
		t.Fatalf("after GC 8: stale = %d, want 4", values[8])
	}
	if values[16] != 5 || values[32] != 6 || values[64] != 7 {
		t.Fatalf("power-of-two progression wrong: %d %d %d", values[16], values[32], values[64])
	}
	// Saturation: stays at MaxStale.
	if values[128] != MaxStale {
		t.Fatalf("after GC 128: stale = %d, want %d", values[128], MaxStale)
	}
}

// TestAgeStaleSchedule pins the full aging schedule for collections 1..64
// against a direct transcription of the §4.1 rule — "collection gcIndex
// increments a counter at value k iff 2^k evenly divides gcIndex" — written
// with the modulo operator. AgeStale implements the divisibility test as a
// bit mask (the divisor is always a power of two); this is the oracle that
// keeps the mask form honest step by step, not just at spot-checked points.
func TestAgeStaleSchedule(t *testing.T) {
	h, r := allocObject(t, 0, 0)
	obj := h.Get(r)
	want := uint64(0)
	for i := uint64(1); i <= 64; i++ {
		if want < MaxStale && i%(uint64(1)<<want) == 0 {
			want++
		}
		got := obj.AgeStale(i)
		if uint64(got) != want {
			t.Fatalf("after GC %d: AgeStale returned %d, want %d", i, got, want)
		}
		if uint64(obj.Stale()) != want {
			t.Fatalf("after GC %d: Stale() = %d, want %d", i, obj.Stale(), want)
		}
	}
	// The schedule above must have saturated: 2^0+2^1+...+2^6 opportunities
	// comfortably exceed what MaxStale requires.
	if obj.Stale() != MaxStale {
		t.Fatalf("schedule did not saturate: stale = %d, want %d", obj.Stale(), MaxStale)
	}
}

// TestAgeStaleApproximatesLog checks the counter's meaning across random
// restart points: a counter at value k was always reached after at least
// 2^(k-1) collections without use.
func TestAgeStaleApproximatesLog(t *testing.T) {
	prop := func(start uint16) bool {
		h, r := allocObject(t, 0, 0)
		obj := h.Get(r)
		base := uint64(start) + 1
		gcs := uint64(0)
		for i := base; ; i++ {
			obj.AgeStale(i)
			gcs++
			if obj.Stale() >= 4 {
				break
			}
			if gcs > 64 {
				return false // must reach 4 within a bounded window
			}
		}
		// Reaching 4 requires at least 2^3 = 8 aging opportunities... the
		// guarantee is a lower bound on elapsed collections.
		return gcs >= 4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestTryMarkEpochs(t *testing.T) {
	h, r := allocObject(t, 0, 0)
	obj := h.Get(r)
	if obj.Marked(1) {
		t.Fatal("fresh object must be unmarked for epoch 1")
	}
	if !obj.TryMark(1) {
		t.Fatal("first TryMark must claim")
	}
	if obj.TryMark(1) {
		t.Fatal("second TryMark in the same epoch must fail")
	}
	if !obj.Marked(1) {
		t.Fatal("object must be marked after TryMark")
	}
	if !obj.TryMark(2) {
		t.Fatal("a new epoch must claim again")
	}
	if obj.Marked(1) {
		t.Fatal("marking epoch 2 must unmark epoch 1")
	}
}

func TestRefSlotAtomics(t *testing.T) {
	h, r := allocObject(t, 2, 0)
	obj := h.Get(r)
	target := MakeRef(99)
	obj.SetRef(0, target.WithStale())
	if got := obj.Ref(0); got != target.WithStale() {
		t.Fatalf("Ref(0) = %v", got)
	}
	// CAS succeeds only against the current value — the barrier's
	// "[iff a.f == t]" store (§4.1).
	if obj.CompareAndSwapRef(0, target, target.Untagged()) {
		t.Fatal("CAS with wrong old value must fail")
	}
	if !obj.CompareAndSwapRef(0, target.WithStale(), target.Untagged()) {
		t.Fatal("CAS with correct old value must succeed")
	}
	if got := obj.Ref(0); got != target {
		t.Fatalf("after CAS: %v", got)
	}
}
