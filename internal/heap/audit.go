package heap

import "fmt"

// Heap invariant auditor. Audit cross-checks every piece of redundant state
// the allocator and the collectors maintain — the global used-byte atomic,
// the per-shard accounting counters, the disk account, and the shard free
// lists — against a ground-truth scan of the object table. It is the
// correctness backstop the chaos campaign (and every future performance PR)
// runs after collections: any drift between the fast-path counters and the
// actual objects is reported instead of silently compounding.
//
// Audit must run stop-the-world, after outstanding TLAB reservations have
// been returned (the VM's flushTLABs); otherwise the used-byte counter
// legitimately exceeds the sum of live object sizes by the reserved quota
// and the audit would report a false positive.

// maxAuditViolations bounds the report so a systematically corrupt heap
// does not build an unbounded string slice inside a stop-the-world section.
const maxAuditViolations = 64

// auditSink accumulates violations up to the cap.
type auditSink struct {
	violations []string
	dropped    int
}

func (a *auditSink) addf(format string, args ...any) {
	if len(a.violations) >= maxAuditViolations {
		a.dropped++
		return
	}
	a.violations = append(a.violations, fmt.Sprintf(format, args...))
}

func (a *auditSink) result() []string {
	if a.dropped > 0 {
		a.violations = append(a.violations, fmt.Sprintf("...and %d more violations", a.dropped))
	}
	return a.violations
}

// Audit verifies the heap's accounting and free-list invariants against a
// full scan of the object table and returns the violations found (empty
// means the heap is sound). The invariants checked:
//
//  1. The global used-byte counter equals the summed sizes of live,
//     heap-resident objects (offloaded objects are charged to disk).
//  2. The disk account equals the summed sizes of live offloaded objects.
//  3. Every shard's cumulative counters are self-consistent
//     (alloc - freed == used, for both bytes and objects) and match the
//     live objects homed on that shard.
//  4. Every free-list entry names a dead, materialized slot; no slot
//     appears on two free lists (or twice on one); and every dead carved
//     slot is on exactly one free list.
//
// Call only while the heap is quiescent (stop-the-world) with TLAB
// reservations flushed.
func (h *Heap) Audit() []string {
	var sink auditSink

	next := ObjectID(h.next.Load())
	type shardAcct struct {
		liveBytes uint64
		liveObjs  uint64
	}
	var perShard [numShards]shardAcct
	var residentBytes, offloadedBytes, totalLive uint64
	live := make([]bool, next)

	for id := ObjectID(1); id < next; id++ {
		obj := h.slot(id)
		if obj == nil {
			sink.addf("object %d: carved ID has no backing chunk", id)
			continue
		}
		if obj.Size() == 0 {
			continue
		}
		live[id] = true
		totalLive++
		si := obj.home & shardMask
		if obj.home >= numShards {
			sink.addf("object %d: home shard %d out of range", id, obj.home)
		}
		perShard[si].liveBytes += obj.Size()
		perShard[si].liveObjs++
		if obj.IsOffloaded() {
			offloadedBytes += obj.Size()
		} else {
			residentBytes += obj.Size()
		}
	}

	if used := h.used.Load(); used != residentBytes {
		sink.addf("global used-bytes %d != sum of live resident object sizes %d (TLABs flushed?)",
			used, residentBytes)
	}
	if disk := h.Disk(); disk.BytesUsed != offloadedBytes {
		sink.addf("disk used-bytes %d != sum of live offloaded object sizes %d",
			disk.BytesUsed, offloadedBytes)
	}

	var freeCount uint64
	onFreeList := make([]bool, next)
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		if got := s.bytesAlloc - s.bytesFreed; got != perShard[i].liveBytes {
			sink.addf("shard %d: bytesAlloc-bytesFreed = %d, live bytes homed here = %d",
				i, got, perShard[i].liveBytes)
		}
		if got := s.objectsAlloc - s.objectsFreed; got != s.objectsUsed {
			sink.addf("shard %d: objectsAlloc-objectsFreed = %d, objectsUsed = %d",
				i, got, s.objectsUsed)
		}
		if s.objectsUsed != perShard[i].liveObjs {
			sink.addf("shard %d: objectsUsed = %d, live objects homed here = %d",
				i, s.objectsUsed, perShard[i].liveObjs)
		}
		for _, id := range s.free {
			freeCount++
			switch {
			case id == 0 || id >= next:
				sink.addf("shard %d: free-list entry %d outside carved ID range", i, id)
			case live[id]:
				sink.addf("shard %d: free-list entry %d names a live slot", i, id)
			case onFreeList[id]:
				sink.addf("free-list entry %d appears more than once", id)
			default:
				onFreeList[id] = true
			}
		}
		s.mu.Unlock()
	}

	if carved := uint64(next) - 1; freeCount != carved-totalLive {
		sink.addf("free lists hold %d slots, want %d (carved %d - live %d)",
			freeCount, carved-totalLive, carved, totalLive)
	}

	return sink.result()
}
