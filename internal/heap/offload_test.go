package heap

import (
	"errors"
	"testing"
)

func newOffloadHeap(t *testing.T) (*Heap, ClassID) {
	t.Helper()
	reg := NewRegistry()
	blob := reg.Define("Blob", 0, 1000)
	h := New(reg, 8000)
	h.SetDiskLimit(2200)
	return h, blob
}

func TestOffloadMovesBytesToDisk(t *testing.T) {
	h, blob := newOffloadHeap(t)
	r, err := h.Allocate(blob)
	if err != nil {
		t.Fatal(err)
	}
	size := h.Get(r).Size()
	if err := h.Offload(r.ID()); err != nil {
		t.Fatal(err)
	}
	if !h.Get(r).IsOffloaded() {
		t.Fatal("object not flagged offloaded")
	}
	if h.Stats().BytesUsed != 0 {
		t.Fatal("heap bytes not released")
	}
	d := h.Disk()
	if d.BytesUsed != size || d.Offloads != 1 {
		t.Fatalf("disk stats %+v", d)
	}
	// Offloading twice is a no-op.
	if err := h.Offload(r.ID()); err != nil {
		t.Fatal(err)
	}
	if h.Disk().BytesUsed != size {
		t.Fatal("double offload double-counted")
	}
}

func TestOffloadDiskFull(t *testing.T) {
	h, blob := newOffloadHeap(t) // disk 2200: holds two 1016-byte blobs
	var refs []Ref
	for i := 0; i < 3; i++ {
		r, err := h.Allocate(blob)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	if err := h.Offload(refs[0].ID()); err != nil {
		t.Fatal(err)
	}
	if err := h.Offload(refs[1].ID()); err != nil {
		t.Fatal(err)
	}
	if err := h.Offload(refs[2].ID()); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("expected ErrDiskFull, got %v", err)
	}
	if h.Get(refs[2]).IsOffloaded() {
		t.Fatal("rejected offload still flagged the object")
	}
}

func TestFaultInRoundTrip(t *testing.T) {
	h, blob := newOffloadHeap(t)
	r, _ := h.Allocate(blob)
	size := h.Get(r).Size()
	if err := h.Offload(r.ID()); err != nil {
		t.Fatal(err)
	}
	if err := h.FaultIn(r.ID()); err != nil {
		t.Fatal(err)
	}
	if h.Get(r).IsOffloaded() {
		t.Fatal("object still flagged after fault-in")
	}
	if h.Stats().BytesUsed != size || h.Disk().BytesUsed != 0 {
		t.Fatalf("accounting after fault-in: heap %d disk %d", h.Stats().BytesUsed, h.Disk().BytesUsed)
	}
	if h.Disk().FaultIns != 1 {
		t.Fatal("fault-in not counted")
	}
	// Fault-in of a resident object is a no-op.
	if err := h.FaultIn(r.ID()); err != nil {
		t.Fatal(err)
	}
}

func TestFaultInHeapFull(t *testing.T) {
	reg := NewRegistry()
	blob := reg.Define("Blob", 0, 1000)
	h := New(reg, 1100) // one blob fits
	h.SetDiskLimit(10000)
	r1, _ := h.Allocate(blob)
	if err := h.Offload(r1.ID()); err != nil {
		t.Fatal(err)
	}
	r2, err := h.Allocate(blob) // heap now holds r2
	if err != nil {
		t.Fatal(err)
	}
	_ = r2
	if err := h.FaultIn(r1.ID()); !errors.Is(err, ErrHeapFull) {
		t.Fatalf("expected ErrHeapFull, got %v", err)
	}
	if !h.Get(r1).IsOffloaded() {
		t.Fatal("failed fault-in changed residency")
	}
}

func TestFreeOffloadedObjectCreditsDisk(t *testing.T) {
	h, blob := newOffloadHeap(t)
	r, _ := h.Allocate(blob)
	if err := h.Offload(r.ID()); err != nil {
		t.Fatal(err)
	}
	h.Free(r.ID())
	if h.Disk().BytesUsed != 0 {
		t.Fatal("freeing an offloaded object must credit the disk")
	}
	st := h.Stats()
	if st.BytesUsed != 0 || st.ObjectsUsed != 0 || st.ObjectsFreed != 1 {
		t.Fatalf("stats after freeing offloaded object: %+v", st)
	}
	// The recycled slot starts resident.
	r2, _ := h.Allocate(blob)
	if h.Get(r2).IsOffloaded() {
		t.Fatal("recycled slot inherited the offload flag")
	}
}
