package heap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"leakpruning/internal/faultinject"
	"leakpruning/internal/obs"
)

const (
	chunkShift = 14 // 16384 objects per chunk
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
	maxChunks  = 1 << 16 // up to ~1 G objects
)

// chunk is one fixed block of the object table. Chunks are never moved or
// reclaimed, so *Object pointers stay valid until the object is freed.
type chunk [chunkSize]Object

// ErrHeapFull is returned by Allocate when the requested object does not fit
// under the heap limit. The caller (the VM's allocation slow path) reacts by
// collecting, pruning, or raising the out-of-memory error.
var ErrHeapFull = errors.New("heap: allocation would exceed heap limit")

// Stats is a snapshot of the heap's byte and object accounting.
type Stats struct {
	Limit        uint64 // maximum heap size in simulated bytes
	BytesUsed    uint64 // bytes currently held by live (unswept) objects
	ObjectsUsed  uint64 // number of allocated, unswept objects
	BytesAlloc   uint64 // cumulative bytes ever allocated
	ObjectsAlloc uint64 // cumulative objects ever allocated
	BytesFreed   uint64 // cumulative bytes freed by the sweeper
	ObjectsFreed uint64 // cumulative objects freed by the sweeper
	// FreeListRepairs counts free-list entries the allocator discarded
	// because they named a live or duplicate slot — corruption (injected or
	// real) that was detected and repaired instead of handed out twice.
	FreeListRepairs uint64
}

// Fullness returns BytesUsed/Limit, the quantity that drives the leak
// pruning state machine (§3.1).
func (s Stats) Fullness() float64 {
	if s.Limit == 0 {
		return 0
	}
	return float64(s.BytesUsed) / float64(s.Limit)
}

// Heap is the simulated managed heap: a chunked object table plus byte
// accounting against a fixed limit. Object pointers returned by Get remain
// valid until the object is freed, because chunks are never moved.
//
// Allocation and freeing are sharded: slot free lists and accounting live
// in numShards independently locked shards (see shard.go), the used-byte
// counter is a single atomic charged by CAS, and the chunk table is read
// through atomic pointers. Slot reads and writes on individual objects are
// atomic and lock-free (see Object). Free and FreeBatch may be called from
// multiple sweep workers concurrently, for disjoint objects.
type Heap struct {
	classes *Registry
	limit   uint64

	// used is the authoritative used-byte count, charged against limit by
	// CAS. It includes bytes reserved by live AllocContexts (TLAB quotas)
	// that have not yet become objects; the VM returns those at every
	// stop-the-world collection, so post-GC readings are exact.
	used atomic.Uint64

	// next is the lowest never-carved ObjectID. Shards carve blocks of
	// fresh IDs from it; freed IDs recycle through per-shard free lists.
	next atomic.Uint64

	// chunkMu serializes chunk creation only; lookups are lock-free.
	chunkMu sync.Mutex
	chunks  [maxChunks]atomic.Pointer[chunk]

	shards [numShards]shard
	// rotor spreads context-less allocations and new AllocContexts across
	// shards.
	rotor atomic.Uint32

	// generational enables nursery tracking: new objects are flagged young
	// and listed for minor sweeps.
	generational atomic.Bool
	// allocMark, when nonzero, is the mark epoch stamped onto every new
	// object at birth ("allocate black"): while a concurrent mark is in
	// flight, objects born after the snapshot are live by definition and
	// must not be collected by the cycle's sweep. Zero (the STW default)
	// leaves the recycled slot's old mark word in place.
	allocMark atomic.Uint32
	// allocBytes counts cumulative allocated bytes, maintained only in
	// generational mode where the nursery trigger needs a cheap exact read.
	allocBytes atomic.Uint64

	// diskMu guards the offload accounting and offload-state transitions.
	// Lock order: shard.mu before diskMu.
	diskMu sync.Mutex
	disk   DiskStats

	// inj is the optional fault injector consulted at the allocator's
	// failure points (nil injects nothing).
	inj *faultinject.Injector
	// Prune-time observability histograms (nil when disabled; see obs.go).
	pruneFreedBytes *obs.Histogram
	pruneStaleAge   *obs.Histogram
	// freeListRepairs counts corrupt free-list entries detected and
	// discarded (see Stats.FreeListRepairs).
	freeListRepairs atomic.Uint64
}

// New creates a heap with the given byte limit and class registry.
func New(classes *Registry, limit uint64) *Heap {
	if classes == nil {
		panic("heap: nil class registry")
	}
	if limit == 0 {
		panic("heap: zero heap limit")
	}
	h := &Heap{classes: classes, limit: limit}
	h.next.Store(1)
	return h
}

// Classes returns the heap's class registry.
func (h *Heap) Classes() *Registry { return h.classes }

// SetFaultInjector wires a fault injector into the allocator's injection
// points (allocation limit races, free-list corruption). Call before any
// allocation; nil disables injection.
func (h *Heap) SetFaultInjector(inj *faultinject.Injector) { h.inj = inj }

// FreeListRepairs returns how many corrupt free-list entries have been
// detected and repaired.
func (h *Heap) FreeListRepairs() uint64 { return h.freeListRepairs.Load() }

// EnableGenerations turns on nursery tracking: subsequently allocated
// objects are young until they survive a collection.
func (h *Heap) EnableGenerations() { h.generational.Store(true) }

// SetAllocMarkEpoch arms (nonzero) or disarms (zero) black allocation:
// while armed, every new object's mark word is stamped with the given epoch
// at birth, so a concurrent mark cycle's sweep treats it as live. The VM
// arms it inside the cycle's initial stop-the-world pause and disarms it
// after sweep completes.
func (h *Heap) SetAllocMarkEpoch(epoch uint32) { h.allocMark.Store(epoch) }

// YoungIDs returns a copy of the current nursery membership. Call only
// stop-the-world.
func (h *Heap) YoungIDs() []ObjectID {
	var out []ObjectID
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		out = append(out, s.young...)
		s.mu.Unlock()
	}
	return out
}

// ResetYoung empties the nursery lists after a collection promoted or freed
// their members. Call only stop-the-world.
func (h *Heap) ResetYoung() {
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		s.young = s.young[:0]
		s.mu.Unlock()
	}
}

// Limit returns the heap's maximum size in simulated bytes.
func (h *Heap) Limit() uint64 { return h.limit }

// BytesUsed returns the current used-byte count without locking (it may
// include outstanding TLAB reservations between collections).
func (h *Heap) BytesUsed() uint64 { return h.used.Load() }

// AllocatedBytes returns cumulative allocated bytes with one atomic load.
// Maintained only in generational mode (the nursery trigger's fast path);
// Stats().BytesAlloc is the always-exact locked reading.
func (h *Heap) AllocatedBytes() uint64 { return h.allocBytes.Load() }

// Stats returns a snapshot of the accounting counters, summed across
// shards.
func (h *Heap) Stats() Stats {
	st := Stats{Limit: h.limit, BytesUsed: h.used.Load(), FreeListRepairs: h.freeListRepairs.Load()}
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		st.BytesAlloc += s.bytesAlloc
		st.ObjectsAlloc += s.objectsAlloc
		st.BytesFreed += s.bytesFreed
		st.ObjectsFreed += s.objectsFreed
		st.ObjectsUsed += s.objectsUsed
		s.mu.Unlock()
	}
	return st
}

// ObjectSize returns the simulated size of an object with the given shape.
func ObjectSize(refSlots, scalarBytes int) uint64 {
	return HeaderBytes + uint64(refSlots)*RefSlotBytes + uint64(scalarBytes)
}

// AllocOption tweaks a single allocation's shape relative to its class
// defaults (used for arrays and variable-size payloads).
type AllocOption func(*allocShape)

type allocShape struct {
	refSlots    int
	scalarBytes int
}

// WithRefSlots overrides the number of reference slots for one allocation.
func WithRefSlots(n int) AllocOption {
	return func(s *allocShape) { s.refSlots = n }
}

// WithScalarBytes overrides the scalar payload size for one allocation.
func WithScalarBytes(n int) AllocOption {
	return func(s *allocShape) { s.scalarBytes = n }
}

// ResolveShape applies opts to the class's default shape and returns the
// effective (refSlots, scalarBytes) an allocation would use — what the
// trace recorder needs to stamp shaped allocations without re-deriving the
// shape from the allocated object.
func (h *Heap) ResolveShape(class ClassID, opts []AllocOption) (refSlots, scalarBytes int) {
	c := h.classes.Get(class)
	shape := allocShape{refSlots: c.RefSlots, scalarBytes: c.ScalarBytes}
	for _, o := range opts {
		o(&shape)
	}
	return shape.refSlots, shape.scalarBytes
}

// Allocate creates a new object of the given class, charging exactly its
// size against the heap limit. All reference slots start null. It returns
// ErrHeapFull (without allocating) when the object does not fit; triggering
// collection is the caller's job, keeping the heap policy-free.
func (h *Heap) Allocate(class ClassID, opts ...AllocOption) (Ref, error) {
	return h.allocate(nil, class, opts)
}

// AllocateCtx is Allocate through a TLAB-style context: the size is taken
// from the context's reserved quota when possible, so the shared byte
// counter is touched at most once (on refill) instead of per object.
func (h *Heap) AllocateCtx(ctx *AllocContext, class ClassID, opts ...AllocOption) (Ref, error) {
	return h.allocate(ctx, class, opts)
}

func (h *Heap) allocate(ctx *AllocContext, class ClassID, opts []AllocOption) (Ref, error) {
	c := h.classes.Get(class)
	shape := allocShape{refSlots: c.RefSlots, scalarBytes: c.ScalarBytes}
	for _, o := range opts {
		o(&shape)
	}
	if shape.refSlots < 0 || shape.scalarBytes < 0 {
		panic(fmt.Sprintf("heap: negative allocation shape for %s", c.Name))
	}
	size := ObjectSize(shape.refSlots, shape.scalarBytes)

	// Injected allocation-time limit race: behave as if a racing thread
	// consumed the remaining headroom between the caller's check and our
	// reservation. The VM's slow path reacts exactly as it would to the
	// real race — collect and retry.
	if h.inj.Should(faultinject.AllocLimitRace) {
		return Null, ErrHeapFull
	}

	var preferred uint32
	if ctx != nil {
		if ctx.reserved < size && !h.refill(ctx, size) {
			return Null, ErrHeapFull
		}
		ctx.reserved -= size
		preferred = ctx.shard
	} else {
		if !h.reserveExact(size) {
			return Null, ErrHeapFull
		}
		preferred = h.rotor.Add(1)
	}
	generational := h.generational.Load()
	if generational {
		h.allocBytes.Add(size)
	}

	id, obj, si := h.takeSlot(preferred) // returns with the shard's lock held
	s := &h.shards[si]
	atomic.StoreUint32((*uint32)(&obj.class), uint32(class))
	atomic.StoreUint32(&obj.stale, 0)
	var flags uint32
	if generational {
		flags = flagYoung
		s.young = append(s.young, id)
	}
	atomic.StoreUint32(&obj.flags, flags)
	obj.home = uint8(si)
	if cap(obj.refs) >= shape.refSlots {
		obj.refs = obj.refs[:shape.refSlots]
		for i := range obj.refs {
			obj.refs[i] = 0
		}
	} else {
		obj.refs = make([]uint64, shape.refSlots)
	}
	// With no concurrent mark in flight the mark word is left at its
	// previous value: epochs only ever move forward, so a recycled slot can
	// never appear already-marked. While a concurrent mark is running the
	// object is born black (stamped with the cycle's epoch) so the
	// background sweep cannot free it.
	if am := h.allocMark.Load(); am != 0 {
		atomic.StoreUint32(&obj.mark, am)
	}
	// Publish size LAST: it is the slot's liveness word, and the background
	// sweeper's index-order probes gate on it. The atomic store orders the
	// header/refs initialization above before the slot becomes visible.
	obj.setSize(size)
	s.bytesAlloc += size
	s.objectsAlloc++
	s.objectsUsed++
	s.mu.Unlock()
	return MakeRef(id), nil
}

func (h *Heap) slot(id ObjectID) *Object {
	c := h.chunks[int(id)>>chunkShift].Load()
	if c == nil {
		return nil
	}
	return &c[int(id)&chunkMask]
}

// Get resolves a reference to its object. Tag bits are ignored. It panics
// on null or on an ID that was never allocated: by construction the
// collector only frees unreachable objects, so a dangling dereference is a
// bug in the runtime, not a program condition.
func (h *Heap) Get(r Ref) *Object {
	if r.IsNull() {
		panic("heap: dereference of null reference")
	}
	id := r.ID()
	obj := h.slot(id)
	if obj == nil || obj.Size() == 0 {
		panic(fmt.Sprintf("heap: dereference of dead or unallocated %v", r.Untagged()))
	}
	return obj
}

// ChunkCache memoizes the chunk pointer of the most recent lookup so a run
// of lookups that stays within one chunk (16384 consecutive IDs — the
// common case for a mutator working a small object graph) resolves with one
// compare, one shift, and one index instead of re-reading the chunk table's
// atomic pointer. Chunks are never moved or reclaimed, so a cached pointer
// never goes stale. A cache belongs to one mutator thread and must not be
// shared.
type ChunkCache struct {
	ci int32
	c  *chunk
}

// GetCached resolves a reference through cc. Unlike Get it does not panic:
// it returns nil for null references and for dead or unallocated IDs, so a
// caller holding a lock-free critical region can leave it cleanly before
// reporting the bad reference.
func (h *Heap) GetCached(r Ref, cc *ChunkCache) *Object {
	if r.IsNull() {
		return nil
	}
	id := r.ID()
	ci := int32(uint64(id) >> chunkShift)
	c := cc.c
	if c == nil || cc.ci != ci {
		c = h.chunks[ci].Load()
		if c == nil {
			return nil
		}
		cc.ci = ci
		cc.c = c
	}
	obj := &c[uint64(id)&chunkMask]
	if obj.Size() == 0 {
		return nil
	}
	return obj
}

// Free releases the object and credits its bytes back through its home
// shard. Only the collector's sweep calls this; sweep workers may free
// disjoint objects concurrently. Freeing an already-free slot panics.
func (h *Heap) Free(id ObjectID) {
	obj := h.slot(id)
	if obj == nil || obj.Size() == 0 {
		panic(fmt.Sprintf("heap: double free of object %d", id))
	}
	s := &h.shards[obj.home&shardMask]
	s.mu.Lock()
	if obj.Size() == 0 { // re-check under the home shard's lock
		s.mu.Unlock()
		panic(fmt.Sprintf("heap: double free of object %d", id))
	}
	credit := h.freeLocked(s, id, obj)
	h.maybeCorruptFreeListLocked(s)
	s.mu.Unlock()
	h.creditBytes(credit)
}

// FreeBatch releases many objects, bucketed by home shard so each shard
// lock is taken once. Panics on double frees, like Free. Parallel sweep
// workers call this concurrently with disjoint dead lists.
func (h *Heap) FreeBatch(ids []ObjectID) {
	if len(ids) == 0 {
		return
	}
	var buckets [numShards][]ObjectID
	for _, id := range ids {
		obj := h.slot(id)
		if obj == nil || obj.Size() == 0 {
			panic(fmt.Sprintf("heap: double free of object %d", id))
		}
		si := obj.home & shardMask
		buckets[si] = append(buckets[si], id)
	}
	var credit uint64
	for si := range buckets {
		if len(buckets[si]) == 0 {
			continue
		}
		s := &h.shards[si]
		s.mu.Lock()
		for _, id := range buckets[si] {
			obj := h.slot(id)
			if obj.Size() == 0 {
				s.mu.Unlock()
				panic(fmt.Sprintf("heap: double free of object %d", id))
			}
			credit += h.freeLocked(s, id, obj)
		}
		h.maybeCorruptFreeListLocked(s)
		s.mu.Unlock()
	}
	h.creditBytes(credit)
}

// maybeCorruptFreeListLocked is the shard free-list corruption probe: when
// the injector fires, it plants a duplicate entry in s's free list and then
// runs the integrity scan, which must detect and repair the corruption under
// the same lock hold (so the damage is never observable outside it). The
// scan is real detection code — if it ever finds corruption that was NOT
// injected, that too is repaired and counted. Caller holds s.mu.
func (h *Heap) maybeCorruptFreeListLocked(s *shard) {
	if !h.inj.Enabled(faultinject.ShardFreeListCorruption) {
		return
	}
	if len(s.free) == 0 || !h.inj.Should(faultinject.ShardFreeListCorruption) {
		return
	}
	s.free = append(s.free, s.free[len(s.free)-1])
	if h.probeFreeListLocked(s) == 0 {
		panic("heap: free-list probe missed an injected duplicate entry")
	}
}

// probeFreeListLocked verifies s's free list: every entry must name a dead,
// materialized slot, each at most once. Violating entries are discarded
// (repair) and counted in FreeListRepairs. It returns how many entries were
// repaired. Caller holds s.mu.
func (h *Heap) probeFreeListLocked(s *shard) int {
	seen := make(map[ObjectID]struct{}, len(s.free))
	repaired := 0
	out := s.free[:0]
	for _, id := range s.free {
		obj := h.slot(id)
		if obj == nil || obj.Size() != 0 {
			repaired++
			continue
		}
		if _, dup := seen[id]; dup {
			repaired++
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	s.free = out
	if repaired > 0 {
		h.freeListRepairs.Add(uint64(repaired))
	}
	return repaired
}

// freeLocked releases obj (slot id) into shard s, clearing its header so a
// recycled slot starts clean: flags, stale counter, class, size, and refs
// are all reset (the mark word is deliberately kept — see Allocate). It
// returns the heap-resident bytes to credit back to the used counter (zero
// for offloaded objects, whose bytes live on disk). Caller holds s.mu.
func (h *Heap) freeLocked(s *shard, id ObjectID, obj *Object) uint64 {
	size := obj.Size()
	heapBytes := size
	if obj.IsOffloaded() {
		h.diskMu.Lock()
		h.disk.BytesUsed -= size
		h.diskMu.Unlock()
		heapBytes = 0
	}
	s.bytesFreed += size
	s.objectsFreed++
	s.objectsUsed--
	obj.setSize(0)
	atomic.StoreUint32((*uint32)(&obj.class), 0)
	obj.refs = obj.refs[:0]
	atomic.StoreUint32(&obj.flags, 0)
	atomic.StoreUint32(&obj.stale, 0)
	s.free = append(s.free, id)
	return heapBytes
}

// ForEach calls fn for every allocated object, passing its ID. The heap
// must be quiescent (stop-the-world): sweep and staleness aging run under
// this. fn must not allocate or free.
func (h *Heap) ForEach(fn func(ObjectID, *Object)) {
	next := ObjectID(h.next.Load())
	for id := ObjectID(1); id < next; id++ {
		obj := h.slot(id)
		if obj != nil && obj.Size() != 0 {
			fn(id, obj)
		}
	}
}

// MaxID returns the exclusive upper bound of object IDs ever carved,
// letting the sweeper shard the table across workers.
func (h *Heap) MaxID() ObjectID { return ObjectID(h.next.Load()) }

// Lookup returns the object for an ID if it is currently allocated. The
// sweeper uses this to shard iteration without holding any heap lock.
func (h *Heap) Lookup(id ObjectID) (*Object, bool) {
	obj := h.slot(id)
	if obj == nil || obj.Size() == 0 {
		return nil, false
	}
	return obj, true
}
