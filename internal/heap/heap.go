package heap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

const (
	chunkShift = 14 // 16384 objects per chunk
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
	maxChunks  = 1 << 16 // up to ~1 G objects
)

// ErrHeapFull is returned by Allocate when the requested object does not fit
// under the heap limit. The caller (the VM's allocation slow path) reacts by
// collecting, pruning, or raising the out-of-memory error.
var ErrHeapFull = errors.New("heap: allocation would exceed heap limit")

// Stats is a snapshot of the heap's byte and object accounting.
type Stats struct {
	Limit        uint64 // maximum heap size in simulated bytes
	BytesUsed    uint64 // bytes currently held by live (unswept) objects
	ObjectsUsed  uint64 // number of allocated, unswept objects
	BytesAlloc   uint64 // cumulative bytes ever allocated
	ObjectsAlloc uint64 // cumulative objects ever allocated
	BytesFreed   uint64 // cumulative bytes freed by the sweeper
	ObjectsFreed uint64 // cumulative objects freed by the sweeper
}

// Fullness returns BytesUsed/Limit, the quantity that drives the leak
// pruning state machine (§3.1).
func (s Stats) Fullness() float64 {
	if s.Limit == 0 {
		return 0
	}
	return float64(s.BytesUsed) / float64(s.Limit)
}

// Heap is the simulated managed heap: a chunked object table plus byte
// accounting against a fixed limit. Object pointers returned by Get remain
// valid until the object is freed, because chunks are never moved.
//
// Allocation and freeing are serialized by an internal mutex; slot reads and
// writes on individual objects are atomic and lock-free (see Object).
type Heap struct {
	classes *Registry

	mu     sync.Mutex
	chunks [maxChunks]*[chunkSize]Object
	// next is the lowest never-used ObjectID; freed IDs are recycled LIFO
	// from free before next is advanced.
	next ObjectID
	free []ObjectID

	stats Stats
	// disk is the offload accounting (the Melt-style baseline).
	disk DiskStats
	// generational enables nursery tracking: new objects are flagged young
	// and listed for minor sweeps.
	generational bool
	young        []ObjectID
	// usedAtomic mirrors stats.BytesUsed for lock-free reads on the
	// allocation fast path (the soft GC trigger check).
	usedAtomic atomic.Uint64
}

// New creates a heap with the given byte limit and class registry.
func New(classes *Registry, limit uint64) *Heap {
	if classes == nil {
		panic("heap: nil class registry")
	}
	if limit == 0 {
		panic("heap: zero heap limit")
	}
	return &Heap{classes: classes, next: 1, stats: Stats{Limit: limit}}
}

// Classes returns the heap's class registry.
func (h *Heap) Classes() *Registry { return h.classes }

// EnableGenerations turns on nursery tracking: subsequently allocated
// objects are young until they survive a collection.
func (h *Heap) EnableGenerations() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.generational = true
}

// YoungIDs returns a copy of the current nursery membership. Call only
// stop-the-world.
func (h *Heap) YoungIDs() []ObjectID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]ObjectID(nil), h.young...)
}

// ResetYoung empties the nursery list after a collection promoted or freed
// its members. Call only stop-the-world.
func (h *Heap) ResetYoung() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.young = h.young[:0]
}

// Limit returns the heap's maximum size in simulated bytes.
func (h *Heap) Limit() uint64 { return h.stats.Limit }

// BytesUsed returns the current used-byte count without taking the heap
// lock (it may lag a concurrent allocation by one update).
func (h *Heap) BytesUsed() uint64 { return h.usedAtomic.Load() }

// Stats returns a snapshot of the accounting counters.
func (h *Heap) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// ObjectSize returns the simulated size of an object with the given shape.
func ObjectSize(refSlots, scalarBytes int) uint64 {
	return HeaderBytes + uint64(refSlots)*RefSlotBytes + uint64(scalarBytes)
}

// AllocOption tweaks a single allocation's shape relative to its class
// defaults (used for arrays and variable-size payloads).
type AllocOption func(*allocShape)

type allocShape struct {
	refSlots    int
	scalarBytes int
}

// WithRefSlots overrides the number of reference slots for one allocation.
func WithRefSlots(n int) AllocOption {
	return func(s *allocShape) { s.refSlots = n }
}

// WithScalarBytes overrides the scalar payload size for one allocation.
func WithScalarBytes(n int) AllocOption {
	return func(s *allocShape) { s.scalarBytes = n }
}

// Allocate creates a new object of the given class, charging its size
// against the heap limit. All reference slots start null. It returns
// ErrHeapFull (without allocating) when the object does not fit; triggering
// collection is the caller's job, keeping the heap policy-free.
func (h *Heap) Allocate(class ClassID, opts ...AllocOption) (Ref, error) {
	c := h.classes.Get(class)
	shape := allocShape{refSlots: c.RefSlots, scalarBytes: c.ScalarBytes}
	for _, o := range opts {
		o(&shape)
	}
	if shape.refSlots < 0 || shape.scalarBytes < 0 {
		panic(fmt.Sprintf("heap: negative allocation shape for %s", c.Name))
	}
	size := ObjectSize(shape.refSlots, shape.scalarBytes)

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stats.BytesUsed+size > h.stats.Limit {
		return Null, ErrHeapFull
	}
	id, obj := h.takeSlotLocked()
	obj.class = class
	obj.stale = 0
	obj.flags = 0
	if h.generational {
		obj.flags = flagYoung
		h.young = append(h.young, id)
	}
	obj.size = size
	if cap(obj.refs) >= shape.refSlots {
		obj.refs = obj.refs[:shape.refSlots]
		for i := range obj.refs {
			obj.refs[i] = 0
		}
	} else {
		obj.refs = make([]uint64, shape.refSlots)
	}
	// The mark word is left at its previous value: epochs only ever move
	// forward, so a recycled slot can never appear already-marked.
	h.stats.BytesUsed += size
	h.stats.ObjectsUsed++
	h.stats.BytesAlloc += size
	h.stats.ObjectsAlloc++
	h.usedAtomic.Store(h.stats.BytesUsed)
	return MakeRef(id), nil
}

func (h *Heap) takeSlotLocked() (ObjectID, *Object) {
	if n := len(h.free); n > 0 {
		id := h.free[n-1]
		h.free = h.free[:n-1]
		return id, h.slot(id)
	}
	id := h.next
	h.next++
	ci := int(id) >> chunkShift
	if ci >= maxChunks {
		panic("heap: object table exhausted")
	}
	if h.chunks[ci] == nil {
		h.chunks[ci] = new([chunkSize]Object)
	}
	return id, &h.chunks[ci][int(id)&chunkMask]
}

func (h *Heap) slot(id ObjectID) *Object {
	c := h.chunks[int(id)>>chunkShift]
	if c == nil {
		return nil
	}
	return &c[int(id)&chunkMask]
}

// Get resolves a reference to its object. Tag bits are ignored. It panics
// on null or on an ID that was never allocated: by construction the
// collector only frees unreachable objects, so a dangling dereference is a
// bug in the runtime, not a program condition.
func (h *Heap) Get(r Ref) *Object {
	if r.IsNull() {
		panic("heap: dereference of null reference")
	}
	id := r.ID()
	obj := h.slot(id)
	if obj == nil || obj.size == 0 {
		panic(fmt.Sprintf("heap: dereference of dead or unallocated %v", r.Untagged()))
	}
	return obj
}

// Free releases the object behind r and credits its bytes back. Only the
// collector's sweep calls this. Freeing an already-free slot panics.
func (h *Heap) Free(id ObjectID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	obj := h.slot(id)
	if obj == nil || obj.size == 0 {
		panic(fmt.Sprintf("heap: double free of object %d", id))
	}
	h.freeAccountingLocked(obj)
	obj.size = 0
	obj.class = 0
	obj.refs = obj.refs[:0]
	h.free = append(h.free, id)
}

// FreeBatch releases many objects under one lock acquisition (the
// collector's sweep). Panics on double frees, like Free.
func (h *Heap) FreeBatch(ids []ObjectID) {
	if len(ids) == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, id := range ids {
		obj := h.slot(id)
		if obj == nil || obj.size == 0 {
			panic(fmt.Sprintf("heap: double free of object %d", id))
		}
		h.freeAccountingLocked(obj)
		obj.size = 0
		obj.class = 0
		obj.refs = obj.refs[:0]
		h.free = append(h.free, id)
	}
}

// ForEach calls fn for every allocated object, passing its ID. The heap
// must be quiescent (stop-the-world): sweep and staleness aging run under
// this. fn must not allocate or free.
func (h *Heap) ForEach(fn func(ObjectID, *Object)) {
	h.mu.Lock()
	next := h.next
	h.mu.Unlock()
	for id := ObjectID(1); id < next; id++ {
		obj := h.slot(id)
		if obj != nil && obj.size != 0 {
			fn(id, obj)
		}
	}
}

// MaxID returns the exclusive upper bound of object IDs ever allocated,
// letting the sweeper shard the table across workers.
func (h *Heap) MaxID() ObjectID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.next
}

// Lookup returns the object for an ID if it is currently allocated. The
// sweeper uses this to shard iteration without holding the heap lock.
func (h *Heap) Lookup(id ObjectID) (*Object, bool) {
	obj := h.slot(id)
	if obj == nil || obj.size == 0 {
		return nil, false
	}
	return obj, true
}
