package heap

import (
	"sync"
)

// Allocator sharding. The object table's free lists, nursery lists, and
// accounting counters are split across numShards independently locked
// shards so mutator threads and parallel sweep workers do not serialize on
// one heap-wide mutex. The shared state that remains is two atomics: the
// used-byte counter (charged against the limit) and the fresh-ID cursor.
//
// Slot ownership is sticky: the shard that hands out a slot records itself
// in Object.home, and Free/FreeBatch return the slot to that shard's free
// list and charge that shard's counters. This keeps per-shard accounting
// monotone and — because a single-threaded allocate/free sequence keeps
// hitting the same shard's LIFO free list — preserves the heap's
// deterministic slot-recycling behavior (a freed ID is the next one
// handed back out).
const (
	numShards = 16
	shardMask = numShards - 1

	// freshBlock is how many never-used object IDs a shard carves from the
	// global cursor at a time when no free list has a slot to recycle.
	freshBlock = 64

	// maxTLABBytes caps an AllocContext's reserved byte quota.
	maxTLABBytes = 8 << 10
)

type shard struct {
	mu sync.Mutex
	// free holds recyclable slot IDs, popped LIFO.
	free []ObjectID
	// young lists nursery members whose slots belong to this shard.
	young []ObjectID

	// Accounting for objects whose slots belong to this shard. An object is
	// allocated and freed under the same shard lock (via Object.home), so
	// these never underflow; Stats sums them across shards.
	bytesAlloc   uint64
	objectsAlloc uint64
	bytesFreed   uint64
	objectsFreed uint64
	objectsUsed  uint64

	_ [64]byte // keep neighboring shards off each other's cache line
}

// AllocContext is a TLAB-style per-thread allocation context: a preferred
// shard plus a byte quota already reserved against the heap limit. With a
// context the mutator fast path touches the shared used-byte counter only
// when the quota runs out (roughly once per maxTLABBytes of allocation)
// instead of once per object.
//
// A context must not be used from more than one goroutine at a time, and
// its unused quota counts toward BytesUsed until ReleaseContext returns it
// (the VM flushes every thread's context at each stop-the-world
// collection, so post-GC fullness is exact).
type AllocContext struct {
	shard    uint32
	reserved uint64
}

// Reserved returns the context's unused byte quota (for tests and
// introspection).
func (c *AllocContext) Reserved() uint64 { return c.reserved }

// NewAllocContext returns an allocation context bound to the next shard in
// round-robin order.
func (h *Heap) NewAllocContext() AllocContext {
	return AllocContext{shard: h.rotor.Add(1) & shardMask}
}

// ReleaseContext returns the context's unused byte quota to the heap. It is
// idempotent; the context remains usable (its next allocation re-reserves).
func (h *Heap) ReleaseContext(c *AllocContext) {
	if c.reserved > 0 {
		h.creditBytes(c.reserved)
		c.reserved = 0
	}
}

// creditBytes subtracts n from the shared used-byte counter.
func (h *Heap) creditBytes(n uint64) {
	if n != 0 {
		h.used.Add(^(n - 1))
	}
}

// tlabTarget is how many bytes beyond the immediate need a refill tries to
// reserve: enough to amortize the shared-counter CAS, small enough not to
// distort fullness on small heaps.
func (h *Heap) tlabTarget() uint64 {
	t := h.limit / 64
	if t > maxTLABBytes {
		t = maxTLABBytes
	}
	return t
}

// reserveExact charges exactly size bytes against the limit, or charges
// nothing and returns false.
func (h *Heap) reserveExact(size uint64) bool {
	for {
		cur := h.used.Load()
		if cur+size > h.limit {
			return false
		}
		if h.used.CompareAndSwap(cur, cur+size) {
			return true
		}
	}
}

// refill tops up the context's quota so at least size bytes are reserved,
// grabbing up to a TLAB's worth extra when the limit allows. It charges
// nothing and returns false when even the immediate need does not fit.
func (h *Heap) refill(c *AllocContext, size uint64) bool {
	need := size - c.reserved
	want := need + h.tlabTarget()
	for {
		cur := h.used.Load()
		if cur+need > h.limit {
			return false
		}
		grant := want
		if cur+grant > h.limit {
			grant = h.limit - cur
		}
		if h.used.CompareAndSwap(cur, cur+grant) {
			c.reserved += grant
			return true
		}
	}
}

// takeSlot pops a recyclable slot, preferring the given shard and scanning
// the others before carving fresh IDs into the preferred shard. It returns
// the yielding shard's index and keeps that shard's lock HELD so the
// caller can initialize the object and its accounting atomically with the
// slot claim.
func (h *Heap) takeSlot(preferred uint32) (ObjectID, *Object, uint32) {
	for i := uint32(0); i < numShards; i++ {
		si := (preferred + i) & shardMask
		s := &h.shards[si]
		s.mu.Lock()
		if id, ok := h.popFreeLocked(s); ok {
			return id, h.slot(id), si
		}
		s.mu.Unlock()
	}
	si := preferred & shardMask
	s := &h.shards[si]
	s.mu.Lock()
	for {
		if id, ok := h.popFreeLocked(s); ok { // re-check: a racing Free may have refilled it
			return id, h.slot(id), si
		}
		h.carveLocked(s)
	}
}

// popFreeLocked pops the shard's next recyclable slot, discarding (and
// counting) corrupt entries that name a live or unmaterialized slot — the
// last line of defense against handing the same slot to two allocations.
// Caller holds s.mu.
func (h *Heap) popFreeLocked(s *shard) (ObjectID, bool) {
	for {
		n := len(s.free)
		if n == 0 {
			return 0, false
		}
		id := s.free[n-1]
		s.free = s.free[:n-1]
		if obj := h.slot(id); obj == nil || obj.Size() != 0 {
			h.freeListRepairs.Add(1)
			continue
		}
		return id, true
	}
}

// carveLocked claims a block of fresh IDs from the global cursor and pushes
// them onto s's free list in descending order, so LIFO pops hand them out
// ascending. Caller holds s.mu.
func (h *Heap) carveLocked(s *shard) {
	base := h.next.Add(freshBlock) - freshBlock
	if base+freshBlock > uint64(maxChunks)<<chunkShift {
		panic("heap: object table exhausted")
	}
	h.ensureChunks(ObjectID(base), ObjectID(base+freshBlock-1))
	for id := base + freshBlock - 1; ; id-- {
		s.free = append(s.free, ObjectID(id))
		if id == base {
			break
		}
	}
}

// ensureChunks materializes every chunk covering [lo, hi]. Chunk creation
// is rare (once per 16384 objects), so a plain mutex guards it; readers go
// through the atomic chunk pointers and never take it.
func (h *Heap) ensureChunks(lo, hi ObjectID) {
	for ci := int(lo) >> chunkShift; ci <= int(hi)>>chunkShift; ci++ {
		if h.chunks[ci].Load() != nil {
			continue
		}
		h.chunkMu.Lock()
		if h.chunks[ci].Load() == nil {
			h.chunks[ci].Store(new(chunk))
		}
		h.chunkMu.Unlock()
	}
}
