package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("empty median must be 0")
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Fatal("Median reordered its input")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{0, -1}) != 0 {
		t.Fatal("non-positive inputs must be ignored")
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{2, 8, 5}
	if Mean(xs) != 5 || Min(xs) != 2 || Max(xs) != 8 {
		t.Fatalf("mean/min/max = %v/%v/%v", Mean(xs), Min(xs), Max(xs))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty aggregates must be 0")
	}
}

func TestOverheadAndRatio(t *testing.T) {
	if got := Overhead(105, 100); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Overhead = %v", got)
	}
	if Overhead(1, 0) != 0 {
		t.Fatal("zero-base overhead must be 0")
	}
	if Ratio(10, 5) != 2 {
		t.Fatal("Ratio")
	}
	if !math.IsInf(Ratio(1, 0), 1) || Ratio(0, 0) != 0 {
		t.Fatal("degenerate ratios")
	}
}

// Property: the median lies between min and max, and for sorted odd-length
// inputs equals the middle element.
func TestMedianQuick(t *testing.T) {
	prop := func(xs []float64) bool {
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
		}
		if len(xs) == 0 {
			return Median(xs) == 0
		}
		m := Median(xs)
		if m < Min(xs) || m > Max(xs) {
			return false
		}
		if len(xs)%2 == 1 {
			s := append([]float64(nil), xs...)
			sort.Float64s(s)
			return m == s[len(s)/2]
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: geomean of positive values lies between min and max.
func TestGeoMeanQuick(t *testing.T) {
	prop := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r%1000)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
