// Package stats provides the small statistical helpers the experiment
// harness uses: median-of-trials (the paper reports the median of five),
// geometric means (Figure 6/7 aggregate bars), and normalization.
package stats

import (
	"math"
	"sort"
)

// Median returns the median of xs (the mean of the middle two for even
// lengths). It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	// Halve before adding so the sum of two near-max values cannot
	// overflow to infinity.
	return s[n/2-1]/2 + s[n/2]/2
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values
// (which have no geometric mean); it returns 0 when nothing remains.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the minimum, or 0 for an empty slice. Benchmark harnesses
// compare minima across trials: the minimum is the least-perturbed
// observation of a deterministic workload.
func Min(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Overhead returns (with-without)/without as a percentage.
func Overhead(with, without float64) float64 {
	if without == 0 {
		return 0
	}
	return (with/without - 1) * 100
}

// Ratio returns a/b, or +Inf when b is 0 and a > 0, or 0 when both are 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return a / b
}
