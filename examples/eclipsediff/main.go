// EclipseDiff example: reproduce the paper's headline scenario (Figure 1)
// with the EclipseDiff workload — reachable memory grows without bound
// until the VM would throw an out-of-memory error; with leak pruning the
// dead diff-result subtrees are reclaimed and the program keeps running.
//
//	go run ./examples/eclipsediff
package main

import (
	"fmt"

	"leakpruning/internal/harness"
)

func main() {
	fmt.Println("EclipseDiff (Eclipse bug #115789): structural compares leak their results")
	fmt.Println()

	base, err := harness.Run(harness.Config{
		Program: "eclipsediff", Policy: "off", MaxIters: 5000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("unmodified VM:  %s\n", base.Describe())

	pruned, err := harness.Run(harness.Config{
		Program: "eclipsediff", Policy: "default", MaxIters: 5000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("leak pruning:   %s\n", pruned.Describe())
	fmt.Println()

	fmt.Println("reachable memory at full-heap collections (the Figure 1 series):")
	fmt.Println("  iteration   base KB    pruning KB")
	// Align the two series by iteration, coarsely.
	bi, pi := 0, 0
	for step := 0; step < 12; step++ {
		iter := step * pruned.Iterations / 12
		for bi+1 < len(base.GCSamples) && base.GCSamples[bi+1].Iteration <= iter {
			bi++
		}
		for pi+1 < len(pruned.GCSamples) && pruned.GCSamples[pi+1].Iteration <= iter {
			pi++
		}
		baseKB := "-"
		if iter <= base.Iterations && len(base.GCSamples) > 0 {
			baseKB = fmt.Sprintf("%d", base.GCSamples[bi].BytesLive>>10)
		}
		fmt.Printf("  %9d   %7s    %7d\n", iter, baseKB, pruned.GCSamples[pi].BytesLive>>10)
	}

	fmt.Println()
	fmt.Println("what leak pruning reclaimed (first prune events):")
	for i, ev := range pruned.Prunes {
		if i >= 8 {
			fmt.Printf("  ... and %d more prune events\n", len(pruned.Prunes)-8)
			break
		}
		fmt.Printf("  gc %3d: %-60s %6d refs, %8d bytes\n", ev.GCIndex, ev.Selection, ev.PrunedRefs, ev.BytesFreed)
	}
}
