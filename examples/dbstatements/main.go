// DB-statements example: the MySQL/JDBC scenario written directly against
// the runtime API — a connection caches every executed statement (live,
// rehash touches them) while each statement drags a dead result set along.
// Demonstrates finalizers surviving pruning and the pruning report.
//
//	go run ./examples/dbstatements
package main

import (
	"fmt"

	"leakpruning/internal/core"
	"leakpruning/internal/vm"
)

const (
	heapLimit    = 8 << 20
	stmtsPerIter = 25
	maxIters     = 100000
)

func main() {
	var resultSetsClosed int
	machine := vm.New(vm.Options{
		HeapLimit:      heapLimit,
		EnableBarriers: true,
		Policy:         core.DefaultPolicy{},
		OnPrune: func(ev core.PruneEvent) {
			fmt.Printf("  pruned %5d refs: %s\n", ev.PrunedRefs, ev.Selection)
		},
	})

	stmt := machine.DefineClass("Statement", 1, 64)     // -> result
	result := machine.DefineClass("ResultSet", 0, 2048) // dead once executed
	node := machine.DefineClass("OpenStatements", 2, 0) // stmt, next
	scratch := machine.DefineClass("ParseScratch", 0, 96)
	open := machine.AddGlobal()

	iterations := 0
	err := machine.RunThread("client", func(t *vm.Thread) {
		for i := 0; i < maxIters; i++ {
			iterations = i + 1
			t.Scope(func() {
				for j := 0; j < stmtsPerIter; j++ {
					// Execute a statement; the driver retains it because
					// the application never calls close().
					s := t.New(stmt)
					rs := t.New(result)
					t.Store(s, 0, rs)
					// Finalizers keep running after pruning starts (§2):
					// when pruning reclaims a result set, its "cursor" is
					// still closed.
					machine.SetFinalizer(rs, func(vm.FinalizerInfo) { resultSetsClosed++ })

					n := t.New(node)
					t.Store(n, 0, s)
					t.Store(n, 1, t.LoadGlobal(open))
					t.StoreGlobal(open, n)
					t.New(scratch)
				}
				// The driver periodically walks its open-statement list
				// (metadata refresh), keeping statements live.
				cur := t.LoadGlobal(open)
				for !cur.IsNull() {
					t.Load(cur, 0)
					cur = t.Load(cur, 1)
				}
			})
		}
	})

	st := machine.Stats()
	fmt.Println()
	fmt.Printf("ran %d iterations (%d statements); terminated with: %v\n",
		iterations, iterations*stmtsPerIter, err)
	fmt.Printf("collections: %d, pruned refs: %d, finalized result sets: %d\n",
		st.Collections, st.PrunedRefs, resultSetsClosed)
	fmt.Printf("heap at end: %d / %d KB\n",
		machine.HeapStats().BytesUsed>>10, uint64(heapLimit)>>10)

	fmt.Println("\nedge-table view (top entries by pruned references):")
	count := 0
	for _, snap := range machine.EdgeTable().Snapshots(machine.Classes()) {
		if snap.TimesPruned == 0 {
			continue
		}
		fmt.Printf("  %-28s -> %-28s maxStaleUse=%d pruned=%d\n",
			snap.Src, snap.Tgt, snap.MaxStaleUse, snap.TimesPruned)
		if count++; count >= 5 {
			break
		}
	}
}
