// Custom-policy example: the prediction algorithm is pluggable (§6.1
// evaluates three of them); this example implements a fourth — a
// "biggest target class" policy that ignores edge sources entirely and
// prunes all stale references into the class holding the most stale bytes —
// and compares it against the paper's default on ListLeak and DualLeak.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"sync"

	"leakpruning/internal/core"
	"leakpruning/internal/gc"
	"leakpruning/internal/harness"
	"leakpruning/internal/heap"
	"leakpruning/internal/vm"
	"leakpruning/internal/vmerrors"
	"leakpruning/internal/workload"
)

// targetClassPolicy selects the target class with the most stale bytes and
// prunes every sufficiently stale reference into it, regardless of source.
type targetClassPolicy struct{}

func (targetClassPolicy) Name() string { return "target-class" }

func (targetClassPolicy) Begin(env core.Env) core.Cycle {
	return &targetClassCycle{env: env, bytes: map[heap.ClassID]uint64{}}
}

type targetClassCycle struct {
	env   core.Env
	mu    sync.Mutex
	bytes map[heap.ClassID]uint64
}

// Candidate defers stale references so the stale closure sizes whole data
// structures, like the default algorithm.
func (c *targetClassCycle) Candidate(src, tgt heap.ClassID, stale uint8) bool {
	return stale >= c.env.Edges.MaxStaleUseFor(src, tgt)+2
}

func (c *targetClassCycle) StaleEdge(src, tgt heap.ClassID, stale uint8, tgtBytes uint64) {}

// AccountStaleBytes aggregates by target class only.
func (c *targetClassCycle) AccountStaleBytes(src, tgt heap.ClassID, bytes uint64) {
	c.mu.Lock()
	c.bytes[tgt] += bytes
	c.mu.Unlock()
}

func (c *targetClassCycle) Finish(res gc.Result) (core.Selection, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best heap.ClassID
	var bestBytes uint64
	for cls, b := range c.bytes {
		if b > bestBytes || (b == bestBytes && cls < best) {
			best, bestBytes = cls, b
		}
	}
	if bestBytes == 0 {
		return nil, false
	}
	return &targetClassSelection{env: c.env, tgt: best, bytes: bestBytes}, true
}

type targetClassSelection struct {
	env   core.Env
	tgt   heap.ClassID
	bytes uint64
}

func (s *targetClassSelection) ShouldPrune(src, tgt heap.ClassID, stale uint8) bool {
	return tgt == s.tgt && stale >= s.env.Edges.MaxStaleUseFor(src, tgt)+2
}

func (s *targetClassSelection) String() string {
	return fmt.Sprintf("* -> %s (%d bytes)", s.env.Classes.Name(s.tgt), s.bytes)
}

// runWith executes a workload under an arbitrary core.Policy (bypassing the
// harness's by-name lookup).
func runWith(program string, policy core.Policy, maxIters int) (int, error) {
	prog, err := workload.New(program)
	if err != nil {
		panic(err)
	}
	machine := vm.New(vm.Options{
		HeapLimit:      prog.DefaultHeap(),
		EnableBarriers: true,
		Policy:         policy,
	})
	iters := 0
	err = machine.RunThread("main", func(t *vm.Thread) {
		t.Scope(func() { prog.Setup(t) })
		for i := 0; i < maxIters; i++ {
			iters = i + 1
			done := false
			t.Scope(func() { done = prog.Iterate(t, i) })
			if done {
				return
			}
		}
	})
	return iters, err
}

func main() {
	const maxIters = 10000
	fmt.Println("Comparing the paper's default policy against a custom 'target-class' policy")
	fmt.Println()
	for _, program := range []string{"listleak", "dualleak"} {
		baseRes, err := harness.Run(harness.Config{Program: program, Policy: "off", MaxIters: maxIters})
		if err != nil {
			panic(err)
		}
		defIters, defErr := runWith(program, core.DefaultPolicy{}, maxIters)
		cusIters, cusErr := runWith(program, targetClassPolicy{}, maxIters)
		fmt.Printf("%-10s base=%-6d default=%-6d (%s) custom=%-6d (%s)\n",
			program, baseRes.Iterations,
			defIters, describe(defErr), cusIters, describe(cusErr))
	}
	fmt.Println()
	fmt.Println("On ListLeak both policies tolerate the leak; on DualLeak (live growth)")
	fmt.Println("neither can help — exactly the paper's point that prediction quality,")
	fmt.Println("not mechanism, separates the algorithms.")
}

func describe(err error) string {
	switch {
	case err == nil:
		return "healthy at cap"
	case vmerrors.IsInternal(err):
		return "pruned-access"
	case vmerrors.IsOOM(err):
		return "out-of-memory"
	default:
		return err.Error()
	}
}
