// Observability example: the runtime's operational surfaces — verbose-GC
// logging, generational (nursery) collection, lazy barrier activation, the
// prune report, and a Graphviz dump of the final heap.
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"os"

	"leakpruning/internal/core"
	"leakpruning/internal/vm"
)

func main() {
	machine := vm.New(vm.Options{
		HeapLimit:      1 << 20, // 1 MB
		EnableBarriers: true,
		LazyBarriers:   true, // barriers "recompile in" at OBSERVE (§5)
		Generational:   true, // nursery collections between full-heap GCs
		Policy:         core.DefaultPolicy{},
		GCLog:          os.Stdout,
		OnPrune: func(ev core.PruneEvent) {
			fmt.Printf("## prune report: %s (%d refs)\n", ev.Selection, ev.PrunedRefs)
		},
	})

	cache := machine.DefineClass("CacheEntry", 2, 0) // value, next
	blob := machine.DefineClass("Blob", 0, 4096)
	temp := machine.DefineClass("Temp", 0, 256)
	head := machine.AddGlobal()

	err := machine.RunThread("main", func(t *vm.Thread) {
		for i := 0; i < 2500; i++ {
			t.Scope(func() {
				// The leak: cache entries accumulate, their blobs unread.
				e := t.New(cache)
				t.Store(e, 0, t.New(blob))
				t.Store(e, 1, t.LoadGlobal(head))
				t.StoreGlobal(head, e)
				// Nursery churn for the minor collections to chew on.
				for j := 0; j < 6; j++ {
					t.New(temp)
				}
			})
		}
	})

	st := machine.Stats()
	fmt.Printf("\nrun ended: err=%v\n", err)
	fmt.Printf("collections: %d full + %d minor (minor freed %d objects)\n",
		st.Collections, st.MinorGCs, st.MinorFrees)
	fmt.Printf("barrier cold-path hits: %d (zero until OBSERVE armed them)\n", st.BarrierHits)
	fmt.Printf("pruned references: %d\n", st.PrunedRefs)

	fmt.Println("\nfinal heap composition:")
	for i, row := range machine.HeapHistogram() {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-12s %6d objects %8d bytes\n", row.Class, row.Objects, row.Bytes)
	}

	f, ferr := os.Create("heap.dot")
	if ferr != nil {
		fmt.Fprintln(os.Stderr, ferr)
		os.Exit(1)
	}
	defer f.Close()
	if derr := machine.DumpDot(f, 64); derr != nil {
		fmt.Fprintln(os.Stderr, derr)
		os.Exit(1)
	}
	fmt.Println("\nheap graph written to heap.dot (render: dot -Tsvg heap.dot)")
}
