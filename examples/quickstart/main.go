// Quickstart: build a leaky program against the managed-runtime API, watch
// it die of memory exhaustion, then run it again with leak pruning enabled
// and watch it keep going.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"leakpruning/internal/core"
	"leakpruning/internal/vm"
	"leakpruning/internal/vmerrors"
)

// run executes the leak for up to maxIters iterations and reports how far
// it got. The program pushes nodes onto a global list it never reads again
// — the canonical reachable-but-dead leak.
func run(policy core.Policy, maxIters int) (iters int, err error) {
	opts := vm.Options{
		HeapLimit:      8 << 20, // 8 MB simulated heap
		EnableBarriers: true,
		Policy:         policy,
		OnPrune: func(ev core.PruneEvent) {
			fmt.Printf("   pruned %5d refs at GC %3d: %s\n", ev.PrunedRefs, ev.GCIndex, ev.Selection)
		},
	}
	machine := vm.New(opts)

	node := machine.DefineClass("Node", 2, 0) // next, payload
	payload := machine.DefineClass("Payload", 0, 1024)
	scratch := machine.DefineClass("Scratch", 0, 64) // transient garbage
	head := machine.AddGlobal()

	err = machine.RunThread("main", func(t *vm.Thread) {
		for i := 0; i < maxIters; i++ {
			iters = i + 1
			t.Scope(func() {
				// The leak: push a node the program will never read.
				n := t.New(node)
				t.Store(n, 1, t.New(payload))
				t.Store(n, 0, t.LoadGlobal(head))
				t.StoreGlobal(head, n)
				// Ordinary transient work.
				for j := 0; j < 8; j++ {
					t.New(scratch)
				}
			})
		}
	})
	return iters, err
}

func main() {
	const maxIters = 100000

	fmt.Println("== without leak pruning ==")
	iters, err := run(nil, maxIters)
	fmt.Printf("   survived %d iterations; error: %v\n\n", iters, err)
	if !vmerrors.IsOOM(err) {
		panic("expected the base run to exhaust memory")
	}

	fmt.Println("== with leak pruning (default policy) ==")
	iters2, err := run(core.DefaultPolicy{}, maxIters)
	fmt.Printf("   survived %d iterations; error: %v\n", iters2, err)
	fmt.Printf("\nleak pruning ran the program %.0fx longer (capped at %d iterations)\n",
		float64(iters2)/float64(iters), maxIters)
}
