// Command overheadbench regenerates the paper's overhead experiments (§5):
//
//	overheadbench -fig 6    # run-time read-barrier overhead per benchmark,
//	                        # two barrier shapes (the paper's two platforms)
//	overheadbench -fig 7    # normalized GC time vs. heap size for the
//	                        # Base / Observe / Select configurations
//	overheadbench -compile  # compile-time and code-size cost of inserting
//	                        # read barriers (the jitsim experiment)
//
// The non-leaking benchmark suite stands in for DaCapo/pseudojbb/SPECjvm98;
// absolute times differ from the paper's hardware, but the measured
// quantities are the same relative overheads.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"leakpruning/internal/harness"
	"leakpruning/internal/jitsim"
	"leakpruning/internal/stats"
	"leakpruning/internal/workload"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "regenerate figure 6 or 7")
		compile = flag.Bool("compile", false, "measure compilation overhead of barrier insertion")
		iters   = flag.Int("iters", 600, "iterations per benchmark run")
		trials  = flag.Int("trials", 5, "trials per configuration (median reported)")
	)
	flag.Parse()

	switch {
	case *fig == 6:
		figure6(*iters, *trials)
	case *fig == 7:
		figure7(*iters, *trials)
	case *compile:
		compileOverhead(*trials)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runtimeOf runs one benchmark configuration and returns total mutator +
// collector time.
func runtimeOf(name string, iters int, cfg harness.Config) time.Duration {
	cfg.Program = name
	cfg.Policy = "off"
	cfg.MaxIters = iters
	res, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !res.Capped() {
		fmt.Fprintf(os.Stderr, "overheadbench: %s died unexpectedly: %s (%v)\n", name, res.Reason, res.Err)
		os.Exit(1)
	}
	return res.Duration
}

// bestRuntime takes the minimum over trials: the least-perturbed
// observation of a deterministic workload.
func bestRuntime(name string, iters, trials int, cfg harness.Config) float64 {
	var xs []float64
	for i := 0; i < trials; i++ {
		xs = append(xs, float64(runtimeOf(name, iters, cfg)))
	}
	return stats.Min(xs)
}

// figure6 measures the run-time overhead of read barriers: each benchmark
// runs with barriers compiled out (baseline) and with barriers in while the
// controller is forced into the SELECT state continuously, exactly the
// paper's methodology ("even though these benchmarks do not leak memory, we
// force leak pruning to be in the SELECT state continuously").
func figure6(iters, trials int) {
	fmt.Println("Figure 6: run-time overhead of leak pruning (barriers + forced SELECT)")
	fmt.Println("(paper: 5% average on Pentium 4, 3% on Core 2; here the two 'platforms'")
	fmt.Println(" are the conditional and unconditional barrier implementations)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Benchmark\tconditional %\tunconditional %")
	var cond, uncond []float64
	for _, name := range workload.MicroBenchNames() {
		base := bestRuntime(name, iters, trials, harness.Config{BarriersOff: true})
		c := bestRuntime(name, iters, trials, harness.Config{ForceState: "select", BarrierVariant: "conditional"})
		u := bestRuntime(name, iters, trials, harness.Config{ForceState: "select", BarrierVariant: "unconditional"})
		co := stats.Overhead(c, base)
		uo := stats.Overhead(u, base)
		cond = append(cond, c/base)
		uncond = append(uncond, u/base)
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\n", name, co, uo)
	}
	fmt.Fprintf(w, "geomean\t%.1f\t%.1f\n",
		(stats.GeoMean(cond)-1)*100, (stats.GeoMean(uncond)-1)*100)
	w.Flush()
}

// figure7 measures normalized GC time across heap sizes 1.5x–5x each
// benchmark's minimum for the Base, Observe, and Select configurations.
func figure7(iters, trials int) {
	multipliers := []float64{1.5, 2, 3, 4, 5}
	fmt.Println("Figure 7: geometric mean of normalized GC time across heap sizes")
	fmt.Println("(paper: Observe adds up to 5%, Select up to 9% more, total up to 14%)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Heap multiplier\tBase\tObserve\tSelect")

	gcTime := func(name string, heap uint64, force string) float64 {
		var xs []float64
		for i := 0; i < trials; i++ {
			cfg := harness.Config{Program: name, Policy: "off", MaxIters: iters, HeapLimit: heap, ForceState: force}
			res, err := harness.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			xs = append(xs, float64(res.VMStats.GCTime))
		}
		return stats.Min(xs)
	}

	for _, mult := range multipliers {
		var obsRatios, selRatios []float64
		for _, name := range workload.MicroBenchNames() {
			prog, err := workload.New(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			sizer, ok := prog.(workload.Sizer)
			if !ok {
				continue
			}
			heap := uint64(float64(sizer.MinHeap()) * mult)
			base := gcTime(name, heap, "")
			obs := gcTime(name, heap, "observe")
			sel := gcTime(name, heap, "select")
			if base > 0 {
				obsRatios = append(obsRatios, obs/base)
				selRatios = append(selRatios, sel/base)
			}
		}
		fmt.Fprintf(w, "%.1fx\t1.000\t%.3f\t%.3f\n",
			mult, stats.GeoMean(obsRatios), stats.GeoMean(selRatios))
	}
	w.Flush()
}

// compileOverhead reproduces §5's compilation measurements: inserting read
// barriers bloats the IR, adding to compile time (paper: +17% average, +34%
// max) and code size (+10% average, +15% max).
func compileOverhead(trials int) {
	fmt.Println("Compilation overhead of read-barrier insertion (jitsim)")
	fmt.Println("(paper: +17% compile time on average, at most +34%; +10% code size, at most +15%)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Benchmark\tcompile time %\tcode size %\tbarrier sites")
	var timeRatios, sizeRatios []float64
	for _, name := range workload.MicroBenchNames() {
		corpus := jitsim.Corpus(name, 400, 400)
		var tn, tb []float64
		var plain, barrier jitsim.SuiteStats
		for i := 0; i < trials; i++ {
			plain = jitsim.CompileCorpus(name, &jitsim.Compiler{}, corpus)
			barrier = jitsim.CompileCorpus(name, &jitsim.Compiler{InsertReadBarriers: true}, corpus)
			tn = append(tn, float64(plain.CompileTime))
			tb = append(tb, float64(barrier.CompileTime))
		}
		timeOv := stats.Overhead(stats.Min(tb), stats.Min(tn))
		sizeOv := stats.Overhead(float64(barrier.CodeBytes), float64(plain.CodeBytes))
		timeRatios = append(timeRatios, stats.Min(tb)/stats.Min(tn))
		sizeRatios = append(sizeRatios, float64(barrier.CodeBytes)/float64(plain.CodeBytes))
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%d\n", name, timeOv, sizeOv, barrier.BarrierSites)
	}
	fmt.Fprintf(w, "geomean\t%.1f\t%.1f\t\n",
		(stats.GeoMean(timeRatios)-1)*100, (stats.GeoMean(sizeRatios)-1)*100)
	w.Flush()
}
